// Integration tests for the observability subsystem through the public
// API: one Collector installed via WithObserver, shared by every rank,
// exercised under both execution modes. Under -race the Throughput run
// doubles as a data-race check on the registry and the event ring, since
// the ranks run genuinely concurrently there.
package clampi_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"

	"clampi"
)

// observedWorkload runs a deterministic multi-rank caching workload with
// a single shared Collector and returns its registry and ring. Every
// rank issues the same get sequence (reuse plus a conflicting tail), so
// the event counts are independent of rank interleaving.
func observedWorkload(t *testing.T, mode clampi.ExecMode) (*clampi.Registry, *clampi.Ring) {
	t.Helper()
	reg := clampi.NewRegistry()
	ring := clampi.NewRing(1 << 15)
	col := clampi.NewCollector(reg, ring)
	err := clampi.Run(4, clampi.RunConfig{Mode: mode}, func(r *clampi.Rank) error {
		w, _, err := clampi.Allocate(r, 64<<10, nil,
			clampi.WithMode(clampi.AlwaysCache),
			clampi.WithIndexSlots(64),
			clampi.WithStorageBytes(32<<10),
			clampi.WithSeed(7),
			clampi.WithObserver(col))
		if err != nil {
			return err
		}
		defer w.Free()
		if err := w.LockAll(); err != nil {
			return err
		}
		buf := make([]byte, 512)
		peer := (r.ID() + 1) % r.Size()
		for round := 0; round < 3; round++ {
			// Hot set: the same 16 blocks every round (hits after the
			// first round); then a sweep wide enough to force capacity
			// and conflict evictions in the small cache.
			for blk := 0; blk < 16; blk++ {
				if err := w.GetBytes(buf, peer, blk*512); err != nil {
					return err
				}
			}
			for blk := 0; blk < 96; blk++ {
				if err := w.GetBytes(buf, peer, blk*512); err != nil {
					return err
				}
			}
			if err := w.FlushAll(); err != nil {
				return err
			}
		}
		w.Invalidate()
		if err := w.UnlockAll(); err != nil {
			return err
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatalf("Run(%v): %v", mode, err)
	}
	return reg, ring
}

// counterTotals extracts every counter series from the registry's JSON
// export as a "name{labels}" -> value map.
func counterTotals(t *testing.T, reg *clampi.Registry) map[string]int64 {
	t.Helper()
	var buf bytes.Buffer
	if err := clampi.WriteJSON(&buf, reg); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		Counters []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels"`
			Value  int64             `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal export: %v", err)
	}
	out := make(map[string]int64, len(doc.Counters))
	for _, c := range doc.Counters {
		keys := make([]string, 0, len(c.Labels))
		for k := range c.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		id := c.Name
		for _, k := range keys {
			id += fmt.Sprintf(",%s=%s", k, c.Labels[k])
		}
		out[id] = c.Value
	}
	return out
}

// TestDualModeCountersAgree runs the identical workload under
// FidelityMeasured and Throughput and asserts the two registries hold
// identical counter totals: the observability layer must count events,
// not scheduling artifacts. Under -race this also verifies the shared
// collector is race-free with genuinely concurrent ranks.
func TestDualModeCountersAgree(t *testing.T) {
	fidReg, fidRing := observedWorkload(t, clampi.FidelityMeasured)
	thrReg, thrRing := observedWorkload(t, clampi.Throughput)

	fid := counterTotals(t, fidReg)
	thr := counterTotals(t, thrReg)
	if len(fid) == 0 {
		t.Fatal("fidelity run recorded no counters")
	}
	if fid[`clampi_accesses_total,type=hitting`] == 0 {
		t.Error("workload produced no cache hits; reuse pattern broken")
	}
	if fid[`clampi_evictions_total,kind=capacity`]+fid[`clampi_evictions_total,kind=conflict`] == 0 {
		t.Error("workload produced no evictions; pressure pattern broken")
	}
	for name, v := range fid {
		if got := thr[name]; got != v {
			t.Errorf("counter %s: fidelity=%d throughput=%d", name, v, got)
		}
	}
	for name := range thr {
		if _, ok := fid[name]; !ok {
			t.Errorf("counter %s present only in throughput run", name)
		}
	}

	if fidRing.Total() != thrRing.Total() {
		t.Errorf("event totals differ: fidelity=%d throughput=%d", fidRing.Total(), thrRing.Total())
	}
	if fidRing.Total() == 0 {
		t.Error("no events traced")
	}

	// The ring must retain a dense, ordered window of the event stream
	// even after concurrent appends.
	events := thrRing.Snapshot()
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("ring sequence gap at %d: %d -> %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}

// TestObserverSeesAllStats cross-checks the observer-derived counters
// against the caches' own Stats: a shared collector over every rank must
// agree with the sum of the per-window counters.
func TestObserverSeesAllStats(t *testing.T) {
	reg := clampi.NewRegistry()
	col := clampi.NewCollector(reg, clampi.NewRing(0))
	perRank := make([]clampi.Stats, 2)
	err := clampi.Run(2, clampi.RunConfig{}, func(r *clampi.Rank) error {
		w, _, err := clampi.Allocate(r, 32<<10, nil,
			clampi.WithMode(clampi.AlwaysCache),
			clampi.WithObserver(col))
		if err != nil {
			return err
		}
		defer w.Free()
		if err := w.LockAll(); err != nil {
			return err
		}
		buf := make([]byte, 256)
		for i := 0; i < 40; i++ {
			if err := w.GetBytes(buf, (r.ID()+1)%r.Size(), (i%10)*256); err != nil {
				return err
			}
		}
		if err := w.FlushAll(); err != nil {
			return err
		}
		if err := w.UnlockAll(); err != nil {
			return err
		}
		r.Barrier()
		perRank[r.ID()] = w.Stats()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := perRank[0].Add(perRank[1])
	got := counterTotals(t, reg)
	want := map[string]int64{
		`clampi_accesses_total,type=hitting`:     total.Hits,
		`clampi_accesses_total,type=direct`:      total.Direct,
		`clampi_accesses_total,type=conflicting`: total.Conflicting,
		`clampi_accesses_total,type=capacity`:    total.Capacity,
		`clampi_accesses_total,type=failing`:     total.Failing,
		`clampi_partial_hits_total`:              total.PartialHits,
		`clampi_evictions_total,kind=capacity` +
			`|clampi_evictions_total,kind=conflict`: total.Evictions,
		`clampi_adjustments_total`: total.Adjustments,
		`clampi_get_bytes_total`:   total.BytesFromCache + total.BytesFromNetwork,
	}
	for name, v := range want {
		var sum int64
		for _, part := range strings.Split(name, "|") {
			sum += got[part]
		}
		if sum != v {
			t.Errorf("%s: observer saw %d, Stats sum %d", name, sum, v)
		}
	}
	if total.Hits == 0 {
		t.Error("workload produced no hits")
	}
}
