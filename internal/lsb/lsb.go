// Package lsb reproduces the measurement methodology of LibLSB (Hoefler &
// Belli, "Scientific Benchmarking of Parallel Computing Systems"), which
// the paper uses for all timings: experiments are repeated until the 95%
// confidence interval of the median is within 5% of the median.
//
// Samples here are virtual durations produced by the simulation's hybrid
// clocks, but the statistics are the real thing: nonparametric median
// CIs from binomial order statistics.
package lsb

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"clampi/internal/simtime"
)

// Result summarizes a measurement.
type Result struct {
	Median simtime.Duration
	CILow  simtime.Duration
	CIHigh simtime.Duration
	Mean   simtime.Duration
	Min    simtime.Duration
	Max    simtime.Duration
	N      int
}

// Converged reports whether the 95% CI is within frac of the median
// (the paper uses frac = 0.05).
func (r Result) Converged(frac float64) bool {
	if r.Median <= 0 {
		return r.CIHigh == r.CILow
	}
	lo := float64(r.Median) * (1 - frac)
	hi := float64(r.Median) * (1 + frac)
	return float64(r.CILow) >= lo && float64(r.CIHigh) <= hi
}

func (r Result) String() string {
	return fmt.Sprintf("median %v [%v, %v] (n=%d)", r.Median, r.CILow, r.CIHigh, r.N)
}

// Summarize computes median, 95% CI of the median (order statistics),
// mean, min and max of the samples.
func Summarize(samples []simtime.Duration) Result {
	n := len(samples)
	if n == 0 {
		return Result{}
	}
	s := make([]simtime.Duration, n)
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })

	var sum simtime.Duration
	for _, v := range s {
		sum += v
	}
	med := s[n/2]
	if n%2 == 0 {
		med = (s[n/2-1] + s[n/2]) / 2
	}
	// Nonparametric 95% CI for the median: ranks n/2 ± 1.96*sqrt(n)/2.
	half := 1.96 * math.Sqrt(float64(n)) / 2
	lo := int(math.Floor(float64(n)/2 - half))
	hi := int(math.Ceil(float64(n)/2 + half))
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	return Result{
		Median: med,
		CILow:  s[lo],
		CIHigh: s[hi],
		Mean:   sum / simtime.Duration(n),
		Min:    s[0],
		Max:    s[n-1],
		N:      n,
	}
}

// Measure runs f repeatedly, collecting one virtual-duration sample per
// run, until the 95% CI of the median is within ciFrac of the median (at
// least minReps runs, at most maxReps). It returns the final summary.
func Measure(minReps, maxReps int, ciFrac float64, f func() simtime.Duration) Result {
	if minReps < 5 {
		minReps = 5
	}
	if maxReps < minReps {
		maxReps = minReps
	}
	samples := make([]simtime.Duration, 0, minReps)
	var res Result
	for i := 0; i < maxReps; i++ {
		samples = append(samples, f())
		if len(samples) >= minReps {
			res = Summarize(samples)
			if res.Converged(ciFrac) {
				return res
			}
		}
	}
	return Summarize(samples)
}

// Table is a simple fixed-width text table for benchmark output; it
// mirrors the rows/series the paper's figures report.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case simtime.Duration:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// CSV renders the table as comma-separated values (header row first),
// for piping benchmark output into plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeCSVRow(t.headers)
	for _, r := range t.rows {
		writeCSVRow(r)
	}
	return b.String()
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
