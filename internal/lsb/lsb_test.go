package lsb

import (
	"math/rand"
	"strings"
	"testing"

	"clampi/internal/simtime"
)

func TestSummarizeEmpty(t *testing.T) {
	r := Summarize(nil)
	if r.N != 0 || r.Median != 0 {
		t.Fatalf("empty summarize = %+v", r)
	}
}

func TestSummarizeBasics(t *testing.T) {
	r := Summarize([]simtime.Duration{5, 1, 3})
	if r.Median != 3 || r.Min != 1 || r.Max != 5 || r.Mean != 3 || r.N != 3 {
		t.Fatalf("summarize = %+v", r)
	}
	r = Summarize([]simtime.Duration{1, 2, 3, 4})
	if r.Median != 2 { // (2+3)/2
		t.Fatalf("even median = %v", r.Median)
	}
	if r.String() == "" {
		t.Fatalf("empty String")
	}
}

func TestCIBracketsMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]simtime.Duration, 200)
	for i := range samples {
		samples[i] = simtime.Duration(1000 + rng.Intn(100))
	}
	r := Summarize(samples)
	if r.CILow > r.Median || r.CIHigh < r.Median {
		t.Fatalf("CI [%v, %v] does not bracket median %v", r.CILow, r.CIHigh, r.Median)
	}
	if !r.Converged(0.2) {
		t.Fatalf("tight distribution did not converge at 20%%: %+v", r)
	}
}

func TestConvergedZeroMedian(t *testing.T) {
	r := Summarize([]simtime.Duration{0, 0, 0, 0, 0})
	if !r.Converged(0.05) {
		t.Fatalf("all-zero samples should converge")
	}
}

func TestMeasureStopsOnConvergence(t *testing.T) {
	calls := 0
	r := Measure(10, 10000, 0.05, func() simtime.Duration {
		calls++
		return 1000 // perfectly stable
	})
	if calls > 20 {
		t.Fatalf("stable measurement took %d reps", calls)
	}
	if r.Median != 1000 {
		t.Fatalf("median = %v", r.Median)
	}
}

func TestMeasureRespectsMaxReps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	calls := 0
	r := Measure(5, 50, 0.0001, func() simtime.Duration {
		calls++
		return simtime.Duration(rng.Intn(1000000)) // never converges at 0.01%
	})
	if calls != 50 {
		t.Fatalf("ran %d reps, want max 50", calls)
	}
	if r.N != 50 {
		t.Fatalf("N = %d", r.N)
	}
}

func TestMeasureMinRepsFloor(t *testing.T) {
	calls := 0
	Measure(0, 3, 0.05, func() simtime.Duration {
		calls++
		return 1
	})
	if calls != 5 { // minReps floored to 5; maxReps raised to match
		t.Fatalf("calls = %d, want 5", calls)
	}
}

func TestPaperConvergenceCriterion(t *testing.T) {
	// The paper's 95%-CI-within-5%-of-median criterion on a realistic
	// noisy latency distribution (±10% uniform noise): must converge
	// well before 10k reps.
	rng := rand.New(rand.NewSource(3))
	calls := 0
	r := Measure(20, 10000, 0.05, func() simtime.Duration {
		calls++
		return simtime.Duration(1800 + rng.Intn(360) - 180)
	})
	if !r.Converged(0.05) {
		t.Fatalf("did not converge: %+v after %d reps", r, calls)
	}
	if calls >= 10000 {
		t.Fatalf("needed all %d reps", calls)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "size", "latency", "speedup")
	tb.AddRow(4096, simtime.Duration(1234), 2.5)
	tb.AddRow(16384, simtime.Duration(5678), 1.25)
	out := tb.String()
	if !strings.Contains(out, "Fig X") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "2.5") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableUntitled(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.Contains(tb.String(), "==") {
		t.Fatalf("untitled table printed title marker")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("plain", `with,comma and "quote"`)
	out := tb.CSV()
	want := "a,b\nplain,\"with,comma and \"\"quote\"\"\"\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}
