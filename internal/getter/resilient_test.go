package getter

import (
	"errors"
	"fmt"
	"testing"

	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// flaky is a Getter whose every get fails transiently failsPerOp times
// before succeeding. When batchFailAt >= 0 it also implements Batcher,
// failing the batch once at that op with a *rma.BatchError.
type flaky struct {
	failsPerOp  int
	batchFailAt int
	attempts    map[[2]int]int
	batchCalls  int
	flushes     int
}

func newFlaky(failsPerOp int) *flaky {
	return &flaky{failsPerOp: failsPerOp, batchFailAt: -1, attempts: map[[2]int]int{}}
}

func (f *flaky) Get(dst []byte, target, disp int) error {
	k := [2]int{target, disp}
	f.attempts[k]++
	if f.attempts[k] <= f.failsPerOp {
		return fmt.Errorf("%w: flaky", rma.ErrTransient)
	}
	for i := range dst {
		dst[i] = byte(disp + i)
	}
	return nil
}

func (f *flaky) Flush() error { f.flushes++; return nil }
func (f *flaky) Invalidate()  {}
func (f *flaky) Name() string { return "flaky" }

// batchFlaky adds a Batcher fast path to flaky.
type batchFlaky struct{ *flaky }

func (f *batchFlaky) GetBatch(ops []BatchOp) error {
	f.batchCalls++
	for i := range ops {
		if i == f.batchFailAt && f.batchCalls == 1 {
			return &rma.BatchError{Op: i, Err: fmt.Errorf("%w: flaky batch", rma.ErrTransient)}
		}
		if err := f.Get(ops[i].Dst, ops[i].Target, ops[i].Disp); err != nil {
			return &rma.BatchError{Op: i, Err: err}
		}
	}
	return nil
}

func TestResilientRetriesUntilSuccess(t *testing.T) {
	g := newFlaky(2)
	clock := simtime.NewClock()
	r := NewResilient(g, clock, rma.RetryPolicy{MaxAttempts: 4, BaseBackoff: simtime.Microsecond}, 1)
	dst := make([]byte, 8)
	if err := r.Get(dst, 1, 32); err != nil {
		t.Fatal(err)
	}
	for i, b := range dst {
		if b != byte(32+i) {
			t.Fatalf("byte %d = %d after recovery", i, b)
		}
	}
	if r.Retries() != 2 {
		t.Errorf("Retries = %d, want 2", r.Retries())
	}
	if clock.Now() == 0 {
		t.Error("backoffs did not advance the virtual clock")
	}
}

func TestResilientGivesUpAtMaxAttempts(t *testing.T) {
	g := newFlaky(10)
	r := NewResilient(g, simtime.NewClock(), rma.RetryPolicy{MaxAttempts: 3}, 1)
	err := r.Get(make([]byte, 8), 1, 0)
	if !errors.Is(err, rma.ErrTransient) {
		t.Fatalf("exhausted Get = %v, want transient", err)
	}
	if got := g.attempts[[2]int{1, 0}]; got != 3 {
		t.Errorf("inner attempts = %d, want 3", got)
	}
}

func TestResilientPropagatesNonTransient(t *testing.T) {
	r := NewResilient(&Raw{}, simtime.NewClock(), rma.DefaultRetryPolicy(), 1)
	// A nil window makes Raw fail hard; easier: use a Getter returning a
	// permanent error.
	perm := errors.New("permanent")
	g := getterFunc(func(dst []byte, target, disp int) error { return perm })
	r.G = g
	if err := r.Get(make([]byte, 4), 1, 0); !errors.Is(err, perm) {
		t.Fatalf("permanent failure = %v, want it surfaced unretried", err)
	}
	if r.Retries() != 0 {
		t.Errorf("Retries = %d after a permanent failure, want 0", r.Retries())
	}
}

// getterFunc adapts a function to the Getter interface.
type getterFunc func(dst []byte, target, disp int) error

func (f getterFunc) Get(dst []byte, target, disp int) error { return f(dst, target, disp) }
func (f getterFunc) Flush() error                           { return nil }
func (f getterFunc) Invalidate()                            {}
func (f getterFunc) Name() string                           { return "func" }

func TestResilientBatchResumesAfterPrefix(t *testing.T) {
	inner := newFlaky(0)
	inner.batchFailAt = 2
	g := &batchFlaky{inner}
	r := NewResilient(g, simtime.NewClock(), rma.RetryPolicy{MaxAttempts: 4}, 1)
	bufs := make([][]byte, 5)
	ops := make([]BatchOp, 5)
	for i := range ops {
		bufs[i] = make([]byte, 8)
		ops[i] = BatchOp{Dst: bufs[i], Target: 1, Disp: i * 8}
	}
	if err := r.GetBatch(ops); err != nil {
		t.Fatal(err)
	}
	for i := range ops {
		for j, b := range bufs[i] {
			if b != byte(i*8+j) {
				t.Fatalf("op %d byte %d = %d after batch recovery", i, j, b)
			}
		}
	}
	if g.batchCalls != 1 {
		t.Errorf("inner batch calls = %d, want 1 (suffix retried per-op)", g.batchCalls)
	}
}

func TestResilientBatchFallsBackWithoutBatcher(t *testing.T) {
	g := newFlaky(1)
	r := NewResilient(g, simtime.NewClock(), rma.RetryPolicy{MaxAttempts: 3}, 1)
	bufs := make([][]byte, 3)
	ops := make([]BatchOp, 3)
	for i := range ops {
		bufs[i] = make([]byte, 8)
		ops[i] = BatchOp{Dst: bufs[i], Target: 1, Disp: i * 8}
	}
	if err := r.GetBatch(ops); err != nil {
		t.Fatal(err)
	}
	for i := range ops {
		for j, b := range bufs[i] {
			if b != byte(i*8+j) {
				t.Fatalf("op %d byte %d = %d", i, j, b)
			}
		}
	}
	if r.Retries() == 0 {
		t.Error("flaky batch completed without retries")
	}
}
