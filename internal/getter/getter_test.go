package getter

import (
	"testing"

	"clampi/internal/core"
	"clampi/internal/mpi"
)

func TestRawAndCachedDeliverSameData(t *testing.T) {
	err := mpi.Run(2, mpi.Config{}, func(r *mpi.Rank) error {
		region := make([]byte, 4096)
		if r.ID() == 1 {
			for i := range region {
				region[i] = byte(i * 13)
			}
		}
		rawWin := r.WinCreate(region, nil)
		defer rawWin.Free()
		cachedWin := r.WinCreate(region, nil)
		defer cachedWin.Free()

		if r.ID() == 0 {
			if err := rawWin.LockAll(); err != nil {
				return err
			}
			if err := cachedWin.LockAll(); err != nil {
				return err
			}
			cache, err := core.New(cachedWin, core.Params{Mode: core.AlwaysCache})
			if err != nil {
				return err
			}
			var gts = []Getter{NewRaw(rawWin), NewCached(cache)}
			bufs := [][]byte{make([]byte, 256), make([]byte, 256)}
			for round := 0; round < 3; round++ {
				for i, gt := range gts {
					if err := gt.Get(bufs[i], 1, 512); err != nil {
						return err
					}
					if err := gt.Flush(); err != nil {
						return err
					}
				}
				for i := range bufs[0] {
					if bufs[0][i] != bufs[1][i] {
						t.Fatalf("round %d byte %d: raw %d vs cached %d", round, i, bufs[0][i], bufs[1][i])
					}
				}
			}
			if s := cache.Stats(); s.Hits != 2 {
				t.Errorf("cached getter hits = %d, want 2", s.Hits)
			}
			// Invalidate is a no-op for Raw, real for Cached.
			for _, gt := range gts {
				gt.Invalidate()
			}
			if cache.CachedEntries() != 0 {
				t.Errorf("cache not invalidated")
			}
			if gts[0].Name() != "foMPI" || gts[1].Name() != "CLaMPI" {
				t.Errorf("names: %q %q", gts[0].Name(), gts[1].Name())
			}
			if err := rawWin.UnlockAll(); err != nil {
				return err
			}
			if err := cachedWin.UnlockAll(); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
