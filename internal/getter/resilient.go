package getter

import (
	"errors"
	"math/rand"

	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// Resilient decorates any Getter with transient-failure retry
// (DESIGN.md §11). The caching layer has its own, deeper resilience
// (internal/core retries individual fills behind hits); this shim is for
// the systems that have none — the Raw baseline, the block cache — so
// chaos experiments can run every compared system under the same fault
// scenario. Backoffs advance the supplied virtual clock; jitter comes
// from the shim's own deterministic RNG, so a seeded run reproduces the
// exact retry schedule.
type Resilient struct {
	G      Getter
	Clock  *simtime.Clock
	Policy rma.RetryPolicy

	rng     *rand.Rand
	retries int64
	scratch []BatchOp // reusable GetBatch retry buffer
}

// NewResilient wraps g in a retry shim with the given policy, seeding
// the jitter RNG with seed.
func NewResilient(g Getter, clock *simtime.Clock, policy rma.RetryPolicy, seed int64) *Resilient {
	return &Resilient{G: g, Clock: clock, Policy: policy, rng: rand.New(rand.NewSource(seed))}
}

// Retries returns the number of re-issued attempts so far.
func (r *Resilient) Retries() int64 { return r.retries }

// retry runs op until it succeeds, fails non-transiently, or the policy
// stops it.
func (r *Resilient) retry(op func() error) error {
	start := r.Clock.Now()
	attempt := 1
	for {
		err := op()
		if err == nil || !errors.Is(err, rma.ErrTransient) {
			return err
		}
		if !r.Policy.Unlimited() && attempt >= r.Policy.MaxAttempts {
			return err
		}
		d := r.Policy.Backoff(attempt, r.rng)
		if r.Policy.Deadline > 0 && r.Clock.Now()-start+d > r.Policy.Deadline {
			return err
		}
		r.Clock.Advance(d)
		r.retries++
		attempt++
	}
}

// Get implements Getter.
func (r *Resilient) Get(dst []byte, target, disp int) error {
	return r.retry(func() error { return r.G.Get(dst, target, disp) })
}

// Flush implements Getter. Completion calls are not retried: the
// simulated transports never fail them transiently, and replaying an
// epoch closure is not a local decision.
func (r *Resilient) Flush() error { return r.G.Flush() }

// Invalidate implements Getter.
func (r *Resilient) Invalidate() { r.G.Invalidate() }

// Name implements Getter.
func (r *Resilient) Name() string { return r.G.Name() }

// GetBatch implements Batcher: one attempt through the inner batch fast
// path, then per-op retry of whatever the inner call did not certify
// delivered. An inner *rma.BatchError pins the delivered prefix; any
// other transient failure retries the whole batch per-op (individual
// re-gets are idempotent, so re-reading a delivered op is safe).
func (r *Resilient) GetBatch(ops []BatchOp) error {
	err := GetBatch(r.G, ops)
	if err == nil || !errors.Is(err, rma.ErrTransient) {
		return err
	}
	rest := ops
	var be *rma.BatchError
	if errors.As(err, &be) {
		rest = ops[be.Op:]
	}
	r.scratch = append(r.scratch[:0], rest...)
	defer clearBatchOps(r.scratch)
	for i := range r.scratch {
		op := &r.scratch[i]
		if err := r.Get(op.Dst, op.Target, op.Disp); err != nil {
			return err
		}
	}
	return nil
}

// clearBatchOps drops the buffer references of a retried batch.
func clearBatchOps(ops []BatchOp) {
	for i := range ops {
		ops[i].Dst = nil
	}
}

// Compile-time checks.
var (
	_ Getter  = (*Resilient)(nil)
	_ Batcher = (*Resilient)(nil)
)
