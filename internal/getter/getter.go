// Package getter abstracts "a way to read remote window memory" so the
// paper's applications (Barnes-Hut, LCC) can run unchanged over the three
// systems compared in the evaluation:
//
//   - Raw: plain MPI-3 RMA gets (the foMPI baseline),
//   - Cached: gets through CLaMPI (internal/core),
//   - Blocked: gets through the block-based direct-mapped software cache
//     that stands in for the "native" ad-hoc cache of the UPC Barnes-Hut
//     implementation (internal/blockcache).
//
// All three speak contiguous byte ranges, which is what both applications
// issue.
package getter

import (
	"clampi/internal/core"
	"clampi/internal/datatype"
	"clampi/internal/rma"
)

// Getter reads count bytes from target's window region. As with MPI_Get,
// the destination is valid only after Flush returns.
type Getter interface {
	// Get reads len(dst) bytes at byte displacement disp of target's
	// region into dst.
	Get(dst []byte, target, disp int) error
	// Flush completes all outstanding gets (closing the access epoch).
	Flush() error
	// Invalidate drops cached state, if any.
	Invalidate()
	// Name labels the system in benchmark output.
	Name() string
}

// Raw issues uncached window gets: the foMPI baseline.
type Raw struct {
	Win rma.Window
}

// NewRaw wraps a window in the baseline getter.
func NewRaw(win rma.Window) *Raw { return &Raw{Win: win} }

// Get implements Getter.
func (r *Raw) Get(dst []byte, target, disp int) error {
	return r.Win.Get(dst, datatype.Byte, len(dst), target, disp)
}

// Flush implements Getter.
func (r *Raw) Flush() error { return r.Win.FlushAll() }

// Invalidate implements Getter (no cache: no-op).
func (r *Raw) Invalidate() {}

// Name implements Getter.
func (r *Raw) Name() string { return "foMPI" }

// Cached issues gets through a CLaMPI cache.
type Cached struct {
	Cache *core.Cache
}

// NewCached wraps a caching layer in the Getter interface.
func NewCached(c *core.Cache) *Cached { return &Cached{Cache: c} }

// Get implements Getter.
func (c *Cached) Get(dst []byte, target, disp int) error {
	return c.Cache.Get(dst, datatype.Byte, len(dst), target, disp)
}

// Flush implements Getter.
func (c *Cached) Flush() error { return c.Cache.Win().FlushAll() }

// Invalidate implements Getter.
func (c *Cached) Invalidate() { c.Cache.Invalidate() }

// Name implements Getter.
func (c *Cached) Name() string { return "CLaMPI" }
