// Package getter abstracts "a way to read remote window memory" so the
// paper's applications (Barnes-Hut, LCC) can run unchanged over the three
// systems compared in the evaluation:
//
//   - Raw: plain MPI-3 RMA gets (the foMPI baseline),
//   - Cached: gets through CLaMPI (internal/core),
//   - Blocked: gets through the block-based direct-mapped software cache
//     that stands in for the "native" ad-hoc cache of the UPC Barnes-Hut
//     implementation (internal/blockcache).
//
// All three speak contiguous byte ranges, which is what both applications
// issue.
package getter

import (
	"clampi/internal/core"
	"clampi/internal/datatype"
	"clampi/internal/rma"
)

// Getter reads count bytes from target's window region. As with MPI_Get,
// the destination is valid only after Flush returns.
type Getter interface {
	// Get reads len(dst) bytes at byte displacement disp of target's
	// region into dst.
	Get(dst []byte, target, disp int) error
	// Flush completes all outstanding gets (closing the access epoch).
	Flush() error
	// Invalidate drops cached state, if any.
	Invalidate()
	// Name labels the system in benchmark output.
	Name() string
}

// BatchOp is one contiguous read of a batched get: len(Dst) bytes at
// byte displacement Disp of Target's region.
type BatchOp struct {
	Dst    []byte
	Target int
	Disp   int
}

// Batcher is the optional vectorized extension of Getter: systems that
// can issue many gets in one call (coalescing misses, amortizing
// per-call overhead) implement it. Use the package-level GetBatch to
// issue a batch through any Getter.
type Batcher interface {
	// GetBatch issues every op with the semantics of individual Get
	// calls; destinations are valid after the next Flush.
	GetBatch(ops []BatchOp) error
}

// GetBatch issues ops through g's Batcher fast path when it has one,
// falling back to sequential Get calls otherwise.
func GetBatch(g Getter, ops []BatchOp) error {
	if b, ok := g.(Batcher); ok {
		return b.GetBatch(ops)
	}
	for i := range ops {
		op := &ops[i]
		if err := g.Get(op.Dst, op.Target, op.Disp); err != nil {
			return err
		}
	}
	return nil
}

// Raw issues uncached window gets: the foMPI baseline.
type Raw struct {
	Win rma.Window

	scratch []rma.GetOp // reusable GetBatch translation buffer
}

// NewRaw wraps a window in the baseline getter.
func NewRaw(win rma.Window) *Raw { return &Raw{Win: win} }

// Get implements Getter.
func (r *Raw) Get(dst []byte, target, disp int) error {
	return r.Win.Get(dst, datatype.Byte, len(dst), target, disp)
}

// Flush implements Getter.
func (r *Raw) Flush() error { return r.Win.FlushAll() }

// Invalidate implements Getter (no cache: no-op).
func (r *Raw) Invalidate() {}

// Name implements Getter.
func (r *Raw) Name() string { return "foMPI" }

// GetBatch implements Batcher: the ops go to the transport's native
// batch call when it has one (one message per op either way — the
// baseline never coalesces).
func (r *Raw) GetBatch(ops []BatchOp) error {
	if bw, ok := r.Win.(rma.BatchWindow); ok {
		r.scratch = appendRMAOps(r.scratch[:0], ops)
		err := bw.GetBatch(r.scratch)
		clearRMAOps(r.scratch)
		return err
	}
	for i := range ops {
		op := &ops[i]
		if err := r.Get(op.Dst, op.Target, op.Disp); err != nil {
			return err
		}
	}
	return nil
}

// Cached issues gets through a CLaMPI cache.
type Cached struct {
	Cache *core.Cache

	scratch []core.GetOp // reusable GetBatch translation buffer
}

// NewCached wraps a caching layer in the Getter interface.
func NewCached(c *core.Cache) *Cached { return &Cached{Cache: c} }

// Get implements Getter.
func (c *Cached) Get(dst []byte, target, disp int) error {
	return c.Cache.Get(dst, datatype.Byte, len(dst), target, disp)
}

// Flush implements Getter.
func (c *Cached) Flush() error { return c.Cache.Win().FlushAll() }

// Invalidate implements Getter.
func (c *Cached) Invalidate() { c.Cache.Invalidate() }

// Name implements Getter.
func (c *Cached) Name() string { return "CLaMPI" }

// DistanceStats returns the cache's per-distance-class breakdown —
// empty when the backend reports no locality (DESIGN.md §15). Drivers
// that print locality-tier summaries reach it through the Getter
// abstraction without caring which system is under test.
func (c *Cached) DistanceStats() []core.DistanceStats { return c.Cache.DistanceStats() }

// GetBatch implements Batcher: hits are served locally and the misses
// are coalesced into merged per-target ranges by core.Cache.GetBatch.
func (c *Cached) GetBatch(ops []BatchOp) error {
	c.scratch = c.scratch[:0]
	for i := range ops {
		op := &ops[i]
		c.scratch = append(c.scratch, core.GetOp{Dst: op.Dst, Target: op.Target, Disp: op.Disp})
	}
	err := c.Cache.GetBatch(c.scratch)
	for i := range c.scratch {
		c.scratch[i].Dst = nil
	}
	return err
}

// appendRMAOps translates getter ops into transport ops.
func appendRMAOps(dst []rma.GetOp, ops []BatchOp) []rma.GetOp {
	for i := range ops {
		op := &ops[i]
		dst = append(dst, rma.GetOp{Dst: op.Dst, Target: op.Target, Disp: op.Disp})
	}
	return dst
}

// clearRMAOps drops the buffer references of a translated batch.
func clearRMAOps(ops []rma.GetOp) {
	for i := range ops {
		ops[i].Dst = nil
	}
}

// Compile-time checks: both built-in getters batch.
var (
	_ Batcher = (*Raw)(nil)
	_ Batcher = (*Cached)(nil)
)
