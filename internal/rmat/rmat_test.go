package rmat

import (
	"sort"
	"testing"
)

func TestGenerateShape(t *testing.T) {
	edges := Generate(10, 16, Graph500, 1)
	if len(edges) != 16*1024 {
		t.Fatalf("edges = %d, want %d", len(edges), 16*1024)
	}
	for _, e := range edges {
		if e.U < 0 || e.U >= 1024 || e.V < 0 || e.V >= 1024 {
			t.Fatalf("edge (%d,%d) out of range", e.U, e.V)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(8, 8, Graph500, 7)
	b := Generate(8, 8, Graph500, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed generation differs at %d", i)
		}
	}
	c := Generate(8, 8, Graph500, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("different seeds produced identical edges")
	}
}

func TestScaleFreeDegrees(t *testing.T) {
	// R-MAT with Graph500 parameters must be heavy-tailed: the top 1%
	// of vertices should hold far more than 1% of the edges, unlike a
	// uniform random graph.
	const scale, ef = 12, 16
	n := 1 << scale
	edges := Generate(scale, ef, Graph500, 3)
	deg := DegreeHistogram(n, edges)
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	top := 0
	for _, d := range deg[:n/100] {
		top += d
	}
	frac := float64(top) / float64(len(edges))
	if frac < 0.10 {
		t.Fatalf("top 1%% of vertices hold only %.1f%% of edges — not scale-free", frac*100)
	}
	// And some vertices are isolated (another scale-free signature).
	zeros := 0
	for _, d := range deg {
		if d == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatalf("no isolated vertices in an R-MAT graph")
	}
}

func TestUniformParamsAreNotSkewed(t *testing.T) {
	// Sanity check of the generator: with A=B=C=D=0.25 degrees are
	// near-uniform (low skew), confirming the skew comes from Params.
	const scale, ef = 12, 16
	n := 1 << scale
	edges := Generate(scale, ef, Params{0.25, 0.25, 0.25, 0.25}, 3)
	deg := DegreeHistogram(n, edges)
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	top := 0
	for _, d := range deg[:n/100] {
		top += d
	}
	frac := float64(top) / float64(len(edges))
	if frac > 0.05 {
		t.Fatalf("uniform parameters produced skew: top 1%% holds %.1f%%", frac*100)
	}
}

func TestScaleValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("scale 31 did not panic")
		}
	}()
	Generate(31, 1, Graph500, 1)
}

func TestDegreeHistogramIgnoresOutOfRange(t *testing.T) {
	deg := DegreeHistogram(2, []Edge{{0, 1}, {5, 0}})
	if deg[0] != 1 || deg[1] != 0 {
		t.Fatalf("deg = %v", deg)
	}
}

func TestStreamMatchesGenerate(t *testing.T) {
	// The buffered adapter and the stream must be bit-identical: same
	// seed, same descent, same RNG consumption order.
	edges := Generate(9, 12, Graph500, 19)
	s := NewStream(9, 12, Graph500, 19)
	if s.Len() != len(edges) {
		t.Fatalf("Len = %d, Generate produced %d", s.Len(), len(edges))
	}
	for i, want := range edges {
		got, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended at %d of %d", i, len(edges))
		}
		if got != want {
			t.Fatalf("edge %d: stream %v, slice %v", i, got, want)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream yielded past Len")
	}
	if s.Emitted() != s.Len() {
		t.Fatalf("Emitted = %d, want %d", s.Emitted(), s.Len())
	}
}

func TestStreamReset(t *testing.T) {
	s := NewStream(6, 4, Graph500, 3)
	var first []Edge
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		first = append(first, e)
	}
	s.Reset()
	if s.Emitted() != 0 {
		t.Fatalf("Emitted after Reset = %d", s.Emitted())
	}
	for i, want := range first {
		got, ok := s.Next()
		if !ok || got != want {
			t.Fatalf("replay edge %d: %v %v, want %v", i, got, ok, want)
		}
	}
}

func TestStreamConstantMemory(t *testing.T) {
	// The whole point of the stream: Next allocates nothing, so the
	// edge count never enters the memory footprint.
	s := NewStream(10, 16, Graph500, 5)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := s.Next(); !ok {
			s.Reset()
		}
	})
	if allocs > 0 {
		t.Fatalf("Next allocates %.1f allocs/op, want 0", allocs)
	}
}
