// Package rmat implements the R-MAT recursive-matrix random graph
// generator (Chakrabarti, Zhan, Faloutsos), which the paper uses to
// create the scale-free input graphs of the LCC experiments (§IV-C).
//
// Each edge is placed by recursively descending into one of the four
// quadrants of the adjacency matrix with probabilities (A, B, C, D); the
// Graph500 parameters (0.57, 0.19, 0.19, 0.05) produce the heavy-tailed
// degree distributions typical of real-world networks.
//
// The generator is streaming: Stream yields one edge per Next call in
// O(1) memory, so a 10⁸-edge graph can be consumed — fed to a counting
// pass, hashed into rank contexts, replayed — without an edge list ever
// existing. Generate is the buffered adapter over the same stream and
// returns the bit-identical sequence as a slice for callers that build
// in-memory CSR graphs.
package rmat

import "math/rand"

// Params are the quadrant probabilities. They must be positive and sum
// to ~1.
type Params struct {
	A, B, C, D float64
}

// Graph500 is the standard parameter set used by the paper's experiments.
var Graph500 = Params{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// Edge is one directed edge (U -> V) over vertex ids [0, 2^scale).
type Edge struct {
	U, V int32
}

// Stream generates the R-MAT edge sequence one edge at a time. It is
// exactly the sequence Generate returns for the same parameters — the
// two share one descent routine and consume the RNG identically — but
// the stream holds only the generator state, never the edges: memory is
// O(1) in the edge count. A Stream is single-goroutine; concurrent
// consumers each create their own (same seed, same sequence).
type Stream struct {
	scale int
	p     Params
	seed  int64
	rng   *rand.Rand
	m     int // total edges
	i     int // edges emitted so far
}

// NewStream prepares a stream of edgeFactor * 2^scale edges over
// 2^scale vertices, with the same validation and determinism contract
// as Generate.
func NewStream(scale, edgeFactor int, p Params, seed int64) *Stream {
	if scale < 0 || scale > 30 {
		panic("rmat: scale out of range")
	}
	return &Stream{
		scale: scale,
		p:     p,
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		m:     edgeFactor * (1 << scale),
	}
}

// Len returns the total number of edges the stream yields.
func (s *Stream) Len() int { return s.m }

// Emitted returns how many edges Next has yielded so far.
func (s *Stream) Emitted() int { return s.i }

// Next yields the next edge; ok is false once the stream is exhausted.
func (s *Stream) Next() (e Edge, ok bool) {
	if s.i >= s.m {
		return Edge{}, false
	}
	s.i++
	return genEdge(s.scale, s.p, s.rng), true
}

// Reset rewinds the stream to the first edge by re-seeding the RNG; the
// replayed sequence is bit-identical to the first pass.
func (s *Stream) Reset() {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.i = 0
}

// Generate produces 2^scale vertices and edgeFactor * 2^scale R-MAT
// edges (with duplicates and self-loops, as raw R-MAT emits them;
// deduplication is the graph builder's job). Noise is added to the
// quadrant probabilities at each level, as in the Graph500 reference
// implementation, to avoid grid artifacts. It is the buffered adapter
// over Stream: same parameters, bit-identical edges, materialized.
func Generate(scale, edgeFactor int, p Params, seed int64) []Edge {
	s := NewStream(scale, edgeFactor, p, seed)
	edges := make([]Edge, 0, s.Len())
	for {
		e, ok := s.Next()
		if !ok {
			return edges
		}
		edges = append(edges, e)
	}
}

func genEdge(scale int, p Params, rng *rand.Rand) Edge {
	var u, v int32
	a, b, c := p.A, p.B, p.C
	for depth := 0; depth < scale; depth++ {
		// Perturb the probabilities ±10% per level (Graph500 noise).
		an := a * (0.9 + 0.2*rng.Float64())
		bn := b * (0.9 + 0.2*rng.Float64())
		cn := c * (0.9 + 0.2*rng.Float64())
		dn := (1 - a - b - c) * (0.9 + 0.2*rng.Float64())
		norm := an + bn + cn + dn
		r := rng.Float64() * norm
		u <<= 1
		v <<= 1
		switch {
		case r < an:
			// quadrant A: (0,0)
		case r < an+bn:
			v |= 1
		case r < an+bn+cn:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	return Edge{U: u, V: v}
}

// DegreeHistogram returns out-degree counts per vertex for raw edges
// (diagnostics and tests).
func DegreeHistogram(n int, edges []Edge) []int {
	deg := make([]int, n)
	for _, e := range edges {
		if int(e.U) < n {
			deg[e.U]++
		}
	}
	return deg
}
