// Package rmat implements the R-MAT recursive-matrix random graph
// generator (Chakrabarti, Zhan, Faloutsos), which the paper uses to
// create the scale-free input graphs of the LCC experiments (§IV-C).
//
// Each edge is placed by recursively descending into one of the four
// quadrants of the adjacency matrix with probabilities (A, B, C, D); the
// Graph500 parameters (0.57, 0.19, 0.19, 0.05) produce the heavy-tailed
// degree distributions typical of real-world networks.
package rmat

import "math/rand"

// Params are the quadrant probabilities. They must be positive and sum
// to ~1.
type Params struct {
	A, B, C, D float64
}

// Graph500 is the standard parameter set used by the paper's experiments.
var Graph500 = Params{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// Edge is one directed edge (U -> V) over vertex ids [0, 2^scale).
type Edge struct {
	U, V int32
}

// Generate produces 2^scale vertices and edgeFactor * 2^scale R-MAT
// edges (with duplicates and self-loops, as raw R-MAT emits them;
// deduplication is the graph builder's job). Noise is added to the
// quadrant probabilities at each level, as in the Graph500 reference
// implementation, to avoid grid artifacts.
func Generate(scale, edgeFactor int, p Params, seed int64) []Edge {
	if scale < 0 || scale > 30 {
		panic("rmat: scale out of range")
	}
	n := 1 << scale
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = genEdge(scale, p, rng)
	}
	return edges
}

func genEdge(scale int, p Params, rng *rand.Rand) Edge {
	var u, v int32
	a, b, c := p.A, p.B, p.C
	for depth := 0; depth < scale; depth++ {
		// Perturb the probabilities ±10% per level (Graph500 noise).
		an := a * (0.9 + 0.2*rng.Float64())
		bn := b * (0.9 + 0.2*rng.Float64())
		cn := c * (0.9 + 0.2*rng.Float64())
		dn := (1 - a - b - c) * (0.9 + 0.2*rng.Float64())
		norm := an + bn + cn + dn
		r := rng.Float64() * norm
		u <<= 1
		v <<= 1
		switch {
		case r < an:
			// quadrant A: (0,0)
		case r < an+bn:
			v |= 1
		case r < an+bn+cn:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	return Edge{U: u, V: v}
}

// DegreeHistogram returns out-degree counts per vertex for raw edges
// (diagnostics and tests).
func DegreeHistogram(n int, edges []Edge) []int {
	deg := make([]int, n)
	for _, e := range edges {
		if int(e.U) < n {
			deg[e.U]++
		}
	}
	return deg
}
