// Package trace records get-operation traces for the locality analyses
// that motivate the paper: the repetition histogram of Fig. 2 (how often
// the same remote data is re-fetched in a Barnes-Hut run) and the
// transfer-size distribution of Fig. 3 (LCC).
package trace

import (
	"fmt"
	"sort"
)

// Op identifies one get: the (target, displacement, size) triple. Two
// gets with equal Op fetch the same remote data.
type Op struct {
	Target int
	Disp   int
	Size   int
}

// Recorder accumulates a get trace. Not safe for concurrent use; each
// rank records into its own Recorder and histograms are merged afterwards.
type Recorder struct {
	counts map[Op]int
	sizes  []int
	total  int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{counts: make(map[Op]int)}
}

// Record notes one get operation.
func (r *Recorder) Record(target, disp, size int) {
	r.counts[Op{target, disp, size}]++
	r.sizes = append(r.sizes, size)
	r.total++
}

// Total returns the number of recorded gets.
func (r *Recorder) Total() int { return r.total }

// Distinct returns the number of distinct (target, disp, size) triples.
func (r *Recorder) Distinct() int { return len(r.counts) }

// MaxRepetition returns the highest repeat count of any single get (the
// paper reports up to 3,500 for Barnes-Hut).
func (r *Recorder) MaxRepetition() int {
	m := 0
	for _, c := range r.counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Merge folds another recorder's trace into r (for per-rank merges).
func (r *Recorder) Merge(o *Recorder) {
	for op, c := range o.counts {
		r.counts[op] += c
	}
	r.sizes = append(r.sizes, o.sizes...)
	r.total += o.total
}

// RepetitionBucket is one bar of the Fig. 2 histogram: Gets distinct gets
// were each repeated between [LoReps, HiReps] times.
type RepetitionBucket struct {
	LoReps, HiReps int
	Gets           int
}

// RepetitionHistogram buckets distinct gets by their repetition count in
// power-of-two bins: [1,1], [2,3], [4,7], ... (Fig. 2's log axes).
func (r *Recorder) RepetitionHistogram() []RepetitionBucket {
	if len(r.counts) == 0 {
		return nil
	}
	byBin := map[int]int{} // bin index -> distinct gets
	maxBin := 0
	for _, c := range r.counts {
		b := 0
		for (1 << (b + 1)) <= c {
			b++
		}
		byBin[b]++
		if b > maxBin {
			maxBin = b
		}
	}
	out := make([]RepetitionBucket, 0, maxBin+1)
	for b := 0; b <= maxBin; b++ {
		lo := 1 << b
		hi := 1<<(b+1) - 1
		out = append(out, RepetitionBucket{LoReps: lo, HiReps: hi, Gets: byBin[b]})
	}
	return out
}

// SizeBucket is one bar of the Fig. 3 histogram.
type SizeBucket struct {
	LoBytes, HiBytes int
	Gets             int
}

// SizeHistogram buckets recorded transfer sizes into power-of-two bins
// starting at 1 byte.
func (r *Recorder) SizeHistogram() []SizeBucket {
	if len(r.sizes) == 0 {
		return nil
	}
	byBin := map[int]int{}
	maxBin := 0
	for _, s := range r.sizes {
		b := 0
		for (1 << (b + 1)) <= s {
			b++
		}
		byBin[b]++
		if b > maxBin {
			maxBin = b
		}
	}
	out := make([]SizeBucket, 0, maxBin+1)
	for b := 0; b <= maxBin; b++ {
		out = append(out, SizeBucket{LoBytes: 1 << b, HiBytes: 1<<(b+1) - 1, Gets: byBin[b]})
	}
	return out
}

// SizeQuantile returns the q-quantile (0..1) of recorded sizes.
func (r *Recorder) SizeQuantile(q float64) int {
	if len(r.sizes) == 0 {
		return 0
	}
	s := make([]int, len(r.sizes))
	copy(s, r.sizes)
	sort.Ints(s)
	i := int(q * float64(len(s)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// MeanSize returns the average recorded transfer size.
func (r *Recorder) MeanSize() float64 {
	if len(r.sizes) == 0 {
		return 0
	}
	t := 0
	for _, s := range r.sizes {
		t += s
	}
	return float64(t) / float64(len(r.sizes))
}

// ReuseFactor returns Total/Distinct: the average number of times each
// distinct get is issued. Values well above 1 are what CLaMPI exploits.
func (r *Recorder) ReuseFactor() float64 {
	if len(r.counts) == 0 {
		return 0
	}
	return float64(r.total) / float64(len(r.counts))
}

func (b RepetitionBucket) String() string {
	return fmt.Sprintf("reps %d-%d: %d gets", b.LoReps, b.HiReps, b.Gets)
}

func (b SizeBucket) String() string {
	return fmt.Sprintf("size %d-%dB: %d gets", b.LoBytes, b.HiBytes, b.Gets)
}
