package trace

import "testing"

func TestEmptyRecorder(t *testing.T) {
	r := NewRecorder()
	if r.Total() != 0 || r.Distinct() != 0 || r.MaxRepetition() != 0 {
		t.Fatalf("empty recorder has data")
	}
	if r.RepetitionHistogram() != nil || r.SizeHistogram() != nil {
		t.Fatalf("empty histograms not nil")
	}
	if r.SizeQuantile(0.5) != 0 || r.MeanSize() != 0 || r.ReuseFactor() != 0 {
		t.Fatalf("empty stats nonzero")
	}
}

func TestRecordAndCounts(t *testing.T) {
	r := NewRecorder()
	r.Record(1, 0, 64)
	r.Record(1, 0, 64) // repeat
	r.Record(1, 64, 128)
	r.Record(2, 0, 64) // different target: distinct
	if r.Total() != 4 {
		t.Fatalf("Total = %d", r.Total())
	}
	if r.Distinct() != 3 {
		t.Fatalf("Distinct = %d", r.Distinct())
	}
	if r.MaxRepetition() != 2 {
		t.Fatalf("MaxRepetition = %d", r.MaxRepetition())
	}
	if rf := r.ReuseFactor(); rf != 4.0/3.0 {
		t.Fatalf("ReuseFactor = %v", rf)
	}
}

func TestRepetitionHistogram(t *testing.T) {
	r := NewRecorder()
	// One get repeated 1x, one 2x, one 5x.
	r.Record(0, 0, 8)
	for i := 0; i < 2; i++ {
		r.Record(0, 8, 8)
	}
	for i := 0; i < 5; i++ {
		r.Record(0, 16, 8)
	}
	h := r.RepetitionHistogram()
	// Bins: [1,1]=1, [2,3]=1, [4,7]=1.
	if len(h) != 3 {
		t.Fatalf("histogram = %v", h)
	}
	if h[0].Gets != 1 || h[0].LoReps != 1 || h[0].HiReps != 1 {
		t.Fatalf("bin0 = %+v", h[0])
	}
	if h[1].Gets != 1 || h[1].LoReps != 2 || h[1].HiReps != 3 {
		t.Fatalf("bin1 = %+v", h[1])
	}
	if h[2].Gets != 1 || h[2].LoReps != 4 || h[2].HiReps != 7 {
		t.Fatalf("bin2 = %+v", h[2])
	}
	// Totals conserved: sum(bin.Gets) == Distinct.
	sum := 0
	for _, b := range h {
		sum += b.Gets
	}
	if sum != r.Distinct() {
		t.Fatalf("histogram loses gets: %d vs %d", sum, r.Distinct())
	}
	if h[0].String() == "" {
		t.Fatalf("empty String")
	}
}

func TestSizeHistogramAndQuantiles(t *testing.T) {
	r := NewRecorder()
	sizes := []int{1, 2, 2, 4, 1024, 1500, 65536}
	for i, s := range sizes {
		r.Record(0, i*65536, s)
	}
	h := r.SizeHistogram()
	sum := 0
	for _, b := range h {
		sum += b.Gets
		if b.LoBytes > b.HiBytes {
			t.Fatalf("bad bin %+v", b)
		}
	}
	if sum != len(sizes) {
		t.Fatalf("size histogram lost entries: %d", sum)
	}
	if q := r.SizeQuantile(0); q != 1 {
		t.Fatalf("q0 = %d", q)
	}
	if q := r.SizeQuantile(1); q != 65536 {
		t.Fatalf("q1 = %d", q)
	}
	if q := r.SizeQuantile(0.5); q != 4 {
		t.Fatalf("median = %d", q)
	}
	if m := r.MeanSize(); m <= 0 {
		t.Fatalf("MeanSize = %v", m)
	}
	if h[0].String() == "" {
		t.Fatalf("empty String")
	}
}

func TestQuantileClamping(t *testing.T) {
	r := NewRecorder()
	r.Record(0, 0, 7)
	if r.SizeQuantile(-1) != 7 || r.SizeQuantile(2) != 7 {
		t.Fatalf("quantile clamping broken")
	}
}

func TestMerge(t *testing.T) {
	a := NewRecorder()
	b := NewRecorder()
	a.Record(0, 0, 8)
	b.Record(0, 0, 8)
	b.Record(1, 0, 16)
	a.Merge(b)
	if a.Total() != 3 || a.Distinct() != 2 || a.MaxRepetition() != 2 {
		t.Fatalf("merged: total=%d distinct=%d max=%d", a.Total(), a.Distinct(), a.MaxRepetition())
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	empty := NewRecorder()
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.SizeQuantile(q); got != 0 {
			t.Errorf("empty SizeQuantile(%v) = %d, want 0", q, got)
		}
	}

	single := NewRecorder()
	single.Record(0, 0, 42)
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if got := single.SizeQuantile(q); got != 42 {
			t.Errorf("single-sample SizeQuantile(%v) = %d, want 42", q, got)
		}
	}

	multi := NewRecorder()
	for _, s := range []int{64, 8, 512, 32} {
		multi.Record(0, 0, s)
	}
	if got := multi.SizeQuantile(0); got != 8 {
		t.Errorf("p0 = %d, want smallest size 8", got)
	}
	if got := multi.SizeQuantile(1); got != 512 {
		t.Errorf("p100 = %d, want largest size 512", got)
	}
	if got := multi.SizeQuantile(0.5); got != 32 {
		t.Errorf("p50 = %d, want 32", got)
	}
}
