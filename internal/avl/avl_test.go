package avl

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	var tr Tree[int]
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Get(Key{1, 0}); ok {
		t.Fatalf("Get on empty tree returned ok")
	}
	if _, _, ok := tr.Ceiling(0); ok {
		t.Fatalf("Ceiling on empty tree returned ok")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatalf("Min on empty tree returned ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatalf("Max on empty tree returned ok")
	}
	if tr.Delete(Key{1, 0}) {
		t.Fatalf("Delete on empty tree returned true")
	}
}

func TestInsertGetDelete(t *testing.T) {
	var tr Tree[string]
	if !tr.Insert(Key{100, 0}, "a") {
		t.Fatalf("first insert not created")
	}
	if tr.Insert(Key{100, 0}, "b") {
		t.Fatalf("replacing insert reported created")
	}
	if v, ok := tr.Get(Key{100, 0}); !ok || v != "b" {
		t.Fatalf("Get = %q,%v after replace", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if !tr.Delete(Key{100, 0}) {
		t.Fatalf("Delete failed")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after delete", tr.Len())
	}
}

func TestSameSizeDifferentOffsets(t *testing.T) {
	// Equal-size free regions must coexist (offset disambiguates).
	var tr Tree[int]
	for off := 0; off < 10; off++ {
		tr.Insert(Key{64, off * 64}, off)
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tr.Len())
	}
	for off := 0; off < 10; off++ {
		if v, ok := tr.Get(Key{64, off * 64}); !ok || v != off {
			t.Fatalf("Get(64@%d) = %d,%v", off*64, v, ok)
		}
	}
}

func TestCeilingBestFit(t *testing.T) {
	var tr Tree[int]
	sizes := []int{32, 64, 128, 512, 4096}
	for i, s := range sizes {
		tr.Insert(Key{s, i}, s)
	}
	cases := []struct {
		req  int
		want int
		ok   bool
	}{
		{1, 32, true},
		{32, 32, true},
		{33, 64, true},
		{65, 128, true},
		{129, 512, true},
		{513, 4096, true},
		{4096, 4096, true},
		{4097, 0, false},
	}
	for _, c := range cases {
		k, _, ok := tr.Ceiling(c.req)
		if ok != c.ok {
			t.Fatalf("Ceiling(%d) ok=%v, want %v", c.req, ok, c.ok)
		}
		if ok && k.Size != c.want {
			t.Fatalf("Ceiling(%d) = %d, want %d", c.req, k.Size, c.want)
		}
	}
}

func TestCeilingPrefersLowestOffsetAmongEqualSizes(t *testing.T) {
	var tr Tree[int]
	tr.Insert(Key{64, 300}, 0)
	tr.Insert(Key{64, 100}, 1)
	tr.Insert(Key{64, 200}, 2)
	k, _, ok := tr.Ceiling(64)
	if !ok || k.Off != 100 {
		t.Fatalf("Ceiling(64) = %v, want offset 100", k)
	}
}

func TestMinMaxWalk(t *testing.T) {
	var tr Tree[int]
	perm := rand.New(rand.NewSource(42)).Perm(100)
	for _, p := range perm {
		tr.Insert(Key{p, 0}, p)
	}
	if k, _, _ := tr.Min(); k.Size != 0 {
		t.Fatalf("Min = %v", k)
	}
	if k, _, _ := tr.Max(); k.Size != 99 {
		t.Fatalf("Max = %v", k)
	}
	var got []int
	tr.Walk(func(k Key, v int) bool {
		got = append(got, k.Size)
		return true
	})
	if !sort.IntsAreSorted(got) || len(got) != 100 {
		t.Fatalf("Walk not sorted or wrong count: %d", len(got))
	}
	// Early stop.
	var count int
	tr.Walk(func(Key, int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestBalanceUnderSequentialInsert(t *testing.T) {
	// Sequential inserts are the classic AVL worst case; height must
	// stay logarithmic.
	var tr Tree[int]
	const n = 1 << 12
	for i := 0; i < n; i++ {
		tr.Insert(Key{i, 0}, i)
		if i%512 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tr.Height() > 18 { // 1.44*log2(4096) ~ 17.3
		t.Fatalf("height %d too large for %d nodes", tr.Height(), n)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomOperationsInvariant(t *testing.T) {
	// Property test: after arbitrary insert/delete sequences the AVL
	// invariants hold and contents match a reference map.
	f := func(ops []uint16) bool {
		var tr Tree[int]
		ref := make(map[Key]int)
		for i, op := range ops {
			k := Key{Size: int(op % 64), Off: int(op/64) % 16}
			if op%3 == 0 {
				tr.Delete(k)
				delete(ref, k)
			} else {
				tr.Insert(k, i)
				ref[k] = i
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		if err := tr.checkInvariants(); err != nil {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteInternalNodes(t *testing.T) {
	var tr Tree[int]
	for i := 0; i < 64; i++ {
		tr.Insert(Key{i, 0}, i)
	}
	// Delete in an order that exercises two-child removals.
	for _, i := range []int{31, 15, 47, 7, 23, 39, 55} {
		if !tr.Delete(Key{i, 0}) {
			t.Fatalf("Delete(%d) failed", i)
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 57 {
		t.Fatalf("Len = %d, want 57", tr.Len())
	}
	if tr.Delete(Key{31, 0}) {
		t.Fatalf("double delete succeeded")
	}
}

func TestKeyLessAndString(t *testing.T) {
	if !(Key{1, 0}).Less(Key{2, 0}) {
		t.Fatalf("size ordering broken")
	}
	if !(Key{1, 0}).Less(Key{1, 5}) {
		t.Fatalf("offset tiebreak broken")
	}
	if (Key{1, 5}).Less(Key{1, 5}) {
		t.Fatalf("Less not strict")
	}
	if (Key{3, 7}).String() != "(3@7)" {
		t.Fatalf("String = %q", (Key{3, 7}).String())
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	var tr Tree[int]
	rng := rand.New(rand.NewSource(1))
	keys := make([]Key, 4096)
	for i := range keys {
		keys[i] = Key{rng.Intn(1 << 20), i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		tr.Insert(k, i)
		if i%2 == 1 {
			tr.Delete(keys[(i-1)%len(keys)])
		}
	}
}

func BenchmarkCeiling(b *testing.B) {
	var tr Tree[int]
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4096; i++ {
		tr.Insert(Key{rng.Intn(1 << 20), i}, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Ceiling(rng.Intn(1 << 20))
	}
}
