package avl

// Arena is a chunk-allocating node arena for Tree. A Tree without an
// arena recycles nodes through its private free list, allocating each
// node individually from the Go heap on first use; a Tree with an arena
// draws nodes from the arena's chunks instead.
//
// The point is per-shard isolation, not raw speed: the sharded storage
// layer (internal/core's concurrent cache) gives every shard its own
// Manager, and every Manager its own Arena, so concurrent misses on
// different shards allocate tree nodes with zero cross-shard contention
// — no shared free list, no shared heap hot spot, and chunked backing
// memory that stays local to the shard that touched it.
//
// An Arena is single-owner like the Tree it serves: callers synchronize
// access exactly as they synchronize the Tree (in the sharded cache,
// the shard's fill lock).
type Arena[V any] struct {
	chunkSize int
	chunk     []node[V] // current chunk; nodes are handed out from the front
	next      int       // next unissued node in chunk
	free      *node[V]  // recycled nodes, linked through right

	allocated int // total nodes ever issued (diagnostics)
	chunks    int // chunks created (diagnostics)
}

// DefaultChunk is the nodes-per-chunk default when NewArena is given a
// non-positive size.
const DefaultChunk = 128

// NewArena creates an arena issuing nodes in chunks of chunkSize.
func NewArena[V any](chunkSize int) *Arena[V] {
	if chunkSize <= 0 {
		chunkSize = DefaultChunk
	}
	return &Arena[V]{chunkSize: chunkSize}
}

// get returns a zeroed node initialized to (key, val, height 1).
func (a *Arena[V]) get(key Key, val V) *node[V] {
	if n := a.free; n != nil {
		a.free = n.right
		*n = node[V]{key: key, val: val, height: 1}
		return n
	}
	if a.next == len(a.chunk) {
		a.chunk = make([]node[V], a.chunkSize)
		a.next = 0
		a.chunks++
	}
	n := &a.chunk[a.next]
	a.next++
	a.allocated++
	*n = node[V]{key: key, val: val, height: 1}
	return n
}

// put recycles a detached node, dropping its value reference.
func (a *Arena[V]) put(n *node[V]) {
	var zero V
	n.val = zero
	n.left = nil
	n.right = a.free
	a.free = n
}

// Allocated returns the number of distinct nodes the arena has issued
// (recycled nodes are not re-counted).
func (a *Arena[V]) Allocated() int { return a.allocated }

// Chunks returns the number of backing chunks created.
func (a *Arena[V]) Chunks() int { return a.chunks }

// SetArena routes the tree's node allocation through arena. It must be
// called on an empty tree (the tree's private free list and the arena
// must not mix recycled nodes); calling it with nil restores the
// private free list.
func (t *Tree[V]) SetArena(arena *Arena[V]) {
	if t.root != nil || t.pool != nil {
		panic("avl: SetArena on a non-empty tree")
	}
	t.arena = arena
}

// Arena returns the arena the tree allocates from (nil when using the
// private free list).
func (t *Tree[V]) Arena() *Arena[V] { return t.arena }
