package avl

import "testing"

// TestArenaTreeOps drives a tree through its arena allocator and checks
// invariants plus node reuse accounting.
func TestArenaTreeOps(t *testing.T) {
	a := NewArena[int](8)
	var tr Tree[int]
	tr.SetArena(a)
	if tr.Arena() != a {
		t.Fatal("Arena() does not return the installed arena")
	}

	for i := 0; i < 100; i++ {
		tr.Insert(Key{Size: i % 25, Off: i}, i)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if a.Allocated() != 100 {
		t.Fatalf("Allocated = %d, want 100", a.Allocated())
	}
	if want := (100 + 7) / 8; a.Chunks() != want {
		t.Fatalf("Chunks = %d, want %d", a.Chunks(), want)
	}

	// Delete half; the nodes go back to the arena free list.
	for i := 0; i < 100; i += 2 {
		if !tr.Delete(Key{Size: i % 25, Off: i}) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Re-insert: recycled nodes are reused, no new issues.
	before := a.Allocated()
	for i := 0; i < 100; i += 2 {
		tr.Insert(Key{Size: i % 25, Off: i}, i)
	}
	if a.Allocated() != before {
		t.Fatalf("re-insert issued %d new nodes, want 0", a.Allocated()-before)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}

	// Clear recycles everything; the next fill reuses it all.
	tr.Clear()
	if tr.Len() != 0 {
		t.Fatalf("Len after Clear = %d", tr.Len())
	}
	before = a.Allocated()
	for i := 0; i < 100; i++ {
		tr.Insert(Key{Size: i, Off: i}, i)
	}
	if a.Allocated() != before {
		t.Fatalf("post-Clear fill issued %d new nodes, want 0", a.Allocated()-before)
	}
}

// TestArenaIsolation proves two trees with separate arenas never share
// recycled nodes: churn on one must not change the other's accounting.
func TestArenaIsolation(t *testing.T) {
	a1, a2 := NewArena[int](16), NewArena[int](16)
	var t1, t2 Tree[int]
	t1.SetArena(a1)
	t2.SetArena(a2)
	for i := 0; i < 50; i++ {
		t1.Insert(Key{Size: i, Off: 0}, i)
		t2.Insert(Key{Size: i, Off: 0}, i)
	}
	issued2 := a2.Allocated()
	for i := 0; i < 50; i++ {
		t1.Delete(Key{Size: i, Off: 0})
		t1.Insert(Key{Size: i + 100, Off: 0}, i)
	}
	if a2.Allocated() != issued2 {
		t.Fatal("churn on tree 1 changed tree 2's arena")
	}
	if a1.Allocated() != 50 {
		t.Fatalf("tree 1 issued %d nodes, want 50 (full recycling)", a1.Allocated())
	}
}

// TestSetArenaGuards proves SetArena refuses non-empty trees.
func TestSetArenaGuards(t *testing.T) {
	var tr Tree[int]
	tr.Insert(Key{Size: 1, Off: 0}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("SetArena on a non-empty tree did not panic")
		}
	}()
	tr.SetArena(NewArena[int](8))
}
