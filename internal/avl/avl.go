// Package avl implements the self-balancing binary search tree
// (Adelson-Velskii & Landis) used by the CLaMPI storage manager to index
// free memory regions by size (paper §III-C2).
//
// Keys are (Size, Off) pairs ordered by Size then Off: the secondary
// offset component makes every free region's key unique, so regions of
// equal size coexist. Ceiling(size) implements the best-fit policy — the
// smallest free region large enough for an allocation — in O(log N).
package avl

import "fmt"

// Key orders tree entries: primary by Size, ties broken by Off. For free
// regions, Size is the region length and Off its buffer offset.
type Key struct {
	Size int
	Off  int
}

// Less is the strict ordering of keys.
func (k Key) Less(o Key) bool {
	if k.Size != o.Size {
		return k.Size < o.Size
	}
	return k.Off < o.Off
}

func (k Key) String() string { return fmt.Sprintf("(%d@%d)", k.Size, k.Off) }

// Tree is an AVL tree mapping Keys to values of type V. The zero value is
// an empty tree ready for use. Not safe for concurrent mutation.
type Tree[V any] struct {
	root  *node[V]
	size  int
	pool  *node[V]  // recycled nodes, linked through right (no arena)
	arena *Arena[V] // chunked allocator when set (SetArena)
}

type node[V any] struct {
	key         Key
	val         V
	left, right *node[V]
	height      int
}

// Len returns the number of entries.
func (t *Tree[V]) Len() int { return t.size }

// newNode takes a node off the arena (when set) or the private pool.
// Pooling keeps the storage manager's steady-state alloc/free cycle
// allocation-free either way.
func (t *Tree[V]) newNode(key Key, val V) *node[V] {
	if t.arena != nil {
		return t.arena.get(key, val)
	}
	n := t.pool
	if n == nil {
		return &node[V]{key: key, val: val, height: 1}
	}
	t.pool = n.right
	*n = node[V]{key: key, val: val, height: 1}
	return n
}

// recycle pushes a detached node onto the arena (when set) or the
// private pool, dropping its value reference.
func (t *Tree[V]) recycle(n *node[V]) {
	if t.arena != nil {
		t.arena.put(n)
		return
	}
	var zero V
	n.val = zero
	n.left = nil
	n.right = t.pool
	t.pool = n
}

// Clear empties the tree, recycling every node onto the pool.
func (t *Tree[V]) Clear() {
	var drop func(n *node[V])
	drop = func(n *node[V]) {
		if n == nil {
			return
		}
		drop(n.left)
		drop(n.right)
		t.recycle(n)
	}
	drop(t.root)
	t.root = nil
	t.size = 0
}

func h[V any](n *node[V]) int {
	if n == nil {
		return 0
	}
	return n.height
}

func fix[V any](n *node[V]) {
	lh, rh := h(n.left), h(n.right)
	if lh > rh {
		n.height = lh + 1
	} else {
		n.height = rh + 1
	}
}

func balanceOf[V any](n *node[V]) int { return h(n.left) - h(n.right) }

func rotateRight[V any](y *node[V]) *node[V] {
	x := y.left
	y.left = x.right
	x.right = y
	fix(y)
	fix(x)
	return x
}

func rotateLeft[V any](x *node[V]) *node[V] {
	y := x.right
	x.right = y.left
	y.left = x
	fix(x)
	fix(y)
	return y
}

func rebalance[V any](n *node[V]) *node[V] {
	fix(n)
	switch b := balanceOf(n); {
	case b > 1:
		if balanceOf(n.left) < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case b < -1:
		if balanceOf(n.right) > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// Insert adds or replaces the entry for key. It returns true if a new
// entry was created (false if an existing key's value was replaced).
func (t *Tree[V]) Insert(key Key, val V) bool {
	var created bool
	t.root, created = t.insert(t.root, key, val)
	if created {
		t.size++
	}
	return created
}

func (t *Tree[V]) insert(n *node[V], key Key, val V) (*node[V], bool) {
	if n == nil {
		return t.newNode(key, val), true
	}
	var created bool
	switch {
	case key.Less(n.key):
		n.left, created = t.insert(n.left, key, val)
	case n.key.Less(key):
		n.right, created = t.insert(n.right, key, val)
	default:
		n.val = val
		return n, false
	}
	return rebalance(n), created
}

// Delete removes the entry for key, returning true if it existed.
func (t *Tree[V]) Delete(key Key) bool {
	var deleted bool
	t.root, deleted = t.remove(t.root, key)
	if deleted {
		t.size--
	}
	return deleted
}

func (t *Tree[V]) remove(n *node[V], key Key) (*node[V], bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case key.Less(n.key):
		n.left, deleted = t.remove(n.left, key)
	case n.key.Less(key):
		n.right, deleted = t.remove(n.right, key)
	default:
		deleted = true
		if n.left == nil {
			r := n.right
			t.recycle(n)
			return r, true
		}
		if n.right == nil {
			l := n.left
			t.recycle(n)
			return l, true
		}
		// Replace with in-order successor.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.key, n.val = succ.key, succ.val
		n.right, _ = t.remove(n.right, succ.key)
	}
	return rebalance(n), deleted
}

// Get returns the value stored for key.
func (t *Tree[V]) Get(key Key) (V, bool) {
	n := t.root
	for n != nil {
		switch {
		case key.Less(n.key):
			n = n.left
		case n.key.Less(key):
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Ceiling returns the entry with the smallest key k such that k.Size >=
// size (best fit). The ok result is false if no region is large enough.
func (t *Tree[V]) Ceiling(size int) (Key, V, bool) {
	var (
		best   *node[V]
		target = Key{Size: size, Off: -1 << 62}
	)
	n := t.root
	for n != nil {
		if target.Less(n.key) || target == n.key {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		var zero V
		return Key{}, zero, false
	}
	return best.key, best.val, true
}

// Min returns the smallest key in the tree.
func (t *Tree[V]) Min() (Key, V, bool) {
	if t.root == nil {
		var zero V
		return Key{}, zero, false
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Max returns the largest key in the tree.
func (t *Tree[V]) Max() (Key, V, bool) {
	if t.root == nil {
		var zero V
		return Key{}, zero, false
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Walk visits all entries in ascending key order; the visitor returns
// false to stop early.
func (t *Tree[V]) Walk(f func(Key, V) bool) {
	walk(t.root, f)
}

func walk[V any](n *node[V], f func(Key, V) bool) bool {
	if n == nil {
		return true
	}
	return walk(n.left, f) && f(n.key, n.val) && walk(n.right, f)
}

// Height returns the tree height (0 for empty); exposed for balance tests.
func (t *Tree[V]) Height() int { return h(t.root) }

// checkInvariants verifies AVL balance and BST ordering; test helper.
func (t *Tree[V]) checkInvariants() error {
	_, err := check(t.root, nil, nil)
	return err
}

func check[V any](n *node[V], lo, hi *Key) (int, error) {
	if n == nil {
		return 0, nil
	}
	if lo != nil && !lo.Less(n.key) {
		return 0, fmt.Errorf("avl: order violation at %v (lower bound %v)", n.key, *lo)
	}
	if hi != nil && !n.key.Less(*hi) {
		return 0, fmt.Errorf("avl: order violation at %v (upper bound %v)", n.key, *hi)
	}
	lh, err := check(n.left, lo, &n.key)
	if err != nil {
		return 0, err
	}
	rh, err := check(n.right, &n.key, hi)
	if err != nil {
		return 0, err
	}
	if d := lh - rh; d < -1 || d > 1 {
		return 0, fmt.Errorf("avl: imbalance %d at %v", d, n.key)
	}
	if want := max(lh, rh) + 1; n.height != want {
		return 0, fmt.Errorf("avl: stale height at %v: %d want %d", n.key, n.height, want)
	}
	return max(lh, rh) + 1, nil
}
