package mpi

// Notifiable RMA on the simulated runtime (rma.NotifyWindow, DESIGN.md
// §16): PutNotify performs an ordinary Put — same validation, same
// stripe locking, same LogGP charging — and then broadcasts a
// notification descriptor to every subscribed rank except the origin.
//
// Delivery is staged-then-settled. A broadcast does not enter the
// destination's bounded queue immediately: it is staged alongside the
// origin's collective count (its epoch generation), and the destination
// settles staged descriptors into its queue the next time it touches the
// notification surface *after a collective has ordered them* — exactly
// the "all pre-barrier pushes are visible to post-barrier polls"
// guarantee the contract promises, made precise. Settlement sorts each
// batch canonically by (generation, origin, per-origin program order),
// so delivery order — and therefore queue sequence numbers, shedding,
// and any seeded fault injection layered above the poll — is a pure
// function of the program, independent of which writer goroutine
// happened to run first inside an epoch. That determinism is what makes
// same-seed chaos replays reproduce the identical fault sequence.
//
// NotifyWait is the one eager exception: a blocked waiter is woken by a
// same-epoch push and settles it immediately (in staging order), since
// waiting for the next collective would deadlock the wake-me-on-write
// pattern. Programs that mix NotifyWait with multiple same-epoch writers
// forfeit the canonical order for those descriptors — they asked for
// raciness.
//
// The notification itself is charged as one extra issue overhead on the
// origin — the descriptor rides the same injection pipeline as the put,
// an order of magnitude cheaper than a second message — keeping the
// notify-vs-blanket comparison honest in virtual time.

import (
	"errors"
	"sync"
	"sync/atomic"

	"clampi/internal/datatype"
	"clampi/internal/notify"
	"clampi/internal/rma"
)

// ErrNotSubscribed reports a notification-queue call before NotifyEnable.
var ErrNotSubscribed = errors.New("mpi: rank not subscribed to notifications (call NotifyEnable)")

// stagedNotify is one broadcast descriptor awaiting settlement into a
// destination queue. gen is the origin's completed-collective count at
// push time: once the destination has completed a later collective, the
// SPMD contract (all ranks call the same collectives in the same order)
// proves the push happened before that rendezvous, so it is safe — and
// canonical — to deliver.
type stagedNotify struct {
	gen int
	n   notify.Notification
}

// NotifyEnable subscribes the calling rank to notifications on this
// window, creating its bounded queue (rma.NotifyWindow). Idempotent.
func (w *Win) NotifyEnable(capacity int) error {
	if w.freed {
		return ErrFreedWin
	}
	sh := w.shared
	sh.notifyMu.Lock()
	if sh.notifyQ == nil {
		sh.notifyQ = make([]*notify.Queue, len(sh.regions))
		sh.notifyStg = make([][]stagedNotify, len(sh.regions))
		sh.notifyStgN = make([]atomic.Int64, len(sh.regions))
		sh.notifyCond = sync.NewCond(&sh.notifyMu)
	}
	if sh.notifyQ[w.rank.id] == nil {
		sh.notifyQ[w.rank.id] = notify.NewQueue(capacity)
	}
	w.notifyQ = sh.notifyQ[w.rank.id]
	w.notifyStgN = &sh.notifyStgN[w.rank.id]
	sh.notifyMu.Unlock()
	return nil
}

// settle moves this rank's staged descriptors into its bounded queue in
// canonical order. Normally only descriptors a completed collective has
// ordered (gen < the rank's collective count) move; eager settlement
// (NotifyWait) takes everything staged. The canonical order is
// (generation, origin) with per-origin program order preserved — the
// insertion sort below is stable and staged batches are small.
func (w *Win) settle(eager bool) {
	sh := w.shared
	sh.notifyMu.Lock()
	w.settleLocked(eager)
	sh.notifyMu.Unlock()
}

func (w *Win) settleLocked(eager bool) {
	sh := w.shared
	stg := sh.notifyStg[w.rank.id]
	if len(stg) == 0 {
		return
	}
	cut := w.rank.colls
	sel := sh.notifyScr[:0]
	keep := stg[:0]
	for _, e := range stg {
		if eager || e.gen < cut {
			sel = append(sel, e)
		} else {
			keep = append(keep, e)
		}
	}
	sh.notifyStg[w.rank.id] = keep
	sh.notifyStgN[w.rank.id].Store(int64(len(keep)))
	for i := 1; i < len(sel); i++ {
		for j := i; j > 0 && (sel[j].gen < sel[j-1].gen ||
			(sel[j].gen == sel[j-1].gen && sel[j].n.Origin < sel[j-1].n.Origin)); j-- {
			sel[j], sel[j-1] = sel[j-1], sel[j]
		}
	}
	for _, e := range sel {
		w.notifyQ.Push(e.n)
	}
	sh.notifyScr = sel[:0]
}

// NotifyDepth returns the number of locally queued notifications
// (rma.NotifyWindow). The fast path — nothing staged — is a nil check
// plus two atomic loads, cheap enough for a hit path to probe every
// access; staged descriptors are settled first so the depth reflects
// everything an earlier collective has ordered.
func (w *Win) NotifyDepth() int {
	if w.notifyQ == nil {
		return 0
	}
	if w.notifyStgN.Load() > 0 {
		w.settle(false)
	}
	return w.notifyQ.Depth()
}

// NotifyLastSeq returns the highest delivery sequence number assigned
// towards this rank, zero before NotifyEnable (rma.NotifyWindow). The
// register moves at settlement, the same coherence points as delivery.
func (w *Win) NotifyLastSeq() uint64 {
	if w.notifyQ == nil {
		return 0
	}
	if w.notifyStgN.Load() > 0 {
		w.settle(false)
	}
	return w.notifyQ.LastSeq()
}

// NotifyPoll drains up to len(buf) pending notifications in delivery
// order (rma.NotifyWindow).
func (w *Win) NotifyPoll(buf []notify.Notification) (int, bool) {
	if w.notifyQ == nil {
		return 0, false
	}
	if w.notifyStgN.Load() > 0 {
		w.settle(false)
	}
	return w.notifyQ.Poll(buf)
}

// NotifyWait blocks until a notification is queued or staged (the eager
// exception to collective-ordered settlement — see the package comment)
// or the window is freed. In FidelityMeasured mode the global run token
// is released while blocked — exactly like a collective — so the writer
// rank whose PutNotify will wake us can run.
func (w *Win) NotifyWait() error {
	if w.freed {
		return ErrFreedWin
	}
	if w.notifyQ == nil {
		return ErrNotSubscribed
	}
	sh := w.shared
	w.rank.world.leave()
	sh.notifyMu.Lock()
	for {
		w.settleLocked(true)
		if w.notifyQ.Depth() > 0 {
			break
		}
		sh.notifyCond.Wait()
	}
	sh.notifyMu.Unlock()
	w.rank.world.enter()
	return nil
}

// PutNotify writes like Put and then notifies every subscribed rank
// except the origin (rma.NotifyWindow). The notification carries the
// written bytes when the transfer is contiguous and at most
// notify.DataMax long, enabling in-place patching at the readers;
// larger or strided writes notify with Data == nil and readers fall
// back to span invalidation.
func (w *Win) PutNotify(src []byte, dtype datatype.Datatype, count int, target, disp int, tag uint32) error {
	if err := w.Put(src, dtype, count, target, disp); err != nil {
		return err
	}
	size := datatype.TransferSize(dtype, count)
	span, spanLen := disp, size
	var data []byte
	if dtype.Size() == dtype.Extent() {
		if size > 0 && size <= notify.DataMax {
			data = append([]byte(nil), src[:size]...)
		}
	} else {
		span, spanLen = blockSpan(datatype.FlattenTransfer(dtype, count, disp))
	}
	// The descriptor rides the injection pipeline: one extra issue
	// overhead on the origin, no second network message.
	w.rank.clock.Busy(w.rank.Model().IssueOverhead(w.rank.Distance(target)))
	w.broadcastNotification(notify.Notification{
		Origin: w.rank.id,
		Target: target,
		Disp:   span,
		Len:    spanLen,
		Tag:    tag,
		Data:   data,
	})
	return nil
}

// broadcastNotification stages n for every subscribed rank except the
// origin's own, tagged with the origin's current epoch generation, and
// wakes any blocked NotifyWait. Queue sheds (bounded capacity) happen at
// settlement and surface as overflow flags at the affected reader, never
// as an error at the writer — matching a hardware notification FIFO.
func (w *Win) broadcastNotification(n notify.Notification) {
	sh := w.shared
	gen := w.rank.colls
	sh.notifyMu.Lock()
	for rank, q := range sh.notifyQ {
		if q == nil || rank == n.Origin {
			continue
		}
		sh.notifyStg[rank] = append(sh.notifyStg[rank], stagedNotify{gen: gen, n: n})
		sh.notifyStgN[rank].Add(1)
	}
	if sh.notifyCond != nil {
		sh.notifyCond.Broadcast()
	}
	sh.notifyMu.Unlock()
}

// Compile-time check: the simulated runtime is notification-capable.
var _ rma.NotifyWindow = (*Win)(nil)
