package mpi

import (
	"errors"
	"math"
	"testing"

	"clampi/internal/datatype"
)

func encI64(vals ...int64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		putLeU64(out[i*8:], uint64(v))
	}
	return out
}

func encF64(vals ...float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		putLeU64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func TestAccumulateSumInt64(t *testing.T) {
	err := Run(3, Config{}, func(r *Rank) error {
		win, local := r.WinAllocate(64, nil)
		defer win.Free()
		if err := win.Fence(); err != nil {
			return err
		}
		// All ranks add their (id+1) into target 0's first element.
		src := encI64(int64(r.ID() + 1))
		if err := win.Accumulate(src, datatype.Int64, 1, 0, 0, OpSum); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if r.ID() == 0 {
			if got := int64(leU64(local)); got != 1+2+3 {
				t.Errorf("sum = %d, want 6", got)
			}
		}
		return win.Fence()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccumulateOpsInt32AndDouble(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		win, local := r.WinAllocate(64, nil)
		defer win.Free()
		if r.ID() == 0 {
			if err := win.LockAll(); err != nil {
				return err
			}
			// int32 max/min on elements 0 and 1 of rank 1.
			src32 := make([]byte, 8)
			a, b := int32(42), int32(-5)
			putLeU32(src32, uint32(a))
			putLeU32(src32[4:], uint32(b))
			if err := win.Accumulate(src32, datatype.Int32, 2, 1, 0, OpMax); err != nil {
				return err
			}
			if err := win.Accumulate(src32, datatype.Int32, 2, 1, 0, OpMin); err != nil {
				return err
			}
			// double sum at disp 16.
			if err := win.Accumulate(encF64(1.5), datatype.Double, 1, 1, 16, OpSum); err != nil {
				return err
			}
			if err := win.Accumulate(encF64(2.25), datatype.Double, 1, 1, 16, OpSum); err != nil {
				return err
			}
			if err := win.UnlockAll(); err != nil {
				return err
			}
		}
		r.Barrier()
		if r.ID() == 1 {
			// After max(0,42) then min(42,-5)... element 0: max gives
			// 42, then min(42, 42)? min applies src again: min(42,42)=42
			// for element 0? src element0=42: min(42,42)=42. Element 1:
			// max(0,-5)=0, then min(0,-5)=-5.
			if got := int32(leU32(local)); got != 42 {
				t.Errorf("elem0 = %d, want 42", got)
			}
			if got := int32(leU32(local[4:])); got != -5 {
				t.Errorf("elem1 = %d, want -5", got)
			}
			if got := math.Float64frombits(leU64(local[16:])); got != 3.75 {
				t.Errorf("double sum = %v, want 3.75", got)
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccumulateReplaceIsPut(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		win, local := r.WinAllocate(64, nil)
		defer win.Free()
		if r.ID() == 0 {
			if err := win.LockAll(); err != nil {
				return err
			}
			if err := win.Accumulate([]byte{1, 2, 3}, datatype.Byte, 3, 1, 4, OpReplace); err != nil {
				return err
			}
			if err := win.UnlockAll(); err != nil {
				return err
			}
		}
		r.Barrier()
		if r.ID() == 1 && (local[4] != 1 || local[5] != 2 || local[6] != 3) {
			t.Errorf("replace data: %v", local[4:7])
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccumulateErrors(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(32, nil)
		defer win.Free()
		src := encI64(1)
		if err := win.Accumulate(src, datatype.Int64, 1, 1, 0, OpSum); !errors.Is(err, ErrBadEpoch) {
			t.Errorf("outside epoch: %v", err)
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		if err := win.Accumulate(src, datatype.Byte, 8, 1, 0, OpSum); !errors.Is(err, ErrBadAccumulate) {
			t.Errorf("byte sum: %v", err)
		}
		if err := win.Accumulate(src, datatype.Int64, 1, 9, 0, OpSum); !errors.Is(err, ErrRankRange) {
			t.Errorf("bad rank: %v", err)
		}
		if err := win.Accumulate(src, datatype.Int64, 1, 1, 28, OpSum); !errors.Is(err, ErrBounds) {
			t.Errorf("out of bounds: %v", err)
		}
		if err := win.Accumulate(src[:4], datatype.Int64, 1, 1, 0, OpSum); !errors.Is(err, ErrShortBuf) {
			t.Errorf("short buf: %v", err)
		}
		if err := win.UnlockAll(); err != nil {
			return err
		}
		r.Barrier()
		if err := win.Free(); err != nil {
			return err
		}
		if err := win.Accumulate(src, datatype.Int64, 1, 1, 0, OpSum); !errors.Is(err, ErrFreedWin) {
			t.Errorf("freed win: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
