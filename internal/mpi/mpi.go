// Package mpi implements the subset of the MPI-3 standard that CLaMPI and
// the paper's applications depend on, as an in-process simulated runtime.
//
// The paper layers CLaMPI on top of foMPI, a Cray-optimized MPI-3 RMA
// implementation. No MPI implementation (let alone RDMA hardware) is
// available to this reproduction, so this package substitutes the runtime:
//
//   - A World is the equivalent of MPI_COMM_WORLD; its ranks are
//     goroutines launched by Run.
//   - Windows expose per-rank byte regions (MPI_Win_create /
//     MPI_Win_allocate); Get and Put transfer data between regions and
//     private buffers.
//   - Passive-target synchronization (Lock/Unlock/LockAll/UnlockAll/
//     Flush) and active-target Fence provide the epoch structure CLaMPI
//     keys on: every completion call closes an access epoch and notifies
//     registered epoch listeners.
//
// Time is virtual (see internal/simtime): issuing an operation charges the
// modelled CPU overhead on the origin's clock, and the operation's
// completion time is the issue time plus the modelled network latency
// (internal/netsim). Completion calls advance the origin clock to the
// latest pending completion, which reproduces the overlap behaviour of a
// real RDMA network: many gets issued back-to-back pipeline, and the
// initiator only stalls at the flush.
//
// Data movement is physical: Get and Put really copy bytes between
// buffers, so applications compute correct results. MPI-3's epoch rules
// (no conflicting accesses within an epoch) are what make the immediate
// copy indistinguishable from a deferred one.
//
// The package implements the transport contract of internal/rma: *Win
// satisfies rma.Window and *Rank satisfies rma.Endpoint, making this
// runtime the first of several pluggable backends under the caching
// layer.
package mpi

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"clampi/internal/datatype"
	"clampi/internal/netsim"
	"clampi/internal/notify"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// Errors returned by window operations. The data-path errors are the
// backend-independent values of internal/rma: the canonical sentinels
// (ErrFreed, ErrOutOfRange, ErrNoEpoch) plus the finer-grained and
// historical names layered on them.
var (
	ErrFreed      = rma.ErrFreed
	ErrOutOfRange = rma.ErrOutOfRange
	ErrNoEpoch    = rma.ErrNoEpoch
	ErrRankRange  = rma.ErrRankRange
	ErrBounds     = rma.ErrBounds
	ErrShortBuf   = rma.ErrShortBuf
	ErrFreedWin   = rma.ErrFreedWin
	ErrBadEpoch   = rma.ErrBadEpoch
	ErrWorldSize  = errors.New("mpi: world size must be positive")
	ErrNilProgram = errors.New("mpi: nil rank program")
)

// ExecMode selects the execution engine ranks run under (see Run).
type ExecMode int

const (
	// FidelityMeasured is the serialized engine: exactly one rank
	// goroutine runs user code at a time, yielding only inside
	// blocking synchronization. Essential for calibration-grade
	// CostMeasured timing — a measured section can never absorb
	// another rank's scheduler quantum — and the default, because the
	// paper's figures are regenerated under it.
	FidelityMeasured ExecMode = iota
	// Throughput runs rank goroutines genuinely concurrently: the
	// global run token is gone and cross-rank data movement is
	// protected by per-target-region sharded mutexes instead. Clocks
	// must stay modelled-only (the default cost policy) for results to
	// remain deterministic; with P runnable goroutines the engine uses
	// as many cores as the host offers.
	Throughput
)

func (m ExecMode) String() string {
	switch m {
	case FidelityMeasured:
		return "fidelity"
	case Throughput:
		return "throughput"
	default:
		return fmt.Sprintf("execmode(%d)", int(m))
	}
}

// ParseExecMode converts a flag value to an ExecMode. It accepts the
// String() forms plus common aliases.
func ParseExecMode(s string) (ExecMode, error) {
	switch strings.ToLower(s) {
	case "", "fidelity", "serialized", "measured":
		return FidelityMeasured, nil
	case "throughput", "concurrent", "parallel":
		return Throughput, nil
	}
	return FidelityMeasured, fmt.Errorf("mpi: unknown exec mode %q (want fidelity or throughput)", s)
}

// Config controls the simulated machine a World runs on.
type Config struct {
	// Model is the network latency model; nil selects
	// netsim.DefaultModel.
	Model *netsim.Model
	// RanksPerNode controls the rank→node mapping used to derive
	// distance classes; <=0 means one rank per node (the paper's
	// default placement).
	RanksPerNode int
	// NodesPerGroup controls the node→Dragonfly-group mapping; <=0
	// selects the Piz Daint group size.
	NodesPerGroup int
	// Mode selects the execution engine; the zero value is the
	// serialized FidelityMeasured engine.
	Mode ExecMode
}

// World is the communicator containing all ranks of a run.
type World struct {
	size int
	cfg  Config

	mu    sync.Mutex
	colls map[int]*collSlot
	wins  int // window id counter

	// token serializes rank execution in FidelityMeasured mode: exactly
	// one rank goroutine runs user code at a time, yielding only inside
	// blocking synchronization. Ranks interact solely through
	// collectives (and through RMA data that epoch rules order across
	// collectives), so serialization cannot change results — but it is
	// essential for timing fidelity: the hybrid clocks can measure real
	// durations of cache-management code, and with several runnable
	// goroutines per core a measured section could absorb a whole
	// scheduler quantum of *another* rank's work. In Throughput mode
	// the token is unused and ranks run genuinely concurrently; the
	// data path is then protected by per-(target, region-stripe)
	// read-write locks instead (see winShared.stripes).
	token sync.Mutex

	ranks []*Rank
}

// serialized reports whether the world runs under the global run token.
func (w *World) serialized() bool { return w.cfg.Mode == FidelityMeasured }

// enter acquires the run token in serialized mode (no-op otherwise).
func (w *World) enter() {
	if w.serialized() {
		w.token.Lock()
	}
}

// leave releases the run token in serialized mode (no-op otherwise).
// Blocking synchronization calls bracket their waits with leave/enter so
// the remaining ranks can progress.
func (w *World) leave() {
	if w.serialized() {
		w.token.Unlock()
	}
}

// collSlot is one in-flight collective rendezvous.
type collSlot struct {
	arrived int
	data    []any
	clock   simtime.Duration
	done    chan struct{}
}

// Rank is the per-process handle passed to each rank's program. All
// methods must be called only from the owning goroutine.
type Rank struct {
	world *World
	id    int
	clock *simtime.Clock
	colls int // per-rank collective sequence number
}

// Run executes program on size simulated ranks, one goroutine each, and
// blocks until all return. It is the moral equivalent of mpirun. The
// cfg.Mode field selects between the serialized FidelityMeasured engine
// (default) and the concurrent Throughput engine.
func Run(size int, cfg Config, program func(*Rank) error) error {
	if size <= 0 {
		return ErrWorldSize
	}
	if program == nil {
		return ErrNilProgram
	}
	if cfg.Model == nil {
		cfg.Model = netsim.DefaultModel()
	}
	w := &World{
		size:  size,
		cfg:   cfg,
		colls: make(map[int]*collSlot),
		ranks: make([]*Rank, size),
	}
	for i := 0; i < size; i++ {
		w.ranks[i] = &Rank{world: w, id: i, clock: simtime.NewClock()}
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	wg.Add(size)
	for i := 0; i < size; i++ {
		go func(r *Rank) {
			defer wg.Done()
			w.enter()
			defer w.leave()
			errs[r.id] = program(r)
		}(w.ranks[i])
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ID returns the rank's id in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks in the world.
func (r *Rank) Size() int { return r.world.size }

// Clock returns the rank's virtual clock.
func (r *Rank) Clock() *simtime.Clock { return r.clock }

// Model returns the network model of the world the rank runs in.
func (r *Rank) Model() *netsim.Model { return r.world.cfg.Model }

// Distance returns the distance class between this rank and target.
func (r *Rank) Distance(target int) netsim.Distance {
	return netsim.MapDistance(r.id, target, r.world.cfg.RanksPerNode, r.world.cfg.NodesPerGroup)
}

// collective performs a rendezvous of all ranks, gathering one value per
// rank and aligning clocks to the slowest participant plus cost. All ranks
// must call collectives in the same order (the usual SPMD contract).
func (r *Rank) collective(contrib any, cost simtime.Duration) []any {
	w := r.world
	seq := r.colls
	r.colls++

	w.mu.Lock()
	slot, ok := w.colls[seq]
	if !ok {
		slot = &collSlot{data: make([]any, w.size), done: make(chan struct{})}
		w.colls[seq] = slot
	}
	slot.data[r.id] = contrib
	if r.clock.Now() > slot.clock {
		slot.clock = r.clock.Now()
	}
	slot.arrived++
	last := slot.arrived == w.size
	if last {
		delete(w.colls, seq)
	}
	w.mu.Unlock()

	if last {
		close(slot.done)
	} else {
		// Yield the run token while blocked so the remaining ranks
		// can reach the rendezvous (see World.token).
		w.leave()
		<-slot.done
		w.enter()
	}
	r.clock.AdvanceTo(slot.clock + cost)
	return slot.data
}

// barrierCost models a dissemination barrier: ceil(log2 P) network rounds.
func (r *Rank) barrierCost() simtime.Duration {
	p := r.world.size
	rounds := 0
	for n := 1; n < p; n <<= 1 {
		rounds++
	}
	base := r.world.cfg.Model.GetLatency(0, netsim.OtherNode)
	return simtime.Duration(rounds) * base
}

// Barrier synchronizes all ranks (MPI_Barrier) and aligns virtual clocks.
func (r *Rank) Barrier() {
	r.collective(nil, r.barrierCost())
}

// Allgather gathers one value from every rank into a slice indexed by
// rank id (MPI_Allgather for a single element of any Go type).
func (r *Rank) Allgather(v any) []any {
	return r.collective(v, r.barrierCost())
}

// AllgatherInt is a convenience wrapper for the common int payload.
func (r *Rank) AllgatherInt(v int) []int {
	raw := r.Allgather(v)
	out := make([]int, len(raw))
	for i, x := range raw {
		out[i] = x.(int)
	}
	return out
}

// AllreduceMax returns the maximum of the per-rank contributions.
func (r *Rank) AllreduceMax(v float64) float64 {
	raw := r.Allgather(v)
	m := v
	for _, x := range raw {
		if f := x.(float64); f > m {
			m = f
		}
	}
	return m
}

// AllreduceSum returns the sum of the per-rank contributions.
func (r *Rank) AllreduceSum(v float64) float64 {
	raw := r.Allgather(v)
	s := 0.0
	for _, x := range raw {
		s += x.(float64)
	}
	return s
}

// Bcast distributes root's value to all ranks.
func (r *Rank) Bcast(v any, root int) any {
	raw := r.Allgather(v)
	if root < 0 || root >= len(raw) {
		root = 0
	}
	return raw[root]
}

// ---------------------------------------------------------------------------
// Windows
// ---------------------------------------------------------------------------

// Info carries window-creation hints (MPI_Info). CLaMPI reads its
// operational mode from here (paper §III-A). It is the backend-neutral
// rma.Info under its historical name.
type Info = rma.Info

// pendingOp is one issued-but-not-completed RMA operation.
type pendingOp struct {
	seq        int64 // unique per window, for request-based completion
	target     int
	completion simtime.Duration
}

// winShared is the state shared by all ranks attached to one window.
type winShared struct {
	id      int
	regions [][]byte
	info    Info

	// stripes orders cross-rank data movement in Throughput mode,
	// replacing the global run token. Each target region is covered by
	// up to dataStripes read-write locks over power-of-two byte ranges
	// (stripeShift holds the per-target log2 stripe width): readers
	// (Get/GetBatch/Checksum) of disjoint stripes — and of the *same*
	// stripe — proceed concurrently, while writers (Put/Accumulate)
	// take their covered stripes exclusively, so concurrent
	// accumulates to one range stay element-wise atomic and a get
	// never observes a torn concurrent put. A multi-stripe operation
	// acquires its stripes in ascending index order, which makes the
	// acquisition order total and the scheme deadlock-free. In
	// FidelityMeasured mode the token already serializes ranks and the
	// stripes are not touched.
	stripes     [][]sync.RWMutex // clampi:lockrank stripe
	stripeShift []uint

	pscwOnce  sync.Once
	pscwState *pscwState

	lockOnce sync.Once
	locks    []*targetLock

	// notifyQ holds one bounded notification queue per subscribed rank
	// (nil for unsubscribed ranks; the slice itself is nil until the
	// first NotifyEnable). notifyStg stages broadcast descriptors per
	// destination until a collective orders them (see notify.go:
	// settlement gives delivery a canonical order, making fault-replay
	// runs reproducible); notifyStgN mirrors each destination's staged
	// count so the per-access depth probe stays one atomic load.
	// notifyCond (on notifyMu) wakes NotifyWait blocked on a push.
	// All guarded by notifyMu; the queues themselves are internally
	// synchronized.
	notifyMu   sync.Mutex
	notifyCond *sync.Cond
	notifyQ    []*notify.Queue
	notifyStg  [][]stagedNotify
	notifyStgN []atomic.Int64
	notifyScr  []stagedNotify // settle scratch, reused under notifyMu
}

// EpochListener observes epoch closures on a window. CLaMPI registers one
// to trigger deferred copy-in and transparent-mode invalidation.
//
// The listener runs on the origin rank's goroutine, inside the completion
// call, after the clock has advanced past all pending completions and
// before the epoch counter increments. It is the backend-neutral
// rma.EpochListener under its historical name.
type EpochListener = rma.EpochListener

// Win is a rank's handle on a window (origin-side state is private to the
// rank, per MPI semantics).
type Win struct {
	rank   *Rank
	shared *winShared

	epoch         int64
	pending       []pendingOp
	lockedTargets map[int]LockType
	lockedAll     bool
	fenceOpen     bool
	started       []int            // PSCW: targets of the current Start epoch
	exposed       []int            // PSCW: origins of the current Post exposure
	opSeq         int64            // issued-operation counter (request ids)
	lastInj       simtime.Duration // last network injection (LogGP gap pacing)
	notifyQ       *notify.Queue    // this rank's subscription, nil until NotifyEnable
	notifyStgN    *atomic.Int64    // this rank's staged-descriptor count, nil until NotifyEnable
	freed         bool

	listeners []EpochListener
}

// WinCreate collectively creates a window exposing each rank's region
// (MPI_Win_create). region may be nil for ranks exposing no memory.
func (r *Rank) WinCreate(region []byte, info Info) *Win {
	w := r.world
	w.mu.Lock()
	id := w.wins // same value observed by all ranks via the collective below
	w.mu.Unlock()

	gathered := r.collective(region, r.barrierCost())
	// Rank 0 materializes the single shared window state and broadcasts
	// it, so cross-rank synchronization state (PSCW handshakes) lives
	// in exactly one place.
	var shared *winShared
	if r.id == 0 {
		shared = &winShared{
			id:      id,
			regions: make([][]byte, len(gathered)),
			info:    info,
		}
		for i, g := range gathered {
			if g != nil {
				shared.regions[i] = g.([]byte)
			}
		}
		shared.stripes, shared.stripeShift = makeStripes(shared.regions)
		w.mu.Lock()
		w.wins++
		w.mu.Unlock()
	}
	shared = r.Bcast(shared, 0).(*winShared)
	r.Barrier()
	return &Win{rank: r, shared: shared}
}

// WinAllocate collectively creates a window, allocating size bytes on each
// rank (MPI_Win_allocate). It returns the window and the local region.
func (r *Rank) WinAllocate(size int, info Info) (*Win, []byte) {
	if size < 0 {
		size = 0
	}
	region := make([]byte, size)
	return r.WinCreate(region, info), region
}

// Info returns the window's creation info.
func (w *Win) Info() Info { return w.shared.info }

// Rank returns the owning rank handle.
func (w *Win) Rank() *Rank { return w.rank }

// Endpoint returns the owning rank as a transport endpoint (rma.Window).
func (w *Win) Endpoint() rma.Endpoint { return w.rank }

// DistanceClass reports the placement distance of target on the
// rma.Distance* scale (rma.LocalityWindow). netsim.Distance ordinals
// coincide with the rma scale by construction.
func (w *Win) DistanceClass(target int) int {
	return int(w.rank.Distance(target))
}

// FillCost returns the modelled LogGP latency of a size-byte get from
// target under the world's network model (rma.LocalityWindow).
func (w *Win) FillCost(target, size int) simtime.Duration {
	return w.rank.Model().GetLatency(size, w.rank.Distance(target))
}

// Compile-time checks: this runtime implements the transport contract.
var (
	_ rma.Window          = (*Win)(nil)
	_ rma.BatchWindow     = (*Win)(nil)
	_ rma.IntegrityWindow = (*Win)(nil)
	_ rma.LocalityWindow  = (*Win)(nil)
	_ rma.Endpoint        = (*Rank)(nil)
)

// dataStripes is the maximum number of lock stripes covering one target
// region in Throughput mode. Power of two; stripe widths are powers of
// two so the covering stripes of a byte range are two shifts.
const dataStripes = 8

// minStripeShift is the log2 of the minimum stripe width (256 bytes):
// regions at or below it get a single stripe, so small windows pay no
// extra acquisitions.
const minStripeShift = 8

// makeStripes builds the per-target stripe locks: the smallest
// power-of-two stripe width >= 256 bytes such that at most dataStripes
// stripes cover the region. Empty regions get one stripe so bounds-valid
// zero-byte operations still have a lock to name.
func makeStripes(regions [][]byte) ([][]sync.RWMutex, []uint) {
	stripes := make([][]sync.RWMutex, len(regions))
	shifts := make([]uint, len(regions))
	for i, reg := range regions {
		shift := uint(minStripeShift)
		for (len(reg)+(1<<shift)-1)>>shift > dataStripes {
			shift++
		}
		n := (len(reg) + (1 << shift) - 1) >> shift
		if n < 1 {
			n = 1
		}
		stripes[i] = make([]sync.RWMutex, n)
		shifts[i] = shift
	}
	return stripes, shifts
}

// rangeStripes returns the inclusive stripe index range covering bytes
// [disp, disp+size) of target's region. Callers validate bounds first;
// size 0 degenerates to the single stripe holding disp.
func (w *Win) rangeStripes(target, disp, size int) (lo, hi int) {
	shift := w.shared.stripeShift[target]
	lo = disp >> shift
	hi = lo
	if size > 0 {
		hi = (disp + size - 1) >> shift
	}
	if n := len(w.shared.stripes[target]); hi >= n {
		hi = n - 1
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// lockRange acquires the stripes covering [disp, disp+size) of target's
// region in Throughput mode — shared for readers (gets, checksums),
// exclusive for writers (puts, accumulates). Stripes are taken in
// ascending index order, so concurrent multi-stripe operations cannot
// deadlock. In FidelityMeasured mode the global run token already
// orders ranks, so the stripes are not touched.
func (w *Win) lockRange(target, disp, size int, excl bool) {
	if w.rank.world.serialized() {
		return
	}
	lo, hi := w.rangeStripes(target, disp, size)
	locks := w.shared.stripes[target]
	for s := lo; s <= hi; s++ {
		if excl {
			locks[s].Lock()
		} else {
			locks[s].RLock()
		}
	}
}

// unlockRange releases the stripes taken by the matching lockRange.
func (w *Win) unlockRange(target, disp, size int, excl bool) {
	if w.rank.world.serialized() {
		return
	}
	lo, hi := w.rangeStripes(target, disp, size)
	locks := w.shared.stripes[target]
	for s := hi; s >= lo; s-- {
		if excl {
			locks[s].Unlock()
		} else {
			locks[s].RUnlock()
		}
	}
}

// blockSpan returns the byte span [off, off+size) covering a flattened
// block list (0, 0 when empty), for stripe locking of strided transfers.
func blockSpan(blocks []datatype.Block) (off, size int) {
	if len(blocks) == 0 {
		return 0, 0
	}
	lo, hi := blocks[0].Offset, blocks[0].Offset+blocks[0].Size
	for _, b := range blocks[1:] {
		if b.Offset < lo {
			lo = b.Offset
		}
		if e := b.Offset + b.Size; e > hi {
			hi = e
		}
	}
	return lo, hi - lo
}

// Epoch returns the number of epochs closed on this window by this origin
// since creation (the w.eph counter of the paper's notation).
func (w *Win) Epoch() int64 { return w.epoch }

// Local returns this rank's exposed region.
func (w *Win) Local() []byte { return w.shared.regions[w.rank.id] }

// RegionSize returns the size of target's exposed region.
func (w *Win) RegionSize(target int) (int, error) {
	if target < 0 || target >= len(w.shared.regions) {
		return 0, ErrRankRange
	}
	return len(w.shared.regions[target]), nil
}

// AddEpochListener registers f to run at every epoch closure by this
// origin on this window.
func (w *Win) AddEpochListener(f EpochListener) {
	if f != nil {
		w.listeners = append(w.listeners, f)
	}
}

// Lock opens a passive-target access epoch towards target with a shared
// lock (MPI_Win_lock with MPI_LOCK_SHARED) — the mode the paper's
// workloads use. LockWithType selects exclusive locks.
func (w *Win) Lock(target int) error {
	return w.LockWithType(LockShared, target)
}

// LockAll opens a passive-target epoch towards all ranks
// (MPI_Win_lock_all).
func (w *Win) LockAll() error {
	if w.freed {
		return ErrFreedWin
	}
	w.lockedAll = true
	w.rank.clock.Advance(w.rank.Model().GetLatency(8, netsim.OtherNode))
	return nil
}

// inEpoch reports whether RMA calls are currently legal.
func (w *Win) inEpoch() bool {
	return len(w.lockedTargets) > 0 || w.lockedAll || w.fenceOpen || len(w.started) > 0
}

// Get reads count elements of dtype from target's region at byte
// displacement disp into dst (MPI_Get). The origin buffer dst receives the
// packed payload (size = dtype.Size() * count); the target side is
// interpreted with the full (possibly strided) datatype layout.
//
// The call is non-blocking in the MPI-3 sense: dst's contents may be
// consumed only after the next Flush/Unlock on the window. The runtime
// copies the bytes immediately — valid because MPI forbids conflicting
// accesses within an epoch — but the virtual clock only accounts for the
// issue overhead here; the latency is paid at the completion call.
func (w *Win) Get(dst []byte, dtype datatype.Datatype, count int, target, disp int) error {
	if w.freed {
		return ErrFreedWin
	}
	if !w.inEpoch() {
		return ErrBadEpoch
	}
	if target < 0 || target >= len(w.shared.regions) {
		return ErrRankRange
	}
	size := datatype.TransferSize(dtype, count)
	if len(dst) < size {
		return ErrShortBuf
	}
	region := w.shared.regions[target]
	if size > 0 && dtype.Size() == dtype.Extent() {
		// Dense datatype: the whole transfer is one contiguous block,
		// so skip the flattening (and its allocation) on the path every
		// byte-range get takes.
		if disp < 0 || disp+size > len(region) {
			return ErrBounds
		}
		w.lockRange(target, disp, size, false)
		copy(dst[:size], region[disp:disp+size])
		w.unlockRange(target, disp, size, false)
		w.enqueueOp(target, size)
		return nil
	}
	blocks := datatype.FlattenTransfer(dtype, count, disp)
	for _, b := range blocks {
		if b.Offset < 0 || b.Offset+b.Size > len(region) {
			return ErrBounds
		}
	}
	spanOff, spanSize := blockSpan(blocks)
	w.lockRange(target, spanOff, spanSize, false)
	datatype.CopyBlocks(dst, region, blocks)
	w.unlockRange(target, spanOff, spanSize, false)

	w.enqueueOp(target, size)
	return nil
}

// GetBatch issues several contiguous byte-range gets in one call — the
// vectorized form of Get for datatype.Byte transfers (rma.BatchWindow).
// Each op is validated and charged exactly like an individual Get (one
// LogGP issue overhead per op, i.e. per network message: callers
// coalesce adjacent ranges before issuing); the per-call epoch and
// window checks are paid once for the whole batch.
func (w *Win) GetBatch(ops []rma.GetOp) error {
	if w.freed {
		return ErrFreedWin
	}
	if !w.inEpoch() {
		return ErrBadEpoch
	}
	for i := range ops {
		op := &ops[i]
		if op.Target < 0 || op.Target >= len(w.shared.regions) {
			return ErrRankRange
		}
		n := len(op.Dst)
		region := w.shared.regions[op.Target]
		if op.Disp < 0 || op.Disp+n > len(region) {
			return ErrBounds
		}
		w.lockRange(op.Target, op.Disp, n, false)
		copy(op.Dst, region[op.Disp:op.Disp+n])
		w.unlockRange(op.Target, op.Disp, n, false)
		w.enqueueOp(op.Target, n)
	}
	return nil
}

// Checksum returns the ground-truth rma.ChecksumBytes of target's region
// bytes [disp, disp+size) (rma.IntegrityWindow). It reads the
// authoritative target-side bytes — under the covering stripe read
// locks in Throughput mode — so a fill verifier comparing against it detects any
// origin-side payload damage. The attestation is a control-channel read:
// it charges no network latency and requires no open epoch.
func (w *Win) Checksum(target, disp, size int) (uint64, error) {
	if w.freed {
		return 0, ErrFreedWin
	}
	if target < 0 || target >= len(w.shared.regions) {
		return 0, ErrRankRange
	}
	region := w.shared.regions[target]
	if size < 0 || disp < 0 || disp+size > len(region) {
		return 0, ErrBounds
	}
	w.lockRange(target, disp, size, false)
	h := rma.ChecksumBytes(region[disp : disp+size])
	w.unlockRange(target, disp, size, false)
	return h, nil
}

// Put writes count elements of dtype from src (packed) into target's
// region at byte displacement disp (MPI_Put), with the target-side layout
// given by dtype.
func (w *Win) Put(src []byte, dtype datatype.Datatype, count int, target, disp int) error {
	if w.freed {
		return ErrFreedWin
	}
	if !w.inEpoch() {
		return ErrBadEpoch
	}
	if target < 0 || target >= len(w.shared.regions) {
		return ErrRankRange
	}
	size := datatype.TransferSize(dtype, count)
	if len(src) < size {
		return ErrShortBuf
	}
	region := w.shared.regions[target]
	if size > 0 && dtype.Size() == dtype.Extent() {
		// Dense datatype: single contiguous block (see Get).
		if disp < 0 || disp+size > len(region) {
			return ErrBounds
		}
		w.lockRange(target, disp, size, true)
		copy(region[disp:disp+size], src[:size])
		w.unlockRange(target, disp, size, true)
		w.enqueueOp(target, size)
		return nil
	}
	blocks := datatype.FlattenTransfer(dtype, count, disp)
	for _, b := range blocks {
		if b.Offset < 0 || b.Offset+b.Size > len(region) {
			return ErrBounds
		}
	}
	spanOff, spanSize := blockSpan(blocks)
	w.lockRange(target, spanOff, spanSize, true)
	datatype.ScatterBlocks(region, src, blocks)
	w.unlockRange(target, spanOff, spanSize, true)

	w.enqueueOp(target, size)
	return nil
}

// enqueueOp charges the issue overhead of one RMA operation and records
// its completion time: injection (paced by LogGP's gap g when the model
// sets one) plus the wire latency. Gets and puts of equal size cost the
// same on the modelled network.
func (w *Win) enqueueOp(target, size int) {
	dist := w.rank.Distance(target)
	model := w.rank.Model()
	w.rank.clock.Busy(model.IssueOverhead(dist))
	inj := w.rank.clock.Now()
	if g := model.Gap(dist); g > 0 {
		if t := w.lastInj + g; t > inj {
			inj = t
		}
	}
	w.lastInj = inj
	w.opSeq++
	w.pending = append(w.pending, pendingOp{
		seq:        w.opSeq,
		target:     target,
		completion: inj + model.GetLatency(size, dist) - model.IssueOverhead(dist),
	})
}

// completePending advances the clock past every pending completion that
// matches target (-1 = all targets) and drops them from the pending list.
func (w *Win) completePending(target int) {
	kept := w.pending[:0]
	for _, op := range w.pending {
		if target < 0 || op.target == target {
			w.rank.clock.AdvanceTo(op.completion)
		} else {
			kept = append(kept, op)
		}
	}
	w.pending = kept
}

// closeEpoch fires listeners and bumps the epoch counter.
func (w *Win) closeEpoch() {
	e := w.epoch
	for _, f := range w.listeners {
		f(e)
	}
	w.epoch++
}

// Flush completes all outstanding operations towards target without
// closing the lock (MPI_Win_flush). Per the paper (Listing 1), a flush is
// an epoch-closure event for CLaMPI.
func (w *Win) Flush(target int) error {
	if w.freed {
		return ErrFreedWin
	}
	if !w.inEpoch() {
		return ErrBadEpoch
	}
	if target < 0 || target >= len(w.shared.regions) {
		return ErrRankRange
	}
	w.completePending(target)
	w.closeEpoch()
	return nil
}

// FlushAll completes all outstanding operations towards every target
// (MPI_Win_flush_all) and closes the epoch.
func (w *Win) FlushAll() error {
	if w.freed {
		return ErrFreedWin
	}
	if !w.inEpoch() {
		return ErrBadEpoch
	}
	w.completePending(-1)
	w.closeEpoch()
	return nil
}

// Unlock completes outstanding operations towards target and ends the
// passive epoch (MPI_Win_unlock).
func (w *Win) Unlock(target int) error {
	if w.freed {
		return ErrFreedWin
	}
	typ, held := w.lockedTargets[target]
	if !held {
		return ErrBadEpoch
	}
	w.completePending(target)
	w.closeEpoch()
	delete(w.lockedTargets, target)
	w.release(target, typ)
	return nil
}

// UnlockAll ends a lock-all epoch (MPI_Win_unlock_all).
func (w *Win) UnlockAll() error {
	if w.freed {
		return ErrFreedWin
	}
	if !w.lockedAll {
		return ErrBadEpoch
	}
	w.completePending(-1)
	w.closeEpoch()
	w.lockedAll = false
	return nil
}

// Fence is the active-target synchronization call (MPI_Win_fence): a
// collective that completes all outstanding operations, closes the epoch,
// and opens the next one. Between fences, RMA calls are legal.
func (w *Win) Fence() error {
	if w.freed {
		return ErrFreedWin
	}
	w.completePending(-1)
	if w.epochOpenedByFence() {
		w.closeEpoch()
	}
	w.rank.Barrier()
	w.fenceOpen = true
	return nil
}

// fenceOpen tracks whether a fence-delimited epoch is active.
func (w *Win) epochOpenedByFence() bool { return w.fenceOpen }

// Free releases the window (MPI_Win_free). It is collective.
func (w *Win) Free() error {
	if w.freed {
		return ErrFreedWin
	}
	w.rank.Barrier()
	w.freed = true
	if w.notifyQ != nil {
		// Wake any NotifyWait blocked on this rank's subscription.
		w.notifyQ.Close()
	}
	return nil
}

// PendingOps returns the number of incomplete operations (for tests and
// the overlap study).
func (w *Win) PendingOps() int { return len(w.pending) }

// String identifies the window for diagnostics.
func (w *Win) String() string {
	return fmt.Sprintf("win%d@rank%d", w.shared.id, w.rank.id)
}
