package mpi

// Request-based RMA operations (MPI_Rget / MPI_Rput). A request completes
// its single operation independently of the epoch's other operations —
// useful for software pipelining: wait for the one transfer the next
// computation step needs instead of flushing everything.

import (
	"errors"

	"clampi/internal/datatype"
	"clampi/internal/simtime"
)

// ErrDoneRequest reports a Wait on an already-completed request.
var ErrDoneRequest = errors.New("mpi: request already completed")

// Request is the handle of one request-based operation.
type Request struct {
	win        *Win
	seq        int64
	completion simtime.Duration
	done       bool
}

// Rget is Get returning a completable request (MPI_Rget). The operation
// also completes with the epoch's Flush/Unlock like any other.
func (w *Win) Rget(dst []byte, dtype datatype.Datatype, count int, target, disp int) (*Request, error) {
	if err := w.Get(dst, dtype, count, target, disp); err != nil {
		return nil, err
	}
	return w.lastRequest(), nil
}

// Rput is Put returning a completable request (MPI_Rput).
func (w *Win) Rput(src []byte, dtype datatype.Datatype, count int, target, disp int) (*Request, error) {
	if err := w.Put(src, dtype, count, target, disp); err != nil {
		return nil, err
	}
	return w.lastRequest(), nil
}

// lastRequest wraps the most recently issued pending operation.
func (w *Win) lastRequest() *Request {
	op := w.pending[len(w.pending)-1]
	return &Request{win: w, seq: op.seq, completion: op.completion}
}

// Wait blocks (in virtual time) until the request's operation completes:
// the rank's clock advances to the operation's completion time. Unlike
// Flush, Wait is not an epoch-closure event. Waiting twice is an error,
// mirroring MPI's request semantics.
func (req *Request) Wait() error {
	if req.done {
		return ErrDoneRequest
	}
	req.done = true
	req.win.rank.clock.AdvanceTo(req.completion)
	// Drop the op from the pending list so a later flush does not
	// account it again (it would be harmless — AdvanceTo is
	// idempotent — but the pending count should reflect reality).
	kept := req.win.pending[:0]
	for _, op := range req.win.pending {
		if op.seq != req.seq {
			kept = append(kept, op)
		}
	}
	req.win.pending = kept
	return nil
}

// Test reports whether the operation has completed by the rank's current
// virtual time (MPI_Test). It never advances the clock.
func (req *Request) Test() bool {
	return req.done || req.win.rank.clock.Now() >= req.completion
}
