package mpi

// Request-based RMA operations (MPI_Rget / MPI_Rput). A request completes
// its single operation independently of the epoch's other operations —
// useful for software pipelining: wait for the one transfer the next
// computation step needs instead of flushing everything.

import (
	"clampi/internal/datatype"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// ErrDoneRequest reports a Wait on an already-completed request.
var ErrDoneRequest = rma.ErrDoneRequest

// Request is the handle of one request-based operation. It implements
// rma.Request.
type Request struct {
	win        *Win
	seq        int64
	completion simtime.Duration
	done       bool
}

var _ rma.Request = (*Request)(nil)

// Rget is Get returning a completable request (MPI_Rget). The operation
// also completes with the epoch's Flush/Unlock like any other.
func (w *Win) Rget(dst []byte, dtype datatype.Datatype, count int, target, disp int) (rma.Request, error) {
	if err := w.Get(dst, dtype, count, target, disp); err != nil {
		return nil, err
	}
	return w.lastRequest()
}

// Rput is Put returning a completable request (MPI_Rput).
func (w *Win) Rput(src []byte, dtype datatype.Datatype, count int, target, disp int) (rma.Request, error) {
	if err := w.Put(src, dtype, count, target, disp); err != nil {
		return nil, err
	}
	return w.lastRequest()
}

// lastRequest wraps the most recently issued pending operation. An empty
// pending list (the preceding Get/Put did not enqueue — impossible today,
// but a cheap invariant to defend) yields ErrNoRequest rather than a
// panic. The return type is the interface so callers never receive a
// typed-nil *Request inside a non-nil rma.Request.
func (w *Win) lastRequest() (rma.Request, error) {
	if len(w.pending) == 0 {
		return nil, rma.ErrNoRequest
	}
	op := w.pending[len(w.pending)-1]
	return &Request{win: w, seq: op.seq, completion: op.completion}, nil
}

// Wait blocks (in virtual time) until the request's operation completes:
// the rank's clock advances to the operation's completion time. Unlike
// Flush, Wait is not an epoch-closure event. Waiting twice is an error,
// mirroring MPI's request semantics.
func (req *Request) Wait() error {
	if req.done {
		return ErrDoneRequest
	}
	req.done = true
	req.win.rank.clock.AdvanceTo(req.completion)
	// Drop the op from the pending list so a later flush does not
	// account it again (it would be harmless — AdvanceTo is
	// idempotent — but the pending count should reflect reality).
	// Swap-remove keyed by seq: pending order does not matter for the
	// clock (completion accounting takes a monotonic max), so O(1)
	// removal beats compacting the whole list on every Wait — with n
	// outstanding Rgets waited in issue order, the old filter-copy was
	// O(n) per Wait, O(n²) total.
	pending := req.win.pending
	for i := range pending {
		if pending[i].seq == req.seq {
			last := len(pending) - 1
			pending[i] = pending[last]
			req.win.pending = pending[:last]
			break
		}
	}
	return nil
}

// Test reports whether the operation has completed by the rank's current
// virtual time (MPI_Test). It never advances the clock.
func (req *Request) Test() bool {
	return req.done || req.win.rank.clock.Now() >= req.completion
}
