package mpi

// Generalized active-target synchronization (MPI_Win_post / start /
// complete / wait). The paper notes CLaMPI "does not depend on a specific
// target synchronization mode but on the epoch closure event, that is
// present in both active and passive modes" — Complete is that closure
// event for PSCW epochs, and it fires the same epoch listeners as
// Flush/Unlock, so the caching layer works over PSCW unchanged.

import (
	"sync"

	"clampi/internal/simtime"
)

// pscwState is the per-window cross-rank handshake state, created lazily
// under the shared window's lock.
type pscwState struct {
	mu sync.Mutex
	// post[origin][target] delivers the target's Post time to origins.
	// done[target][origin] delivers the origin's Complete time back.
	post map[int]map[int]chan simtime.Duration
	done map[int]map[int]chan simtime.Duration
}

func pairChan(m map[int]map[int]chan simtime.Duration, a, b int) chan simtime.Duration {
	inner, ok := m[a]
	if !ok {
		inner = make(map[int]chan simtime.Duration)
		m[a] = inner
	}
	ch, ok := inner[b]
	if !ok {
		ch = make(chan simtime.Duration, 8)
		inner[b] = ch
	}
	return ch
}

// pscw returns the window's handshake state, creating it on first use.
func (w *Win) pscw() *pscwState {
	w.shared.pscwOnce.Do(func() {
		w.shared.pscwState = &pscwState{
			post: make(map[int]map[int]chan simtime.Duration),
			done: make(map[int]map[int]chan simtime.Duration),
		}
	})
	return w.shared.pscwState
}

// recvYield receives from ch, releasing the world's run token while
// blocked so the peer rank can make progress (see World.token).
func (r *Rank) recvYield(ch chan simtime.Duration) simtime.Duration {
	select {
	case v := <-ch:
		return v
	default:
	}
	r.world.leave()
	v := <-ch
	r.world.enter()
	return v
}

// Post opens an exposure epoch towards the given origin ranks
// (MPI_Win_post): each of them may access this rank's region between
// their Start and Complete. Post does not block.
func (w *Win) Post(origins []int) error {
	if w.freed {
		return ErrFreedWin
	}
	s := w.pscw()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, o := range origins {
		if o < 0 || o >= len(w.shared.regions) {
			return ErrRankRange
		}
		pairChan(s.post, o, w.rank.id) <- w.rank.clock.Now()
	}
	w.exposed = append(w.exposed[:0], origins...)
	return nil
}

// Start opens an access epoch towards the given target ranks
// (MPI_Win_start), blocking until each has posted. RMA calls to those
// targets are legal until Complete.
func (w *Win) Start(targets []int) error {
	if w.freed {
		return ErrFreedWin
	}
	s := w.pscw()
	for _, t := range targets {
		if t < 0 || t >= len(w.shared.regions) {
			return ErrRankRange
		}
		s.mu.Lock()
		ch := pairChan(s.post, w.rank.id, t)
		s.mu.Unlock()
		postTime := w.rank.recvYield(ch)
		// The post notification travels one message latency.
		w.rank.clock.AdvanceTo(postTime + w.rank.Model().GetLatency(0, w.rank.Distance(t)))
	}
	w.started = append(w.started[:0], targets...)
	return nil
}

// Complete ends the access epoch opened by Start (MPI_Win_complete): all
// outstanding operations complete, the epoch closes (CLaMPI's epoch
// listeners fire), and the targets' Wait calls are released.
func (w *Win) Complete() error {
	if w.freed {
		return ErrFreedWin
	}
	if len(w.started) == 0 {
		return ErrBadEpoch
	}
	w.completePending(-1)
	w.closeEpoch()
	s := w.pscw()
	s.mu.Lock()
	for _, t := range w.started {
		pairChan(s.done, t, w.rank.id) <- w.rank.clock.Now()
	}
	s.mu.Unlock()
	w.started = w.started[:0]
	return nil
}

// Wait ends the exposure epoch opened by Post (MPI_Win_wait), blocking
// until every origin has called Complete.
func (w *Win) Wait() error {
	if w.freed {
		return ErrFreedWin
	}
	if len(w.exposed) == 0 {
		return ErrBadEpoch
	}
	s := w.pscw()
	for _, o := range w.exposed {
		s.mu.Lock()
		ch := pairChan(s.done, w.rank.id, o)
		s.mu.Unlock()
		doneTime := w.rank.recvYield(ch)
		w.rank.clock.AdvanceTo(doneTime + w.rank.Model().GetLatency(0, w.rank.Distance(o)))
	}
	w.exposed = w.exposed[:0]
	return nil
}
