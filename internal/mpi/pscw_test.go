package mpi

import (
	"errors"
	"testing"

	"clampi/internal/datatype"
)

func TestPSCWHandshakeAndData(t *testing.T) {
	// Rank 1 exposes to rank 0; rank 0 accesses between Start and
	// Complete; rank 1's Wait returns only after Complete.
	err := Run(2, Config{}, func(r *Rank) error {
		region := make([]byte, 128)
		if r.ID() == 1 {
			for i := range region {
				region[i] = byte(i + 1)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		switch r.ID() {
		case 0:
			if err := win.Start([]int{1}); err != nil {
				return err
			}
			dst := make([]byte, 32)
			if err := win.Get(dst, datatype.Byte, 32, 1, 16); err != nil {
				return err
			}
			e0 := win.Epoch()
			if err := win.Complete(); err != nil {
				return err
			}
			if win.Epoch() != e0+1 {
				t.Errorf("Complete did not close the epoch")
			}
			for i := range dst {
				if dst[i] != byte(16+i+1) {
					t.Errorf("byte %d = %d", i, dst[i])
					break
				}
			}
		case 1:
			if err := win.Post([]int{0}); err != nil {
				return err
			}
			if err := win.Wait(); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPSCWManyOriginsOneTarget(t *testing.T) {
	const p = 4
	err := Run(p, Config{}, func(r *Rank) error {
		region := make([]byte, 64)
		if r.ID() == 0 {
			for i := range region {
				region[i] = byte(i * 2)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		if r.ID() == 0 {
			if err := win.Post([]int{1, 2, 3}); err != nil {
				return err
			}
			if err := win.Wait(); err != nil {
				return err
			}
		} else {
			if err := win.Start([]int{0}); err != nil {
				return err
			}
			dst := make([]byte, 8)
			if err := win.Get(dst, datatype.Byte, 8, 0, 8); err != nil {
				return err
			}
			if err := win.Complete(); err != nil {
				return err
			}
			for i := range dst {
				if dst[i] != byte((8+i)*2) {
					t.Errorf("rank %d byte %d = %d", r.ID(), i, dst[i])
					break
				}
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPSCWErrors(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(64, nil)
		defer win.Free()
		dst := make([]byte, 8)
		// RMA outside any epoch.
		if err := win.Get(dst, datatype.Byte, 8, 1, 0); !errors.Is(err, ErrBadEpoch) {
			t.Errorf("Get outside PSCW epoch: %v", err)
		}
		if err := win.Complete(); !errors.Is(err, ErrBadEpoch) {
			t.Errorf("Complete without Start: %v", err)
		}
		if err := win.Wait(); !errors.Is(err, ErrBadEpoch) {
			t.Errorf("Wait without Post: %v", err)
		}
		if err := win.Post([]int{9}); !errors.Is(err, ErrRankRange) {
			t.Errorf("Post bad rank: %v", err)
		}
		if err := win.Start([]int{9}); !errors.Is(err, ErrRankRange) {
			t.Errorf("Start bad rank: %v", err)
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPSCWClockOrdering(t *testing.T) {
	// The origin's Start happens-after the target's Post; the target's
	// Wait happens-after the origin's Complete (virtual time).
	err := Run(2, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(64, nil)
		defer win.Free()
		if r.ID() == 1 {
			r.Clock().Advance(5000) // target is "late" posting
			if err := win.Post([]int{0}); err != nil {
				return err
			}
			if err := win.Wait(); err != nil {
				return err
			}
			return nil
		}
		if err := win.Start([]int{1}); err != nil {
			return err
		}
		if r.Clock().Now() <= 5000 {
			t.Errorf("Start returned at %v, before the target's Post at 5000", r.Clock().Now())
		}
		return win.Complete()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPSCWRepeatedEpochs(t *testing.T) {
	// Several back-to-back PSCW epochs between the same pair.
	err := Run(2, Config{}, func(r *Rank) error {
		win, local := r.WinAllocate(64, nil)
		defer win.Free()
		for round := 0; round < 4; round++ {
			if r.ID() == 1 {
				local[0] = byte(round + 10)
				if err := win.Post([]int{0}); err != nil {
					return err
				}
				if err := win.Wait(); err != nil {
					return err
				}
			} else {
				if err := win.Start([]int{1}); err != nil {
					return err
				}
				dst := make([]byte, 1)
				if err := win.Get(dst, datatype.Byte, 1, 1, 0); err != nil {
					return err
				}
				if err := win.Complete(); err != nil {
					return err
				}
				if dst[0] != byte(round+10) {
					t.Errorf("round %d: got %d", round, dst[0])
				}
			}
			r.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
