package mpi

// Passive-target lock management. MPI_Win_lock supports shared and
// exclusive locks; exclusive locks mutually exclude every other lock on
// the same target, which the simulated runtime enforces for real (a rank
// blocking on a contended lock yields the world's run token so the
// holder can progress).

import (
	"errors"
	"sync"

	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// LockType selects MPI_LOCK_SHARED or MPI_LOCK_EXCLUSIVE. It aliases the
// transport-layer type so callers can use either package's constants.
type LockType = rma.LockType

const (
	// LockShared permits concurrent lock holders (MPI_LOCK_SHARED).
	LockShared = rma.LockShared
	// LockExclusive excludes all other holders (MPI_LOCK_EXCLUSIVE).
	LockExclusive = rma.LockExclusive
)

// ErrAlreadyLocked reports a second Lock on a target this origin already
// holds locked.
var ErrAlreadyLocked = errors.New("mpi: target already locked by this origin")

// targetLock is the cross-rank lock state of one (window, target) pair.
type targetLock struct {
	mu           sync.Mutex
	exclusive    bool
	sharedCount  int
	releaseClock simtime.Duration // virtual time of the latest release
	waiters      []chan struct{}
}

// lockState returns the shared lock table of the window.
func (w *Win) lockState(target int) *targetLock {
	w.shared.lockOnce.Do(func() {
		w.shared.locks = make([]*targetLock, len(w.shared.regions))
		for i := range w.shared.locks {
			w.shared.locks[i] = &targetLock{}
		}
	})
	return w.shared.locks[target]
}

// acquire blocks (yielding the run token) until the lock of the given
// type is granted, then returns the virtual release time of the previous
// conflicting holder (zero if uncontended).
func (w *Win) acquire(target int, typ LockType) simtime.Duration {
	tl := w.lockState(target)
	for {
		tl.mu.Lock()
		free := !tl.exclusive && (typ == LockShared || tl.sharedCount == 0)
		if free {
			if typ == LockExclusive {
				tl.exclusive = true
			} else {
				tl.sharedCount++
			}
			rel := tl.releaseClock
			tl.mu.Unlock()
			return rel
		}
		ch := make(chan struct{})
		tl.waiters = append(tl.waiters, ch)
		tl.mu.Unlock()
		// Yield so the holder can run and release (a no-op in
		// Throughput mode, where ranks already run concurrently).
		w.rank.world.leave()
		<-ch
		w.rank.world.enter()
	}
}

// release drops this origin's hold and wakes every waiter (they retry).
func (w *Win) release(target int, typ LockType) {
	tl := w.lockState(target)
	tl.mu.Lock()
	if typ == LockExclusive {
		tl.exclusive = false
	} else if tl.sharedCount > 0 {
		tl.sharedCount--
	}
	if w.rank.clock.Now() > tl.releaseClock {
		tl.releaseClock = w.rank.clock.Now()
	}
	ws := tl.waiters
	tl.waiters = nil
	tl.mu.Unlock()
	for _, ch := range ws {
		close(ch)
	}
}

// LockWithType opens a passive-target access epoch towards target with
// an explicit lock type (MPI_Win_lock). An exclusive lock blocks until
// every other holder of the target releases; the acquirer's clock
// advances past the previous holder's release.
func (w *Win) LockWithType(typ LockType, target int) error {
	if w.freed {
		return ErrFreedWin
	}
	if target < 0 || target >= len(w.shared.regions) {
		return ErrRankRange
	}
	if _, held := w.lockedTargets[target]; held {
		return ErrAlreadyLocked
	}
	rel := w.acquire(target, typ)
	// Lock acquisition is a lightweight remote CAS; a contended
	// exclusive lock additionally serializes after the previous
	// holder's release.
	lat := w.rank.Model().GetLatency(8, w.rank.Distance(target))
	if rel > 0 {
		w.rank.clock.AdvanceTo(rel)
	}
	w.rank.clock.Advance(lat)
	if w.lockedTargets == nil {
		w.lockedTargets = make(map[int]LockType)
	}
	w.lockedTargets[target] = typ
	return nil
}
