package mpi

import (
	"errors"
	"sync/atomic"
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/netsim"
	"clampi/internal/simtime"
)

func TestRunValidation(t *testing.T) {
	if err := Run(0, Config{}, func(*Rank) error { return nil }); !errors.Is(err, ErrWorldSize) {
		t.Fatalf("Run(0) = %v, want ErrWorldSize", err)
	}
	if err := Run(2, Config{}, nil); !errors.Is(err, ErrNilProgram) {
		t.Fatalf("Run(nil) = %v, want ErrNilProgram", err)
	}
}

func TestRunLaunchesAllRanks(t *testing.T) {
	var count int64
	seen := make([]bool, 8)
	err := Run(8, Config{}, func(r *Rank) error {
		atomic.AddInt64(&count, 1)
		seen[r.ID()] = true // distinct indices: no race
		if r.Size() != 8 {
			t.Errorf("Size() = %d", r.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Fatalf("ran %d ranks, want 8", count)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("rank %d never ran", i)
		}
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	err := Run(4, Config{}, func(r *Rank) error {
		if r.ID() == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	err := Run(4, Config{}, func(r *Rank) error {
		r.Clock().Advance(simtime.Duration(1000 * (r.ID() + 1)))
		r.Barrier()
		if r.Clock().Now() < 4000 {
			t.Errorf("rank %d clock %v < slowest participant", r.ID(), r.Clock().Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	err := Run(4, Config{}, func(r *Rank) error {
		got := r.AllgatherInt(r.ID() * 10)
		for i, v := range got {
			if v != i*10 {
				t.Errorf("rank %d: allgather[%d] = %d, want %d", r.ID(), i, v, i*10)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReductionsAndBcast(t *testing.T) {
	err := Run(4, Config{}, func(r *Rank) error {
		if m := r.AllreduceMax(float64(r.ID())); m != 3 {
			t.Errorf("AllreduceMax = %v, want 3", m)
		}
		if s := r.AllreduceSum(1.5); s != 6 {
			t.Errorf("AllreduceSum = %v, want 6", s)
		}
		v := r.Bcast(r.ID()*100, 2)
		if v.(int) != 200 {
			t.Errorf("Bcast = %v, want 200", v)
		}
		// Out-of-range root falls back to 0.
		v = r.Bcast(r.ID()+7, 99)
		if v.(int) != 7 {
			t.Errorf("Bcast bad root = %v, want 7", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWinCreateAndGet(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		region := make([]byte, 64)
		if r.ID() == 1 {
			for i := range region {
				region[i] = byte(i + 1)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		if r.ID() == 0 {
			if err := win.LockAll(); err != nil {
				return err
			}
			dst := make([]byte, 16)
			if err := win.Get(dst, datatype.Byte, 16, 1, 8); err != nil {
				return err
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
			for i := 0; i < 16; i++ {
				if dst[i] != byte(8+i+1) {
					t.Errorf("dst[%d] = %d, want %d", i, dst[i], 8+i+1)
				}
			}
			if err := win.UnlockAll(); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWinAllocatePutGetRoundTrip(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		win, local := r.WinAllocate(128, Info{"clampi": "transparent"})
		defer win.Free()
		if win.Info()["clampi"] != "transparent" {
			t.Errorf("info not preserved")
		}
		if len(local) != 128 || len(win.Local()) != 128 {
			t.Errorf("local region size %d/%d", len(local), len(win.Local()))
		}
		if r.ID() == 0 {
			if err := win.Lock(1); err != nil {
				return err
			}
			src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
			if err := win.Put(src, datatype.Byte, 8, 1, 32); err != nil {
				return err
			}
			if err := win.Flush(1); err != nil {
				return err
			}
			dst := make([]byte, 8)
			if err := win.Get(dst, datatype.Byte, 8, 1, 32); err != nil {
				return err
			}
			if err := win.Unlock(1); err != nil {
				return err
			}
			for i := range src {
				if dst[i] != src[i] {
					t.Errorf("round trip byte %d: got %d want %d", i, dst[i], src[i])
				}
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetWithStridedDatatype(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		region := make([]byte, 64)
		if r.ID() == 1 {
			for i := range region {
				region[i] = byte(i)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		if r.ID() == 0 {
			if err := win.LockAll(); err != nil {
				return err
			}
			// 2 blocks of 4 bytes, stride 8 bytes, starting at disp 4.
			vt := datatype.Vector(2, 4, 8, datatype.Byte)
			dst := make([]byte, vt.Size())
			if err := win.Get(dst, vt, 1, 1, 4); err != nil {
				return err
			}
			if err := win.UnlockAll(); err != nil {
				return err
			}
			want := []byte{4, 5, 6, 7, 12, 13, 14, 15}
			for i := range want {
				if dst[i] != want[i] {
					t.Errorf("dst[%d] = %d, want %d", i, dst[i], want[i])
				}
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAErrors(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(32, nil)
		dst := make([]byte, 64)

		// Outside any epoch.
		if err := win.Get(dst, datatype.Byte, 8, 1, 0); !errors.Is(err, ErrBadEpoch) {
			t.Errorf("Get outside epoch: %v", err)
		}
		if err := win.Flush(1); !errors.Is(err, ErrBadEpoch) {
			t.Errorf("Flush outside epoch: %v", err)
		}
		if err := win.Unlock(1); !errors.Is(err, ErrBadEpoch) {
			t.Errorf("Unlock without lock: %v", err)
		}
		if err := win.UnlockAll(); !errors.Is(err, ErrBadEpoch) {
			t.Errorf("UnlockAll without lock: %v", err)
		}

		if err := win.LockAll(); err != nil {
			return err
		}
		if err := win.Get(dst, datatype.Byte, 8, 5, 0); !errors.Is(err, ErrRankRange) {
			t.Errorf("Get bad rank: %v", err)
		}
		if err := win.Get(dst, datatype.Byte, 8, 1, 30); !errors.Is(err, ErrBounds) {
			t.Errorf("Get out of bounds: %v", err)
		}
		if err := win.Get(dst, datatype.Byte, 8, 1, -4); !errors.Is(err, ErrBounds) {
			t.Errorf("Get negative disp: %v", err)
		}
		if err := win.Get(dst[:2], datatype.Byte, 8, 1, 0); !errors.Is(err, ErrShortBuf) {
			t.Errorf("Get short buffer: %v", err)
		}
		if err := win.Put(dst[:2], datatype.Byte, 8, 1, 0); !errors.Is(err, ErrShortBuf) {
			t.Errorf("Put short buffer: %v", err)
		}
		if err := win.Put(dst, datatype.Byte, 8, 9, 0); !errors.Is(err, ErrRankRange) {
			t.Errorf("Put bad rank: %v", err)
		}
		if err := win.Put(dst, datatype.Byte, 64, 1, 0); !errors.Is(err, ErrBounds) {
			t.Errorf("Put out of bounds: %v", err)
		}
		if err := win.Flush(7); !errors.Is(err, ErrRankRange) {
			t.Errorf("Flush bad rank: %v", err)
		}
		if err := win.Lock(9); !errors.Is(err, ErrRankRange) {
			t.Errorf("Lock bad rank: %v", err)
		}
		if err := win.UnlockAll(); err != nil {
			return err
		}
		r.Barrier()

		if err := win.Free(); err != nil {
			return err
		}
		if err := win.Free(); !errors.Is(err, ErrFreedWin) {
			t.Errorf("double Free: %v", err)
		}
		if err := win.LockAll(); !errors.Is(err, ErrFreedWin) {
			t.Errorf("LockAll after free: %v", err)
		}
		if err := win.Get(dst, datatype.Byte, 8, 1, 0); !errors.Is(err, ErrFreedWin) {
			t.Errorf("Get after free: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEpochCounterAndListeners(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(64, nil)
		defer win.Free()
		var fired []int64
		win.AddEpochListener(func(e int64) { fired = append(fired, e) })
		win.AddEpochListener(nil) // must be ignored

		if win.Epoch() != 0 {
			t.Errorf("initial epoch = %d", win.Epoch())
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		dst := make([]byte, 8)
		if err := win.Get(dst, datatype.Byte, 8, 1-r.ID(), 0); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		if win.Epoch() != 1 {
			t.Errorf("epoch after flush = %d, want 1", win.Epoch())
		}
		if err := win.UnlockAll(); err != nil {
			return err
		}
		if win.Epoch() != 2 {
			t.Errorf("epoch after unlock = %d, want 2", win.Epoch())
		}
		if len(fired) != 2 || fired[0] != 0 || fired[1] != 1 {
			t.Errorf("listener fired with %v, want [0 1]", fired)
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlushAdvancesClockByNetworkLatency(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(1<<20, nil)
		defer win.Free()
		if r.ID() == 0 {
			if err := win.LockAll(); err != nil {
				return err
			}
			before := r.Clock().Now()
			dst := make([]byte, 64*1024)
			if err := win.Get(dst, datatype.Byte, len(dst), 1, 0); err != nil {
				return err
			}
			afterIssue := r.Clock().Now()
			if err := win.FlushAll(); err != nil {
				return err
			}
			afterFlush := r.Clock().Now()

			model := r.Model()
			dist := r.Distance(1)
			issue := afterIssue - before
			if issue != model.IssueOverhead(dist) {
				t.Errorf("issue cost %v, want %v", issue, model.IssueOverhead(dist))
			}
			total := afterFlush - before
			want := model.GetLatency(64*1024, dist)
			if total != want {
				t.Errorf("end-to-end %v, want %v", total, want)
			}
			if err := win.UnlockAll(); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedGetsOverlap(t *testing.T) {
	// K gets issued back-to-back must complete in far less than K times
	// the single-get latency (they pipeline; only issue overheads
	// serialize).
	err := Run(2, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(1<<16, nil)
		defer win.Free()
		if r.ID() == 0 {
			if err := win.LockAll(); err != nil {
				return err
			}
			const k = 100
			single := r.Model().GetLatency(1024, r.Distance(1))
			before := r.Clock().Now()
			dst := make([]byte, 1024)
			for i := 0; i < k; i++ {
				if err := win.Get(dst, datatype.Byte, 1024, 1, 0); err != nil {
					return err
				}
			}
			if win.PendingOps() != k {
				t.Errorf("PendingOps = %d, want %d", win.PendingOps(), k)
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
			if win.PendingOps() != 0 {
				t.Errorf("PendingOps after flush = %d", win.PendingOps())
			}
			elapsed := r.Clock().Now() - before
			if elapsed >= simtime.Duration(k)*single/2 {
				t.Errorf("pipelined %d gets took %v, not overlapped (single=%v)", k, elapsed, single)
			}
			if err := win.UnlockAll(); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlushPerTargetOnlyCompletesThatTarget(t *testing.T) {
	err := Run(3, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(4096, nil)
		defer win.Free()
		if r.ID() == 0 {
			if err := win.LockAll(); err != nil {
				return err
			}
			dst := make([]byte, 1024)
			if err := win.Get(dst, datatype.Byte, 1024, 1, 0); err != nil {
				return err
			}
			if err := win.Get(dst, datatype.Byte, 1024, 2, 0); err != nil {
				return err
			}
			if err := win.Flush(1); err != nil {
				return err
			}
			if win.PendingOps() != 1 {
				t.Errorf("PendingOps after Flush(1) = %d, want 1", win.PendingOps())
			}
			if err := win.UnlockAll(); err != nil {
				return err
			}
			if win.PendingOps() != 0 {
				t.Errorf("PendingOps after UnlockAll = %d", win.PendingOps())
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFence(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(64, nil)
		defer win.Free()
		if err := win.Fence(); err != nil { // opens first epoch
			return err
		}
		e0 := win.Epoch()
		if r.ID() == 0 {
			src := []byte{42}
			if err := win.Put(src, datatype.Byte, 1, 1, 0); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil { // closes epoch, opens next
			return err
		}
		if win.Epoch() != e0+1 {
			t.Errorf("epoch did not advance across fence: %d -> %d", e0, win.Epoch())
		}
		if r.ID() == 1 && win.Local()[0] != 42 {
			t.Errorf("put not visible after fence: %d", win.Local()[0])
		}
		if err := win.Fence(); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistanceMapping(t *testing.T) {
	err := Run(8, Config{RanksPerNode: 4}, func(r *Rank) error {
		if r.ID() == 0 {
			if d := r.Distance(0); d != netsim.SameProcess {
				t.Errorf("Distance(self) = %v", d)
			}
			if d := r.Distance(1); d != netsim.SameSocket {
				t.Errorf("Distance(1) = %v", d)
			}
			if d := r.Distance(2); d != netsim.SameNode {
				t.Errorf("Distance(2) = %v", d)
			}
			if d := r.Distance(4); d != netsim.OtherNode {
				t.Errorf("Distance(4) = %v", d)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegionSize(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		size := 100 * (r.ID() + 1)
		win, _ := r.WinAllocate(size, nil)
		defer win.Free()
		n, err := win.RegionSize(1)
		if err != nil || n != 200 {
			t.Errorf("RegionSize(1) = %d, %v", n, err)
		}
		if _, err := win.RegionSize(5); !errors.Is(err, ErrRankRange) {
			t.Errorf("RegionSize(5) err = %v", err)
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWinAllocateNegativeSize(t *testing.T) {
	err := Run(1, Config{}, func(r *Rank) error {
		win, region := r.WinAllocate(-5, nil)
		defer win.Free()
		if len(region) != 0 {
			t.Errorf("negative size allocated %d bytes", len(region))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStringForm(t *testing.T) {
	err := Run(1, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(8, nil)
		defer win.Free()
		if win.String() == "" {
			t.Errorf("empty String()")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyRanksManyWindows(t *testing.T) {
	// Stress the collective rendezvous: several windows created in
	// sequence by 16 ranks, with interleaved barriers.
	err := Run(16, Config{}, func(r *Rank) error {
		for i := 0; i < 4; i++ {
			win, local := r.WinAllocate(256, nil)
			for j := range local {
				local[j] = byte(r.ID())
			}
			r.Barrier()
			if err := win.LockAll(); err != nil {
				return err
			}
			dst := make([]byte, 256)
			trg := (r.ID() + 1) % r.Size()
			if err := win.Get(dst, datatype.Byte, 256, trg, 0); err != nil {
				return err
			}
			if err := win.UnlockAll(); err != nil {
				return err
			}
			if dst[0] != byte(trg) {
				t.Errorf("rank %d window %d: got %d want %d", r.ID(), i, dst[0], trg)
			}
			if err := win.Free(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageGapPacesInjection(t *testing.T) {
	// With LogGP g set, k pipelined gets cannot complete faster than
	// (k-1)*g plus one latency; with g = 0 they pipeline freely.
	gapModel := netsim.NewModel(map[netsim.Distance]netsim.Params{
		netsim.OtherNode: {Base: 1800, Overhead: 100, BytesPerSecond: 10e9, Gap: 1000},
	})
	var withGap, withoutGap simtime.Duration
	for _, gapped := range []bool{false, true} {
		cfg := Config{}
		if gapped {
			cfg.Model = gapModel
		}
		err := Run(2, cfg, func(r *Rank) error {
			win, _ := r.WinAllocate(1<<16, nil)
			defer win.Free()
			if r.ID() == 0 {
				if err := win.LockAll(); err != nil {
					return err
				}
				const k = 32
				dst := make([]byte, 64)
				t0 := r.Clock().Now()
				for i := 0; i < k; i++ {
					if err := win.Get(dst, datatype.Byte, 64, 1, 0); err != nil {
						return err
					}
				}
				if err := win.FlushAll(); err != nil {
					return err
				}
				if gapped {
					withGap = r.Clock().Now() - t0
				} else {
					withoutGap = r.Clock().Now() - t0
				}
				if err := win.UnlockAll(); err != nil {
					return err
				}
			}
			r.Barrier()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if withGap <= withoutGap {
		t.Fatalf("gap pacing had no effect: %v vs %v", withGap, withoutGap)
	}
	// 32 ops at g=1000ns: at least 31µs of injection serialization.
	if withGap < 31*simtime.Microsecond {
		t.Fatalf("gapped run %v, want >= 31µs", withGap)
	}
}
