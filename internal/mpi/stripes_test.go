package mpi

import (
	"testing"

	"clampi/internal/datatype"
)

// TestMakeStripes pins down the stripe geometry: power-of-two widths of
// at least 256 bytes, at most dataStripes stripes per region, full
// coverage, and a single stripe for empty or tiny regions.
func TestMakeStripes(t *testing.T) {
	cases := []struct {
		size      int
		wantN     int
		wantShift uint
	}{
		{0, 1, 8},
		{1, 1, 8},
		{256, 1, 8},
		{257, 2, 8},
		{2048, 8, 8},
		{2049, 5, 9},     // width 512 covers 2049 bytes in 5 stripes
		{1 << 20, 8, 17}, // 1 MiB: 8 stripes of 128 KiB
	}
	for _, c := range cases {
		stripes, shifts := makeStripes([][]byte{make([]byte, c.size)})
		if len(stripes[0]) != c.wantN || shifts[0] != c.wantShift {
			t.Errorf("size %d: %d stripes shift %d, want %d stripes shift %d",
				c.size, len(stripes[0]), shifts[0], c.wantN, c.wantShift)
		}
		if len(stripes[0]) > dataStripes {
			t.Errorf("size %d: %d stripes exceeds cap %d", c.size, len(stripes[0]), dataStripes)
		}
		// Coverage: the last byte maps to an existing stripe.
		if c.size > 0 {
			if s := (c.size - 1) >> shifts[0]; s >= len(stripes[0]) {
				t.Errorf("size %d: last byte in stripe %d of %d", c.size, s, len(stripes[0]))
			}
		}
	}
}

// TestStripeGranularity proves Throughput-mode data-path locking is
// per-(target, region-stripe), not per-target: with one stripe of the
// target region held exclusively, a Get touching a *different* stripe
// completes, and two Gets of the *same* stripe proceed concurrently
// (read locks). A per-target mutex would deadlock this test.
func TestStripeGranularity(t *testing.T) {
	const p = 2
	const regionSize = 1 << 13 // 8 KiB → 8 stripes of 1 KiB
	err := Run(p, Config{Mode: Throughput}, func(r *Rank) error {
		region := make([]byte, regionSize)
		for i := range region {
			region[i] = byte(i)
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		r.Barrier()
		if r.ID() != 0 {
			r.Barrier() // matches rank 0's closing barrier
			return nil
		}

		if err := win.LockAll(); err != nil {
			return err
		}
		shift := win.shared.stripeShift[1]
		width := 1 << shift
		if len(win.shared.stripes[1]) < 2 {
			return errBadByte{rank: 0, target: 1, off: -1}
		}

		// Hold stripe 0 of target 1 exclusively; read from stripe 1.
		win.shared.stripes[1][0].Lock()
		buf := make([]byte, 64)
		if err := win.Get(buf, datatype.Byte, 64, 1, width); err != nil { //clampi:lockorder structural proof: the Get targets stripe 1 while the test pins stripe 0, showing stripes are independent
			return err
		}
		win.shared.stripes[1][0].Unlock()
		for i := range buf {
			if buf[i] != byte(width+i) {
				return errBadByte{rank: 0, target: 1, off: i}
			}
		}

		// Hold stripe 0 shared; a Get of the same stripe still completes.
		win.shared.stripes[1][0].RLock()
		if err := win.Get(buf, datatype.Byte, 64, 1, 0); err != nil { //clampi:lockorder structural proof: the held RLock is shared, so the Get's RLock of the same stripe cannot deadlock
			return err
		}
		win.shared.stripes[1][0].RUnlock()
		for i := range buf {
			if buf[i] != byte(i) {
				return errBadByte{rank: 0, target: 1, off: i}
			}
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		if err := win.UnlockAll(); err != nil {
			return err
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStripeSpanningWrite proves a Put crossing stripe boundaries stays
// atomic with respect to a spanning Get: readers see either the old or
// the new bytes across the whole span, never a mix, because both sides
// acquire every covered stripe (in ascending order) before touching data.
func TestStripeSpanningWrite(t *testing.T) {
	const p = 4
	const regionSize = 1 << 12 // 4 KiB → 8 stripes of 512 B
	const span = 1024          // crosses two stripe boundaries at disp 256
	const disp = 256
	err := Run(p, Config{Mode: Throughput}, func(r *Rank) error {
		region := make([]byte, regionSize)
		win := r.WinCreate(region, nil)
		defer win.Free()
		r.Barrier()
		if err := win.LockAll(); err != nil {
			return err
		}
		src := make([]byte, span)
		buf := make([]byte, span)
		for iter := 0; iter < 200; iter++ {
			if r.ID()%2 == 0 {
				fill := byte(r.ID()*100 + iter%100)
				for i := range src {
					src[i] = fill
				}
				if err := win.Put(src, datatype.Byte, span, 0, disp); err != nil {
					return err
				}
			} else {
				if err := win.Get(buf, datatype.Byte, span, 0, disp); err != nil {
					return err
				}
				first := buf[0]
				for i := range buf {
					if buf[i] != first {
						return errBadByte{rank: r.ID(), target: 0, off: i}
					}
				}
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
		}
		if err := win.UnlockAll(); err != nil {
			return err
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
