package mpi

import (
	"errors"
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/rma"
)

func TestRgetWaitCompletesOneOperation(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		region := make([]byte, 4096)
		if r.ID() == 1 {
			for i := range region {
				region[i] = byte(i)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		if r.ID() == 0 {
			if err := win.LockAll(); err != nil {
				return err
			}
			a := make([]byte, 64)
			b := make([]byte, 2048)
			reqA, err := win.Rget(a, datatype.Byte, 64, 1, 0)
			if err != nil {
				return err
			}
			reqB, err := win.Rget(b, datatype.Byte, 2048, 1, 64)
			if err != nil {
				return err
			}
			if win.PendingOps() != 2 {
				t.Errorf("PendingOps = %d", win.PendingOps())
			}
			// Completing only A advances the clock to A's completion,
			// which is before B's (smaller transfer, issued first).
			if err := reqA.Wait(); err != nil {
				return err
			}
			if win.PendingOps() != 1 {
				t.Errorf("PendingOps after Wait = %d", win.PendingOps())
			}
			if reqB.Test() {
				t.Errorf("B complete right after waiting on A")
			}
			if !reqA.Test() {
				t.Errorf("A not complete after Wait")
			}
			if err := reqB.Wait(); err != nil {
				return err
			}
			if err := reqA.Wait(); !errors.Is(err, ErrDoneRequest) {
				t.Errorf("double Wait: %v", err)
			}
			// Data of both is valid after their waits.
			for i := range a {
				if a[i] != byte(i) {
					t.Errorf("a[%d] = %d", i, a[i])
					break
				}
			}
			for i := range b {
				if b[i] != byte(64+i) {
					t.Errorf("b[%d] = %d", i, b[i])
					break
				}
			}
			if err := win.UnlockAll(); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRputAndErrors(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		win, local := r.WinAllocate(128, nil)
		defer win.Free()
		if r.ID() == 0 {
			if err := win.LockAll(); err != nil {
				return err
			}
			req, err := win.Rput([]byte{5, 6}, datatype.Byte, 2, 1, 8)
			if err != nil {
				return err
			}
			if err := req.Wait(); err != nil {
				return err
			}
			// Propagated argument errors return no request.
			if _, err := win.Rget(make([]byte, 8), datatype.Byte, 8, 9, 0); !errors.Is(err, ErrRankRange) {
				t.Errorf("Rget bad rank: %v", err)
			}
			if _, err := win.Rput(make([]byte, 8), datatype.Byte, 8, 1, 999); !errors.Is(err, ErrBounds) {
				t.Errorf("Rput out of bounds: %v", err)
			}
			if err := win.UnlockAll(); err != nil {
				return err
			}
		}
		r.Barrier()
		if r.ID() == 1 && (local[8] != 5 || local[9] != 6) {
			t.Errorf("rput data: %v", local[8:10])
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLastRequestEmptyPending covers the hardened empty-pending path:
// wrapping a request when nothing is in flight must report ErrNoRequest
// instead of panicking.
func TestLastRequestEmptyPending(t *testing.T) {
	err := Run(1, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(64, nil)
		defer win.Free()
		if win.PendingOps() != 0 {
			t.Fatalf("fresh window has %d pending ops", win.PendingOps())
		}
		req, err := win.lastRequest()
		if !errors.Is(err, rma.ErrNoRequest) {
			t.Errorf("lastRequest on empty pending: %v", err)
		}
		if req != nil {
			t.Errorf("lastRequest returned non-nil request %v", req)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// BenchmarkRequestWaitMany measures waiting on many outstanding Rgets in
// issue order — the regression case for the pending-list compaction: the
// old filter-copy made each Wait O(outstanding), quadratic overall.
func BenchmarkRequestWaitMany(b *testing.B) {
	err := Run(2, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(4096, nil)
		defer win.Free()
		if r.ID() == 0 {
			if err := win.LockAll(); err != nil {
				return err
			}
			dst := make([]byte, 64)
			reqs := make([]rma.Request, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req, err := win.Rget(dst, datatype.Byte, 64, 1, 0)
				if err != nil {
					return err
				}
				reqs[i] = req
			}
			for _, req := range reqs {
				if err := req.Wait(); err != nil {
					return err
				}
			}
			b.StopTimer()
			if err := win.UnlockAll(); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func TestRequestPipelining(t *testing.T) {
	// Software pipelining: waiting on op i while ops i+1.. remain in
	// flight must cost one latency total, not one per op.
	err := Run(2, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(1<<16, nil)
		defer win.Free()
		if r.ID() == 0 {
			if err := win.LockAll(); err != nil {
				return err
			}
			const k = 16
			dst := make([]byte, 1024)
			reqs := make([]rma.Request, k)
			t0 := r.Clock().Now()
			for i := 0; i < k; i++ {
				var err error
				reqs[i], err = win.Rget(dst, datatype.Byte, 1024, 1, 0)
				if err != nil {
					return err
				}
			}
			for _, req := range reqs {
				if err := req.Wait(); err != nil {
					return err
				}
			}
			elapsed := r.Clock().Now() - t0
			single := r.Model().GetLatency(1024, r.Distance(1))
			if elapsed >= single*k/2 {
				t.Errorf("request waits serialized: %v for %d ops (single %v)", elapsed, k, single)
			}
			if err := win.UnlockAll(); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
