package mpi

import (
	"sync"
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/simtime"
)

// TestParseExecMode covers the flag-string surface.
func TestParseExecMode(t *testing.T) {
	cases := []struct {
		in   string
		want ExecMode
		err  bool
	}{
		{"", FidelityMeasured, false},
		{"fidelity", FidelityMeasured, false},
		{"serialized", FidelityMeasured, false},
		{"measured", FidelityMeasured, false},
		{"throughput", Throughput, false},
		{"concurrent", Throughput, false},
		{"parallel", Throughput, false},
		{"Fidelity", FidelityMeasured, false},
		{"THROUGHPUT", Throughput, false},
		{"bogus", FidelityMeasured, true},
	}
	for _, c := range cases {
		got, err := ParseExecMode(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseExecMode(%q) err = %v", c.in, err)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseExecMode(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if FidelityMeasured.String() != "fidelity" || Throughput.String() != "throughput" {
		t.Errorf("mode strings: %q %q", FidelityMeasured, Throughput)
	}
}

// exchangeProgram is an 8-rank all-to-all pattern: every rank publishes a
// deterministic pattern in its region, synchronizes, then reads and
// verifies every other rank's region. It returns each rank's final
// virtual time through clocks.
func exchangeProgram(clocks []simtime.Duration) func(r *Rank) error {
	return func(r *Rank) error {
		const regionSize = 1 << 12
		region := make([]byte, regionSize)
		for i := range region {
			region[i] = byte(r.ID()*31 + i)
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		// The window data is published before the barrier; the barrier
		// is the happens-before edge the readers rely on.
		r.Barrier()
		if err := win.LockAll(); err != nil {
			return err
		}
		buf := make([]byte, regionSize)
		for round := 0; round < 4; round++ {
			for off := 0; off < r.Size(); off++ {
				target := (r.ID() + off) % r.Size()
				if err := win.Get(buf, datatype.Byte, regionSize, target, 0); err != nil {
					return err
				}
				if err := win.FlushAll(); err != nil {
					return err
				}
				for i := range buf {
					if buf[i] != byte(target*31+i) {
						return errBadByte{rank: r.ID(), target: target, off: i}
					}
				}
			}
		}
		if err := win.UnlockAll(); err != nil {
			return err
		}
		r.Barrier()
		clocks[r.ID()] = r.Clock().Now()
		return nil
	}
}

type errBadByte struct{ rank, target, off int }

func (e errBadByte) Error() string { return "corrupt remote read" }

// TestThroughputModeExchange runs a genuinely concurrent 8-rank
// all-to-all read pattern in Throughput mode (exercising the per-target
// shard locks under -race) and checks the virtual clocks agree exactly
// with the serialized FidelityMeasured run: the modelled costs make the
// two modes indistinguishable in virtual time.
func TestThroughputModeExchange(t *testing.T) {
	const p = 8
	serial := make([]simtime.Duration, p)
	if err := Run(p, Config{Mode: FidelityMeasured}, exchangeProgram(serial)); err != nil {
		t.Fatalf("fidelity run: %v", err)
	}
	conc := make([]simtime.Duration, p)
	if err := Run(p, Config{Mode: Throughput}, exchangeProgram(conc)); err != nil {
		t.Fatalf("throughput run: %v", err)
	}
	for i := range serial {
		if serial[i] != conc[i] {
			t.Errorf("rank %d: fidelity clock %v != throughput clock %v", i, serial[i], conc[i])
		}
	}
}

// TestThroughputModeTrueConcurrency proves all ranks of a Throughput
// world are genuinely runnable at once: every rank checks in on a plain
// sync.WaitGroup and then waits for the others — a rendezvous outside
// the runtime's collectives. Under the serialized token at most one rank
// can execute user code, so this pattern would deadlock in
// FidelityMeasured mode; completing it requires true rank concurrency
// (and with it, as many cores as GOMAXPROCS offers).
func TestThroughputModeTrueConcurrency(t *testing.T) {
	const p = 8
	var ready sync.WaitGroup
	ready.Add(p)
	err := Run(p, Config{Mode: Throughput}, func(r *Rank) error {
		ready.Done()
		ready.Wait() // all p ranks are inside user code right now
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestThroughputModeAccumulate drives concurrent same-target accumulates
// from every rank in Throughput mode: MPI-3 declares them element-wise
// atomic, which the shard lock must uphold (and -race must agree).
func TestThroughputModeAccumulate(t *testing.T) {
	const p = 8
	const slots = 64
	var region []byte
	err := Run(p, Config{Mode: Throughput}, func(r *Rank) error {
		local := make([]byte, slots*8)
		win := r.WinCreate(local, nil)
		defer win.Free()
		if err := win.LockAll(); err != nil {
			return err
		}
		one := make([]byte, slots*8)
		for i := 0; i < slots; i++ {
			one[i*8] = 1 // little-endian int64(1) per slot
		}
		for iter := 0; iter < 16; iter++ {
			if err := win.Accumulate(one, datatype.Int64, slots, 0, 0, OpSum); err != nil {
				return err
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
		}
		if err := win.UnlockAll(); err != nil {
			return err
		}
		r.Barrier()
		if r.ID() == 0 {
			region = local
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < slots; i++ {
		got := int64(leU64(region[i*8 : i*8+8]))
		if got != p*16 {
			t.Fatalf("slot %d = %d, want %d", i, got, p*16)
		}
	}
}
