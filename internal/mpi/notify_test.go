package mpi

import (
	"bytes"
	"errors"
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/notify"
)

// TestPutNotifyDelivers checks the broadcast contract in both execution
// modes: every subscribed rank except the origin receives a descriptor
// carrying the written bytes, and polls after a Fence observe every
// pre-fence push.
func TestPutNotifyDelivers(t *testing.T) {
	for _, mode := range []ExecMode{FidelityMeasured, Throughput} {
		t.Run(mode.String(), func(t *testing.T) {
			const ranks = 3
			err := Run(ranks, Config{Mode: mode}, func(r *Rank) error {
				win, _ := r.WinAllocate(256, Info{})
				defer win.Free()
				if err := win.NotifyEnable(16); err != nil {
					return err
				}
				if err := win.Fence(); err != nil {
					return err
				}
				if r.ID() == 0 {
					src := []byte{1, 2, 3, 4}
					if err := win.PutNotify(src, datatype.Byte, len(src), 1, 8, 42); err != nil {
						return err
					}
				}
				if err := win.Fence(); err != nil {
					return err
				}
				buf := make([]notify.Notification, 8)
				n, ov := win.NotifyPoll(buf)
				if ov {
					t.Errorf("rank %d: unexpected overflow", r.ID())
				}
				switch r.ID() {
				case 0:
					if n != 0 {
						t.Errorf("origin received %d notifications, want 0", n)
					}
				default:
					if n != 1 {
						t.Fatalf("rank %d received %d notifications, want 1", r.ID(), n)
					}
					nf := buf[0]
					if nf.Origin != 0 || nf.Target != 1 || nf.Disp != 8 || nf.Len != 4 || nf.Tag != 42 || nf.Seq != 1 {
						t.Errorf("rank %d: notification %+v", r.ID(), nf)
					}
					if !bytes.Equal(nf.Data, []byte{1, 2, 3, 4}) {
						t.Errorf("rank %d: data %v", r.ID(), nf.Data)
					}
				}
				return win.Fence()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPutNotifyLargeWriteOmitsData checks writes above notify.DataMax
// notify with Data == nil (readers must fall back to invalidation).
func TestPutNotifyLargeWriteOmitsData(t *testing.T) {
	size := notify.DataMax + 1
	err := Run(2, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(size, Info{})
		defer win.Free()
		if err := win.NotifyEnable(4); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if r.ID() == 0 {
			src := make([]byte, size)
			if err := win.PutNotify(src, datatype.Byte, size, 1, 0, 0); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if r.ID() == 1 {
			buf := make([]notify.Notification, 2)
			n, _ := win.NotifyPoll(buf)
			if n != 1 {
				t.Fatalf("got %d notifications, want 1", n)
			}
			if buf[0].Data != nil {
				t.Errorf("large write carried %d data bytes, want nil", len(buf[0].Data))
			}
			if buf[0].Len != size {
				t.Errorf("Len = %d, want %d", buf[0].Len, size)
			}
		}
		return win.Fence()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNotifyWaitWakes proves NotifyWait releases the serialized run
// token: rank 1 blocks in NotifyWait while rank 0 runs and pushes.
func TestNotifyWaitWakes(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(64, Info{})
		defer win.Free()
		if err := win.NotifyEnable(4); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if r.ID() == 1 {
			if err := win.NotifyWait(); err != nil {
				return err
			}
			if win.NotifyDepth() != 1 {
				t.Errorf("depth after wait = %d, want 1", win.NotifyDepth())
			}
		} else {
			src := []byte{9}
			if err := win.PutNotify(src, datatype.Byte, 1, 0, 0, 7); err != nil {
				return err
			}
		}
		return win.Fence()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNotifyQueueOverflowInBackend checks a slow reader's bounded queue
// sheds and flags instead of growing or blocking the writer.
func TestNotifyQueueOverflowInBackend(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(64, Info{})
		defer win.Free()
		if err := win.NotifyEnable(2); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if r.ID() == 0 {
			src := []byte{1}
			for i := 0; i < 5; i++ {
				if err := win.PutNotify(src, datatype.Byte, 1, 1, i, 0); err != nil {
					return err
				}
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if r.ID() == 1 {
			buf := make([]notify.Notification, 8)
			n, ov := win.NotifyPoll(buf)
			if n != 2 || !ov {
				t.Errorf("Poll = (%d, %v), want (2, true)", n, ov)
			}
		}
		return win.Fence()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNotifyBeforeEnable checks the unsubscribed surface is inert.
func TestNotifyBeforeEnable(t *testing.T) {
	err := Run(1, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(64, Info{})
		defer win.Free()
		if win.NotifyDepth() != 0 {
			t.Error("depth before enable != 0")
		}
		if n, ov := win.NotifyPoll(make([]notify.Notification, 1)); n != 0 || ov {
			t.Errorf("Poll before enable = (%d, %v)", n, ov)
		}
		if err := win.NotifyWait(); !errors.Is(err, ErrNotSubscribed) {
			t.Errorf("NotifyWait before enable = %v, want ErrNotSubscribed", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
