package mpi

// MPI_Accumulate support. CLaMPI does not cache accumulates (they are
// writes), but real RMA applications mix them with gets, so the runtime
// substrate provides them. Unlike Put, concurrent same-target
// accumulates are legal in MPI-3 (they are element-wise atomic); the
// simulated runtime executes them under the world's run token in
// FidelityMeasured mode and under the target's data-path shard in
// Throughput mode.

import (
	"errors"
	"math"

	"clampi/internal/datatype"
	"clampi/internal/rma"
)

// Op is an accumulate reduction operator, aliased from the transport
// layer so callers can use either package's constants.
type Op = rma.Op

const (
	// OpReplace overwrites the target elements (MPI_REPLACE).
	OpReplace = rma.OpReplace
	// OpSum adds to the target elements (MPI_SUM).
	OpSum = rma.OpSum
	// OpMax keeps the element-wise maximum (MPI_MAX).
	OpMax = rma.OpMax
	// OpMin keeps the element-wise minimum (MPI_MIN).
	OpMin = rma.OpMin
)

// ErrBadAccumulate reports an unsupported datatype/op combination.
var ErrBadAccumulate = errors.New("mpi: accumulate requires a primitive arithmetic datatype")

// Accumulate combines count elements of dtype from src (packed) into
// target's region at byte displacement disp using op (MPI_Accumulate).
// Arithmetic ops support Int32, Int64 and Double; OpReplace additionally
// supports any datatype (it degenerates to Put).
func (w *Win) Accumulate(src []byte, dtype datatype.Datatype, count int, target, disp int, op Op) error {
	if op == OpReplace {
		return w.Put(src, dtype, count, target, disp)
	}
	if w.freed {
		return ErrFreedWin
	}
	if !w.inEpoch() {
		return ErrBadEpoch
	}
	if target < 0 || target >= len(w.shared.regions) {
		return ErrRankRange
	}
	size := datatype.TransferSize(dtype, count)
	if len(src) < size {
		return ErrShortBuf
	}
	var elem int
	switch dtype {
	case datatype.Int32:
		elem = 4
	case datatype.Int64, datatype.Double:
		elem = 8
	default:
		return ErrBadAccumulate
	}
	region := w.shared.regions[target]
	if disp < 0 || disp+size > len(region) {
		return ErrBounds
	}
	w.lockRange(target, disp, size, true)
	for i := 0; i < count; i++ {
		s := src[i*elem : (i+1)*elem]
		d := region[disp+i*elem : disp+(i+1)*elem]
		applyOp(d, s, dtype, op)
	}
	w.unlockRange(target, disp, size, true)
	w.enqueueOp(target, size)
	return nil
}

func applyOp(dst, src []byte, dtype datatype.Datatype, op Op) {
	switch dtype {
	case datatype.Int32:
		a := int32(leU32(dst))
		b := int32(leU32(src))
		putLeU32(dst, uint32(combineI64(int64(a), int64(b), op)))
	case datatype.Int64:
		a := int64(leU64(dst))
		b := int64(leU64(src))
		putLeU64(dst, uint64(combineI64(a, b, op)))
	case datatype.Double:
		a := math.Float64frombits(leU64(dst))
		b := math.Float64frombits(leU64(src))
		putLeU64(dst, math.Float64bits(combineF64(a, b, op)))
	}
}

func combineI64(a, b int64, op Op) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	}
	return b
}

func combineF64(a, b float64, op Op) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	}
	return b
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLeU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func putLeU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
