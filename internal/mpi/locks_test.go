package mpi

import (
	"errors"
	"testing"

	"clampi/internal/datatype"
)

func TestLockTypeStrings(t *testing.T) {
	if LockShared.String() != "shared" || LockExclusive.String() != "exclusive" {
		t.Fatalf("lock type strings wrong")
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	// Every rank takes a shared lock on rank 0 simultaneously; nobody
	// blocks forever.
	err := Run(4, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(64, nil)
		defer win.Free()
		if err := win.Lock(0); err != nil {
			return err
		}
		dst := make([]byte, 8)
		if err := win.Get(dst, datatype.Byte, 8, 0, 0); err != nil {
			return err
		}
		if err := win.Unlock(0); err != nil {
			return err
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveLockMutualExclusion(t *testing.T) {
	// Ranks 0..3 each take the exclusive lock on target 0 and do a
	// read-modify-write of a counter byte. Without mutual exclusion
	// the increments would be lost (every rank reads the same initial
	// value); with it, the counter ends at 4.
	const p = 4
	err := Run(p, Config{}, func(r *Rank) error {
		win, local := r.WinAllocate(64, nil)
		defer win.Free()
		if err := win.LockWithType(LockExclusive, 0); err != nil {
			return err
		}
		dst := make([]byte, 1)
		if err := win.Get(dst, datatype.Byte, 1, 0, 0); err != nil {
			return err
		}
		if err := win.Flush(0); err != nil {
			return err
		}
		dst[0]++
		if err := win.Put(dst, datatype.Byte, 1, 0, 0); err != nil {
			return err
		}
		if err := win.Unlock(0); err != nil {
			return err
		}
		r.Barrier()
		if r.ID() == 0 && local[0] != p {
			t.Errorf("counter = %d, want %d (lost updates)", local[0], p)
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveLockClockSerializes(t *testing.T) {
	// Contended exclusive acquisitions must serialize in virtual time:
	// the later holder's epoch starts after the earlier one released.
	starts := make([]int64, 2)
	ends := make([]int64, 2)
	err := Run(2, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(64, nil)
		defer win.Free()
		if err := win.LockWithType(LockExclusive, 0); err != nil {
			return err
		}
		starts[r.ID()] = int64(r.Clock().Now())
		dst := make([]byte, 32)
		if err := win.Get(dst, datatype.Byte, 32, 0, 0); err != nil {
			return err
		}
		if err := win.Unlock(0); err != nil {
			return err
		}
		ends[r.ID()] = int64(r.Clock().Now())
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// One of the two held the lock second; its start must not precede
	// the other's end.
	first, second := 0, 1
	if starts[1] < starts[0] {
		first, second = 1, 0
	}
	if starts[second] < ends[first] {
		t.Fatalf("exclusive epochs overlap in virtual time: [%d,%d] and [%d,%d]",
			starts[first], ends[first], starts[second], ends[second])
	}
}

func TestConcurrentLocksToDifferentTargets(t *testing.T) {
	// One origin may hold locks on several targets at once (MPI-3).
	err := Run(3, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(64, nil)
		defer win.Free()
		if r.ID() == 0 {
			if err := win.Lock(1); err != nil {
				return err
			}
			if err := win.Lock(2); err != nil {
				return err
			}
			dst := make([]byte, 8)
			if err := win.Get(dst, datatype.Byte, 8, 1, 0); err != nil {
				return err
			}
			if err := win.Get(dst, datatype.Byte, 8, 2, 0); err != nil {
				return err
			}
			if err := win.Unlock(1); err != nil {
				return err
			}
			// Still locked to 2: RMA legal.
			if err := win.Get(dst, datatype.Byte, 8, 2, 0); err != nil {
				return err
			}
			if err := win.Unlock(2); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoubleLockSameTarget(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(64, nil)
		defer win.Free()
		if r.ID() == 0 {
			if err := win.Lock(1); err != nil {
				return err
			}
			if err := win.Lock(1); !errors.Is(err, ErrAlreadyLocked) {
				t.Errorf("double lock: %v", err)
			}
			if err := win.Unlock(1); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLockErrors(t *testing.T) {
	err := Run(2, Config{}, func(r *Rank) error {
		win, _ := r.WinAllocate(64, nil)
		if err := win.LockWithType(LockExclusive, 9); !errors.Is(err, ErrRankRange) {
			t.Errorf("bad rank: %v", err)
		}
		r.Barrier()
		if err := win.Free(); err != nil {
			return err
		}
		if err := win.LockWithType(LockExclusive, 1); !errors.Is(err, ErrFreedWin) {
			t.Errorf("freed win: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
