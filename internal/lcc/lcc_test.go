package lcc

import (
	"math"
	"testing"

	"clampi/internal/core"
	"clampi/internal/getter"
	"clampi/internal/graph"
	"clampi/internal/mpi"
	"clampi/internal/rma"
	"clampi/internal/rmat"
	"clampi/internal/trace"
)

func testGraph(t *testing.T, scale, ef int) *graph.CSR {
	t.Helper()
	g := graph.Build(1<<scale, rmat.Generate(scale, ef, rmat.Graph500, 33))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReferenceOnKnownGraphs(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 on vertex 2.
	g := graph.Build(4, []rmat.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}})
	lcc := Reference(g)
	want := []float64{1, 1, 1.0 / 3.0, 0}
	for v, w := range want {
		if math.Abs(lcc[v]-w) > 1e-12 {
			t.Errorf("LCC(%d) = %v, want %v", v, lcc[v], w)
		}
	}
	// Complete graph K4: all coefficients 1.
	k4 := graph.Build(4, []rmat.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}})
	for v, c := range Reference(k4) {
		if math.Abs(c-1) > 1e-12 {
			t.Errorf("K4 LCC(%d) = %v", v, c)
		}
	}
	// Star graph: center has LCC 0.
	star := graph.Build(5, []rmat.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}})
	if Reference(star)[0] != 0 {
		t.Errorf("star center LCC = %v", Reference(star)[0])
	}
}

// runDistributed computes the distributed LCC sum over P ranks with the
// given getter factory and returns ΣLCC and aggregate per-rank results.
// cfg is cloned per rank; a Recorder in it would be shared across rank
// goroutines, so use runDistributedCfg for per-rank configs instead.
func runDistributed(t *testing.T, g *graph.CSR, p int, mk func(win rma.Window) (getter.Getter, error), cfg Config) (float64, []Result) {
	return runDistributedCfg(t, g, p, mk, func(int) Config { return cfg })
}

func runDistributedCfg(t *testing.T, g *graph.CSR, p int, mk func(win rma.Window) (getter.Getter, error), cfgOf func(rank int) Config) (float64, []Result) {
	t.Helper()
	sums := make([]float64, p)
	results := make([]Result, p)
	err := mpi.Run(p, mpi.Config{}, func(r *mpi.Rank) error {
		d := graph.Distribute(g, p, r.ID())
		win := r.WinCreate(d.LocalAdjBytes(), nil)
		defer win.Free()
		gt, err := mk(win)
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		res, err := Run(r.Clock(), d, gt, cfgOf(r.ID()))
		if err != nil {
			return err
		}
		if err := win.UnlockAll(); err != nil {
			return err
		}
		sums[r.ID()] = res.SumLCC
		results[r.ID()] = res
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, s := range sums {
		total += s
	}
	return total, results
}

func refSum(g *graph.CSR) float64 {
	s := 0.0
	for _, c := range Reference(g) {
		s += c
	}
	return s
}

func TestDistributedMatchesReferenceRaw(t *testing.T) {
	g := testGraph(t, 9, 8)
	want := refSum(g)
	got, results := runDistributed(t, g, 4, func(w rma.Window) (getter.Getter, error) {
		return getter.NewRaw(w), nil
	}, Config{})
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("distributed ΣLCC = %v, reference %v", got, want)
	}
	var gets int64
	for _, r := range results {
		gets += r.RemoteGets
	}
	if gets == 0 {
		t.Fatalf("no remote gets in a 4-rank run")
	}
}

func TestDistributedMatchesReferenceCached(t *testing.T) {
	g := testGraph(t, 9, 8)
	want := refSum(g)
	got, results := runDistributed(t, g, 4, func(w rma.Window) (getter.Getter, error) {
		c, err := core.New(w, core.Params{Mode: core.AlwaysCache, IndexSlots: 4096, StorageBytes: 1 << 22, Seed: 5})
		if err != nil {
			return nil, err
		}
		return getter.NewCached(c), nil
	}, Config{})
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("cached ΣLCC = %v, reference %v", got, want)
	}
	for rank, r := range results {
		if r.Vertices == 0 {
			t.Errorf("rank %d processed no vertices", rank)
		}
	}
}

func TestCachedUnderPressureStillCorrect(t *testing.T) {
	// Tiny cache: heavy eviction/failing traffic must not corrupt
	// results.
	g := testGraph(t, 9, 8)
	want := refSum(g)
	got, _ := runDistributed(t, g, 4, func(w rma.Window) (getter.Getter, error) {
		c, err := core.New(w, core.Params{Mode: core.AlwaysCache, IndexSlots: 32, StorageBytes: 4096, Seed: 5})
		if err != nil {
			return nil, err
		}
		return getter.NewCached(c), nil
	}, Config{})
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("pressured ΣLCC = %v, reference %v", got, want)
	}
}

func TestCachingReducesTime(t *testing.T) {
	// The headline claim: CLaMPI beats foMPI on LCC thanks to reuse.
	g := testGraph(t, 10, 8)
	_, rawRes := runDistributed(t, g, 4, func(w rma.Window) (getter.Getter, error) {
		return getter.NewRaw(w), nil
	}, Config{})
	_, cachedRes := runDistributed(t, g, 4, func(w rma.Window) (getter.Getter, error) {
		c, err := core.New(w, core.Params{Mode: core.AlwaysCache, IndexSlots: 1 << 16, StorageBytes: 64 << 20, Seed: 5})
		if err != nil {
			return nil, err
		}
		return getter.NewCached(c), nil
	}, Config{})
	var rawT, cachedT int64
	for i := range rawRes {
		rawT += int64(rawRes[i].Time)
		cachedT += int64(cachedRes[i].Time)
	}
	if cachedT >= rawT {
		t.Fatalf("caching did not help: cached %d vs raw %d", cachedT, rawT)
	}
	speedup := float64(rawT) / float64(cachedT)
	t.Logf("LCC speedup with ample cache: %.2fx", speedup)
	if speedup < 1.3 {
		t.Errorf("speedup %.2fx too small for a reuse-heavy R-MAT graph", speedup)
	}
}

func TestRecorderCapturesSizes(t *testing.T) {
	g := testGraph(t, 8, 8)
	recs := []*trace.Recorder{trace.NewRecorder(), trace.NewRecorder()}
	runDistributedCfg(t, g, 2, func(w rma.Window) (getter.Getter, error) {
		return getter.NewRaw(w), nil
	}, func(rank int) Config { return Config{Recorder: recs[rank]} })
	merged := trace.NewRecorder()
	for _, r := range recs {
		merged.Merge(r)
	}
	if merged.Total() == 0 {
		t.Fatalf("recorders saw no gets")
	}
	if merged.MeanSize() <= 0 {
		t.Fatalf("mean size = %v", merged.MeanSize())
	}
	// Remote get sizes are 4 bytes per neighbour: multiples of 4.
	for _, b := range merged.SizeHistogram() {
		if b.Gets > 0 && b.HiBytes < 4 {
			t.Fatalf("sub-4-byte gets recorded: %+v", b)
		}
	}
	// R-MAT reuse: far fewer distinct gets than total (Fig. 3's setup
	// has the same property).
	if merged.ReuseFactor() <= 1.2 {
		t.Errorf("reuse factor %.2f unexpectedly low", merged.ReuseFactor())
	}
}

func TestMaxVerticesCap(t *testing.T) {
	g := testGraph(t, 9, 8)
	_, results := runDistributed(t, g, 2, func(w rma.Window) (getter.Getter, error) {
		return getter.NewRaw(w), nil
	}, Config{MaxVertices: 10})
	for rank, r := range results {
		if r.Vertices != 10 {
			t.Errorf("rank %d processed %d vertices, want 10", rank, r.Vertices)
		}
	}
}

func TestTimePerVertex(t *testing.T) {
	var r Result
	if r.TimePerVertex() != 0 {
		t.Fatalf("zero result TimePerVertex = %v", r.TimePerVertex())
	}
	r.Vertices = 4
	r.Time = 400
	if r.TimePerVertex() != 100 {
		t.Fatalf("TimePerVertex = %v", r.TimePerVertex())
	}
}
