// Package lcc implements the distributed Local Clustering Coefficient
// computation of the paper's §IV-C.
//
// The graph is 1-D block-partitioned; to compute LCC(v) for an owned
// vertex v, the process fetches the adjacency list of every neighbour u —
// a one-sided get from u's owner whose size is u's degree. The same
// adjacency list is fetched once per appearance of u in an owned
// adjacency list, which is the data reuse CLaMPI exploits: the paper runs
// this kernel with the always-cache mode, since the graph is immutable.
//
// For an undirected graph, LCC(v) = Σ_{u ∈ adj(v)} |adj(v) ∩ adj(u)|
// divided by deg(v)·(deg(v)−1): every triangle edge (u,w) with
// u,w ∈ adj(v) is counted once in u's intersection and once in w's.
package lcc

import (
	"clampi/internal/getter"
	"clampi/internal/graph"
	"clampi/internal/simtime"
	"clampi/internal/trace"
)

// Config tunes a run.
type Config struct {
	// ComputePerElem is the modelled CPU cost per element touched by
	// the sorted-intersection kernel; zero selects DefaultComputeCost.
	ComputePerElem simtime.Duration
	// Recorder, if non-nil, records every remote get (Fig. 3).
	Recorder *trace.Recorder
	// MaxVertices caps the owned vertices processed (0 = all); the
	// scaled-down benchmarks use it to bound runtime.
	MaxVertices int
}

// DefaultComputeCost is the modelled per-element intersection cost
// (~a few simple ALU ops per merge step on a 2.6 GHz core).
const DefaultComputeCost = simtime.Nanosecond

// Result summarizes one rank's computation.
type Result struct {
	Vertices    int     // owned vertices processed
	SumLCC      float64 // Σ LCC(v) over processed vertices
	Wedges      int64   // Σ intersection counts (2 × triangle-edge incidences)
	Gets        int64   // total adjacency fetches (local + remote)
	RemoteGets  int64   // fetched via the window
	RemoteBytes int64
	Time        simtime.Duration // virtual time of the whole kernel
	CommTime    simtime.Duration // portion attributable to gets + flushes
}

// TimePerVertex returns the paper's Fig. 15 metric.
func (r Result) TimePerVertex() simtime.Duration {
	if r.Vertices == 0 {
		return 0
	}
	return r.Time / simtime.Duration(r.Vertices)
}

// Run computes the LCC of the vertices owned by this rank, fetching
// remote adjacency lists through gt and accounting on clock (the
// origin's clock, from rma.Endpoint.Clock()). The kernel is transport-
// agnostic: it runs identically over the simulated runtime and over a
// wire connection to clampi-serve. The caller must have opened a
// passive access epoch (LockAll) on the window behind gt.
func Run(clock *simtime.Clock, d *graph.Dist, gt getter.Getter, cfg Config) (Result, error) {
	if cfg.ComputePerElem <= 0 {
		cfg.ComputePerElem = DefaultComputeCost
	}
	start := clock.Now()
	var res Result

	hi := d.Hi
	if cfg.MaxVertices > 0 && d.Lo+cfg.MaxVertices < hi {
		hi = d.Lo + cfg.MaxVertices
	}

	// The kernel is vectorized per vertex: pass 1 collects every remote
	// neighbour of v into one batched get (letting the caching layer
	// serve hits locally and coalesce the remaining misses into merged
	// per-target messages), one Flush completes the batch, and pass 2
	// consumes the adjacency lists in the same neighbour order as the
	// scalar kernel — so counts and LCC values are bit-identical to a
	// get-flush-consume loop (paper Fig. 15).
	var buf []byte           // arena holding all remote fetches of one vertex
	var decoded []int32      // adjacency decode scratch, reused per neighbour
	var ops []getter.BatchOp // batched remote gets of one vertex
	for v := d.Lo; v < hi; v++ {
		adjV := d.G.Neighbors(v)
		deg := len(adjV)
		res.Vertices++
		if deg < 2 {
			continue
		}
		// Pass 1: size and stage the remote fetches of v.
		ops = ops[:0]
		total := 0
		for _, u := range adjV {
			if d.Owned(int(u)) {
				continue
			}
			owner, disp, size := d.RemoteLoc(int(u))
			// Dst is carved out of buf below, once total is known.
			ops = append(ops, getter.BatchOp{Target: owner, Disp: disp})
			total += size
		}
		if len(ops) > 0 {
			if cap(buf) < total {
				buf = make([]byte, total)
			}
			buf = buf[:total]
			off := 0
			k := 0
			for _, u := range adjV {
				if d.Owned(int(u)) {
					continue
				}
				_, _, size := d.RemoteLoc(int(u))
				ops[k].Dst = buf[off : off+size : off+size]
				off += size
				k++
			}
			commStart := clock.Now()
			if err := getter.GetBatch(gt, ops); err != nil {
				return res, err
			}
			if err := gt.Flush(); err != nil {
				return res, err
			}
			res.CommTime += clock.Now() - commStart
			res.RemoteGets += int64(len(ops))
			res.RemoteBytes += int64(total)
			if cfg.Recorder != nil {
				for i := range ops {
					cfg.Recorder.Record(ops[i].Target, ops[i].Disp, len(ops[i].Dst))
				}
			}
		}
		// Pass 2: consume in neighbour order, exactly like the scalar
		// kernel.
		var count int64
		var touched int64
		k := 0
		for _, u := range adjV {
			var adjU []int32
			if d.Owned(int(u)) {
				adjU = d.G.Neighbors(int(u))
			} else {
				decoded = graph.DecodeAdj(ops[k].Dst, decoded)
				adjU = decoded
				k++
			}
			count += int64(graph.IntersectSortedCount(adjV, adjU))
			touched += int64(len(adjV) + len(adjU))
			res.Gets++
		}
		clock.Advance(simtime.Duration(touched) * cfg.ComputePerElem)
		res.Wedges += count
		res.SumLCC += float64(count) / float64(deg*(deg-1))
		for i := range ops {
			ops[i].Dst = nil
		}
	}
	res.Time = clock.Now() - start
	return res, nil
}

// Reference computes LCC(v) for every vertex of g serially — the oracle
// the distributed kernel is validated against.
func Reference(g *graph.CSR) []float64 {
	out := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		adjV := g.Neighbors(v)
		deg := len(adjV)
		if deg < 2 {
			continue
		}
		var count int64
		for _, u := range adjV {
			count += int64(graph.IntersectSortedCount(adjV, g.Neighbors(int(u))))
		}
		out[v] = float64(count) / float64(deg*(deg-1))
	}
	return out
}
