package cuckoo

import (
	"testing"
	"testing/quick"
)

func TestNewMinimumSize(t *testing.T) {
	tb := New[int](1, 1)
	if tb.Cap() < 2*NumHashes {
		t.Fatalf("Cap() = %d, want >= %d", tb.Cap(), 2*NumHashes)
	}
}

func TestInsertLookupDelete(t *testing.T) {
	tb := New[string](64, 7)
	k := Key{Target: 3, Disp: 4096}
	res := tb.Insert(k, "hello")
	if !res.Placed {
		t.Fatalf("insert into empty table failed")
	}
	if len(res.Path) == 0 {
		t.Fatalf("no insertion path recorded")
	}
	v, slot, ok := tb.Lookup(k)
	if !ok || v != "hello" {
		t.Fatalf("Lookup = %q,%v", v, ok)
	}
	if gotK, gotV, used := tb.At(slot); !used || gotK != k || gotV != "hello" {
		t.Fatalf("At(%d) = %v,%q,%v", slot, gotK, gotV, used)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if v, ok := tb.Delete(k); !ok || v != "hello" {
		t.Fatalf("Delete = %q,%v", v, ok)
	}
	if _, _, ok := tb.Lookup(k); ok {
		t.Fatalf("Lookup after delete succeeded")
	}
	if _, ok := tb.Delete(k); ok {
		t.Fatalf("double delete succeeded")
	}
}

func TestUpdate(t *testing.T) {
	tb := New[int](64, 7)
	k := Key{1, 100}
	if tb.Update(k, 5) {
		t.Fatalf("Update of absent key succeeded")
	}
	tb.Insert(k, 1)
	if !tb.Update(k, 9) {
		t.Fatalf("Update failed")
	}
	if v, _, _ := tb.Lookup(k); v != 9 {
		t.Fatalf("value after update = %d", v)
	}
}

func TestDuplicateInsertPanics(t *testing.T) {
	tb := New[int](64, 7)
	tb.Insert(Key{1, 2}, 1)
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate insert did not panic")
		}
	}()
	tb.Insert(Key{1, 2}, 2)
}

func TestHighLoadFactor(t *testing.T) {
	// Fotakis et al. report ~97% utilization with p=4 given long enough
	// insertion walks. With the default walk bound, 85% must always
	// succeed; with a generous bound, 95%.
	const n = 1024
	tb := New[int](n, 42)
	inserted := 0
	for i := 0; inserted < n*85/100; i++ {
		k := Key{Target: i % 16, Disp: i * 64}
		res := tb.Insert(k, i)
		if !res.Placed {
			t.Fatalf("insert failed at load factor %.2f with default walk bound", tb.LoadFactor())
		}
		inserted++
	}
	// Everything must still be findable.
	for i := 0; i < inserted; i++ {
		k := Key{Target: i % 16, Disp: i * 64}
		if v, _, ok := tb.Lookup(k); !ok || v != i {
			t.Fatalf("Lookup(%v) = %d,%v", k, v, ok)
		}
	}

	tb2 := New[int](n, 42)
	tb2.SetMaxIterations(1024)
	for i := 0; tb2.Len() < n*95/100; i++ {
		res := tb2.Insert(Key{Target: i % 16, Disp: i * 64}, i)
		if !res.Placed {
			t.Fatalf("insert failed at load factor %.2f with 1024-step walks", tb2.LoadFactor())
		}
	}
	if tb2.Len() < n*95/100 {
		t.Fatalf("Len = %d, want >= %d", tb2.Len(), n*95/100)
	}
}

func TestInsertFailureReportsHomeless(t *testing.T) {
	// Tiny table, forced to overflow: the walk must fail and report a
	// homeless element whose candidate slots are all occupied.
	tb := New[int](8, 3)
	tb.SetMaxIterations(8)
	stored := make(map[Key]int)
	var fail InsertResult[int]
	for i := 0; ; i++ {
		k := Key{Target: 0, Disp: i * 8}
		res := tb.Insert(k, i)
		if !res.Placed {
			fail = res
			break
		}
		stored[k] = i
		if i > 100 {
			t.Fatalf("table of 8 slots never overflowed")
		}
	}
	for _, s := range fail.CandidateSlots {
		if _, _, used := tb.At(s); !used {
			t.Fatalf("candidate slot %d of homeless element is empty", s)
		}
	}
	// The homeless element is either the new key or a displaced one;
	// every *other* previously stored key must still be findable.
	for k, v := range stored {
		if k == fail.HomelessKey {
			continue
		}
		got, _, ok := tb.Lookup(k)
		if !ok || got != v {
			t.Fatalf("stored key %v lost after failed insert", k)
		}
	}
	// In both cases (homeless is the new key, or an old key displaced
	// by the new one) the table holds exactly len(stored) entries.
	if tb.Len() != len(stored) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(stored))
	}
}

func TestReplaceAtResolvesConflict(t *testing.T) {
	tb := New[int](8, 3)
	tb.SetMaxIterations(8)
	var fail InsertResult[int]
	for i := 0; ; i++ {
		res := tb.Insert(Key{0, i * 8}, i)
		if !res.Placed {
			fail = res
			break
		}
	}
	lenBefore := tb.Len()
	victimSlot := fail.CandidateSlots[0]
	evictedK, _ := tb.ReplaceAt(victimSlot, fail.HomelessKey, fail.HomelessVal)
	if tb.Len() != lenBefore {
		t.Fatalf("Len changed on replace: %d -> %d", lenBefore, tb.Len())
	}
	if v, _, ok := tb.Lookup(fail.HomelessKey); !ok || v != fail.HomelessVal {
		t.Fatalf("homeless element not findable after ReplaceAt: %d,%v", v, ok)
	}
	if _, _, ok := tb.Lookup(evictedK); ok {
		t.Fatalf("evicted key still findable")
	}
}

func TestReplaceAtInvalidSlotPanics(t *testing.T) {
	tb := New[int](64, 3)
	k := Key{5, 5}
	cands := tb.Candidates(k)
	// Find a slot that is NOT a candidate.
	bad := -1
	for s := 0; s < tb.Cap(); s++ {
		isCand := false
		for _, c := range cands {
			if c == s {
				isCand = true
			}
		}
		if !isCand {
			bad = s
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("ReplaceAt on non-candidate slot did not panic")
		}
	}()
	tb.ReplaceAt(bad, k, 0)
}

func TestReplaceAtEmptySlot(t *testing.T) {
	tb := New[int](64, 3)
	k := Key{5, 5}
	s := tb.Candidates(k)[0]
	tb.ReplaceAt(s, k, 42)
	if v, _, ok := tb.Lookup(k); !ok || v != 42 {
		t.Fatalf("Lookup after ReplaceAt on empty slot = %d,%v", v, ok)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestDeleteAt(t *testing.T) {
	tb := New[int](64, 3)
	k := Key{2, 64}
	tb.Insert(k, 7)
	_, slot, _ := tb.Lookup(k)
	gotK, gotV, ok := tb.DeleteAt(slot)
	if !ok || gotK != k || gotV != 7 {
		t.Fatalf("DeleteAt = %v,%d,%v", gotK, gotV, ok)
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if _, _, ok := tb.DeleteAt(slot); ok {
		t.Fatalf("DeleteAt on empty slot succeeded")
	}
	if _, _, ok := tb.DeleteAt(-1); ok {
		t.Fatalf("DeleteAt(-1) succeeded")
	}
	if _, _, ok := tb.DeleteAt(1 << 20); ok {
		t.Fatalf("DeleteAt(huge) succeeded")
	}
}

func TestClear(t *testing.T) {
	tb := New[int](64, 3)
	for i := 0; i < 20; i++ {
		tb.Insert(Key{0, i * 8}, i)
	}
	tb.Clear()
	if tb.Len() != 0 {
		t.Fatalf("Len after Clear = %d", tb.Len())
	}
	if _, _, ok := tb.Lookup(Key{0, 0}); ok {
		t.Fatalf("entry survived Clear")
	}
	// Table is reusable after Clear.
	if res := tb.Insert(Key{0, 0}, 1); !res.Placed {
		t.Fatalf("insert after Clear failed")
	}
}

func TestScanCircular(t *testing.T) {
	tb := New[int](16, 3)
	tb.Insert(Key{0, 0}, 1)
	tb.Insert(Key{0, 8}, 2)

	visited := 0
	tb.Scan(10, func(s int, k Key, v int, used bool) bool {
		visited++
		return true
	})
	if visited != 16 {
		t.Fatalf("full scan visited %d, want 16", visited)
	}

	// Early stop at first used slot.
	var foundVal int
	steps := 0
	tb.Scan(0, func(s int, k Key, v int, used bool) bool {
		steps++
		if used {
			foundVal = v
			return false
		}
		return true
	})
	if foundVal == 0 {
		t.Fatalf("scan never found a used slot")
	}
	if steps > 16 {
		t.Fatalf("scan overran the table: %d steps", steps)
	}

	// Negative and out-of-range starts are normalized.
	visited = 0
	tb.Scan(-5, func(int, Key, int, bool) bool { visited++; return true })
	if visited != 16 {
		t.Fatalf("negative-start scan visited %d", visited)
	}
	visited = 0
	tb.Scan(100, func(int, Key, int, bool) bool { visited++; return true })
	if visited != 16 {
		t.Fatalf("wrapped-start scan visited %d", visited)
	}
}

func TestWalkVisitsAllEntries(t *testing.T) {
	tb := New[int](128, 3)
	want := map[Key]int{}
	for i := 0; i < 50; i++ {
		k := Key{i % 4, i * 16}
		tb.Insert(k, i)
		want[k] = i
	}
	got := map[Key]int{}
	tb.Walk(func(k Key, v int) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Walk visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Walk missed %v", k)
		}
	}
	// Early stop.
	n := 0
	tb.Walk(func(Key, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Walk early stop visited %d", n)
	}
}

func TestCandidatesAreLookupPositions(t *testing.T) {
	// Property: after a successful insert, the stored slot is one of
	// the key's candidates.
	tb := New[int](256, 9)
	f := func(target uint8, disp uint16) bool {
		k := Key{int(target % 8), int(disp)}
		if _, _, ok := tb.Lookup(k); ok {
			return true // already inserted by a previous case
		}
		res := tb.Insert(k, 1)
		if !res.Placed {
			return true // table filled up; nothing to check
		}
		_, slot, ok := tb.Lookup(k)
		if !ok {
			return false
		}
		for _, c := range tb.Candidates(k) {
			if c == slot {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	t1 := New[int](64, 11)
	t2 := New[int](64, 11)
	for i := 0; i < 30; i++ {
		k := Key{0, i * 8}
		r1 := t1.Insert(k, i)
		r2 := t2.Insert(k, i)
		if r1.Placed != r2.Placed || len(r1.Path) != len(r2.Path) {
			t.Fatalf("same-seed tables diverged at insert %d", i)
		}
	}
}

func TestSetMaxIterationsIgnoresInvalid(t *testing.T) {
	tb := New[int](64, 3)
	tb.SetMaxIterations(0)
	tb.SetMaxIterations(-1)
	// Still able to insert (maxIter stayed positive).
	if res := tb.Insert(Key{0, 0}, 1); !res.Placed {
		t.Fatalf("insert failed after invalid SetMaxIterations")
	}
}

func TestKeyString(t *testing.T) {
	if (Key{2, 512}).String() != "t2+512" {
		t.Fatalf("String = %q", (Key{2, 512}).String())
	}
}

func BenchmarkLookupHit(b *testing.B) {
	tb := New[int](1<<14, 1)
	for i := 0; i < 1<<13; i++ {
		tb.Insert(Key{i % 32, i * 64}, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(Key{i % 32, (i % (1 << 13)) * 64})
	}
}

func BenchmarkInsert(b *testing.B) {
	tb := New[int](1<<20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tb.LoadFactor() > 0.5 {
			b.StopTimer()
			tb.Clear()
			b.StartTimer()
		}
		tb.Insert(Key{0, i * 8}, i)
	}
}
