package cuckoo

import "testing"

// FuzzTableOps drives the Cuckoo table with an op tape against a map
// oracle: lookups must agree with the oracle at every step, and the
// table must survive insertion failures (conflicting accesses) without
// losing unrelated keys.
func FuzzTableOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 200, 201, 100})
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, ops []byte) {
		tb := New[int](64, 5)
		oracle := make(map[Key]int)
		for i, op := range ops {
			k := Key{Target: int(op) % 4, Disp: (int(op) / 4) * 8}
			switch {
			case op%3 == 0:
				if _, present := oracle[k]; present {
					tb.Delete(k)
					delete(oracle, k)
				}
			default:
				if _, present := oracle[k]; present {
					tb.Update(k, i)
					oracle[k] = i
					continue
				}
				res := tb.Insert(k, i)
				if res.Placed {
					oracle[k] = i
				} else {
					// The homeless element (new or displaced)
					// is no longer stored.
					if res.HomelessKey == k {
						// new key failed: oracle unchanged
					} else {
						delete(oracle, res.HomelessKey)
						oracle[k] = i
					}
				}
			}
			// The table and the oracle agree.
			for k, v := range oracle {
				got, _, ok := tb.Lookup(k)
				if !ok || got != v {
					t.Fatalf("op %d: oracle has %v=%d, table has %d,%v", i, k, v, got, ok)
				}
			}
			if tb.Len() != len(oracle) {
				t.Fatalf("op %d: len %d vs oracle %d", i, tb.Len(), len(oracle))
			}
		}
	})
}
