// Package cuckoo implements the hash index used by CLaMPI to name cache
// entries (paper §III-C1).
//
// Entries are keyed by (target rank, window displacement) — the hit
// condition of §III-B1 — and stored in a Cuckoo hash table with p = 4
// universal hash functions, giving constant lookup cost (at most p probes)
// and up to ~97% space utilization (Fotakis et al.).
//
// Insertion uses the random-walk scheme: a new element is placed at one of
// its p positions, displacing any occupant, which is then re-placed at one
// of its other positions, and so on up to a maximum number of iterations.
// Where a classical Cuckoo table would re-hash on insertion failure,
// CLaMPI instead reports the failure as a *conflicting access*: the caller
// picks a victim among the homeless element's candidate slots (the tail of
// the insertion path) and completes the placement with ReplaceAt.
package cuckoo

import (
	"fmt"
	"math/rand"
)

// NumHashes is the paper's p: the number of hash functions, hence the
// number of candidate slots per key.
const NumHashes = 4

// DefaultMaxIterations bounds the random-walk displacement chain; hitting
// the bound signals a (possible) cycle in the Cuckoo graph. Random-walk
// insertion needs O(log n) steps in expectation but has a heavy tail near
// high load factors, so the bound is generous — a failed walk is not fatal
// in CLaMPI, merely a conflicting access.
const DefaultMaxIterations = 128

// Key identifies a cache entry: the paper's hit rule matches on target
// rank and displacement only (§III-B1).
type Key struct {
	Target int
	Disp   int
}

func (k Key) String() string { return fmt.Sprintf("t%d+%d", k.Target, k.Disp) }

// Table is a Cuckoo hash table mapping Keys to values of type V.
// Not safe for concurrent use: each caching layer owns one table and runs
// on its rank's goroutine.
type Table[V any] struct {
	slots   []slot[V]
	a, b    [NumHashes]uint64
	rng     *rand.Rand
	len     int
	maxIter int
	path    []int // reusable walk buffer; InsertResult.Path aliases it
}

type slot[V any] struct {
	key  Key
	val  V
	used bool
}

// New creates a table with the given number of slots (minimum 2*p) and a
// deterministic RNG seed for hash-function selection and walk randomness.
func New[V any](size int, seed int64) *Table[V] {
	if size < 2*NumHashes {
		size = 2 * NumHashes
	}
	t := &Table[V]{
		slots:   make([]slot[V], size),
		rng:     rand.New(rand.NewSource(seed)),
		maxIter: DefaultMaxIterations,
	}
	t.reseedHashes()
	return t
}

// reseedHashes draws a fresh universal hash family.
func (t *Table[V]) reseedHashes() {
	for i := 0; i < NumHashes; i++ {
		t.a[i] = t.rng.Uint64() | 1 // odd multiplier
		t.b[i] = t.rng.Uint64()
	}
}

// SetMaxIterations adjusts the displacement-walk bound (tests/ablations).
func (t *Table[V]) SetMaxIterations(n int) {
	if n > 0 {
		t.maxIter = n
	}
}

// Len returns the number of stored entries.
func (t *Table[V]) Len() int { return t.len }

// Cap returns the number of slots (the paper's |I_w|).
func (t *Table[V]) Cap() int { return len(t.slots) }

// LoadFactor returns Len/Cap.
func (t *Table[V]) LoadFactor() float64 {
	return float64(t.len) / float64(len(t.slots))
}

// mix folds a key into a 64-bit word before universal hashing.
func mix(k Key) uint64 {
	x := uint64(k.Target)*0x9E3779B97F4A7C15 ^ uint64(uint(k.Disp))
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x
}

// hash returns the i-th candidate slot of key. The product's high half is
// used (multiply-shift) so every bit of x influences the slot; reducing
// the low half modulo the table size would make keys that agree modulo the
// size collide under *all* hash functions at once.
func (t *Table[V]) hash(i int, k Key) int {
	x := mix(k)
	return int(((t.a[i]*x + t.b[i]) >> 32) % uint64(len(t.slots)))
}

// Candidates returns the p candidate slot indices of key. Slots may
// repeat if hash functions collide.
func (t *Table[V]) Candidates(k Key) [NumHashes]int {
	var c [NumHashes]int
	for i := 0; i < NumHashes; i++ {
		c[i] = t.hash(i, k)
	}
	return c
}

// Lookup returns the value stored for key and the slot holding it.
func (t *Table[V]) Lookup(k Key) (val V, slotIdx int, ok bool) {
	for i := 0; i < NumHashes; i++ {
		s := t.hash(i, k)
		if t.slots[s].used && t.slots[s].key == k {
			return t.slots[s].val, s, true
		}
	}
	var zero V
	return zero, -1, false
}

// Update overwrites the value stored for key; it returns false if the key
// is absent.
func (t *Table[V]) Update(k Key, v V) bool {
	for i := 0; i < NumHashes; i++ {
		s := t.hash(i, k)
		if t.slots[s].used && t.slots[s].key == k {
			t.slots[s].val = v
			return true
		}
	}
	return false
}

// InsertResult reports the outcome of an Insert.
type InsertResult[V any] struct {
	// Placed is true if every element found a slot. If false, the
	// caller must resolve the conflict via ReplaceAt or drop the
	// homeless element.
	Placed bool
	// Path is the sequence of slot indices visited by the displacement
	// walk (the paper's insertion path). It aliases a per-table scratch
	// buffer and is only valid until the next Insert on the table.
	Path []int
	// HomelessKey/HomelessVal identify the element left without a slot
	// after a failed walk. It is not necessarily the key passed to
	// Insert: displacements may leave a previously stored element
	// homeless instead.
	HomelessKey Key
	HomelessVal V
	// CandidateSlots are the homeless element's p hash positions — the
	// valid homes among which a conflict victim must be chosen. Only
	// meaningful when Placed is false.
	CandidateSlots [NumHashes]int
}

// Insert places key/val using the random-walk scheme. The key must not
// already be present (callers Lookup first; a duplicate insert panics, as
// it would corrupt the structure).
func (t *Table[V]) Insert(k Key, v V) InsertResult[V] {
	if _, _, ok := t.Lookup(k); ok {
		panic(fmt.Sprintf("cuckoo: duplicate insert of %v", k))
	}
	res := InsertResult[V]{Path: t.path[:0]}
	curKey, curVal := k, v
	// The hash-function index whose slot currently holds the walking
	// element; -1 means unconstrained (first placement).
	avoid := -1
	for iter := 0; iter < t.maxIter; iter++ {
		// Pick a random hash index, avoiding the position the
		// element was just displaced from.
		i := t.rng.Intn(NumHashes)
		if i == avoid {
			i = (i + 1 + t.rng.Intn(NumHashes-1)) % NumHashes
		}
		s := t.hash(i, curKey)
		res.Path = append(res.Path, s)
		if !t.slots[s].used {
			t.slots[s] = slot[V]{key: curKey, val: curVal, used: true}
			t.len++
			res.Placed = true
			t.path = res.Path[:0]
			return res
		}
		// Displace the occupant and walk on with it.
		t.slots[s].key, curKey = curKey, t.slots[s].key
		t.slots[s].val, curVal = curVal, t.slots[s].val
		// The displaced element sat in slot s; find which of its
		// hash indices maps there so the next step avoids it.
		avoid = -1
		for j := 0; j < NumHashes; j++ {
			if t.hash(j, curKey) == s {
				avoid = j
				break
			}
		}
	}
	// Walk exhausted: curKey/curVal is homeless. Its candidate slots
	// are all occupied (otherwise the walk would have placed it).
	res.HomelessKey, res.HomelessVal = curKey, curVal
	res.CandidateSlots = t.Candidates(curKey)
	t.path = res.Path[:0]
	// The element that started the walk is now stored (unless the walk
	// never displaced anyone, i.e. curKey == k after 0 swaps — then
	// nothing was stored). Either way t.len reflects stored entries:
	// every swap kept the count unchanged, and no empty slot was
	// filled, so len is unchanged; the homeless element is simply not
	// stored yet.
	return res
}

// ReplaceAt evicts the entry in slotIdx and stores key/val there. The
// slot must be one of key's candidate positions; otherwise lookups for
// key would fail, so ReplaceAt panics. It returns the evicted key/value.
func (t *Table[V]) ReplaceAt(slotIdx int, k Key, v V) (Key, V) {
	valid := false
	for i := 0; i < NumHashes; i++ {
		if t.hash(i, k) == slotIdx {
			valid = true
			break
		}
	}
	if !valid {
		panic(fmt.Sprintf("cuckoo: slot %d is not a candidate of %v", slotIdx, k))
	}
	if !t.slots[slotIdx].used {
		t.slots[slotIdx] = slot[V]{key: k, val: v, used: true}
		t.len++
		var zero V
		return Key{}, zero
	}
	ek, ev := t.slots[slotIdx].key, t.slots[slotIdx].val
	t.slots[slotIdx] = slot[V]{key: k, val: v, used: true}
	return ek, ev
}

// At returns the occupant of slotIdx.
func (t *Table[V]) At(slotIdx int) (Key, V, bool) {
	if slotIdx < 0 || slotIdx >= len(t.slots) {
		var zero V
		return Key{}, zero, false
	}
	s := t.slots[slotIdx]
	return s.key, s.val, s.used
}

// Delete removes key, returning its value.
func (t *Table[V]) Delete(k Key) (V, bool) {
	for i := 0; i < NumHashes; i++ {
		s := t.hash(i, k)
		if t.slots[s].used && t.slots[s].key == k {
			v := t.slots[s].val
			t.slots[s] = slot[V]{}
			t.len--
			return v, true
		}
	}
	var zero V
	return zero, false
}

// DeleteAt clears slotIdx, returning the evicted entry.
func (t *Table[V]) DeleteAt(slotIdx int) (Key, V, bool) {
	if slotIdx < 0 || slotIdx >= len(t.slots) || !t.slots[slotIdx].used {
		var zero V
		return Key{}, zero, false
	}
	k, v := t.slots[slotIdx].key, t.slots[slotIdx].val
	t.slots[slotIdx] = slot[V]{}
	t.len--
	return k, v, true
}

// Clear drops all entries, keeping the hash functions and capacity.
func (t *Table[V]) Clear() {
	for i := range t.slots {
		t.slots[i] = slot[V]{}
	}
	t.len = 0
}

// Scan visits slots circularly starting at start, calling visit with the
// slot index and occupancy. The visitor returns false to stop. Scan wraps
// at most once around the table. It implements the eviction-procedure
// sampling of §III-D: the caller counts visited/non-empty slots itself.
func (t *Table[V]) Scan(start int, visit func(slotIdx int, k Key, v V, used bool) bool) {
	n := len(t.slots)
	if n == 0 {
		return
	}
	start %= n
	if start < 0 {
		start += n
	}
	for i := 0; i < n; i++ {
		s := (start + i) % n
		sl := t.slots[s]
		if !visit(s, sl.key, sl.val, sl.used) {
			return
		}
	}
}

// RandomSlot returns a uniformly random slot index (the random sample
// start of §III-D).
func (t *Table[V]) RandomSlot() int { return t.rng.Intn(len(t.slots)) }

// Walk visits every stored entry in slot order.
func (t *Table[V]) Walk(visit func(k Key, v V) bool) {
	for _, s := range t.slots {
		if s.used && !visit(s.key, s.val) {
			return
		}
	}
}
