package cuckoo

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardedBasic covers the single-writer surface: insert, lookup,
// update, delete, len accounting, shard routing.
func TestShardedBasic(t *testing.T) {
	idx := NewSharded[*int](8, 64, 1)
	if idx.ShardCount() != 8 {
		t.Fatalf("ShardCount = %d, want 8", idx.ShardCount())
	}
	if idx.Cap() != 8*64 {
		t.Fatalf("Cap = %d, want %d", idx.Cap(), 8*64)
	}
	const n = 300
	vals := make([]int, n)
	for i := 0; i < n; i++ {
		vals[i] = i * 10
		k := Key{Target: i % 7, Disp: i * 64}
		out := idx.Insert(k, &vals[i])
		if !out.Placed {
			// Conflicts are legal under load; resolve like the cache does.
			ek, _, _ := idx.ReplaceAt(out.Shard, out.CandidateSlots[0], out.HomelessKey, out.HomelessVal)
			t.Logf("conflict at %d: evicted %v", i, ek)
		}
	}
	found := 0
	for i := 0; i < n; i++ {
		k := Key{Target: i % 7, Disp: i * 64}
		if v, ok := idx.Lookup(k); ok {
			if *v != i*10 {
				t.Fatalf("Lookup(%v) = %d, want %d", k, *v, i*10)
			}
			found++
		}
	}
	if found < n-NumHashes {
		t.Fatalf("found %d of %d (too many lost to conflicts)", found, n)
	}
	if idx.Len() != found {
		t.Fatalf("Len = %d, found = %d", idx.Len(), found)
	}

	// Update in place.
	k := Key{Target: 0, Disp: 0}
	nv := 999
	out := idx.Insert(k, &nv)
	if !out.Placed || !out.Updated {
		t.Fatalf("re-insert: Placed=%v Updated=%v, want true/true", out.Placed, out.Updated)
	}
	if v, ok := idx.Lookup(k); !ok || *v != 999 {
		t.Fatalf("after update: %v %v", v, ok)
	}

	// Delete.
	if _, ok := idx.Delete(k); !ok {
		t.Fatal("Delete missed a present key")
	}
	if _, ok := idx.Lookup(k); ok {
		t.Fatal("Lookup found a deleted key")
	}

	// ShardOf is stable and in range.
	for i := 0; i < 1000; i++ {
		s := idx.ShardOf(Key{Target: i, Disp: i * 3})
		if s < 0 || s >= idx.ShardCount() {
			t.Fatalf("ShardOf out of range: %d", s)
		}
	}
}

// TestShardedPowerOfTwoRounding proves shard counts round up to a power
// of two and a single shard degenerates cleanly.
func TestShardedPowerOfTwoRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {1000, 1024},
	} {
		idx := NewSharded[*int](c.in, 16, 7)
		if idx.ShardCount() != c.want {
			t.Errorf("NewSharded(%d) shards = %d, want %d", c.in, idx.ShardCount(), c.want)
		}
	}
	one := NewSharded[*int](1, 16, 7)
	v := 5
	one.Insert(Key{Target: 3, Disp: 128}, &v)
	if got, ok := one.Lookup(Key{Target: 3, Disp: 128}); !ok || *got != 5 {
		t.Fatalf("single-shard lookup: %v %v", got, ok)
	}
	if one.ShardOf(Key{Target: 1 << 20, Disp: 1 << 30}) != 0 {
		t.Fatal("single shard must route everything to shard 0")
	}
}

// TestShardedClear proves ClearShard reports each dropped pair exactly
// once and empties the shard.
func TestShardedClear(t *testing.T) {
	idx := NewSharded[*int](4, 32, 3)
	vals := make([]int, 64)
	for i := range vals {
		vals[i] = i
		idx.Insert(Key{Target: i, Disp: 0}, &vals[i])
	}
	dropped := make(map[Key]int)
	idx.Clear(func(k Key, v *int) { dropped[k]++ })
	if idx.Len() != 0 {
		t.Fatalf("Len after Clear = %d", idx.Len())
	}
	for k, n := range dropped {
		if n != 1 {
			t.Fatalf("key %v dropped %d times", k, n)
		}
	}
	if len(dropped) == 0 {
		t.Fatal("Clear dropped nothing")
	}
	for i := range vals {
		if _, ok := idx.Lookup(Key{Target: i, Disp: 0}); ok {
			t.Fatalf("key %d survived Clear", i)
		}
	}
}

// TestShardedTornReadRetry deterministically forces the seqlock retry
// path: a writer holds shard s's write section open (version odd) while
// a reader looks up a key in that shard. The reader must not return
// until the section closes, must return the correct value, and the
// retry counter must advance.
func TestShardedTornReadRetry(t *testing.T) {
	idx := NewSharded[*int](2, 32, 11)
	v := 42
	k := Key{Target: 1, Disp: 64}
	idx.Insert(k, &v)
	si := idx.ShardOf(k)

	before := idx.Retries()
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan int)

	go func() {
		idx.HoldWriteSection(si, func() {
			close(entered)
			<-release
		})
	}()
	<-entered

	go func() {
		got, ok := idx.Lookup(k)
		if !ok {
			done <- -1
			return
		}
		done <- *got
	}()

	// The reader must be spinning on the odd version now; give it time
	// to accumulate retries, then release the writer.
	for idx.RetriesShard(si) == before {
		runtime.Gosched()
	}
	select {
	case got := <-done:
		t.Fatalf("Lookup returned %d while the write section was open", got)
	default:
	}
	close(release)
	if got := <-done; got != 42 {
		t.Fatalf("Lookup after retry = %d, want 42", got)
	}
	if idx.Retries() == before {
		t.Fatal("retry counter did not advance")
	}
}

// TestShardedReadsNonBlocking is the structural lock-freedom proof for
// single-core hosts: with every shard's writer mutex held, lookups must
// still complete. If the read path acquired any mutex this test would
// deadlock (and fail by timeout).
func TestShardedReadsNonBlocking(t *testing.T) {
	idx := NewSharded[*int](8, 64, 5)
	vals := make([]int, 128)
	for i := range vals {
		vals[i] = i
		idx.Insert(Key{Target: i, Disp: 0}, &vals[i])
	}
	completed := int64(0)
	idx.WithWritersLocked(func() {
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 128; i++ {
					if v, ok := idx.Lookup(Key{Target: i, Disp: 0}); ok && *v == i {
						atomic.AddInt64(&completed, 1)
					}
				}
			}(g)
		}
		wg.Wait()
	})
	if completed != 4*128 {
		t.Fatalf("completed %d lookups under writer locks, want %d", completed, 4*128)
	}
}

// TestShardedConcurrentChurn hammers one Sharded index from many
// goroutines: writers continuously delete and re-insert (forcing
// displacement walks), readers verify that every successful lookup
// returns the exact value bound to its key — never a torn or
// cross-wired one. Run with -race.
func TestShardedConcurrentChurn(t *testing.T) {
	idx := NewSharded[*int](4, 32, 17)
	const keys = 48
	vals := make([]int, keys)
	mk := func(i int) Key { return Key{Target: i, Disp: i * CacheLineProbe} }
	for i := 0; i < keys; i++ {
		vals[i] = i * 7
		out := idx.Insert(mk(i), &vals[i])
		if !out.Placed {
			idx.ReplaceAt(out.Shard, out.CandidateSlots[0], out.HomelessKey, out.HomelessVal)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Two writers churn disjoint key halves.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				i := w*(keys/2) + n%(keys/2)
				idx.Delete(mk(i))
				out := idx.Insert(mk(i), &vals[i])
				if !out.Placed {
					idx.ReplaceAt(out.Shard, out.CandidateSlots[0], out.HomelessKey, out.HomelessVal)
				}
			}
		}(w)
	}
	// Four readers assert value integrity.
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 20000; n++ {
				i := n % keys
				if v, ok := idx.Lookup(mk(i)); ok && *v != i*7 {
					errs <- fmt.Errorf("key %d returned %d, want %d", i, *v, i*7)
					return
				}
			}
			errs <- nil
		}()
	}
	for r := 0; r < 4; r++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// CacheLineProbe spaces test displacements a cache line apart, matching
// how the caching layer addresses entries.
const CacheLineProbe = 64

// TestShardedVsTableAgreement drives the same insert/delete/lookup
// sequence through a Sharded index and a per-shard set of plain maps,
// proving the sharded structure loses nothing beyond declared conflicts.
func TestShardedVsTableAgreement(t *testing.T) {
	idx := NewSharded[*int](4, 64, 23)
	model := make(map[Key]*int)
	vals := make([]int, 500)
	for i := range vals {
		vals[i] = i
		k := Key{Target: i % 13, Disp: (i / 13) * 64}
		out := idx.Insert(k, &vals[i])
		if out.Placed {
			model[k] = &vals[i]
		} else {
			// A failed walk still stored the inserted key unless the
			// homeless element is the key itself (zero displacements).
			if out.HomelessKey != k {
				model[k] = &vals[i]
			}
			ek, _, had := idx.ReplaceAt(out.Shard, out.CandidateSlots[0], out.HomelessKey, out.HomelessVal)
			model[out.HomelessKey] = out.HomelessVal
			if had {
				delete(model, ek)
			}
		}
	}
	for k, want := range model {
		got, ok := idx.Lookup(k)
		if !ok || got != want {
			t.Fatalf("Lookup(%v) = %v,%v want %v", k, got, ok, want)
		}
	}
	if idx.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", idx.Len(), len(model))
	}
	// Delete half through the model.
	n := 0
	for k := range model {
		if n%2 == 0 {
			if _, ok := idx.Delete(k); !ok {
				t.Fatalf("Delete(%v) missed", k)
			}
			delete(model, k)
		}
		n++
	}
	for k, want := range model {
		if got, ok := idx.Lookup(k); !ok || got != want {
			t.Fatalf("post-delete Lookup(%v) = %v,%v", k, got, ok)
		}
	}
	if idx.Len() != len(model) {
		t.Fatalf("post-delete Len = %d, model %d", idx.Len(), len(model))
	}
}
