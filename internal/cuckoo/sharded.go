// Sharded is the scale-out variant of Table: the index is split into
// independently locked power-of-two segments (shards), and lookups are
// lock-free — a reader never takes a mutex, it validates a per-shard
// seqlock version instead and retries on a torn read.
//
// Concurrency model (DESIGN.md §12):
//
//   - Every slot is an atomic.Pointer to an immutable box (key, value).
//     A box is fully initialized before it is published into a slot, so
//     a reader that loads a non-nil box may dereference it freely: the
//     atomic store/load pair is the happens-before edge.
//   - Structural mutations (insertion walks that displace boxes between
//     slots, deletes, clears) run under the shard's writer mutex with
//     the shard's seqlock version held odd. A reader that observes an
//     odd version, or a version change across its probe sequence,
//     retries: a displacement walk in progress can make a present key
//     momentarily invisible (moved from a not-yet-probed slot into an
//     already-probed one), and the retry converts that torn read into a
//     consistent one instead of a false miss.
//   - Value memory reclamation is the caller's problem — boxes are
//     garbage collected, but the payload a value points at may be
//     recycled only after a grace period (internal/core reuses the
//     epoch-deferred entry recycling of the per-rank cache; see
//     core/shared.go).
//
// Writer-side bookkeeping (the walk RNG) is guarded by the write
// section and annotated // clampi:seqlock; the seqlockcheck analyzer
// enforces that it is only touched between beginWrite and endWrite.
package cuckoo

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// box is one published (key, value) pair. Boxes are immutable after
// publication: a displacement walk moves box pointers between slots, it
// never mutates a box in place.
type box[V any] struct {
	key Key
	val V
}

// shard is one independently locked segment of a Sharded index.
type shard[V any] struct {
	mu    sync.Mutex    // clampi:lockrank cuckoo — writer lock: at most one mutator per shard
	seq   atomic.Uint64 // clampi:atomic — seqlock version, odd while a write section is open
	len   atomic.Int64  // clampi:atomic — published entries in this shard
	retry atomic.Uint64 // clampi:atomic — lookups that retried on a torn read

	slots []atomic.Pointer[box[V]]
	a, b  [NumHashes]uint64 // universal hash family; immutable after construction

	rng *rand.Rand // clampi:seqlock — walk randomness, writer-only

	_ [64]byte // pad shards apart to keep writer state off readers' lines
}

// beginWrite opens the shard's write section: writer mutex held, seqlock
// version odd. Readers observing the odd version back off and retry.
func (s *shard[V]) beginWrite() {
	s.mu.Lock()
	s.seq.Add(1)
}

// endWrite closes the write section, making the version even again.
func (s *shard[V]) endWrite() {
	s.seq.Add(1)
	s.mu.Unlock()
}

// readBegin returns an even version snapshot, spinning past in-progress
// write sections. ok is false when the shard is mid-write and the caller
// should yield before retrying.
func (s *shard[V]) readBegin() (v uint64, ok bool) {
	v = s.seq.Load()
	return v, v&1 == 0
}

// readValid reports whether the snapshot v is still current — no write
// section opened since readBegin returned it.
func (s *shard[V]) readValid(v uint64) bool {
	return s.seq.Load() == v
}

func (s *shard[V]) hash(i int, x uint64) int {
	return int(((s.a[i]*x + s.b[i]) >> 32) % uint64(len(s.slots)))
}

// Sharded is a concurrently readable Cuckoo index: one writer per shard,
// any number of lock-free readers. The value type V should be a pointer
// (values are republished by immutable boxes on every move).
type Sharded[V any] struct {
	shards     []shard[V]
	shardShift uint // shardOf uses the top bits of the mixed key
	maxIter    int
}

// NewSharded creates an index with shardCount segments (rounded up to a
// power of two, minimum 1) of slotsPerShard slots each (minimum 2*p).
// seed makes hash families and walk randomness deterministic; each shard
// draws an independent family.
func NewSharded[V any](shardCount, slotsPerShard int, seed int64) *Sharded[V] {
	if shardCount < 1 {
		shardCount = 1
	}
	if shardCount&(shardCount-1) != 0 {
		shardCount = 1 << bits.Len(uint(shardCount))
	}
	if slotsPerShard < 2*NumHashes {
		slotsPerShard = 2 * NumHashes
	}
	t := &Sharded[V]{
		shards:     make([]shard[V], shardCount),
		shardShift: 64 - uint(bits.TrailingZeros(uint(shardCount))),
		maxIter:    DefaultMaxIterations,
	}
	if shardCount == 1 {
		t.shardShift = 64 // mix(k)>>64 is invalid; special-cased in shardOf
	}
	for i := range t.shards {
		s := &t.shards[i]
		s.slots = make([]atomic.Pointer[box[V]], slotsPerShard)
		// Construction runs under the write section too: nothing can
		// observe the shard yet, but the uniform shape lets seqlockcheck
		// prove the walk RNG is never touched outside one.
		s.beginWrite()
		s.rng = rand.New(rand.NewSource(seed + int64(i)))
		for j := 0; j < NumHashes; j++ {
			s.a[j] = s.rng.Uint64() | 1
			s.b[j] = s.rng.Uint64()
		}
		s.endWrite()
	}
	return t
}

// ShardCount returns the number of segments.
func (t *Sharded[V]) ShardCount() int { return len(t.shards) }

// SlotsPerShard returns the slot count of each segment.
func (t *Sharded[V]) SlotsPerShard() int { return len(t.shards[0].slots) }

// Cap returns the total slot count (the |I_w| of the sharded index).
func (t *Sharded[V]) Cap() int { return len(t.shards) * len(t.shards[0].slots) }

// ShardOf returns the segment index key k maps to. The shard selector
// uses the top bits of the mixed key while the in-shard hash functions
// consume the low half through the multiply-shift family, so shard and
// slot choice stay decorrelated.
func (t *Sharded[V]) ShardOf(k Key) int {
	if len(t.shards) == 1 {
		return 0
	}
	return int(mix(k) >> t.shardShift)
}

// Len returns the number of published entries across all shards.
func (t *Sharded[V]) Len() int {
	n := int64(0)
	for i := range t.shards {
		n += t.shards[i].len.Load()
	}
	return int(n)
}

// LenShard returns the number of published entries in one shard.
func (t *Sharded[V]) LenShard(i int) int { return int(t.shards[i].len.Load()) }

// Retries returns the total number of seqlock retries taken by lookups
// since creation (torn reads converted into consistent ones).
func (t *Sharded[V]) Retries() uint64 {
	n := uint64(0)
	for i := range t.shards {
		n += t.shards[i].retry.Load()
	}
	return n
}

// RetriesShard returns one shard's seqlock-retry counter.
func (t *Sharded[V]) RetriesShard(i int) uint64 { return t.shards[i].retry.Load() }

// Lookup returns the value published for key. It is lock-free: the probe
// sequence runs against atomically loaded slots and is validated against
// the shard's seqlock version; on a torn read (version moved, or a write
// section in progress) it retries.
func (t *Sharded[V]) Lookup(k Key) (V, bool) {
	x := mix(k)
	s := &t.shards[t.ShardOf(k)]
	for {
		v1, even := s.readBegin()
		if even {
			for i := 0; i < NumHashes; i++ {
				if b := s.slots[s.hash(i, x)].Load(); b != nil && b.key == k {
					val := b.val
					if s.readValid(v1) {
						return val, true
					}
					goto torn
				}
			}
			// A miss must be validated too: a displacement walk may have
			// moved the key into a slot probed before the walk touched it.
			if s.readValid(v1) {
				var zero V
				return zero, false
			}
		}
	torn:
		s.retry.Add(1)
		runtime.Gosched()
	}
}

// InsertOutcome reports the result of a Sharded insert.
type InsertOutcome[V any] struct {
	// Placed is true when every element found a slot (including the
	// Updated case). When false the caller resolves the conflict via
	// ReplaceAt on one of CandidateSlots, or drops the homeless element.
	Placed bool
	// Updated is true when key was already present and its value was
	// republished in place (no structural change).
	Updated bool
	// Shard is the segment the key maps to; CandidateSlots are indices
	// within that shard.
	Shard int
	// HomelessKey/HomelessVal identify the element left without a slot
	// after a failed walk (not necessarily the inserted key).
	HomelessKey Key
	HomelessVal V
	// CandidateSlots are the homeless element's hash positions, only
	// meaningful when Placed is false.
	CandidateSlots [NumHashes]int
}

// Insert publishes key/val using the random-walk scheme, under the
// shard's write section. If the key is already present its box is
// replaced in place (Updated). A failed walk reports the homeless
// element and its candidate slots, exactly like Table.Insert.
func (t *Sharded[V]) Insert(k Key, v V) InsertOutcome[V] {
	si := t.ShardOf(k)
	s := &t.shards[si]
	out := InsertOutcome[V]{Shard: si}
	x := mix(k)

	s.beginWrite()
	defer s.endWrite()

	// In-place update: republish the box, no displacement needed.
	for i := 0; i < NumHashes; i++ {
		slot := s.hash(i, x)
		if b := s.slots[slot].Load(); b != nil && b.key == k {
			s.slots[slot].Store(&box[V]{key: k, val: v})
			out.Placed = true
			out.Updated = true
			return out
		}
	}

	cur := &box[V]{key: k, val: v}
	avoid := -1
	for iter := 0; iter < t.maxIter; iter++ {
		i := s.rng.Intn(NumHashes)
		if i == avoid {
			i = (i + 1 + s.rng.Intn(NumHashes-1)) % NumHashes
		}
		slot := s.hash(i, mix(cur.key))
		occ := s.slots[slot].Load()
		s.slots[slot].Store(cur)
		if occ == nil {
			s.len.Add(1)
			out.Placed = true
			return out
		}
		// Walk on with the displaced box; remember which hash position
		// it just vacated so the next step avoids re-placing it there.
		displacedFrom := slot
		cur = occ
		avoid = -1
		cx := mix(cur.key)
		for j := 0; j < NumHashes; j++ {
			if s.hash(j, cx) == displacedFrom {
				avoid = j
				break
			}
		}
	}
	out.HomelessKey = cur.key
	out.HomelessVal = cur.val
	cx := mix(cur.key)
	for j := 0; j < NumHashes; j++ {
		out.CandidateSlots[j] = s.hash(j, cx)
	}
	return out
}

// ReplaceAt evicts the occupant of (shardIdx, slotIdx) and publishes
// key/val there. The slot must be one of key's candidate positions in
// its own shard. It returns the evicted pair (ok false when the slot was
// empty).
func (t *Sharded[V]) ReplaceAt(shardIdx, slotIdx int, k Key, v V) (Key, V, bool) {
	if shardIdx != t.ShardOf(k) {
		panic(fmt.Sprintf("cuckoo: shard %d is not the home of %v", shardIdx, k))
	}
	s := &t.shards[shardIdx]
	x := mix(k)
	valid := false
	for i := 0; i < NumHashes; i++ {
		if s.hash(i, x) == slotIdx {
			valid = true
			break
		}
	}
	if !valid {
		panic(fmt.Sprintf("cuckoo: slot %d is not a candidate of %v", slotIdx, k))
	}
	s.beginWrite()
	defer s.endWrite()
	occ := s.slots[slotIdx].Load()
	s.slots[slotIdx].Store(&box[V]{key: k, val: v})
	if occ == nil {
		s.len.Add(1)
		var zero V
		return Key{}, zero, false
	}
	return occ.key, occ.val, true
}

// Delete unpublishes key, returning its value.
func (t *Sharded[V]) Delete(k Key) (V, bool) {
	s := &t.shards[t.ShardOf(k)]
	x := mix(k)
	s.beginWrite()
	defer s.endWrite()
	for i := 0; i < NumHashes; i++ {
		slot := s.hash(i, x)
		if b := s.slots[slot].Load(); b != nil && b.key == k {
			s.slots[slot].Store(nil)
			s.len.Add(-1)
			return b.val, true
		}
	}
	var zero V
	return zero, false
}

// At returns the current occupant of (shardIdx, slotIdx) via one atomic
// load. Like any unvalidated read it is a snapshot: eviction scans use
// it, and their victim choice is revalidated under the write lock.
func (t *Sharded[V]) At(shardIdx, slotIdx int) (Key, V, bool) {
	s := &t.shards[shardIdx]
	if slotIdx < 0 || slotIdx >= len(s.slots) {
		var zero V
		return Key{}, zero, false
	}
	if b := s.slots[slotIdx].Load(); b != nil {
		return b.key, b.val, true
	}
	var zero V
	return Key{}, zero, false
}

// ScanShard visits the shard's slots circularly starting at start,
// loading each atomically. The visitor returns false to stop. The scan
// is a consistent-enough sample for victim selection (§III-D): it never
// tears a box, but concurrent writers may publish or unpublish slots
// while it runs.
func (t *Sharded[V]) ScanShard(shardIdx, start int, visit func(slotIdx int, k Key, v V, used bool) bool) {
	s := &t.shards[shardIdx]
	n := len(s.slots)
	start %= n
	if start < 0 {
		start += n
	}
	for i := 0; i < n; i++ {
		slot := (start + i) % n
		b := s.slots[slot].Load()
		if b != nil {
			if !visit(slot, b.key, b.val, true) {
				return
			}
		} else {
			var zero V
			if !visit(slot, Key{}, zero, false) {
				return
			}
		}
	}
}

// ClearShard unpublishes every entry of one shard under its write
// section, invoking drop (if non-nil) for each removed pair — the hook
// the caller uses to queue value memory for deferred reclamation.
func (t *Sharded[V]) ClearShard(shardIdx int, drop func(k Key, v V)) {
	s := &t.shards[shardIdx]
	s.beginWrite()
	defer s.endWrite()
	for i := range s.slots {
		if b := s.slots[i].Load(); b != nil {
			if drop != nil {
				drop(b.key, b.val)
			}
			s.slots[i].Store(nil)
		}
	}
	s.len.Store(0)
}

// Clear unpublishes every entry, shard by shard.
func (t *Sharded[V]) Clear(drop func(k Key, v V)) {
	for i := range t.shards {
		t.ClearShard(i, drop)
	}
}

// WithShardLocked runs fn while holding the shard's writer mutex with
// the seqlock version even: readers keep proceeding, but no mutation can
// start. Composite read-modify-write sequences (victim selection plus
// eviction) run under it.
func (t *Sharded[V]) WithShardLocked(shardIdx int, fn func()) {
	s := &t.shards[shardIdx]
	s.mu.Lock()
	defer s.mu.Unlock()
	fn()
}

// WithWritersLocked runs fn while holding every shard's writer mutex
// (versions stay even). While fn runs, no insert, delete or clear can
// proceed anywhere in the index — but lookups still can, which is the
// structural proof that the read path never takes a mutex (used by the
// scale tests and on single-core hosts where a parallel speedup cannot
// be demonstrated).
func (t *Sharded[V]) WithWritersLocked(fn func()) {
	for i := range t.shards {
		t.shards[i].mu.Lock()
	}
	defer func() {
		for i := range t.shards {
			t.shards[i].mu.Unlock()
		}
	}()
	fn()
}

// HoldWriteSection opens the shard's write section, calls fn, and closes
// it — a fault-injection hook that deterministically forces concurrent
// lookups onto the retry path (the version is odd for fn's whole
// duration). Torn-read oracle tests at this layer and in internal/core
// use it; production code has no reason to.
func (t *Sharded[V]) HoldWriteSection(shardIdx int, fn func()) {
	s := &t.shards[shardIdx]
	s.beginWrite()
	fn()
	s.endWrite()
}
