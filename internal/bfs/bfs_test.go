package bfs

import (
	"testing"

	"clampi/internal/core"
	"clampi/internal/getter"
	"clampi/internal/graph"
	"clampi/internal/mpi"
	"clampi/internal/rma"
	"clampi/internal/rmat"
)

func testGraph(t *testing.T, scale, ef int) *graph.CSR {
	t.Helper()
	g := graph.Build(1<<scale, rmat.Generate(scale, ef, rmat.Graph500, 77))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// runDistributed executes BFS over p ranks and returns the combined
// levels array plus the per-rank results.
func runDistributed(t *testing.T, g *graph.CSR, p, source int, mk func(win rma.Window) (getter.Getter, error)) ([]int32, []Result) {
	t.Helper()
	levels := make([]int32, g.N)
	results := make([]Result, p)
	err := mpi.Run(p, mpi.Config{}, func(r *mpi.Rank) error {
		d := graph.Distribute(g, p, r.ID())
		frontier := make([]byte, d.Hi-d.Lo)
		win := r.WinCreate(frontier, nil)
		defer win.Free()
		gt, err := mk(win)
		if err != nil {
			return err
		}
		res, err := Run(r, d, win, frontier, gt, Config{Source: source})
		if err != nil {
			return err
		}
		copy(levels[d.Lo:d.Hi], res.Levels)
		results[r.ID()] = res
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return levels, results
}

func rawFactory(win rma.Window) (getter.Getter, error) { return getter.NewRaw(win), nil }

func cachedFactory(win rma.Window) (getter.Getter, error) {
	c, err := core.New(win, core.Params{Mode: core.AlwaysCache, IndexSlots: 1 << 14, StorageBytes: 1 << 20, Seed: 9})
	if err != nil {
		return nil, err
	}
	return getter.NewCached(c), nil
}

func TestReferenceBFS(t *testing.T) {
	// Path graph 0-1-2-3 plus isolated 4.
	g := graph.Build(5, []rmat.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	levels := Reference(g, 0)
	want := []int32{0, 1, 2, 3, Unreached}
	for v, w := range want {
		if levels[v] != w {
			t.Errorf("level(%d) = %d, want %d", v, levels[v], w)
		}
	}
	// Out-of-range source: all unreached.
	for _, l := range Reference(g, -1) {
		if l != Unreached {
			t.Fatalf("bad-source BFS reached a vertex")
		}
	}
}

func TestDistributedMatchesReference(t *testing.T) {
	g := testGraph(t, 9, 8)
	want := Reference(g, 3)
	for _, mk := range []func(rma.Window) (getter.Getter, error){rawFactory, cachedFactory} {
		got, results := runDistributed(t, g, 4, 3, mk)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("level(%d) = %d, want %d", v, got[v], want[v])
			}
		}
		var remote int64
		for _, r := range results {
			remote += r.RemoteGets
		}
		if remote == 0 {
			t.Fatalf("no remote frontier checks in a 4-rank run")
		}
	}
}

func TestCachingHelpsBFS(t *testing.T) {
	g := testGraph(t, 10, 8)
	_, raw := runDistributed(t, g, 4, 0, rawFactory)
	_, cached := runDistributed(t, g, 4, 0, cachedFactory)
	var rawT, cachedT int64
	for i := range raw {
		rawT += int64(raw[i].Time)
		cachedT += int64(cached[i].Time)
	}
	if cachedT >= rawT {
		t.Fatalf("caching did not help BFS: %d vs %d", cachedT, rawT)
	}
	t.Logf("BFS speedup with caching: %.2fx", float64(rawT)/float64(cachedT))
}

func TestSingleRankBFS(t *testing.T) {
	// Degenerate distribution: everything local, no remote gets.
	g := testGraph(t, 8, 8)
	want := Reference(g, 1)
	got, results := runDistributed(t, g, 1, 1, rawFactory)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("level(%d) = %d, want %d", v, got[v], want[v])
		}
	}
	if results[0].RemoteGets != 0 {
		t.Fatalf("single-rank run issued %d remote gets", results[0].RemoteGets)
	}
	if results[0].MaxLevel <= 0 {
		t.Fatalf("MaxLevel = %d", results[0].MaxLevel)
	}
}
