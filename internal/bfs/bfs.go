// Package bfs implements a distributed pull-based Breadth-First Search
// over RMA — a third irregular workload for the caching layer, beyond the
// paper's two.
//
// The graph is 1-D partitioned as in the LCC kernel. Each level, every
// rank exposes a byte map marking which of its owned vertices are in the
// current frontier. An unvisited vertex v joins the next frontier if any
// neighbour u is in the current one; checking a remote u costs a one-byte
// get into the owner's frontier map. Popular (hub) vertices are checked
// by many of their neighbours, so the same remote bytes are fetched over
// and over — and the frontier map is immutable for the whole level, so
// the gets are cached in the paper's user-defined mode and the cache is
// invalidated at the level boundary, where the maps change.
package bfs

import (
	"clampi/internal/getter"
	"clampi/internal/graph"
	"clampi/internal/mpi"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// Unreached marks a vertex not yet visited.
const Unreached int32 = -1

// Result summarizes one rank's search.
type Result struct {
	Levels     []int32 // level of each owned vertex (index: v - d.Lo)
	Reached    int     // owned vertices reached
	MaxLevel   int32
	Gets       int64 // frontier-byte fetches issued (local + remote)
	RemoteGets int64
	Time       simtime.Duration
}

// Config tunes a run.
type Config struct {
	// Source is the global id of the BFS root.
	Source int
	// ComputePerEdge is the modelled CPU cost per scanned edge; zero
	// selects the default (a handful of ALU ops).
	ComputePerEdge simtime.Duration
}

// DefaultComputeCost is the modelled per-edge scan cost.
const DefaultComputeCost = 2 * simtime.Nanosecond

// Run executes a level-synchronous pull BFS on this rank. frontierWin
// must expose exactly d.Hi-d.Lo bytes (this rank's frontier map); gt
// reads other ranks' maps through it. The caller must NOT hold an access
// epoch: Run manages its own Lock/Unlock around each level.
func Run(r *mpi.Rank, d *graph.Dist, frontierWin rma.Window, frontier []byte, gt getter.Getter, cfg Config) (Result, error) {
	if cfg.ComputePerEdge <= 0 {
		cfg.ComputePerEdge = DefaultComputeCost
	}
	clock := r.Clock()
	start := clock.Now()

	n := d.Hi - d.Lo
	res := Result{Levels: make([]int32, n)}
	for i := range res.Levels {
		res.Levels[i] = Unreached
	}
	next := make([]bool, n)

	// Level 0: the source vertex.
	for i := range frontier {
		frontier[i] = 0
	}
	if d.Owned(cfg.Source) {
		frontier[cfg.Source-d.Lo] = 1
		res.Levels[cfg.Source-d.Lo] = 0
		res.Reached++
	}
	r.Barrier() // all frontier maps initialized

	// Neighbour frontier bytes are checked in chunks: the remote bytes of
	// a chunk are fetched in one batched get (coalesced by the caching
	// layer when the displacements are adjacent) and then evaluated in
	// neighbour order with the scalar kernel's early exit — levels are
	// identical, but a chunk may prefetch a few bytes past the first hit,
	// so RemoteGets counts issued fetches rather than consulted ones.
	const chunkSize = 16
	var stage [chunkSize]byte
	var ops []getter.BatchOp
	for level := int32(0); ; level++ {
		if err := frontierWin.LockAll(); err != nil {
			return res, err
		}
		discovered := 0
		var scanned int64
		for v := d.Lo; v < d.Hi; v++ {
			if res.Levels[v-d.Lo] != Unreached {
				continue
			}
			adj := d.G.Neighbors(v)
			for base := 0; base < len(adj); base += chunkSize {
				chunk := adj[base:min(base+chunkSize, len(adj))]
				ops = ops[:0]
				for i, u := range chunk {
					if !d.Owned(int(u)) {
						owner := d.Part.Owner(int(u))
						olo, _ := d.Part.Range(owner)
						ops = append(ops, getter.BatchOp{
							Dst:    stage[i : i+1 : i+1],
							Target: owner,
							Disp:   int(u) - olo,
						})
					}
				}
				if len(ops) > 0 {
					if err := getter.GetBatch(gt, ops); err != nil {
						return res, err
					}
					if err := gt.Flush(); err != nil {
						return res, err
					}
					res.RemoteGets += int64(len(ops))
				}
				hit := false
				for i, u := range chunk {
					scanned++
					res.Gets++
					var inFrontier bool
					if d.Owned(int(u)) {
						inFrontier = frontier[int(u)-d.Lo] != 0
					} else {
						inFrontier = stage[i] != 0
					}
					if inFrontier {
						res.Levels[v-d.Lo] = level + 1
						next[v-d.Lo] = true
						discovered++
						hit = true
						break
					}
				}
				if hit {
					break
				}
			}
		}
		clock.Advance(simtime.Duration(scanned) * cfg.ComputePerEdge)
		// The frontier maps are about to change: end of the read-only
		// phase (CLAMPI_Invalidate in the paper's Listing 1).
		gt.Invalidate()
		if err := frontierWin.UnlockAll(); err != nil {
			return res, err
		}

		total := r.AllreduceSum(float64(discovered))
		if total == 0 {
			break
		}
		res.Reached += discovered
		if discovered > 0 {
			res.MaxLevel = level + 1
		}
		// Publish the next frontier.
		for i := range frontier {
			if next[i] {
				frontier[i] = 1
				next[i] = false
			} else {
				frontier[i] = 0
			}
		}
		r.Barrier() // maps rewritten before anyone reads them
	}
	res.Time = clock.Now() - start
	return res, nil
}

// Reference computes BFS levels serially (the validation oracle).
func Reference(g *graph.CSR, source int) []int32 {
	levels := make([]int32, g.N)
	for i := range levels {
		levels[i] = Unreached
	}
	if source < 0 || source >= g.N {
		return levels
	}
	levels[source] = 0
	queue := []int32{int32(source)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(int(v)) {
			if levels[u] == Unreached {
				levels[u] = levels[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return levels
}
