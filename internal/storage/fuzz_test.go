package storage

import "testing"

// FuzzAllocFree drives the allocator with an op tape: each byte either
// frees a live region (odd values) or allocates (even values scale the
// size). Structural invariants must hold after every operation.
func FuzzAllocFree(f *testing.F) {
	f.Add([]byte{0, 2, 4, 1, 6, 3, 8})
	f.Add([]byte{255, 254, 253, 1, 0, 7})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		m := New(8192)
		var live []*Region
		for i, op := range ops {
			if op%2 == 1 && len(live) > 0 {
				idx := int(op) % len(live)
				m.FreeRegion(live[idx])
				live = append(live[:idx], live[idx+1:]...)
			} else {
				size := int(op)*16 + 1
				if r := m.Alloc(size); r != nil {
					live = append(live, r)
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("op %d (%d): %v", i, op, err)
			}
		}
		if m.Entries() != len(live) {
			t.Fatalf("entries %d, live %d", m.Entries(), len(live))
		}
	})
}
