package storage

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRoundsUp(t *testing.T) {
	m := New(100)
	if m.Capacity() != 128 {
		t.Fatalf("Capacity = %d, want 128", m.Capacity())
	}
	if m.FreeBytes() != 128 || m.UsedBytes() != 0 {
		t.Fatalf("free=%d used=%d", m.FreeBytes(), m.UsedBytes())
	}
	if m.Occupancy() != 0 {
		t.Fatalf("Occupancy = %v", m.Occupancy())
	}
	if m2 := New(0); m2.Capacity() != CacheLine {
		t.Fatalf("minimum capacity = %d", m2.Capacity())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocBestFit(t *testing.T) {
	m := New(1024)
	// Carve the buffer into entry/free stripes, then free selected
	// entries to create free regions of different sizes.
	var regs []*Region
	for i := 0; i < 8; i++ {
		r := m.Alloc(128)
		if r == nil {
			t.Fatalf("alloc %d failed", i)
		}
		regs = append(regs, r)
	}
	// Free regions: one of 128 (idx 1) and one of 256 (idx 4,5).
	m.FreeRegion(regs[1])
	m.FreeRegion(regs[4])
	m.FreeRegion(regs[5])
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.FreeRegions() != 2 {
		t.Fatalf("FreeRegions = %d, want 2 (coalesced)", m.FreeRegions())
	}
	// Best fit for 100 bytes (rounds to 128) must take the 128 hole,
	// not split the 256 one.
	r := m.Alloc(100)
	if r == nil || r.Off() != regs[1].Off() {
		t.Fatalf("best fit chose %v, want offset %d", r, regs[1].Off())
	}
	if r.Size() != 128 {
		t.Fatalf("allocated size %d, want 128", r.Size())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocSplits(t *testing.T) {
	m := New(1024)
	r := m.Alloc(64)
	if r == nil || r.Size() != 64 || r.Off() != 0 {
		t.Fatalf("first alloc = %v", r)
	}
	if m.FreeBytes() != 960 {
		t.Fatalf("FreeBytes = %d", m.FreeBytes())
	}
	if m.FreeRegions() != 1 {
		t.Fatalf("FreeRegions = %d", m.FreeRegions())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	m := New(256)
	a := m.Alloc(128)
	b := m.Alloc(128)
	if a == nil || b == nil {
		t.Fatalf("allocs failed")
	}
	if m.Alloc(1) != nil {
		t.Fatalf("alloc from full buffer succeeded")
	}
	if m.WouldFit(1) {
		t.Fatalf("WouldFit on full buffer")
	}
	m.FreeRegion(a)
	if !m.WouldFit(128) || m.WouldFit(129) {
		t.Fatalf("WouldFit wrong after free: 128=%v 129=%v", m.WouldFit(128), m.WouldFit(129))
	}
}

func TestFragmentationBlocksLargeAlloc(t *testing.T) {
	// Free space is sufficient in total but externally fragmented:
	// Alloc must fail (this is what positional eviction fights).
	m := New(512)
	var regs []*Region
	for i := 0; i < 8; i++ {
		regs = append(regs, m.Alloc(64))
	}
	// Free alternating: 4*64=256 bytes free, largest hole 64.
	for i := 0; i < 8; i += 2 {
		m.FreeRegion(regs[i])
	}
	if m.FreeBytes() != 256 {
		t.Fatalf("FreeBytes = %d", m.FreeBytes())
	}
	if m.LargestFree() != 64 {
		t.Fatalf("LargestFree = %d", m.LargestFree())
	}
	if m.Alloc(128) != nil {
		t.Fatalf("fragmented alloc should fail")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingBothSides(t *testing.T) {
	m := New(3 * 64)
	a := m.Alloc(64)
	b := m.Alloc(64)
	c := m.Alloc(64)
	m.FreeRegion(a)
	m.FreeRegion(c)
	if m.FreeRegions() != 2 {
		t.Fatalf("FreeRegions = %d", m.FreeRegions())
	}
	m.FreeRegion(b) // coalesces with both neighbours
	if m.FreeRegions() != 1 {
		t.Fatalf("FreeRegions after middle free = %d, want 1", m.FreeRegions())
	}
	if m.LargestFree() != 192 {
		t.Fatalf("LargestFree = %d, want 192", m.LargestFree())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	m := New(128)
	r := m.Alloc(64)
	m.FreeRegion(r)
	defer func() {
		if recover() == nil {
			t.Fatalf("double free did not panic")
		}
	}()
	m.FreeRegion(r)
}

func TestGrow(t *testing.T) {
	m := New(512)
	a := m.Alloc(64)
	if !m.Grow(a, 0) {
		t.Fatalf("Grow by 0 failed")
	}
	if !m.Grow(a, 64) {
		t.Fatalf("Grow into free successor failed")
	}
	if a.Size() != 128 {
		t.Fatalf("size after grow = %d", a.Size())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Block the successor with another entry: Grow must fail.
	b := m.Alloc(64)
	if m.Grow(a, 64) {
		t.Fatalf("Grow across an allocated neighbour succeeded")
	}
	_ = b
	// Grow consuming the whole remaining free space.
	c := m.Alloc(64)
	rest := m.FreeBytes()
	if !m.Grow(c, rest) {
		t.Fatalf("Grow to end failed (rest=%d)", rest)
	}
	if m.FreeBytes() != 0 {
		t.Fatalf("FreeBytes = %d after full grow", m.FreeBytes())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowOnFreePanics(t *testing.T) {
	m := New(128)
	r := m.Alloc(64)
	m.FreeRegion(r)
	defer func() {
		if recover() == nil {
			t.Fatalf("Grow on free region did not panic")
		}
	}()
	m.Grow(r, 64)
}

func TestAdjacentFree(t *testing.T) {
	m := New(5 * 64)
	a := m.Alloc(64)
	b := m.Alloc(64)
	c := m.Alloc(64)
	d := m.Alloc(64)
	_ = m.Alloc(64)
	// Layout: a b c d e, all allocated. d_c of b is 0.
	if got := m.AdjacentFree(b); got != 0 {
		t.Fatalf("AdjacentFree = %d, want 0", got)
	}
	m.FreeRegion(a)
	if got := m.AdjacentFree(b); got != 64 {
		t.Fatalf("AdjacentFree after freeing prev = %d, want 64", got)
	}
	m.FreeRegion(c)
	if got := m.AdjacentFree(b); got != 128 {
		t.Fatalf("AdjacentFree both sides = %d, want 128", got)
	}
	m.FreeRegion(d) // coalesces with c's hole: b's next free region = 128
	if got := m.AdjacentFree(b); got != 192 {
		t.Fatalf("AdjacentFree after coalesce = %d, want 192", got)
	}
}

func TestBytes(t *testing.T) {
	m := New(256)
	r := m.Alloc(100) // rounds to 128
	b := m.Bytes(r, 100)
	if len(b) != 100 {
		t.Fatalf("Bytes len = %d", len(b))
	}
	for i := range b {
		b[i] = byte(i)
	}
	if full := m.Bytes(r, -1); len(full) != 128 {
		t.Fatalf("full Bytes len = %d", len(full))
	}
	if over := m.Bytes(r, 1000); len(over) != 128 {
		t.Fatalf("overlong Bytes len = %d", len(over))
	}
	// Data persists.
	if m.Bytes(r, 100)[42] != 42 {
		t.Fatalf("payload lost")
	}
}

func TestResetAndResize(t *testing.T) {
	m := New(1024)
	for i := 0; i < 4; i++ {
		m.Alloc(128)
	}
	m.Reset()
	if m.UsedBytes() != 0 || m.Entries() != 0 || m.FreeRegions() != 1 {
		t.Fatalf("Reset left used=%d entries=%d regions=%d", m.UsedBytes(), m.Entries(), m.FreeRegions())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m.Resize(4096)
	if m.Capacity() != 4096 || m.FreeBytes() != 4096 {
		t.Fatalf("Resize: cap=%d free=%d", m.Capacity(), m.FreeBytes())
	}
	m.Resize(10)
	if m.Capacity() != CacheLine {
		t.Fatalf("Resize(10): cap=%d", m.Capacity())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEntriesCount(t *testing.T) {
	m := New(1024)
	a := m.Alloc(64)
	b := m.Alloc(64)
	if m.Entries() != 2 {
		t.Fatalf("Entries = %d", m.Entries())
	}
	m.FreeRegion(a)
	if m.Entries() != 1 {
		t.Fatalf("Entries = %d after free", m.Entries())
	}
	m.FreeRegion(b)
	if m.Entries() != 0 {
		t.Fatalf("Entries = %d", m.Entries())
	}
}

func TestWalkAddressOrder(t *testing.T) {
	m := New(512)
	m.Alloc(64)
	m.Alloc(128)
	prev := -1
	count := 0
	m.Walk(func(r *Region) bool {
		if r.Off() <= prev {
			t.Fatalf("walk out of order at %v", r)
		}
		prev = r.Off()
		count++
		return true
	})
	if count != 3 { // two entries + trailing free
		t.Fatalf("walked %d descriptors, want 3", count)
	}
	// Early stop.
	count = 0
	m.Walk(func(*Region) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop walked %d", count)
	}
}

func TestAllocZeroAndNegative(t *testing.T) {
	m := New(256)
	r := m.Alloc(0)
	if r == nil || r.Size() != CacheLine {
		t.Fatalf("Alloc(0) = %v", r)
	}
	r2 := m.Alloc(-5)
	if r2 == nil || r2.Size() != CacheLine {
		t.Fatalf("Alloc(-5) = %v", r2)
	}
}

func TestRandomAllocFreeInvariant(t *testing.T) {
	// Property: arbitrary alloc/free/grow sequences preserve all
	// structural invariants and never lose bytes.
	f := func(ops []uint8, seed int64) bool {
		m := New(4096)
		rng := rand.New(rand.NewSource(seed))
		var live []*Region
		for _, op := range ops {
			switch {
			case op%3 == 0 && len(live) > 0: // free
				i := rng.Intn(len(live))
				m.FreeRegion(live[i])
				live = append(live[:i], live[i+1:]...)
			case op%3 == 1 && len(live) > 0: // grow
				i := rng.Intn(len(live))
				m.Grow(live[i], int(op)*8)
			default: // alloc
				if r := m.Alloc(int(op)*16 + 1); r != nil {
					live = append(live, r)
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
		}
		return m.Entries() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStringForms(t *testing.T) {
	m := New(128)
	r := m.Alloc(64)
	if r.String() != "entry[0:64)" {
		t.Fatalf("String = %q", r.String())
	}
	m.FreeRegion(r)
	// After coalescing r may have been merged; find the free head.
	var free *Region
	m.Walk(func(x *Region) bool { free = x; return false })
	if free.String() != "free[0:128)" {
		t.Fatalf("String = %q", free.String())
	}
}

func BenchmarkAllocFree(b *testing.B) {
	m := New(1 << 20)
	rng := rand.New(rand.NewSource(1))
	var live []*Region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(live) > 256 || (len(live) > 0 && rng.Intn(2) == 0) {
			j := rng.Intn(len(live))
			m.FreeRegion(live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		} else if r := m.Alloc(rng.Intn(4096) + 1); r != nil {
			live = append(live, r)
		}
	}
}
