// Package storage implements CLaMPI's cache storage S_w (paper §III-C2,
// §III-C3): a contiguous memory buffer holding variable-size cache
// entries.
//
// Allocations are rounded up to the CPU cache-line size to preserve
// alignment. Free regions are indexed by an AVL tree keyed on their size,
// so allocation follows a best-fit policy in O(log N). Cache entries and
// free regions are described by descriptors kept in a doubly linked list
// in buffer-address order; the list makes the free memory adjacent to an
// entry (the paper's d_c, input to the positional score) available in
// O(1), and lets eviction coalesce a freed entry with its free neighbours
// in O(1).
package storage

import (
	"errors"
	"fmt"

	"clampi/internal/avl"
)

// CacheLine is the allocation granularity (bytes).
const CacheLine = 64

// ErrTooLarge is returned when a request exceeds the buffer capacity.
var ErrTooLarge = errors.New("storage: request exceeds buffer capacity")

// Region describes one contiguous range of the buffer: either a cache
// entry's storage or a free region. Regions are owned by the Manager;
// callers hold *Region handles returned by Alloc and must not copy them.
type Region struct {
	off  int
	size int
	free bool

	prev, next *Region
}

// Off returns the region's byte offset in the buffer.
func (r *Region) Off() int { return r.off }

// Size returns the region's length in bytes (cache-line rounded).
func (r *Region) Size() int { return r.size }

// Free reports whether the region is free space.
func (r *Region) Free() bool { return r.free }

func (r *Region) String() string {
	kind := "entry"
	if r.free {
		kind = "free"
	}
	return fmt.Sprintf("%s[%d:%d)", kind, r.off, r.off+r.size)
}

// Policy selects the free-region search strategy.
type Policy int

const (
	// BestFit takes the smallest free region that fits, via the AVL
	// index in O(log N) — the paper's design (§III-C2).
	BestFit Policy = iota
	// FirstFit takes the lowest-addressed free region that fits, via a
	// linear descriptor-list scan. Provided as an ablation baseline:
	// simpler, O(N), and typically more fragmentation-prone for
	// variable-size entries.
	FirstFit
)

func (p Policy) String() string {
	if p == FirstFit {
		return "first-fit"
	}
	return "best-fit"
}

// Manager owns the cache memory buffer and its allocation metadata.
// Not safe for concurrent use; each caching layer owns one Manager.
type Manager struct {
	buf    []byte
	head   *Region // address-ordered descriptor list
	tree   avl.Tree[*Region]
	policy Policy

	freeBytes int
	entries   int

	pool *Region // recycled descriptors, linked through next
}

// newRegion takes a descriptor off the pool (or allocates one). Pooling
// keeps the steady-state alloc/free cycle of the cache allocation-free.
func (m *Manager) newRegion(off, size int, free bool) *Region {
	r := m.pool
	if r == nil {
		return &Region{off: off, size: size, free: free}
	}
	m.pool = r.next
	*r = Region{off: off, size: size, free: free}
	return r
}

// recycle returns a discarded descriptor to the pool. Callers must not
// hold live references to it afterwards (stale entry handles exist after
// FreeRegion, but the contract forbids dereferencing them).
func (m *Manager) recycle(r *Region) {
	*r = Region{next: m.pool}
	m.pool = r
}

// New creates a best-fit manager over a buffer of the given size, rounded
// up to a whole number of cache lines (minimum one line).
func New(size int) *Manager { return NewWithPolicy(size, BestFit) }

// NewWithPolicy creates a manager with an explicit allocation policy.
// Every manager owns a private AVL node arena, so managers used as
// per-shard stores (core's concurrent cache) never contend on node
// allocation — each shard's free-region index grows from its own
// chunks.
func NewWithPolicy(size int, policy Policy) *Manager {
	if size < CacheLine {
		size = CacheLine
	}
	size = roundUp(size)
	m := &Manager{buf: make([]byte, size), policy: policy}
	m.tree.SetArena(avl.NewArena[*Region](treeArenaChunk))
	r := &Region{off: 0, size: size, free: true}
	m.head = r
	m.tree.Insert(key(r), r)
	m.freeBytes = size
	return m
}

// treeArenaChunk sizes the per-manager AVL arena chunks: 64 nodes cover
// the free-region count of a typical cache shard without a second chunk.
const treeArenaChunk = 64

// Policy returns the allocation policy in use.
func (m *Manager) Policy() Policy { return m.policy }

func roundUp(n int) int {
	return (n + CacheLine - 1) / CacheLine * CacheLine
}

func key(r *Region) avl.Key { return avl.Key{Size: r.size, Off: r.off} }

// Capacity returns the buffer size (the paper's |S_w|).
func (m *Manager) Capacity() int { return len(m.buf) }

// FreeBytes returns the total free space (possibly fragmented).
func (m *Manager) FreeBytes() int { return m.freeBytes }

// UsedBytes returns the space held by entries.
func (m *Manager) UsedBytes() int { return len(m.buf) - m.freeBytes }

// Occupancy returns UsedBytes/Capacity, the y-axis of the paper's Fig. 10.
func (m *Manager) Occupancy() float64 {
	return float64(m.UsedBytes()) / float64(len(m.buf))
}

// Entries returns the number of allocated regions.
func (m *Manager) Entries() int { return m.entries }

// LargestFree returns the size of the largest free region (0 if none):
// the best single allocation the buffer can satisfy.
func (m *Manager) LargestFree() int {
	k, _, ok := m.tree.Max()
	if !ok {
		return 0
	}
	return k.Size
}

// Bytes returns the payload slice of an allocated region, capped at n
// bytes (the entry's actual payload may be shorter than the rounded
// region).
func (m *Manager) Bytes(r *Region, n int) []byte {
	if n < 0 || n > r.size {
		n = r.size
	}
	return m.buf[r.off : r.off+n]
}

// Alloc reserves n bytes (cache-line rounded) using the configured
// policy. It returns nil if no single free region can hold the request —
// the caller decides whether that is a capacity access (evict and retry)
// or a failing access.
func (m *Manager) Alloc(n int) *Region {
	if n <= 0 {
		n = 1
	}
	n = roundUp(n)
	var r *Region
	if m.policy == FirstFit {
		for x := m.head; x != nil; x = x.next {
			if x.free && x.size >= n {
				r = x
				break
			}
		}
		if r == nil {
			return nil
		}
	} else {
		var ok bool
		_, r, ok = m.tree.Ceiling(n)
		if !ok {
			return nil
		}
	}
	m.tree.Delete(key(r))
	if r.size == n {
		r.free = false
		m.freeBytes -= n
		m.entries++
		return r
	}
	// Split: the entry takes the front, the remainder stays free. The
	// new descriptor slots into the address-ordered list right after r
	// in O(1) (paper §III-C3).
	rest := m.newRegion(r.off+n, r.size-n, true)
	rest.prev, rest.next = r, r.next
	if r.next != nil {
		r.next.prev = rest
	}
	r.next = rest
	r.size = n
	r.free = false
	m.tree.Insert(key(rest), rest)
	m.freeBytes -= n
	m.entries++
	return r
}

// FreeRegion releases an allocated region, coalescing it with free
// neighbours. The handle must not be used afterwards.
func (m *Manager) FreeRegion(r *Region) {
	if r.free {
		panic("storage: double free of " + r.String())
	}
	r.free = true
	m.freeBytes += r.size
	m.entries--
	// Coalesce with next.
	if n := r.next; n != nil && n.free {
		m.tree.Delete(key(n))
		r.size += n.size
		r.next = n.next
		if n.next != nil {
			n.next.prev = r
		}
		m.recycle(n)
	}
	// Coalesce with prev.
	if p := r.prev; p != nil && p.free {
		m.tree.Delete(key(p))
		p.size += r.size
		p.next = r.next
		if r.next != nil {
			r.next.prev = p
		}
		m.recycle(r)
		r = p
	}
	m.tree.Insert(key(r), r)
}

// Grow extends an allocated region in place by at least extra bytes
// (cache-line rounded), consuming space from an adjacent free successor.
// It returns false (leaving the region untouched) if the successor cannot
// supply the space. Used for partial hits (§III-B1): the cached prefix
// stays put and the entry is extended only if S_w has adjacent room.
func (m *Manager) Grow(r *Region, extra int) bool {
	if r.free {
		panic("storage: Grow on free region " + r.String())
	}
	if extra <= 0 {
		return true
	}
	extra = roundUp(extra)
	n := r.next
	if n == nil || !n.free || n.size < extra {
		return false
	}
	m.tree.Delete(key(n))
	if n.size == extra {
		r.size += extra
		r.next = n.next
		if n.next != nil {
			n.next.prev = r
		}
		m.recycle(n)
	} else {
		n.off += extra
		n.size -= extra
		r.size += extra
		m.tree.Insert(key(n), n)
	}
	m.freeBytes -= extra
	return true
}

// AdjacentFree returns d_c: the total free memory adjacent to the region
// (paper §III-C2). O(1) via the descriptor list.
func (m *Manager) AdjacentFree(r *Region) int {
	d := 0
	if p := r.prev; p != nil && p.free {
		d += p.size
	}
	if n := r.next; n != nil && n.free {
		d += n.size
	}
	return d
}

// WouldFit reports whether a request of n bytes can currently be served
// without eviction (a *direct* access if also indexable).
func (m *Manager) WouldFit(n int) bool {
	if n <= 0 {
		n = 1
	}
	return m.LargestFree() >= roundUp(n)
}

// Reset frees everything, restoring a single free region of the current
// capacity. Used on cache invalidation.
func (m *Manager) Reset() {
	for r := m.head; r != nil; {
		next := r.next
		m.recycle(r)
		r = next
	}
	m.tree.Clear()
	r := m.newRegion(0, len(m.buf), true)
	m.head = r
	m.tree.Insert(key(r), r)
	m.freeBytes = len(m.buf)
	m.entries = 0
}

// Resize recreates the manager with a new capacity, dropping all entries
// (adaptive tuning always invalidates on a parameter change, §III-E).
func (m *Manager) Resize(size int) {
	if size < CacheLine {
		size = CacheLine
	}
	size = roundUp(size)
	m.buf = make([]byte, size)
	m.Reset()
}

// FreeRegions returns the number of distinct free regions (fragmentation
// indicator for tests and stats).
func (m *Manager) FreeRegions() int { return m.tree.Len() }

// Walk visits all descriptors in address order.
func (m *Manager) Walk(f func(*Region) bool) {
	for r := m.head; r != nil; r = r.next {
		if !f(r) {
			return
		}
	}
}

// CheckInvariants validates the descriptor list, the AVL index, and the
// accounting. Test helper: O(N).
func (m *Manager) CheckInvariants() error {
	seenFree := 0
	freeBytes := 0
	entries := 0
	off := 0
	var prev *Region
	for r := m.head; r != nil; r = r.next {
		if r.off != off {
			return fmt.Errorf("storage: gap or overlap at %v (expected off %d)", r, off)
		}
		if r.size <= 0 || r.size%CacheLine != 0 {
			return fmt.Errorf("storage: bad size %v", r)
		}
		if r.prev != prev {
			return fmt.Errorf("storage: broken prev link at %v", r)
		}
		if r.free {
			if prev != nil && prev.free {
				return fmt.Errorf("storage: uncoalesced free regions at %v", r)
			}
			seenFree++
			freeBytes += r.size
			if got, ok := m.tree.Get(key(r)); !ok || got != r {
				return fmt.Errorf("storage: free region %v not indexed", r)
			}
		} else {
			entries++
		}
		off += r.size
		prev = r
	}
	if off != len(m.buf) {
		return fmt.Errorf("storage: descriptors cover %d of %d bytes", off, len(m.buf))
	}
	if seenFree != m.tree.Len() {
		return fmt.Errorf("storage: %d free regions in list, %d in tree", seenFree, m.tree.Len())
	}
	if freeBytes != m.freeBytes {
		return fmt.Errorf("storage: freeBytes %d, accounted %d", freeBytes, m.freeBytes)
	}
	if entries != m.entries {
		return fmt.Errorf("storage: entries %d, accounted %d", entries, m.entries)
	}
	return nil
}
