package datatype

// Extended derived-datatype constructors: the byte-displacement variants
// (MPI_Type_create_hvector / hindexed) and n-dimensional subarrays
// (MPI_Type_create_subarray). None are required by the paper's workloads,
// but they complete the datatype engine for applications with richer
// layouts (halo exchanges, tensor tiles).

import (
	"fmt"
	"sort"
)

// hvector is like vector but with the stride given in bytes.
type hvector struct {
	count    int
	blockLen int
	strideB  int // byte stride between block starts
	base     Datatype
}

// Hvector builds an MPI_Type_create_hvector equivalent: count blocks of
// blockLen base elements whose starts are strideBytes apart. Panics on
// negative count/blockLen.
func Hvector(count, blockLen, strideBytes int, base Datatype) Datatype {
	if count < 0 || blockLen < 0 {
		panic(fmt.Sprintf("datatype: negative hvector shape %d x %d", count, blockLen))
	}
	return hvector{count, blockLen, strideBytes, base}
}

func (v hvector) Size() int { return v.count * v.blockLen * v.base.Size() }
func (v hvector) Extent() int {
	if v.count == 0 {
		return 0
	}
	return (v.count-1)*v.strideB + v.blockLen*v.base.Extent()
}
func (v hvector) Flatten(dst []Block, base int) []Block {
	inner := Contiguous(v.blockLen, v.base)
	for i := 0; i < v.count; i++ {
		dst = inner.Flatten(dst, base+i*v.strideB)
	}
	return dst
}
func (v hvector) String() string {
	return fmt.Sprintf("HVECTOR(%d,%d,%dB,%s)", v.count, v.blockLen, v.strideB, v.base)
}

// hindexed is like indexed but with byte displacements.
type hindexed struct {
	lengths []int
	dispsB  []int // byte displacements
	base    Datatype
}

// Hindexed builds an MPI_Type_create_hindexed equivalent: block i holds
// lengths[i] base elements at byte displacement dispBytes[i].
func Hindexed(lengths, dispBytes []int, base Datatype) Datatype {
	if len(lengths) != len(dispBytes) {
		panic(fmt.Sprintf("datatype: hindexed shape mismatch %d vs %d", len(lengths), len(dispBytes)))
	}
	for _, l := range lengths {
		if l < 0 {
			panic(fmt.Sprintf("datatype: negative hindexed block length %d", l))
		}
	}
	ls := append([]int(nil), lengths...)
	ds := append([]int(nil), dispBytes...)
	return hindexed{ls, ds, base}
}

func (x hindexed) Size() int {
	s := 0
	for _, l := range x.lengths {
		s += l
	}
	return s * x.base.Size()
}
func (x hindexed) Extent() int {
	if len(x.lengths) == 0 {
		return 0
	}
	hi := 0
	for i := range x.lengths {
		if end := x.dispsB[i] + x.lengths[i]*x.base.Extent(); end > hi {
			hi = end
		}
	}
	return hi
}
func (x hindexed) Flatten(dst []Block, base int) []Block {
	order := make([]int, len(x.dispsB))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return x.dispsB[order[a]] < x.dispsB[order[b]] })
	for _, i := range order {
		inner := Contiguous(x.lengths[i], x.base)
		dst = inner.Flatten(dst, base+x.dispsB[i])
	}
	return dst
}
func (x hindexed) String() string {
	return fmt.Sprintf("HINDEXED(%d blocks,%s)", len(x.lengths), x.base)
}

// subarray selects an n-dimensional tile of a larger array.
type subarray struct {
	sizes    []int // full array shape (outermost first, C order)
	subsizes []int // tile shape
	starts   []int // tile origin
	base     Datatype
}

// Subarray builds an MPI_Type_create_subarray equivalent (C order): the
// tile of shape subsizes at origin starts inside an array of shape sizes,
// with elements of the base type. The type's extent spans the entire
// array, as in MPI.
func Subarray(sizes, subsizes, starts []int, base Datatype) Datatype {
	n := len(sizes)
	if len(subsizes) != n || len(starts) != n || n == 0 {
		panic("datatype: subarray shape mismatch")
	}
	for d := 0; d < n; d++ {
		if sizes[d] <= 0 || subsizes[d] < 0 || starts[d] < 0 || starts[d]+subsizes[d] > sizes[d] {
			panic(fmt.Sprintf("datatype: subarray dim %d out of range: size %d sub %d start %d",
				d, sizes[d], subsizes[d], starts[d]))
		}
	}
	return subarray{
		sizes:    append([]int(nil), sizes...),
		subsizes: append([]int(nil), subsizes...),
		starts:   append([]int(nil), starts...),
		base:     base,
	}
}

func (s subarray) Size() int {
	n := 1
	for _, d := range s.subsizes {
		n *= d
	}
	return n * s.base.Size()
}

func (s subarray) Extent() int {
	n := 1
	for _, d := range s.sizes {
		n *= d
	}
	return n * s.base.Extent()
}

func (s subarray) Flatten(dst []Block, base int) []Block {
	for _, d := range s.subsizes {
		if d == 0 {
			return dst // empty tile
		}
	}
	// Row strides in elements, innermost dimension contiguous.
	ext := s.base.Extent()
	ndim := len(s.sizes)
	// Iterate over all but the innermost dimension; emit one
	// contiguous run of subsizes[last] elements per combination.
	idx := make([]int, ndim-1)
	for {
		off := 0
		stride := 1
		// Compute the linear element offset of (starts + idx, starts[last]).
		for d := ndim - 1; d >= 0; d-- {
			var i int
			if d == ndim-1 {
				i = s.starts[d]
			} else {
				i = s.starts[d] + idx[d]
			}
			off += i * stride
			stride *= s.sizes[d]
		}
		inner := Contiguous(s.subsizes[ndim-1], s.base)
		dst = inner.Flatten(dst, base+off*ext)
		// Odometer increment over the outer dimensions.
		d := ndim - 2
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < s.subsizes[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			break
		}
	}
	return dst
}

func (s subarray) String() string {
	return fmt.Sprintf("SUBARRAY(%dd,%s)", len(s.sizes), s.base)
}
