package datatype

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestPrimitives(t *testing.T) {
	cases := []struct {
		dt   Datatype
		size int
		name string
	}{
		{Byte, 1, "BYTE"},
		{Int32, 4, "INT32"},
		{Int64, 8, "INT64"},
		{Double, 8, "DOUBLE"},
	}
	for _, c := range cases {
		if c.dt.Size() != c.size || c.dt.Extent() != c.size {
			t.Errorf("%s: size=%d extent=%d, want %d", c.name, c.dt.Size(), c.dt.Extent(), c.size)
		}
		if c.dt.String() != c.name {
			t.Errorf("String() = %q, want %q", c.dt.String(), c.name)
		}
	}
}

func TestBytes(t *testing.T) {
	b := Bytes(100)
	if b.Size() != 100 || b.Extent() != 100 {
		t.Fatalf("Bytes(100): size=%d extent=%d", b.Size(), b.Extent())
	}
	if got := b.Flatten(nil, 8); !reflect.DeepEqual(got, []Block{{8, 100}}) {
		t.Fatalf("Flatten = %v", got)
	}
	if got := Bytes(0).Flatten(nil, 0); len(got) != 0 {
		t.Fatalf("empty type flattened to %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Bytes(-1) did not panic")
		}
	}()
	Bytes(-1)
}

func TestContiguousCoalesces(t *testing.T) {
	c := Contiguous(16, Int32)
	if c.Size() != 64 || c.Extent() != 64 {
		t.Fatalf("size=%d extent=%d, want 64/64", c.Size(), c.Extent())
	}
	blocks := c.Flatten(nil, 0)
	if !reflect.DeepEqual(blocks, []Block{{0, 64}}) {
		t.Fatalf("contiguous type should flatten to one block, got %v", blocks)
	}
}

func TestVector(t *testing.T) {
	// 3 blocks of 2 int32, stride 4 elements: |xx..|xx..|xx|
	v := Vector(3, 2, 4, Int32)
	if v.Size() != 24 {
		t.Fatalf("Size() = %d, want 24", v.Size())
	}
	if v.Extent() != (2*4+2)*4 {
		t.Fatalf("Extent() = %d, want 40", v.Extent())
	}
	want := []Block{{0, 8}, {16, 8}, {32, 8}}
	if got := v.Flatten(nil, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("Flatten = %v, want %v", got, want)
	}
	if Vector(0, 2, 4, Int32).Extent() != 0 {
		t.Fatalf("empty vector extent nonzero")
	}
}

func TestVectorUnitStrideCoalesces(t *testing.T) {
	v := Vector(4, 2, 2, Int32) // stride == blockLen: fully dense
	if got := v.Flatten(nil, 0); !reflect.DeepEqual(got, []Block{{0, 32}}) {
		t.Fatalf("dense vector should coalesce, got %v", got)
	}
}

func TestIndexed(t *testing.T) {
	// Blocks of 1,3 elements at displacements 5,0 (unsorted on purpose).
	x := Indexed([]int{1, 3}, []int{5, 0}, Int32)
	if x.Size() != 16 {
		t.Fatalf("Size() = %d, want 16", x.Size())
	}
	if x.Extent() != 24 { // from 0 to (5+1)*4
		t.Fatalf("Extent() = %d, want 24", x.Extent())
	}
	want := []Block{{0, 12}, {20, 4}} // sorted by offset
	if got := x.Flatten(nil, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("Flatten = %v, want %v", got, want)
	}
}

func TestIndexedPanics(t *testing.T) {
	mustPanic(t, func() { Indexed([]int{1}, []int{0, 1}, Byte) })
	mustPanic(t, func() { Indexed([]int{-1}, []int{0}, Byte) })
	mustPanic(t, func() { Vector(-1, 1, 1, Byte) })
	mustPanic(t, func() { Contiguous(-1, Byte) })
	mustPanic(t, func() { Struct([]Datatype{Byte}, []int{0, 1}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	f()
}

func TestStruct(t *testing.T) {
	// struct { int64 at 0; int32 at 12 } — like a (mass, id) leaf record.
	s := Struct([]Datatype{Int64, Int32}, []int{0, 12})
	if s.Size() != 12 {
		t.Fatalf("Size() = %d, want 12", s.Size())
	}
	if s.Extent() != 16 { // 12+4 aligned to 8
		t.Fatalf("Extent() = %d, want 16", s.Extent())
	}
	want := []Block{{0, 8}, {12, 4}}
	if got := s.Flatten(nil, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("Flatten = %v, want %v", got, want)
	}
}

func TestNestedTypes(t *testing.T) {
	// A vector of structs: exercises recursion through the composers.
	s := Struct([]Datatype{Double, Int32}, []int{0, 8})
	v := Vector(2, 1, 2, s)
	if v.Size() != 2*12 {
		t.Fatalf("Size() = %d, want 24", v.Size())
	}
	blocks := v.Flatten(nil, 0)
	// Each struct's two fields are adjacent, so they coalesce per element.
	want := []Block{{0, 12}, {32, 12}}
	if !reflect.DeepEqual(blocks, want) {
		t.Fatalf("Flatten = %v, want %v", blocks, want)
	}
}

func TestFlattenTransfer(t *testing.T) {
	blocks := FlattenTransfer(Int64, 4, 100)
	if !reflect.DeepEqual(blocks, []Block{{100, 32}}) {
		t.Fatalf("FlattenTransfer = %v", blocks)
	}
	v := Vector(2, 1, 2, Int32)
	blocks = FlattenTransfer(v, 2, 0)
	// The second element starts at extent 12, so its first block {12,4}
	// coalesces with the first element's trailing block {8,4}.
	want := []Block{{0, 4}, {8, 8}, {20, 4}}
	if !reflect.DeepEqual(blocks, want) {
		t.Fatalf("FlattenTransfer(vector,2) = %v, want %v", blocks, want)
	}
}

func TestTransferSize(t *testing.T) {
	if TransferSize(Int32, 10) != 40 {
		t.Fatalf("TransferSize = %d", TransferSize(Int32, 10))
	}
	if TransferSize(Int32, -1) != 0 {
		t.Fatalf("negative count must size to 0")
	}
}

func TestContig(t *testing.T) {
	if !Contig(Bytes(128), 1) {
		t.Fatalf("Bytes must be contiguous")
	}
	if !Contig(Int64, 16) {
		t.Fatalf("contiguous transfer of primitives must be Contig")
	}
	if Contig(Vector(2, 1, 3, Int32), 1) {
		t.Fatalf("strided vector must not be Contig")
	}
}

func TestCopyScatterRoundTrip(t *testing.T) {
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i)
	}
	v := Vector(4, 2, 4, Int32) // 32 payload bytes, strided
	blocks := v.Flatten(nil, 0)
	packed := make([]byte, v.Size())
	if n := CopyBlocks(packed, src, blocks); n != v.Size() {
		t.Fatalf("CopyBlocks copied %d, want %d", n, v.Size())
	}
	out := make([]byte, 64)
	if n := ScatterBlocks(out, packed, blocks); n != v.Size() {
		t.Fatalf("ScatterBlocks wrote %d, want %d", n, v.Size())
	}
	for _, b := range blocks {
		for i := b.Offset; i < b.Offset+b.Size; i++ {
			if out[i] != src[i] {
				t.Fatalf("byte %d: got %d want %d", i, out[i], src[i])
			}
		}
	}
}

func TestFlattenInvariants(t *testing.T) {
	// Property: for arbitrary vector shapes, the flattened blocks are
	// sorted, non-overlapping, and sum to Size().
	f := func(count, blockLen, extraStride uint8) bool {
		c, bl := int(count%8), int(blockLen%8)
		stride := bl + int(extraStride%8) // stride >= blockLen: no overlap
		v := Vector(c, bl, stride, Int32)
		blocks := v.Flatten(nil, 0)
		sum, prevEnd := 0, -1
		for _, b := range blocks {
			if b.Size <= 0 || b.Offset < 0 || b.Offset < prevEnd {
				return false
			}
			// Strictly after the previous block (coalescing
			// guarantees a gap, otherwise they'd be merged).
			if b.Offset == prevEnd {
				return false
			}
			prevEnd = b.Offset + b.Size
			sum += b.Size
		}
		return sum == v.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStringForms(t *testing.T) {
	if Contiguous(4, Byte).String() != "CONTIG(4,BYTE)" {
		t.Fatalf("got %q", Contiguous(4, Byte).String())
	}
	if Vector(1, 2, 3, Byte).String() != "VECTOR(1,2,3,BYTE)" {
		t.Fatalf("got %q", Vector(1, 2, 3, Byte).String())
	}
	if Indexed([]int{1}, []int{0}, Byte).String() != "INDEXED(1 blocks,BYTE)" {
		t.Fatalf("got %q", Indexed([]int{1}, []int{0}, Byte).String())
	}
	if Struct([]Datatype{Byte}, []int{0}).String() != "STRUCT(1 fields)" {
		t.Fatalf("got %q", Struct([]Datatype{Byte}, []int{0}).String())
	}
	if Bytes(7).String() != "BYTES(7)" {
		t.Fatalf("got %q", Bytes(7).String())
	}
}
