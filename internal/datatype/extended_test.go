package datatype

import (
	"reflect"
	"testing"
)

func TestHvector(t *testing.T) {
	// 3 blocks of 2 int32 (8 B) with starts 20 bytes apart.
	v := Hvector(3, 2, 20, Int32)
	if v.Size() != 24 {
		t.Fatalf("Size = %d", v.Size())
	}
	if v.Extent() != 2*20+8 {
		t.Fatalf("Extent = %d", v.Extent())
	}
	want := []Block{{0, 8}, {20, 8}, {40, 8}}
	if got := v.Flatten(nil, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("Flatten = %v", got)
	}
	if Hvector(0, 1, 4, Byte).Extent() != 0 {
		t.Fatalf("empty hvector extent")
	}
	if v.String() != "HVECTOR(3,2,20B,INT32)" {
		t.Fatalf("String = %q", v.String())
	}
	mustPanic(t, func() { Hvector(-1, 1, 4, Byte) })
}

func TestHindexed(t *testing.T) {
	// Blocks of 2 and 1 int32 at byte displacements 10 and 0.
	x := Hindexed([]int{2, 1}, []int{10, 0}, Int32)
	if x.Size() != 12 {
		t.Fatalf("Size = %d", x.Size())
	}
	if x.Extent() != 18 {
		t.Fatalf("Extent = %d", x.Extent())
	}
	want := []Block{{0, 4}, {10, 8}}
	if got := x.Flatten(nil, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("Flatten = %v", got)
	}
	if Hindexed(nil, nil, Byte).Extent() != 0 {
		t.Fatalf("empty hindexed extent")
	}
	if x.String() != "HINDEXED(2 blocks,INT32)" {
		t.Fatalf("String = %q", x.String())
	}
	mustPanic(t, func() { Hindexed([]int{1}, []int{0, 1}, Byte) })
	mustPanic(t, func() { Hindexed([]int{-1}, []int{0}, Byte) })
}

func TestSubarray2D(t *testing.T) {
	// A 2x3 tile at (1,2) of a 4x8 byte array.
	s := Subarray([]int{4, 8}, []int{2, 3}, []int{1, 2}, Byte)
	if s.Size() != 6 {
		t.Fatalf("Size = %d", s.Size())
	}
	if s.Extent() != 32 {
		t.Fatalf("Extent = %d", s.Extent())
	}
	// Rows 1 and 2, columns 2..4: offsets 1*8+2=10 and 2*8+2=18.
	want := []Block{{10, 3}, {18, 3}}
	if got := s.Flatten(nil, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("Flatten = %v", got)
	}
	if s.String() != "SUBARRAY(2d,BYTE)" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSubarray3D(t *testing.T) {
	// 2x2x2 corner tile of a 3x3x4 int32 array at origin.
	s := Subarray([]int{3, 3, 4}, []int{2, 2, 2}, []int{0, 0, 0}, Int32)
	if s.Size() != 8*4 {
		t.Fatalf("Size = %d", s.Size())
	}
	blocks := s.Flatten(nil, 0)
	// Rows: (0,0,0..1), (0,1,*), (1,0,*), (1,1,*): element offsets
	// 0, 4, 12, 16 → byte offsets ×4.
	want := []Block{{0, 8}, {16, 8}, {48, 8}, {64, 8}}
	if !reflect.DeepEqual(blocks, want) {
		t.Fatalf("Flatten = %v", blocks)
	}
}

func TestSubarray1D(t *testing.T) {
	s := Subarray([]int{10}, []int{4}, []int{3}, Byte)
	if got := s.Flatten(nil, 0); !reflect.DeepEqual(got, []Block{{3, 4}}) {
		t.Fatalf("Flatten = %v", got)
	}
	if s.Extent() != 10 {
		t.Fatalf("Extent = %d", s.Extent())
	}
}

func TestSubarrayEmptyTile(t *testing.T) {
	s := Subarray([]int{4, 4}, []int{0, 2}, []int{0, 0}, Byte)
	if s.Size() != 0 {
		t.Fatalf("Size = %d", s.Size())
	}
	if got := s.Flatten(nil, 0); len(got) != 0 {
		t.Fatalf("empty tile flattened to %v", got)
	}
}

func TestSubarrayValidation(t *testing.T) {
	mustPanic(t, func() { Subarray([]int{4}, []int{2, 2}, []int{0}, Byte) })
	mustPanic(t, func() { Subarray([]int{4}, []int{5}, []int{0}, Byte) })
	mustPanic(t, func() { Subarray([]int{4}, []int{2}, []int{3}, Byte) })
	mustPanic(t, func() { Subarray([]int{4}, []int{2}, []int{-1}, Byte) })
	mustPanic(t, func() { Subarray(nil, nil, nil, Byte) })
}

func TestExtendedCopyRoundTrip(t *testing.T) {
	// Gather a subarray tile and scatter it back: bytes must land where
	// they came from.
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i + 1)
	}
	s := Subarray([]int{8, 8}, []int{3, 3}, []int{2, 2}, Byte)
	blocks := s.Flatten(nil, 0)
	packed := make([]byte, s.Size())
	if n := CopyBlocks(packed, src, blocks); n != 9 {
		t.Fatalf("gathered %d", n)
	}
	out := make([]byte, 64)
	ScatterBlocks(out, packed, blocks)
	for _, b := range blocks {
		for i := b.Offset; i < b.Offset+b.Size; i++ {
			if out[i] != src[i] {
				t.Fatalf("byte %d: %d vs %d", i, out[i], src[i])
			}
		}
	}
}
