// Package datatype implements the subset of the MPI datatype system that
// CLaMPI relies on (paper §II-B).
//
// The paper uses the MPI Datatype Library (Ross et al.) to flatten an
// arbitrary datatype into a list of (size, offset) blocks. This package
// provides the same service: derived types are built by composing
// primitives with Contiguous, Vector, Indexed and Struct constructors, and
// Flatten produces the canonical block list used for sizing cache entries
// and for gather/scatter copies.
package datatype

import (
	"fmt"
	"sort"
)

// Block is one contiguous piece of a flattened datatype: Size bytes at
// byte offset Offset from the start of the buffer described by the type.
type Block struct {
	Offset int
	Size   int
}

// Datatype describes the memory layout of one element of a transfer.
// Implementations are immutable after construction and safe for concurrent
// use.
type Datatype interface {
	// Size returns the number of payload bytes in one element (the sum
	// of all block sizes).
	Size() int
	// Extent returns the span in bytes from the first to one past the
	// last byte touched by one element, including holes. Consecutive
	// elements of a transfer are laid out Extent() bytes apart.
	Extent() int
	// Flatten appends the element's blocks, shifted by base bytes, to
	// dst and returns the extended slice. Blocks are emitted in layout
	// order (ascending offset) with adjacent blocks coalesced.
	Flatten(dst []Block, base int) []Block
	// String returns a type signature for diagnostics.
	String() string
}

// primitive is a contiguous run of n bytes: the base case of the system.
type primitive struct {
	bytes int
	name  string
}

func (p primitive) Size() int   { return p.bytes }
func (p primitive) Extent() int { return p.bytes }
func (p primitive) Flatten(dst []Block, base int) []Block {
	if p.bytes == 0 {
		return dst
	}
	return appendCoalesced(dst, Block{Offset: base, Size: p.bytes})
}
func (p primitive) String() string { return p.name }

// Predefined primitive datatypes mirroring the MPI basic types used by the
// paper's applications.
var (
	Byte   Datatype = primitive{1, "BYTE"}
	Int32  Datatype = primitive{4, "INT32"}
	Int64  Datatype = primitive{8, "INT64"}
	Double Datatype = primitive{8, "DOUBLE"}
)

// Bytes returns a primitive type of exactly n contiguous bytes. It panics
// if n is negative; n == 0 yields an empty type.
func Bytes(n int) Datatype {
	if n < 0 {
		panic(fmt.Sprintf("datatype: negative byte count %d", n))
	}
	return primitive{n, fmt.Sprintf("BYTES(%d)", n)}
}

// contiguous is count elements of a base type laid end to end.
type contiguous struct {
	count int
	base  Datatype
}

// Contiguous builds an MPI_Type_contiguous equivalent. It panics on
// negative count.
func Contiguous(count int, base Datatype) Datatype {
	if count < 0 {
		panic(fmt.Sprintf("datatype: negative count %d", count))
	}
	return contiguous{count, base}
}

func (c contiguous) Size() int   { return c.count * c.base.Size() }
func (c contiguous) Extent() int { return c.count * c.base.Extent() }
func (c contiguous) Flatten(dst []Block, base int) []Block {
	ext := c.base.Extent()
	for i := 0; i < c.count; i++ {
		dst = c.base.Flatten(dst, base+i*ext)
	}
	return dst
}
func (c contiguous) String() string {
	return fmt.Sprintf("CONTIG(%d,%s)", c.count, c.base)
}

// vector is count blocks of blockLen base elements, strided.
type vector struct {
	count    int
	blockLen int
	stride   int // in base-extent units, like MPI_Type_vector
	base     Datatype
}

// Vector builds an MPI_Type_vector equivalent: count blocks, each of
// blockLen elements of base, with the starts of consecutive blocks
// stride base-extents apart. Panics on negative count/blockLen.
func Vector(count, blockLen, stride int, base Datatype) Datatype {
	if count < 0 || blockLen < 0 {
		panic(fmt.Sprintf("datatype: negative vector shape %d x %d", count, blockLen))
	}
	return vector{count, blockLen, stride, base}
}

func (v vector) Size() int { return v.count * v.blockLen * v.base.Size() }
func (v vector) Extent() int {
	if v.count == 0 {
		return 0
	}
	ext := v.base.Extent()
	// Extent spans from the first block to the end of the last block.
	return (v.count-1)*v.stride*ext + v.blockLen*ext
}
func (v vector) Flatten(dst []Block, base int) []Block {
	ext := v.base.Extent()
	inner := Contiguous(v.blockLen, v.base)
	for i := 0; i < v.count; i++ {
		dst = inner.Flatten(dst, base+i*v.stride*ext)
	}
	return dst
}
func (v vector) String() string {
	return fmt.Sprintf("VECTOR(%d,%d,%d,%s)", v.count, v.blockLen, v.stride, v.base)
}

// indexed is an MPI_Type_indexed equivalent: per-block lengths and
// displacements (in base-extent units).
type indexed struct {
	lengths []int
	disps   []int
	base    Datatype
}

// Indexed builds an MPI_Type_indexed equivalent. lengths and disps must
// have equal length; lengths must be non-negative.
func Indexed(lengths, disps []int, base Datatype) Datatype {
	if len(lengths) != len(disps) {
		panic(fmt.Sprintf("datatype: indexed shape mismatch %d vs %d", len(lengths), len(disps)))
	}
	for _, l := range lengths {
		if l < 0 {
			panic(fmt.Sprintf("datatype: negative indexed block length %d", l))
		}
	}
	ls := make([]int, len(lengths))
	ds := make([]int, len(disps))
	copy(ls, lengths)
	copy(ds, disps)
	return indexed{ls, ds, base}
}

func (x indexed) Size() int {
	s := 0
	for _, l := range x.lengths {
		s += l
	}
	return s * x.base.Size()
}
func (x indexed) Extent() int {
	if len(x.lengths) == 0 {
		return 0
	}
	ext := x.base.Extent()
	lo, hi := 0, 0
	for i := range x.lengths {
		start := x.disps[i] * ext
		end := start + x.lengths[i]*ext
		if i == 0 || start < lo {
			lo = start
		}
		if i == 0 || end > hi {
			hi = end
		}
	}
	if lo > 0 {
		lo = 0 // extent is measured from the type origin
	}
	return hi - lo
}
func (x indexed) Flatten(dst []Block, base int) []Block {
	ext := x.base.Extent()
	// Emit blocks in ascending offset order so the canonical form is
	// sorted even if displacements are not.
	order := make([]int, len(x.disps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return x.disps[order[a]] < x.disps[order[b]] })
	for _, i := range order {
		inner := Contiguous(x.lengths[i], x.base)
		dst = inner.Flatten(dst, base+x.disps[i]*ext)
	}
	return dst
}
func (x indexed) String() string {
	return fmt.Sprintf("INDEXED(%d blocks,%s)", len(x.lengths), x.base)
}

// structType combines heterogeneous fields at explicit byte displacements.
type structType struct {
	fields []Datatype
	disps  []int // byte displacements
	extent int
}

// Struct builds an MPI_Type_create_struct equivalent: fields[i] is placed
// at byte displacement disps[i]. The extent is the span from offset 0 to
// the farthest byte, rounded up to 8 bytes (natural alignment).
func Struct(fields []Datatype, disps []int) Datatype {
	if len(fields) != len(disps) {
		panic(fmt.Sprintf("datatype: struct shape mismatch %d vs %d", len(fields), len(disps)))
	}
	fs := make([]Datatype, len(fields))
	ds := make([]int, len(disps))
	copy(fs, fields)
	copy(ds, disps)
	hi := 0
	for i, f := range fs {
		if end := ds[i] + f.Extent(); end > hi {
			hi = end
		}
	}
	const align = 8
	hi = (hi + align - 1) / align * align
	return structType{fs, ds, hi}
}

func (s structType) Size() int {
	t := 0
	for _, f := range s.fields {
		t += f.Size()
	}
	return t
}
func (s structType) Extent() int { return s.extent }
func (s structType) Flatten(dst []Block, base int) []Block {
	order := make([]int, len(s.fields))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return s.disps[order[a]] < s.disps[order[b]] })
	for _, i := range order {
		dst = s.fields[i].Flatten(dst, base+s.disps[i])
	}
	return dst
}
func (s structType) String() string {
	return fmt.Sprintf("STRUCT(%d fields)", len(s.fields))
}

// appendCoalesced appends b to dst, merging it with the previous block if
// they are contiguous. Datatype constructors emit blocks in ascending
// offset order, so only the last block needs to be checked.
func appendCoalesced(dst []Block, b Block) []Block {
	if n := len(dst); n > 0 {
		last := &dst[n-1]
		if last.Offset+last.Size == b.Offset {
			last.Size += b.Size
			return dst
		}
	}
	return append(dst, b)
}

// TransferSize returns size(x) as defined in §II-B: the payload bytes of
// count elements of dtype.
func TransferSize(dtype Datatype, count int) int {
	if count < 0 {
		return 0
	}
	return dtype.Size() * count
}

// Span returns the extent in bytes of a transfer of count elements of
// dtype: the byte range the transfer touches in the target buffer,
// including holes. Consecutive elements sit Extent() bytes apart, so the
// span is count*Extent() — conservative (an upper bound on touched bytes)
// for sparse datatypes, exact for dense ones. Non-positive counts span
// nothing.
func Span(dtype Datatype, count int) int {
	if count <= 0 {
		return 0
	}
	return dtype.Extent() * count
}

// FlattenTransfer flattens count consecutive elements of dtype starting at
// byte offset base, producing the full block list of a transfer.
func FlattenTransfer(dtype Datatype, count, base int) []Block {
	var dst []Block
	ext := dtype.Extent()
	for i := 0; i < count; i++ {
		dst = dtype.Flatten(dst, base+i*ext)
	}
	return dst
}

// Contig reports whether a transfer of count elements of dtype is a single
// contiguous block (the common fast path in the cache copy routines).
func Contig(dtype Datatype, count int) bool {
	if dtype.Size() == dtype.Extent() {
		// Dense datatype: any count of elements coalesces into one
		// block. Answered without flattening (and thus allocation-free)
		// since this runs on the cache's partial-hit path.
		return true
	}
	blocks := FlattenTransfer(dtype, count, 0)
	return len(blocks) <= 1
}

// CopyBlocks gathers the bytes described by blocks from src into the dense
// prefix of dst, returning the number of bytes copied. It is the pack half
// of the datatype engine: cache storage always holds packed bytes.
func CopyBlocks(dst, src []byte, blocks []Block) int {
	n := 0
	for _, b := range blocks {
		n += copy(dst[n:n+b.Size], src[b.Offset:b.Offset+b.Size])
	}
	return n
}

// ScatterBlocks scatters the dense prefix of src into dst as described by
// blocks (the unpack half), returning the number of bytes written.
func ScatterBlocks(dst, src []byte, blocks []Block) int {
	n := 0
	for _, b := range blocks {
		n += copy(dst[b.Offset:b.Offset+b.Size], src[n:n+b.Size])
	}
	return n
}
