package datatype

import "testing"

// FuzzVectorFlatten checks the flattening invariants for arbitrary
// non-overlapping vector shapes: sorted, disjoint, size-preserving
// blocks, and gather/scatter round-tripping.
func FuzzVectorFlatten(f *testing.F) {
	f.Add(uint8(3), uint8(2), uint8(1), uint8(2))
	f.Add(uint8(0), uint8(0), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, countRaw, blockRaw, gapRaw, countsRaw uint8) {
		count := int(countRaw % 16)
		blockLen := int(blockRaw % 16)
		stride := blockLen + int(gapRaw%16) // >= blockLen: no overlap
		n := int(countsRaw%4) + 1
		v := Vector(count, blockLen, stride, Int32)
		blocks := FlattenTransfer(v, n, 0)
		sum, prevEnd := 0, -1
		for _, b := range blocks {
			if b.Size <= 0 || b.Offset < 0 || b.Offset <= prevEnd {
				t.Fatalf("bad block %+v after end %d", b, prevEnd)
			}
			prevEnd = b.Offset + b.Size
			sum += b.Size
		}
		if want := TransferSize(v, n); sum != want {
			t.Fatalf("blocks sum %d, want %d", sum, want)
		}
		if prevEnd <= 0 {
			return
		}
		// Round trip.
		src := make([]byte, prevEnd)
		for i := range src {
			src[i] = byte(i*7 + 1)
		}
		packed := make([]byte, sum)
		CopyBlocks(packed, src, blocks)
		out := make([]byte, prevEnd)
		ScatterBlocks(out, packed, blocks)
		for _, b := range blocks {
			for i := b.Offset; i < b.Offset+b.Size; i++ {
				if out[i] != src[i] {
					t.Fatalf("byte %d: %d vs %d", i, out[i], src[i])
				}
			}
		}
	})
}
