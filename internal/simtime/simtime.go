// Package simtime provides the hybrid virtual clock used throughout the
// CLaMPI reproduction.
//
// The paper measures wall-clock time on dedicated Cray XC nodes. This
// reproduction runs many simulated ranks on a single machine, so wall time
// of a whole run is meaningless. Instead each rank owns a Clock that mixes
// two time sources:
//
//   - Advance(d): analytically modelled costs (network latency, modelled
//     compute) move the clock forward without consuming real time.
//   - Charge(f): locally executed work whose cost is the point of the paper
//     (cache lookup, eviction, memory copies) is measured with the real
//     monotonic clock and added to the virtual clock.
//
// The result is a per-rank timeline in which the *measured* cache-management
// overheads of this implementation compose with *modelled* network delays,
// which is exactly the trade-off CLaMPI navigates.
//
// Invariant (enforced by internal/analysis/simclock): this package is
// the only place allowed to sample the wall clock (time.Now/time.Since
// inside Charge, and its calibration tests). Everywhere else latency
// flows through Clock, keeping runs deterministic and reproducible.
package simtime

import "time"

// Duration is a virtual duration in nanoseconds. It is kept as a separate
// type from time.Duration to make accidental mixing of real and virtual
// time a compile error in most code paths.
type Duration int64

// Common virtual durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// FromReal converts a real duration to a virtual one (1:1 in nanoseconds).
func FromReal(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Real converts a virtual duration to a time.Duration (1:1 in nanoseconds).
func (d Duration) Real() time.Duration { return time.Duration(d) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// String formats the duration using time.Duration formatting rules.
func (d Duration) String() string { return time.Duration(d).String() }

// Clock is a single rank's virtual clock. A Clock is not safe for
// concurrent use: each rank goroutine owns exactly one Clock.
type Clock struct {
	now Duration

	// measured accumulates only the Charge()d (real, CPU-busy) part of
	// the timeline. The difference now-measured is the modelled part;
	// benchmarks use the split to compute communication/computation
	// overlap (paper Fig. 8).
	measured Duration

	// scale multiplies real measured durations before they are added to
	// the virtual clock. It defaults to 1 and exists for calibration
	// tests; production code never changes it.
	scale float64
}

// NewClock returns a clock positioned at virtual time zero.
func NewClock() *Clock { return &Clock{scale: 1} }

// Now returns the current virtual time since the clock's origin.
func (c *Clock) Now() Duration { return c.now }

// Measured returns the portion of virtual time accumulated through Charge,
// i.e. the CPU-busy time of this rank.
func (c *Clock) Measured() Duration { return c.measured }

// Modelled returns the portion of virtual time accumulated through Advance.
func (c *Clock) Modelled() Duration { return c.now - c.measured }

// Advance moves the clock forward by a modelled duration. Negative
// durations are ignored so latency models cannot move time backwards.
func (c *Clock) Advance(d Duration) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock forward to t if t is in the future. It is used
// by synchronization primitives (barriers, flushes) that align a rank with
// the latest participant.
func (c *Clock) AdvanceTo(t Duration) {
	if t > c.now {
		c.now = t
	}
}

// Busy advances the clock by a modeled duration of CPU-busy work: unlike
// Advance, the time is attributed to the measured (busy) share, so
// overlap computations treat it as non-overlappable. Negative durations
// are ignored.
func (c *Clock) Busy(d Duration) {
	if d > 0 {
		c.now += d
		c.measured += d
	}
}

// Charge runs f, measures its real duration with the monotonic clock, and
// advances the virtual clock by that amount. It returns the measured
// duration so callers can attribute costs to phases (lookup, copy, ...).
func (c *Clock) Charge(f func()) Duration {
	start := time.Now()
	f()
	d := Duration(float64(time.Since(start).Nanoseconds()) * c.scale)
	if d < 0 {
		d = 0
	}
	c.now += d
	c.measured += d
	return d
}

// ChargeDuration adds an externally measured real duration to the clock.
func (c *Clock) ChargeDuration(real time.Duration) Duration {
	d := Duration(float64(real.Nanoseconds()) * c.scale)
	if d < 0 {
		d = 0
	}
	c.now += d
	c.measured += d
	return d
}

// SetScale adjusts the multiplier applied to measured durations. Intended
// for calibration experiments only.
func (c *Clock) SetScale(s float64) {
	if s > 0 {
		c.scale = s
	}
}

// Reset rewinds the clock to zero. Benchmarks reuse clocks across
// repetitions to avoid re-allocating rank state.
func (c *Clock) Reset() {
	c.now = 0
	c.measured = 0
}
