package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	if c.Measured() != 0 || c.Modelled() != 0 {
		t.Fatalf("new clock measured=%v modelled=%v, want 0/0", c.Measured(), c.Modelled())
	}
}

func TestAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(100)
	c.Advance(250)
	if got := c.Now(); got != 350 {
		t.Fatalf("Now() = %v, want 350", got)
	}
	if got := c.Modelled(); got != 350 {
		t.Fatalf("Modelled() = %v, want 350", got)
	}
	if got := c.Measured(); got != 0 {
		t.Fatalf("Measured() = %v, want 0", got)
	}
}

func TestAdvanceIgnoresNegative(t *testing.T) {
	c := NewClock()
	c.Advance(100)
	c.Advance(-50)
	if got := c.Now(); got != 100 {
		t.Fatalf("Now() = %v after negative advance, want 100", got)
	}
}

func TestAdvanceTo(t *testing.T) {
	c := NewClock()
	c.Advance(100)
	c.AdvanceTo(80) // in the past: no-op
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo past moved clock to %v", c.Now())
	}
	c.AdvanceTo(500)
	if c.Now() != 500 {
		t.Fatalf("AdvanceTo(500) left clock at %v", c.Now())
	}
}

func TestChargeMeasuresRealTime(t *testing.T) {
	c := NewClock()
	d := c.Charge(func() { time.Sleep(2 * time.Millisecond) })
	if d < FromReal(1*time.Millisecond) {
		t.Fatalf("Charge measured %v for a 2ms sleep", d)
	}
	if c.Now() != d {
		t.Fatalf("Now() = %v, want %v", c.Now(), d)
	}
	if c.Measured() != d {
		t.Fatalf("Measured() = %v, want %v", c.Measured(), d)
	}
}

func TestChargeDuration(t *testing.T) {
	c := NewClock()
	c.ChargeDuration(3 * time.Microsecond)
	if c.Now() != 3*Microsecond {
		t.Fatalf("Now() = %v, want 3µs", c.Now())
	}
	if c.Measured() != 3*Microsecond {
		t.Fatalf("Measured() = %v, want 3µs", c.Measured())
	}
}

func TestScale(t *testing.T) {
	c := NewClock()
	c.SetScale(2)
	c.ChargeDuration(time.Microsecond)
	if c.Now() != 2*Microsecond {
		t.Fatalf("scaled charge: Now() = %v, want 2µs", c.Now())
	}
	c.SetScale(0) // invalid, ignored
	c.ChargeDuration(time.Microsecond)
	if c.Now() != 4*Microsecond {
		t.Fatalf("scale reset on invalid SetScale: Now() = %v", c.Now())
	}
}

func TestReset(t *testing.T) {
	c := NewClock()
	c.Advance(10)
	c.ChargeDuration(time.Nanosecond)
	c.Reset()
	if c.Now() != 0 || c.Measured() != 0 {
		t.Fatalf("Reset left now=%v measured=%v", c.Now(), c.Measured())
	}
}

func TestSplitInvariant(t *testing.T) {
	// Measured + Modelled == Now must hold for any interleaving.
	f := func(steps []int16) bool {
		c := NewClock()
		for i, s := range steps {
			d := Duration(s)
			if i%2 == 0 {
				c.Advance(d)
			} else if d >= 0 {
				c.ChargeDuration(time.Duration(d))
			}
		}
		return c.Measured()+c.Modelled() == c.Now() && c.Measured() >= 0 && c.Modelled() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Nanosecond
	if d.Micros() != 1.5 {
		t.Fatalf("Micros() = %v, want 1.5", d.Micros())
	}
	if (2 * Second).Seconds() != 2 {
		t.Fatalf("Seconds() = %v, want 2", (2 * Second).Seconds())
	}
	if FromReal(time.Millisecond) != Millisecond {
		t.Fatalf("FromReal(1ms) = %v", FromReal(time.Millisecond))
	}
	if Millisecond.Real() != time.Millisecond {
		t.Fatalf("Real(1ms) = %v", Millisecond.Real())
	}
	if (90 * Nanosecond).String() != "90ns" {
		t.Fatalf("String() = %q", (90 * Nanosecond).String())
	}
}
