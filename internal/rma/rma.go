// Package rma defines the transport abstraction CLaMPI is layered on: the
// exact RMA contract the caching layer (internal/core), the getter shims
// (internal/getter) and the applications depend on, with the concrete
// transport behind it pluggable.
//
// The paper stacks CLaMPI on foMPI, but §III notes the design only needs
// three things from the layer below: (a) one-sided Get/Put data movement,
// (b) the epoch-closure event of the MPI-3 synchronization calls, and
// (c) window creation with info hints (see DESIGN.md §1). Window captures
// exactly that surface — nothing in the caching layer may reach past it.
// internal/mpi provides the first implementation (the simulated MPI-3
// runtime); additional backends (shared-memory segments, TCP endpoints)
// are pure additions behind these interfaces.
package rma

import (
	"errors"
	"fmt"

	"clampi/internal/datatype"
	"clampi/internal/simtime"
)

// Errors every backend returns for the corresponding misuse. They are
// defined here so layers above the transport can test for them without
// importing a concrete backend. The three canonical sentinels — ErrFreed,
// ErrOutOfRange, ErrNoEpoch — are what callers should test with
// errors.Is; the finer-grained values below them add detail while still
// matching their umbrella sentinel.
//
// Invariant (enforced by internal/analysis/sentinelerr): these values
// are matched with errors.Is, never ==, and wrapped only with %w — a
// direct comparison would miss every finer-grained sentinel wrapping
// its umbrella value.
var (
	// ErrFreed reports an operation on a freed window.
	ErrFreed = errors.New("rma: window has been freed")
	// ErrOutOfRange is the umbrella sentinel for accesses addressed
	// outside the world or the target region: both ErrRankRange and
	// ErrBounds match it under errors.Is.
	ErrOutOfRange = errors.New("rma: access out of range")
	// ErrNoEpoch reports an RMA call outside an access epoch.
	ErrNoEpoch = errors.New("rma: operation outside an access epoch")

	// ErrRankRange reports a target rank outside [0, Size). Matches
	// ErrOutOfRange.
	ErrRankRange = fmt.Errorf("%w: target rank outside the world", ErrOutOfRange)
	// ErrBounds reports an access outside the target's window region.
	// Matches ErrOutOfRange.
	ErrBounds = fmt.Errorf("%w: outside window bounds", ErrOutOfRange)
	// ErrShortBuf reports an origin buffer too small for the transfer.
	ErrShortBuf = errors.New("rma: origin buffer too small for transfer")
	// ErrDoneRequest reports a Wait on an already-completed request.
	ErrDoneRequest = errors.New("rma: request already completed")
	// ErrNoRequest reports a request-based operation that left no
	// pending operation to attach a request to.
	ErrNoRequest = errors.New("rma: no pending operation for request")

	// ErrFreedWin and ErrBadEpoch are the historical names of ErrFreed
	// and ErrNoEpoch, kept so existing errors.Is call sites keep
	// working; they are the same values.
	ErrFreedWin = ErrFreed
	ErrBadEpoch = ErrNoEpoch
)

// Transient-failure sentinels. Unlike the misuse family above — which
// reports caller bugs that retrying can never fix — these describe
// conditions of the transport itself: a lost or timed-out operation, or
// a payload that arrived damaged. Retrying the same call is legal and
// expected to eventually succeed; the resilience layer (retry policies,
// circuit breakers) keys exclusively on errors.Is(err, ErrTransient).
//
// ErrTransient is the umbrella: ErrTimeout and ErrCorrupt wrap it, so a
// single errors.Is test catches the whole family, while callers that
// care (timeout accounting, checksum statistics) can still distinguish
// the finer-grained values — the same two-level idiom as ErrOutOfRange.
var (
	// ErrTransient is the umbrella sentinel for recoverable transport
	// failures: the operation did not take effect and may be retried.
	ErrTransient = errors.New("rma: transient transport failure")
	// ErrTimeout reports an operation that exceeded its completion
	// deadline. Matches ErrTransient.
	ErrTimeout = fmt.Errorf("%w: operation timed out", ErrTransient)
	// ErrCorrupt reports a payload that failed integrity verification
	// after delivery. Matches ErrTransient (a refetch yields clean
	// data).
	ErrCorrupt = fmt.Errorf("%w: payload failed integrity check", ErrTransient)
)

// Info carries window-creation hints (the MPI_Info of the MPI backend).
// CLaMPI reads its operational mode from here (paper §III-A).
type Info map[string]string

// LockType selects shared or exclusive passive-target locks
// (MPI_LOCK_SHARED / MPI_LOCK_EXCLUSIVE).
type LockType int

const (
	// LockShared permits concurrent lock holders.
	LockShared LockType = iota
	// LockExclusive excludes all other holders.
	LockExclusive
)

func (t LockType) String() string {
	if t == LockExclusive {
		return "exclusive"
	}
	return "shared"
}

// Op is an accumulate reduction operator.
type Op int

const (
	// OpReplace overwrites the target elements (MPI_REPLACE).
	OpReplace Op = iota
	// OpSum adds to the target elements (MPI_SUM).
	OpSum
	// OpMax keeps the element-wise maximum (MPI_MAX).
	OpMax
	// OpMin keeps the element-wise minimum (MPI_MIN).
	OpMin
)

// EpochListener observes epoch closures on a window. CLaMPI registers one
// to trigger deferred copy-in and transparent-mode invalidation.
//
// The contract every backend must honour: the listener runs on the
// origin's goroutine, inside the completion call (Flush/Unlock/Fence/
// Complete), after the clock has advanced past all pending completions
// and before the epoch counter increments.
type EpochListener func(epoch int64)

// Request is the handle of one request-based operation (Rget/Rput).
type Request interface {
	// Wait blocks (in virtual time) until the operation completes.
	// Waiting twice returns ErrDoneRequest.
	Wait() error
	// Test reports whether the operation has completed by the origin's
	// current virtual time, never advancing the clock.
	Test() bool
}

// Endpoint is a rank's attachment to the transport: its identity in the
// world and the virtual clock its operations are accounted on. Backends
// typically expose richer per-rank handles (collectives, topology); the
// caching layer needs only this.
type Endpoint interface {
	// ID returns the rank id in [0, Size).
	ID() int
	// Size returns the number of ranks in the world.
	Size() int
	// Clock returns the rank's virtual clock.
	Clock() *simtime.Clock
}

// Window is one rank's handle on an RMA window: per-rank exposed byte
// regions, one-sided data movement, and the epoch structure CLaMPI keys
// on. All methods must be called from the owning rank's goroutine
// (origin-side state is private per MPI semantics); the backend is
// responsible for making cross-rank data movement safe under whatever
// execution model it runs.
type Window interface {
	// Endpoint returns the owning rank's transport endpoint.
	Endpoint() Endpoint
	// Info returns the window's creation hints.
	Info() Info
	// Local returns this rank's exposed region.
	Local() []byte
	// RegionSize returns the size of target's exposed region.
	RegionSize(target int) (int, error)
	// Epoch returns the number of epochs closed by this origin on this
	// window since creation.
	Epoch() int64
	// AddEpochListener registers f to run at every epoch closure by
	// this origin on this window.
	AddEpochListener(f EpochListener)

	// Get reads count elements of dtype from target's region at byte
	// displacement disp into dst (packed). dst may be consumed only
	// after the next completion call on the window — the weak-
	// consistency contract of paper §III, enforced at compile time by
	// internal/analysis/epochcheck.
	Get(dst []byte, dtype datatype.Datatype, count int, target, disp int) error
	// Put writes count elements of dtype from src (packed) into
	// target's region at byte displacement disp.
	Put(src []byte, dtype datatype.Datatype, count int, target, disp int) error
	// Rget is Get returning a completable request.
	Rget(dst []byte, dtype datatype.Datatype, count int, target, disp int) (Request, error)
	// Rput is Put returning a completable request.
	Rput(src []byte, dtype datatype.Datatype, count int, target, disp int) (Request, error)
	// Accumulate combines src into target's region with op.
	Accumulate(src []byte, dtype datatype.Datatype, count int, target, disp int, op Op) error

	// Lock opens a passive-target access epoch towards target with a
	// shared lock; LockWithType selects the lock type explicitly.
	Lock(target int) error
	LockWithType(typ LockType, target int) error
	// LockAll opens a passive-target epoch towards all ranks.
	LockAll() error
	// Unlock completes operations towards target and ends the epoch.
	Unlock(target int) error
	// UnlockAll ends a lock-all epoch.
	UnlockAll() error
	// Flush completes outstanding operations towards target without
	// releasing the lock; it is an epoch-closure event.
	Flush(target int) error
	// FlushAll completes all outstanding operations and closes the
	// epoch.
	FlushAll() error
	// Fence is the active-target collective synchronization.
	Fence() error
	// Post/Start/Complete/Wait implement generalized active-target
	// synchronization; Complete is an epoch-closure event.
	Post(origins []int) error
	Start(targets []int) error
	Complete() error
	Wait() error
	// Free collectively releases the window.
	Free() error
}

// GetOp is one contiguous byte-range get of a batched issue: len(Dst)
// bytes from Target's region at byte displacement Disp. The Dst buffers
// follow the same epoch contract as Window.Get — undefined until the
// next completion call (enforced by internal/analysis/epochcheck).
type GetOp struct {
	Dst    []byte
	Target int
	Disp   int
}

// DeadlineWindow is the optional deadline extension of Window: backends
// whose operations occupy real wall time (socket transports) implement
// it so callers can bound one operation's duration. The duration is
// virtual (simtime) like every other timing value above the transport;
// the backend maps it onto its own wall clock (1 virtual ns = 1 wall ns
// at the default clock scale) — the one sanctioned place where the
// RetryPolicy.Deadline budget becomes a socket deadline. Operations that
// exceed it fail with ErrTimeout, which the retry policies already
// classify as transient.
//
// Layers probe for it with a type assertion, exactly like BatchWindow:
// on backends whose ops consume no wall time (the simulated runtime) the
// interface is absent and the virtual-time deadline check in the retry
// loop remains the only enforcement.
type DeadlineWindow interface {
	Window
	// SetOpDeadline bounds every subsequent operation on this window to
	// d of (virtual) time; zero or negative clears the bound. It applies
	// per operation, not cumulatively.
	SetOpDeadline(d simtime.Duration)
}

// BatchWindow is the optional vectorized extension of Window: backends
// that can validate and dispatch many contiguous gets in one call
// implement it, and the caching layer issues its coalesced miss ranges
// through it (one network message per op — callers coalesce before
// issuing). Layers above probe for it with a type assertion and fall
// back to per-op Window.Get when absent, so implementing it is purely a
// host-side-overhead optimization.
type BatchWindow interface {
	Window
	// GetBatch issues every op in ops. Each op is validated and charged
	// exactly like an individual Get(op.Dst, Byte, len(op.Dst), op.Target,
	// op.Disp); on the first failing op the error is returned and the
	// remaining ops are not issued. Backends that can identify the
	// failing op wrap the cause in a *BatchError so callers can resume
	// after the already-delivered prefix.
	GetBatch(ops []GetOp) error
}
