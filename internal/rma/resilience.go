package rma

// Resilience vocabulary shared by every layer that retries, verifies or
// degrades around transient transport failures (DESIGN.md §11). It lives
// here — not in the caching layer — because both internal/getter (retry
// shim over any Getter) and internal/core (retry + circuit breaker on
// the fill path) need the same policy type, and internal/mpi needs the
// same checksum function the verifiers compare against.

import (
	"fmt"
	"math/rand"

	"clampi/internal/simtime"
)

// RetryPolicy bounds how a caller re-issues an operation that failed
// with ErrTransient. All timing is virtual (internal/simtime): backoffs
// advance the origin's clock, never the wall clock, so a retried run is
// exactly as deterministic as a fault-free one.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included);
	// <= 0 means retry until the deadline or budget stops it.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; zero selects
	// DefaultBaseBackoff.
	BaseBackoff simtime.Duration
	// MaxBackoff caps the exponential growth; zero selects
	// DefaultMaxBackoff.
	MaxBackoff simtime.Duration
	// Multiplier is the exponential growth factor; values <= 1 select
	// DefaultMultiplier.
	Multiplier float64
	// JitterFrac spreads each backoff uniformly over
	// [d·(1-J), d·(1+J)] using the caller's deterministic RNG; zero
	// disables jitter, values outside [0, 1] are clamped.
	JitterFrac float64
	// Deadline bounds the virtual time spent on one operation including
	// its backoffs; zero means no per-op deadline.
	Deadline simtime.Duration
	// Budget bounds the total retries the policy's owner may spend over
	// its lifetime (a coarse brake against retry storms); zero means
	// unlimited.
	Budget int64
}

// Defaults for RetryPolicy fields left zero.
const (
	DefaultBaseBackoff = 1 * simtime.Microsecond
	DefaultMaxBackoff  = 100 * simtime.Microsecond
	DefaultMultiplier  = 2.0
)

// DefaultRetryPolicy returns the policy the drivers use: four attempts,
// exponential 1 µs → 100 µs backoff with 20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: DefaultBaseBackoff,
		MaxBackoff:  DefaultMaxBackoff,
		Multiplier:  DefaultMultiplier,
		JitterFrac:  0.2,
	}
}

// Unlimited reports whether the policy retries until stopped by its
// deadline or budget rather than by an attempt count.
func (p *RetryPolicy) Unlimited() bool { return p.MaxAttempts <= 0 }

// Backoff returns the virtual-time delay before retry number attempt
// (1 = the delay after the first failure). rng supplies deterministic
// jitter; a nil rng disables jitter regardless of JitterFrac.
func (p *RetryPolicy) Backoff(attempt int, rng *rand.Rand) simtime.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = DefaultBaseBackoff
	}
	ceil := p.MaxBackoff
	if ceil <= 0 {
		ceil = DefaultMaxBackoff
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = DefaultMultiplier
	}
	d := float64(base)
	for i := 1; i < attempt && d < float64(ceil); i++ {
		d *= mult
	}
	if d > float64(ceil) {
		d = float64(ceil)
	}
	if rng != nil && p.JitterFrac > 0 {
		j := p.JitterFrac
		if j > 1 {
			j = 1
		}
		d *= 1 + j*(2*rng.Float64()-1)
	}
	if d < 1 {
		d = 1
	}
	return simtime.Duration(d)
}

// BatchError reports which op of a GetBatch call failed. The already-
// issued prefix ops[:Op] was delivered normally; ops[Op:] was not
// issued. It wraps the underlying cause, so errors.Is sees through it
// (a transient batch failure still matches ErrTransient).
type BatchError struct {
	// Op indexes the failing op in the submitted slice.
	Op int
	// Err is the failure of that op.
	Err error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("rma: batch op %d: %v", e.Op, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *BatchError) Unwrap() error { return e.Err }

// IntegrityWindow is the optional attestation extension of Window:
// backends that can report a ground-truth checksum of a target range —
// computed target-side, over the authoritative region bytes — implement
// it, and fill verifiers compare the delivered payload against it to
// detect silent corruption. Layers probe for it with a type assertion;
// verification is skipped when the backend cannot attest.
type IntegrityWindow interface {
	Window
	// Checksum returns ChecksumBytes of target's region bytes
	// [disp, disp+size). The attestation channel is assumed reliable
	// (in a real deployment it would be a small, CRC-protected control
	// message).
	Checksum(target, disp, size int) (uint64, error)
}

// ChecksumBytes is the FNV-1a 64-bit hash both sides of an integrity
// check compute: backends over their authoritative region bytes,
// verifiers over the delivered payload.
func ChecksumBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
