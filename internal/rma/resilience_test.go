package rma

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"clampi/internal/simtime"
)

func TestTransientSentinelFamily(t *testing.T) {
	for _, err := range []error{ErrTimeout, ErrCorrupt} {
		if !errors.Is(err, ErrTransient) {
			t.Errorf("%v does not match ErrTransient", err)
		}
	}
	wrapped := fmt.Errorf("attempt 3: %w", ErrTimeout)
	if !errors.Is(wrapped, ErrTimeout) || !errors.Is(wrapped, ErrTransient) {
		t.Error("wrapping breaks sentinel matching")
	}
	if errors.Is(ErrTransient, ErrTimeout) {
		t.Error("umbrella must not match its members")
	}
	// The misuse family stays disjoint: retry loops must never spin on it.
	if errors.Is(ErrShortBuf, ErrTransient) {
		t.Error("ErrShortBuf matches ErrTransient")
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := DefaultRetryPolicy()
	a := rand.New(rand.NewSource(9))
	b := rand.New(rand.NewSource(9))
	for attempt := 1; attempt <= 12; attempt++ {
		da := p.Backoff(attempt, a)
		db := p.Backoff(attempt, b)
		if da != db {
			t.Fatalf("attempt %d: same seed gave %v vs %v", attempt, da, db)
		}
		lo := simtime.Duration(float64(p.BaseBackoff) * (1 - p.JitterFrac))
		hi := simtime.Duration(float64(p.MaxBackoff) * (1 + p.JitterFrac))
		if da < lo || da > hi {
			t.Errorf("attempt %d backoff %v outside [%v, %v]", attempt, da, lo, hi)
		}
	}
	// Growth saturates at MaxBackoff (jitter off for exact values).
	exact := RetryPolicy{BaseBackoff: simtime.Microsecond, MaxBackoff: 8 * simtime.Microsecond, Multiplier: 2}
	want := []simtime.Duration{1000, 2000, 4000, 8000, 8000, 8000}
	for i, w := range want {
		if got := exact.Backoff(i+1, nil); got != w {
			t.Errorf("attempt %d = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffDefaultsAndFloor(t *testing.T) {
	var zero RetryPolicy
	if got := zero.Backoff(1, nil); got != DefaultBaseBackoff {
		t.Errorf("zero policy first backoff = %v, want %v", got, DefaultBaseBackoff)
	}
	if got := zero.Backoff(100, nil); got != DefaultMaxBackoff {
		t.Errorf("zero policy saturated backoff = %v, want %v", got, DefaultMaxBackoff)
	}
	// The floor: a backoff is always at least one virtual nanosecond, so
	// retry loops always make forward progress in virtual time.
	tiny := RetryPolicy{BaseBackoff: 1, MaxBackoff: 1, JitterFrac: 1}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		if got := tiny.Backoff(1, rng); got < 1 {
			t.Fatalf("backoff %v below the 1 ns floor", got)
		}
	}
	if !zero.Unlimited() {
		t.Error("zero MaxAttempts must mean unlimited")
	}
	if (&RetryPolicy{MaxAttempts: 1}).Unlimited() {
		t.Error("MaxAttempts=1 reported unlimited")
	}
}

func TestBatchErrorWrapping(t *testing.T) {
	be := &BatchError{Op: 3, Err: fmt.Errorf("%w: lost", ErrTransient)}
	if !errors.Is(be, ErrTransient) {
		t.Error("BatchError hides its transient cause")
	}
	var got *BatchError
	if !errors.As(fmt.Errorf("batch: %w", be), &got) || got.Op != 3 {
		t.Error("errors.As cannot recover the failing op through a wrap")
	}
}

func TestChecksumBytes(t *testing.T) {
	if ChecksumBytes(nil) != ChecksumBytes([]byte{}) {
		t.Error("nil and empty slices disagree")
	}
	a := []byte("transparent caching")
	if ChecksumBytes(a) != ChecksumBytes(a) {
		t.Error("not deterministic")
	}
	b := append([]byte(nil), a...)
	b[4] ^= 0x01
	if ChecksumBytes(a) == ChecksumBytes(b) {
		t.Error("single-bit flip not detected")
	}
	// FNV-1a, 64-bit: fixed reference value guards the parameters the
	// mpi attestation and the core verifier must both use.
	if got := ChecksumBytes([]byte("a")); got != 0xaf63dc4c8601ec8c {
		t.Errorf("ChecksumBytes(\"a\") = %#x, want FNV-1a 0xaf63dc4c8601ec8c", got)
	}
}
