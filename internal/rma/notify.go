package rma

import (
	"clampi/internal/datatype"
	"clampi/internal/notify"
)

// NotifyWindow is the optional notifiable-RMA extension of Window (the
// UNR model, DESIGN.md §16): PutNotify is a Put that additionally
// enqueues a notification — origin, target, span, tag, and the written
// bytes when small — at every subscribed rank of the window, so caching
// readers can invalidate (or patch) exactly the spans a writer changed
// instead of blanket-invalidating at epoch closure.
//
// Layers probe for it with a type assertion, exactly like BatchWindow,
// and fall back to epoch-granular coherence when the backend cannot
// deliver notifications. Delivery is bounded and lossy-with-a-flag:
// each subscriber owns a bounded notify.Queue; a shed or lost
// notification surfaces as an overflow flag or a sequence gap, which
// consumers must treat as "invalidate everything" — coherence degrades
// to the blanket behaviour, it is never silently lost.
//
// Like every Window method, the methods below are origin-side state and
// must be called from the owning rank's goroutine. Notification
// *delivery* is concurrent by nature (remote writers push into this
// rank's queue at any time); the queue absorbs that.
type NotifyWindow interface {
	Window
	// PutNotify writes count elements of dtype from src (packed) into
	// target's region at byte displacement disp — exactly like Put —
	// and enqueues a notification carrying tag at every subscribed
	// rank of the window except the origin itself.
	PutNotify(src []byte, dtype datatype.Datatype, count int, target, disp int, tag uint32) error
	// NotifyEnable subscribes the calling rank to notifications on
	// this window, creating its bounded queue (notify.DefaultCapacity
	// when capacity <= 0). Calling it again returns the same queue.
	NotifyEnable(capacity int) error
	// NotifyDepth returns the number of locally queued notifications:
	// one atomic load, cheap enough for a hit path to probe every
	// access. Zero before NotifyEnable.
	NotifyDepth() int
	// NotifyPoll drains up to len(buf) pending notifications in
	// delivery order and reports how many were written plus the
	// overflow flag (a shed delivery since the previous poll — the
	// consumer must invalidate conservatively). Backends that receive
	// notifications over a real transport pump it here, so a poll may
	// cost a round trip even when it returns zero.
	NotifyPoll(buf []notify.Notification) (n int, overflowed bool)
	// NotifyWait blocks until at least one notification is queued or
	// the window is freed (notify.ErrClosed). Serialized execution
	// modes release their run token while blocked, like any blocking
	// completion call.
	NotifyWait() error
	// NotifyLastSeq returns the highest delivery sequence number the
	// transport has assigned towards this rank (0 before the first
	// delivery) — the delivered-count register of the UNR model. Lost
	// and shed notifications still consume sequence numbers, so a
	// consumer that drained the queue empty yet trails this value has
	// provably missed deliveries: tail losses, which no in-queue gap
	// can reveal, are detected by comparing against it.
	NotifyLastSeq() uint64
}
