package rma

import "clampi/internal/simtime"

// Distance classes a LocalityWindow may report, mirroring the ordinals
// of netsim.Distance without importing it (rma is the portable
// transport contract; netsim is one backend's cost model). The wire
// backend maps measured per-target RTT bands onto the same scale.
const (
	// DistanceSameProcess is the initiator's own address space.
	DistanceSameProcess = 0
	// DistanceSameSocket is a target sharing the initiator's socket.
	DistanceSameSocket = 1
	// DistanceSameNode is a target on the same node, other socket.
	DistanceSameNode = 2
	// DistanceOtherNode is a target one network hop away.
	DistanceOtherNode = 3
	// DistanceOtherGroup is the farthest class (optical hop / WAN).
	DistanceOtherGroup = 4
	// NumDistanceClasses bounds the class ordinals; DistanceClass
	// results are clamped into [0, NumDistanceClasses).
	NumDistanceClasses = 5
)

// DistanceClassNames labels the distance classes 0..4 for metrics and
// reports, in ordinal order.
var DistanceClassNames = [NumDistanceClasses]string{
	"same_process", "same_socket", "same_node", "other_node", "other_group",
}

// LocalityWindow is the optional placement-awareness extension of
// Window: backends that know (or can measure) how far each target is
// implement it, and cost-aware layers use it to skip caching cheap
// fills, weight eviction victims by refill cost, and scale retry
// backoff with distance. Layers probe for it with a type assertion —
// exactly like IntegrityWindow — and fall back to locality-blind
// behaviour when the backend cannot tell targets apart.
type LocalityWindow interface {
	Window
	// DistanceClass reports how far target is from the initiator on
	// the Distance* scale above. Implementations must be cheap and
	// allocation-free: callers may consult the class on eviction scans.
	DistanceClass(target int) int
	// FillCost estimates the cost of fetching size bytes from target —
	// modelled (netsim LogGP latency) or measured (wire per-target RTT
	// EWMA). Like DistanceClass it must be cheap and allocation-free.
	FillCost(target, size int) simtime.Duration
}
