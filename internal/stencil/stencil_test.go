package stencil

import (
	"testing"

	"clampi/internal/mpi"
)

// referenceRun computes the same Jacobi evolution as Run in plain Go on
// one global grid — no windows, no caching, no decomposition — and
// folds per-rank checksums exactly like Combine. Any divergence between
// the distributed kernel and this oracle (a torn halo, a stale serve, a
// mis-published edge row) shows up as a checksum mismatch.
func referenceRun(cfg Config) uint64 {
	w := cfg.Cols
	rows := cfg.Ranks * cfg.Rows
	cur := make([]float64, (rows+2)*w)
	nxt := make([]float64, len(cur))
	pin := func(g []float64) {
		for cx := 1; cx < w-1; cx++ {
			g[w+cx] = sourceTemp
		}
	}
	pin(cur)
	for it := 0; it < cfg.Iters; it++ {
		relax(cur, nxt, rows, w)
		pin(nxt)
		cur, nxt = nxt, cur
	}
	ranks := make([]RankResult, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		// Rank r owns global rows r*Rows..(r+1)*Rows-1, which live at
		// grid rows 1+r*Rows onward; checksumOwned expects one leading
		// halo row.
		lo := r * cfg.Rows * w
		ranks[r] = RankResult{Rank: r, Checksum: checksumOwned(cur[lo:], cfg.Rows, w)}
	}
	return Combine(ranks).Checksum
}

func testConfig() Config {
	return Config{Ranks: 4, Rows: 8, Cols: 64, Iters: 24}
}

// TestStencilMatchesReference pins the distributed kernel to the
// single-grid oracle: every cell of every rank must be bit-identical to
// a plain sequential Jacobi, in both coherence modes and both write
// policies.
func TestStencilMatchesReference(t *testing.T) {
	cfg := testConfig()
	want := referenceRun(cfg)
	for _, tc := range []struct {
		name              string
		notify, writeBack bool
	}{
		{"blanket", false, false},
		{"notify", true, false},
		{"notify-writeback", true, true},
		{"blanket-writeback", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := cfg
			c.Notify = tc.notify
			c.WriteBack = tc.writeBack
			res, err := Run(c, mpi.FidelityMeasured)
			if err != nil {
				t.Fatal(err)
			}
			if res.Checksum != want {
				t.Fatalf("checksum %016x, reference %016x", res.Checksum, want)
			}
		})
	}
}

// TestStencilNotifyWin is the DESIGN.md §16 acceptance gate: with
// notification-driven coherence the workload's virtual communication
// time must beat the blanket epoch-invalidation baseline by at least
// 30%, while computing a bit-identical grid.
func TestStencilNotifyWin(t *testing.T) {
	cfg := testConfig()
	base, err := Run(cfg, mpi.FidelityMeasured)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Notify = true
	ntf, err := Run(cfg, mpi.FidelityMeasured)
	if err != nil {
		t.Fatal(err)
	}
	if base.Checksum != ntf.Checksum {
		t.Fatalf("modes diverged: blanket %016x, notify %016x", base.Checksum, ntf.Checksum)
	}
	win := 1 - float64(ntf.Virtual)/float64(base.Virtual)
	t.Logf("blanket %v, notify %v: win %.1f%% (hits %d/%d vs %d/%d, net bytes %d vs %d)",
		base.Virtual, ntf.Virtual, 100*win,
		ntf.Stats.FullHits, ntf.Stats.Gets, base.Stats.FullHits, base.Stats.Gets,
		ntf.Stats.BytesFromNetwork, base.Stats.BytesFromNetwork)
	if win < 0.30 {
		t.Fatalf("notification-driven coherence won only %.1f%%, want >= 30%%", 100*win)
	}
}

// TestStencilExecModesAgree checks the two simulator execution engines
// compute bit-identical grids: the fence-delimited BSP structure makes
// the result independent of goroutine scheduling.
func TestStencilExecModesAgree(t *testing.T) {
	for _, notify := range []bool{false, true} {
		cfg := testConfig()
		cfg.Notify = notify
		fid, err := Run(cfg, mpi.FidelityMeasured)
		if err != nil {
			t.Fatal(err)
		}
		thr, err := Run(cfg, mpi.Throughput)
		if err != nil {
			t.Fatal(err)
		}
		if fid.Checksum != thr.Checksum {
			t.Fatalf("notify=%v: FidelityMeasured %016x, Throughput %016x",
				notify, fid.Checksum, thr.Checksum)
		}
	}
}

// TestStencilCounters checks the workload actually exercises the paths
// it claims to: notifications flow and keep hits in notify mode, dirty
// spans stage and flush in write-back mode.
func TestStencilCounters(t *testing.T) {
	cfg := testConfig()
	cfg.Notify = true
	res, err := Run(cfg, mpi.FidelityMeasured)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Notifications == 0 {
		t.Error("no notifications drained")
	}
	if s.NotifyPatches == 0 && s.NotifyInvalidations == 0 {
		t.Error("notifications drained but none applied")
	}
	if s.FullHits == 0 {
		t.Error("no cache hits survived: targeted coherence is not keeping entries")
	}
	if res.MaxDepth == 0 {
		t.Error("queue depth gauge never rose above zero")
	}

	cfg.WriteBack = true
	res, err = Run(cfg, mpi.FidelityMeasured)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WriteBacks == 0 {
		t.Error("write-back mode staged no dirty spans")
	}
	if res.Stats.DirtyFlushes == 0 {
		t.Error("write-back mode flushed no dirty runs")
	}
}

// TestStencilValidate exercises the config guard rails.
func TestStencilValidate(t *testing.T) {
	for _, bad := range []Config{
		{Ranks: 0, Rows: 1, Cols: 3, Iters: 1},
		{Ranks: 1, Rows: 0, Cols: 3, Iters: 1},
		{Ranks: 1, Rows: 1, Cols: 2, Iters: 1},
		{Ranks: 1, Rows: 1, Cols: 3, Iters: 0},
	} {
		if _, err := Run(bad, mpi.FidelityMeasured); err == nil {
			t.Errorf("config %+v: want error, got nil", bad)
		}
	}
}
