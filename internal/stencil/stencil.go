// Package stencil implements a 2-D Jacobi halo-exchange workload over
// cached RMA windows — the notifiable-RMA evaluation kernel of
// DESIGN.md §16.
//
// The grid is decomposed 1-D by rows: each rank owns Rows×Cols float64
// cells plus one halo row above and below. A rank's window region holds
// only its two edge rows (the rows neighbours read): the top edge at
// displacement 0 and the bottom edge at displacement rowBytes. Every
// iteration is fence-delimited BSP: read both neighbour halos through
// the cache, fence, relax with the 5-point Jacobi operator, publish the
// edge rows that changed, fence.
//
// The publish step compares each freshly encoded edge row byte-for-byte
// against the copy last written to the window and skips the write when
// they are identical. That skip is exact — it changes no value any rank
// ever computes — but it is what separates the two coherence modes:
// heat from the fixed source row on rank 0 advances at most one row per
// iteration, so edge rows far from the wavefront stay bit-identical for
// many iterations. With Notify set, the cache drains notifications and
// keeps unchanged halos as hits (and patches changed ones from the
// notification payload); without it, Transparent mode invalidates
// everything at every fence and re-fetches both halos every iteration.
// Both modes compute bit-identical grids; only the virtual
// communication time differs.
package stencil

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"clampi/internal/core"
	"clampi/internal/datatype"
	"clampi/internal/mpi"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// sourceTemp is the fixed Dirichlet temperature of the hot row (the
// first owned row of rank 0).
const sourceTemp = 100.0

// cellBytes is the wire size of one float64 cell.
const cellBytes = 8

// Config describes one stencil run.
type Config struct {
	// Ranks is the number of ranks in the 1-D row decomposition.
	Ranks int
	// Rows is the number of owned grid rows per rank.
	Rows int
	// Cols is the grid width in cells; a row is Cols*8 bytes on the
	// wire.
	Cols int
	// Iters is the number of Jacobi iterations.
	Iters int
	// Notify selects notification-driven targeted coherence
	// (core.Params.NotifyTargeted); false runs the blanket
	// epoch-invalidation Transparent baseline.
	Notify bool
	// WriteBack stages edge-row publishes as dirty spans and flushes
	// them coalesced at the closing fence instead of writing through.
	WriteBack bool
	// CacheBytes overrides the cache capacity (0 keeps the core
	// default).
	CacheBytes int
	// Wrap, when non-nil, decorates each rank's window before the
	// caching layer attaches — the chaos driver's fault-injection hook.
	// Run applies it; RunRank callers wrap the window themselves.
	Wrap func(rma.Window) rma.Window
	// Resilience, when non-nil, supplies the parameter base (retry
	// policy, breaker, fill verification) the cache is built from; the
	// mode, capacity and notify/write-back switches of this Config
	// still apply on top.
	Resilience *core.Params
}

func (cfg Config) validate() error {
	switch {
	case cfg.Ranks < 1:
		return fmt.Errorf("stencil: Ranks must be >= 1, got %d", cfg.Ranks)
	case cfg.Rows < 1:
		return fmt.Errorf("stencil: Rows must be >= 1, got %d", cfg.Rows)
	case cfg.Cols < 3:
		return fmt.Errorf("stencil: Cols must be >= 3, got %d", cfg.Cols)
	case cfg.Iters < 1:
		return fmt.Errorf("stencil: Iters must be >= 1, got %d", cfg.Iters)
	}
	return nil
}

// RowBytes is the wire size of one edge row under cfg.
func (cfg Config) RowBytes() int { return cfg.Cols * cellBytes }

// RegionBytes is the window region size each rank must expose: the two
// edge rows.
func (cfg Config) RegionBytes() int { return 2 * cfg.RowBytes() }

// RankResult is one rank's outcome.
type RankResult struct {
	Rank int
	// Checksum is FNV-1a over the rank's owned rows after the final
	// iteration (row-major, little-endian float64 bits).
	Checksum uint64
	// Virtual is the rank's virtual-clock advance over the run — the
	// modelled communication/management time, since compute is not
	// charged.
	Virtual simtime.Duration
	// Stats is the rank's cache counter snapshot.
	Stats core.Stats
	// MaxDepth is the deepest notification queue observed at any
	// iteration boundary.
	MaxDepth int
}

// Result aggregates a whole run.
type Result struct {
	// Checksum folds the per-rank checksums in rank order; two runs
	// agree iff every rank's grid is bit-identical.
	Checksum uint64
	// Virtual is the slowest rank's clock advance (BSP makespan).
	Virtual simtime.Duration
	// Stats sums all ranks' cache counters.
	Stats core.Stats
	// MaxDepth is the deepest notification queue seen on any rank.
	MaxDepth int
	// Ranks holds the per-rank results in rank order.
	Ranks []RankResult
}

// Combine folds per-rank results (in rank order) into a Result. It is
// exported so transport harnesses that drive RunRank directly (the wire
// tests) aggregate exactly like Run.
func Combine(ranks []RankResult) Result {
	h := fnv.New64a()
	var buf [8]byte
	out := Result{Ranks: ranks}
	for _, rr := range ranks {
		binary.LittleEndian.PutUint64(buf[:], rr.Checksum)
		h.Write(buf[:])
		if rr.Virtual > out.Virtual {
			out.Virtual = rr.Virtual
		}
		if rr.MaxDepth > out.MaxDepth {
			out.MaxDepth = rr.MaxDepth
		}
		out.Stats = out.Stats.Add(rr.Stats)
	}
	out.Checksum = h.Sum64()
	return out
}

// Run executes the workload on the simulated transport: cfg.Ranks
// simulated ranks, each exposing its edge rows through a window and
// running RunRank.
func Run(cfg Config, mode mpi.ExecMode) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	results := make([]RankResult, cfg.Ranks)
	var mu sync.Mutex
	err := mpi.Run(cfg.Ranks, mpi.Config{Mode: mode}, func(r *mpi.Rank) error {
		region := make([]byte, cfg.RegionBytes())
		var win rma.Window = r.WinCreate(region, nil)
		defer win.Free()
		if cfg.Wrap != nil {
			win = cfg.Wrap(win)
		}
		res, err := RunRank(win, r.ID(), cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		results[r.ID()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return Combine(results), nil
}

// RunRank runs one rank's share of the workload over win, which must
// expose RegionBytes() bytes at every rank and synchronize with Fence.
// It is transport-agnostic: the simulated runtime and the wire client
// both drive it.
func RunRank(win rma.Window, rank int, cfg Config) (RankResult, error) {
	if err := cfg.validate(); err != nil {
		return RankResult{}, err
	}
	clock := win.Endpoint().Clock()
	v0 := clock.Now()

	params := core.Params{}
	if cfg.Resilience != nil {
		params = *cfg.Resilience
	}
	params.Mode = core.Transparent
	params.NotifyTargeted = cfg.Notify
	params.WriteBack = cfg.WriteBack
	if cfg.CacheBytes > 0 {
		params.StorageBytes = cfg.CacheBytes
	}
	c, err := core.New(win, params)
	if err != nil {
		return RankResult{}, err
	}

	w := cfg.Cols
	rowBytes := cfg.RowBytes()
	// Row 0 is the top halo, rows 1..Rows are owned, row Rows+1 is the
	// bottom halo. Everything starts at zero; the window region is zero
	// too, so the first publish only writes rows that became non-zero.
	cur := make([]float64, (cfg.Rows+2)*w)
	nxt := make([]float64, len(cur))
	if rank == 0 {
		for cx := 1; cx < w-1; cx++ {
			cur[w+cx] = sourceTemp
		}
	}

	topBuf := make([]byte, rowBytes)
	botBuf := make([]byte, rowBytes)
	lastTop := make([]byte, rowBytes) // last bytes published at disp 0
	lastBot := make([]byte, rowBytes) // last bytes published at disp rowBytes
	haloT := make([]byte, rowBytes)
	haloB := make([]byte, rowBytes)

	put := func(src []byte, disp int, tag uint32) error {
		if cfg.Notify {
			return c.PutNotify(src, datatype.Byte, rowBytes, rank, disp, tag)
		}
		return c.Put(src, datatype.Byte, rowBytes, rank, disp)
	}
	// publish writes the edge rows whose bytes changed since the last
	// publish — an exact skip: unchanged rows are bit-identical, so not
	// re-writing them is invisible to every reader.
	publish := func(tag uint32) error {
		encodeRow(topBuf, cur[w:2*w])
		encodeRow(botBuf, cur[cfg.Rows*w:(cfg.Rows+1)*w])
		if !bytes.Equal(topBuf, lastTop) {
			if err := put(topBuf, 0, tag); err != nil {
				return err
			}
			copy(lastTop, topBuf)
		}
		if !bytes.Equal(botBuf, lastBot) {
			if err := put(botBuf, rowBytes, tag); err != nil {
				return err
			}
			copy(lastBot, botBuf)
		}
		return nil
	}

	if err := win.Fence(); err != nil { // open the first access epoch
		return RankResult{}, err
	}
	if err := publish(0); err != nil {
		return RankResult{}, err
	}
	if err := win.Fence(); err != nil { // initial edges delivered
		return RankResult{}, err
	}

	maxDepth := 0
	for it := 1; it <= cfg.Iters; it++ {
		if d := c.NotifyQueueDepth(); d > maxDepth {
			maxDepth = d
		}
		// Halo reads through the cache: the neighbour above publishes
		// its bottom edge at disp rowBytes, the one below its top edge
		// at disp 0.
		if rank > 0 {
			if err := c.Get(haloT, datatype.Byte, rowBytes, rank-1, rowBytes); err != nil {
				return RankResult{}, err
			}
		}
		if rank < cfg.Ranks-1 {
			if err := c.Get(haloB, datatype.Byte, rowBytes, rank+1, 0); err != nil {
				return RankResult{}, err
			}
		}
		if err := win.Fence(); err != nil { // reads complete
			return RankResult{}, err
		}
		if rank > 0 {
			decodeRow(cur[:w], haloT)
		}
		if rank < cfg.Ranks-1 {
			decodeRow(cur[(cfg.Rows+1)*w:], haloB)
		}

		relax(cur, nxt, cfg.Rows, w)
		if rank == 0 {
			// Dirichlet source: the first owned row is pinned.
			for cx := 1; cx < w-1; cx++ {
				nxt[w+cx] = sourceTemp
			}
		}
		cur, nxt = nxt, cur

		if err := publish(uint32(it)); err != nil {
			return RankResult{}, err
		}
		if err := win.Fence(); err != nil { // writes delivered
			return RankResult{}, err
		}
	}

	return RankResult{
		Rank:     rank,
		Checksum: checksumOwned(cur, cfg.Rows, w),
		Virtual:  clock.Now() - v0,
		Stats:    c.Stats(),
		MaxDepth: maxDepth,
	}, nil
}

// relax applies the 5-point Jacobi operator to the owned rows. Side
// walls (columns 0 and Cols-1) are Dirichlet zero; the global top and
// bottom walls arrive as permanently zero halo rows on the outermost
// ranks.
func relax(cur, nxt []float64, rows, w int) {
	for r := 1; r <= rows; r++ {
		base := r * w
		nxt[base] = 0
		nxt[base+w-1] = 0
		for cx := 1; cx < w-1; cx++ {
			i := base + cx
			nxt[i] = 0.25 * (cur[i-w] + cur[i+w] + cur[i-1] + cur[i+1])
		}
	}
}

// encodeRow serializes one row of cells as little-endian float64 bits —
// the window byte format.
func encodeRow(dst []byte, row []float64) {
	for i, v := range row {
		binary.LittleEndian.PutUint64(dst[i*cellBytes:], math.Float64bits(v))
	}
}

// decodeRow is the inverse of encodeRow.
func decodeRow(dst []float64, src []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*cellBytes:]))
	}
}

// checksumOwned hashes the owned rows (row-major, little-endian bits).
func checksumOwned(grid []float64, rows, w int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for r := 1; r <= rows; r++ {
		for cx := 0; cx < w; cx++ {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(grid[r*w+cx]))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}
