// Package netsim models the interconnect of a Cray Cascade (XC) class
// system for the CLaMPI reproduction.
//
// The paper's Fig. 1 reports RMA get latency on Piz Daint for several
// process/node mappings, spanning from <100 ns for a local DRAM access to
// 2-3 µs for inter-node accesses. CLaMPI's benefit derives entirely from
// that gap, so this package reproduces it with a LogGP-style analytic
// model: latency(size, distance) = L(distance) + o + size/B(distance).
//
// The model is deliberately simple — no congestion, no topology routing —
// because CLaMPI is a single-initiator cache layered above MPI: its
// behaviour depends on the *magnitude* of remote latencies, not on
// network-internal dynamics.
package netsim

import (
	"fmt"

	"clampi/internal/simtime"
)

// Distance classifies how far apart the initiator and the target of an RMA
// operation are placed. The classes correspond to the process/node mappings
// of the paper's Fig. 1.
type Distance int

const (
	// SameProcess models a window access that resolves within the
	// initiator's own address space (MPI self-communication).
	SameProcess Distance = iota
	// SameSocket: target rank on the same CPU socket (shared L3).
	SameSocket
	// SameNode: target rank on the same node, different socket.
	SameNode
	// OtherNode: target on a different node of the same electrical
	// group (one Aries hop).
	OtherNode
	// OtherGroup: target in a different Dragonfly group (optical hop).
	OtherGroup
	numDistances
)

// String returns the mapping label used in the paper's Fig. 1 legend.
func (d Distance) String() string {
	switch d {
	case SameProcess:
		return "same-process"
	case SameSocket:
		return "same-socket"
	case SameNode:
		return "same-node"
	case OtherNode:
		return "other-node"
	case OtherGroup:
		return "other-group"
	default:
		return fmt.Sprintf("distance(%d)", int(d))
	}
}

// Distances lists all modelled distance classes from nearest to farthest.
func Distances() []Distance {
	return []Distance{SameProcess, SameSocket, SameNode, OtherNode, OtherGroup}
}

// Params holds the LogGP-style parameters of one distance class.
type Params struct {
	// Base is the zero-byte one-way latency L.
	Base simtime.Duration
	// Overhead is the CPU overhead o of issuing one operation; it is
	// the part of the latency that cannot be overlapped with
	// computation (paper Fig. 8 reports foMPI overlapping up to 85%).
	Overhead simtime.Duration
	// BytesPerSecond is the asymptotic bandwidth 1/G.
	BytesPerSecond float64
	// Gap is LogGP's g: the minimum interval between consecutive
	// message injections into the network (the reciprocal of the NIC's
	// message rate). Zero (the default) models an ideal NIC whose
	// pipelining is limited only by the issue overhead o; the Aries
	// default overhead of ~270 ns already approximates the measured
	// per-message cost, so g is left 0 unless an experiment sweeps it.
	Gap simtime.Duration
}

// Model maps distance classes to parameters. The zero value is unusable;
// construct with DefaultModel or NewModel.
type Model struct {
	params [numDistances]Params
}

// DefaultModel returns parameters calibrated against the paper's Fig. 1:
// ~90 ns local DRAM access, ~350-600 ns intra-node, ~1.8 µs one Aries hop,
// ~2.6 µs across groups, with ~10 GB/s per-link bandwidth (Aries class).
func DefaultModel() *Model {
	m := &Model{}
	m.params[SameProcess] = Params{Base: 90, Overhead: 30, BytesPerSecond: 25e9}
	m.params[SameSocket] = Params{Base: 350, Overhead: 60, BytesPerSecond: 18e9}
	m.params[SameNode] = Params{Base: 600, Overhead: 80, BytesPerSecond: 14e9}
	m.params[OtherNode] = Params{Base: 1800, Overhead: 270, BytesPerSecond: 10e9}
	m.params[OtherGroup] = Params{Base: 2600, Overhead: 300, BytesPerSecond: 9e9}
	return m
}

// NewModel builds a model from explicit per-distance parameters. Distances
// absent from the map inherit DefaultModel values.
func NewModel(overrides map[Distance]Params) *Model {
	m := DefaultModel()
	for d, p := range overrides {
		if d >= 0 && d < numDistances {
			m.params[d] = p
		}
	}
	return m
}

// Params returns the parameters for a distance class.
func (m *Model) Params(d Distance) Params {
	if d < 0 || d >= numDistances {
		d = OtherNode
	}
	return m.params[d]
}

// GetLatency returns the modelled end-to-end latency of an RMA get of size
// bytes at the given distance: the time from issuing the operation until
// the payload is available in the initiator's destination buffer.
func (m *Model) GetLatency(size int, d Distance) simtime.Duration {
	p := m.Params(d)
	if size < 0 {
		size = 0
	}
	transfer := simtime.Duration(float64(size) / p.BytesPerSecond * 1e9)
	return p.Base + p.Overhead + transfer
}

// Validate checks that the model is physically sensible: moving the
// target farther away must never make an operation cheaper. It verifies
// the sufficient (and, for the affine LogGP form, necessary) condition
// that Base+Overhead is non-decreasing and BytesPerSecond is
// non-increasing from SameProcess to OtherGroup — which implies
// GetLatency(size, d) is non-decreasing in d for every op size.
func (m *Model) Validate() error {
	for i := 1; i < int(numDistances); i++ {
		near, far := m.params[i-1], m.params[i]
		if far.Base+far.Overhead < near.Base+near.Overhead {
			return fmt.Errorf("netsim: base+overhead inverts between %s (%d ns) and %s (%d ns)",
				Distance(i-1), near.Base+near.Overhead, Distance(i), far.Base+far.Overhead)
		}
		if far.BytesPerSecond > near.BytesPerSecond {
			return fmt.Errorf("netsim: bandwidth inverts between %s (%.3g B/s) and %s (%.3g B/s)",
				Distance(i-1), near.BytesPerSecond, Distance(i), far.BytesPerSecond)
		}
	}
	return nil
}

// PutLatency returns the modelled latency of an RMA put. Puts complete
// remotely; the paper does not cache them, so the model simply mirrors the
// get cost (an RDMA write and read of equal size cost the same on Aries).
func (m *Model) PutLatency(size int, d Distance) simtime.Duration {
	return m.GetLatency(size, d)
}

// IssueOverhead returns the CPU-busy portion of an operation: the part of
// the latency the initiating process cannot overlap with computation.
func (m *Model) IssueOverhead(d Distance) simtime.Duration {
	return m.Params(d).Overhead
}

// Gap returns the minimum injection interval g for the distance class.
func (m *Model) Gap(d Distance) simtime.Duration {
	return m.Params(d).Gap
}

// Overlappable returns the fraction of the get latency that a perfectly
// pipelined initiator can hide behind computation (paper Fig. 8's foMPI
// reference curve): 1 - overhead/total.
func (m *Model) Overlappable(size int, d Distance) float64 {
	total := m.GetLatency(size, d)
	if total <= 0 {
		return 0
	}
	return 1 - float64(m.IssueOverhead(d))/float64(total)
}

// MapDistance derives a distance class from initiator and target global
// ranks under a regular mapping of ranksPerNode ranks per node and
// nodesPerGroup nodes per Dragonfly group. ranksPerNode <= 0 defaults to 1
// (the paper's default: one rank per node).
func MapDistance(initiator, target, ranksPerNode, nodesPerGroup int) Distance {
	if initiator == target {
		return SameProcess
	}
	if ranksPerNode <= 0 {
		ranksPerNode = 1
	}
	ni, nt := initiator/ranksPerNode, target/ranksPerNode
	if ni == nt {
		// Within a node: first half of the ranks on socket 0, second
		// half on socket 1 (two-socket XC40 nodes).
		half := (ranksPerNode + 1) / 2
		si, st := (initiator%ranksPerNode)/half, (target%ranksPerNode)/half
		if si == st {
			return SameSocket
		}
		return SameNode
	}
	if nodesPerGroup <= 0 {
		nodesPerGroup = 384 // Aries group size on Piz Daint
	}
	if ni/nodesPerGroup == nt/nodesPerGroup {
		return OtherNode
	}
	return OtherGroup
}

// MemcpyCost models the time of a local memory copy of size bytes,
// including a small fixed cost. It is used where real measurement is not
// possible (modelled application compute); the cache itself measures its
// copies for real.
func MemcpyCost(size int) simtime.Duration {
	const bytesPerSecond = 30e9 // single-core copy bandwidth, cache-warm
	const fixed = 20            // call + setup
	if size < 0 {
		size = 0
	}
	return fixed + simtime.Duration(float64(size)/bytesPerSecond*1e9)
}
