package netsim

import (
	"testing"
	"testing/quick"

	"clampi/internal/simtime"
)

func TestDefaultModelOrdering(t *testing.T) {
	// Fig. 1: latency strictly increases with distance for every size.
	m := DefaultModel()
	for _, size := range []int{0, 8, 1024, 65536} {
		prev := simtime.Duration(-1)
		for _, d := range Distances() {
			l := m.GetLatency(size, d)
			if l <= prev {
				t.Fatalf("size %d: latency(%v)=%v not > latency at previous distance %v", size, d, l, prev)
			}
			prev = l
		}
	}
}

func TestFig1Magnitudes(t *testing.T) {
	// The paper reports <100ns local DRAM and 2-3µs remote accesses for
	// small messages: three orders of magnitude.
	m := DefaultModel()
	local := m.GetLatency(8, SameProcess)
	remote := m.GetLatency(8, OtherGroup)
	if local > 200 {
		t.Fatalf("local 8B access %v, want <200ns", local)
	}
	if remote < 2*simtime.Microsecond || remote > 3500 {
		t.Fatalf("remote 8B access %v, want 2-3.5µs", remote)
	}
	if float64(remote)/float64(local) < 10 {
		t.Fatalf("remote/local ratio %.1f too small to exercise caching benefit", float64(remote)/float64(local))
	}
}

func TestLatencyMonotonicInSize(t *testing.T) {
	m := DefaultModel()
	f := func(a, b uint16, dist uint8) bool {
		d := Distance(int(dist) % int(numDistances))
		lo, hi := int(a), int(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return m.GetLatency(lo, d) <= m.GetLatency(hi, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeSizeClamped(t *testing.T) {
	m := DefaultModel()
	if got, want := m.GetLatency(-5, OtherNode), m.GetLatency(0, OtherNode); got != want {
		t.Fatalf("negative size latency %v, want %v", got, want)
	}
}

func TestPutMirrorsGet(t *testing.T) {
	m := DefaultModel()
	for _, size := range []int{0, 64, 4096} {
		if m.PutLatency(size, OtherNode) != m.GetLatency(size, OtherNode) {
			t.Fatalf("put and get latency diverge at size %d", size)
		}
	}
}

func TestNewModelOverride(t *testing.T) {
	m := NewModel(map[Distance]Params{
		OtherNode: {Base: 5000, Overhead: 100, BytesPerSecond: 1e9},
	})
	if m.Params(OtherNode).Base != 5000 {
		t.Fatalf("override not applied: %+v", m.Params(OtherNode))
	}
	// Other distances keep defaults.
	if m.Params(SameProcess) != DefaultModel().Params(SameProcess) {
		t.Fatalf("non-overridden distance changed")
	}
	// Out-of-range distances in the override map are ignored.
	m2 := NewModel(map[Distance]Params{Distance(99): {Base: 1}})
	if m2.Params(OtherNode) != DefaultModel().Params(OtherNode) {
		t.Fatalf("out-of-range override corrupted model")
	}
}

func TestParamsOutOfRangeFallsBack(t *testing.T) {
	m := DefaultModel()
	if m.Params(Distance(-1)) != m.Params(OtherNode) {
		t.Fatalf("negative distance should fall back to OtherNode params")
	}
	if m.Params(Distance(100)) != m.Params(OtherNode) {
		t.Fatalf("huge distance should fall back to OtherNode params")
	}
}

func TestOverlappable(t *testing.T) {
	m := DefaultModel()
	// Larger transfers hide a larger fraction of the latency: Fig. 8's
	// foMPI curve grows with size, reaching ~85% at 64 KB.
	small := m.Overlappable(8, OtherNode)
	big := m.Overlappable(64*1024, OtherNode)
	if big <= small {
		t.Fatalf("overlap should grow with size: small=%.2f big=%.2f", small, big)
	}
	if big < 0.8 || big > 1.0 {
		t.Fatalf("64KB overlap = %.2f, want ~0.85", big)
	}
}

func TestMapDistance(t *testing.T) {
	cases := []struct {
		name                string
		init, trg, rpn, npg int
		want                Distance
	}{
		{"self", 3, 3, 4, 8, SameProcess},
		{"same socket", 0, 1, 4, 8, SameSocket},
		{"same node other socket", 0, 2, 4, 8, SameNode},
		{"one rank per node", 0, 1, 1, 8, OtherNode},
		{"zero rpn defaults to 1", 0, 1, 0, 8, OtherNode},
		{"other group", 0, 9, 1, 8, OtherGroup},
		{"default group size", 0, 1, 1, 0, OtherNode},
	}
	for _, c := range cases {
		if got := MapDistance(c.init, c.trg, c.rpn, c.npg); got != c.want {
			t.Errorf("%s: MapDistance(%d,%d,%d,%d) = %v, want %v", c.name, c.init, c.trg, c.rpn, c.npg, got, c.want)
		}
	}
}

func TestDistanceString(t *testing.T) {
	if SameNode.String() != "same-node" {
		t.Fatalf("String() = %q", SameNode.String())
	}
	if Distance(42).String() != "distance(42)" {
		t.Fatalf("unknown distance String() = %q", Distance(42).String())
	}
}

func TestMemcpyCost(t *testing.T) {
	if MemcpyCost(0) <= 0 {
		t.Fatalf("zero-byte copy should still have fixed cost")
	}
	if MemcpyCost(-1) != MemcpyCost(0) {
		t.Fatalf("negative size not clamped")
	}
	if MemcpyCost(1<<20) <= MemcpyCost(1<<10) {
		t.Fatalf("copy cost must grow with size")
	}
	// A 64 KB local copy must be far cheaper than a remote get of the
	// same size — that gap is the premise of the paper.
	m := DefaultModel()
	if 3*MemcpyCost(64*1024) >= m.GetLatency(64*1024, OtherNode) {
		t.Fatalf("local copy (%v) not clearly cheaper than remote get (%v)",
			MemcpyCost(64*1024), m.GetLatency(64*1024, OtherNode))
	}
}

// TestLatencyMonotonicInDistance is the locality-tier invariant: for
// every op size, the modelled latency must be non-decreasing from
// SameProcess to OtherGroup. The cost-aware cache (core locality mode)
// derives admission and eviction weights from these latencies; an
// inversion would make it prefer evicting expensive entries.
func TestLatencyMonotonicInDistance(t *testing.T) {
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatalf("DefaultModel invalid: %v", err)
	}
	sizes := []int{0, 1, 8, 64, 256, 1 << 10, 8 << 10, 64 << 10, 1 << 20, 16 << 20}
	for _, size := range sizes {
		ds := Distances()
		for i := 1; i < len(ds); i++ {
			near, far := m.GetLatency(size, ds[i-1]), m.GetLatency(size, ds[i])
			if far < near {
				t.Errorf("size %d: latency inverts %s (%d) -> %s (%d)",
					size, ds[i-1], near, ds[i], far)
			}
		}
	}
}

// TestValidateCatchesInversion checks that Validate rejects a model
// whose distance ordering is broken in either parameter.
func TestValidateCatchesInversion(t *testing.T) {
	bad := NewModel(map[Distance]Params{
		OtherGroup: {Base: 100, Overhead: 10, BytesPerSecond: 9e9},
	})
	if err := bad.Validate(); err == nil {
		t.Fatalf("base+overhead inversion not caught")
	}
	bad = NewModel(map[Distance]Params{
		OtherGroup: {Base: 5000, Overhead: 500, BytesPerSecond: 99e9},
	})
	if err := bad.Validate(); err == nil {
		t.Fatalf("bandwidth inversion not caught")
	}
}
