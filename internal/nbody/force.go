package nbody

import (
	"math"

	"clampi/internal/getter"
	"clampi/internal/simtime"
	"clampi/internal/trace"
)

// Modeled compute costs of the force phase (2.6 GHz Xeon class): one
// body-cell interaction is ~a dozen FLOPs plus a sqrt; a traversal step
// is a handful of compares and stack operations.
const (
	// CostInteraction is charged per accepted body-cell interaction.
	CostInteraction = 25 * simtime.Nanosecond
	// CostVisit is charged per visited tree node.
	CostVisit = 8 * simtime.Nanosecond
	// CostUpdate is charged per body for the leapfrog update.
	CostUpdate = 15 * simtime.Nanosecond
)

// RootInfo describes one rank's tree as seen by remote ranks.
type RootInfo struct {
	Center Vec3
	Half   float64
	Nodes  int
}

// Clock abstracts the virtual clock the traversal charges compute to
// (satisfied by *simtime.Clock).
type Clock interface {
	Advance(simtime.Duration)
}

// Space is a rank's view of the distributed tree forest during one force
// phase. Local tree nodes are read directly; remote nodes are fetched
// through the getter (and a fetch is accounted as one 64-byte get).
type Space struct {
	Rank  int
	Local *Tree
	Roots []RootInfo
	Gt    getter.Getter
	Theta float64
	Clock Clock
	// Recorder, if set, records every remote node fetch (Fig. 2).
	Recorder *trace.Recorder

	// Counters for the step statistics.
	Interactions int64
	NodeVisits   int64
	RemoteGets   int64

	buf  [NodeBytes]byte
	cbuf [8 * NodeBytes]byte // staging for one node's batched children
	ops  []getter.BatchOp    // reusable batch descriptor buffer
}

// fetch returns node idx of rank's tree.
func (s *Space) fetch(rank int, idx int32, n *Node) error {
	s.NodeVisits++
	if rank == s.Rank {
		*n = s.Local.Nodes[idx]
		return nil
	}
	disp := int(idx) * NodeBytes
	if err := s.Gt.Get(s.buf[:], rank, disp); err != nil {
		return err
	}
	if err := s.Gt.Flush(); err != nil {
		return err
	}
	s.RemoteGets++
	if s.Recorder != nil {
		s.Recorder.Record(rank, disp, NodeBytes)
	}
	DecodeNode(s.buf[:], n)
	return nil
}

// frame is one traversal stack entry. Remote frames pushed by an opened
// node carry the prefetched node payload (have == true): the children
// are fetched in one batched get at push time, so the caching layer can
// coalesce the misses, while the pop order — and hence the floating-point
// accumulation order — is exactly that of a fetch-at-pop traversal.
type frame struct {
	rank int
	idx  int32
	half float64
	node Node
	have bool
}

// fetchChildren batch-fetches the remote frames stack[base:], which all
// name nodes of one rank's tree, decoding each into its frame.
func (s *Space) fetchChildren(stack []frame, base int) error {
	k := len(stack) - base
	s.ops = s.ops[:0]
	for i := base; i < len(stack); i++ {
		disp := int(stack[i].idx) * NodeBytes
		off := (i - base) * NodeBytes
		s.ops = append(s.ops, getter.BatchOp{
			Dst:    s.cbuf[off : off+NodeBytes : off+NodeBytes],
			Target: stack[i].rank,
			Disp:   disp,
		})
	}
	if err := getter.GetBatch(s.Gt, s.ops); err != nil {
		return err
	}
	if err := s.Gt.Flush(); err != nil {
		return err
	}
	s.RemoteGets += int64(k)
	for i := base; i < len(stack); i++ {
		op := &s.ops[i-base]
		if s.Recorder != nil {
			s.Recorder.Record(op.Target, op.Disp, NodeBytes)
		}
		DecodeNode(op.Dst, &stack[i].node)
		stack[i].have = true
	}
	return nil
}

// Accel computes the gravitational acceleration at p (for a unit-mass
// test particle) by walking all P trees with the Barnes-Hut opening
// criterion: a cell of half-extent h at distance d is accepted when
// (2h)/d < θ. θ = 0 never accepts internal cells — the traversal
// degenerates to exact pairwise summation over leaves.
func (s *Space) Accel(p Vec3) (Vec3, error) {
	var acc Vec3
	var stack []frame
	for rank := range s.Roots {
		if s.Roots[rank].Nodes == 0 {
			continue
		}
		stack = append(stack, frame{rank: rank, idx: 0, half: s.Roots[rank].Half})
	}
	var visits, interactions int64
	var n Node
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.have {
			n = f.node
			s.NodeVisits++
		} else if err := s.fetch(f.rank, f.idx, &n); err != nil {
			return Vec3{}, err
		}
		visits++
		if n.Mass == 0 {
			continue
		}
		d := n.COM.Sub(p)
		dist2 := d.Norm2()
		open := !n.Leaf() && 4*f.half*f.half >= s.Theta*s.Theta*dist2
		if open {
			base := len(stack)
			for _, c := range n.Children {
				if c != NoChild {
					stack = append(stack, frame{rank: f.rank, idx: c, half: f.half / 2})
				}
			}
			if f.rank != s.Rank && len(stack) > base {
				if err := s.fetchChildren(stack, base); err != nil {
					return Vec3{}, err
				}
			}
			continue
		}
		// Accept: body-cell interaction with Plummer softening.
		interactions++
		denom := dist2 + Softening*Softening
		inv := 1 / (denom * math.Sqrt(denom))
		acc = acc.Add(d.Scale(n.Mass * inv))
	}
	s.Interactions += interactions
	if s.Clock != nil {
		s.Clock.Advance(simtime.Duration(visits)*CostVisit + simtime.Duration(interactions)*CostInteraction)
	}
	return acc, nil
}

// DirectAccel is the O(N²) reference: the exact softened acceleration at
// p due to all bodies.
func DirectAccel(p Vec3, bodies []Body) Vec3 {
	var acc Vec3
	for i := range bodies {
		d := bodies[i].Pos.Sub(p)
		denom := d.Norm2() + Softening*Softening
		inv := 1 / (denom * math.Sqrt(denom))
		acc = acc.Add(d.Scale(bodies[i].Mass * inv))
	}
	return acc
}

// Integrate advances bodies one leapfrog-Euler step under accs.
func Integrate(bodies []Body, accs []Vec3, dt float64, clock Clock) {
	for i := range bodies {
		bodies[i].Vel = bodies[i].Vel.Add(accs[i].Scale(dt))
		bodies[i].Pos = bodies[i].Pos.Add(bodies[i].Vel.Scale(dt))
	}
	if clock != nil {
		clock.Advance(simtime.Duration(len(bodies)) * CostUpdate)
	}
}

// Energy returns the total energy (kinetic + softened potential) of a
// body set — a conservation diagnostic for tests.
func Energy(bodies []Body) float64 {
	e := 0.0
	for i := range bodies {
		e += 0.5 * bodies[i].Mass * bodies[i].Vel.Norm2()
	}
	for i := range bodies {
		for j := i + 1; j < len(bodies); j++ {
			d2 := bodies[i].Pos.Sub(bodies[j].Pos).Norm2()
			e -= bodies[i].Mass * bodies[j].Mass / math.Sqrt(d2+Softening*Softening)
		}
	}
	return e
}
