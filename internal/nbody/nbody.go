// Package nbody implements the distributed Barnes-Hut N-body simulation
// of the paper's §IV-B.
//
// Bodies are Morton-order partitioned across ranks; every rank builds an
// octree over its bodies and exposes the serialized tree through an RMA
// window. The force-computation phase walks all P trees top-down: local
// nodes are read from memory, remote nodes are fetched with one-sided
// gets — a latency-bound pointer chase in which the top of every remote
// tree is re-fetched for nearly every local body. That reuse (the paper's
// Fig. 2 measures it at up to ~3,500 repeats) is what the caching layer
// converts into local copies. The tree is immutable during the force
// phase, so the paper drives CLaMPI in user-defined mode: cache across
// the whole phase, invalidate before the next tree rebuild.
package nbody

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Vec3 is a 3-component vector.
type Vec3 [3]float64

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v[0] + o[0], v[1] + o[1], v[2] + o[2]} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v[0] - o[0], v[1] - o[1], v[2] - o[2]} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v[0] * s, v[1] * s, v[2] * s} }

// Norm2 returns |v|².
func (v Vec3) Norm2() float64 { return v[0]*v[0] + v[1]*v[1] + v[2]*v[2] }

// Body is one simulated particle.
type Body struct {
	Pos  Vec3
	Vel  Vec3
	Mass float64
}

// Softening is the Plummer softening length ε: forces are
// m·d/(|d|²+ε²)^{3/2}, regularizing close encounters (and making a
// body's interaction with itself exactly zero).
const Softening = 1e-3

// RandomBodies generates n bodies uniformly in the unit cube with small
// random velocities and equal masses summing to 1. Deterministic in seed.
func RandomBodies(n int, seed int64) []Body {
	rng := rand.New(rand.NewSource(seed))
	bodies := make([]Body, n)
	for i := range bodies {
		bodies[i] = Body{
			Pos:  Vec3{rng.Float64(), rng.Float64(), rng.Float64()},
			Vel:  Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Scale(0.01),
			Mass: 1 / float64(n),
		}
	}
	return bodies
}

// mortonKey interleaves 21 bits per dimension of the position, assumed
// in [0,1)³ (values outside are clamped).
func mortonKey(p Vec3) uint64 {
	var key uint64
	for d := 0; d < 3; d++ {
		v := p[d]
		if v < 0 {
			v = 0
		}
		if v >= 1 {
			v = math.Nextafter(1, 0)
		}
		key |= spread(uint64(v*(1<<21))) << d
	}
	return key
}

// spread distributes the low 21 bits of x to every third bit position.
func spread(x uint64) uint64 {
	x &= 0x1FFFFF
	x = (x | x<<32) & 0x1F00000000FFFF
	x = (x | x<<16) & 0x1F0000FF0000FF
	x = (x | x<<8) & 0x100F00F00F00F00F
	x = (x | x<<4) & 0x10C30C30C30C30C3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// PartitionBodies sorts bodies by Morton key and block-partitions them
// over p ranks, returning rank's slice (a copy). Morton order keeps each
// rank's bodies spatially clustered, so upper remote-tree levels satisfy
// the opening criterion for most bodies — maximizing reuse.
func PartitionBodies(bodies []Body, p, rank int) []Body {
	sorted := make([]Body, len(bodies))
	copy(sorted, bodies)
	sort.SliceStable(sorted, func(i, j int) bool {
		return mortonKey(sorted[i].Pos) < mortonKey(sorted[j].Pos)
	})
	n := len(sorted)
	q, r := n/p, n%p
	lo := rank*q + min(rank, r)
	hi := lo + q
	if rank < r {
		hi++
	}
	out := make([]Body, hi-lo)
	copy(out, sorted[lo:hi])
	return out
}

// ---------------------------------------------------------------------------
// Octree
// ---------------------------------------------------------------------------

// NodeBytes is the size of one serialized tree node: mass (8) + centre of
// mass (24) + 8 child indices (32).
const NodeBytes = 64

// NoChild marks an absent child slot.
const NoChild int32 = -1

// Node is one octree cell as stored in a window region. For a leaf all
// children are NoChild and (Mass, COM) describe a single (possibly
// aggregated) body; for an internal node they are the subtree totals.
type Node struct {
	Mass     float64
	COM      Vec3
	Children [8]int32
}

// Leaf reports whether the node has no children.
func (n *Node) Leaf() bool {
	for _, c := range n.Children {
		if c != NoChild {
			return false
		}
	}
	return true
}

// maxDepth bounds tree height; bodies colliding below it are aggregated.
const maxDepth = 32

// Tree is a rank-local octree.
type Tree struct {
	Nodes  []Node
	Center Vec3
	Half   float64 // half-extent of the root cell
}

// buildNode is the construction-time node representation.
type buildNode struct {
	children [8]int32
	leaf     bool
	mass     float64
	com      Vec3 // for leaves: position accumulator (mass-weighted)
}

// BuildTree constructs an octree over the bodies. The root cell is the
// cube bounding all bodies. An empty body set yields a tree with a
// zero-mass root leaf.
func BuildTree(bodies []Body) *Tree {
	t := &Tree{}
	if len(bodies) == 0 {
		t.Center = Vec3{0.5, 0.5, 0.5}
		t.Half = 0.5
		t.Nodes = []Node{{Children: noChildren()}}
		return t
	}
	lo, hi := bodies[0].Pos, bodies[0].Pos
	for _, b := range bodies[1:] {
		for d := 0; d < 3; d++ {
			lo[d] = math.Min(lo[d], b.Pos[d])
			hi[d] = math.Max(hi[d], b.Pos[d])
		}
	}
	t.Center = lo.Add(hi).Scale(0.5)
	t.Half = 0
	for d := 0; d < 3; d++ {
		t.Half = math.Max(t.Half, (hi[d]-lo[d])/2)
	}
	if t.Half == 0 {
		t.Half = 1e-9 // all bodies coincide
	}
	// Slightly inflate so boundary bodies stay strictly inside.
	t.Half *= 1.0000001

	nodes := []buildNode{newBuildNode()}
	for i := range bodies {
		nodes = insert(nodes, 0, t.Center, t.Half, &bodies[i], 0)
	}
	t.Nodes = finalize(nodes)
	return t
}

func noChildren() [8]int32 {
	var c [8]int32
	for i := range c {
		c[i] = NoChild
	}
	return c
}

func newBuildNode() buildNode {
	return buildNode{children: noChildren()}
}

// octant returns the child index of p relative to center.
func octant(center, p Vec3) int {
	o := 0
	for d := 0; d < 3; d++ {
		if p[d] >= center[d] {
			o |= 1 << d
		}
	}
	return o
}

// childCenter returns the center of child octant o of (center, half).
func childCenter(center Vec3, half float64, o int) Vec3 {
	q := half / 2
	c := center
	for d := 0; d < 3; d++ {
		if o&(1<<d) != 0 {
			c[d] += q
		} else {
			c[d] -= q
		}
	}
	return c
}

// insert places body b into node idx of nodes, splitting leaves as
// needed, and returns the (possibly grown) node slice.
func insert(nodes []buildNode, idx int, center Vec3, half float64, b *Body, depth int) []buildNode {
	n := &nodes[idx]
	if n.mass == 0 && !n.leaf && n.isEmptyInternal() {
		// Fresh node: become a leaf for this body.
		n.leaf = true
		n.mass = b.Mass
		n.com = b.Pos.Scale(b.Mass)
		return nodes
	}
	if n.leaf {
		if depth >= maxDepth {
			// Aggregate coincident bodies.
			n.mass += b.Mass
			n.com = n.com.Add(b.Pos.Scale(b.Mass))
			return nodes
		}
		// Split: push the existing aggregate down as a pseudo-body,
		// then fall through to internal insertion.
		old := Body{Pos: n.com.Scale(1 / n.mass), Mass: n.mass}
		n.leaf = false
		n.mass = 0
		n.com = Vec3{}
		nodes = insertChild(nodes, idx, center, half, &old, depth)
	}
	return insertChild(nodes, idx, center, half, b, depth)
}

// isEmptyInternal reports a node with no children and no leaf payload.
func (n *buildNode) isEmptyInternal() bool {
	for _, c := range n.children {
		if c != NoChild {
			return false
		}
	}
	return true
}

func insertChild(nodes []buildNode, idx int, center Vec3, half float64, b *Body, depth int) []buildNode {
	o := octant(center, b.Pos)
	child := nodes[idx].children[o]
	if child == NoChild {
		nodes = append(nodes, newBuildNode())
		child = int32(len(nodes) - 1)
		nodes[idx].children[o] = child
	}
	return insert(nodes, int(child), childCenter(center, half, o), half/2, b, depth+1)
}

// finalize computes subtree moments bottom-up and converts to Nodes.
func finalize(nodes []buildNode) []Node {
	out := make([]Node, len(nodes))
	var rec func(i int32) (float64, Vec3)
	rec = func(i int32) (float64, Vec3) {
		n := &nodes[i]
		if n.leaf {
			com := n.com.Scale(1 / n.mass)
			out[i] = Node{Mass: n.mass, COM: com, Children: noChildren()}
			return n.mass, n.com
		}
		var mass float64
		var wcom Vec3
		for _, c := range n.children {
			if c == NoChild {
				continue
			}
			m, w := rec(c)
			mass += m
			wcom = wcom.Add(w)
		}
		node := Node{Mass: mass, Children: n.children}
		if mass > 0 {
			node.COM = wcom.Scale(1 / mass)
		}
		out[i] = node
		return mass, wcom
	}
	rec(0)
	return out
}

// Serialize encodes the tree's nodes into a byte region (little-endian,
// NodeBytes per node) suitable for exposure through an RMA window.
func (t *Tree) Serialize() []byte {
	buf := make([]byte, len(t.Nodes)*NodeBytes)
	for i := range t.Nodes {
		EncodeNode(buf[i*NodeBytes:], &t.Nodes[i])
	}
	return buf
}

// EncodeNode writes n into the first NodeBytes of b.
func EncodeNode(b []byte, n *Node) {
	putF64(b[0:], n.Mass)
	putF64(b[8:], n.COM[0])
	putF64(b[16:], n.COM[1])
	putF64(b[24:], n.COM[2])
	for i, c := range n.Children {
		putI32(b[32+i*4:], c)
	}
}

// DecodeNode reads a node from the first NodeBytes of b.
func DecodeNode(b []byte, n *Node) {
	n.Mass = getF64(b[0:])
	n.COM[0] = getF64(b[8:])
	n.COM[1] = getF64(b[16:])
	n.COM[2] = getF64(b[24:])
	for i := range n.Children {
		n.Children[i] = getI32(b[32+i*4:])
	}
}

func putF64(b []byte, v float64) { putU64(b, math.Float64bits(v)) }
func getF64(b []byte) float64    { return math.Float64frombits(getU64(b)) }

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func putI32(b []byte, v int32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getI32(b []byte) int32 {
	return int32(b[0]) | int32(b[1])<<8 | int32(b[2])<<16 | int32(b[3])<<24
}

// Validate checks tree structural invariants (test helper).
func (t *Tree) Validate(totalMass float64) error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("nbody: empty tree")
	}
	if math.Abs(t.Nodes[0].Mass-totalMass) > 1e-9*math.Max(1, totalMass) {
		return fmt.Errorf("nbody: root mass %v, want %v", t.Nodes[0].Mass, totalMass)
	}
	seen := make([]bool, len(t.Nodes))
	var rec func(i int32) error
	rec = func(i int32) error {
		if i < 0 || int(i) >= len(t.Nodes) {
			return fmt.Errorf("nbody: child index %d out of range", i)
		}
		if seen[i] {
			return fmt.Errorf("nbody: node %d reachable twice", i)
		}
		seen[i] = true
		n := &t.Nodes[i]
		if !n.Leaf() {
			var m float64
			for _, c := range n.Children {
				if c == NoChild {
					continue
				}
				if err := rec(c); err != nil {
					return err
				}
				m += t.Nodes[c].Mass
			}
			if math.Abs(m-n.Mass) > 1e-9*math.Max(1, m) {
				return fmt.Errorf("nbody: node %d mass %v, children sum %v", i, n.Mass, m)
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return err
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("nbody: node %d unreachable", i)
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
