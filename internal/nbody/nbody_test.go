package nbody

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) {
		t.Fatalf("Add")
	}
	if b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Fatalf("Sub")
	}
	if a.Scale(2) != (Vec3{2, 4, 6}) {
		t.Fatalf("Scale")
	}
	if a.Norm2() != 14 {
		t.Fatalf("Norm2")
	}
}

func TestRandomBodies(t *testing.T) {
	bodies := RandomBodies(100, 1)
	if len(bodies) != 100 {
		t.Fatalf("len = %d", len(bodies))
	}
	total := 0.0
	for _, b := range bodies {
		for d := 0; d < 3; d++ {
			if b.Pos[d] < 0 || b.Pos[d] >= 1 {
				t.Fatalf("position out of unit cube: %v", b.Pos)
			}
		}
		total += b.Mass
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("total mass = %v", total)
	}
	again := RandomBodies(100, 1)
	if again[42] != bodies[42] {
		t.Fatalf("not deterministic")
	}
}

func TestMortonKeyOrdering(t *testing.T) {
	// Points in the low corner sort before points in the high corner.
	lo := mortonKey(Vec3{0.1, 0.1, 0.1})
	hi := mortonKey(Vec3{0.9, 0.9, 0.9})
	if lo >= hi {
		t.Fatalf("morton order broken: %d >= %d", lo, hi)
	}
	// Clamping.
	if mortonKey(Vec3{-1, -1, -1}) != 0 {
		t.Fatalf("negative positions not clamped")
	}
	_ = mortonKey(Vec3{2, 2, 2}) // must not panic
}

func TestSpreadBits(t *testing.T) {
	f := func(x uint32) bool {
		s := spread(uint64(x) & 0x1FFFFF)
		// Every set output bit must be at a position ≡ 0 (mod 3).
		for i := 0; i < 64; i++ {
			if s&(1<<i) != 0 && i%3 != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionBodies(t *testing.T) {
	bodies := RandomBodies(103, 2)
	seen := 0
	for rank := 0; rank < 4; rank++ {
		part := PartitionBodies(bodies, 4, rank)
		seen += len(part)
		if len(part) < 103/4 || len(part) > 103/4+1 {
			t.Fatalf("rank %d owns %d bodies", rank, len(part))
		}
	}
	if seen != 103 {
		t.Fatalf("partitions cover %d bodies", seen)
	}
}

func TestBuildTreeInvariants(t *testing.T) {
	bodies := RandomBodies(500, 3)
	tree := BuildTree(bodies)
	if err := tree.Validate(1.0); err != nil {
		t.Fatal(err)
	}
	if len(tree.Nodes) < 500 {
		t.Fatalf("tree has %d nodes for 500 bodies", len(tree.Nodes))
	}
	// Root COM equals the global center of mass.
	var com Vec3
	for _, b := range bodies {
		com = com.Add(b.Pos.Scale(b.Mass))
	}
	for d := 0; d < 3; d++ {
		if math.Abs(tree.Nodes[0].COM[d]-com[d]) > 1e-9 {
			t.Fatalf("root COM %v, want %v", tree.Nodes[0].COM, com)
		}
	}
}

func TestBuildTreeEdgeCases(t *testing.T) {
	empty := BuildTree(nil)
	if len(empty.Nodes) != 1 || empty.Nodes[0].Mass != 0 {
		t.Fatalf("empty tree = %+v", empty)
	}
	one := BuildTree([]Body{{Pos: Vec3{0.5, 0.5, 0.5}, Mass: 2}})
	if err := one.Validate(2); err != nil {
		t.Fatal(err)
	}
	if !one.Nodes[0].Leaf() {
		t.Fatalf("single body tree root is not a leaf")
	}
	// Coincident bodies must aggregate, not loop forever.
	same := []Body{
		{Pos: Vec3{0.3, 0.3, 0.3}, Mass: 1},
		{Pos: Vec3{0.3, 0.3, 0.3}, Mass: 1},
		{Pos: Vec3{0.3, 0.3, 0.3}, Mass: 1},
	}
	agg := BuildTree(same)
	if err := agg.Validate(3); err != nil {
		t.Fatal(err)
	}
}

func TestNodeCodecRoundTrip(t *testing.T) {
	n := Node{
		Mass:     1.25,
		COM:      Vec3{0.1, -2.5, 3e10},
		Children: [8]int32{0, -1, 5, 1 << 30, -1, -1, 2, 3},
	}
	var buf [NodeBytes]byte
	EncodeNode(buf[:], &n)
	var got Node
	DecodeNode(buf[:], &got)
	if got != n {
		t.Fatalf("round trip: %+v vs %+v", got, n)
	}
}

func TestSerializeMatchesNodes(t *testing.T) {
	tree := BuildTree(RandomBodies(64, 4))
	buf := tree.Serialize()
	if len(buf) != len(tree.Nodes)*NodeBytes {
		t.Fatalf("serialized %d bytes for %d nodes", len(buf), len(tree.Nodes))
	}
	for i := range tree.Nodes {
		var n Node
		DecodeNode(buf[i*NodeBytes:], &n)
		if n != tree.Nodes[i] {
			t.Fatalf("node %d corrupted", i)
		}
	}
}

// localSpace builds a Space over a single local tree (no MPI).
func localSpace(tree *Tree, theta float64) *Space {
	return &Space{
		Rank:  0,
		Local: tree,
		Roots: []RootInfo{{Center: tree.Center, Half: tree.Half, Nodes: len(tree.Nodes)}},
		Theta: theta,
	}
}

func TestThetaZeroMatchesDirectSum(t *testing.T) {
	bodies := RandomBodies(200, 5)
	tree := BuildTree(bodies)
	s := localSpace(tree, 0) // never open by criterion: exact
	for i := 0; i < 20; i++ {
		p := bodies[i*7].Pos
		got, err := s.Accel(p)
		if err != nil {
			t.Fatal(err)
		}
		want := DirectAccel(p, bodies)
		for d := 0; d < 3; d++ {
			if math.Abs(got[d]-want[d]) > 1e-6*(1+math.Abs(want[d])) {
				t.Fatalf("p%d accel[%d] = %v, want %v", i, d, got[d], want[d])
			}
		}
	}
}

func TestThetaApproximationQuality(t *testing.T) {
	bodies := RandomBodies(500, 6)
	tree := BuildTree(bodies)
	s := localSpace(tree, 0.5)
	var relErr, n float64
	for i := 0; i < 50; i++ {
		p := bodies[i*9].Pos
		got, err := s.Accel(p)
		if err != nil {
			t.Fatal(err)
		}
		want := DirectAccel(p, bodies)
		num := math.Sqrt(got.Sub(want).Norm2())
		den := math.Sqrt(want.Norm2())
		if den > 0 {
			relErr += num / den
			n++
		}
	}
	if avg := relErr / n; avg > 0.05 {
		t.Fatalf("θ=0.5 average relative error %.3f > 5%%", avg)
	}
}

func TestThetaReducesWork(t *testing.T) {
	bodies := RandomBodies(500, 7)
	tree := BuildTree(bodies)
	exact := localSpace(tree, 0)
	approx := localSpace(tree, 0.8)
	p := Vec3{0.5, 0.5, 0.5}
	if _, err := exact.Accel(p); err != nil {
		t.Fatal(err)
	}
	if _, err := approx.Accel(p); err != nil {
		t.Fatal(err)
	}
	if approx.NodeVisits*2 >= exact.NodeVisits {
		t.Fatalf("θ=0.8 visited %d nodes, exact visited %d — approximation not pruning", approx.NodeVisits, exact.NodeVisits)
	}
}

func TestIntegrateAndEnergy(t *testing.T) {
	bodies := RandomBodies(50, 8)
	e0 := Energy(bodies)
	// Integrate with exact forces for a few small steps: energy drift
	// must stay small.
	for step := 0; step < 5; step++ {
		accs := make([]Vec3, len(bodies))
		for i := range bodies {
			accs[i] = DirectAccel(bodies[i].Pos, bodies)
		}
		Integrate(bodies, accs, 1e-4, nil)
	}
	e1 := Energy(bodies)
	if math.Abs(e1-e0) > 0.05*math.Abs(e0) {
		t.Fatalf("energy drifted from %v to %v", e0, e1)
	}
}

func TestStepStatsTimePerBody(t *testing.T) {
	var s StepStats
	if s.TimePerBody() != 0 {
		t.Fatalf("zero stats TimePerBody = %v", s.TimePerBody())
	}
	s.Bodies = 10
	s.ForceTime = 1000
	if s.TimePerBody() != 100 {
		t.Fatalf("TimePerBody = %v", s.TimePerBody())
	}
}
