package nbody

import (
	"math"

	"clampi/internal/getter"
	"clampi/internal/mpi"
	"clampi/internal/rma"
	"clampi/internal/simtime"
	"clampi/internal/trace"
)

// SimConfig configures a distributed Barnes-Hut run.
type SimConfig struct {
	// Bodies is the global body count N.
	Bodies int
	// Steps is the number of timesteps.
	Steps int
	// Theta is the opening criterion (paper's φ); 0.5 is typical.
	Theta float64
	// DT is the integration timestep.
	DT float64
	// Seed drives the initial conditions.
	Seed int64
	// Recorder, if set, records remote node fetches (Fig. 2).
	Recorder *trace.Recorder
	// MaxBodiesPerStep caps how many local bodies compute forces each
	// step (0 = all) — used by scaled-down benchmarks.
	MaxBodiesPerStep int
}

// StepStats reports one rank's force-computation phase of one step.
type StepStats struct {
	Bodies       int // local bodies whose force was computed
	ForceTime    simtime.Duration
	Interactions int64
	NodeVisits   int64
	RemoteGets   int64
	TreeNodes    int // local tree size
	// BodiesDigest fingerprints this rank's local bodies after the
	// step's integration (BodiesDigest below): two runs computed
	// bit-identical physics iff every rank's per-step digests match.
	BodiesDigest uint64
}

// BodiesDigest folds the exact bit patterns of every body's position and
// velocity into one FNV-1a value. Chaos experiments compare it between
// faulty and fault-free runs: any divergence — a wrong byte served, a
// stale-but-changed payload — changes some accumulation and flips the
// digest.
func BodiesDigest(bs []Body) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(f float64) {
		h ^= math.Float64bits(f)
		h *= prime64
	}
	for i := range bs {
		b := &bs[i]
		for d := 0; d < 3; d++ {
			mix(b.Pos[d])
		}
		for d := 0; d < 3; d++ {
			mix(b.Vel[d])
		}
	}
	return h
}

// TimePerBody is the paper's Fig. 12/14 metric.
func (s StepStats) TimePerBody() simtime.Duration {
	if s.Bodies == 0 {
		return 0
	}
	return s.ForceTime / simtime.Duration(s.Bodies)
}

// GetterFactory builds the get mechanism for one force phase: it receives
// the window exposing the serialized local tree and returns the Getter
// the traversal will use (raw, CLaMPI-cached, or block-cached).
type GetterFactory func(win rma.Window) (getter.Getter, error)

// RunSim executes the simulation on rank r (call from every rank of an
// mpi.Run program) and returns per-step statistics for this rank.
//
// Each step: build the local octree, expose it through a fresh window,
// compute forces on local bodies walking all trees through the getter,
// invalidate the cache (the tree is about to change — the paper's
// user-defined invalidation point), and integrate.
func RunSim(r *mpi.Rank, cfg SimConfig, mk GetterFactory) ([]StepStats, error) {
	if cfg.Theta == 0 {
		cfg.Theta = 0.5
	}
	if cfg.DT == 0 {
		cfg.DT = 1e-3
	}
	all := RandomBodies(cfg.Bodies, cfg.Seed)
	local := PartitionBodies(all, r.Size(), r.ID())

	stats := make([]StepStats, 0, cfg.Steps)
	accs := make([]Vec3, len(local))

	for step := 0; step < cfg.Steps; step++ {
		tree := BuildTree(local)
		region := tree.Serialize()
		win := r.WinCreate(region, nil)

		// Exchange root metadata.
		gathered := r.Allgather(RootInfo{Center: tree.Center, Half: tree.Half, Nodes: len(tree.Nodes)})
		roots := make([]RootInfo, len(gathered))
		for i, g := range gathered {
			roots[i] = g.(RootInfo)
		}

		gt, err := mk(win)
		if err != nil {
			win.Free()
			return stats, err
		}
		if err := win.LockAll(); err != nil {
			win.Free()
			return stats, err
		}
		space := &Space{
			Rank:     r.ID(),
			Local:    tree,
			Roots:    roots,
			Gt:       gt,
			Theta:    cfg.Theta,
			Clock:    r.Clock(),
			Recorder: cfg.Recorder,
		}
		nb := len(local)
		if cfg.MaxBodiesPerStep > 0 && cfg.MaxBodiesPerStep < nb {
			nb = cfg.MaxBodiesPerStep
		}
		t0 := r.Clock().Now()
		for i := 0; i < nb; i++ {
			a, err := space.Accel(local[i].Pos)
			if err != nil {
				win.Free()
				return stats, err
			}
			accs[i] = a
		}
		st := StepStats{
			Bodies:       nb,
			ForceTime:    r.Clock().Now() - t0,
			Interactions: space.Interactions,
			NodeVisits:   space.NodeVisits,
			RemoteGets:   space.RemoteGets,
			TreeNodes:    len(tree.Nodes),
		}
		stats = append(stats, st)

		// The read-only phase ends here: invalidate before the tree
		// is rebuilt (CLAMPI_Invalidate in the paper's Listing 1).
		gt.Invalidate()
		if err := win.UnlockAll(); err != nil {
			win.Free()
			return stats, err
		}
		if err := win.Free(); err != nil {
			return stats, err
		}

		Integrate(local[:nb], accs[:nb], cfg.DT, r.Clock())
		stats[len(stats)-1].BodiesDigest = BodiesDigest(local)
		r.Barrier()
	}
	return stats, nil
}
