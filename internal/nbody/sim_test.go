package nbody

import (
	"math"
	"testing"

	"clampi/internal/blockcache"
	"clampi/internal/core"
	"clampi/internal/getter"
	"clampi/internal/mpi"
	"clampi/internal/rma"
	"clampi/internal/trace"
)

func rawFactory(win rma.Window) (getter.Getter, error) {
	return getter.NewRaw(win), nil
}

func clampiFactory(params core.Params) GetterFactory {
	return func(win rma.Window) (getter.Getter, error) {
		c, err := core.New(win, params)
		if err != nil {
			return nil, err
		}
		return getter.NewCached(c), nil
	}
}

func nativeFactory(memory, block int) GetterFactory {
	return func(win rma.Window) (getter.Getter, error) {
		return blockcache.New(win, memory, block)
	}
}

// runSim runs the distributed simulation and returns per-rank stats.
func runSim(t *testing.T, p int, cfg SimConfig, mk GetterFactory) [][]StepStats {
	t.Helper()
	out := make([][]StepStats, p)
	err := mpi.Run(p, mpi.Config{}, func(r *mpi.Rank) error {
		st, err := RunSim(r, cfg, mk)
		if err != nil {
			return err
		}
		out[r.ID()] = st
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDistributedForceMatchesDirectSum(t *testing.T) {
	// One step with θ=0 over 4 ranks: the force on each local body must
	// equal the exact direct sum over ALL bodies, which proves the
	// remote traversal (fetch + decode + descend) is correct.
	const n, p = 120, 4
	all := RandomBodies(n, 9)
	err := mpi.Run(p, mpi.Config{}, func(r *mpi.Rank) error {
		local := PartitionBodies(all, p, r.ID())
		tree := BuildTree(local)
		win := r.WinCreate(tree.Serialize(), nil)
		defer win.Free()
		gathered := r.Allgather(RootInfo{Center: tree.Center, Half: tree.Half, Nodes: len(tree.Nodes)})
		roots := make([]RootInfo, len(gathered))
		for i, g := range gathered {
			roots[i] = g.(RootInfo)
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		s := &Space{Rank: r.ID(), Local: tree, Roots: roots, Gt: getter.NewRaw(win), Theta: 0}
		for i := range local {
			got, err := s.Accel(local[i].Pos)
			if err != nil {
				return err
			}
			want := DirectAccel(local[i].Pos, all)
			for d := 0; d < 3; d++ {
				if math.Abs(got[d]-want[d]) > 1e-6*(1+math.Abs(want[d])) {
					t.Errorf("rank %d body %d accel[%d]: %v vs %v", r.ID(), i, d, got[d], want[d])
					break
				}
			}
		}
		if s.RemoteGets == 0 {
			t.Errorf("rank %d issued no remote fetches", r.ID())
		}
		if err := win.UnlockAll(); err != nil {
			return err
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCachedTraversalIdenticalToRaw(t *testing.T) {
	// The caching layer must not change a single force value.
	const n, p = 100, 2
	cfg := SimConfig{Bodies: n, Steps: 2, Theta: 0.5, Seed: 10}
	type res struct{ interactions, visits int64 }
	collect := func(mk GetterFactory) []res {
		stats := runSim(t, p, cfg, mk)
		out := make([]res, 0)
		for _, rankStats := range stats {
			for _, s := range rankStats {
				out = append(out, res{s.Interactions, s.NodeVisits})
			}
		}
		return out
	}
	raw := collect(rawFactory)
	cached := collect(clampiFactory(core.Params{Mode: core.AlwaysCache, IndexSlots: 1 << 14, StorageBytes: 8 << 20, Seed: 1}))
	native := collect(nativeFactory(1<<20, 256))
	for i := range raw {
		if raw[i] != cached[i] {
			t.Fatalf("step %d: cached traversal diverged: %+v vs %+v", i, cached[i], raw[i])
		}
		if raw[i] != native[i] {
			t.Fatalf("step %d: native traversal diverged: %+v vs %+v", i, native[i], raw[i])
		}
	}
}

func TestCachingSpeedsUpForcePhase(t *testing.T) {
	// The Fig. 12/14 claim: CLaMPI beats foMPI on the force phase; the
	// well-provisioned native cache also beats foMPI.
	const n, p = 400, 4
	cfg := SimConfig{Bodies: n, Steps: 1, Theta: 0.5, Seed: 11}

	totalForce := func(stats [][]StepStats) int64 {
		var t int64
		for _, rankStats := range stats {
			for _, s := range rankStats {
				t += int64(s.ForceTime)
			}
		}
		return t
	}
	raw := totalForce(runSim(t, p, cfg, rawFactory))
	cached := totalForce(runSim(t, p, cfg, clampiFactory(core.Params{
		Mode: core.AlwaysCache, IndexSlots: 1 << 15, StorageBytes: 8 << 20, Seed: 1})))
	native := totalForce(runSim(t, p, cfg, nativeFactory(4<<20, 256)))

	if cached >= raw {
		t.Fatalf("CLaMPI force phase %d not faster than foMPI %d", cached, raw)
	}
	if native >= raw {
		t.Fatalf("native force phase %d not faster than foMPI %d", native, raw)
	}
	speedup := float64(raw) / float64(cached)
	t.Logf("Barnes-Hut force-phase speedup: CLaMPI %.2fx, native %.2fx", speedup, float64(raw)/float64(native))
	if speedup < 1.5 {
		t.Errorf("CLaMPI speedup %.2fx below the paper's band", speedup)
	}
}

func TestClampiBeatsNativeUnderPressure(t *testing.T) {
	// Fig. 12/14's ordering: when the cache memory is much smaller than
	// the remote working set, the direct-mapped native cache thrashes
	// on conflicts while CLaMPI's scored eviction keeps the heavily
	// reused tree tops resident. Same memory budget for both.
	const n, p = 600, 2
	const memory = 8 << 10
	cfg := SimConfig{Bodies: n, Steps: 1, Theta: 0.5, Seed: 15}

	totalForce := func(stats [][]StepStats) int64 {
		var t int64
		for _, rankStats := range stats {
			for _, s := range rankStats {
				t += int64(s.ForceTime)
			}
		}
		return t
	}
	cached := totalForce(runSim(t, p, cfg, clampiFactory(core.Params{
		Mode: core.AlwaysCache, IndexSlots: 1 << 12, StorageBytes: memory, Seed: 1})))
	native := totalForce(runSim(t, p, cfg, nativeFactory(memory, 256)))
	t.Logf("pressured force phase: CLaMPI %d, native %d (ratio %.2fx)", cached, native, float64(native)/float64(cached))
	if cached >= native {
		t.Errorf("CLaMPI (%d) not faster than the direct-mapped native cache (%d) under pressure", cached, native)
	}
}

func TestReuseHistogram(t *testing.T) {
	// Fig. 2's premise: the same remote tree nodes are fetched many
	// times within one force phase.
	const n, p = 200, 2
	recs := []*trace.Recorder{trace.NewRecorder(), trace.NewRecorder()}
	err := mpi.Run(p, mpi.Config{}, func(r *mpi.Rank) error {
		cfg := SimConfig{Bodies: n, Steps: 1, Theta: 0.5, Seed: 12, Recorder: recs[r.ID()]}
		_, err := RunSim(r, cfg, rawFactory)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	merged := trace.NewRecorder()
	for _, rec := range recs {
		merged.Merge(rec)
	}
	if merged.Total() == 0 {
		t.Fatalf("no fetches recorded")
	}
	if merged.MaxRepetition() < 20 {
		t.Errorf("max repetition %d — expected heavy reuse of tree tops", merged.MaxRepetition())
	}
	if merged.ReuseFactor() < 3 {
		t.Errorf("reuse factor %.1f too low", merged.ReuseFactor())
	}
}

func TestSimulationProgresses(t *testing.T) {
	// Multi-step run: bodies must move, stats must be populated, and
	// the run must be deterministic across systems.
	const n, p = 60, 2
	cfg := SimConfig{Bodies: n, Steps: 3, Theta: 0.7, DT: 1e-3, Seed: 13}
	stats := runSim(t, p, cfg, clampiFactory(core.Params{Mode: core.AlwaysCache, Seed: 2}))
	for rank, rankStats := range stats {
		if len(rankStats) != 3 {
			t.Fatalf("rank %d has %d steps", rank, len(rankStats))
		}
		for i, s := range rankStats {
			if s.Bodies == 0 || s.TreeNodes == 0 || s.Interactions == 0 {
				t.Errorf("rank %d step %d empty stats: %+v", rank, i, s)
			}
			if s.ForceTime <= 0 {
				t.Errorf("rank %d step %d zero force time", rank, i)
			}
		}
	}
}

func TestMaxBodiesPerStepCap(t *testing.T) {
	cfg := SimConfig{Bodies: 100, Steps: 1, Theta: 0.5, Seed: 14, MaxBodiesPerStep: 5}
	stats := runSim(t, 2, cfg, rawFactory)
	for rank, rankStats := range stats {
		if rankStats[0].Bodies != 5 {
			t.Errorf("rank %d computed %d bodies, want 5", rank, rankStats[0].Bodies)
		}
	}
}
