package nbody

import (
	"testing"

	"clampi/internal/core"
	"clampi/internal/mpi"
)

// runPersistent mirrors runSim for the persistent-window variant.
func runPersistent(t *testing.T, p int, cfg SimConfig, mk GetterFactory) [][]StepStats {
	t.Helper()
	out := make([][]StepStats, p)
	err := mpi.Run(p, mpi.Config{}, func(r *mpi.Rank) error {
		st, err := RunSimPersistent(r, cfg, mk)
		if err != nil {
			return err
		}
		out[r.ID()] = st
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPersistentMatchesPerStepWindows(t *testing.T) {
	// The persistent-window variant must do exactly the same traversal
	// work as the window-per-step variant (forces are deterministic).
	const n, p = 100, 2
	cfg := SimConfig{Bodies: n, Steps: 3, Theta: 0.5, Seed: 21}
	a := runSim(t, p, cfg, rawFactory)
	b := runPersistent(t, p, cfg, rawFactory)
	for rank := range a {
		if len(a[rank]) != len(b[rank]) {
			t.Fatalf("rank %d: %d vs %d steps", rank, len(a[rank]), len(b[rank]))
		}
		for s := range a[rank] {
			if a[rank][s].Interactions != b[rank][s].Interactions ||
				a[rank][s].NodeVisits != b[rank][s].NodeVisits {
				t.Errorf("rank %d step %d: %+v vs %+v", rank, s, a[rank][s], b[rank][s])
			}
		}
	}
}

func TestPersistentCachedCorrect(t *testing.T) {
	const n, p = 100, 2
	cfg := SimConfig{Bodies: n, Steps: 3, Theta: 0.5, Seed: 22}
	raw := runPersistent(t, p, cfg, rawFactory)
	cached := runPersistent(t, p, cfg, clampiFactory(core.Params{
		Mode: core.AlwaysCache, IndexSlots: 1 << 13, StorageBytes: 1 << 20, Seed: 2}))
	for rank := range raw {
		for s := range raw[rank] {
			if raw[rank][s].Interactions != cached[rank][s].Interactions {
				t.Errorf("rank %d step %d: caching changed the traversal", rank, s)
			}
		}
	}
}

func TestPersistentAdaptiveLearningCarriesOver(t *testing.T) {
	// Start the adaptive cache badly undersized. With a persistent
	// window the tuner's adjustments survive across steps, so later
	// steps run faster than the first; the per-step variant restarts
	// from the bad configuration every time.
	const n, p = 300, 2
	cfg := SimConfig{Bodies: n, Steps: 4, Theta: 0.5, Seed: 23}
	params := core.Params{
		Mode: core.AlwaysCache, IndexSlots: 64, StorageBytes: 4 << 10,
		Adaptive: true, TuneInterval: 512, Seed: 2,
	}
	persistent := runPersistent(t, p, cfg, clampiFactory(params))

	firstStep, lastStep := int64(0), int64(0)
	for _, rankStats := range persistent {
		firstStep += int64(rankStats[0].ForceTime)
		lastStep += int64(rankStats[len(rankStats)-1].ForceTime)
	}
	if lastStep >= firstStep {
		t.Errorf("adaptive learning did not carry over: first step %d, last step %d", firstStep, lastStep)
	}
}

func TestPersistentManyStepsStable(t *testing.T) {
	// A longer run with a large timestep (bodies move substantially, so
	// tree shapes change every step) must stay within the persistent
	// region's headroom and produce stats for every step.
	const n, p = 80, 2
	cfg := SimConfig{Bodies: n, Steps: 5, Theta: 0.5, Seed: 24, DT: 5e-2}
	stats := runPersistent(t, p, cfg, rawFactory)
	for rank, rankStats := range stats {
		if len(rankStats) != 5 {
			t.Fatalf("rank %d: %d steps", rank, len(rankStats))
		}
		for i, s := range rankStats {
			if s.TreeNodes == 0 || s.Bodies == 0 {
				t.Errorf("rank %d step %d empty: %+v", rank, i, s)
			}
		}
	}
}
