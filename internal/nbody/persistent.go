package nbody

import (
	"fmt"

	"clampi/internal/mpi"
)

// RunSimPersistent is RunSim with a single window (and hence a single
// cache) living across all timesteps, sized for the largest tree. Each
// step rewrites the serialized tree in place and invalidates the cache —
// the window stays read-only during every force phase, so correctness is
// identical to RunSim — but the getter (and CLaMPI's adaptive tuner)
// persists, letting parameter adjustments learned in early steps pay off
// in later ones. This matches how a long-running production simulation
// would deploy CLaMPI.
//
// The per-rank window region is maxNodesFactor× the first tree's size
// (trees of evolving uniform-cube distributions stay near-constant in
// size); a step whose tree outgrows the region returns an error.
func RunSimPersistent(r *mpi.Rank, cfg SimConfig, mk GetterFactory) ([]StepStats, error) {
	if cfg.Theta == 0 {
		cfg.Theta = 0.5
	}
	if cfg.DT == 0 {
		cfg.DT = 1e-3
	}
	const maxNodesFactor = 2
	all := RandomBodies(cfg.Bodies, cfg.Seed)
	local := PartitionBodies(all, r.Size(), r.ID())

	// Size the region from the first tree.
	first := BuildTree(local)
	capacity := maxNodesFactor * len(first.Nodes) * NodeBytes
	if capacity == 0 {
		capacity = NodeBytes
	}
	// All ranks must agree no rank overflows later; the region size is
	// per-rank (windows support asymmetric regions).
	region := make([]byte, capacity)
	win := r.WinCreate(region, nil)
	defer win.Free()

	gt, err := mk(win)
	if err != nil {
		return nil, err
	}

	stats := make([]StepStats, 0, cfg.Steps)
	accs := make([]Vec3, len(local))
	tree := first

	for step := 0; step < cfg.Steps; step++ {
		if step > 0 {
			tree = BuildTree(local)
		}
		need := len(tree.Nodes) * NodeBytes
		if need > capacity {
			return stats, fmt.Errorf("nbody: step %d tree (%d B) outgrew the persistent region (%d B)", step, need, capacity)
		}
		// Rewrite the exposed tree in place. The barrier below orders
		// these local writes before any remote reads of this step.
		for i := range tree.Nodes {
			EncodeNode(region[i*NodeBytes:], &tree.Nodes[i])
		}
		gathered := r.Allgather(RootInfo{Center: tree.Center, Half: tree.Half, Nodes: len(tree.Nodes)})
		roots := make([]RootInfo, len(gathered))
		for i, g := range gathered {
			roots[i] = g.(RootInfo)
		}

		if err := win.LockAll(); err != nil {
			return stats, err
		}
		space := &Space{
			Rank:     r.ID(),
			Local:    tree,
			Roots:    roots,
			Gt:       gt,
			Theta:    cfg.Theta,
			Clock:    r.Clock(),
			Recorder: cfg.Recorder,
		}
		nb := len(local)
		if cfg.MaxBodiesPerStep > 0 && cfg.MaxBodiesPerStep < nb {
			nb = cfg.MaxBodiesPerStep
		}
		t0 := r.Clock().Now()
		for i := 0; i < nb; i++ {
			a, err := space.Accel(local[i].Pos)
			if err != nil {
				return stats, err
			}
			accs[i] = a
		}
		stats = append(stats, StepStats{
			Bodies:       nb,
			ForceTime:    r.Clock().Now() - t0,
			Interactions: space.Interactions,
			NodeVisits:   space.NodeVisits,
			RemoteGets:   space.RemoteGets,
			TreeNodes:    len(tree.Nodes),
		})

		gt.Invalidate() // tree changes next step (user-defined mode)
		if err := win.UnlockAll(); err != nil {
			return stats, err
		}
		Integrate(local[:nb], accs[:nb], cfg.DT, r.Clock())
		stats[len(stats)-1].BodiesDigest = BodiesDigest(local)
		r.Barrier()
	}
	return stats, nil
}
