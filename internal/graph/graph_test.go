package graph

import (
	"testing"
	"testing/quick"

	"clampi/internal/rmat"
)

func triangle() *CSR {
	return Build(4, []rmat.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}})
}

func TestBuildBasics(t *testing.T) {
	g := triangle()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.Edges() != 4 {
		t.Fatalf("N=%d edges=%d", g.N, g.Edges())
	}
	if g.Degree(2) != 3 || g.Degree(3) != 1 {
		t.Fatalf("degrees: %d %d", g.Degree(2), g.Degree(3))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 3) {
		t.Fatalf("HasEdge wrong")
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
}

func TestBuildDropsSelfLoopsAndDuplicates(t *testing.T) {
	g := Build(3, []rmat.Edge{{U: 0, V: 0}, {U: 0, V: 1}, {U: 1, V: 0}, {U: 0, V: 1}, {U: 2, V: 1}})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 2 { // (0,1) and (1,2)
		t.Fatalf("edges = %d, want 2", g.Edges())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 || g.Degree(2) != 1 {
		t.Fatalf("degrees = %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
}

func TestBuildDropsOutOfRange(t *testing.T) {
	g := Build(2, []rmat.Edge{{U: 0, V: 1}, {U: 0, V: 5}, {U: -1, V: 0}})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 1 {
		t.Fatalf("edges = %d", g.Edges())
	}
}

func TestBuildFromRMAT(t *testing.T) {
	edges := rmat.Generate(10, 8, rmat.Graph500, 5)
	g := Build(1<<10, edges)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Edges() == 0 {
		t.Fatalf("empty graph from R-MAT")
	}
}

func TestIntersectSortedCount(t *testing.T) {
	cases := []struct {
		a, b []int32
		want int
	}{
		{nil, nil, 0},
		{[]int32{1, 2, 3}, nil, 0},
		{[]int32{1, 2, 3}, []int32{2, 3, 4}, 2},
		{[]int32{1, 5, 9}, []int32{2, 6, 10}, 0},
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, 3},
	}
	for _, c := range cases {
		if got := IntersectSortedCount(c.a, c.b); got != c.want {
			t.Errorf("Intersect(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPartitionCoversAllVertices(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw%5000) + 1
		p := int(pRaw%64) + 1
		part := Partition{N: n, P: p}
		covered := 0
		prevHi := 0
		for rank := 0; rank < p; rank++ {
			lo, hi := part.Range(rank)
			if lo != prevHi || hi < lo {
				return false
			}
			for v := lo; v < hi; v++ {
				if part.Owner(v) != rank {
					return false
				}
			}
			if part.Count(rank) != hi-lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionBalance(t *testing.T) {
	part := Partition{N: 10, P: 3}
	// 10 = 4 + 3 + 3.
	if c := part.Count(0); c != 4 {
		t.Fatalf("Count(0) = %d", c)
	}
	if c := part.Count(1); c != 3 {
		t.Fatalf("Count(1) = %d", c)
	}
	if c := part.Count(2); c != 3 {
		t.Fatalf("Count(2) = %d", c)
	}
}

func TestDistributeAndRemoteLoc(t *testing.T) {
	g := triangle()
	const p = 2
	d0 := Distribute(g, p, 0)
	d1 := Distribute(g, p, 1)
	if !d0.Owned(0) || d0.Owned(3) || !d1.Owned(3) {
		t.Fatalf("ownership wrong")
	}
	// Vertex 2 is owned by rank 1 (partition 4 over 2: [0,2), [2,4)).
	owner, disp, size := d0.RemoteLoc(2)
	if owner != 1 {
		t.Fatalf("owner = %d", owner)
	}
	if size != g.Degree(2)*4 {
		t.Fatalf("size = %d", size)
	}
	// The bytes at that location in the owner's region decode to
	// adj(2).
	region := d1.LocalAdjBytes()
	got := DecodeAdj(region[disp:disp+size], nil)
	want := g.Neighbors(2)
	if len(got) != len(want) {
		t.Fatalf("adj lengths: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("adj[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestLocalAdjBytesRoundTrip(t *testing.T) {
	edges := rmat.Generate(8, 8, rmat.Graph500, 11)
	g := Build(1<<8, edges)
	const p = 4
	for rank := 0; rank < p; rank++ {
		d := Distribute(g, p, rank)
		region := d.LocalAdjBytes()
		for v := d.Lo; v < d.Hi; v++ {
			_, disp, size := d.RemoteLoc(v)
			got := DecodeAdj(region[disp:disp+size], nil)
			want := g.Neighbors(v)
			if len(got) != len(want) {
				t.Fatalf("rank %d v %d: lengths %d vs %d", rank, v, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("rank %d v %d adj[%d]: %d vs %d", rank, v, i, got[i], want[i])
				}
			}
		}
	}
}

func TestInt32Coding(t *testing.T) {
	var b [4]byte
	for _, v := range []int32{0, 1, -1, 1 << 30, -(1 << 30)} {
		putInt32(b[:], v)
		if Int32At(b[:]) != v {
			t.Fatalf("round trip of %d failed", v)
		}
	}
}

func TestDecodeAdjReuse(t *testing.T) {
	buf := make([]byte, 8)
	putInt32(buf, 7)
	putInt32(buf[4:], 9)
	scratch := make([]int32, 16)
	out := DecodeAdj(buf, scratch)
	if len(out) != 2 || out[0] != 7 || out[1] != 9 {
		t.Fatalf("DecodeAdj = %v", out)
	}
	if &out[0] != &scratch[0] {
		t.Fatalf("DecodeAdj did not reuse scratch")
	}
}
