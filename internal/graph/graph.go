// Package graph provides the compressed-sparse-row graphs and the 1-D
// partitioning used by the LCC experiments (paper §IV-C).
//
// The distributed layout follows the paper: vertices are block-partitioned
// over P ranks; each rank owns its vertices' adjacency lists and exposes
// them through an RMA window. The global offsets array is replicated on
// every rank (it is small), so the owner, displacement and size of any
// vertex's adjacency list can be computed locally and fetched with a
// single get — whose size is the vertex degree, reproducing the size
// distribution of Fig. 3.
package graph

import (
	"fmt"
	"sort"

	"clampi/internal/rmat"
)

// CSR is an immutable compressed-sparse-row graph.
type CSR struct {
	N    int
	Offs []int64 // len N+1; adjacency of v is Adj[Offs[v]:Offs[v+1]]
	Adj  []int32
}

// Build constructs a simple undirected graph from raw R-MAT edges:
// self-loops are dropped, both directions are added, and duplicate edges
// are removed. Adjacency lists are sorted ascending.
func Build(n int, edges []rmat.Edge) *CSR {
	deg := make([]int64, n+1)
	for _, e := range edges {
		if e.U == e.V || int(e.U) >= n || int(e.V) >= n || e.U < 0 || e.V < 0 {
			continue
		}
		deg[e.U+1]++
		deg[e.V+1]++
	}
	offs := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offs[i+1] = offs[i] + deg[i+1]
	}
	adj := make([]int32, offs[n])
	fill := make([]int64, n)
	for _, e := range edges {
		if e.U == e.V || int(e.U) >= n || int(e.V) >= n || e.U < 0 || e.V < 0 {
			continue
		}
		adj[offs[e.U]+fill[e.U]] = e.V
		fill[e.U]++
		adj[offs[e.V]+fill[e.V]] = e.U
		fill[e.V]++
	}
	// Sort and dedup each adjacency list, compacting in place.
	newOffs := make([]int64, n+1)
	w := int64(0)
	for v := 0; v < n; v++ {
		lo, hi := offs[v], offs[v]+fill[v]
		list := adj[lo:hi]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		start := w
		var prev int32 = -1
		for _, u := range list {
			if u != prev {
				adj[w] = u
				w++
				prev = u
			}
		}
		newOffs[v] = start
	}
	newOffs[n] = w
	// Shift starts: newOffs currently holds starts; convert to offsets.
	offs2 := make([]int64, n+1)
	copy(offs2, newOffs)
	return &CSR{N: n, Offs: offs2, Adj: append([]int32(nil), adj[:w]...)}
}

// Degree returns deg(v).
func (g *CSR) Degree(v int) int { return int(g.Offs[v+1] - g.Offs[v]) }

// Neighbors returns adj(v), sorted ascending. The slice aliases the
// graph's storage and must not be modified.
func (g *CSR) Neighbors(v int) []int32 { return g.Adj[g.Offs[v]:g.Offs[v+1]] }

// Edges returns the number of undirected edges.
func (g *CSR) Edges() int64 { return g.Offs[g.N] / 2 }

// MaxDegree returns the largest degree in the graph.
func (g *CSR) MaxDegree() int {
	m := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// Validate checks CSR structural invariants (test helper).
func (g *CSR) Validate() error {
	if len(g.Offs) != g.N+1 {
		return fmt.Errorf("graph: offsets length %d for %d vertices", len(g.Offs), g.N)
	}
	if g.Offs[0] != 0 || g.Offs[g.N] != int64(len(g.Adj)) {
		return fmt.Errorf("graph: offset bounds [%d, %d] vs %d adj entries", g.Offs[0], g.Offs[g.N], len(g.Adj))
	}
	for v := 0; v < g.N; v++ {
		if g.Offs[v] > g.Offs[v+1] {
			return fmt.Errorf("graph: negative degree at %d", v)
		}
		list := g.Neighbors(v)
		for i, u := range list {
			if int(u) < 0 || int(u) >= g.N {
				return fmt.Errorf("graph: neighbour %d of %d out of range", u, v)
			}
			if int(u) == v {
				return fmt.Errorf("graph: self loop at %d", v)
			}
			if i > 0 && list[i-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not sorted/unique", v)
			}
		}
	}
	// Symmetry: (u,v) implies (v,u).
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			if !g.HasEdge(int(u), v) {
				return fmt.Errorf("graph: asymmetric edge %d->%d", v, u)
			}
		}
	}
	return nil
}

// HasEdge reports whether (u, v) is in the graph (binary search).
func (g *CSR) HasEdge(u, v int) bool {
	list := g.Neighbors(u)
	i := sort.Search(len(list), func(i int) bool { return list[i] >= int32(v) })
	return i < len(list) && list[i] == int32(v)
}

// IntersectSortedCount returns |a ∩ b| for two ascending-sorted lists
// (the inner kernel of LCC).
func IntersectSortedCount(a, b []int32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Partition is a 1-D block partition of N vertices over P ranks: the
// first N%P ranks own ceil(N/P) vertices, the rest floor(N/P).
type Partition struct {
	N, P int
}

// Owner returns the rank owning vertex v.
func (p Partition) Owner(v int) int {
	q, r := p.N/p.P, p.N%p.P
	big := (q + 1) * r
	if v < big {
		return v / (q + 1)
	}
	return r + (v-big)/q
}

// Range returns the [lo, hi) vertex range owned by rank.
func (p Partition) Range(rank int) (lo, hi int) {
	q, r := p.N/p.P, p.N%p.P
	if rank < r {
		lo = rank * (q + 1)
		return lo, lo + q + 1
	}
	lo = r*(q+1) + (rank-r)*q
	return lo, lo + q
}

// Count returns the number of vertices owned by rank.
func (p Partition) Count(rank int) int {
	lo, hi := p.Range(rank)
	return hi - lo
}

// Dist is a rank's view of the distributed graph: the replicated offsets
// plus its local adjacency slice (the bytes it exposes via its window).
type Dist struct {
	G    *CSR // full graph (shared, read-only — in-process simulation)
	Part Partition
	Rank int
	Lo   int // first owned vertex
	Hi   int // one past last owned vertex
}

// Distribute builds rank's view of g over p ranks.
func Distribute(g *CSR, p, rank int) *Dist {
	part := Partition{N: g.N, P: p}
	lo, hi := part.Range(rank)
	return &Dist{G: g, Part: part, Rank: rank, Lo: lo, Hi: hi}
}

// LocalAdjBytes returns the rank's adjacency slice reinterpreted as the
// byte region it exposes via its RMA window (little-endian int32).
func (d *Dist) LocalAdjBytes() []byte {
	lo, hi := d.G.Offs[d.Lo], d.G.Offs[d.Hi]
	out := make([]byte, (hi-lo)*4)
	for i, u := range d.G.Adj[lo:hi] {
		putInt32(out[i*4:], u)
	}
	return out
}

// RemoteLoc returns the owner rank, byte displacement and byte size of
// vertex u's adjacency list in the owner's window.
func (d *Dist) RemoteLoc(u int) (owner, disp, size int) {
	owner = d.Part.Owner(u)
	olo, _ := d.Part.Range(owner)
	disp = int((d.G.Offs[u] - d.G.Offs[olo]) * 4)
	size = d.G.Degree(u) * 4
	return owner, disp, size
}

// Owned reports whether v is owned by this rank.
func (d *Dist) Owned(v int) bool { return v >= d.Lo && v < d.Hi }

func putInt32(b []byte, v int32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// Int32At decodes a little-endian int32 from b.
func Int32At(b []byte) int32 {
	return int32(b[0]) | int32(b[1])<<8 | int32(b[2])<<16 | int32(b[3])<<24
}

// DecodeAdj decodes a fetched adjacency byte buffer into vertex ids.
func DecodeAdj(b []byte, out []int32) []int32 {
	n := len(b) / 4
	if cap(out) < n {
		out = make([]int32, n)
	}
	out = out[:n]
	for i := 0; i < n; i++ {
		out[i] = Int32At(b[i*4:])
	}
	return out
}
