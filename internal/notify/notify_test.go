package notify

import (
	"errors"
	"sync"
	"testing"
)

func TestPushPollOrder(t *testing.T) {
	q := NewQueue(8)
	for i := 0; i < 5; i++ {
		if !q.Push(Notification{Origin: i, Target: 1, Disp: i * 8, Len: 8}) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if d := q.Depth(); d != 5 {
		t.Fatalf("Depth = %d, want 5", d)
	}
	buf := make([]Notification, 16)
	n, ov := q.Poll(buf)
	if n != 5 || ov {
		t.Fatalf("Poll = (%d, %v), want (5, false)", n, ov)
	}
	for i := 0; i < 5; i++ {
		if buf[i].Seq != uint64(i+1) || buf[i].Disp != i*8 {
			t.Fatalf("notification %d = %+v, want seq %d disp %d", i, buf[i], i+1, i*8)
		}
	}
	if d := q.Depth(); d != 0 {
		t.Fatalf("Depth after drain = %d, want 0", d)
	}
}

func TestOverflowShedsAndFlags(t *testing.T) {
	q := NewQueue(2)
	q.Push(Notification{Disp: 0})
	q.Push(Notification{Disp: 8})
	if q.Push(Notification{Disp: 16}) {
		t.Fatal("push into a full queue accepted")
	}
	if q.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", q.Dropped())
	}
	buf := make([]Notification, 4)
	n, ov := q.Poll(buf)
	if n != 2 || !ov {
		t.Fatalf("Poll = (%d, %v), want (2, true)", n, ov)
	}
	// The shed notification consumed sequence 3: the next accepted push
	// exposes the gap to consumers.
	q.Push(Notification{Disp: 24})
	n, ov = q.Poll(buf)
	if n != 1 || ov {
		t.Fatalf("second Poll = (%d, %v), want (1, false)", n, ov)
	}
	if buf[0].Seq != 4 {
		t.Fatalf("post-overflow Seq = %d, want 4 (gap at 3)", buf[0].Seq)
	}
}

func TestPartialPollKeepsOrder(t *testing.T) {
	q := NewQueue(8)
	for i := 0; i < 6; i++ {
		q.Push(Notification{Disp: i})
	}
	buf := make([]Notification, 4)
	n, _ := q.Poll(buf)
	if n != 4 || buf[0].Disp != 0 || buf[3].Disp != 3 {
		t.Fatalf("first Poll drained %d starting at %d", n, buf[0].Disp)
	}
	n, _ = q.Poll(buf)
	if n != 2 || buf[0].Disp != 4 {
		t.Fatalf("second Poll drained %d starting at %d", n, buf[0].Disp)
	}
}

func TestWaitWakesOnPush(t *testing.T) {
	q := NewQueue(4)
	done := make(chan error, 1)
	go func() { done <- q.Wait() }()
	q.Push(Notification{})
	if err := <-done; err != nil {
		t.Fatalf("Wait = %v", err)
	}
}

func TestWaitFailsOnClose(t *testing.T) {
	q := NewQueue(4)
	done := make(chan error, 1)
	go func() { done <- q.Wait() }()
	q.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("Wait after Close = %v, want ErrClosed", err)
	}
	if q.Push(Notification{}) {
		t.Fatal("push after Close accepted")
	}
}

func TestConcurrentPushers(t *testing.T) {
	q := NewQueue(4096)
	const pushers, each = 8, 128
	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				q.Push(Notification{Origin: p, Disp: i})
			}
		}(p)
	}
	wg.Wait()
	buf := make([]Notification, pushers*each)
	n, ov := q.Poll(buf)
	if n != pushers*each || ov {
		t.Fatalf("Poll = (%d, %v), want (%d, false)", n, ov, pushers*each)
	}
	seen := make(map[uint64]bool, n)
	for _, nf := range buf[:n] {
		if seen[nf.Seq] {
			t.Fatalf("duplicate seq %d", nf.Seq)
		}
		seen[nf.Seq] = true
	}
	for s := uint64(1); s <= uint64(n); s++ {
		if !seen[s] {
			t.Fatalf("missing seq %d", s)
		}
	}
}
