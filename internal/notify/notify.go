// Package notify provides the notification primitive of the notifiable-
// RMA extension (DESIGN.md §16): a bounded, per-window queue of write
// notifications that a target-side writer pushes and a caching reader
// drains to invalidate — or patch — exactly the spans that changed,
// instead of blanket-invalidating at every epoch closure.
//
// The design center is the UNR model (Feng et al.): PutNotify is an
// ordinary Put that additionally enqueues a small descriptor — origin,
// target, displacement, length, an application tag, and optionally the
// written bytes — at every subscribed rank. The queue is deliberately
// small and lossy-with-a-flag: when a reader falls behind, pushes are
// dropped and a sticky overflow flag is raised, which consumers treat
// as "coherence unknown, invalidate everything". Coherence is therefore
// never silently lost, only degraded to the epoch-blanket behaviour the
// cache had before notifications existed.
//
// Concurrency: Push and Poll are safe for concurrent use (many writer
// ranks push into one reader's queue in Throughput mode). The empty
// check (Depth) is one atomic load, so a caching hit path can probe the
// queue at zero allocation and negligible cost.
package notify

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Notification describes one notified write: origin wrote the byte span
// [Disp, Disp+Len) of target's region. Seq is the queue-local delivery
// sequence number, assigned contiguously at Push — a gap observed by a
// consumer means a notification was lost (dropped by the transport or
// shed by an overflowing queue) and coherence for unknown spans must be
// restored conservatively. Data, when non-nil, carries the bytes that
// were written, enabling in-place patching of cached copies.
type Notification struct {
	Origin int    // rank that issued the PutNotify
	Target int    // rank whose region was written
	Disp   int    // byte displacement of the write
	Len    int    // byte length of the write
	Tag    uint32 // application tag, carried verbatim
	Seq    uint64 // queue-local contiguous delivery sequence (from 1)
	Data   []byte // written bytes, nil when not carried
}

// ErrClosed reports Wait on a queue whose window was freed.
var ErrClosed = errors.New("notify: queue closed")

// DefaultCapacity bounds a queue whose subscriber did not choose one.
const DefaultCapacity = 256

// DataMax is the largest payload a backend carries inline in a
// notification; larger writes notify with Data == nil and consumers
// fall back from patching to span invalidation.
const DataMax = 64 << 10

// Queue is a bounded MPSC-friendly notification ring. All methods are
// safe for concurrent use.
type Queue struct {
	depth atomic.Int64 // clampi:atomic — lock-free emptiness probe for hit paths

	mu         sync.Mutex
	cond       *sync.Cond // signalled on push and close; guards via mu
	buf        []Notification
	head       int // index of the oldest queued notification
	count      int
	nextSeq    uint64
	dropped    uint64
	overflowed bool // sticky until reported by Poll
	closed     bool
}

// NewQueue builds a queue holding at most capacity notifications
// (DefaultCapacity when capacity <= 0).
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	q := &Queue{buf: make([]Notification, capacity)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Cap returns the queue's capacity.
func (q *Queue) Cap() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// Depth returns the number of queued notifications: one atomic load, so
// hit paths can probe for pending coherence work allocation-free.
func (q *Queue) Depth() int { return int(q.depth.Load()) }

// Push enqueues n, assigning the next delivery sequence number, and
// reports whether it was accepted. A full queue sheds the notification
// (its sequence number is still consumed, so consumers observe a gap)
// and raises the sticky overflow flag.
func (q *Queue) Push(n Notification) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.nextSeq++
	n.Seq = q.nextSeq
	if q.count == len(q.buf) {
		q.dropped++
		q.overflowed = true
		q.mu.Unlock()
		return false
	}
	q.buf[(q.head+q.count)%len(q.buf)] = n
	q.count++
	q.depth.Store(int64(q.count))
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

// Poll drains up to len(buf) notifications into buf in delivery order
// and returns how many were written plus the overflow flag, which is
// cleared by the report. An overflow means at least one notification
// was shed since the previous Poll: the consumer no longer knows every
// changed span and must invalidate conservatively.
func (q *Queue) Poll(buf []Notification) (n int, overflowed bool) {
	q.mu.Lock()
	n = q.count
	if n > len(buf) {
		n = len(buf)
	}
	for i := 0; i < n; i++ {
		buf[i] = q.buf[q.head]
		q.buf[q.head] = Notification{}
		q.head = (q.head + 1) % len(q.buf)
	}
	q.count -= n
	q.depth.Store(int64(q.count))
	overflowed = q.overflowed
	q.overflowed = false
	q.mu.Unlock()
	return n, overflowed
}

// LastSeq returns the highest delivery sequence number assigned so far
// (0 before the first push) — the delivered-count register of the UNR
// model. Shed and transport-lost notifications still consume sequence
// numbers, so a consumer that emptied the queue yet trails LastSeq has
// provably missed deliveries and must restore coherence conservatively.
func (q *Queue) LastSeq() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.nextSeq
}

// Wait blocks until the queue is non-empty (returning nil) or closed
// (returning ErrClosed). Backends whose execution mode cannot tolerate
// a blocked goroutine (the serialized FidelityMeasured run token) must
// bracket this call with their own leave/enter discipline.
func (q *Queue) Wait() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.count == 0 && q.closed {
		return ErrClosed
	}
	return nil
}

// Dropped returns the number of notifications shed by overflow.
func (q *Queue) Dropped() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

// Close wakes all waiters and fails future pushes; queued notifications
// remain pollable.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
