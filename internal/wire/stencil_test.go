package wire

import (
	"sync"
	"testing"

	"clampi/internal/mpi"
	"clampi/internal/stencil"
)

// TestStencilOverWire drives the halo-exchange kernel over the socket
// transport — one dialed client per rank, fence barriers rendezvousing
// at the server — and checks the grid is bit-identical to the simulated
// transport, in both coherence modes. The kernel itself is shared
// (stencil.RunRank is transport-agnostic); only the rma.Window under it
// differs.
func TestStencilOverWire(t *testing.T) {
	base := stencil.Config{Ranks: 3, Rows: 4, Cols: 32, Iters: 10}
	for _, notify := range []bool{false, true} {
		cfg := base
		cfg.Notify = notify
		sim, err := stencil.Run(cfg, mpi.FidelityMeasured)
		if err != nil {
			t.Fatalf("notify=%v: sim run: %v", notify, err)
		}

		s := testServer(t, ServeConfig{
			Windows: []WindowSpec{{Name: "grid", Regions: MakeRegions(cfg.Ranks, cfg.RegionBytes())}},
			World:   cfg.Ranks,
		})
		wins := make([]*Window, cfg.Ranks)
		for r := 0; r < cfg.Ranks; r++ {
			wins[r] = dialWindow(t, s, DialConfig{Window: "grid", Rank: r, World: cfg.Ranks})
		}

		results := make([]stencil.RankResult, cfg.Ranks)
		errs := make([]error, cfg.Ranks)
		var wg sync.WaitGroup
		for r := 0; r < cfg.Ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				results[r], errs[r] = stencil.RunRank(wins[r], r, cfg)
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("notify=%v: rank %d: %v", notify, r, err)
			}
		}
		wireRes := stencil.Combine(results)
		if wireRes.Checksum != sim.Checksum {
			t.Errorf("notify=%v: wire checksum %016x, sim %016x",
				notify, wireRes.Checksum, sim.Checksum)
		}
		if notify && wireRes.Stats.Notifications == 0 {
			t.Error("no notifications drained over the wire")
		}
	}
}
