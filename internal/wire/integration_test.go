// Multi-process loopback integration test: an in-process server (the
// same wire.Server cmd/clampi-serve shells around) hosts the adjacency
// regions of a distributed LCC instance, and itWorld separate client
// processes — re-executions of this test binary — each run the full
// caching stack over TCP against it. The per-rank results must be
// bit-identical to the same computation on the simulated backend: the
// cache's decisions depend on the key sequence, not on the transport.
//
// The chaos variant injects frame corruption into every client's inbound
// stream and proves the acceptance property end to end: the retry layer
// is exercised (Retries > 0) and zero incorrect bytes are delivered
// (results still bit-identical).
package wire_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/exec"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"clampi"
	"clampi/internal/getter"
	"clampi/internal/graph"
	"clampi/internal/lcc"
	"clampi/internal/rmat"
	"clampi/internal/wire"
)

// Fixed experiment shape shared by parent, children and the simulated
// reference. Everything is derived deterministically from these.
const (
	itScale = 8 // 256 vertices
	itEF    = 8
	itSeed  = 4242
	itWorld = 4
)

func itGraph() *graph.CSR {
	return graph.Build(1<<itScale, rmat.Generate(itScale, itEF, rmat.Graph500, itSeed))
}

// cacheOptions is the caching configuration under test. Sized so the
// working set fits without evictions: cache decisions then depend only
// on the deterministic key sequence, never on clock values — which is
// what makes wire (wall-charged clock) and simulated (modelled clock)
// runs comparable bit for bit.
func cacheOptions() []clampi.Option {
	return []clampi.Option{
		clampi.WithMode(clampi.AlwaysCache),
		clampi.WithIndexSlots(1 << 12),
		clampi.WithStorageBytes(1 << 20),
		clampi.WithSeed(3),
	}
}

// windowGetter adapts the public clampi.Window to the getter interface
// the LCC kernel consumes — one adapter used verbatim on both backends,
// so the cache sees the identical call sequence.
type windowGetter struct {
	w       *clampi.Window
	scratch []clampi.GetOp
}

func (g *windowGetter) Get(dst []byte, target, disp int) error {
	return g.w.GetBytes(dst, target, disp)
}
func (g *windowGetter) Flush() error { return g.w.FlushAll() }
func (g *windowGetter) Invalidate()  { g.w.Invalidate() }
func (g *windowGetter) Name() string { return "clampi" }

func (g *windowGetter) GetBatch(ops []getter.BatchOp) error {
	g.scratch = g.scratch[:0]
	for i := range ops {
		g.scratch = append(g.scratch, clampi.GetOp{Dst: ops[i].Dst, Target: ops[i].Target, Disp: ops[i].Disp})
	}
	err := g.w.GetBatch(g.scratch)
	for i := range g.scratch {
		g.scratch[i].Dst = nil
	}
	return err
}

// rankReport is one rank's outcome, JSON-printed by child processes and
// compared field by field against the simulated reference.
type rankReport struct {
	Rank        int
	Vertices    int
	SumLCCBits  uint64 // math.Float64bits(SumLCC): exact, not approximate
	Wedges      int64
	Gets        int64
	RemoteGets  int64
	RemoteBytes int64
	CacheGets   int64
	CacheHits   int64
	Retries     int64
	Timeouts    int64
}

func makeReport(rank int, res lcc.Result, st clampi.Stats) rankReport {
	return rankReport{
		Rank:        rank,
		Vertices:    res.Vertices,
		SumLCCBits:  math.Float64bits(res.SumLCC),
		Wedges:      res.Wedges,
		Gets:        res.Gets,
		RemoteGets:  res.RemoteGets,
		RemoteBytes: res.RemoteBytes,
		CacheGets:   st.Gets,
		CacheHits:   st.Hits,
		Retries:     st.Retries,
		Timeouts:    st.Timeouts,
	}
}

// TestMain dispatches child-process invocations (the wire clients of the
// multi-process tests) before the normal test runner takes over.
func TestMain(m *testing.M) {
	if os.Getenv("CLAMPI_WIRE_CHILD") == "1" {
		os.Exit(childMain())
	}
	os.Exit(m.Run())
}

// childMain is one wire client process: dial the parent's server with
// the public clampi.Dial API, run this rank's share of the LCC kernel
// through the caching layer, and print the rankReport as JSON.
func childMain() int {
	addr := os.Getenv("CLAMPI_WIRE_ADDR")
	rank, err := strconv.Atoi(os.Getenv("CLAMPI_WIRE_RANK"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "child: bad rank: %v\n", err)
		return 1
	}
	chaos := os.Getenv("CLAMPI_WIRE_CHAOS") == "1"

	opts := append(cacheOptions(),
		clampi.WithRank(rank),
		clampi.WithWorld(itWorld),
		clampi.WithDialTimeout(10*time.Second),
	)
	if chaos {
		// Flip one payload bit in bursts of two consecutive inbound data
		// frames. The frame checksum rejects each as rma.ErrCorrupt; the
		// first corruption fails the batched fetch, the second fails the
		// per-range refetch's first attempt too — forcing a genuine retry
		// (Retries > 0) before the burst ends, well inside the policy's
		// MaxAttempts. The handshake (OpWelcome) and acks pass untouched.
		var n atomic.Int64
		opts = append(opts,
			clampi.WithFrameTap(func(frame []byte) {
				if frame[3] == wire.OpData && len(frame) > 24 {
					if k := n.Add(1) % 7; k == 2 || k == 3 {
						frame[16] ^= 0x40
					}
				}
			}),
			clampi.WithRetry(clampi.DefaultRetryPolicy()),
		)
	}
	w, err := clampi.Dial(addr, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "child %d: dial %s: %v\n", rank, addr, err)
		return 1
	}
	defer w.Free()
	if err := w.LockAll(); err != nil {
		fmt.Fprintf(os.Stderr, "child %d: lock all: %v\n", rank, err)
		return 1
	}
	d := graph.Distribute(itGraph(), itWorld, rank)
	clock := w.Raw().Endpoint().Clock()
	res, err := lcc.Run(clock, d, &windowGetter{w: w}, lcc.Config{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "child %d: lcc: %v\n", rank, err)
		return 1
	}
	if err := w.UnlockAll(); err != nil {
		fmt.Fprintf(os.Stderr, "child %d: unlock all: %v\n", rank, err)
		return 1
	}
	if err := json.NewEncoder(os.Stdout).Encode(makeReport(rank, res, w.Stats())); err != nil {
		fmt.Fprintf(os.Stderr, "child %d: encode: %v\n", rank, err)
		return 1
	}
	return 0
}

// simulatedReports runs the identical LCC configuration on the simulated
// MPI backend and returns the per-rank reference reports.
func simulatedReports(t *testing.T) []rankReport {
	t.Helper()
	g := itGraph()
	reports := make([]rankReport, itWorld)
	err := clampi.Run(itWorld, clampi.RunConfig{}, func(r *clampi.Rank) error {
		d := graph.Distribute(g, itWorld, r.ID())
		w, err := clampi.Create(r, d.LocalAdjBytes(), nil, cacheOptions()...)
		if err != nil {
			return err
		}
		defer w.Free()
		if err := w.LockAll(); err != nil {
			return err
		}
		res, err := lcc.Run(r.Clock(), d, &windowGetter{w: w}, lcc.Config{})
		if err != nil {
			return err
		}
		if err := w.UnlockAll(); err != nil {
			return err
		}
		reports[r.ID()] = makeReport(r.ID(), res, w.Stats())
		return nil
	})
	if err != nil {
		t.Fatalf("simulated reference run: %v", err)
	}
	return reports
}

// serveGraphWindow starts the in-process daemon hosting each rank's
// adjacency region — the same bytes WinCreate would expose.
func serveGraphWindow(t *testing.T) *clampi.Server {
	t.Helper()
	g := itGraph()
	regions := make([][]byte, itWorld)
	for r := 0; r < itWorld; r++ {
		regions[r] = graph.Distribute(g, itWorld, r).LocalAdjBytes()
	}
	srv, err := clampi.Serve(clampi.ServeConfig{
		Network: "tcp",
		Addr:    "127.0.0.1:0",
		Windows: []clampi.WindowSpec{{Name: "lcc", Regions: regions}},
		World:   itWorld,
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(func() { srv.Shutdown(2 * time.Second) }) //clampi:walltime test teardown drain window
	return srv
}

// runChildren re-executes this test binary as itWorld concurrent client
// processes and decodes their reports.
func runChildren(t *testing.T, addr string, chaos bool) []rankReport {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("executable: %v", err)
	}
	type childOut struct {
		out, errb bytes.Buffer
		err       error
	}
	outs := make([]childOut, itWorld)
	done := make(chan int, itWorld)
	for r := 0; r < itWorld; r++ {
		r := r
		cmd := exec.Command(exe, "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"CLAMPI_WIRE_CHILD=1",
			"CLAMPI_WIRE_ADDR="+addr,
			"CLAMPI_WIRE_RANK="+strconv.Itoa(r),
		)
		if chaos {
			cmd.Env = append(cmd.Env, "CLAMPI_WIRE_CHAOS=1")
		}
		cmd.Stdout = &outs[r].out
		cmd.Stderr = &outs[r].errb
		go func() {
			outs[r].err = cmd.Run()
			done <- r
		}()
	}
	reports := make([]rankReport, itWorld)
	for i := 0; i < itWorld; i++ {
		select {
		case r := <-done:
			if outs[r].err != nil {
				t.Fatalf("child %d: %v\nstderr: %s", r, outs[r].err, outs[r].errb.String())
			}
			var rep rankReport
			if err := json.Unmarshal(outs[r].out.Bytes(), &rep); err != nil {
				t.Fatalf("child %d output %q: %v", r, outs[r].out.String(), err)
			}
			if rep.Rank != r {
				t.Fatalf("child %d reported rank %d", r, rep.Rank)
			}
			reports[r] = rep
		case <-time.After(120 * time.Second): //clampi:walltime watchdog on real child processes
			t.Fatalf("children did not finish")
		}
	}
	return reports
}

// compareReports checks the wire-backend results and cache decisions are
// bit-identical to the simulated reference, rank by rank. Resilience
// counters (Retries, Timeouts) are intentionally excluded: they describe
// the transport weather, not the computation.
func compareReports(t *testing.T, got, want []rankReport) {
	t.Helper()
	for r := range want {
		g, w := got[r], want[r]
		if g.Vertices != w.Vertices || g.SumLCCBits != w.SumLCCBits || g.Wedges != w.Wedges {
			t.Errorf("rank %d result diverges: wire {v=%d lcc=%x wedges=%d} vs simulated {v=%d lcc=%x wedges=%d}",
				r, g.Vertices, g.SumLCCBits, g.Wedges, w.Vertices, w.SumLCCBits, w.Wedges)
		}
		if g.Gets != w.Gets || g.RemoteGets != w.RemoteGets || g.RemoteBytes != w.RemoteBytes {
			t.Errorf("rank %d kernel counts diverge: wire {gets=%d remote=%d bytes=%d} vs simulated {gets=%d remote=%d bytes=%d}",
				r, g.Gets, g.RemoteGets, g.RemoteBytes, w.Gets, w.RemoteGets, w.RemoteBytes)
		}
		if g.CacheGets != w.CacheGets || g.CacheHits != w.CacheHits {
			t.Errorf("rank %d cache decisions diverge: wire {gets=%d hits=%d} vs simulated {gets=%d hits=%d}",
				r, g.CacheGets, g.CacheHits, w.CacheGets, w.CacheHits)
		}
	}
}

// TestMultiProcessLCC is the acceptance test of the wire transport:
// itWorld real client processes against a loopback daemon compute the
// same distributed LCC, bit for bit, as the simulated backend.
func TestMultiProcessLCC(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real client processes")
	}
	want := simulatedReports(t)
	srv := serveGraphWindow(t)
	got := runChildren(t, srv.Addr().String(), false)
	compareReports(t, got, want)
	for r := range got {
		if got[r].Retries != 0 {
			t.Errorf("rank %d retried %d times on a clean loopback", r, got[r].Retries)
		}
	}
}

// TestMultiProcessLCCChaos repeats the run with injected frame
// corruption in every client: the retry/breaker machinery must be
// exercised and must deliver zero incorrect reads — the results stay
// bit-identical to the simulated reference.
func TestMultiProcessLCCChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real client processes")
	}
	want := simulatedReports(t)
	srv := serveGraphWindow(t)
	got := runChildren(t, srv.Addr().String(), true)
	compareReports(t, got, want)
	var retries int64
	for r := range got {
		retries += got[r].Retries
	}
	if retries == 0 {
		t.Fatalf("chaos run exercised zero retries — the frame tap is not biting")
	}
}
