package wire

// Notifiable RMA over the socket transport (rma.NotifyWindow, DESIGN.md
// §16). The client's connection pool hands each RPC a private
// connection, so server pushes cannot ride the request/response streams:
// NotifyEnable dials one more connection and dedicates it with
// OpSubscribe — the server thereafter pushes an OpNotify frame into it
// for every remote PutNotify on the window.
//
// Delivery into the local queue is pull-based and deterministic: a pump
// writes an OpFlush marker on the subscribe connection and reads frames
// until the marker's ack. Frames on one connection are FIFO, so every
// push the server wrote before reading the marker — in particular every
// push for a write whose PutNotify ack preceded the last barrier — is
// enqueued when the pump returns. Fence pumps after its barrier round
// trip, giving the same "all pre-fence notifications are visible after
// Fence" guarantee the simulated backend provides for free.
//
// A pump failure (timeout, damaged frame, dead daemon) poisons the
// subscribe connection and latches the overflow flag: every subsequent
// poll reports overflowed=true, and the caching layer degrades to
// blanket invalidation. Coherence weakens to the epoch-granular
// behaviour, it is never silently lost.

import (
	"errors"
	"fmt"
	"time"

	"clampi/internal/datatype"
	"clampi/internal/notify"
	"clampi/internal/rma"
)

// ErrNotSubscribed reports a notification call before NotifyEnable.
var ErrNotSubscribed = errors.New("wire: rank not subscribed to notifications (call NotifyEnable)")

// NotifyEnable dials the dedicated subscribe connection, registers it
// with the server, and creates the local bounded queue
// (rma.NotifyWindow). Idempotent.
func (w *Window) NotifyEnable(capacity int) error {
	if w.freed {
		return rma.ErrFreed
	}
	if w.nq != nil {
		return nil
	}
	cc, err := w.cl.dialConn()
	if err != nil {
		return err
	}
	seq := w.cl.seq.Add(1)
	cc.wb = AppendFrame(cc.wb[:0], OpSubscribe, seq, nil)
	cc.c.SetDeadline(time.Now().Add(w.cl.cfg.DialTimeout)) //clampi:walltime subscribe handshake is bounded in wall time
	if _, werr := cc.c.Write(cc.wb); werr != nil {
		cc.c.Close()
		return classify(werr)
	}
	f, rerr := cc.fr.next()
	if rerr != nil {
		cc.c.Close()
		return classify(rerr)
	}
	cc.c.SetDeadline(time.Time{}) //clampi:walltime clears the subscribe handshake deadline
	switch f.Op {
	case OpAck:
		if f.Seq != seq {
			cc.c.Close()
			return fmt.Errorf("%w: subscribe response seq %d (want %d)", ErrProto, f.Seq, seq)
		}
	case OpError:
		code, msg, derr := decodeError(f.Payload)
		cc.c.Close()
		if derr != nil {
			return derr
		}
		return codeToError(code, msg)
	default:
		cc.c.Close()
		return fmt.Errorf("%w: subscribe answered with %s", ErrProto, OpName(f.Op))
	}
	w.nc = cc
	w.nq = notify.NewQueue(capacity)
	return nil
}

// NotifyDepth returns the number of locally queued notifications: one
// atomic load, no round trip (rma.NotifyWindow). Pushes still sitting in
// the subscribe socket are not counted until a pump (Fence, NotifyPoll)
// drains them — the epoch boundary is the coherence point.
func (w *Window) NotifyDepth() int {
	if w.nq == nil {
		return 0
	}
	return w.nq.Depth()
}

// NotifyLastSeq returns the highest delivery sequence number assigned
// by the local queue (rma.NotifyWindow). No pump: the register moves at
// the same coherence points (Fence, NotifyPoll) as delivery itself, so
// it is always consistent with what Poll has had the chance to return.
func (w *Window) NotifyLastSeq() uint64 {
	if w.nq == nil {
		return 0
	}
	return w.nq.LastSeq()
}

// NotifyPoll pumps the subscribe connection, then drains up to len(buf)
// notifications in delivery order (rma.NotifyWindow). A pump failure is
// reported as overflowed=true: the consumer must invalidate
// conservatively, exactly as after a queue shed.
func (w *Window) NotifyPoll(buf []notify.Notification) (int, bool) {
	if w.nq == nil {
		return 0, false
	}
	w.pumpNotify()
	n, ov := w.nq.Poll(buf)
	if w.notifyBad {
		ov = true
	}
	return n, ov
}

// NotifyWait blocks until a notification is queued or the window is
// freed (rma.NotifyWindow). The blocking read's wall duration is charged
// to the virtual clock like every wire wait.
func (w *Window) NotifyWait() error {
	if w.freed {
		return rma.ErrFreed
	}
	if w.nq == nil {
		return ErrNotSubscribed
	}
	w.pumpNotify()
	if w.nq.Depth() > 0 {
		return nil
	}
	if w.nc == nil {
		return fmt.Errorf("%w: notify connection lost", rma.ErrTransient)
	}
	w.nc.c.SetDeadline(time.Time{}) //clampi:walltime blocking on the next push is the point of NotifyWait
	start := time.Now()             //clampi:walltime wire waits charge their measured wall duration to the virtual clock
	for {
		f, err := w.nc.fr.next()
		if err != nil {
			w.poisonNotify()
			w.ep.clock.ChargeDuration(time.Since(start)) //clampi:walltime see above
			return classify(err)
		}
		if f.Op != OpNotify {
			w.poisonNotify()
			w.ep.clock.ChargeDuration(time.Since(start)) //clampi:walltime see above
			return fmt.Errorf("%w: %s frame on the subscribe connection outside a pump", ErrProto, OpName(f.Op))
		}
		p, derr := decodeNotify(f.Payload)
		if derr != nil {
			w.poisonNotify()
			w.ep.clock.ChargeDuration(time.Since(start)) //clampi:walltime see above
			return derr
		}
		w.enqueueNotify(p)
		w.ep.clock.ChargeDuration(time.Since(start)) //clampi:walltime see above
		return nil
	}
}

// PutNotify writes like Put and asks the server to push a notification
// descriptor to every subscribed rank except this one
// (rma.NotifyWindow). A strided datatype becomes one OpPutNotify per
// flattened block — each block is a genuine write, so per-block
// descriptors keep the spans exact.
func (w *Window) PutNotify(src []byte, dtype datatype.Datatype, count int, target, disp int, tag uint32) error {
	if w.freed {
		return rma.ErrFreed
	}
	if !w.inEpoch() {
		return rma.ErrNoEpoch
	}
	if target < 0 || target >= len(w.cl.regions) {
		return rma.ErrRankRange
	}
	size := datatype.TransferSize(dtype, count)
	if len(src) < size {
		return rma.ErrShortBuf
	}
	region := int(w.cl.regions[target])
	if size > 0 && dtype.Size() == dtype.Extent() {
		if disp < 0 || disp+size > region {
			return rma.ErrBounds
		}
		return w.putNotifyRange(src[:size], target, disp, tag)
	}
	blocks := datatype.FlattenTransfer(dtype, count, disp)
	for _, b := range blocks {
		if b.Offset < 0 || b.Offset+b.Size > region {
			return rma.ErrBounds
		}
	}
	n := 0
	for _, b := range blocks {
		if err := w.putNotifyRange(src[n:n+b.Size], target, b.Offset, tag); err != nil {
			return err
		}
		n += b.Size
	}
	return nil
}

func (w *Window) putNotifyRange(src []byte, target, disp int, tag uint32) error {
	w.eb = appendPutNotify(w.eb[:0], putNotifyReq{Target: int32(target), Disp: int64(disp), Tag: tag, Data: src})
	return w.rpc(OpPutNotify, w.eb, w.opDeadline, nil)
}

// pumpNotify drains every push the server has already written into the
// subscribe connection: it sends an OpFlush marker and reads frames
// until the marker's ack (per-connection FIFO makes that exhaustive).
// The marker round trip is charged to the virtual clock like any RPC;
// failures poison the connection and latch the overflow flag.
func (w *Window) pumpNotify() {
	if w.nq == nil || w.nc == nil {
		return
	}
	start := time.Now() //clampi:walltime wire RPCs charge their measured wall duration to the virtual clock (DESIGN.md §13)
	err := w.pumpOnce()
	w.ep.clock.ChargeDuration(time.Since(start)) //clampi:walltime see above
	if err != nil {
		w.poisonNotify()
	}
}

func (w *Window) pumpOnce() error {
	seq := w.cl.seq.Add(1)
	w.nb = AppendFrame(w.nb[:0], OpFlush, seq, nil)
	if d := w.opDeadline; d > 0 {
		w.nc.c.SetDeadline(time.Now().Add(d.Real())) //clampi:walltime per-op socket deadline mapped from the virtual deadline
	} else {
		w.nc.c.SetDeadline(time.Time{}) //clampi:walltime clears a stale per-op socket deadline
	}
	if _, err := w.nc.c.Write(w.nb); err != nil {
		return classify(err)
	}
	for {
		f, err := w.nc.fr.next()
		if err != nil {
			return classify(err)
		}
		switch f.Op {
		case OpNotify:
			p, derr := decodeNotify(f.Payload)
			if derr != nil {
				return derr
			}
			w.enqueueNotify(p)
		case OpAck:
			if f.Seq != seq {
				return fmt.Errorf("%w: pump ack seq %d (want %d)", ErrProto, f.Seq, seq)
			}
			return nil
		case OpError:
			code, msg, derr := decodeError(f.Payload)
			if derr != nil {
				return derr
			}
			return codeToError(code, msg)
		default:
			return fmt.Errorf("%w: %s frame on the subscribe connection", ErrProto, OpName(f.Op))
		}
	}
}

// enqueueNotify converts one decoded push into a queue entry, copying
// the data out of the frame reader's reused buffer. A shed (bounded
// queue) surfaces as the overflow flag at the next poll.
func (w *Window) enqueueNotify(p notifyPayload) {
	n := notify.Notification{
		Origin: int(p.Origin),
		Target: int(p.Target),
		Disp:   int(p.Disp),
		Len:    int(p.Len),
		Tag:    p.Tag,
	}
	if p.HasData {
		n.Data = append([]byte(nil), p.Data...)
	}
	w.nq.Push(n)
}

// poisonNotify retires a subscribe connection that produced a transport
// failure: the push stream can no longer be trusted to be aligned. The
// latched notifyBad flag keeps every later poll reporting overflow, so
// consumers stay on blanket invalidation.
func (w *Window) poisonNotify() {
	w.notifyBad = true
	if w.nc != nil {
		w.nc.c.Close()
		w.nc = nil
	}
}

// Compile-time check: the wire client is notification-capable.
var _ rma.NotifyWindow = (*Window)(nil)
