package wire

// Window implements the rma.Window contract over a socket client, so the
// caching layer (core), the getter shims, the batcher and the fault
// injector compose over a real transport unchanged. The origin-side
// state machine — epoch discipline, validation order, error sentinels —
// mirrors internal/mpi.Win exactly; what changes is only where the bytes
// live (the daemon's memory) and what an operation costs (a real round
// trip, charged to the virtual clock at its measured wall duration).
//
// Because every op is a synchronous RPC, the weak-consistency contract
// is satisfied trivially: a Get's dst is filled before the call returns,
// strictly earlier than the "after the next completion call" point the
// contract promises. Completion calls still matter — they are the epoch
// closure events the cache invalidates on — so Flush/Unlock/Fence close
// the local epoch (running listeners, then incrementing) just like the
// simulated backend, with Flush additionally spending one round trip so
// a completion call has transport cost here too.

import (
	"errors"
	"fmt"
	"time"

	"clampi/internal/datatype"
	"clampi/internal/notify"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// Endpoint is the rank's attachment to the wire transport: the granted
// rank identity, the world size (the window's region count), and the
// virtual clock the round trips are charged to.
type Endpoint struct {
	id    int
	size  int
	clock *simtime.Clock
}

// ID returns the rank id the server granted.
func (e *Endpoint) ID() int { return e.id }

// Size returns the number of ranks (regions) in the world.
func (e *Endpoint) Size() int { return e.size }

// Clock returns the rank's virtual clock. Wire ops advance it by their
// measured wall duration, so virtual time tracks wall time 1:1 on this
// backend.
func (e *Endpoint) Clock() *simtime.Clock { return e.clock }

// Window is one client process's handle on a daemon-hosted window.
// Like every rma.Window, it must be used from one goroutine (origin
// state is private per MPI semantics); the Client underneath may be
// shared across windows and goroutines.
type Window struct {
	cl   *Client
	ep   *Endpoint
	info rma.Info
	owns bool // Free also closes the client (package-level Open path)

	freed     bool
	epoch     int64
	listeners []rma.EpochListener

	lockedTargets map[int]rma.LockType
	lockedAll     bool
	fenceOpen     bool

	// opDeadline bounds each subsequent op (rma.DeadlineWindow); zero
	// means unbounded.
	opDeadline simtime.Duration

	eb []byte // request encode scratch

	// rtt holds the per-target round-trip EWMAs behind the
	// rma.LocalityWindow answers. Origin state, single-goroutine like
	// the rest of the Window — no atomics needed.
	rtt []rttStat

	// Notification state (rma.NotifyWindow, notify.go): the dedicated
	// subscribe connection the server pushes OpNotify frames into, the
	// local bounded queue a pump drains them into, and the latched
	// pump-failure flag that degrades consumers to blanket invalidation.
	nq        *notify.Queue
	nc        *clientConn
	nb        []byte // subscribe-connection encode scratch
	notifyBad bool
}

// rttStat is one target's measured fill-cost estimate.
type rttStat struct {
	ewmaNs float64 // EWMA of the per-op round-trip duration
	seen   bool
}

// Static interface conformance, matching the simulated backend plus the
// deadline extension only a wall-clock transport can honour.
var (
	_ rma.Window          = (*Window)(nil)
	_ rma.BatchWindow     = (*Window)(nil)
	_ rma.IntegrityWindow = (*Window)(nil)
	_ rma.LocalityWindow  = (*Window)(nil)
	_ rma.DeadlineWindow  = (*Window)(nil)
	_ rma.Endpoint        = (*Endpoint)(nil)
)

// NewWindow attaches a Window to the client's server-side window. info
// carries the CLaMPI hints exactly as on the simulated backend.
func (cl *Client) NewWindow(info rma.Info) *Window {
	return &Window{
		cl:   cl,
		ep:   &Endpoint{id: cl.rank, size: cl.World(), clock: simtime.NewClock()},
		info: info,
		rtt:  make([]rttStat, len(cl.regions)),
	}
}

// Open dials a daemon and returns a Window owning the connection pool:
// Free closes it. It is the one-call path the clampi.Dial surface uses.
func Open(cfg DialConfig, info rma.Info) (*Window, error) {
	cl, err := Dial(cfg)
	if err != nil {
		return nil, err
	}
	w := cl.NewWindow(info)
	w.owns = true
	return w, nil
}

// Client returns the underlying connection pool (for sharing across
// windows or inspecting the handshake results).
func (w *Window) Client() *Client { return w.cl }

// Endpoint returns the owning rank's transport endpoint.
func (w *Window) Endpoint() rma.Endpoint { return w.ep }

// Info returns the window's creation hints.
func (w *Window) Info() rma.Info { return w.info }

// Local returns nil: a wire client exposes no region of its own — all
// window memory lives in the daemon. (The caching layer never touches
// Local; applications that host data do so by Putting it to the server
// or by pre-filling regions in ServeConfig.)
func (w *Window) Local() []byte { return nil }

// RegionSize returns the size of target's exposed region, known since
// the handshake — no round trip.
func (w *Window) RegionSize(target int) (int, error) {
	if target < 0 || target >= len(w.cl.regions) {
		return 0, rma.ErrRankRange
	}
	return int(w.cl.regions[target]), nil
}

// Epoch returns the number of epochs this origin closed on this window.
func (w *Window) Epoch() int64 { return w.epoch }

// AddEpochListener registers f to run at every epoch closure by this
// origin on this window.
func (w *Window) AddEpochListener(f rma.EpochListener) {
	if f != nil {
		w.listeners = append(w.listeners, f)
	}
}

// SetOpDeadline bounds every subsequent operation to d of virtual time,
// mapped 1:1 onto a wall-clock socket deadline (rma.DeadlineWindow).
func (w *Window) SetOpDeadline(d simtime.Duration) {
	if d < 0 {
		d = 0
	}
	w.opDeadline = d
}

// rpc performs one exchange and charges its measured wall duration to
// the virtual clock — the sanctioned bridge that makes virtual-time
// budgets (RetryPolicy.Deadline, stats) meaningful on a real transport.
func (w *Window) rpc(op byte, payload []byte, deadline simtime.Duration, onData func(data []byte) error) error {
	start := time.Now() //clampi:walltime wire RPCs charge their measured wall duration to the virtual clock (DESIGN.md §13)
	err := w.cl.RPC(op, payload, deadline.Real(), onData)
	w.ep.clock.ChargeDuration(time.Since(start)) //clampi:walltime see above: wall->virtual charge is this backend's clock model
	return err
}

// inEpoch reports whether RMA calls are currently legal (mirror of
// internal/mpi).
func (w *Window) inEpoch() bool {
	return len(w.lockedTargets) > 0 || w.lockedAll || w.fenceOpen
}

// closeEpoch runs the listeners, then increments the counter — the
// contract internal/core keys its invalidation on.
func (w *Window) closeEpoch() {
	e := w.epoch
	for _, f := range w.listeners {
		f(e)
	}
	w.epoch++
}

// getRange fetches one contiguous validated range into dst.
func (w *Window) getRange(dst []byte, target, disp int) error {
	w.eb = appendRange(w.eb[:0], rangeReq{Target: int32(target), Disp: int64(disp), Size: int64(len(dst))})
	start := w.ep.clock.Now() // rpc charges measured wall time, so the clock delta IS the RTT
	err := w.rpc(OpGet, w.eb, w.opDeadline, func(data []byte) error {
		if len(data) != len(dst) {
			return fmt.Errorf("%w: get returned %dB (want %d)", ErrProto, len(data), len(dst))
		}
		copy(dst, data)
		return nil
	})
	if err == nil {
		w.noteRTT(target, w.ep.clock.Now()-start)
	}
	return err
}

// noteRTT folds one successful round trip into the target's fill-cost
// estimate: a 1/4-weight EWMA, heavy enough to track route changes,
// smooth enough to ignore scheduler jitter.
func (w *Window) noteRTT(target int, d simtime.Duration) {
	if target < 0 || target >= len(w.rtt) || d <= 0 {
		return
	}
	s := &w.rtt[target]
	if !s.seen {
		s.ewmaNs, s.seen = float64(d), true
		return
	}
	s.ewmaNs += (float64(d) - s.ewmaNs) / 4
}

// Fill-cost parameters of the wire backend's locality answers. A socket
// transport has no modelled topology, so the distance class is derived
// from the measured RTT bands below, and the size term assumes a
// 10 GB/s pipe (0.1 ns/B) — conservative for loopback, about right for
// a datacenter link.
const (
	rttDefaultNs   = 100e3 // unmeasured target: assume a 100 µs RTT
	rttSameNodeNs  = 30e3  // < 30 µs: loopback / unix socket → same-node
	rttOtherNodeNs = 200e3 // < 200 µs: one datacenter hop → other-node
	rttNsPerByte   = 0.1
)

// DistanceClass maps the target's measured RTT EWMA onto the
// rma.Distance* scale (rma.LocalityWindow). A socket is never as close
// as local DRAM, so the nearest class a wire target can earn is
// same-node; unmeasured targets default to other-node.
func (w *Window) DistanceClass(target int) int {
	if target < 0 || target >= len(w.rtt) || !w.rtt[target].seen {
		return rma.DistanceOtherNode
	}
	switch ns := w.rtt[target].ewmaNs; {
	case ns < rttSameNodeNs:
		return rma.DistanceSameNode
	case ns < rttOtherNodeNs:
		return rma.DistanceOtherNode
	default:
		return rma.DistanceOtherGroup
	}
}

// FillCost estimates fetching size bytes from target as the measured
// per-op RTT EWMA plus a bandwidth term (rma.LocalityWindow).
func (w *Window) FillCost(target, size int) simtime.Duration {
	base := rttDefaultNs
	if target >= 0 && target < len(w.rtt) && w.rtt[target].seen {
		base = w.rtt[target].ewmaNs
	}
	if size < 0 {
		size = 0
	}
	return simtime.Duration(base + float64(size)*rttNsPerByte)
}

// Get reads count elements of dtype from target's region at byte
// displacement disp into dst (packed). Validation mirrors internal/mpi
// bit for bit: freed, epoch, rank range, short buffer, bounds — so the
// two backends are indistinguishable to error-handling tests.
func (w *Window) Get(dst []byte, dtype datatype.Datatype, count int, target, disp int) error {
	if w.freed {
		return rma.ErrFreed
	}
	if !w.inEpoch() {
		return rma.ErrNoEpoch
	}
	if target < 0 || target >= len(w.cl.regions) {
		return rma.ErrRankRange
	}
	size := datatype.TransferSize(dtype, count)
	if len(dst) < size {
		return rma.ErrShortBuf
	}
	region := int(w.cl.regions[target])
	if size > 0 && dtype.Size() == dtype.Extent() {
		if disp < 0 || disp+size > region {
			return rma.ErrBounds
		}
		return w.getRange(dst[:size], target, disp)
	}
	blocks := datatype.FlattenTransfer(dtype, count, disp)
	for _, b := range blocks {
		if b.Offset < 0 || b.Offset+b.Size > region {
			return rma.ErrBounds
		}
	}
	n := 0
	for _, b := range blocks {
		if err := w.getRange(dst[n:n+b.Size], target, b.Offset); err != nil {
			return err
		}
		n += b.Size
	}
	return nil
}

// Put writes count elements of dtype from src (packed) into target's
// region at byte displacement disp.
func (w *Window) Put(src []byte, dtype datatype.Datatype, count int, target, disp int) error {
	if w.freed {
		return rma.ErrFreed
	}
	if !w.inEpoch() {
		return rma.ErrNoEpoch
	}
	if target < 0 || target >= len(w.cl.regions) {
		return rma.ErrRankRange
	}
	size := datatype.TransferSize(dtype, count)
	if len(src) < size {
		return rma.ErrShortBuf
	}
	region := int(w.cl.regions[target])
	if size > 0 && dtype.Size() == dtype.Extent() {
		if disp < 0 || disp+size > region {
			return rma.ErrBounds
		}
		return w.putRange(src[:size], target, disp)
	}
	blocks := datatype.FlattenTransfer(dtype, count, disp)
	for _, b := range blocks {
		if b.Offset < 0 || b.Offset+b.Size > region {
			return rma.ErrBounds
		}
	}
	n := 0
	for _, b := range blocks {
		if err := w.putRange(src[n:n+b.Size], target, b.Offset); err != nil {
			return err
		}
		n += b.Size
	}
	return nil
}

func (w *Window) putRange(src []byte, target, disp int) error {
	w.eb = appendPut(w.eb[:0], putReq{Target: int32(target), Disp: int64(disp), Data: src})
	return w.rpc(OpPut, w.eb, w.opDeadline, nil)
}

// doneRequest is the Request of a synchronous transport: the operation
// completed before the issuing call returned.
type doneRequest struct{ waited bool }

func (r *doneRequest) Wait() error {
	if r.waited {
		return rma.ErrDoneRequest
	}
	r.waited = true
	return nil
}

func (r *doneRequest) Test() bool { return true }

// Rget is Get returning a completable request; on this transport the
// request is already complete when Rget returns.
func (w *Window) Rget(dst []byte, dtype datatype.Datatype, count int, target, disp int) (rma.Request, error) {
	if err := w.Get(dst, dtype, count, target, disp); err != nil {
		return nil, err
	}
	return &doneRequest{}, nil
}

// Rput is Put returning a completable request (already complete).
func (w *Window) Rput(src []byte, dtype datatype.Datatype, count int, target, disp int) (rma.Request, error) {
	if err := w.Put(src, dtype, count, target, disp); err != nil {
		return nil, err
	}
	return &doneRequest{}, nil
}

// Accumulate combines src into target's region with op, element-wise
// atomically with respect to concurrent clients (the server applies the
// reduction under exclusive stripe locks). The supported datatypes and
// validation mirror internal/mpi.
func (w *Window) Accumulate(src []byte, dtype datatype.Datatype, count int, target, disp int, op rma.Op) error {
	if op == rma.OpReplace {
		return w.Put(src, dtype, count, target, disp)
	}
	if w.freed {
		return rma.ErrFreed
	}
	if !w.inEpoch() {
		return rma.ErrNoEpoch
	}
	if target < 0 || target >= len(w.cl.regions) {
		return rma.ErrRankRange
	}
	size := datatype.TransferSize(dtype, count)
	if len(src) < size {
		return rma.ErrShortBuf
	}
	var kind byte
	switch dtype {
	case datatype.Int32:
		kind = accInt32
	case datatype.Int64:
		kind = accInt64
	case datatype.Double:
		kind = accFloat64
	default:
		return ErrBadAccumulate
	}
	if disp < 0 || disp+size > int(w.cl.regions[target]) {
		return rma.ErrBounds
	}
	w.eb = appendAcc(w.eb[:0], accReq{Target: int32(target), Disp: int64(disp), Op: byte(op), Kind: kind, Data: src[:size]})
	return w.rpc(OpAccumulate, w.eb, w.opDeadline, nil)
}

// GetBatch issues every op in one (or, above the frame payload limit, a
// few) round trips — the configuration where the miss coalescing of the
// caching layer saves real syscalls, not just simulated latency
// (rma.BatchWindow). Validation of all ops happens client-side up front,
// mirroring internal/mpi; a transport failure mid-batch is reported as a
// *rma.BatchError carrying the index of the first op of the failed
// chunk, so callers can account the delivered prefix.
func (w *Window) GetBatch(ops []rma.GetOp) error {
	if w.freed {
		return rma.ErrFreed
	}
	if !w.inEpoch() {
		return rma.ErrNoEpoch
	}
	for i := range ops {
		op := &ops[i]
		if op.Target < 0 || op.Target >= len(w.cl.regions) {
			return rma.ErrRankRange
		}
		if op.Disp < 0 || op.Disp+len(op.Dst) > int(w.cl.regions[op.Target]) {
			return rma.ErrBounds
		}
	}
	// Chunk so neither the request nor the response frame exceeds the
	// payload limit. The response is the binding constraint in practice
	// (the data dwarfs the 20-byte descriptors).
	limit := w.cl.cfg.MaxPayload
	for start := 0; start < len(ops); {
		end := start
		reqBytes, respBytes := 4, 0
		for end < len(ops) {
			r := reqBytes + rangeReqSize
			p := respBytes + len(ops[end].Dst)
			if end > start && (r > limit || p > limit) {
				break
			}
			reqBytes, respBytes = r, p
			end++
		}
		if err := w.getBatchChunk(ops[start:end], respBytes); err != nil {
			return &rma.BatchError{Op: start, Err: err}
		}
		start = end
	}
	return nil
}

// getBatchChunk issues one OpGetBatch round trip and scatters the
// concatenated response into the ops' dst buffers.
func (w *Window) getBatchChunk(ops []rma.GetOp, want int) error {
	w.eb = appendBatch(w.eb[:0], ops)
	// A single-target chunk is one more RTT sample for that target;
	// mixed-target chunks are not attributed (no way to split the
	// round trip fairly).
	sameTarget := len(ops) > 0
	for i := 1; i < len(ops) && sameTarget; i++ {
		sameTarget = ops[i].Target == ops[0].Target
	}
	start := w.ep.clock.Now()
	err := w.rpc(OpGetBatch, w.eb, w.opDeadline, func(data []byte) error {
		if len(data) != want {
			return fmt.Errorf("%w: batch returned %dB (want %d)", ErrProto, len(data), want)
		}
		n := 0
		for i := range ops {
			n += copy(ops[i].Dst, data[n:n+len(ops[i].Dst)])
		}
		return nil
	})
	if err == nil && sameTarget {
		w.noteRTT(ops[0].Target, w.ep.clock.Now()-start)
	}
	return err
}

// Checksum returns the server-computed rma.ChecksumBytes of target's
// region bytes [disp, disp+size) (rma.IntegrityWindow) — the attestation
// the fill verifier compares delivered payloads against. Like the
// simulated backend it requires no open epoch: it is a control-channel
// read. The attestation round trip is itself frame-checksummed, so a
// damaged attestation is retried rather than mistaken for a corrupt
// fill.
func (w *Window) Checksum(target, disp, size int) (uint64, error) {
	if w.freed {
		return 0, rma.ErrFreed
	}
	if target < 0 || target >= len(w.cl.regions) {
		return 0, rma.ErrRankRange
	}
	if disp < 0 || size < 0 || disp+size > int(w.cl.regions[target]) {
		return 0, rma.ErrBounds
	}
	var sum uint64
	w.eb = appendRange(w.eb[:0], rangeReq{Target: int32(target), Disp: int64(disp), Size: int64(size)})
	err := w.rpc(OpChecksum, w.eb, w.opDeadline, func(data []byte) error {
		if len(data) != 8 {
			return fmt.Errorf("%w: checksum returned %dB", ErrProto, len(data))
		}
		sum = leU64(data)
		return nil
	})
	return sum, err
}

// Lock opens a passive-target access epoch towards target with a shared
// lock; LockWithType selects the lock type. The acquisition is a real
// server round trip: cross-process mutual exclusion, not simulation.
func (w *Window) Lock(target int) error { return w.LockWithType(rma.LockShared, target) }

// LockWithType opens a passive-target epoch with an explicit lock type.
func (w *Window) LockWithType(typ rma.LockType, target int) error {
	if w.freed {
		return rma.ErrFreed
	}
	if target < 0 || target >= len(w.cl.regions) {
		return rma.ErrRankRange
	}
	if _, held := w.lockedTargets[target]; held {
		return ErrAlreadyLocked
	}
	w.eb = appendLock(w.eb[:0], lockReq{Target: int32(target), Type: byte(typ)})
	// No op deadline on lock acquisition: blocking on a contended
	// exclusive lock is the intended semantics, not a fault.
	if err := w.rpc(OpLock, w.eb, 0, nil); err != nil {
		return err
	}
	if w.lockedTargets == nil {
		w.lockedTargets = make(map[int]rma.LockType)
	}
	w.lockedTargets[target] = typ
	return nil
}

// LockAll opens a passive-target epoch towards all ranks. Like the
// simulated backend it takes no per-target server locks — lock-all
// epochs are the shared-read mode the caching workloads use, and
// readers never exclude each other.
func (w *Window) LockAll() error {
	if w.freed {
		return rma.ErrFreed
	}
	w.lockedAll = true
	return nil
}

// Unlock completes operations towards target and ends the epoch,
// releasing the server-side lock.
func (w *Window) Unlock(target int) error {
	if w.freed {
		return rma.ErrFreed
	}
	typ, held := w.lockedTargets[target]
	if !held {
		return rma.ErrNoEpoch
	}
	w.eb = appendLock(w.eb[:0], lockReq{Target: int32(target), Type: byte(typ)})
	if err := w.rpc(OpUnlock, w.eb, w.opDeadline, nil); err != nil {
		return err
	}
	w.closeEpoch()
	delete(w.lockedTargets, target)
	return nil
}

// UnlockAll ends a lock-all epoch.
func (w *Window) UnlockAll() error {
	if w.freed {
		return rma.ErrFreed
	}
	if !w.lockedAll {
		return rma.ErrNoEpoch
	}
	w.closeEpoch()
	w.lockedAll = false
	return nil
}

// Flush completes outstanding operations towards target without
// releasing the lock; it is an epoch-closure event. On a synchronous
// transport nothing is pending, but the call still spends one round trip
// (OpFlush) so completion calls have transport cost here as everywhere.
func (w *Window) Flush(target int) error {
	if w.freed {
		return rma.ErrFreed
	}
	if !w.inEpoch() {
		return rma.ErrNoEpoch
	}
	if target < 0 || target >= len(w.cl.regions) {
		return rma.ErrRankRange
	}
	if err := w.rpc(OpFlush, nil, w.opDeadline, nil); err != nil {
		return err
	}
	w.closeEpoch()
	return nil
}

// FlushAll completes all outstanding operations and closes the epoch.
func (w *Window) FlushAll() error {
	if w.freed {
		return rma.ErrFreed
	}
	if !w.inEpoch() {
		return rma.ErrNoEpoch
	}
	if err := w.rpc(OpFlush, nil, w.opDeadline, nil); err != nil {
		return err
	}
	w.closeEpoch()
	return nil
}

// Fence is the active-target collective synchronization: it closes a
// fence-delimited epoch (if open) and rendezvouses with every other
// member of the window's world at the server before opening the next.
// The world size must have been declared (DialConfig.World or
// ServeConfig.World), else the barrier completes immediately.
func (w *Window) Fence() error {
	if w.freed {
		return rma.ErrFreed
	}
	if w.fenceOpen {
		w.closeEpoch()
	}
	// No op deadline: waiting for stragglers is the point of a barrier.
	if err := w.rpc(OpBarrier, nil, 0, nil); err != nil {
		return err
	}
	// Pump the subscribe connection after the rendezvous: every PutNotify
	// acked before any rank entered the barrier has its push in our
	// socket by now (per-connection FIFO), so post-Fence polls observe
	// every pre-Fence notification — the simulated backend's guarantee,
	// reproduced over real sockets.
	if w.nq != nil {
		w.pumpNotify()
	}
	w.fenceOpen = true
	return nil
}

// Post/Start/Complete/Wait (generalized active-target synchronization)
// are not carried by the socket transport: PSCW needs origin/target
// group bookkeeping this protocol does not model. The paper's workloads
// use passive-target and fence epochs only.
func (w *Window) Post(origins []int) error  { return fmt.Errorf("%w: Post", ErrUnsupported) }
func (w *Window) Start(targets []int) error { return fmt.Errorf("%w: Start", ErrUnsupported) }
func (w *Window) Complete() error           { return fmt.Errorf("%w: Complete", ErrUnsupported) }
func (w *Window) Wait() error               { return fmt.Errorf("%w: Wait", ErrUnsupported) }

// Free releases the window. When the window owns its client (the Open
// path) the connection pool closes with it.
func (w *Window) Free() error {
	if w.freed {
		return rma.ErrFreed
	}
	w.freed = true
	if w.nq != nil {
		w.nq.Close() // wakes NotifyWait blockers with notify.ErrClosed
	}
	if w.nc != nil {
		w.nc.c.Close()
		w.nc = nil
	}
	if w.owns {
		return w.cl.Close()
	}
	return nil
}

// ErrAlreadyLocked reports a second Lock on a target this origin already
// holds locked (mirror of the simulated backend's sentinel).
var ErrAlreadyLocked = errors.New("wire: target already locked by this origin")
