package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"clampi/internal/datatype"
	"clampi/internal/obsv"
	"clampi/internal/rma"
)

// testServer starts an in-process server on a loopback TCP listener and
// arranges its shutdown with the test.
func testServer(t *testing.T, cfg ServeConfig) *Server {
	t.Helper()
	if cfg.Network == "" {
		cfg.Network = "tcp"
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := Serve(cfg)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(func() { s.Shutdown(2 * time.Second) }) //clampi:walltime test teardown drain window
	return s
}

func patternRegions(n, size int) [][]byte {
	regions := MakeRegions(n, size)
	for t, reg := range regions {
		for i := range reg {
			reg[i] = byte(t*131 + i*31 + (i >> 8))
		}
	}
	return regions
}

func dialWindow(t *testing.T, s *Server, cfg DialConfig) *Window {
	t.Helper()
	cfg.Network = s.Addr().Network()
	cfg.Addr = s.Addr().String()
	if cfg.Rank == 0 {
		cfg.Rank = RankAuto
	}
	w, err := Open(cfg, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { w.Free() })
	return w
}

// TestWindowRoundTripTCP drives the full rma.Window surface over a TCP
// loopback: dense and strided gets, put/readback, accumulate, batch,
// checksum attestation, epoch accounting.
func TestWindowRoundTripTCP(t *testing.T) {
	const regSize = 1 << 12
	regions := patternRegions(3, regSize)
	want := make([][]byte, 3)
	for i := range regions {
		want[i] = append([]byte(nil), regions[i]...)
	}
	s := testServer(t, ServeConfig{Windows: []WindowSpec{{Name: "w", Regions: regions}}})
	w := dialWindow(t, s, DialConfig{Window: "w"})

	if got := w.Endpoint().Size(); got != 3 {
		t.Fatalf("world size = %d, want 3", got)
	}
	if sz, err := w.RegionSize(2); err != nil || sz != regSize {
		t.Fatalf("RegionSize = %d, %v", sz, err)
	}
	if err := w.LockAll(); err != nil {
		t.Fatalf("lock all: %v", err)
	}

	// Dense get.
	dst := make([]byte, 256)
	if err := w.Get(dst, datatype.Byte, len(dst), 1, 128); err != nil {
		t.Fatalf("get: %v", err)
	}
	if !bytes.Equal(dst, want[1][128:128+256]) {
		t.Fatalf("dense get payload mismatch")
	}

	// Strided get: a vector of 4-byte blocks with stride 16.
	vec := datatype.Vector(3, 4, 16, datatype.Byte)
	sdst := make([]byte, datatype.TransferSize(vec, 2))
	if err := w.Get(sdst, vec, 2, 2, 64); err != nil {
		t.Fatalf("strided get: %v", err)
	}
	off := 0
	for _, b := range datatype.FlattenTransfer(vec, 2, 64) {
		if !bytes.Equal(sdst[off:off+b.Size], want[2][b.Offset:b.Offset+b.Size]) {
			t.Fatalf("strided block at %d mismatch", b.Offset)
		}
		off += b.Size
	}

	// Put + readback.
	src := bytes.Repeat([]byte{0x5A}, 64)
	if err := w.Put(src, datatype.Byte, len(src), 0, 512); err != nil {
		t.Fatalf("put: %v", err)
	}
	back := make([]byte, 64)
	if err := w.Get(back, datatype.Byte, len(back), 0, 512); err != nil {
		t.Fatalf("readback: %v", err)
	}
	if !bytes.Equal(back, src) {
		t.Fatalf("readback mismatch after put")
	}

	// Accumulate OpSum over int64.
	var acc [8]byte
	binary.LittleEndian.PutUint64(acc[:], 5)
	if err := w.Put(acc[:], datatype.Byte, 8, 0, 0); err != nil {
		t.Fatalf("seed accumulate cell: %v", err)
	}
	binary.LittleEndian.PutUint64(acc[:], 37)
	if err := w.Accumulate(acc[:], datatype.Int64, 1, 0, 0, rma.OpSum); err != nil {
		t.Fatalf("accumulate: %v", err)
	}
	if err := w.Get(acc[:], datatype.Byte, 8, 0, 0); err != nil {
		t.Fatalf("get accumulated: %v", err)
	}
	if got := binary.LittleEndian.Uint64(acc[:]); got != 42 {
		t.Fatalf("accumulated value = %d, want 42", got)
	}

	// Batch across targets.
	b0, b1, b2 := make([]byte, 100), make([]byte, 200), make([]byte, 50)
	ops := []rma.GetOp{
		{Dst: b0, Target: 1, Disp: 0},
		{Dst: b1, Target: 2, Disp: 1000},
		{Dst: b2, Target: 1, Disp: 2000},
	}
	if err := w.GetBatch(ops); err != nil {
		t.Fatalf("get batch: %v", err)
	}
	if !bytes.Equal(b0, want[1][:100]) || !bytes.Equal(b1, want[2][1000:1200]) || !bytes.Equal(b2, want[1][2000:2050]) {
		t.Fatalf("batch payload mismatch")
	}

	// Checksum attestation over an untouched range.
	sum, err := w.Checksum(1, 128, 256)
	if err != nil {
		t.Fatalf("checksum: %v", err)
	}
	if wantSum := rma.ChecksumBytes(want[1][128 : 128+256]); sum != wantSum {
		t.Fatalf("checksum = %016x, want %016x", sum, wantSum)
	}

	// Completion calls close epochs.
	e0 := w.Epoch()
	if err := w.FlushAll(); err != nil {
		t.Fatalf("flush all: %v", err)
	}
	if err := w.UnlockAll(); err != nil {
		t.Fatalf("unlock all: %v", err)
	}
	if w.Epoch() != e0+2 {
		t.Fatalf("epoch advanced %d, want 2", w.Epoch()-e0)
	}
	// The clock was charged for the round trips.
	if w.Endpoint().Clock().Now() == 0 {
		t.Fatalf("virtual clock not charged by wire round trips")
	}
}

// TestWindowUnixSocket checks the same wire works over a Unix-domain
// socket.
func TestWindowUnixSocket(t *testing.T) {
	regions := patternRegions(2, 1024)
	sock := filepath.Join(t.TempDir(), "clampi.sock")
	s := testServer(t, ServeConfig{
		Network: "unix", Addr: sock,
		Windows: []WindowSpec{{Name: "w", Regions: regions}},
	})
	w := dialWindow(t, s, DialConfig{})
	if err := w.LockAll(); err != nil {
		t.Fatalf("lock all: %v", err)
	}
	dst := make([]byte, 128)
	if err := w.Get(dst, datatype.Byte, len(dst), 1, 256); err != nil {
		t.Fatalf("get over unix socket: %v", err)
	}
	if !bytes.Equal(dst, regions[1][256:384]) {
		t.Fatalf("unix socket payload mismatch")
	}
	if err := w.UnlockAll(); err != nil {
		t.Fatalf("unlock all: %v", err)
	}
}

// TestErrorParity checks the wire window reports the same sentinels, in
// the same validation order, as the simulated backend — the property
// that makes the two backends interchangeable under errors.Is.
func TestErrorParity(t *testing.T) {
	s := testServer(t, ServeConfig{Windows: []WindowSpec{{Name: "w", Regions: MakeRegions(2, 256)}}})
	w := dialWindow(t, s, DialConfig{})
	dst := make([]byte, 16)

	if err := w.Get(dst, datatype.Byte, 16, 0, 0); !errors.Is(err, rma.ErrNoEpoch) {
		t.Fatalf("get outside epoch: %v", err)
	}
	if err := w.LockAll(); err != nil {
		t.Fatalf("lock all: %v", err)
	}
	if err := w.Get(dst, datatype.Byte, 16, 5, 0); !errors.Is(err, rma.ErrRankRange) || !errors.Is(err, rma.ErrOutOfRange) {
		t.Fatalf("rank range: %v", err)
	}
	if err := w.Get(dst, datatype.Byte, 32, 0, 0); !errors.Is(err, rma.ErrShortBuf) {
		t.Fatalf("short buffer: %v", err)
	}
	if err := w.Get(dst, datatype.Byte, 16, 0, 250); !errors.Is(err, rma.ErrBounds) || !errors.Is(err, rma.ErrOutOfRange) {
		t.Fatalf("bounds: %v", err)
	}
	if err := w.Accumulate(dst, datatype.Bytes(16), 1, 0, 0, rma.OpSum); !errors.Is(err, ErrBadAccumulate) {
		t.Fatalf("bad accumulate dtype: %v", err)
	}
	if err := w.Unlock(1); !errors.Is(err, rma.ErrNoEpoch) {
		t.Fatalf("unlock without lock: %v", err)
	}
	if err := w.Post(nil); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("post: %v", err)
	}
	if err := w.UnlockAll(); err != nil {
		t.Fatalf("unlock all: %v", err)
	}

	if err := w.Lock(1); err != nil {
		t.Fatalf("lock: %v", err)
	}
	if err := w.Lock(1); !errors.Is(err, ErrAlreadyLocked) {
		t.Fatalf("double lock: %v", err)
	}
	if err := w.Unlock(1); err != nil {
		t.Fatalf("unlock: %v", err)
	}

	if err := w.Free(); err != nil {
		t.Fatalf("free: %v", err)
	}
	if err := w.Get(dst, datatype.Byte, 16, 0, 0); !errors.Is(err, rma.ErrFreed) {
		t.Fatalf("get after free: %v", err)
	}
	if err := w.Free(); !errors.Is(err, rma.ErrFreed) {
		t.Fatalf("double free: %v", err)
	}
}

// TestDialFailures checks handshake-level rejections carry the right
// sentinels.
func TestDialFailures(t *testing.T) {
	s := testServer(t, ServeConfig{
		Windows: []WindowSpec{{Name: "w", Regions: MakeRegions(2, 64)}},
		World:   2,
	})
	addr := s.Addr().String()
	if _, err := Dial(DialConfig{Addr: addr, Window: "nope", Rank: RankAuto}); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("unknown window: %v", err)
	}
	if _, err := Dial(DialConfig{Addr: addr, World: 7, Rank: RankAuto}); !errors.Is(err, ErrBadWorld) {
		t.Fatalf("world mismatch: %v", err)
	}
	if _, err := Dial(DialConfig{Addr: addr, Rank: 99}); !errors.Is(err, ErrBadWorld) {
		t.Fatalf("out-of-world rank: %v", err)
	}
	if _, err := Dial(DialConfig{Network: "tcp", Addr: "127.0.0.1:1", Rank: RankAuto, DialTimeout: time.Second}); !errors.Is(err, rma.ErrTransient) {
		t.Fatalf("refused dial: %v", err)
	}
}

// TestExclusiveLockBlocks checks cross-client mutual exclusion: an
// exclusive lock held by one client delays another client's exclusive
// lock until release.
func TestExclusiveLockBlocks(t *testing.T) {
	s := testServer(t, ServeConfig{Windows: []WindowSpec{{Name: "w", Regions: MakeRegions(1, 64)}}})
	w1 := dialWindow(t, s, DialConfig{})
	w2 := dialWindow(t, s, DialConfig{})

	if err := w1.LockWithType(rma.LockExclusive, 0); err != nil {
		t.Fatalf("first lock: %v", err)
	}
	acquired := make(chan error, 1)
	var released atomic.Bool
	go func() {
		err := w2.LockWithType(rma.LockExclusive, 0)
		if err == nil && !released.Load() {
			err = errors.New("second exclusive lock granted while first still held")
		}
		acquired <- err
	}()
	time.Sleep(50 * time.Millisecond) //clampi:walltime give the competing lock time to reach the server
	released.Store(true)
	if err := w1.Unlock(0); err != nil {
		t.Fatalf("unlock: %v", err)
	}
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("second lock: %v", err)
		}
	case <-time.After(5 * time.Second): //clampi:walltime test watchdog
		t.Fatalf("second lock never granted after release")
	}
	if err := w2.Unlock(0); err != nil {
		t.Fatalf("second unlock: %v", err)
	}
}

// TestLockReleasedOnDisconnect checks a client that dies holding a
// passive-target lock does not wedge the fleet: the server releases its
// locks when the connection drops.
func TestLockReleasedOnDisconnect(t *testing.T) {
	s := testServer(t, ServeConfig{Windows: []WindowSpec{{Name: "w", Regions: MakeRegions(1, 64)}}})
	w1 := dialWindow(t, s, DialConfig{PoolSize: 1})
	w2 := dialWindow(t, s, DialConfig{})

	if err := w1.LockWithType(rma.LockExclusive, 0); err != nil {
		t.Fatalf("lock: %v", err)
	}
	// Abrupt death: close the pool without unlocking.
	w1.Client().Close()
	done := make(chan error, 1)
	go func() { done <- w2.LockWithType(rma.LockExclusive, 0) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("lock after holder died: %v", err)
		}
	case <-time.After(5 * time.Second): //clampi:walltime test watchdog
		t.Fatalf("lock still held by dead client")
	}
	if err := w2.Unlock(0); err != nil {
		t.Fatalf("unlock: %v", err)
	}
}

// TestFence checks the barrier rendezvous: two clients of a world of
// two meet at Fence; neither returns until both arrive.
func TestFence(t *testing.T) {
	s := testServer(t, ServeConfig{
		Windows: []WindowSpec{{Name: "w", Regions: MakeRegions(2, 64)}},
		World:   2,
	})
	w1 := dialWindow(t, s, DialConfig{World: 2})
	w2 := dialWindow(t, s, DialConfig{World: 2})

	first := make(chan error, 1)
	go func() { first <- w1.Fence() }()
	select {
	case err := <-first:
		t.Fatalf("fence returned before the world arrived: %v", err)
	case <-time.After(100 * time.Millisecond): //clampi:walltime verifying the barrier blocks in real time
	}
	if err := w2.Fence(); err != nil {
		t.Fatalf("second fence: %v", err)
	}
	select {
	case err := <-first:
		if err != nil {
			t.Fatalf("first fence: %v", err)
		}
	case <-time.After(5 * time.Second): //clampi:walltime test watchdog
		t.Fatalf("first fence never released")
	}
}

// TestShutdownDrain checks graceful drain: a barrier waiter is released
// with ErrShutdown, post-drain dials are refused, and Shutdown returns.
func TestShutdownDrain(t *testing.T) {
	s, err := Serve(ServeConfig{
		Network: "tcp", Addr: "127.0.0.1:0",
		Windows: []WindowSpec{{Name: "w", Regions: MakeRegions(1, 64)}},
		World:   2,
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	w := dialWindow(t, s, DialConfig{World: 2})
	fenced := make(chan error, 1)
	go func() { fenced <- w.Fence() }()
	time.Sleep(50 * time.Millisecond)                   //clampi:walltime let the barrier arrival reach the server
	if err := s.Shutdown(2 * time.Second); err != nil { //clampi:walltime drain window under test
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-fenced:
		if !errors.Is(err, rma.ErrTransient) {
			t.Fatalf("drained fence error = %v, want transient (ErrShutdown)", err)
		}
	case <-time.After(5 * time.Second): //clampi:walltime test watchdog
		t.Fatalf("barrier waiter not released by drain")
	}
	if _, err := Dial(DialConfig{Addr: s.Addr().String(), Rank: RankAuto, DialTimeout: time.Second}); err == nil {
		t.Fatalf("dial succeeded after shutdown")
	}
}

// TestFrameTapCorruption checks the chaos hook end to end: a tap that
// flips payload bits produces rma.ErrCorrupt at the client — never
// silently delivered bytes — and an untouched retry succeeds.
func TestFrameTapCorruption(t *testing.T) {
	regions := patternRegions(1, 1024)
	want := append([]byte(nil), regions[0]...)
	s := testServer(t, ServeConfig{Windows: []WindowSpec{{Name: "w", Regions: regions}}})

	var frames atomic.Int64
	cfg := DialConfig{
		Network: s.Addr().Network(), Addr: s.Addr().String(), Rank: RankAuto,
		FrameTap: func(frame []byte) {
			// Corrupt the first data frame only (the handshake Welcome
			// passes untouched).
			if frame[3] == OpData && frames.Add(1) == 1 {
				frame[headerSize] ^= 0x20
			}
		},
	}
	w, err := Open(cfg, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { w.Free() })
	if err := w.LockAll(); err != nil {
		t.Fatalf("lock all: %v", err)
	}
	dst := make([]byte, 256)
	err = w.Get(dst, datatype.Byte, len(dst), 0, 0)
	if !errors.Is(err, rma.ErrCorrupt) {
		t.Fatalf("corrupted get error = %v, want rma.ErrCorrupt", err)
	}
	// The retry (second data frame, tap quiet) must heal and deliver
	// exactly the server's bytes.
	if err := w.Get(dst, datatype.Byte, len(dst), 0, 0); err != nil {
		t.Fatalf("retry get: %v", err)
	}
	if !bytes.Equal(dst, want[:256]) {
		t.Fatalf("healed get payload mismatch")
	}
}

// TestConnectionPooling checks RPCs reuse pooled connections rather than
// redialing, and that the pool is bounded.
func TestConnectionPooling(t *testing.T) {
	s := testServer(t, ServeConfig{Windows: []WindowSpec{{Name: "w", Regions: MakeRegions(1, 256)}}})
	w := dialWindow(t, s, DialConfig{PoolSize: 1})
	if err := w.LockAll(); err != nil {
		t.Fatalf("lock all: %v", err)
	}
	dst := make([]byte, 16)
	for i := 0; i < 20; i++ {
		if err := w.Get(dst, datatype.Byte, 16, 0, 0); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	cl := w.Client()
	cl.mu.Lock()
	idle := len(cl.idle)
	cl.mu.Unlock()
	if idle != 1 {
		t.Fatalf("idle pool = %d, want 1", idle)
	}
	// 20 sequential RPCs over one healthy pooled connection: the server
	// saw exactly one connection.
	if n := s.openConns(); n != 1 {
		t.Fatalf("server sees %d connections, want 1 (pooling broken)", n)
	}
	if err := w.UnlockAll(); err != nil {
		t.Fatalf("unlock all: %v", err)
	}
}

// TestServerMetrics checks the daemon's observability gauges move: open
// connections, frames and bytes in both directions, per-op counters.
func TestServerMetrics(t *testing.T) {
	reg := obsv.NewRegistry()
	s := testServer(t, ServeConfig{
		Windows:  []WindowSpec{{Name: "w", Regions: MakeRegions(1, 256)}},
		Registry: reg,
	})
	w := dialWindow(t, s, DialConfig{})
	if err := w.LockAll(); err != nil {
		t.Fatalf("lock all: %v", err)
	}
	dst := make([]byte, 64)
	if err := w.Get(dst, datatype.Byte, 64, 0, 0); err != nil {
		t.Fatalf("get: %v", err)
	}
	if err := w.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got := reg.Gauge("wire_server_open_connections").Value(); got < 1 {
		t.Fatalf("open connections gauge = %d", got)
	}
	if got := reg.Counter("wire_server_frames_total", obsv.L("dir", "in")).Value(); got < 3 {
		t.Fatalf("frames in = %d, want >= 3 (hello, get, flush)", got)
	}
	if got := reg.Counter("wire_server_frames_total", obsv.L("dir", "out")).Value(); got < 3 {
		t.Fatalf("frames out = %d", got)
	}
	if got := reg.Counter("wire_server_bytes_total", obsv.L("dir", "out")).Value(); got < 64 {
		t.Fatalf("bytes out = %d", got)
	}
	if got := reg.Counter("wire_server_requests_total", obsv.L("op", "get")).Value(); got != 1 {
		t.Fatalf("get requests = %d, want 1", got)
	}
	var buf bytes.Buffer
	if err := obsv.WritePrometheus(&buf, reg); err != nil {
		t.Fatalf("prometheus export: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("wire_server_op_wall_ns")) {
		t.Fatalf("latency histogram missing from export:\n%s", buf.String())
	}
	if err := w.UnlockAll(); err != nil {
		t.Fatalf("unlock all: %v", err)
	}
}

// TestBatchChunking checks a GetBatch whose response exceeds MaxPayload
// is split transparently and still delivers every byte.
func TestBatchChunking(t *testing.T) {
	regions := patternRegions(1, 1<<12)
	want := append([]byte(nil), regions[0]...)
	s := testServer(t, ServeConfig{Windows: []WindowSpec{{Name: "w", Regions: regions}}})
	w := dialWindow(t, s, DialConfig{MaxPayload: 600})
	if err := w.LockAll(); err != nil {
		t.Fatalf("lock all: %v", err)
	}
	ops := make([]rma.GetOp, 16)
	for i := range ops {
		ops[i] = rma.GetOp{Dst: make([]byte, 200), Target: 0, Disp: i * 200}
	}
	if err := w.GetBatch(ops); err != nil {
		t.Fatalf("chunked batch: %v", err)
	}
	for i := range ops {
		if !bytes.Equal(ops[i].Dst, want[i*200:(i+1)*200]) {
			t.Fatalf("chunked batch op %d mismatch", i)
		}
	}
	if err := w.UnlockAll(); err != nil {
		t.Fatalf("unlock all: %v", err)
	}
}

// TestDeadlineWindow checks the rma.DeadlineWindow extension: an op
// bounded by a deadline shorter than the server's response time fails
// with rma.ErrTimeout, and clearing the deadline restores service. A
// stalling server is simulated by grabbing the target's exclusive lock
// from another client before issuing a lock that must wait.
func TestDeadlineWindow(t *testing.T) {
	s := testServer(t, ServeConfig{Windows: []WindowSpec{{Name: "w", Regions: MakeRegions(1, 64)}}})
	holder := dialWindow(t, s, DialConfig{})
	if err := holder.LockWithType(rma.LockExclusive, 0); err != nil {
		t.Fatalf("holder lock: %v", err)
	}

	w := dialWindow(t, s, DialConfig{})
	var dw rma.DeadlineWindow = w // compile-time: the extension is present
	dw.SetOpDeadline(0)

	// Use the low-level RPC with a short deadline against the blocked
	// lock path: the server cannot answer until the holder releases.
	cl := w.Client()
	err := cl.RPC(OpLock, appendLock(nil, lockReq{Target: 0, Type: byte(rma.LockExclusive)}), 100*time.Millisecond, nil)
	if !errors.Is(err, rma.ErrTimeout) {
		t.Fatalf("bounded blocked op error = %v, want rma.ErrTimeout", err)
	}
	if err := holder.Unlock(0); err != nil {
		t.Fatalf("holder unlock: %v", err)
	}
	// Note the timed-out lock request may still be granted server-side
	// on the poisoned connection; its conn death releases it. A fresh
	// unbounded lock must eventually succeed.
	if err := w.Lock(0); err != nil {
		t.Fatalf("lock after timeout recovery: %v", err)
	}
	if err := w.Unlock(0); err != nil {
		t.Fatalf("unlock: %v", err)
	}
}
