package wire

// The client half of the transport: a pooled connection set to one
// clampi-serve daemon plus the synchronous RPC primitive window.go
// builds the rma.Window surface on.
//
// Error classification is the load-bearing part. Every failure mode of a
// real socket is mapped onto the backend-independent rma sentinel family
// so the resilience layer (core's netGet retry loop, the circuit
// breaker) works identically over the wire and over the simulated
// backend:
//
//	socket condition            surfaces as
//	read/write timeout          rma.ErrTimeout   (matches ErrTransient)
//	EOF / reset / refused       rma.ErrTransient
//	damaged frame (checksum)    ErrChecksum      (matches rma.ErrCorrupt)
//	malformed frame             ErrProto         (matches rma.ErrCorrupt)
//	server draining             ErrShutdown      (matches ErrTransient)
//	server OpError              the sentinel its code stands for
//
// A connection that produced a transport-level failure is poisoned
// (closed, never pooled again): after a timeout or a damaged frame the
// request/response stream can no longer be trusted to be aligned, and
// the next attempt dials fresh.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"clampi/internal/rma"
)

// DialConfig configures a client connection pool to one daemon.
type DialConfig struct {
	// Network is "tcp" or "unix"; Addr is the daemon's address.
	Network, Addr string
	// Window names the server-side window to attach to; empty selects
	// the server's default (first) window.
	Window string
	// Rank is the rank identity to request; RankAuto lets the server
	// assign the next free one.
	Rank int
	// World declares the number of participating clients — the barrier
	// population. Zero leaves it to other clients (or the server config)
	// to pin.
	World int
	// PoolSize caps the idle connections kept for reuse; zero selects
	// DefaultPoolSize.
	PoolSize int
	// MaxPayload bounds frame payloads; zero selects DefaultMaxPayload.
	MaxPayload int
	// DialTimeout bounds connection establishment and the handshake
	// round trip; zero selects DefaultDialTimeout.
	DialTimeout time.Duration
	// FrameTap, when set, observes (and may mutate) every raw inbound
	// frame before checksum verification. It is the chaos hook: a tap
	// that flips a bit turns into genuine on-the-wire corruption, which
	// the frame checksum catches and the retry policy heals.
	FrameTap func(frame []byte)
}

// RankAuto requests server-assigned rank identity.
const RankAuto = -1

// Defaults for DialConfig fields left zero.
const (
	DefaultPoolSize    = 2
	DefaultDialTimeout = 5 * time.Second
)

// Client is a pooled set of connections to one daemon, attached to one
// window. Safe for concurrent use; each RPC borrows a connection for
// its full request/response exchange.
type Client struct {
	cfg     DialConfig
	rank    int
	regions []int64 // per-target region sizes from the handshake

	seq atomic.Uint64

	mu     sync.Mutex
	idle   []*clientConn
	closed bool
}

// ErrClientClosed reports an RPC on a closed client.
var ErrClientClosed = errors.New("wire: client closed")

// clientConn is one pooled connection: socket, frame reader, write
// buffer. Owned by a single RPC at a time.
type clientConn struct {
	c  net.Conn
	fr *frameReader
	wb []byte
}

// Dial connects to a daemon, performs the handshake on an initial
// connection, and returns a client holding the granted rank and the
// window's region sizes.
func Dial(cfg DialConfig) (*Client, error) {
	if cfg.Network == "" {
		cfg.Network = "tcp"
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = DefaultMaxPayload
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = DefaultPoolSize
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	cl := &Client{cfg: cfg, rank: cfg.Rank}
	cc, err := cl.dialConn()
	if err != nil {
		return nil, err
	}
	cl.put(cc)
	return cl, nil
}

// Rank returns the rank the server granted.
func (cl *Client) Rank() int { return cl.rank }

// Regions returns the per-target region sizes of the attached window.
func (cl *Client) Regions() []int64 { return cl.regions }

// World returns the number of targets (= ranks) in the window's world.
func (cl *Client) World() int { return len(cl.regions) }

// Close closes every pooled connection after sending an orderly Detach.
func (cl *Client) Close() error {
	cl.mu.Lock()
	idle := cl.idle
	cl.idle = nil
	cl.closed = true
	cl.mu.Unlock()
	for _, cc := range idle {
		// Best-effort goodbye; the server also handles abrupt closes.
		seq := cl.seq.Add(1)
		cc.wb = AppendFrame(cc.wb[:0], OpDetach, seq, nil)
		cc.c.SetDeadline(time.Now().Add(time.Second)) //clampi:walltime socket I/O deadline on orderly shutdown
		if _, err := cc.c.Write(cc.wb); err == nil {
			cc.fr.next()
		}
		cc.c.Close()
	}
	return nil
}

// dialConn establishes and handshakes one new connection.
func (cl *Client) dialConn() (*clientConn, error) {
	d := net.Dialer{Timeout: cl.cfg.DialTimeout}
	c, err := d.Dial(cl.cfg.Network, cl.cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s %s: %w", rma.ErrTransient, cl.cfg.Network, cl.cfg.Addr, err)
	}
	cc := &clientConn{c: c, fr: newFrameReader(c, cl.cfg.MaxPayload)}
	cc.fr.tap = cl.cfg.FrameTap
	cl.mu.Lock()
	rank := cl.rank
	cl.mu.Unlock()
	hello := helloPayload{Rank: int32(rank), World: int32(cl.cfg.World), Window: cl.cfg.Window}
	c.SetDeadline(time.Now().Add(cl.cfg.DialTimeout)) //clampi:walltime handshake round trip is bounded in wall time
	seq := cl.seq.Add(1)
	cc.wb = AppendFrame(cc.wb[:0], OpHello, seq, appendHello(nil, hello))
	if _, err := c.Write(cc.wb); err != nil {
		c.Close()
		return nil, classify(err)
	}
	f, err := cc.fr.next()
	if err != nil {
		c.Close()
		return nil, classify(err)
	}
	c.SetDeadline(time.Time{}) //clampi:walltime clears the handshake deadline
	if f.Seq != seq {
		c.Close()
		return nil, fmt.Errorf("%w: handshake response seq %d (want %d)", ErrProto, f.Seq, seq)
	}
	switch f.Op {
	case OpWelcome:
		w, derr := decodeWelcome(f.Payload)
		if derr != nil {
			c.Close()
			return nil, derr
		}
		cl.mu.Lock()
		if cl.regions == nil {
			// First handshake pins the granted rank; later connections
			// request it explicitly, so the grant is always the same.
			cl.rank = int(w.Rank)
			cl.regions = w.Regions
		}
		cl.mu.Unlock()
		return cc, nil
	case OpError:
		code, msg, derr := decodeError(f.Payload)
		c.Close()
		if derr != nil {
			return nil, derr
		}
		return nil, codeToError(code, msg)
	default:
		c.Close()
		return nil, fmt.Errorf("%w: handshake answered with %s", ErrProto, OpName(f.Op))
	}
}

// get borrows a pooled connection or dials a new one.
func (cl *Client) get() (*clientConn, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, ErrClientClosed
	}
	if n := len(cl.idle); n > 0 {
		cc := cl.idle[n-1]
		cl.idle = cl.idle[:n-1]
		cl.mu.Unlock()
		return cc, nil
	}
	cl.mu.Unlock()
	return cl.dialConn()
}

// put returns a healthy connection to the pool (or closes it when the
// pool is full or the client closed).
func (cl *Client) put(cc *clientConn) {
	cl.mu.Lock()
	if !cl.closed && len(cl.idle) < cl.cfg.PoolSize {
		cl.idle = append(cl.idle, cc)
		cl.mu.Unlock()
		return
	}
	cl.mu.Unlock()
	cc.c.Close()
}

// RPC performs one synchronous exchange: request out, response in.
// deadline, when positive, bounds the whole exchange in wall time
// (rma.ErrTimeout on expiry). onData consumes an OpData response's
// payload — valid only during the call; pass nil to require a bare Ack.
func (cl *Client) RPC(op byte, payload []byte, deadline time.Duration, onData func(data []byte) error) error {
	cc, err := cl.get()
	if err != nil {
		return err
	}
	poison := true
	defer func() {
		if poison {
			cc.c.Close()
		} else {
			cl.put(cc)
		}
	}()
	if deadline > 0 {
		cc.c.SetDeadline(time.Now().Add(deadline)) //clampi:walltime per-op socket deadline mapped from the virtual RetryPolicy.Deadline
	} else {
		cc.c.SetDeadline(time.Time{}) //clampi:walltime clears a stale per-op socket deadline
	}
	seq := cl.seq.Add(1)
	cc.wb = AppendFrame(cc.wb[:0], op, seq, payload)
	if _, err := cc.c.Write(cc.wb); err != nil {
		return classify(err)
	}
	f, err := cc.fr.next()
	if err != nil {
		return classify(err)
	}
	if f.Seq != seq {
		return fmt.Errorf("%w: response seq %d (want %d)", ErrProto, f.Seq, seq)
	}
	switch f.Op {
	case OpAck:
		if onData != nil {
			return fmt.Errorf("%w: bare ack where %s response expected", ErrProto, OpName(op))
		}
		poison = false
		return nil
	case OpData:
		if onData == nil {
			return fmt.Errorf("%w: unexpected data response to %s", ErrProto, OpName(op))
		}
		if err := onData(f.Payload); err != nil {
			return err
		}
		poison = false
		return nil
	case OpError:
		code, msg, derr := decodeError(f.Payload)
		if derr != nil {
			return derr
		}
		err := codeToError(code, msg)
		// The exchange itself was healthy: the connection stream is
		// still aligned, so pool it — unless the server told us it is
		// going away.
		if code != CodeShutdown {
			poison = false
		}
		return err
	default:
		return fmt.Errorf("%w: response op %s", ErrProto, OpName(f.Op))
	}
}

// classify maps a transport-level failure onto the rma sentinel family.
// Errors already carrying a sentinel (decode failures, server errors)
// pass through unchanged.
func classify(err error) error {
	if err == nil || errors.Is(err, rma.ErrTransient) {
		return err
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %w", rma.ErrTimeout, err)
	}
	// Anything else a socket produces mid-exchange — EOF, reset, refused,
	// closed — is transient from the caller's perspective: the op did not
	// take effect and a retry over a fresh connection may succeed.
	return fmt.Errorf("%w: %w", rma.ErrTransient, err)
}
