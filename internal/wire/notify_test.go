package wire

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/notify"
)

// TestNotifyOverWire drives the notification path end to end over a TCP
// loopback: two clients subscribe, rank 0 PutNotifies, and after the
// Fence rendezvous rank 1's poll observes exactly the pushed descriptor
// (with its data) while the origin observes nothing.
func TestNotifyOverWire(t *testing.T) {
	s := testServer(t, ServeConfig{
		Windows: []WindowSpec{{Name: "w", Regions: MakeRegions(2, 256)}},
		World:   2,
	})
	ws := []*Window{
		dialWindow(t, s, DialConfig{Window: "w", Rank: 0, World: 2}),
		dialWindow(t, s, DialConfig{Window: "w", Rank: 1, World: 2}),
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	run := func(rank int, f func(w *Window) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[rank] = f(ws[rank])
		}()
	}
	run(0, func(w *Window) error {
		if err := w.NotifyEnable(16); err != nil {
			return err
		}
		if err := w.Fence(); err != nil {
			return err
		}
		src := []byte{1, 2, 3, 4}
		if err := w.PutNotify(src, datatype.Byte, len(src), 1, 8, 42); err != nil {
			return err
		}
		if err := w.Fence(); err != nil {
			return err
		}
		buf := make([]notify.Notification, 4)
		if n, ov := w.NotifyPoll(buf); n != 0 || ov {
			t.Errorf("origin Poll = (%d, %v), want (0, false)", n, ov)
		}
		return w.Fence()
	})
	run(1, func(w *Window) error {
		if err := w.NotifyEnable(16); err != nil {
			return err
		}
		if err := w.Fence(); err != nil {
			return err
		}
		if err := w.Fence(); err != nil {
			return err
		}
		// The Fence pump already drained the push into the local queue:
		// depth must be visible without another round trip.
		if d := w.NotifyDepth(); d != 1 {
			t.Errorf("post-fence NotifyDepth = %d, want 1", d)
		}
		buf := make([]notify.Notification, 4)
		n, ov := w.NotifyPoll(buf)
		if n != 1 || ov {
			t.Errorf("reader Poll = (%d, %v), want (1, false)", n, ov)
		} else {
			nf := buf[0]
			if nf.Origin != 0 || nf.Target != 1 || nf.Disp != 8 || nf.Len != 4 || nf.Tag != 42 || nf.Seq != 1 {
				t.Errorf("notification %+v", nf)
			}
			if !bytes.Equal(nf.Data, []byte{1, 2, 3, 4}) {
				t.Errorf("notification data %v", nf.Data)
			}
		}
		// The written bytes really landed on the server.
		back := make([]byte, 4)
		if err := w.Get(back, datatype.Byte, 4, 1, 8); err != nil {
			return err
		}
		if !bytes.Equal(back, []byte{1, 2, 3, 4}) {
			t.Errorf("readback %v", back)
		}
		return w.Fence()
	})
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// TestNotifyWireOverflow checks a slow reader's bounded queue sheds and
// flags over the wire exactly like in the simulated backend.
func TestNotifyWireOverflow(t *testing.T) {
	s := testServer(t, ServeConfig{
		Windows: []WindowSpec{{Name: "w", Regions: MakeRegions(2, 64)}},
		World:   2,
	})
	ws := []*Window{
		dialWindow(t, s, DialConfig{Window: "w", Rank: 0, World: 2}),
		dialWindow(t, s, DialConfig{Window: "w", Rank: 1, World: 2}),
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	run := func(rank int, f func(w *Window) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[rank] = f(ws[rank])
		}()
	}
	run(0, func(w *Window) error {
		if err := w.Fence(); err != nil {
			return err
		}
		src := []byte{7}
		for i := 0; i < 5; i++ {
			if err := w.PutNotify(src, datatype.Byte, 1, 1, i, 0); err != nil {
				return err
			}
		}
		if err := w.Fence(); err != nil {
			return err
		}
		return w.Fence()
	})
	run(1, func(w *Window) error {
		if err := w.NotifyEnable(2); err != nil {
			return err
		}
		if err := w.Fence(); err != nil {
			return err
		}
		if err := w.Fence(); err != nil {
			return err
		}
		buf := make([]notify.Notification, 8)
		if n, ov := w.NotifyPoll(buf); n != 2 || !ov {
			t.Errorf("Poll = (%d, %v), want (2, true)", n, ov)
		}
		return w.Fence()
	})
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// TestNotifyWireStrided checks a strided PutNotify notifies per flattened
// block with exact spans.
func TestNotifyWireStrided(t *testing.T) {
	s := testServer(t, ServeConfig{
		Windows: []WindowSpec{{Name: "w", Regions: MakeRegions(2, 256)}},
		World:   2,
	})
	ws := []*Window{
		dialWindow(t, s, DialConfig{Window: "w", Rank: 0, World: 2}),
		dialWindow(t, s, DialConfig{Window: "w", Rank: 1, World: 2}),
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	run := func(rank int, f func(w *Window) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[rank] = f(ws[rank])
		}()
	}
	vec := datatype.Vector(3, 4, 16, datatype.Byte)
	run(0, func(w *Window) error {
		if err := w.Fence(); err != nil {
			return err
		}
		src := bytes.Repeat([]byte{0xAB}, datatype.TransferSize(vec, 1))
		if err := w.PutNotify(src, vec, 1, 1, 32, 9); err != nil {
			return err
		}
		if err := w.Fence(); err != nil {
			return err
		}
		return w.Fence()
	})
	run(1, func(w *Window) error {
		if err := w.NotifyEnable(16); err != nil {
			return err
		}
		if err := w.Fence(); err != nil {
			return err
		}
		if err := w.Fence(); err != nil {
			return err
		}
		blocks := datatype.FlattenTransfer(vec, 1, 32)
		buf := make([]notify.Notification, 8)
		n, ov := w.NotifyPoll(buf)
		if ov || n != len(blocks) {
			t.Fatalf("Poll = (%d, %v), want (%d, false)", n, ov, len(blocks))
		}
		for i, b := range blocks {
			if buf[i].Disp != b.Offset || buf[i].Len != b.Size || buf[i].Tag != 9 {
				t.Errorf("block %d notification %+v, want disp %d len %d", i, buf[i], b.Offset, b.Size)
			}
		}
		return w.Fence()
	})
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// TestNotifyWireBeforeEnable checks the unsubscribed surface is inert.
func TestNotifyWireBeforeEnable(t *testing.T) {
	s := testServer(t, ServeConfig{
		Windows: []WindowSpec{{Name: "w", Regions: MakeRegions(1, 64)}},
	})
	w := dialWindow(t, s, DialConfig{Window: "w"})
	if d := w.NotifyDepth(); d != 0 {
		t.Errorf("depth before enable = %d", d)
	}
	if n, ov := w.NotifyPoll(make([]notify.Notification, 1)); n != 0 || ov {
		t.Errorf("Poll before enable = (%d, %v)", n, ov)
	}
	if err := w.NotifyWait(); !errors.Is(err, ErrNotSubscribed) {
		t.Errorf("NotifyWait before enable = %v, want ErrNotSubscribed", err)
	}
}
