// Package wire is the first real multi-process transport behind the
// internal/rma interfaces: a length-prefixed, versioned binary protocol
// carried over TCP or Unix-domain sockets (DESIGN.md §13).
//
// Everything before this package runs in one process against the
// simulated MPI runtime (internal/mpi). wire moves the window memory
// into a separate daemon process (cmd/clampi-serve) and turns every
// rma.Window operation into a synchronous request/response exchange:
// the caching layer, the getter shims, the batcher and the fault
// injector all compose unchanged, because they only ever see the
// rma.Window contract. It is the first configuration where GetBatch
// coalescing saves real syscalls and where the resilience layer
// (retry, circuit breaker, checksums) faces genuine packet loss.
//
// The op set mirrors the rvma_get/put/flush surface of SNIPPETS.md
// Snippet 1, extended with the batch, integrity and synchronization
// calls the caching layer depends on.
//
// # Frame format
//
// Every message — request or response — is one frame:
//
//	offset  size  field
//	0       2     magic 0xC1 0xA7
//	2       1     version (currently 1)
//	3       1     op code
//	4       8     sequence number (little-endian; response echoes request)
//	12      4     payload length n (little-endian)
//	16      n     payload
//	16+n    8     FNV-1a 64 checksum of bytes [0, 16+n) (rma.ChecksumBytes)
//
// The trailing checksum covers header and payload, so a frame damaged
// anywhere on the wire is rejected as rma.ErrCorrupt — the same
// transient sentinel the fill-verification machinery uses, which makes
// a corrupted frame indistinguishable from a corrupted RDMA payload to
// the layers above: the retry policy refetches, and no damaged byte is
// ever delivered or cached.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"clampi/internal/rma"
)

// Protocol constants.
const (
	magic0  = 0xC1
	magic1  = 0xA7
	Version = 1

	headerSize   = 16
	checksumSize = 8

	// DefaultMaxPayload bounds a frame's payload, defending both sides
	// against hostile or garbage length fields. Large GetBatch responses
	// must fit: the client splits batches that would exceed it.
	DefaultMaxPayload = 64 << 20
)

// Op codes. Requests and responses share the namespace; a response
// echoes the request's sequence number with one of the response ops.
const (
	// Requests.
	OpHello      byte = 0x01 // handshake: rank, world, window name
	OpGet        byte = 0x02 // read one contiguous range
	OpPut        byte = 0x03 // write one contiguous range
	OpAccumulate byte = 0x04 // element-wise reduction into a range
	OpGetBatch   byte = 0x05 // read many contiguous ranges in one frame
	OpFlush      byte = 0x06 // order fence (no-op on a sync transport)
	OpLock       byte = 0x07 // passive-target lock on one target
	OpUnlock     byte = 0x08 // release a passive-target lock
	OpChecksum   byte = 0x09 // integrity attestation of a target range
	OpBarrier    byte = 0x0A // rendezvous of all world members
	OpDetach     byte = 0x0B // orderly goodbye
	OpPutNotify  byte = 0x0C // write one range and notify subscribed ranks
	OpSubscribe  byte = 0x0D // dedicate this connection as a notification sink

	// Responses.
	OpWelcome byte = 0x81 // handshake reply: rank, region sizes
	OpData    byte = 0x82 // payload-carrying success (Get/GetBatch/Checksum)
	OpAck     byte = 0x83 // payload-free success
	OpError   byte = 0x84 // failure: code + message
	OpNotify  byte = 0x85 // server push: a PutNotify descriptor (seq 0)
)

// opNames labels op codes for diagnostics and metrics.
var opNames = map[byte]string{
	OpHello: "hello", OpGet: "get", OpPut: "put", OpAccumulate: "accumulate",
	OpGetBatch: "get_batch", OpFlush: "flush", OpLock: "lock", OpUnlock: "unlock",
	OpChecksum: "checksum", OpBarrier: "barrier", OpDetach: "detach",
	OpPutNotify: "put_notify", OpSubscribe: "subscribe",
	OpWelcome: "welcome", OpData: "data", OpAck: "ack", OpError: "error",
	OpNotify: "notify",
}

// OpName returns the human-readable name of an op code.
func OpName(op byte) string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("op(0x%02x)", op)
}

// Error codes carried by OpError frames. The client maps each code back
// onto the backend-independent rma sentinel it stands for, so errors.Is
// tests work identically against the simulated and the wire backend
// (DESIGN.md §13 error mapping table).
const (
	CodeInternal    uint16 = 0 // unclassified server failure
	CodeRankRange   uint16 = 1 // target rank outside the window's world
	CodeBounds      uint16 = 2 // access outside the target region
	CodeUnsupported uint16 = 3 // operation the transport cannot carry
	CodeBadAcc      uint16 = 4 // unsupported accumulate datatype/op
	CodeProto       uint16 = 5 // malformed request frame or payload
	CodeBadWindow   uint16 = 6 // unknown window name in Hello
	CodeBadWorld    uint16 = 7 // inconsistent world/rank declaration
	CodeShutdown    uint16 = 8 // server is draining; connection retired
)

// Protocol-level errors. ErrProto covers structurally malformed frames
// whose framing is still intact (bad magic, version, op, payload shape);
// it matches rma.ErrCorrupt — and therefore rma.ErrTransient — because a
// malformed frame on a healthy connection is indistinguishable from
// wire damage and a retry is the correct reaction.
var (
	// ErrProto reports a malformed or unexpected frame.
	ErrProto = fmt.Errorf("%w: malformed wire frame", rma.ErrCorrupt)
	// ErrChecksum reports a frame whose trailing FNV-1a digest does not
	// match its bytes. Matches rma.ErrCorrupt.
	ErrChecksum = fmt.Errorf("%w: wire frame checksum mismatch", rma.ErrCorrupt)
	// ErrFrameTooBig reports a frame whose declared payload exceeds the
	// negotiated maximum. Matches rma.ErrCorrupt: an insane length field
	// is wire damage until proven otherwise.
	ErrFrameTooBig = fmt.Errorf("%w: wire frame exceeds payload limit", rma.ErrCorrupt)
	// ErrUnsupported reports an operation this transport cannot carry
	// (e.g. PSCW synchronization over sockets).
	ErrUnsupported = errors.New("wire: operation not supported by the socket transport")
	// ErrShutdown reports an operation refused because the server is
	// draining. Matches rma.ErrTransient: a redial may reach a healthy
	// (restarted or failed-over) server.
	ErrShutdown = fmt.Errorf("%w: server shutting down", rma.ErrTransient)
)

// AppendFrame appends one complete frame (header, payload, checksum) to
// buf and returns the extended slice. It never fails: length limits are
// enforced at decode time and by callers that split oversized batches.
func AppendFrame(buf []byte, op byte, seq uint64, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, magic0, magic1, Version, op)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	sum := rma.ChecksumBytes(buf[start:])
	return binary.LittleEndian.AppendUint64(buf, sum)
}

// Frame is one decoded frame.
type Frame struct {
	Op      byte
	Seq     uint64
	Payload []byte // aliases the decode buffer; copy to retain
}

// DecodeFrame parses one complete frame from b, returning the frame and
// the number of bytes consumed. Structural damage (magic, version,
// length) is ErrProto; a checksum mismatch is ErrChecksum; a short
// buffer is io.ErrUnexpectedEOF wrapped in rma.ErrTransient (the caller
// may have more bytes in flight). Decode failures never panic — the
// fuzz target FuzzWireFrame holds it to that.
func DecodeFrame(b []byte, maxPayload int) (Frame, int, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if len(b) < headerSize {
		return Frame{}, 0, fmt.Errorf("%w: short frame header: %w", rma.ErrTransient, io.ErrUnexpectedEOF)
	}
	if b[0] != magic0 || b[1] != magic1 {
		return Frame{}, 0, fmt.Errorf("%w: bad magic 0x%02x%02x", ErrProto, b[0], b[1])
	}
	if b[2] != Version {
		return Frame{}, 0, fmt.Errorf("%w: version %d (want %d)", ErrProto, b[2], Version)
	}
	n := int(binary.LittleEndian.Uint32(b[12:16]))
	if n > maxPayload {
		return Frame{}, 0, fmt.Errorf("%w: payload %d > limit %d", ErrFrameTooBig, n, maxPayload)
	}
	total := headerSize + n + checksumSize
	if len(b) < total {
		return Frame{}, 0, fmt.Errorf("%w: truncated frame: %w", rma.ErrTransient, io.ErrUnexpectedEOF)
	}
	want := binary.LittleEndian.Uint64(b[headerSize+n : total])
	if got := rma.ChecksumBytes(b[:headerSize+n]); got != want {
		return Frame{}, 0, fmt.Errorf("%w: got %016x want %016x", ErrChecksum, got, want)
	}
	return Frame{
		Op:      b[3],
		Seq:     binary.LittleEndian.Uint64(b[4:12]),
		Payload: b[headerSize : headerSize+n],
	}, total, nil
}

// frameReader incrementally reads frames from a stream, reusing one
// buffer. Not safe for concurrent use; each connection owns one.
type frameReader struct {
	r          io.Reader
	buf        []byte
	maxPayload int
	// tap, when set, observes (and may mutate) every raw inbound frame
	// before checksum verification — the chaos hook that turns injected
	// bit flips into genuine on-the-wire corruption.
	tap func(frame []byte)
}

func newFrameReader(r io.Reader, maxPayload int) *frameReader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &frameReader{r: r, buf: make([]byte, 0, 4096), maxPayload: maxPayload}
}

// next reads one frame from the stream. The returned frame's payload
// aliases the reader's buffer and is valid until the next call. IO
// failures are returned as-is (the caller classifies them); structural
// failures carry the DecodeFrame sentinels.
func (fr *frameReader) next() (Frame, error) {
	if cap(fr.buf) < headerSize {
		fr.buf = make([]byte, 0, 4096)
	}
	hdr := fr.buf[:headerSize]
	if _, err := io.ReadFull(fr.r, hdr); err != nil {
		return Frame{}, err
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return Frame{}, fmt.Errorf("%w: bad magic 0x%02x%02x", ErrProto, hdr[0], hdr[1])
	}
	if hdr[2] != Version {
		return Frame{}, fmt.Errorf("%w: version %d (want %d)", ErrProto, hdr[2], Version)
	}
	n := int(binary.LittleEndian.Uint32(hdr[12:16]))
	if n > fr.maxPayload {
		return Frame{}, fmt.Errorf("%w: payload %d > limit %d", ErrFrameTooBig, n, fr.maxPayload)
	}
	total := headerSize + n + checksumSize
	if cap(fr.buf) < total {
		grown := make([]byte, total)
		copy(grown, hdr)
		fr.buf = grown[:0]
	}
	full := fr.buf[:total]
	if &full[0] != &hdr[0] {
		copy(full, hdr)
	}
	if _, err := io.ReadFull(fr.r, full[headerSize:]); err != nil {
		return Frame{}, err
	}
	if fr.tap != nil {
		fr.tap(full)
	}
	f, _, err := DecodeFrame(full, fr.maxPayload)
	return f, err
}

// ---------------------------------------------------------------------------
// Payload encodings
// ---------------------------------------------------------------------------
//
// Payloads are flat little-endian records; variable-length tails (window
// names, data bytes) always come last so decoding is a single pass with
// bounds checks. Every decoder returns ErrProto on a short or oversized
// payload rather than panicking.

// helloPayload is the OpHello request body.
type helloPayload struct {
	Rank   int32
	World  int32
	Window string
}

func appendHello(buf []byte, h helloPayload) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Rank))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.World))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(h.Window)))
	return append(buf, h.Window...)
}

func decodeHello(p []byte) (helloPayload, error) {
	if len(p) < 10 {
		return helloPayload{}, fmt.Errorf("%w: hello payload %dB", ErrProto, len(p))
	}
	n := int(binary.LittleEndian.Uint16(p[8:10]))
	if len(p) != 10+n {
		return helloPayload{}, fmt.Errorf("%w: hello name length %d vs payload %dB", ErrProto, n, len(p))
	}
	return helloPayload{
		Rank:   int32(binary.LittleEndian.Uint32(p[0:4])),
		World:  int32(binary.LittleEndian.Uint32(p[4:8])),
		Window: string(p[10 : 10+n]),
	}, nil
}

// welcomePayload is the OpWelcome response body: the rank the server
// granted and the byte size of every region of the window.
type welcomePayload struct {
	Rank    int32
	Regions []int64
}

func appendWelcome(buf []byte, w welcomePayload) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(w.Rank))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(w.Regions)))
	for _, sz := range w.Regions {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(sz))
	}
	return buf
}

func decodeWelcome(p []byte) (welcomePayload, error) {
	if len(p) < 8 {
		return welcomePayload{}, fmt.Errorf("%w: welcome payload %dB", ErrProto, len(p))
	}
	n := int(binary.LittleEndian.Uint32(p[4:8]))
	if n < 0 || len(p) != 8+8*n {
		return welcomePayload{}, fmt.Errorf("%w: welcome regions %d vs payload %dB", ErrProto, n, len(p))
	}
	w := welcomePayload{Rank: int32(binary.LittleEndian.Uint32(p[0:4])), Regions: make([]int64, n)}
	for i := 0; i < n; i++ {
		w.Regions[i] = int64(binary.LittleEndian.Uint64(p[8+8*i:]))
	}
	return w, nil
}

// rangeReq is the body shared by OpGet and OpChecksum: one contiguous
// byte range of one target region.
type rangeReq struct {
	Target int32
	Disp   int64
	Size   int64
}

const rangeReqSize = 20

func appendRange(buf []byte, r rangeReq) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Target))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Disp))
	return binary.LittleEndian.AppendUint64(buf, uint64(r.Size))
}

func decodeRangeAt(p []byte) rangeReq {
	return rangeReq{
		Target: int32(binary.LittleEndian.Uint32(p[0:4])),
		Disp:   int64(binary.LittleEndian.Uint64(p[4:12])),
		Size:   int64(binary.LittleEndian.Uint64(p[12:20])),
	}
}

func decodeRange(p []byte) (rangeReq, error) {
	if len(p) != rangeReqSize {
		return rangeReq{}, fmt.Errorf("%w: range payload %dB", ErrProto, len(p))
	}
	return decodeRangeAt(p), nil
}

// putReq is the OpPut body: the target range header followed by the data.
type putReq struct {
	Target int32
	Disp   int64
	Data   []byte
}

func appendPut(buf []byte, r putReq) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Target))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Disp))
	return append(buf, r.Data...)
}

func decodePut(p []byte) (putReq, error) {
	if len(p) < 12 {
		return putReq{}, fmt.Errorf("%w: put payload %dB", ErrProto, len(p))
	}
	return putReq{
		Target: int32(binary.LittleEndian.Uint32(p[0:4])),
		Disp:   int64(binary.LittleEndian.Uint64(p[4:12])),
		Data:   p[12:],
	}, nil
}

// putNotifyReq is the OpPutNotify body: a put plus the notification tag.
// The origin span length is len(Data); the server derives the descriptor
// from the request, so the frame carries no redundant fields.
type putNotifyReq struct {
	Target int32
	Disp   int64
	Tag    uint32
	Data   []byte
}

func appendPutNotify(buf []byte, r putNotifyReq) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Target))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Disp))
	buf = binary.LittleEndian.AppendUint32(buf, r.Tag)
	return append(buf, r.Data...)
}

func decodePutNotify(p []byte) (putNotifyReq, error) {
	if len(p) < 16 {
		return putNotifyReq{}, fmt.Errorf("%w: put_notify payload %dB", ErrProto, len(p))
	}
	return putNotifyReq{
		Target: int32(binary.LittleEndian.Uint32(p[0:4])),
		Disp:   int64(binary.LittleEndian.Uint64(p[4:12])),
		Tag:    binary.LittleEndian.Uint32(p[12:16]),
		Data:   p[16:],
	}, nil
}

// notifyPayload is the OpNotify push body: the descriptor of one remote
// PutNotify. HasData distinguishes "no bytes attached" (readers must
// invalidate the span) from a genuine zero-length write.
type notifyPayload struct {
	Origin  int32
	Target  int32
	Disp    int64
	Len     int64
	Tag     uint32
	HasData bool
	Data    []byte
}

func appendNotify(buf []byte, n notifyPayload) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n.Origin))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n.Target))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n.Disp))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n.Len))
	buf = binary.LittleEndian.AppendUint32(buf, n.Tag)
	if n.HasData {
		buf = append(buf, 1)
		return append(buf, n.Data...)
	}
	return append(buf, 0)
}

func decodeNotify(p []byte) (notifyPayload, error) {
	if len(p) < 29 {
		return notifyPayload{}, fmt.Errorf("%w: notify payload %dB", ErrProto, len(p))
	}
	n := notifyPayload{
		Origin:  int32(binary.LittleEndian.Uint32(p[0:4])),
		Target:  int32(binary.LittleEndian.Uint32(p[4:8])),
		Disp:    int64(binary.LittleEndian.Uint64(p[8:16])),
		Len:     int64(binary.LittleEndian.Uint64(p[16:24])),
		Tag:     binary.LittleEndian.Uint32(p[24:28]),
		HasData: p[28] == 1,
	}
	switch {
	case p[28] == 1:
		n.Data = p[29:]
	case p[28] == 0:
		if len(p) != 29 {
			return notifyPayload{}, fmt.Errorf("%w: notify trailing bytes without data flag", ErrProto)
		}
	default:
		return notifyPayload{}, fmt.Errorf("%w: notify data flag 0x%02x", ErrProto, p[28])
	}
	return n, nil
}

// Accumulate element kinds: the primitive arithmetic datatypes the
// accumulate op set supports (mirroring internal/mpi).
const (
	accInt32 byte = iota
	accInt64
	accFloat64
)

// accReq is the OpAccumulate body.
type accReq struct {
	Target int32
	Disp   int64
	Op     byte // rma.Op
	Kind   byte // accInt32/accInt64/accFloat64
	Data   []byte
}

func appendAcc(buf []byte, r accReq) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Target))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Disp))
	buf = append(buf, r.Op, r.Kind)
	return append(buf, r.Data...)
}

func decodeAcc(p []byte) (accReq, error) {
	if len(p) < 14 {
		return accReq{}, fmt.Errorf("%w: accumulate payload %dB", ErrProto, len(p))
	}
	return accReq{
		Target: int32(binary.LittleEndian.Uint32(p[0:4])),
		Disp:   int64(binary.LittleEndian.Uint64(p[4:12])),
		Op:     p[12],
		Kind:   p[13],
		Data:   p[14:],
	}, nil
}

// appendBatch encodes an OpGetBatch body: op count then one rangeReq per
// op. The response is the concatenated payloads in request order.
func appendBatch(buf []byte, ops []rma.GetOp) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ops)))
	for i := range ops {
		buf = appendRange(buf, rangeReq{Target: int32(ops[i].Target), Disp: int64(ops[i].Disp), Size: int64(len(ops[i].Dst))})
	}
	return buf
}

func decodeBatch(p []byte) ([]rangeReq, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: batch payload %dB", ErrProto, len(p))
	}
	n := int(binary.LittleEndian.Uint32(p[0:4]))
	if n < 0 || len(p) != 4+n*rangeReqSize {
		return nil, fmt.Errorf("%w: batch count %d vs payload %dB", ErrProto, n, len(p))
	}
	out := make([]rangeReq, n)
	for i := 0; i < n; i++ {
		out[i] = decodeRangeAt(p[4+i*rangeReqSize:])
	}
	return out, nil
}

// lockReq is the OpLock/OpUnlock body.
type lockReq struct {
	Target int32
	Type   byte // rma.LockType
}

func appendLock(buf []byte, r lockReq) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Target))
	return append(buf, r.Type)
}

func decodeLock(p []byte) (lockReq, error) {
	if len(p) != 5 {
		return lockReq{}, fmt.Errorf("%w: lock payload %dB", ErrProto, len(p))
	}
	return lockReq{Target: int32(binary.LittleEndian.Uint32(p[0:4])), Type: p[4]}, nil
}

// appendError encodes an OpError body: code then message text.
func appendError(buf []byte, code uint16, msg string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, code)
	return append(buf, msg...)
}

func decodeError(p []byte) (uint16, string, error) {
	if len(p) < 2 {
		return 0, "", fmt.Errorf("%w: error payload %dB", ErrProto, len(p))
	}
	return binary.LittleEndian.Uint16(p[0:2]), string(p[2:]), nil
}

// codeToError maps an OpError code back onto the rma sentinel family, so
// errors.Is behaves identically over the wire and over the simulated
// backend. Unknown codes degrade to a transient error: the safe default
// for a protocol-version skew is "retry, maybe against a newer server".
func codeToError(code uint16, msg string) error {
	switch code {
	case CodeRankRange:
		return rewrap(rma.ErrRankRange, msg)
	case CodeBounds:
		return rewrap(rma.ErrBounds, msg)
	case CodeUnsupported:
		return rewrap(ErrUnsupported, msg)
	case CodeBadAcc:
		return rewrap(ErrBadAccumulate, msg)
	case CodeProto:
		return rewrap(ErrProto, msg)
	case CodeBadWindow:
		return rewrap(ErrBadWindow, msg)
	case CodeBadWorld:
		return rewrap(ErrBadWorld, msg)
	case CodeShutdown:
		return rewrap(ErrShutdown, msg)
	default:
		return fmt.Errorf("%w: server error: %s", rma.ErrTransient, msg)
	}
}

// rewrap attaches a sentinel to a server-reported message. The message
// is usually err.Error() of the same wrapped sentinel, so it already
// starts with the sentinel's own text — don't stamp it twice.
func rewrap(sentinel error, msg string) error {
	if rest, ok := strings.CutPrefix(msg, sentinel.Error()); ok {
		return fmt.Errorf("%w%s", sentinel, rest)
	}
	return fmt.Errorf("%w: %s", sentinel, msg)
}

// errorToCode classifies a server-side failure into an OpError code.
func errorToCode(err error) uint16 {
	switch {
	case errors.Is(err, rma.ErrRankRange):
		return CodeRankRange
	case errors.Is(err, rma.ErrBounds):
		return CodeBounds
	case errors.Is(err, ErrBadAccumulate):
		return CodeBadAcc
	case errors.Is(err, ErrUnsupported):
		return CodeUnsupported
	case errors.Is(err, ErrBadWindow):
		return CodeBadWindow
	case errors.Is(err, ErrBadWorld):
		return CodeBadWorld
	case errors.Is(err, ErrShutdown):
		return CodeShutdown
	case errors.Is(err, ErrProto):
		return CodeProto
	default:
		return CodeInternal
	}
}

// Server-side misuse sentinels surfaced through OpError frames.
var (
	// ErrBadAccumulate reports an unsupported accumulate datatype/op.
	ErrBadAccumulate = errors.New("wire: accumulate requires a primitive arithmetic datatype")
	// ErrBadWindow reports a Hello naming an unknown window.
	ErrBadWindow = errors.New("wire: unknown window name")
	// ErrBadWorld reports an inconsistent rank/world declaration.
	ErrBadWorld = errors.New("wire: inconsistent world declaration")
)
