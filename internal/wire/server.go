package wire

// The server half of the transport: cmd/clampi-serve embeds a Server to
// expose one or more window regions to many concurrent client
// processes. Each accepted connection gets its own goroutine; cross-
// client data movement is ordered by per-(window, region-stripe)
// read-write locks mirroring the internal/mpi stripe scheme, so
// concurrent readers of disjoint — or identical — stripes proceed in
// parallel while writers take their covered stripes exclusively and a
// get never observes a torn put.
//
// The server is deliberately epoch-free: MPI epochs are origin-side
// state, so the client half (window.go) tracks them and the server only
// orders the physical byte movement — exactly the split foMPI makes
// between its origin bookkeeping and the passive RDMA target.

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"clampi/internal/notify"
	"clampi/internal/obsv"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// WindowSpec describes one window the server exposes: a name clients
// select in their handshake and the initial contents of its regions
// (one region per target rank; sizes are taken from the slices).
type WindowSpec struct {
	Name    string
	Regions [][]byte
}

// MakeRegions builds n zero-filled regions of size bytes each — the
// common symmetric-window shape (MPI_Win_allocate with equal sizes).
func MakeRegions(n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
	}
	return out
}

// ServeConfig configures a Server.
type ServeConfig struct {
	// Network is "tcp" or "unix"; Addr is the listen address
	// (host:port or socket path).
	Network, Addr string
	// Windows are the exposed windows. At least one is required; the
	// first one is the default when a client's handshake names none.
	Windows []WindowSpec
	// World, when positive, pins the number of barrier participants per
	// window. Zero lets the first client's handshake declare it.
	World int
	// MaxPayload bounds frame payloads; zero selects DefaultMaxPayload.
	MaxPayload int
	// Registry, when non-nil, receives the daemon's metrics: open
	// connections, frames and bytes in/out, and per-op wall-clock
	// latency histograms.
	Registry *obsv.Registry
	// Logf, when non-nil, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// targetLock is the cross-client passive-target lock state of one
// (window, target) pair — the server half of MPI_Win_lock semantics.
type targetLock struct {
	mu        sync.Mutex
	cond      *sync.Cond
	exclusive bool
	shared    int
}

func (tl *targetLock) init() { tl.cond = sync.NewCond(&tl.mu) }

// acquire blocks the calling connection goroutine until the lock of the
// given type is granted. Blocking here is the intended semantics: the
// client issued a Lock and stalls until the server grants it; other
// connections keep progressing on their own goroutines.
func (tl *targetLock) acquire(excl bool) {
	tl.mu.Lock()
	for tl.exclusive || (excl && tl.shared > 0) {
		tl.cond.Wait()
	}
	if excl {
		tl.exclusive = true
	} else {
		tl.shared++
	}
	tl.mu.Unlock()
}

func (tl *targetLock) release(excl bool) {
	tl.mu.Lock()
	if excl {
		tl.exclusive = false
	} else if tl.shared > 0 {
		tl.shared--
	}
	tl.mu.Unlock()
	tl.cond.Broadcast()
}

// barrier is the rendezvous of one window's world (OpBarrier, the wire
// transport's Fence). Arrivals block until `world` clients arrive or the
// server starts draining.
type barrier struct {
	mu    sync.Mutex
	world int
	n     int
	ch    chan struct{} // closed to release the current generation
	down  bool          // server draining: release everyone with an error
}

func (b *barrier) arrive() error {
	b.mu.Lock()
	if b.down {
		b.mu.Unlock()
		return ErrShutdown
	}
	if b.world <= 1 {
		b.mu.Unlock()
		return nil
	}
	if b.ch == nil {
		b.ch = make(chan struct{})
	}
	b.n++
	if b.n == b.world {
		close(b.ch)
		b.n = 0
		b.ch = nil
		b.mu.Unlock()
		return nil
	}
	ch := b.ch
	b.mu.Unlock()
	<-ch
	b.mu.Lock()
	down := b.down
	b.mu.Unlock()
	if down {
		return ErrShutdown
	}
	return nil
}

// abort releases every waiter with ErrShutdown and fails future arrivals.
func (b *barrier) abort() {
	b.mu.Lock()
	b.down = true
	if b.ch != nil {
		close(b.ch)
		b.ch = nil
		b.n = 0
	}
	b.mu.Unlock()
}

// serverWindow is the server-side state of one exposed window.
type serverWindow struct {
	name    string
	regions [][]byte
	stripes [][]sync.RWMutex // clampi:lockrank stripe
	shift   []uint
	locks   []targetLock
	bar     barrier

	mu       sync.Mutex
	world    int // 0 until pinned by config or the first handshake
	nextRank int32

	// sinks maps a rank to the connection it dedicated with OpSubscribe:
	// the server pushes OpNotify frames for every PutNotify to all
	// registered sinks except the writer's own rank. Guarded by sinkMu;
	// snapshot under it, write to the sink outside it.
	sinkMu sync.Mutex
	sinks  map[int32]*serverConn
}

// setSink registers the notification sink of rank. A re-subscribe
// replaces the previous sink: the newest dedicated connection wins,
// matching a client that redialed after a failure.
func (w *serverWindow) setSink(rank int32, c *serverConn) {
	w.sinkMu.Lock()
	if w.sinks == nil {
		w.sinks = make(map[int32]*serverConn)
	}
	w.sinks[rank] = c
	w.sinkMu.Unlock()
}

// dropSink clears rank's sink only if it is still c — a dead connection
// must not deregister its replacement.
func (w *serverWindow) dropSink(rank int32, c *serverConn) {
	w.sinkMu.Lock()
	if w.sinks[rank] == c {
		delete(w.sinks, rank)
	}
	w.sinkMu.Unlock()
}

// snapshotSinks copies the sinks of every rank except skip.
func (w *serverWindow) snapshotSinks(skip int32) []*serverConn {
	w.sinkMu.Lock()
	out := make([]*serverConn, 0, len(w.sinks))
	for r, c := range w.sinks {
		if r != skip && c != nil {
			out = append(out, c)
		}
	}
	w.sinkMu.Unlock()
	return out
}

// setWorld pins or validates the window's world size.
func (w *serverWindow) setWorld(world int32) error {
	if world <= 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.world == 0 {
		w.world = int(world)
		w.bar.mu.Lock()
		w.bar.world = int(world)
		w.bar.mu.Unlock()
		return nil
	}
	if w.world != int(world) {
		return fmt.Errorf("%w: client declared world %d, window pinned to %d", ErrBadWorld, world, w.world)
	}
	return nil
}

// grantRank validates a requested rank or assigns the next free one.
// A rank is the client's identity inside the window's world, so an
// explicit request must name a member; auto-assignment cycles through
// the world, which keeps short-lived diagnostic clients working without
// ever minting an out-of-world identity.
func (w *serverWindow) grantRank(req int32) (int32, error) {
	if req >= int32(len(w.regions)) {
		return 0, fmt.Errorf("%w: rank %d outside world of %d", ErrBadWorld, req, len(w.regions))
	}
	if req >= 0 {
		return req, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	r := w.nextRank
	w.nextRank = (w.nextRank + 1) % int32(len(w.regions))
	return r, nil
}

// Server exposes windows to wire clients. Create with Serve; stop with
// Shutdown.
type Server struct {
	cfg      ServeConfig
	ln       net.Listener
	windows  map[string]*serverWindow
	def      *serverWindow
	draining atomic.Bool

	connWG   sync.WaitGroup
	acceptWG sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// Metrics (nil-safe: all remain nil when cfg.Registry is nil).
	mConns    *obsv.Gauge
	mFramesIn *obsv.Counter
	mFramesOu *obsv.Counter
	mBytesIn  *obsv.Counter
	mBytesOut *obsv.Counter

	acceptErr atomic.Pointer[error]
}

// Errors of server construction.
var (
	ErrNoWindows = errors.New("wire: server needs at least one window")
)

// Serve starts listening on cfg.Network/cfg.Addr and accepting clients
// in a background goroutine. It returns as soon as the listener is
// bound, so callers can read the effective address (Addr) — handy with
// ":0" TCP listeners in tests.
func Serve(cfg ServeConfig) (*Server, error) {
	if len(cfg.Windows) == 0 {
		return nil, ErrNoWindows
	}
	if cfg.Network == "" {
		cfg.Network = "tcp"
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = DefaultMaxPayload
	}
	s := &Server{
		cfg:     cfg,
		windows: make(map[string]*serverWindow, len(cfg.Windows)),
		conns:   make(map[net.Conn]struct{}),
	}
	for i, spec := range cfg.Windows {
		if _, dup := s.windows[spec.Name]; dup {
			return nil, fmt.Errorf("wire: duplicate window name %q", spec.Name)
		}
		sw := &serverWindow{name: spec.Name, regions: spec.Regions}
		sw.stripes, sw.shift = makeStripes(spec.Regions)
		sw.locks = make([]targetLock, len(spec.Regions))
		for t := range sw.locks {
			sw.locks[t].init()
		}
		if cfg.World > 0 {
			sw.world = cfg.World
			sw.bar.world = cfg.World
		}
		s.windows[spec.Name] = sw
		if i == 0 {
			s.def = sw
		}
	}
	if reg := cfg.Registry; reg != nil {
		s.mConns = reg.Gauge("wire_server_open_connections")
		s.mFramesIn = reg.Counter("wire_server_frames_total", obsv.L("dir", "in"))
		s.mFramesOu = reg.Counter("wire_server_frames_total", obsv.L("dir", "out"))
		s.mBytesIn = reg.Counter("wire_server_bytes_total", obsv.L("dir", "in"))
		s.mBytesOut = reg.Counter("wire_server_bytes_total", obsv.L("dir", "out"))
	}
	ln, err := net.Listen(cfg.Network, cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s %s: %w", cfg.Network, cfg.Addr, err)
	}
	s.ln = ln
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's effective address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if !s.draining.Load() {
				e := err
				s.acceptErr.Store(&e)
				s.logf("wire: accept: %v", err)
			}
			return
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		if s.mConns != nil {
			s.mConns.Set(int64(s.openConns()))
		}
		s.connWG.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) openConns() int {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return len(s.conns)
}

// Shutdown gracefully drains the server: the listener closes, blocked
// barriers release with ErrShutdown, in-flight requests complete, and
// connections still open after the drain window are force-closed. It is
// the SIGTERM path of cmd/clampi-serve.
func (s *Server) Shutdown(drain time.Duration) error {
	s.draining.Store(true)
	err := s.ln.Close()
	for _, w := range s.windows {
		w.bar.abort()
	}
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	timer := time.NewTimer(drain) //clampi:walltime daemon drain window is genuinely wall-clock
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.connWG.Wait()
	}
	s.acceptWG.Wait()
	return err
}

// conn is the per-connection server state.
type serverConn struct {
	s    *Server
	conn net.Conn
	fr   *frameReader

	// wmu serializes writers of the connection: the conn's own handler
	// goroutine (responses) and any other conn's goroutine pushing
	// OpNotify frames into a subscribed sink. It guards wbuf too.
	wmu  sync.Mutex
	wbuf []byte

	win        *serverWindow
	rank       int32
	subscribed bool           // this conn is its rank's notification sink
	held       map[int32]bool // target -> exclusive? (locks to release on death)
}

// serveConn runs one connection to completion.
func (s *Server) serveConn(conn net.Conn) {
	defer s.connWG.Done()
	c := &serverConn{s: s, conn: conn, fr: newFrameReader(conn, s.cfg.MaxPayload), held: make(map[int32]bool)}
	defer func() {
		// Release whatever passive-target locks the client died holding,
		// so one crashed client never wedges the fleet.
		if c.win != nil {
			for t, excl := range c.held {
				c.win.locks[t].release(excl)
			}
			if c.subscribed {
				c.win.dropSink(c.rank, c)
			}
		}
		conn.Close()
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		if s.mConns != nil {
			s.mConns.Set(int64(s.openConns()))
		}
	}()
	for {
		f, err := c.fr.next()
		if err != nil {
			if !errors.Is(err, io.EOF) && !s.draining.Load() {
				s.logf("wire: conn %v: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if s.mFramesIn != nil {
			s.mFramesIn.Inc()
			s.mBytesIn.Add(int64(headerSize + len(f.Payload) + checksumSize))
		}
		stop := c.handle(f)
		if stop {
			return
		}
		if s.draining.Load() {
			return
		}
	}
}

// handle dispatches one request frame and writes the response. The
// return value reports whether the connection should close.
func (c *serverConn) handle(f Frame) (stop bool) {
	var start time.Time
	reg := c.s.cfg.Registry
	if reg != nil {
		start = time.Now() //clampi:walltime daemon per-op latency histograms are wall-clock by design (DESIGN.md §13)
	}
	op := f.Op
	var err error
	switch op {
	case OpHello:
		err = c.hello(f)
	case OpGet:
		err = c.get(f)
	case OpGetBatch:
		err = c.getBatch(f)
	case OpPut:
		err = c.put(f)
	case OpPutNotify:
		err = c.putNotify(f)
	case OpSubscribe:
		err = c.subscribe(f)
	case OpAccumulate:
		err = c.accumulate(f)
	case OpChecksum:
		err = c.checksum(f)
	case OpFlush:
		// A synchronous transport has nothing left to order: every
		// earlier op on this connection already completed. Ack so the
		// client can account one round trip for the completion call.
		err = c.ack(f.Seq)
	case OpLock:
		err = c.lock(f, true)
	case OpUnlock:
		err = c.lock(f, false)
	case OpBarrier:
		err = c.barrier(f)
	case OpDetach:
		_ = c.ack(f.Seq)
		return true
	default:
		err = c.fail(f.Seq, fmt.Errorf("%w: unexpected op %s", ErrProto, OpName(op)))
	}
	if reg != nil {
		reg.Histogram("wire_server_op_wall_ns", obsv.L("op", OpName(op))).
			Observe(simtime.FromReal(time.Since(start))) //clampi:walltime daemon per-op latency histograms are wall-clock by design
		reg.Counter("wire_server_requests_total", obsv.L("op", OpName(op))).Inc()
	}
	if err != nil {
		c.s.logf("wire: conn %v: %s: %v", c.conn.RemoteAddr(), OpName(op), err)
		return true
	}
	return false
}

// respond writes one response frame. Serialized against notification
// pushes from other connections' goroutines by wmu.
func (c *serverConn) respond(op byte, seq uint64, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = AppendFrame(c.wbuf[:0], op, seq, payload)
	if c.s.mFramesOu != nil {
		c.s.mFramesOu.Inc()
		c.s.mBytesOut.Add(int64(len(c.wbuf)))
	}
	_, err := c.conn.Write(c.wbuf)
	return err
}

// push writes one OpNotify frame into this (subscribed) connection from
// another connection's handler goroutine. Pushes carry sequence 0: they
// answer no request, and the client's pump matches them by op alone.
// A write failure is swallowed — the sink's own read loop observes the
// broken connection and deregisters it; the writer's PutNotify must not
// fail because one subscriber died (its queue overflow semantics cover
// the loss).
func (c *serverConn) push(payload []byte) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = AppendFrame(c.wbuf[:0], OpNotify, 0, payload)
	if c.s.mFramesOu != nil {
		c.s.mFramesOu.Inc()
		c.s.mBytesOut.Add(int64(len(c.wbuf)))
	}
	_, _ = c.conn.Write(c.wbuf)
}

func (c *serverConn) ack(seq uint64) error { return c.respond(OpAck, seq, nil) }

// fail answers a request with a classified OpError frame. Only a broken
// connection is returned as an error (closing the connection); the
// request-level failure travels to the client instead.
func (c *serverConn) fail(seq uint64, reqErr error) error {
	return c.respond(OpError, seq, appendError(nil, errorToCode(reqErr), reqErr.Error()))
}

// needWindow guards data ops against pre-handshake use.
func (c *serverConn) needWindow(seq uint64) (*serverWindow, error) {
	if c.win == nil {
		return nil, c.fail(seq, fmt.Errorf("%w: data op before handshake", ErrProto))
	}
	return c.win, nil
}

func (c *serverConn) hello(f Frame) error {
	h, err := decodeHello(f.Payload)
	if err != nil {
		return c.fail(f.Seq, err)
	}
	w := c.s.def
	if h.Window != "" {
		var ok bool
		if w, ok = c.s.windows[h.Window]; !ok {
			return c.fail(f.Seq, fmt.Errorf("%w: %q", ErrBadWindow, h.Window))
		}
	}
	if err := w.setWorld(h.World); err != nil {
		return c.fail(f.Seq, err)
	}
	rank, err := w.grantRank(h.Rank)
	if err != nil {
		return c.fail(f.Seq, err)
	}
	c.win = w
	c.rank = rank
	sizes := make([]int64, len(w.regions))
	for i, r := range w.regions {
		sizes[i] = int64(len(r))
	}
	return c.respond(OpWelcome, f.Seq, appendWelcome(nil, welcomePayload{Rank: c.rank, Regions: sizes}))
}

// checkRange validates a (target, disp, size) triple against the window.
func checkRange(w *serverWindow, r rangeReq) error {
	if r.Target < 0 || int(r.Target) >= len(w.regions) {
		return fmt.Errorf("%w: target %d of %d regions", rma.ErrRankRange, r.Target, len(w.regions))
	}
	region := w.regions[r.Target]
	if r.Size < 0 || r.Disp < 0 || r.Disp+r.Size > int64(len(region)) {
		return fmt.Errorf("%w: [%d,%d) of %dB region", rma.ErrBounds, r.Disp, r.Disp+r.Size, len(region))
	}
	return nil
}

// lockStripes takes the stripe locks covering one validated range,
// shared for readers and exclusive for writers, in ascending index
// order (the same deadlock-free total order as internal/mpi).
func (w *serverWindow) lockStripes(target int32, disp, size int64, excl bool) (lo, hi int) {
	lo, hi = rangeStripes(w.shift[target], len(w.stripes[target]), int(disp), int(size))
	for i := lo; i <= hi; i++ {
		if excl {
			w.stripes[target][i].Lock()
		} else {
			w.stripes[target][i].RLock()
		}
	}
	return lo, hi
}

func (w *serverWindow) unlockStripes(target int32, lo, hi int, excl bool) {
	for i := hi; i >= lo; i-- {
		if excl {
			w.stripes[target][i].Unlock()
		} else {
			w.stripes[target][i].RUnlock()
		}
	}
}

func (c *serverConn) get(f Frame) error {
	w, err := c.needWindow(f.Seq)
	if w == nil {
		return err
	}
	r, derr := decodeRange(f.Payload)
	if derr != nil {
		return c.fail(f.Seq, derr)
	}
	if verr := checkRange(w, r); verr != nil {
		return c.fail(f.Seq, verr)
	}
	region := w.regions[r.Target]
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = c.wbuf[:0]
	// Build the data frame under the stripe read locks so the checksum
	// and payload are a consistent snapshot even against concurrent puts.
	lo, hi := w.lockStripes(r.Target, r.Disp, r.Size, false)
	c.wbuf = AppendFrame(c.wbuf, OpData, f.Seq, region[r.Disp:r.Disp+r.Size])
	w.unlockStripes(r.Target, lo, hi, false)
	if c.s.mFramesOu != nil {
		c.s.mFramesOu.Inc()
		c.s.mBytesOut.Add(int64(len(c.wbuf)))
	}
	_, err = c.conn.Write(c.wbuf)
	return err
}

func (c *serverConn) getBatch(f Frame) error {
	w, err := c.needWindow(f.Seq)
	if w == nil {
		return err
	}
	ops, derr := decodeBatch(f.Payload)
	if derr != nil {
		return c.fail(f.Seq, derr)
	}
	total := 0
	for i := range ops {
		if verr := checkRange(w, ops[i]); verr != nil {
			return c.fail(f.Seq, verr)
		}
		total += int(ops[i].Size)
		if total > c.s.cfg.MaxPayload {
			return c.fail(f.Seq, fmt.Errorf("%w: batch response %dB", ErrFrameTooBig, total))
		}
	}
	// One response frame for the whole batch: this is where k coalesced
	// client ops become 2 syscalls instead of 2k.
	payload := make([]byte, 0, total)
	for i := range ops {
		r := &ops[i]
		region := w.regions[r.Target]
		lo, hi := w.lockStripes(r.Target, r.Disp, r.Size, false)
		payload = append(payload, region[r.Disp:r.Disp+r.Size]...)
		w.unlockStripes(r.Target, lo, hi, false)
	}
	return c.respond(OpData, f.Seq, payload)
}

func (c *serverConn) put(f Frame) error {
	w, err := c.needWindow(f.Seq)
	if w == nil {
		return err
	}
	p, derr := decodePut(f.Payload)
	if derr != nil {
		return c.fail(f.Seq, derr)
	}
	r := rangeReq{Target: p.Target, Disp: p.Disp, Size: int64(len(p.Data))}
	if verr := checkRange(w, r); verr != nil {
		return c.fail(f.Seq, verr)
	}
	lo, hi := w.lockStripes(r.Target, r.Disp, r.Size, true)
	copy(w.regions[r.Target][r.Disp:], p.Data)
	w.unlockStripes(r.Target, lo, hi, true)
	return c.ack(f.Seq)
}

// putNotify writes like put and then pushes an OpNotify descriptor into
// every subscribed sink except the writer's own rank. Pushes complete
// before the writer's ack, so by the time its PutNotify call returns the
// descriptor is in every sink's socket; a subscriber that pumps after
// the next barrier therefore observes every pre-barrier write (frames on
// one connection are FIFO).
func (c *serverConn) putNotify(f Frame) error {
	w, err := c.needWindow(f.Seq)
	if w == nil {
		return err
	}
	p, derr := decodePutNotify(f.Payload)
	if derr != nil {
		return c.fail(f.Seq, derr)
	}
	r := rangeReq{Target: p.Target, Disp: p.Disp, Size: int64(len(p.Data))}
	if verr := checkRange(w, r); verr != nil {
		return c.fail(f.Seq, verr)
	}
	lo, hi := w.lockStripes(r.Target, r.Disp, r.Size, true)
	copy(w.regions[r.Target][r.Disp:], p.Data)
	w.unlockStripes(r.Target, lo, hi, true)
	n := notifyPayload{
		Origin: c.rank,
		Target: p.Target,
		Disp:   p.Disp,
		Len:    int64(len(p.Data)),
		Tag:    p.Tag,
	}
	if len(p.Data) > 0 && len(p.Data) <= notify.DataMax {
		n.HasData = true
		n.Data = p.Data
	}
	sinks := w.snapshotSinks(c.rank)
	if len(sinks) > 0 {
		payload := appendNotify(nil, n)
		for _, sink := range sinks {
			sink.push(payload)
		}
	}
	return c.ack(f.Seq)
}

// subscribe dedicates this connection as its rank's notification sink.
// The client sends it on a freshly dialed connection that it thereafter
// uses only for OpFlush pump markers, so pushed frames and the marker's
// ack share one FIFO stream.
func (c *serverConn) subscribe(f Frame) error {
	w, err := c.needWindow(f.Seq)
	if w == nil {
		return err
	}
	if len(f.Payload) != 0 {
		return c.fail(f.Seq, fmt.Errorf("%w: subscribe payload %dB", ErrProto, len(f.Payload)))
	}
	w.setSink(c.rank, c)
	c.subscribed = true
	return c.ack(f.Seq)
}

func (c *serverConn) accumulate(f Frame) error {
	w, err := c.needWindow(f.Seq)
	if w == nil {
		return err
	}
	a, derr := decodeAcc(f.Payload)
	if derr != nil {
		return c.fail(f.Seq, derr)
	}
	elem := 0
	switch a.Kind {
	case accInt32:
		elem = 4
	case accInt64, accFloat64:
		elem = 8
	default:
		return c.fail(f.Seq, fmt.Errorf("%w: element kind %d", ErrBadAccumulate, a.Kind))
	}
	if len(a.Data)%elem != 0 {
		return c.fail(f.Seq, fmt.Errorf("%w: %dB payload for %dB elements", ErrBadAccumulate, len(a.Data), elem))
	}
	r := rangeReq{Target: a.Target, Disp: a.Disp, Size: int64(len(a.Data))}
	if verr := checkRange(w, r); verr != nil {
		return c.fail(f.Seq, verr)
	}
	region := w.regions[a.Target]
	lo, hi := w.lockStripes(r.Target, r.Disp, r.Size, true)
	applyAcc(region[r.Disp:r.Disp+r.Size], a.Data, a.Kind, rma.Op(a.Op))
	w.unlockStripes(r.Target, lo, hi, true)
	return c.ack(f.Seq)
}

func (c *serverConn) checksum(f Frame) error {
	w, err := c.needWindow(f.Seq)
	if w == nil {
		return err
	}
	r, derr := decodeRange(f.Payload)
	if derr != nil {
		return c.fail(f.Seq, derr)
	}
	if verr := checkRange(w, r); verr != nil {
		return c.fail(f.Seq, verr)
	}
	region := w.regions[r.Target]
	lo, hi := w.lockStripes(r.Target, r.Disp, r.Size, false)
	sum := rma.ChecksumBytes(region[r.Disp : r.Disp+r.Size])
	w.unlockStripes(r.Target, lo, hi, false)
	var payload [8]byte
	putU64(payload[:], sum)
	return c.respond(OpData, f.Seq, payload[:])
}

func (c *serverConn) lock(f Frame, acquire bool) error {
	w, err := c.needWindow(f.Seq)
	if w == nil {
		return err
	}
	l, derr := decodeLock(f.Payload)
	if derr != nil {
		return c.fail(f.Seq, derr)
	}
	if l.Target < 0 || int(l.Target) >= len(w.regions) {
		return c.fail(f.Seq, fmt.Errorf("%w: target %d of %d regions", rma.ErrRankRange, l.Target, len(w.regions)))
	}
	excl := rma.LockType(l.Type) == rma.LockExclusive
	if acquire {
		w.locks[l.Target].acquire(excl)
		c.held[l.Target] = excl
	} else {
		if heldExcl, ok := c.held[l.Target]; ok {
			w.locks[l.Target].release(heldExcl)
			delete(c.held, l.Target)
		}
	}
	return c.ack(f.Seq)
}

func (c *serverConn) barrier(f Frame) error {
	w, err := c.needWindow(f.Seq)
	if w == nil {
		return err
	}
	if berr := w.bar.arrive(); berr != nil {
		return c.fail(f.Seq, berr)
	}
	return c.ack(f.Seq)
}

// applyAcc element-wise combines src into dst (both packed little-endian
// arrays of the given kind) under op. OpReplace never reaches here: the
// client degenerates it to Put, exactly like internal/mpi.
func applyAcc(dst, src []byte, kind byte, op rma.Op) {
	switch kind {
	case accInt32:
		for i := 0; i+4 <= len(src); i += 4 {
			a := int64(int32(leU32(dst[i:])))
			b := int64(int32(leU32(src[i:])))
			putU32(dst[i:], uint32(int32(combineInt(a, b, op))))
		}
	case accInt64:
		for i := 0; i+8 <= len(src); i += 8 {
			a := int64(leU64(dst[i:]))
			b := int64(leU64(src[i:]))
			putU64(dst[i:], uint64(combineInt(a, b, op)))
		}
	case accFloat64:
		for i := 0; i+8 <= len(src); i += 8 {
			a := math.Float64frombits(leU64(dst[i:]))
			b := math.Float64frombits(leU64(src[i:]))
			putU64(dst[i:], math.Float64bits(combineFloat(a, b, op)))
		}
	}
}

func combineInt(a, b int64, op rma.Op) int64 {
	switch op {
	case rma.OpSum:
		return a + b
	case rma.OpMax:
		if b > a {
			return b
		}
		return a
	case rma.OpMin:
		if b < a {
			return b
		}
		return a
	}
	return b
}

func combineFloat(a, b float64, op rma.Op) float64 {
	switch op {
	case rma.OpSum:
		return a + b
	case rma.OpMax:
		if b > a {
			return b
		}
		return a
	case rma.OpMin:
		if b < a {
			return b
		}
		return a
	}
	return b
}
