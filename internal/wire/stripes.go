package wire

// Striped region locks for the daemon, mirroring the internal/mpi
// Throughput-mode scheme: each target region is covered by up to
// dataStripes read-write locks over power-of-two byte ranges. Readers of
// disjoint — and of the same — stripes proceed concurrently; writers
// take their covered stripes exclusively; multi-stripe operations
// acquire ascending, making the order total and the scheme
// deadlock-free. Keeping the exact same geometry as internal/mpi means
// one mental model (and one documented constant pair) covers both the
// simulated and the socket backend.

import (
	"encoding/binary"
	"sync"
)

// dataStripes is the maximum number of lock stripes per region;
// minStripeShift is the log2 of the minimum stripe width (256 bytes).
// Both match internal/mpi.
const (
	dataStripes    = 8
	minStripeShift = 8
)

// makeStripes builds per-region stripe locks: the smallest power-of-two
// stripe width >= 256 bytes such that at most dataStripes stripes cover
// the region. Empty regions get one stripe so bounds-valid zero-byte
// operations still have a lock to name.
func makeStripes(regions [][]byte) ([][]sync.RWMutex, []uint) {
	stripes := make([][]sync.RWMutex, len(regions))
	shifts := make([]uint, len(regions))
	for i, reg := range regions {
		shift := uint(minStripeShift)
		for (len(reg)+(1<<shift)-1)>>shift > dataStripes {
			shift++
		}
		n := (len(reg) + (1 << shift) - 1) >> shift
		if n < 1 {
			n = 1
		}
		stripes[i] = make([]sync.RWMutex, n)
		shifts[i] = shift
	}
	return stripes, shifts
}

// rangeStripes returns the inclusive stripe index range covering bytes
// [disp, disp+size) under the given shift; callers validate bounds
// first. Size 0 degenerates to the single stripe holding disp.
func rangeStripes(shift uint, nStripes, disp, size int) (lo, hi int) {
	lo = disp >> shift
	hi = lo
	if size > 0 {
		hi = (disp + size - 1) >> shift
	}
	if hi >= nStripes {
		hi = nStripes - 1
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Little-endian scalar helpers shared by the codec and the accumulate
// arithmetic.
func leU32(b []byte) uint32     { return binary.LittleEndian.Uint32(b) }
func leU64(b []byte) uint64     { return binary.LittleEndian.Uint64(b) }
func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
