package wire

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"clampi/internal/rma"
)

// TestFrameRoundTrip encodes and decodes frames across the payload-size
// spectrum, including the empty payload.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x42},
		bytes.Repeat([]byte{0xAB}, 255),
		bytes.Repeat([]byte{0x00}, 4096),
	}
	for i, p := range payloads {
		op := byte(OpGet + byte(i%5))
		seq := uint64(i)*7919 + 1
		b := AppendFrame(nil, op, seq, p)
		f, n, err := DecodeFrame(b, 0)
		if err != nil {
			t.Fatalf("payload %d: decode: %v", i, err)
		}
		if n != len(b) {
			t.Fatalf("payload %d: consumed %d of %d", i, n, len(b))
		}
		if f.Op != op || f.Seq != seq || !bytes.Equal(f.Payload, p) {
			t.Fatalf("payload %d: round trip mismatch: %+v", i, f)
		}
	}
}

// TestDecodeFrameFailures is the corruption table: every way a frame can
// be damaged — truncation, bit flips in any section, hostile lengths —
// must surface as a sentinel in the rma.ErrTransient family (with
// structural damage narrowing to rma.ErrCorrupt) and must never panic or
// deliver bytes.
func TestDecodeFrameFailures(t *testing.T) {
	good := AppendFrame(nil, OpGet, 42, []byte("the payload under test"))
	cases := []struct {
		name    string
		mutate  func(b []byte) []byte
		max     int
		want    error // specific sentinel the failure must match
		corrupt bool  // must additionally match rma.ErrCorrupt
	}{
		{"empty", func(b []byte) []byte { return nil }, 0, rma.ErrTransient, false},
		{"short header", func(b []byte) []byte { return b[:headerSize-1] }, 0, rma.ErrTransient, false},
		{"truncated payload", func(b []byte) []byte { return b[:headerSize+3] }, 0, rma.ErrTransient, false},
		{"truncated checksum", func(b []byte) []byte { return b[:len(b)-1] }, 0, rma.ErrTransient, false},
		{"bad magic byte 0", func(b []byte) []byte { b[0] ^= 0xFF; return b }, 0, ErrProto, true},
		{"bad magic byte 1", func(b []byte) []byte { b[1] ^= 0x01; return b }, 0, ErrProto, true},
		{"bad version", func(b []byte) []byte { b[2] = Version + 1; return b }, 0, ErrProto, true},
		{"flipped op bit", func(b []byte) []byte { b[3] ^= 0x10; return b }, 0, ErrChecksum, true},
		{"flipped seq bit", func(b []byte) []byte { b[5] ^= 0x80; return b }, 0, ErrChecksum, true},
		{"flipped payload bit", func(b []byte) []byte { b[headerSize] ^= 0x04; return b }, 0, ErrChecksum, true},
		{"flipped checksum bit", func(b []byte) []byte { b[len(b)-2] ^= 0x02; return b }, 0, ErrChecksum, true},
		{"hostile length", func(b []byte) []byte { b[12], b[13], b[14], b[15] = 0xFF, 0xFF, 0xFF, 0x7F; return b }, 0, ErrFrameTooBig, true},
		{"over negotiated limit", func(b []byte) []byte { return b }, 4, ErrFrameTooBig, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), good...))
			f, _, err := DecodeFrame(b, tc.max)
			if err == nil {
				t.Fatalf("decoded damaged frame: %+v", f)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if !errors.Is(err, rma.ErrTransient) {
				t.Fatalf("err = %v escapes the rma.ErrTransient family", err)
			}
			if tc.corrupt != errors.Is(err, rma.ErrCorrupt) {
				t.Fatalf("err = %v: ErrCorrupt match = %v, want %v", err, !tc.corrupt, tc.corrupt)
			}
		})
	}
}

// FuzzWireFrame holds DecodeFrame to its contract on arbitrary bytes: it
// never panics, every failure stays inside the rma.ErrTransient family,
// and a successful decode round-trips — re-encoding the decoded frame
// reproduces exactly the consumed prefix. The same input also exercises
// the encode→decode direction as a payload.
func FuzzWireFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, OpGet, 1, []byte("seed")))
	f.Add(AppendFrame(nil, OpData, 1<<40, nil))
	f.Add(AppendFrame(nil, OpError, 7, appendError(nil, CodeBounds, "out of range")))
	f.Add([]byte{magic0, magic1, Version, OpGet, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{magic0}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		const max = 1 << 20
		fr, n, err := DecodeFrame(data, max)
		if err != nil {
			if !errors.Is(err, rma.ErrTransient) {
				t.Fatalf("decode failure %v escapes the rma.ErrTransient family", err)
			}
		} else {
			if n < headerSize+checksumSize || n > len(data) {
				t.Fatalf("consumed %d of %d", n, len(data))
			}
			re := AppendFrame(nil, fr.Op, fr.Seq, fr.Payload)
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("re-encode of decoded frame diverges from input")
			}
		}
		// Encode direction: any bytes are a valid payload.
		if len(data) <= max {
			b := AppendFrame(nil, OpPut, 99, data)
			got, n2, err2 := DecodeFrame(b, max)
			if err2 != nil || n2 != len(b) {
				t.Fatalf("decode of encoded frame: n=%d err=%v", n2, err2)
			}
			if got.Op != OpPut || got.Seq != 99 || !bytes.Equal(got.Payload, data) {
				t.Fatalf("payload round trip mismatch")
			}
		}
	})
}

// TestPayloadCodecs round-trips every payload encoding and rejects short
// or malformed payloads with ErrProto (never a panic).
func TestPayloadCodecs(t *testing.T) {
	t.Run("hello", func(t *testing.T) {
		in := helloPayload{Rank: 3, World: 8, Window: "graph"}
		out, err := decodeHello(appendHello(nil, in))
		if err != nil || out != in {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
		if _, err := decodeHello([]byte{1, 2}); !errors.Is(err, ErrProto) {
			t.Fatalf("short hello: %v", err)
		}
		if _, err := decodeHello(appendHello(nil, in)[:11]); !errors.Is(err, ErrProto) {
			t.Fatalf("clipped hello name: %v", err)
		}
	})
	t.Run("welcome", func(t *testing.T) {
		in := welcomePayload{Rank: 5, Regions: []int64{1024, 2048, 0}}
		out, err := decodeWelcome(appendWelcome(nil, in))
		if err != nil || out.Rank != in.Rank || len(out.Regions) != 3 || out.Regions[1] != 2048 {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
		if _, err := decodeWelcome([]byte{0}); !errors.Is(err, ErrProto) {
			t.Fatalf("short welcome: %v", err)
		}
		if _, err := decodeWelcome(appendWelcome(nil, in)[:12]); !errors.Is(err, ErrProto) {
			t.Fatalf("clipped welcome regions: %v", err)
		}
	})
	t.Run("range", func(t *testing.T) {
		in := rangeReq{Target: 2, Disp: 4096, Size: 512}
		out, err := decodeRange(appendRange(nil, in))
		if err != nil || out != in {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
		if _, err := decodeRange(make([]byte, rangeReqSize-1)); !errors.Is(err, ErrProto) {
			t.Fatalf("short range: %v", err)
		}
	})
	t.Run("put", func(t *testing.T) {
		in := putReq{Target: 1, Disp: 64, Data: []byte{9, 8, 7}}
		out, err := decodePut(appendPut(nil, in))
		if err != nil || out.Target != 1 || out.Disp != 64 || !bytes.Equal(out.Data, in.Data) {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
		if _, err := decodePut(make([]byte, 11)); !errors.Is(err, ErrProto) {
			t.Fatalf("short put: %v", err)
		}
	})
	t.Run("accumulate", func(t *testing.T) {
		in := accReq{Target: 0, Disp: 8, Op: byte(rma.OpSum), Kind: accInt64, Data: []byte{1, 0, 0, 0, 0, 0, 0, 0}}
		out, err := decodeAcc(appendAcc(nil, in))
		if err != nil || out.Target != 0 || out.Op != in.Op || out.Kind != accInt64 || !bytes.Equal(out.Data, in.Data) {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
		if _, err := decodeAcc(make([]byte, 13)); !errors.Is(err, ErrProto) {
			t.Fatalf("short accumulate: %v", err)
		}
	})
	t.Run("batch", func(t *testing.T) {
		ops := []rma.GetOp{
			{Dst: make([]byte, 16), Target: 0, Disp: 0},
			{Dst: make([]byte, 32), Target: 3, Disp: 128},
		}
		out, err := decodeBatch(appendBatch(nil, ops))
		if err != nil || len(out) != 2 || out[1] != (rangeReq{Target: 3, Disp: 128, Size: 32}) {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
		if _, err := decodeBatch([]byte{1, 2, 3}); !errors.Is(err, ErrProto) {
			t.Fatalf("short batch: %v", err)
		}
		if _, err := decodeBatch(appendBatch(nil, ops)[:9]); !errors.Is(err, ErrProto) {
			t.Fatalf("clipped batch ops: %v", err)
		}
	})
	t.Run("lock", func(t *testing.T) {
		in := lockReq{Target: 7, Type: byte(rma.LockExclusive)}
		out, err := decodeLock(appendLock(nil, in))
		if err != nil || out != in {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
		if _, err := decodeLock(make([]byte, 4)); !errors.Is(err, ErrProto) {
			t.Fatalf("short lock: %v", err)
		}
	})
	t.Run("error", func(t *testing.T) {
		code, msg, err := decodeError(appendError(nil, CodeBounds, "oops"))
		if err != nil || code != CodeBounds || msg != "oops" {
			t.Fatalf("round trip: %d %q %v", code, msg, err)
		}
		if _, _, err := decodeError([]byte{1}); !errors.Is(err, ErrProto) {
			t.Fatalf("short error: %v", err)
		}
	})
}

// TestErrorCodeRoundTrip feeds every server-classifiable sentinel
// through errorToCode → codeToError and checks the reconstructed error
// still matches the original sentinel with errors.Is — the property that
// makes wire and simulated backends indistinguishable to error handling.
func TestErrorCodeRoundTrip(t *testing.T) {
	sentinels := []error{
		rma.ErrRankRange,
		rma.ErrBounds,
		ErrUnsupported,
		ErrBadAccumulate,
		ErrProto,
		ErrBadWindow,
		ErrBadWorld,
		ErrShutdown,
	}
	for _, want := range sentinels {
		wrapped := fmt.Errorf("%w: context", want)
		got := codeToError(errorToCode(wrapped), wrapped.Error())
		if !errors.Is(got, want) {
			t.Errorf("sentinel %v round-tripped to %v", want, got)
		}
	}
	// Unknown codes and unclassified failures degrade to transient.
	if got := codeToError(CodeInternal, "boom"); !errors.Is(got, rma.ErrTransient) {
		t.Errorf("internal code mapped to %v, want transient", got)
	}
	if got := codeToError(0xFFFF, "future"); !errors.Is(got, rma.ErrTransient) {
		t.Errorf("unknown code mapped to %v, want transient", got)
	}
}
