// Package workload generates the synthetic get sequences of the paper's
// micro-benchmarks (§IV-A).
//
// The sequence is built in two steps:
//
//  1. A set of N distinct gets, each targeting different data (no hits on
//     an ideal cache), with sizes drawn uniformly from {2^i | i = 0..16}.
//  2. A sequence of Z >= N gets sampled from the set with indices drawn
//     from a normal distribution N(N/2, N/4), so a subset of the gets is
//     much more frequent than the rest — the working set.
package workload

import (
	"math/rand"
)

// GetSpec is one get of the micro-benchmark: a contiguous transfer of
// Size bytes at displacement Disp in the target window.
type GetSpec struct {
	Disp int
	Size int
}

// MaxSizeExp is the largest size exponent of step 1 (sizes up to 2^16 B).
const MaxSizeExp = 16

// Distinct builds step 1: n distinct gets with power-of-two sizes laid
// out back to back (cache-line aligned) in the target region. The second
// result is the region size needed to hold them all.
func Distinct(n int, seed int64) ([]GetSpec, int) {
	if n <= 0 {
		return nil, 0
	}
	rng := rand.New(rand.NewSource(seed))
	specs := make([]GetSpec, n)
	off := 0
	for i := range specs {
		size := 1 << rng.Intn(MaxSizeExp+1)
		specs[i] = GetSpec{Disp: off, Size: size}
		off += (size + 63) / 64 * 64
	}
	return specs, off
}

// Sequence builds step 2: z indices into a set of n distinct gets, drawn
// from N(n/2, n/4) and clamped to [0, n).
func Sequence(n, z int, seed int64) []int {
	if n <= 0 || z <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	seq := make([]int, z)
	mean, dev := float64(n)/2, float64(n)/4
	for i := range seq {
		v := int(rng.NormFloat64()*dev + mean)
		if v < 0 {
			v = 0
		}
		if v >= n {
			v = n - 1
		}
		seq[i] = v
	}
	return seq
}

// Micro combines both steps: the distinct set, the sampled sequence of
// indices into it, and the region size that holds all the data.
func Micro(n, z int, seed int64) (specs []GetSpec, seq []int, regionSize int) {
	specs, regionSize = Distinct(n, seed)
	seq = Sequence(n, z, seed+1)
	return specs, seq, regionSize
}

// FixedSize builds n distinct gets of exactly size bytes each (used by
// the access-cost characterization of Fig. 7, where the data size D is a
// controlled variable).
func FixedSize(n, size int) ([]GetSpec, int) {
	if n <= 0 || size <= 0 {
		return nil, 0
	}
	specs := make([]GetSpec, n)
	stride := (size + 63) / 64 * 64
	for i := range specs {
		specs[i] = GetSpec{Disp: i * stride, Size: size}
	}
	return specs, n * stride
}

// WorkingSetBytes returns the total payload of the distinct set weighted
// by how often the sequence touches each entry at least once — i.e. the
// cache footprint an ideal cache would need for the sequence.
func WorkingSetBytes(specs []GetSpec, seq []int) int {
	seen := make([]bool, len(specs))
	total := 0
	for _, i := range seq {
		if i >= 0 && i < len(specs) && !seen[i] {
			seen[i] = true
			total += specs[i].Size
		}
	}
	return total
}
