package workload

import (
	"testing"
)

func TestDistinctProperties(t *testing.T) {
	specs, region := Distinct(1000, 42)
	if len(specs) != 1000 {
		t.Fatalf("len = %d", len(specs))
	}
	seen := map[int]bool{}
	end := 0
	for _, s := range specs {
		if s.Size < 1 || s.Size > 1<<MaxSizeExp {
			t.Fatalf("size %d out of range", s.Size)
		}
		if s.Size&(s.Size-1) != 0 {
			t.Fatalf("size %d not a power of two", s.Size)
		}
		if s.Disp < end && end > 0 && s.Disp != 0 {
			// displacements are non-decreasing and non-overlapping
		}
		if s.Disp < 0 || seen[s.Disp] {
			t.Fatalf("duplicate or negative disp %d", s.Disp)
		}
		if s.Disp < end {
			t.Fatalf("overlapping gets: disp %d < previous end %d", s.Disp, end)
		}
		seen[s.Disp] = true
		end = s.Disp + s.Size
	}
	if region < end {
		t.Fatalf("region %d smaller than last get end %d", region, end)
	}
}

func TestDistinctCoversAllSizes(t *testing.T) {
	specs, _ := Distinct(2000, 1)
	bySize := map[int]int{}
	for _, s := range specs {
		bySize[s.Size]++
	}
	// With 2000 uniform draws over 17 sizes, every size class appears.
	for i := 0; i <= MaxSizeExp; i++ {
		if bySize[1<<i] == 0 {
			t.Fatalf("size 2^%d never drawn", i)
		}
	}
}

func TestDistinctEdgeCases(t *testing.T) {
	if s, r := Distinct(0, 1); s != nil || r != 0 {
		t.Fatalf("Distinct(0) = %v,%d", s, r)
	}
	if s := Sequence(0, 10, 1); s != nil {
		t.Fatalf("Sequence(0) = %v", s)
	}
	if s := Sequence(10, 0, 1); s != nil {
		t.Fatalf("Sequence(,0) = %v", s)
	}
}

func TestSequenceDistribution(t *testing.T) {
	const n, z = 1000, 20000
	seq := Sequence(n, z, 7)
	if len(seq) != z {
		t.Fatalf("len = %d", len(seq))
	}
	counts := make([]int, n)
	for _, i := range seq {
		if i < 0 || i >= n {
			t.Fatalf("index %d out of range", i)
		}
		counts[i]++
	}
	// Normal(n/2, n/4): the central band must be far more popular than
	// the tails (the paper's working-set construction).
	center, tail := 0, 0
	for i := 2 * n / 5; i < 3*n/5; i++ {
		center += counts[i]
	}
	for i := 0; i < n/10; i++ {
		tail += counts[i]
	}
	if center <= 3*tail {
		t.Fatalf("sequence not centrally concentrated: center=%d tail=%d", center, tail)
	}
}

func TestSequenceDeterministic(t *testing.T) {
	a := Sequence(100, 500, 3)
	b := Sequence(100, 500, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed sequences differ at %d", i)
		}
	}
}

func TestMicro(t *testing.T) {
	specs, seq, region := Micro(100, 1000, 5)
	if len(specs) != 100 || len(seq) != 1000 || region <= 0 {
		t.Fatalf("Micro: %d specs, %d seq, region %d", len(specs), len(seq), region)
	}
	ws := WorkingSetBytes(specs, seq)
	total := 0
	for _, s := range specs {
		total += s.Size
	}
	if ws <= 0 || ws > total {
		t.Fatalf("working set %d outside (0, %d]", ws, total)
	}
}

func TestFixedSize(t *testing.T) {
	specs, region := FixedSize(10, 100)
	if len(specs) != 10 {
		t.Fatalf("len = %d", len(specs))
	}
	for i, s := range specs {
		if s.Size != 100 {
			t.Fatalf("size = %d", s.Size)
		}
		if s.Disp != i*128 { // 100 rounded to cache line = 128
			t.Fatalf("disp[%d] = %d", i, s.Disp)
		}
	}
	if region != 10*128 {
		t.Fatalf("region = %d", region)
	}
	if s, r := FixedSize(0, 10); s != nil || r != 0 {
		t.Fatalf("FixedSize(0) = %v,%d", s, r)
	}
	if s, r := FixedSize(10, 0); s != nil || r != 0 {
		t.Fatalf("FixedSize(,0) = %v,%d", s, r)
	}
}

func TestWorkingSetBytesIgnoresBadIndices(t *testing.T) {
	specs, _ := FixedSize(4, 64)
	ws := WorkingSetBytes(specs, []int{0, 0, 1, 99, -1})
	if ws != 128 {
		t.Fatalf("ws = %d, want 128", ws)
	}
}
