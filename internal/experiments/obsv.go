package experiments

import (
	"sync"

	"clampi/internal/core"
	"clampi/internal/obsv"
)

// Observability wiring for the experiment drivers (DESIGN.md §8). When
// enabled, every cache the drivers build — fleet ranks and micro-bench
// environments alike — gets a Collector feeding a per-rank registry and
// one shared trace ring; MetricsSnapshot merges the registries for
// export. Disabled (the default), caches carry a nil observer and the
// drivers behave exactly as before.
var obsState struct {
	mu         sync.Mutex
	enabled    bool
	ring       *obsv.Ring
	registries []*obsv.Registry
}

// EnableObservability switches metrics and trace collection on for
// subsequent experiment runs, discarding anything collected so far.
// ringCap bounds the shared trace ring (≤ 0 selects the default).
func EnableObservability(ringCap int) {
	obsState.mu.Lock()
	defer obsState.mu.Unlock()
	obsState.enabled = true
	obsState.ring = obsv.NewRing(ringCap)
	obsState.registries = nil
}

// ObservabilityEnabled reports whether collection is on.
func ObservabilityEnabled() bool {
	obsState.mu.Lock()
	defer obsState.mu.Unlock()
	return obsState.enabled
}

// newObserver returns the observer for one new cache: nil when collection
// is off, otherwise a Collector with its own registry (recorded for the
// final merge) and the shared ring. Per-cache registries keep the hot
// path contention-free across concurrent ranks in Throughput mode.
func newObserver() core.Observer {
	obsState.mu.Lock()
	defer obsState.mu.Unlock()
	if !obsState.enabled {
		return nil
	}
	reg := obsv.NewRegistry()
	obsState.registries = append(obsState.registries, reg)
	return obsv.NewCollector(reg, obsState.ring)
}

// MetricsSnapshot merges every per-cache registry collected since
// EnableObservability into one registry, ready for export. Returns an
// empty registry when collection is off.
func MetricsSnapshot() *obsv.Registry {
	obsState.mu.Lock()
	regs := make([]*obsv.Registry, len(obsState.registries))
	copy(regs, obsState.registries)
	obsState.mu.Unlock()
	merged := obsv.NewRegistry()
	for _, r := range regs {
		merged.Merge(r)
	}
	return merged
}

// TraceRing returns the shared trace ring (nil when collection is off).
func TraceRing() *obsv.Ring {
	obsState.mu.Lock()
	defer obsState.mu.Unlock()
	return obsState.ring
}

// PublishFleetStats exports a fleet's aggregate Stats into reg as gauges
// labelled with the system name, bridging the per-run totals that the
// figure tables report into the same export files as the live counters.
func PublishFleetStats(reg *obsv.Registry, system string, s core.Stats) {
	obsv.PublishStats(reg, s, obsv.L("system", system))
}

// WriteObservability writes the merged metrics (and, when tracePath is
// non-empty, the trace) to files — the shared tail of every cmd binary's
// -metrics/-trace flag handling. Empty paths are skipped.
func WriteObservability(metricsPath, tracePath string) error {
	if metricsPath != "" {
		if err := obsv.WriteMetricsFile(metricsPath, MetricsSnapshot()); err != nil {
			return err
		}
	}
	if tracePath != "" {
		ring := TraceRing()
		if ring == nil {
			ring = obsv.NewRing(1)
		}
		if err := obsv.WriteTraceFile(tracePath, ring); err != nil {
			return err
		}
	}
	return nil
}
