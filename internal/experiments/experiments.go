// Package experiments implements the reproduction drivers for every
// figure of the paper's evaluation (§IV). Each FigN function runs the
// experiment at caller-chosen scale and returns both a rendered table
// (the same rows/series the paper plots) and structured results that the
// benchmark assertions and EXPERIMENTS.md generation consume.
//
// The paper's full-scale parameters are recorded next to each driver;
// bench defaults are scaled down for a single-core host, and the cmd/
// binaries expose flags to run the original sizes.
package experiments

import (
	"fmt"

	"clampi/internal/lsb"
	"clampi/internal/mpi"
	"clampi/internal/netsim"
	"clampi/internal/simtime"
)

// Fig1Row is one (mapping, size) latency measurement.
type Fig1Row struct {
	Mapping string
	Size    int
	Latency simtime.Duration
}

// Fig1Latency reproduces Fig. 1: RMA get latency per message size and
// process/node mapping. The modelled values are cross-checked against an
// actual 2-rank run through the runtime for the inter-node mapping.
func Fig1Latency(sizes []int) ([]Fig1Row, *lsb.Table, error) {
	model := netsim.DefaultModel()
	var rows []Fig1Row
	tbl := lsb.NewTable("Fig 1: get latency per size and mapping", "size(B)", "mapping", "latency")
	for _, d := range netsim.Distances() {
		for _, s := range sizes {
			l := model.GetLatency(s, d)
			rows = append(rows, Fig1Row{Mapping: d.String(), Size: s, Latency: l})
			tbl.AddRow(s, d.String(), l)
		}
	}
	// Cross-check: an end-to-end get through the runtime must agree
	// with the model for the default (one rank per node) mapping.
	for _, s := range sizes {
		var measured simtime.Duration
		err := runWorld(2, func(r *mpi.Rank) error {
			win, _ := r.WinAllocate(s, nil)
			defer win.Free()
			if r.ID() == 0 {
				if err := win.LockAll(); err != nil {
					return err
				}
				dst := make([]byte, s)
				t0 := r.Clock().Now()
				if err := win.Get(dst, byteType, s, 1, 0); err != nil {
					return err
				}
				if err := win.FlushAll(); err != nil {
					return err
				}
				measured = r.Clock().Now() - t0
				if err := win.UnlockAll(); err != nil {
					return err
				}
			}
			r.Barrier()
			return nil
		})
		if err != nil {
			return rows, tbl, err
		}
		want := model.GetLatency(s, netsim.OtherNode)
		if measured != want {
			return rows, tbl, fmt.Errorf("fig1: runtime latency %v != model %v at %dB", measured, want, s)
		}
	}
	return rows, tbl, nil
}
