package experiments

import "testing"

func TestAblationSampleSize(t *testing.T) {
	rows, tbl, err := AblationSampleSize([]int{1, 4, 16, 64}, 256, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		t.Log("\n" + tbl.String())
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Larger samples visit at least as many slots...
	if rows[3].Visited < rows[0].Visited {
		t.Errorf("M=64 visited %.1f < M=1 visited %.1f", rows[3].Visited, rows[0].Visited)
	}
	// ...and pick victims at least as well (occupancy not worse by
	// more than noise).
	if rows[3].Occupancy < rows[0].Occupancy-0.1 {
		t.Errorf("M=64 occupancy %.3f well below M=1 %.3f", rows[3].Occupancy, rows[0].Occupancy)
	}
	for _, r := range rows {
		if r.HitRate <= 0 || r.Time <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
}

func TestAblationAllocPolicy(t *testing.T) {
	rows, tbl, err := AblationAllocPolicy(256, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		t.Log("\n" + tbl.String())
	}
	if len(rows) != 2 || rows[0].Policy != "best-fit" || rows[1].Policy != "first-fit" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.HitRate <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	// Best fit must not fail-to-cache more than first fit by a wide
	// margin (it is the paper's choice for a reason).
	if rows[0].FailRate > rows[1].FailRate+0.05 {
		t.Errorf("best-fit failing rate %.3f far above first-fit %.3f", rows[0].FailRate, rows[1].FailRate)
	}
}

func TestAblationCuckooWalk(t *testing.T) {
	rows, tbl, err := AblationCuckooWalk([]int{4, 16, 64, 256}, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		t.Log("\n" + tbl.String())
	}
	// Utilization at first failure grows monotonically with the walk
	// bound and approaches the ~97% of Fotakis et al.
	for i := 1; i < len(rows); i++ {
		if rows[i].FirstFail < rows[i-1].FirstFail-0.02 {
			t.Errorf("utilization fell: maxIter %d → %.3f, %d → %.3f",
				rows[i-1].MaxIter, rows[i-1].FirstFail, rows[i].MaxIter, rows[i].FirstFail)
		}
	}
	if last := rows[len(rows)-1]; last.FirstFail < 0.9 {
		t.Errorf("256-step walks only reached %.3f utilization", last.FirstFail)
	}
	if rows[0].MaxPathSeen > 4 || rows[3].MaxPathSeen > 256 {
		t.Errorf("path bounds violated: %+v", rows)
	}
}
