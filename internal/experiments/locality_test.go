package experiments

import (
	"testing"

	"clampi/internal/mpi"
	"clampi/internal/rma"
)

// TestMicroDistance checks the by_distance breakdown: every class
// reported, near classes bypassing admission (re-gets stay misses),
// far classes cached (half the gets hit on the re-pass), and per-op
// virtual cost monotonically non-decreasing with distance among the
// miss-priced classes.
func TestMicroDistance(t *testing.T) {
	by, err := MicroDistance()
	if err != nil {
		t.Fatal(err)
	}
	if len(by) != rma.NumDistanceClasses {
		t.Fatalf("classes reported = %d, want %d (%v)", len(by), rma.NumDistanceClasses, by)
	}
	for _, name := range rma.DistanceClassNames {
		d, ok := by[name]
		if !ok {
			t.Fatalf("missing class %q", name)
		}
		if d.Gets != 64 {
			t.Errorf("%s: gets = %d, want 64", name, d.Gets)
		}
	}
	// Same-process and same-socket 256 B fills are below the cheap-fill
	// threshold: nothing admitted, every get a miss.
	for _, near := range []string{"same_process", "same_socket"} {
		if by[near].Hits != 0 || by[near].Misses != 64 {
			t.Errorf("%s: hits/misses = %d/%d, want 0/64 (admission bypass)", near, by[near].Hits, by[near].Misses)
		}
	}
	// Far classes cache the first pass and hit on the second.
	for _, far := range []string{"same_node", "other_node", "other_group"} {
		if by[far].Hits != 32 || by[far].Misses != 32 {
			t.Errorf("%s: hits/misses = %d/%d, want 32/32 (cached re-pass)", far, by[far].Hits, by[far].Misses)
		}
	}
	// Distance ordering holds for per-op virtual cost across the
	// miss-priced near classes, and the farthest cached class still
	// costs more per op than the nearest one.
	if !(by["same_process"].VirtualNsPerOp < by["same_socket"].VirtualNsPerOp) {
		t.Errorf("same_process %.0f !< same_socket %.0f vns/op",
			by["same_process"].VirtualNsPerOp, by["same_socket"].VirtualNsPerOp)
	}
	if !(by["same_node"].VirtualNsPerOp < by["other_group"].VirtualNsPerOp) {
		t.Errorf("same_node %.0f !< other_group %.0f vns/op",
			by["same_node"].VirtualNsPerOp, by["other_group"].VirtualNsPerOp)
	}
}

// TestLCCLocalityCompare is the tentpole acceptance run: an LCC instance
// over a skewed rank placement must compute bit-identical kernel results
// with and without the locality tiers, while the cost-aware run spends
// strictly less virtual time communicating — in both execution engines.
func TestLCCLocalityCompare(t *testing.T) {
	prev := ExecMode()
	defer SetExecMode(prev)
	for _, mode := range []mpi.ExecMode{mpi.FidelityMeasured, mpi.Throughput} {
		SetExecMode(mode)
		blind, aware, _, err := LCCLocalityCompare(10, 8, 8, 4, 96, 1<<12, 1<<18)
		if err != nil {
			t.Fatalf("mode=%v: %v", mode, err)
		}
		if blind.SumLCC != aware.SumLCC || blind.Wedges != aware.Wedges {
			t.Errorf("mode=%v: kernel results differ: blind (lcc=%v wedges=%d) vs aware (lcc=%v wedges=%d)",
				mode, blind.SumLCC, blind.Wedges, aware.SumLCC, aware.Wedges)
		}
		if aware.CommVirtualNs >= blind.CommVirtualNs {
			t.Errorf("mode=%v: comm time not reduced: aware %d vns >= blind %d vns",
				mode, aware.CommVirtualNs, blind.CommVirtualNs)
		}
		if aware.L2Hits == 0 {
			t.Errorf("mode=%v: node-shared tier never hit", mode)
		}
		t.Logf("mode=%v: comm %d -> %d vns (%.1f%%), L2 hits %d, forwards %d, cheap skips %d",
			mode, blind.CommVirtualNs, aware.CommVirtualNs,
			100*float64(aware.CommVirtualNs)/float64(blind.CommVirtualNs),
			aware.L2Hits, aware.SiblingForwards, aware.CheapSkips)
	}
}
