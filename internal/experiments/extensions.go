package experiments

// Extension experiments beyond the paper's figures: a third cached
// workload (pull-BFS) and the persistent-window deployment of the
// Barnes-Hut simulation.

import (
	"fmt"
	"sync"

	"clampi/internal/bfs"
	"clampi/internal/core"
	"clampi/internal/getter"
	"clampi/internal/graph"
	"clampi/internal/lsb"
	"clampi/internal/mpi"
	"clampi/internal/nbody"
	"clampi/internal/simtime"
)

// BFSRow is one (system) BFS measurement.
type BFSRow struct {
	System     string
	Time       simtime.Duration
	RemoteGets int64
	HitRate    float64
}

// ExtensionBFS runs the pull-BFS workload with and without caching.
func ExtensionBFS(scale, ef, p, source int) ([]BFSRow, *lsb.Table, error) {
	return extensionBFS(BuildLCCGraph(scale, ef, 31), p, source)
}

func extensionBFS(g *graph.CSR, p, source int) ([]BFSRow, *lsb.Table, error) {
	var rows []BFSRow
	tbl := lsb.NewTable(fmt.Sprintf("Extension: pull-BFS (N=%d, P=%d)", g.N, p),
		"system", "total time", "remote gets", "hit rate")
	for _, cached := range []bool{false, true} {
		var mu sync.Mutex
		var total simtime.Duration
		var remote int64
		fleet := newClampiFleet(p, core.Params{Mode: core.AlwaysCache, IndexSlots: 1 << 14, StorageBytes: 1 << 20, Seed: 9})
		err := runWorld(p, func(r *mpi.Rank) error {
			d := graph.Distribute(g, p, r.ID())
			frontier := make([]byte, d.Hi-d.Lo)
			win := r.WinCreate(frontier, nil)
			defer win.Free()
			var gt getter.Getter
			var err error
			if cached {
				gt, err = fleet.factory(win)
			} else {
				gt = getter.NewRaw(win)
			}
			if err != nil {
				return err
			}
			res, err := bfs.Run(r, d, win, frontier, gt, bfs.Config{Source: source})
			if err != nil {
				return err
			}
			mu.Lock()
			total += res.Time
			remote += res.RemoteGets
			mu.Unlock()
			r.Barrier()
			return nil
		})
		if err != nil {
			return rows, tbl, err
		}
		name := "foMPI"
		hit := 0.0
		if cached {
			name = "CLaMPI"
			hit = fleet.totals().HitRate()
		}
		rows = append(rows, BFSRow{System: name, Time: total, RemoteGets: remote, HitRate: hit})
		tbl.AddRow(name, total, remote, fmt.Sprintf("%.3f", hit))
	}
	return rows, tbl, nil
}

// PersistentRow compares window-per-step against persistent-window BH.
type PersistentRow struct {
	Variant     string
	Step        int
	ForceTime   simtime.Duration
	Adjustments int64
}

// ExtensionPersistentWindow runs the adaptive Barnes-Hut with a
// deliberately undersized cache, per-step windows vs one persistent
// window: with persistence the tuner's adjustments carry across steps
// and later steps run faster.
func ExtensionPersistentWindow(n, p, steps int) ([]PersistentRow, *lsb.Table, error) {
	cfg := nbody.SimConfig{Bodies: n, Steps: steps, Theta: 0.5, Seed: 23}
	params := core.Params{
		Mode: core.AlwaysCache, IndexSlots: 64, StorageBytes: 4 << 10,
		Adaptive: true, TuneInterval: 512, Seed: 2,
	}
	var rows []PersistentRow
	tbl := lsb.NewTable(fmt.Sprintf("Extension: persistent window (N=%d, P=%d)", n, p),
		"variant", "step", "force time", "adjustments")
	for _, persistent := range []bool{false, true} {
		fleet := newClampiFleet(p, params)
		var perStepMu sync.Mutex
		perStep := make([]simtime.Duration, steps)
		err := runWorld(p, func(r *mpi.Rank) error {
			var stats []nbody.StepStats
			var err error
			if persistent {
				stats, err = nbody.RunSimPersistent(r, cfg, fleet.factory)
			} else {
				stats, err = nbody.RunSim(r, cfg, fleet.factory)
			}
			if err != nil {
				return err
			}
			perStepMu.Lock()
			for i, s := range stats {
				perStep[i] += s.ForceTime
			}
			perStepMu.Unlock()
			return nil
		})
		if err != nil {
			return rows, tbl, err
		}
		name := "window-per-step"
		if persistent {
			name = "persistent"
		}
		adj := fleet.totals().Adjustments
		for i, ft := range perStep {
			rows = append(rows, PersistentRow{Variant: name, Step: i, ForceTime: ft, Adjustments: adj})
			tbl.AddRow(name, i, ft, adj)
		}
	}
	return rows, tbl, nil
}
