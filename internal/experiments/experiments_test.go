package experiments

import (
	"strings"
	"testing"

	"clampi/internal/simtime"
)

func TestFig1ShapesAndRuntimeAgreement(t *testing.T) {
	rows, tbl, err := Fig1Latency([]int{8, 1024, 65536})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(tbl.String(), "same-process") {
		t.Fatalf("table missing mappings:\n%s", tbl)
	}
	// Latency grows with size within each mapping.
	byMapping := map[string][]Fig1Row{}
	for _, r := range rows {
		byMapping[r.Mapping] = append(byMapping[r.Mapping], r)
	}
	for m, rs := range byMapping {
		for i := 1; i < len(rs); i++ {
			if rs[i].Latency <= rs[i-1].Latency {
				t.Errorf("%s: latency not increasing with size", m)
			}
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	sizes := []int{4096, 16384}
	rows, tbl, err := Fig7AccessCosts(sizes, 20)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		t.Log("\n" + tbl.String())
	}
	get := func(size int, typ string) Fig7Row {
		for _, r := range rows {
			if r.Size == size && r.Type == typ {
				return r
			}
		}
		t.Fatalf("missing row %d/%s", size, typ)
		return Fig7Row{}
	}
	for _, size := range sizes {
		fompi := get(size, "foMPI")
		hit := get(size, "hitting")
		// The paper reports hits up to 9.3x (4KB) and 3.7x (16KB)
		// faster than foMPI. Require >2x and the right direction.
		if hit.VsFoMPI < 2 {
			t.Errorf("%dB: hit only %.1fx faster than foMPI", size, hit.VsFoMPI)
		}
		// Misses must not be much slower than foMPI (bounded overhead:
		// the paper's premise of never slowing down communication).
		for _, typ := range []string{"direct", "conflicting", "capacity", "failing"} {
			r := get(size, typ)
			if float64(r.Median) > 1.5*float64(fompi.Median) {
				t.Errorf("%dB %s: %v vs foMPI %v — overhead not bounded", size, typ, r.Median, fompi.Median)
			}
		}
		// Lookup cost constant across access types (paper: "the lookup
		// cost is constant for all the access types").
		base := hit.Lookup
		for _, typ := range []string{"direct", "capacity", "failing"} {
			if get(size, typ).Lookup != base {
				t.Errorf("%dB %s: lookup %v != %v", size, typ, get(size, typ).Lookup, base)
			}
		}
		// Eviction cost present only where an eviction happens.
		if get(size, "direct").Evict != 0 {
			t.Errorf("direct access charged eviction")
		}
		if get(size, "capacity").Evict == 0 {
			t.Errorf("capacity access has no eviction cost")
		}
	}
	// Hit advantage shrinks with size (9.3x @4KB vs 3.7x @16KB).
	if get(4096, "hitting").VsFoMPI <= get(16384, "hitting").VsFoMPI {
		t.Errorf("hit speedup should shrink with size: %.1fx @4KB vs %.1fx @16KB",
			get(4096, "hitting").VsFoMPI, get(16384, "hitting").VsFoMPI)
	}
}

func TestFig8Shapes(t *testing.T) {
	sizes := []int{512, 4096, 65536}
	rows, tbl, err := Fig8Overlap(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		t.Log("\n" + tbl.String())
	}
	get := func(size int, typ string) float64 {
		for _, r := range rows {
			if r.Size == size && r.Type == typ {
				return r.Overlap
			}
		}
		t.Fatalf("missing %d/%s", size, typ)
		return 0
	}
	for _, size := range sizes {
		// foMPI is the upper bound for miss-type accesses.
		fompi := get(size, "foMPI")
		for _, typ := range []string{"direct", "capacity", "failing"} {
			if get(size, typ) > fompi {
				t.Errorf("%dB %s overlap %.2f above foMPI %.2f", size, typ, get(size, typ), fompi)
			}
		}
		// Failing overlaps more than direct at larger sizes (no copy;
		// the paper observes this divergence growing with size).
		if size >= 16384 && get(size, "failing") <= get(size, "direct") {
			t.Errorf("%dB: failing overlap %.2f <= direct %.2f", size, get(size, "failing"), get(size, "direct"))
		}
	}
	// foMPI overlap grows with size, reaching high values at 64KB.
	if get(65536, "foMPI") < 0.8 {
		t.Errorf("foMPI 64KB overlap %.2f, want > 0.8", get(65536, "foMPI"))
	}
	if get(512, "foMPI") >= get(65536, "foMPI") {
		t.Errorf("foMPI overlap should grow with size")
	}
}

func TestFig9Shapes(t *testing.T) {
	// Small instance of the paper's setup: N=256 distinct, Z=4K gets.
	const n, z = 256, 4096
	rows, tbl, err := Fig9Adaptive([]int{64, 128, 512, 2048}, n, z)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		t.Log("\n" + tbl.String())
	}
	get := func(slots int, strategy string) Fig9Row {
		for _, r := range rows {
			if r.IndexSlots == slots && r.Strategy == strategy {
				return r
			}
		}
		t.Fatalf("missing %d/%s", slots, strategy)
		return Fig9Row{}
	}
	// Fixed with a too-small index is much slower than fixed with an
	// ample one (conflict storm).
	smallFixed := get(64, "fixed")
	bigFixed := get(2048, "fixed")
	if float64(smallFixed.Time) < 1.3*float64(bigFixed.Time) {
		t.Errorf("fixed: small index %v not clearly slower than ample %v", smallFixed.Time, bigFixed.Time)
	}
	// Adaptive recovers from the bad start: much closer to the ample
	// configuration than fixed is.
	smallAdaptive := get(64, "adaptive")
	if smallAdaptive.Adjustments == 0 {
		t.Errorf("adaptive never adjusted from a 64-slot start")
	}
	if float64(smallAdaptive.Time) > 0.8*float64(smallFixed.Time) {
		t.Errorf("adaptive from bad start (%v) not clearly better than fixed (%v)", smallAdaptive.Time, smallFixed.Time)
	}
}

func TestFig10Shapes(t *testing.T) {
	// Storage sized well below the distinct footprint so eviction works
	// continuously.
	const n, z = 256, 8192
	points, tbl, err := Fig10Fragmentation(n, z, 384, 256<<10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		t.Log("\n" + tbl.String())
	}
	avg := map[string]float64{}
	cnt := map[string]int{}
	for _, p := range points {
		avg[p.Scheme] += p.Occupancy
		cnt[p.Scheme]++
	}
	for s := range avg {
		avg[s] /= float64(cnt[s])
	}
	if cnt["temporal"] == 0 || cnt["full"] == 0 || cnt["positional"] == 0 {
		t.Fatalf("missing schemes: %v", cnt)
	}
	// The paper's Fig. 10: Full and Positional keep occupancy high
	// (~90%); Temporal fragments and decays. Require the ordering.
	if avg["full"] <= avg["temporal"] {
		t.Errorf("full scheme occupancy %.3f not above temporal %.3f", avg["full"], avg["temporal"])
	}
	if avg["positional"] <= avg["temporal"] {
		t.Errorf("positional occupancy %.3f not above temporal %.3f", avg["positional"], avg["temporal"])
	}
	if avg["full"] < 0.75 {
		t.Errorf("full scheme occupancy %.3f, want ~0.9", avg["full"])
	}
}

func TestFig11Shapes(t *testing.T) {
	const n, z = 256, 8192
	rows, tbl, err := Fig11VictimSelection([]int{512, 1024, 4096}, n, z, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		t.Log("\n" + tbl.String())
	}
	get := func(slots int, scheme string) Fig11Row {
		for _, r := range rows {
			if r.IndexSlots == slots && r.Scheme == scheme {
				return r
			}
		}
		t.Fatalf("missing %d/%s", slots, scheme)
		return Fig11Row{}
	}
	// Visited slots per eviction grow with index size (sparsity), and
	// the non-empty fraction shrinks.
	if get(4096, "full").VisitedPerEvict <= get(512, "full").VisitedPerEvict {
		t.Errorf("visited/evict should grow with |I_w|")
	}
	if get(4096, "full").NonEmptyVisited >= get(512, "full").NonEmptyVisited {
		t.Errorf("non-empty fraction should shrink with |I_w|")
	}
	// Temporal leaves the most free space (external fragmentation) —
	// the central claim of the figure. Hit rates are comparable across
	// schemes in this reproduction (the paper shows Full slightly
	// ahead; our differences stay within a few percent), with Full at
	// least matching Positional-only.
	for _, slots := range []int{1024, 4096} {
		if get(slots, "temporal").FreeSpace < get(slots, "full").FreeSpace {
			t.Errorf("|I_w|=%d: temporal free space %.3f below full %.3f — fragmentation ordering broken",
				slots, get(slots, "temporal").FreeSpace, get(slots, "full").FreeSpace)
		}
		if get(slots, "full").HitRate < get(slots, "positional").HitRate-0.01 {
			t.Errorf("|I_w|=%d: full hit rate %.3f well below positional %.3f",
				slots, get(slots, "full").HitRate, get(slots, "positional").HitRate)
		}
		if get(slots, "full").HitRate < get(slots, "temporal").HitRate-0.05 {
			t.Errorf("|I_w|=%d: full hit rate %.3f far below temporal %.3f",
				slots, get(slots, "full").HitRate, get(slots, "temporal").HitRate)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	rec, tbl, err := Fig2NBodyReuse(400, 4)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		t.Log("\n" + tbl.String())
	}
	if rec.MaxRepetition() < 50 {
		t.Errorf("max repetition %d — Fig 2 expects heavy reuse", rec.MaxRepetition())
	}
	if rec.ReuseFactor() < 5 {
		t.Errorf("reuse factor %.1f too low", rec.ReuseFactor())
	}
}

func TestFig3Shape(t *testing.T) {
	rec, tbl, err := Fig3LCCSizes(10, 8, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		t.Log("\n" + tbl.String())
	}
	if rec.Total() == 0 {
		t.Fatalf("no gets recorded")
	}
	// Sizes span a wide range (scale-free degrees) and most requests
	// are small — the variable-size motivation of §II.
	hist := rec.SizeHistogram()
	if len(hist) < 4 {
		t.Errorf("size histogram too narrow: %d bins", len(hist))
	}
	if rec.SizeQuantile(0.5) > int(rec.MeanSize()) {
		t.Errorf("median %d above mean %.0f — distribution not right-skewed", rec.SizeQuantile(0.5), rec.MeanSize())
	}
}

func TestFig12And13Shapes(t *testing.T) {
	const n, p = 600, 4
	// Tree footprint: ~2N nodes * 64B across ranks ≈ 77KB. Sweep
	// storage from pressure (8KB) to ample (256KB). The index is sized
	// to the working set (an oversized index slows eviction scans).
	rows, tbl, err := Fig12NBodyParams(n, p, 1024, []int{8 << 10, 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		t.Log("\n" + tbl.String())
	}
	get := func(sys string, sw int) Fig12Row {
		for _, r := range rows {
			if r.System == sys && r.StorageBytes == sw {
				return r
			}
		}
		t.Fatalf("missing %s/%d", sys, sw)
		return Fig12Row{}
	}
	fompi := rows[0]
	if fompi.System != "foMPI" {
		t.Fatalf("first row not foMPI")
	}
	// Every cached system beats foMPI at ample memory.
	for _, sys := range []string{"native", "CLaMPI-fixed", "CLaMPI-adaptive"} {
		if get(sys, 256<<10).TimePerBody >= fompi.TimePerBody {
			t.Errorf("%s at 256KB (%v) not faster than foMPI (%v)", sys, get(sys, 256<<10).TimePerBody, fompi.TimePerBody)
		}
	}
	// The native cache's performance depends strongly on memory size;
	// CLaMPI beats it under pressure.
	if get("native", 8<<10).TimePerBody <= get("native", 256<<10).TimePerBody {
		t.Errorf("native should degrade at small memory")
	}
	if get("CLaMPI-fixed", 8<<10).TimePerBody >= get("native", 8<<10).TimePerBody {
		t.Errorf("CLaMPI at 8KB (%v) not faster than native (%v)",
			get("CLaMPI-fixed", 8<<10).TimePerBody, get("native", 8<<10).TimePerBody)
	}

	// Fig 13: conflict fraction falls as the index grows.
	rows13, tbl13, err := Fig13NBodyStats(n, p, 256<<10, []int{64, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		t.Log("\n" + tbl13.String())
	}
	if rows13[0].ConflictFrac <= rows13[1].ConflictFrac {
		t.Errorf("conflicts should fall with |I_w|: %.3f vs %.3f", rows13[0].ConflictFrac, rows13[1].ConflictFrac)
	}
	if rows13[1].HitFrac < 0.5 {
		t.Errorf("ample config hit fraction %.3f too low", rows13[1].HitFrac)
	}
}

func TestFig14Shape(t *testing.T) {
	rows, tbl, err := Fig14NBodyWeak(100, []int{2, 4}, 1<<12, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		t.Log("\n" + tbl.String())
	}
	get := func(sys string, p int) simtime.Duration {
		for _, r := range rows {
			if r.System == sys && r.P == p {
				return r.TimePerBody
			}
		}
		t.Fatalf("missing %s/%d", sys, p)
		return 0
	}
	for _, p := range []int{2, 4} {
		if get("CLaMPI-fixed", p) >= get("foMPI", p) {
			t.Errorf("P=%d: CLaMPI (%v) not faster than foMPI (%v)", p, get("CLaMPI-fixed", p), get("foMPI", p))
		}
	}
}

func TestFig15To18Shapes(t *testing.T) {
	g := BuildLCCGraph(10, 8, 99)
	const p, maxVerts = 4, 96

	rows, tbl, err := Fig15LCCParams(g, p, maxVerts, []int{16 << 10, 1 << 20}, []int{64, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		t.Log("\n" + tbl.String())
	}
	var fompi LCCConfigRow
	best := LCCConfigRow{TimePerVert: 1 << 60}
	for _, r := range rows {
		if r.System == "foMPI" {
			fompi = r
		} else if r.TimePerVert < best.TimePerVert {
			best = r
		}
	}
	if best.TimePerVert >= fompi.TimePerVert {
		t.Errorf("best CLaMPI config (%v) not faster than foMPI (%v)", best.TimePerVert, fompi.TimePerVert)
	}
	// The ample fixed configuration must show a healthy hit rate (the
	// paper reports >60% hitting accesses).
	for _, r := range rows {
		if r.System == "CLaMPI-fixed" && r.StorageBytes == 1<<20 && r.IndexSlots == 4096 {
			if r.HitRate < 0.5 {
				t.Errorf("ample fixed hit rate %.3f", r.HitRate)
			}
		}
	}

	rows16, tbl16, err := Fig16LCCStats(g, p, maxVerts, 16<<10, []int{64, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		t.Log("\n" + tbl16.String())
	}
	// Small index: fixed suffers conflicts; bigger index: conflicts < 1%.
	for _, r := range rows16 {
		if r.System == "fixed" && r.IndexSlots == 4096 && r.ConflictFrac > 0.01 {
			t.Errorf("conflicts %.3f with ample index", r.ConflictFrac)
		}
	}

	rows17, t17, t18, err := Fig17And18LCCWeak(9, 8, []int{2, 4}, 64, 4096, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		t.Log("\n" + t17.String() + "\n" + t18.String())
	}
	for _, r := range rows17 {
		if r.System == "foMPI" {
			continue
		}
		if r.TimePerVert <= 0 {
			t.Errorf("empty weak-scaling row: %+v", r)
		}
	}
	// CLaMPI beats foMPI at the smallest P (reuse is highest there).
	var f2, c2 simtime.Duration
	for _, r := range rows17 {
		if r.P == 2 && r.System == "foMPI" {
			f2 = r.TimePerVert
		}
		if r.P == 2 && r.System == "CLaMPI-fixed" {
			c2 = r.TimePerVert
		}
	}
	if c2 >= f2 {
		t.Errorf("P=2: CLaMPI %v not faster than foMPI %v", c2, f2)
	}
}

func TestBatchMicroBenchSpeedup(t *testing.T) {
	res, err := BatchMicroBench(32, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoalesceRatio != 16 {
		t.Errorf("CoalesceRatio = %v, want 16 (every 16-op group merges into one message)", res.CoalesceRatio)
	}
	if res.Speedup < 1.5 {
		t.Errorf("batched misses only %.2fx faster than sequential (%.0f vs %.0f virtual ns/op), want >= 1.5x",
			res.Speedup, res.BatchVirtualNsPerOp, res.SeqVirtualNsPerOp)
	}
}
