package experiments

// ChaosBench (DESIGN.md §11): run the three applications under seeded
// fault injection and assert the resilience layer keeps their results
// bit-identical to the fault-free run. Each (app, scenario) cell runs
// three times — fault-free reference, chaos, chaos replay with the same
// seed — and checks:
//
//   - the chaos result signature equals the fault-free one (retries,
//     breaker fail-over, stale serving and corruption refetch never
//     change what the application computes), and
//   - the replay injected the *identical* fault sequence (fault.Counts
//     including the order-sensitive digest match), the reproducibility
//     contract of the injector.
//
// Signatures hash the applications' numerical outputs only (per-rank, in
// rank order) — times and counters are excluded, since fault handling
// legitimately changes them.

import (
	"fmt"
	"math"
	"sync"

	"clampi/internal/bfs"
	"clampi/internal/core"
	"clampi/internal/fault"
	"clampi/internal/getter"
	"clampi/internal/graph"
	"clampi/internal/lcc"
	"clampi/internal/lsb"
	"clampi/internal/mpi"
	"clampi/internal/nbody"
	"clampi/internal/rma"
	"clampi/internal/stencil"
)

// chaosFleet is a clampiFleet whose windows are wrapped in seeded fault
// injectors before the cache attaches. A nil scenario disables wrapping
// (the fault-free reference runs through the identical code path).
type chaosFleet struct {
	params core.Params
	sc     *fault.Scenario
	seed   int64

	mu     sync.Mutex // ranks run concurrently in Throughput mode
	caches []*core.Cache
	inj    []*fault.Window
}

func newChaosFleet(p int, params core.Params, sc *fault.Scenario, seed int64) *chaosFleet {
	return &chaosFleet{params: params, sc: sc, seed: seed, caches: make([]*core.Cache, p)}
}

// wrap decorates one rank's window with the fleet's scenario; each rank
// gets a distinct injector seed so ranks fail independently.
func (f *chaosFleet) wrap(win rma.Window) rma.Window {
	if f.sc == nil {
		return win
	}
	fw := fault.Wrap(win, *f.sc, f.seed+int64(win.Endpoint().ID()))
	f.mu.Lock()
	f.inj = append(f.inj, fw)
	f.mu.Unlock()
	return fw
}

// factory is the GetterFactory of a chaos run: injector, then cache.
func (f *chaosFleet) factory(win rma.Window) (getter.Getter, error) {
	params := f.params
	if params.Observer == nil {
		params.Observer = newObserver()
	}
	c, err := core.New(f.wrap(win), params)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.caches[win.Endpoint().ID()] = c
	f.mu.Unlock()
	return getter.NewCached(c), nil
}

// totals sums the per-rank cache statistics.
func (f *chaosFleet) totals() core.Stats {
	var t core.Stats
	for _, c := range f.caches {
		if c != nil {
			t = t.Add(c.Stats())
		}
	}
	return t
}

// faults aggregates the per-rank injected-fault counts.
func (f *chaosFleet) faults() fault.Counts {
	var t fault.Counts
	f.mu.Lock()
	for _, w := range f.inj {
		t = t.Add(w.Counts())
	}
	f.mu.Unlock()
	return t
}

// chaosParams is the resilience configuration every chaos run uses:
// unlimited retries (the run must converge under any injected rate),
// circuit breaker, fill verification, and — in transparent mode, where
// epoch closures would otherwise discard everything mid-outage — stale
// serving.
func chaosParams(mode core.Mode, seed int64) core.Params {
	retry := rma.DefaultRetryPolicy()
	retry.MaxAttempts = 0 // unlimited; deadline-free, the outage scripts bound it
	brk := core.DefaultBreakerPolicy()
	return core.Params{
		Mode:         mode,
		IndexSlots:   1 << 12,
		StorageBytes: 1 << 20,
		Seed:         seed,
		Retry:        &retry,
		Breaker:      &brk,
		VerifyFills:  true,
		ServeStale:   mode == core.Transparent,
	}
}

// sigHash folds a sequence of 64-bit words into an FNV-1a signature.
type sigHash uint64

func newSig() sigHash { return 14695981039346656037 }

func (h *sigHash) mix(v uint64) {
	const prime64 = 1099511628211
	x := uint64(*h)
	x ^= v
	x *= prime64
	*h = sigHash(x)
}

// chaosOutcome is one run of one application: its result signature and,
// for chaos runs, what the injectors did.
type chaosOutcome struct {
	sig    uint64
	faults fault.Counts
	stats  core.Stats
}

// chaosApp runs one application (by name) under an optional scenario and
// returns its outcome. p is the world size, seed drives both the
// injectors (seed+rank) and the cache RNGs.
func chaosApp(app string, p int, sc *fault.Scenario, seed int64) (chaosOutcome, error) {
	switch app {
	case "lcc":
		return chaosLCC(p, sc, seed)
	case "bfs":
		return chaosBFS(p, sc, seed)
	case "nbody":
		return chaosNBody(p, sc, seed)
	case "stencil":
		return chaosStencil(p, sc, seed)
	}
	return chaosOutcome{}, fmt.Errorf("experiments: unknown chaos app %q", app)
}

// ChaosApps lists the applications ChaosBench exercises.
func ChaosApps() []string { return []string{"lcc", "bfs", "nbody", "stencil"} }

// chaosGraph is the shared small R-MAT input of the LCC and BFS cells.
func chaosGraph() *graph.CSR { return BuildLCCGraph(8, 8, 77) }

// chaosLCC runs LCC (read-only adjacency → transparent mode with stale
// serving) and signs (Vertices, Wedges, SumLCC) per rank in rank order.
func chaosLCC(p int, sc *fault.Scenario, seed int64) (chaosOutcome, error) {
	g := chaosGraph()
	fleet := newChaosFleet(p, chaosParams(core.Transparent, seed), sc, seed)
	results := make([]lcc.Result, p)
	err := runWorld(p, func(r *mpi.Rank) error {
		d := graph.Distribute(g, p, r.ID())
		win := r.WinCreate(d.LocalAdjBytes(), nil)
		defer win.Free()
		gt, err := fleet.factory(win)
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		res, err := lcc.Run(r.Clock(), d, gt, lcc.Config{})
		if err != nil {
			return err
		}
		if err := win.UnlockAll(); err != nil {
			return err
		}
		results[r.ID()] = res // own slot: no lock needed
		r.Barrier()
		return nil
	})
	if err != nil {
		return chaosOutcome{}, err
	}
	sig := newSig()
	for i := range results {
		sig.mix(uint64(results[i].Vertices))
		sig.mix(uint64(results[i].Wedges))
		sig.mix(math.Float64bits(results[i].SumLCC))
	}
	return chaosOutcome{sig: uint64(sig), faults: fleet.faults(), stats: fleet.totals()}, nil
}

// chaosBFS runs the pull BFS (mutating frontier window → always-cache
// with the kernel's own per-level invalidation) and signs every owned
// vertex's level per rank in rank order.
func chaosBFS(p int, sc *fault.Scenario, seed int64) (chaosOutcome, error) {
	g := chaosGraph()
	fleet := newChaosFleet(p, chaosParams(core.AlwaysCache, seed), sc, seed)
	type rankResult struct {
		levels  []int32
		reached int
	}
	results := make([]rankResult, p)
	err := runWorld(p, func(r *mpi.Rank) error {
		d := graph.Distribute(g, p, r.ID())
		frontier := make([]byte, d.Hi-d.Lo)
		win := r.WinCreate(frontier, nil)
		defer win.Free()
		gt, err := fleet.factory(win)
		if err != nil {
			return err
		}
		res, err := bfs.Run(r, d, win, frontier, gt, bfs.Config{Source: 1})
		if err != nil {
			return err
		}
		results[r.ID()] = rankResult{levels: res.Levels, reached: res.Reached}
		r.Barrier()
		return nil
	})
	if err != nil {
		return chaosOutcome{}, err
	}
	sig := newSig()
	for i := range results {
		sig.mix(uint64(results[i].reached))
		for _, lv := range results[i].levels {
			sig.mix(uint64(uint32(lv)))
		}
	}
	return chaosOutcome{sig: uint64(sig), faults: fleet.faults(), stats: fleet.totals()}, nil
}

// chaosNBody runs the persistent-window Barnes-Hut simulation (read-only
// tree per step, per-step invalidation) and signs every rank's per-step
// body digests in rank order.
func chaosNBody(p int, sc *fault.Scenario, seed int64) (chaosOutcome, error) {
	cfg := nbody.SimConfig{Bodies: 64, Steps: 3, Seed: 11}
	fleet := newChaosFleet(p, chaosParams(core.AlwaysCache, seed), sc, seed)
	results := make([][]nbody.StepStats, p)
	err := runWorld(p, func(r *mpi.Rank) error {
		stats, err := nbody.RunSimPersistent(r, cfg, fleet.factory)
		if err != nil {
			return err
		}
		results[r.ID()] = stats
		r.Barrier()
		return nil
	})
	if err != nil {
		return chaosOutcome{}, err
	}
	sig := newSig()
	for i := range results {
		for _, st := range results[i] {
			sig.mix(st.BodiesDigest)
		}
	}
	return chaosOutcome{sig: uint64(sig), faults: fleet.faults(), stats: fleet.totals()}, nil
}

// chaosStencil runs the notification-driven halo exchange (DESIGN.md
// §16) — the one chaos cell whose coherence depends on PutNotify
// descriptors, so the "notify" scenario's dropped, duplicated and
// reordered deliveries hit the targeted-invalidation fallback paths
// directly. It signs the final grid checksum: conservative degradation
// (gap → blanket invalidation, anomaly → invalidate-not-patch) must
// keep the grid bit-identical to the fault-free run.
func chaosStencil(p int, sc *fault.Scenario, seed int64) (chaosOutcome, error) {
	params := chaosParams(core.Transparent, seed)
	cfg := stencil.Config{
		Ranks: p, Rows: 6, Cols: 48, Iters: 16,
		Notify:     true,
		Resilience: &params,
	}
	var mu sync.Mutex
	var inj []*fault.Window
	if sc != nil {
		cfg.Wrap = func(win rma.Window) rma.Window {
			fw := fault.Wrap(win, *sc, seed+int64(win.Endpoint().ID()))
			mu.Lock()
			inj = append(inj, fw)
			mu.Unlock()
			return fw
		}
	}
	res, err := stencil.Run(cfg, execMode)
	if err != nil {
		return chaosOutcome{}, err
	}
	var fc fault.Counts
	mu.Lock()
	for _, w := range inj {
		fc = fc.Add(w.Counts())
	}
	mu.Unlock()
	sig := newSig()
	sig.mix(res.Checksum)
	return chaosOutcome{sig: uint64(sig), faults: fc, stats: res.Stats}, nil
}

// ChaosRow is one (application, scenario) cell of ChaosBench.
type ChaosRow struct {
	App      string
	Scenario string
	Faults   fault.Counts
	Stats    core.Stats // aggregate cache stats of the chaos run
	Match    bool       // chaos result bit-identical to fault-free
	Replay   bool       // same-seed rerun injected the identical sequence
}

// OK reports whether the cell passed both assertions.
func (r ChaosRow) OK() bool { return r.Match && r.Replay }

// ChaosBench runs every requested application under every scenario and
// returns one row per cell plus a rendered table. Apps and scenarios
// left nil select all. An assertion failure is reported in the row (and
// table), not as an error — the driver decides how loudly to fail.
func ChaosBench(p int, seed int64, apps []string, scenarios []fault.Scenario) ([]ChaosRow, *lsb.Table, error) {
	if apps == nil {
		apps = ChaosApps()
	}
	if scenarios == nil {
		scenarios = fault.Canned()
	}
	tbl := lsb.NewTable(fmt.Sprintf("Chaos: seeded fault injection (P=%d, seed=%d, mode=%s)", p, seed, execMode),
		"app", "scenario", "faults", "retries", "timeouts", "corrupt", "breaker", "stale", "match", "replay")
	var rows []ChaosRow
	for _, app := range apps {
		ref, err := chaosApp(app, p, nil, seed)
		if err != nil {
			return rows, tbl, fmt.Errorf("chaos %s fault-free: %w", app, err)
		}
		for i := range scenarios {
			sc := &scenarios[i]
			run, err := chaosApp(app, p, sc, seed)
			if err != nil {
				return rows, tbl, fmt.Errorf("chaos %s/%s: %w", app, sc.Name, err)
			}
			rerun, err := chaosApp(app, p, sc, seed)
			if err != nil {
				return rows, tbl, fmt.Errorf("chaos %s/%s replay: %w", app, sc.Name, err)
			}
			row := ChaosRow{
				App:      app,
				Scenario: sc.Name,
				Faults:   run.faults,
				Stats:    run.stats,
				Match:    run.sig == ref.sig,
				Replay:   rerun.faults == run.faults && rerun.sig == run.sig,
			}
			rows = append(rows, row)
			tbl.AddRow(app, sc.Name, row.Faults.Total(),
				row.Stats.Retries, row.Stats.Timeouts, row.Stats.CorruptFills,
				row.Stats.BreakerOpens, row.Stats.StaleServes,
				passFail(row.Match), passFail(row.Replay))
		}
	}
	return rows, tbl, nil
}

func passFail(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
