package experiments

// Machine-readable micro-benchmark summary backing the -json flag of
// cmd/clampi-micro: one capacity-bound always-cache run whose headline
// numbers (ops, hit rate, virtual ns/op) are tracked across PRs.

import (
	"clampi/internal/workload"
)

// MicroBenchResult is the structured outcome of one MicroBench run.
type MicroBenchResult struct {
	Mode           string  `json:"mode"`
	DistinctGets   int     `json:"distinct_gets"`
	Ops            int64   `json:"ops"`
	HitRate        float64 `json:"hit_rate"`
	VirtualNsPerOp float64 `json:"virtual_ns_per_op"`
	TotalVirtualNs int64   `json:"total_virtual_ns"`
}

// MicroBench replays the §IV-A micro workload (N distinct gets sampled Z
// times, Zipf-like) through a CLaMPI always-cache window and returns the
// headline numbers.
func MicroBench(n, z int) (MicroBenchResult, error) {
	specs, seq, regionSize := workload.Micro(n, z, 31)
	p := alwaysCacheParams(n*2, 256<<10)
	var res MicroBenchResult
	err := withMicro(regionSize, &p, func(env *microEnv) error {
		t, err := env.runSequence(specs, seq)
		if err != nil {
			return err
		}
		st := env.cache.Stats()
		res = MicroBenchResult{
			Mode:           execMode.String(),
			DistinctGets:   n,
			Ops:            st.Gets,
			HitRate:        st.HitRate(),
			TotalVirtualNs: int64(t),
			VirtualNsPerOp: float64(t) / float64(st.Gets),
		}
		return nil
	})
	return res, err
}
