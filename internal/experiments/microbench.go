package experiments

// Machine-readable micro-benchmark summary backing the -json flag of
// cmd/clampi-micro: one capacity-bound always-cache run whose headline
// numbers (ops, hit rate, virtual ns/op — and, since the vectorized-gets
// PR, host wall ns/op, allocations/op and the batch coalescing ratio)
// are tracked across PRs.

import (
	"runtime"
	"time"

	"clampi/internal/core"
	"clampi/internal/workload"
)

// MicroBenchResult is the structured outcome of one MicroBench run.
type MicroBenchResult struct {
	Mode           string  `json:"mode"`
	DistinctGets   int     `json:"distinct_gets"`
	Ops            int64   `json:"ops"`
	HitRate        float64 `json:"hit_rate"`
	VirtualNsPerOp float64 `json:"virtual_ns_per_op"`
	TotalVirtualNs int64   `json:"total_virtual_ns"`
	// Host-side cost of the same run: wall-clock nanoseconds and heap
	// allocations per operation (the allocation-free hot path keeps the
	// latter near zero at high hit rates).
	WallNsPerOp float64 `json:"wall_ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Headline numbers of the adjacent-range batch microbenchmark
	// (BatchMicroBench with default geometry): constituent misses per
	// merged message, and virtual ns/op batched vs sequential.
	BatchCoalesceRatio  float64 `json:"batch_coalesce_ratio"`
	BatchVirtualNsPerOp float64 `json:"batch_virtual_ns_per_op"`
	SeqVirtualNsPerOp   float64 `json:"seq_virtual_ns_per_op"`
	// Per-distance-class breakdown of a fixed locality-aware workload
	// (MicroDistance), keyed by class name — shows the admission bypass
	// keeping near classes miss-priced and far classes cache-priced.
	ByDistance map[string]DistClassBench `json:"by_distance"`
}

// MicroBench replays the §IV-A micro workload (N distinct gets sampled Z
// times, Zipf-like) through a CLaMPI always-cache window and returns the
// headline numbers, including the host-side wall time and allocation
// rate of the run.
func MicroBench(n, z int) (MicroBenchResult, error) {
	specs, seq, regionSize := workload.Micro(n, z, 31)
	p := alwaysCacheParams(n*2, 256<<10)
	var res MicroBenchResult
	err := withMicro(regionSize, &p, func(env *microEnv) error {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		w0 := time.Now() //clampi:walltime host ns/op is a benchmark output, not simulated time
		t, err := env.runSequence(specs, seq)
		wall := time.Since(w0) //clampi:walltime host ns/op is a benchmark output, not simulated time
		runtime.ReadMemStats(&m1)
		if err != nil {
			return err
		}
		st := env.cache.Stats()
		res = MicroBenchResult{
			Mode:           execMode.String(),
			DistinctGets:   n,
			Ops:            st.Gets,
			HitRate:        st.HitRate(),
			TotalVirtualNs: int64(t),
			VirtualNsPerOp: float64(t) / float64(st.Gets),
			WallNsPerOp:    float64(wall.Nanoseconds()) / float64(st.Gets),
			AllocsPerOp:    float64(m1.Mallocs-m0.Mallocs) / float64(st.Gets),
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	batch, err := BatchMicroBench(64, 16, 64)
	if err != nil {
		return res, err
	}
	res.BatchCoalesceRatio = batch.CoalesceRatio
	res.BatchVirtualNsPerOp = batch.BatchVirtualNsPerOp
	res.SeqVirtualNsPerOp = batch.SeqVirtualNsPerOp
	res.ByDistance, err = MicroDistance()
	if err != nil {
		return res, err
	}
	return res, nil
}

// BatchBenchResult summarizes the adjacent-range batch microbenchmark:
// the same miss workload issued as width-op batches versus sequential
// gets, one epoch per group either way.
type BatchBenchResult struct {
	Batches             int     `json:"batches"`
	OpsPerBatch         int     `json:"ops_per_batch"`
	OpBytes             int     `json:"op_bytes"`
	CoalesceRatio       float64 `json:"batch_coalesce_ratio"`
	BatchVirtualNsPerOp float64 `json:"batch_virtual_ns_per_op"`
	SeqVirtualNsPerOp   float64 `json:"seq_virtual_ns_per_op"`
	Speedup             float64 `json:"speedup"`
}

// BatchMicroBench measures miss coalescing: `batches` groups of `width`
// adjacent opBytes-sized ranges, every range a compulsory miss, issued
// (a) as one GetBatch per group and (b) as width sequential Gets — one
// epoch (FlushAll) per group in both variants. The batched variant merges
// each group into one remote message, paying one LogGP issue overhead o
// where the sequential variant pays width of them.
func BatchMicroBench(batches, width, opBytes int) (BatchBenchResult, error) {
	regionSize := batches * width * opBytes
	p := alwaysCacheParams(4*batches*width, 4*regionSize)
	res := BatchBenchResult{Batches: batches, OpsPerBatch: width, OpBytes: opBytes}

	var batchT, seqT int64
	var ratio float64
	err := withMicro(regionSize, &p, func(env *microEnv) error {
		dst := make([]byte, width*opBytes)
		ops := make([]core.GetOp, width)
		t0 := env.clock.Now()
		for b := 0; b < batches; b++ {
			for i := 0; i < width; i++ {
				lo := i * opBytes
				ops[i] = core.GetOp{
					Dst:    dst[lo : lo+opBytes],
					Target: 1,
					Disp:   (b*width + i) * opBytes,
				}
			}
			if err := env.cache.GetBatch(ops); err != nil {
				return err
			}
			if err := env.win.FlushAll(); err != nil {
				return err
			}
		}
		batchT = int64(env.clock.Now() - t0)
		ratio = env.cache.Stats().BatchCoalesceRatio()
		return nil
	})
	if err != nil {
		return res, err
	}

	err = withMicro(regionSize, &p, func(env *microEnv) error {
		dst := make([]byte, width*opBytes)
		t0 := env.clock.Now()
		for b := 0; b < batches; b++ {
			for i := 0; i < width; i++ {
				lo := i * opBytes
				if err := env.cache.Get(dst[lo:lo+opBytes], byteType, opBytes, 1, (b*width+i)*opBytes); err != nil {
					return err
				}
			}
			if err := env.win.FlushAll(); err != nil {
				return err
			}
		}
		seqT = int64(env.clock.Now() - t0)
		return nil
	})
	if err != nil {
		return res, err
	}

	ops := float64(batches * width)
	res.CoalesceRatio = ratio
	res.BatchVirtualNsPerOp = float64(batchT) / ops
	res.SeqVirtualNsPerOp = float64(seqT) / ops
	if batchT > 0 {
		res.Speedup = float64(seqT) / float64(batchT)
	}
	return res, nil
}
