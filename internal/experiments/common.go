package experiments

import (
	"clampi/internal/core"
	"clampi/internal/datatype"
	"clampi/internal/mpi"
	"clampi/internal/rma"
	"clampi/internal/simtime"
	"clampi/internal/workload"
)

// byteType is the contiguous byte datatype all drivers transfer with.
var byteType = datatype.Byte

// execMode is the execution mode every driver launches its worlds with.
// FidelityMeasured (the default) reproduces the paper's calibration-grade
// serialized timing; Throughput runs ranks concurrently. Set it once from
// the entry point (cmd flags) before running drivers; drivers themselves
// only read it through runWorld.
var execMode = mpi.FidelityMeasured

// SetExecMode selects the execution mode for subsequent experiment runs.
func SetExecMode(m mpi.ExecMode) { execMode = m }

// ExecMode reports the currently selected execution mode.
func ExecMode() mpi.ExecMode { return execMode }

// runWorld launches an SPMD program with the package's execution mode.
func runWorld(size int, program func(*mpi.Rank) error) error {
	return mpi.Run(size, mpi.Config{Mode: execMode}, program)
}

// runWorldCfg is runWorld with an explicit machine shape (rank placement,
// network model) — the execution mode still comes from the package
// setting, so -mode flags keep governing every experiment uniformly.
func runWorldCfg(size int, cfg mpi.Config, program func(*mpi.Rank) error) error {
	cfg.Mode = execMode
	return mpi.Run(size, cfg, program)
}

// microEnv is the two-process environment of §IV-A: an initiator (rank 0)
// and a target (rank 1) exposing a data region.
type microEnv struct {
	rank  *mpi.Rank
	win   rma.Window
	cache *core.Cache // nil for foMPI runs
	clock *simtime.Clock
}

// withMicro runs fn on the initiator of a 2-rank world whose target
// exposes regionSize bytes. params == nil selects a plain (uncached)
// window.
func withMicro(regionSize int, params *core.Params, fn func(env *microEnv) error) error {
	return runWorld(2, func(r *mpi.Rank) error {
		region := make([]byte, regionSize)
		if r.ID() == 1 {
			for i := range region {
				region[i] = byte(i * 31)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		// Collect rank 0's error without returning early: an early
		// return would skip the collectives below and deadlock the
		// other rank (the usual MPI error-path discipline).
		var fnErr error
		if r.ID() == 0 {
			env := &microEnv{rank: r, win: win, clock: r.Clock()}
			if params != nil {
				p := *params
				if p.Observer == nil {
					p.Observer = newObserver()
				}
				env.cache, fnErr = core.New(win, p)
			}
			if fnErr == nil {
				fnErr = win.LockAll()
			}
			if fnErr == nil {
				fnErr = fn(env)
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		}
		r.Barrier()
		return fnErr
	})
}

// get issues one get (cached when the env has a cache) followed by a
// flush, returning the operation's latency (issue → data in destination,
// the paper's definition).
func (e *microEnv) get(dst []byte, disp int) (simtime.Duration, error) {
	t0 := e.clock.Now()
	var err error
	if e.cache != nil {
		err = e.cache.Get(dst, byteType, len(dst), 1, disp)
	} else {
		err = e.win.Get(dst, byteType, len(dst), 1, disp)
	}
	if err != nil {
		return 0, err
	}
	if err := e.win.FlushAll(); err != nil {
		return 0, err
	}
	return e.clock.Now() - t0, nil
}

// runSequence replays a §IV-A workload (specs sampled by seq) through the
// environment and returns the total completion time.
func (e *microEnv) runSequence(specs []workload.GetSpec, seq []int) (simtime.Duration, error) {
	buf := make([]byte, 1<<workload.MaxSizeExp)
	t0 := e.clock.Now()
	for _, i := range seq {
		s := specs[i]
		if _, err := e.get(buf[:s.Size], s.Disp); err != nil {
			return 0, err
		}
	}
	return e.clock.Now() - t0, nil
}

// alwaysCacheParams returns a baseline parameter set for micro runs.
func alwaysCacheParams(indexSlots, storageBytes int) core.Params {
	return core.Params{
		Mode:         core.AlwaysCache,
		IndexSlots:   indexSlots,
		StorageBytes: storageBytes,
		Seed:         42,
	}
}
