package experiments

// Dual-mode integration coverage: the full LCC and Barnes-Hut workloads
// must compute identical per-rank results in the serialized
// FidelityMeasured engine and the concurrent Throughput engine. With
// modelled (deterministic) costs the virtual clocks are mode-independent
// too, so the comparison is exact — including times, cache hit counts
// and remote-get counts.

import (
	"sync"
	"testing"

	"clampi/internal/core"
	"clampi/internal/getter"
	"clampi/internal/graph"
	"clampi/internal/lcc"
	"clampi/internal/mpi"
	"clampi/internal/nbody"
	"clampi/internal/rma"
)

const modesRanks = 8

// lccPerRank runs the distributed LCC kernel and returns each rank's
// Result (indexed by rank id — a per-rank slot, so no locking needed).
func lccPerRank(t *testing.T, g *graph.CSR, mode mpi.ExecMode, cached bool) []lcc.Result {
	t.Helper()
	results := make([]lcc.Result, modesRanks)
	err := mpi.Run(modesRanks, mpi.Config{Mode: mode}, func(r *mpi.Rank) error {
		d := graph.Distribute(g, modesRanks, r.ID())
		win := r.WinCreate(d.LocalAdjBytes(), nil)
		defer win.Free()
		var gt getter.Getter
		if cached {
			c, err := core.New(win, core.Params{
				Mode: core.AlwaysCache, IndexSlots: 1 << 12, StorageBytes: 1 << 18, Seed: 3,
			})
			if err != nil {
				return err
			}
			gt = getter.NewCached(c)
		} else {
			gt = getter.NewRaw(win)
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		res, err := lcc.Run(r.Clock(), d, gt, lcc.Config{MaxVertices: 64})
		if err != nil {
			return err
		}
		if err := win.UnlockAll(); err != nil {
			return err
		}
		results[r.ID()] = res
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatalf("lcc mode=%v cached=%v: %v", mode, cached, err)
	}
	return results
}

func TestLCCModesIdentical(t *testing.T) {
	g := BuildLCCGraph(10, 8, 77)
	for _, cached := range []bool{false, true} {
		serial := lccPerRank(t, g, mpi.FidelityMeasured, cached)
		conc := lccPerRank(t, g, mpi.Throughput, cached)
		for i := range serial {
			if serial[i] != conc[i] {
				t.Errorf("cached=%v rank %d: fidelity %+v != throughput %+v",
					cached, i, serial[i], conc[i])
			}
		}
	}
}

// nbodyPerRank runs the Barnes-Hut simulation and returns each rank's
// per-step statistics.
func nbodyPerRank(t *testing.T, mode mpi.ExecMode, cached bool) [][]nbody.StepStats {
	t.Helper()
	results := make([][]nbody.StepStats, modesRanks)
	cfg := nbody.SimConfig{Bodies: 640, Steps: 2, Theta: 0.5, Seed: 7}
	mk := func(win rma.Window) (getter.Getter, error) {
		if !cached {
			return getter.NewRaw(win), nil
		}
		c, err := core.New(win, core.Params{
			Mode: core.AlwaysCache, IndexSlots: 1 << 12, StorageBytes: 1 << 18, Seed: 3,
		})
		if err != nil {
			return nil, err
		}
		return getter.NewCached(c), nil
	}
	err := mpi.Run(modesRanks, mpi.Config{Mode: mode}, func(r *mpi.Rank) error {
		stats, err := nbody.RunSim(r, cfg, mk)
		if err != nil {
			return err
		}
		results[r.ID()] = stats
		return nil
	})
	if err != nil {
		t.Fatalf("nbody mode=%v cached=%v: %v", mode, cached, err)
	}
	return results
}

func TestNBodyModesIdentical(t *testing.T) {
	for _, cached := range []bool{false, true} {
		serial := nbodyPerRank(t, mpi.FidelityMeasured, cached)
		conc := nbodyPerRank(t, mpi.Throughput, cached)
		for i := range serial {
			if len(serial[i]) != len(conc[i]) {
				t.Fatalf("cached=%v rank %d: step counts %d != %d",
					cached, i, len(serial[i]), len(conc[i]))
			}
			for s := range serial[i] {
				if serial[i][s] != conc[i][s] {
					t.Errorf("cached=%v rank %d step %d: fidelity %+v != throughput %+v",
						cached, i, s, serial[i][s], conc[i][s])
				}
			}
		}
	}
}

// TestDriversRunInThroughputMode exercises the package-level mode switch:
// the aggregate figure drivers must produce the same totals in both modes
// (every aggregated field is an integer or a virtual duration, so
// summation order cannot change the outcome).
func TestDriversRunInThroughputMode(t *testing.T) {
	var mu sync.Mutex // guards execMode save/restore against parallel tests
	mu.Lock()
	defer mu.Unlock()
	prev := ExecMode()
	defer SetExecMode(prev)

	g := BuildLCCGraph(9, 8, 11)
	SetExecMode(mpi.FidelityMeasured)
	serial, err := lccRun(g, 4, 32, func(win rma.Window) (getter.Getter, error) {
		return getter.NewRaw(win), nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	SetExecMode(mpi.Throughput)
	conc, err := lccRun(g, 4, 32, func(win rma.Window) (getter.Getter, error) {
		return getter.NewRaw(win), nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Vertices != conc.Vertices || serial.Wedges != conc.Wedges ||
		serial.Gets != conc.Gets || serial.RemoteGets != conc.RemoteGets ||
		serial.RemoteBytes != conc.RemoteBytes || serial.Time != conc.Time ||
		serial.CommTime != conc.CommTime {
		t.Errorf("driver totals differ:\nfidelity   %+v\nthroughput %+v", serial, conc)
	}
}
