package experiments

import (
	"fmt"
	"sync"

	"clampi/internal/blockcache"
	"clampi/internal/core"
	"clampi/internal/getter"
	"clampi/internal/lsb"
	"clampi/internal/mpi"
	"clampi/internal/nbody"
	"clampi/internal/rma"
	"clampi/internal/simtime"
	"clampi/internal/trace"
)

// clampiFleet builds one CLaMPI cache per rank and keeps the handles so
// aggregate statistics can be read after a run.
type clampiFleet struct {
	params core.Params
	caches []*core.Cache // indexed by rank; each rank writes its own slot
}

func newClampiFleet(p int, params core.Params) *clampiFleet {
	return &clampiFleet{params: params, caches: make([]*core.Cache, p)}
}

func (f *clampiFleet) factory(win rma.Window) (getter.Getter, error) {
	params := f.params
	if params.Observer == nil {
		params.Observer = newObserver()
	}
	c, err := core.New(win, params)
	if err != nil {
		return nil, err
	}
	f.caches[win.Endpoint().ID()] = c
	return getter.NewCached(c), nil
}

// totals sums the per-rank cache statistics.
func (f *clampiFleet) totals() core.Stats {
	var t core.Stats
	for _, c := range f.caches {
		if c != nil {
			t = t.Add(c.Stats())
		}
	}
	return t
}

// nbodyRun executes one Barnes-Hut configuration and returns the summed
// force time, bodies processed, and (for CLaMPI systems) cache stats.
func nbodyRun(n, p int, cfg nbody.SimConfig, mk nbody.GetterFactory) (simtime.Duration, int, error) {
	var mu sync.Mutex
	var force simtime.Duration
	var bodies int
	err := runWorld(p, func(r *mpi.Rank) error {
		stats, err := nbody.RunSim(r, cfg, mk)
		if err != nil {
			return err
		}
		// Ranks may run concurrently in Throughput mode; serialize the
		// shared accumulation.
		mu.Lock()
		defer mu.Unlock()
		for _, s := range stats {
			force += s.ForceTime
			bodies += s.Bodies
		}
		return nil
	})
	return force, bodies, err
}

// Fig2NBodyReuse reproduces Fig. 2: the get-repetition histogram of one
// Barnes-Hut force phase. Paper parameters: P = 4 processes, N = 4000
// bodies.
func Fig2NBodyReuse(n, p int) (*trace.Recorder, *lsb.Table, error) {
	recs := make([]*trace.Recorder, p)
	for i := range recs {
		recs[i] = trace.NewRecorder()
	}
	err := runWorld(p, func(r *mpi.Rank) error {
		cfg := nbody.SimConfig{Bodies: n, Steps: 1, Theta: 0.5, Seed: 2017, Recorder: recs[r.ID()]}
		_, err := nbody.RunSim(r, cfg, func(win rma.Window) (getter.Getter, error) {
			return getter.NewRaw(win), nil
		})
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	merged := trace.NewRecorder()
	for _, rec := range recs {
		merged.Merge(rec)
	}
	tbl := lsb.NewTable(fmt.Sprintf("Fig 2: N-body get repetitions (N=%d, P=%d)", n, p),
		"repetitions", "distinct gets")
	for _, b := range merged.RepetitionHistogram() {
		tbl.AddRow(fmt.Sprintf("%d-%d", b.LoReps, b.HiReps), b.Gets)
	}
	tbl.AddRow("max", merged.MaxRepetition())
	tbl.AddRow("reuse factor", fmt.Sprintf("%.1f", merged.ReuseFactor()))
	return merged, tbl, nil
}

// Fig12Row is one (system, |S_w|) force-time measurement.
type Fig12Row struct {
	System       string
	StorageBytes int
	TimePerBody  simtime.Duration
	Adjustments  int64
}

// Fig12NBodyParams reproduces Fig. 12: Barnes-Hut force computation time
// per body as a function of the cache memory size, for CLaMPI fixed,
// CLaMPI adaptive, the native block cache, and foMPI. Paper parameters:
// N = 20K bodies, P = 16; |S_w| swept 1–4 MB.
func Fig12NBodyParams(n, p, indexSlots int, storageSizes []int) ([]Fig12Row, *lsb.Table, error) {
	cfg := nbody.SimConfig{Bodies: n, Steps: 1, Theta: 0.5, Seed: 7}
	var rows []Fig12Row
	tbl := lsb.NewTable(fmt.Sprintf("Fig 12: BH force time per body (N=%d, P=%d)", n, p),
		"|S_w|(B)", "system", "time/body", "adjustments")

	// foMPI reference (independent of |S_w|).
	force, bodies, err := nbodyRun(n, p, cfg, func(win rma.Window) (getter.Getter, error) {
		return getter.NewRaw(win), nil
	})
	if err != nil {
		return rows, tbl, err
	}
	fompi := force / simtime.Duration(bodies)
	rows = append(rows, Fig12Row{System: "foMPI", TimePerBody: fompi})
	tbl.AddRow("-", "foMPI", fompi, 0)

	for _, sw := range storageSizes {
		// Native block cache with the same memory budget.
		force, bodies, err := nbodyRun(n, p, cfg, func(win rma.Window) (getter.Getter, error) {
			return blockcache.New(win, sw, 256)
		})
		if err != nil {
			return rows, tbl, err
		}
		rows = append(rows, Fig12Row{System: "native", StorageBytes: sw, TimePerBody: force / simtime.Duration(bodies)})
		tbl.AddRow(sw, "native", force/simtime.Duration(bodies), 0)

		for _, adaptive := range []bool{false, true} {
			params := core.Params{
				Mode: core.AlwaysCache, IndexSlots: indexSlots, StorageBytes: sw,
				Adaptive: adaptive, TuneInterval: 512, Seed: 3,
			}
			fleet := newClampiFleet(p, params)
			force, bodies, err := nbodyRun(n, p, cfg, fleet.factory)
			if err != nil {
				return rows, tbl, err
			}
			name := "CLaMPI-fixed"
			if adaptive {
				name = "CLaMPI-adaptive"
			}
			row := Fig12Row{
				System:       name,
				StorageBytes: sw,
				TimePerBody:  force / simtime.Duration(bodies),
				Adjustments:  fleet.totals().Adjustments,
			}
			rows = append(rows, row)
			tbl.AddRow(sw, name, row.TimePerBody, row.Adjustments)
		}
	}
	return rows, tbl, nil
}

// Fig13Row is the access-type breakdown for one index size.
type Fig13Row struct {
	IndexSlots   int
	HitFrac      float64
	DirectFrac   float64
	ConflictFrac float64
	CapFailFrac  float64
}

// Fig13NBodyStats reproduces Fig. 13: the access-type statistics of the
// Barnes-Hut force phase per hash table size, with |S_w| fixed. Paper
// parameters: |S_w| = 1 MB, N = 20K, P = 16.
func Fig13NBodyStats(n, p, storageBytes int, indexSizes []int) ([]Fig13Row, *lsb.Table, error) {
	cfg := nbody.SimConfig{Bodies: n, Steps: 1, Theta: 0.5, Seed: 7}
	var rows []Fig13Row
	tbl := lsb.NewTable(fmt.Sprintf("Fig 13: BH access stats (|S_w|=%dB, N=%d, P=%d)", storageBytes, n, p),
		"|I_w|", "hit", "direct", "conflicting", "capacity+failed")
	for _, slots := range indexSizes {
		fleet := newClampiFleet(p, core.Params{
			Mode: core.AlwaysCache, IndexSlots: slots, StorageBytes: storageBytes, Seed: 3,
		})
		if _, _, err := nbodyRun(n, p, cfg, fleet.factory); err != nil {
			return rows, tbl, err
		}
		s := fleet.totals()
		row := Fig13Row{
			IndexSlots:   slots,
			HitFrac:      s.HitRate(),
			DirectFrac:   s.Rate(core.AccessDirect),
			ConflictFrac: s.Rate(core.AccessConflicting),
			CapFailFrac:  s.Rate(core.AccessCapacity) + s.Rate(core.AccessFailing),
		}
		rows = append(rows, row)
		tbl.AddRow(slots,
			fmt.Sprintf("%.3f", row.HitFrac),
			fmt.Sprintf("%.3f", row.DirectFrac),
			fmt.Sprintf("%.3f", row.ConflictFrac),
			fmt.Sprintf("%.3f", row.CapFailFrac))
	}
	return rows, tbl, nil
}

// Fig14Row is one (system, P) weak-scaling measurement.
type Fig14Row struct {
	System      string
	P           int
	TimePerBody simtime.Duration
}

// Fig14NBodyWeak reproduces Fig. 14: Barnes-Hut weak scaling — force time
// per body as the number of PEs grows with constant bodies per PE. Paper
// parameters: 1.5K bodies/PE, P = 16..128, |S_w| = 2 MB, |I_w| = 30K.
func Fig14NBodyWeak(bodiesPerPE int, ps []int, indexSlots, storageBytes int) ([]Fig14Row, *lsb.Table, error) {
	var rows []Fig14Row
	tbl := lsb.NewTable(fmt.Sprintf("Fig 14: BH weak scaling (%d bodies/PE)", bodiesPerPE),
		"P", "system", "time/body")
	for _, p := range ps {
		n := bodiesPerPE * p
		cfg := nbody.SimConfig{Bodies: n, Steps: 1, Theta: 0.5, Seed: 7}

		systems := []struct {
			name string
			mk   nbody.GetterFactory
		}{
			{"foMPI", func(win rma.Window) (getter.Getter, error) { return getter.NewRaw(win), nil }},
			{"native", func(win rma.Window) (getter.Getter, error) { return blockcache.New(win, storageBytes, 256) }},
			{"CLaMPI-fixed", newClampiFleet(p, core.Params{
				Mode: core.AlwaysCache, IndexSlots: indexSlots, StorageBytes: storageBytes, Seed: 3}).factory},
			{"CLaMPI-adaptive", newClampiFleet(p, core.Params{
				Mode: core.AlwaysCache, IndexSlots: indexSlots, StorageBytes: storageBytes,
				Adaptive: true, TuneInterval: 512, Seed: 3}).factory},
		}
		for _, sys := range systems {
			force, bodies, err := nbodyRun(n, p, cfg, sys.mk)
			if err != nil {
				return rows, tbl, err
			}
			row := Fig14Row{System: sys.name, P: p, TimePerBody: force / simtime.Duration(bodies)}
			rows = append(rows, row)
			tbl.AddRow(p, sys.name, row.TimePerBody)
		}
	}
	return rows, tbl, nil
}
