package experiments

import (
	"fmt"

	"clampi/internal/core"
	"clampi/internal/getter"
	"clampi/internal/graph"
	"clampi/internal/lcc"
	"clampi/internal/lsb"
	"clampi/internal/mpi"
	"clampi/internal/rma"
	"clampi/internal/rmat"
	"clampi/internal/simtime"
	"clampi/internal/trace"
)

// BuildLCCGraph generates the R-MAT input of the LCC experiments.
func BuildLCCGraph(scale, edgeFactor int, seed int64) *graph.CSR {
	return graph.Build(1<<scale, rmat.Generate(scale, edgeFactor, rmat.Graph500, seed))
}

// lccRun executes one LCC configuration over p ranks and returns the
// aggregate result (times and counts summed over ranks).
func lccRun(g *graph.CSR, p int, maxVerts int, mk func(win rma.Window) (getter.Getter, error), recs []*trace.Recorder) (lcc.Result, error) {
	return lccRunCfg(g, p, mpi.Config{}, maxVerts, mk, recs)
}

// lccRunCfg is lccRun with an explicit machine shape — the locality
// experiments place ranks on nodes/groups instead of the default flat
// world.
func lccRunCfg(g *graph.CSR, p int, cfg mpi.Config, maxVerts int, mk func(win rma.Window) (getter.Getter, error), recs []*trace.Recorder) (lcc.Result, error) {
	// Per-rank slots, summed in rank order after the world ends: ranks
	// finish in virtual-time (or scheduler) order, and SumLCC is a float
	// — accumulating in completion order would make the aggregate's last
	// ulp depend on timing, not on the kernel's (per-rank bit-identical)
	// output.
	perRank := make([]lcc.Result, p)
	err := runWorldCfg(p, cfg, func(r *mpi.Rank) error {
		d := graph.Distribute(g, p, r.ID())
		win := r.WinCreate(d.LocalAdjBytes(), nil)
		defer win.Free()
		gt, err := mk(win)
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		cfg := lcc.Config{MaxVertices: maxVerts}
		if recs != nil {
			cfg.Recorder = recs[r.ID()]
		}
		res, err := lcc.Run(r.Clock(), d, gt, cfg)
		if err != nil {
			return err
		}
		if err := win.UnlockAll(); err != nil {
			return err
		}
		perRank[r.ID()] = res
		r.Barrier()
		return nil
	})
	var total lcc.Result
	for _, res := range perRank {
		total.Vertices += res.Vertices
		total.SumLCC += res.SumLCC
		total.Wedges += res.Wedges
		total.Gets += res.Gets
		total.RemoteGets += res.RemoteGets
		total.RemoteBytes += res.RemoteBytes
		total.Time += res.Time
		total.CommTime += res.CommTime
	}
	return total, err
}

// Fig3LCCSizes reproduces Fig. 3: the distribution of the transfer sizes
// issued by an LCC instance. Paper parameters: R-MAT 2^16 vertices, 2^20
// edges, averaged over 32 ranks.
func Fig3LCCSizes(scale, edgeFactor, p, maxVerts int) (*trace.Recorder, *lsb.Table, error) {
	g := BuildLCCGraph(scale, edgeFactor, 1234)
	recs := make([]*trace.Recorder, p)
	for i := range recs {
		recs[i] = trace.NewRecorder()
	}
	if _, err := lccRun(g, p, maxVerts, func(win rma.Window) (getter.Getter, error) {
		return getter.NewRaw(win), nil
	}, recs); err != nil {
		return nil, nil, err
	}
	merged := trace.NewRecorder()
	for _, rec := range recs {
		merged.Merge(rec)
	}
	tbl := lsb.NewTable(fmt.Sprintf("Fig 3: LCC transfer sizes (R-MAT 2^%d vertices, EF=%d, P=%d)", scale, edgeFactor, p),
		"size bin", "gets")
	for _, b := range merged.SizeHistogram() {
		tbl.AddRow(fmt.Sprintf("%d-%dB", b.LoBytes, b.HiBytes), b.Gets)
	}
	tbl.AddRow("mean", fmt.Sprintf("%.0fB", merged.MeanSize()))
	tbl.AddRow("p82", fmt.Sprintf("%dB", merged.SizeQuantile(0.82)))
	return merged, tbl, nil
}

// LCCConfigRow is one (configuration) LCC timing.
type LCCConfigRow struct {
	System       string
	IndexSlots   int
	StorageBytes int
	TimePerVert  simtime.Duration
	HitRate      float64
	Adjustments  int64
}

// Fig15LCCParams reproduces Fig. 15: LCC vertex processing time for fixed
// CLaMPI configurations (sweeping |S_w| and |I_w|), the adaptive strategy
// started from each configuration, and foMPI. Paper parameters: R-MAT
// 2^20 vertices, 2^24 edges, P = 32; |S_w| ∈ {64, 128} MB, |I_w| up to
// 256K entries.
func Fig15LCCParams(g *graph.CSR, p, maxVerts int, storageSizes, indexSizes []int) ([]LCCConfigRow, *lsb.Table, error) {
	var rows []LCCConfigRow
	tbl := lsb.NewTable(fmt.Sprintf("Fig 15: LCC vertex time (N=%d, P=%d)", g.N, p),
		"system", "|I_w|", "|S_w|(B)", "time/vertex", "hit rate", "adjustments")

	// foMPI reference.
	res, err := lccRun(g, p, maxVerts, func(win rma.Window) (getter.Getter, error) {
		return getter.NewRaw(win), nil
	}, nil)
	if err != nil {
		return rows, tbl, err
	}
	fompi := LCCConfigRow{System: "foMPI", TimePerVert: res.TimePerVertex()}
	rows = append(rows, fompi)
	tbl.AddRow("foMPI", "-", "-", fompi.TimePerVert, "-", "-")

	for _, sw := range storageSizes {
		for _, iw := range indexSizes {
			for _, adaptive := range []bool{false, true} {
				fleet := newClampiFleet(p, core.Params{
					Mode: core.AlwaysCache, IndexSlots: iw, StorageBytes: sw,
					Adaptive: adaptive, TuneInterval: 2048, Seed: 3,
				})
				res, err := lccRun(g, p, maxVerts, fleet.factory, nil)
				if err != nil {
					return rows, tbl, err
				}
				s := fleet.totals()
				name := "CLaMPI-fixed"
				if adaptive {
					name = "CLaMPI-adaptive"
				}
				row := LCCConfigRow{
					System:       name,
					IndexSlots:   iw,
					StorageBytes: sw,
					TimePerVert:  res.TimePerVertex(),
					HitRate:      s.HitRate(),
					Adjustments:  s.Adjustments,
				}
				rows = append(rows, row)
				tbl.AddRow(name, iw, sw, row.TimePerVert, fmt.Sprintf("%.3f", row.HitRate), row.Adjustments)
			}
		}
	}
	return rows, tbl, nil
}

// Fig16Row is the access-type breakdown of one LCC configuration.
type Fig16Row struct {
	System       string
	IndexSlots   int
	HitFrac      float64
	DirectFrac   float64
	ConflictFrac float64
	CapFailFrac  float64
}

// Fig16LCCStats reproduces Fig. 16: access-type statistics of the LCC run
// with a fixed |S_w|, per index size, fixed vs adaptive. Paper
// parameters: |S_w| = 64 MB, same graph as Fig. 15.
func Fig16LCCStats(g *graph.CSR, p, maxVerts, storageBytes int, indexSizes []int) ([]Fig16Row, *lsb.Table, error) {
	var rows []Fig16Row
	tbl := lsb.NewTable(fmt.Sprintf("Fig 16: LCC access stats (|S_w|=%dB)", storageBytes),
		"system", "|I_w|", "hit", "direct", "conflicting", "capacity+failed")
	for _, iw := range indexSizes {
		for _, adaptive := range []bool{false, true} {
			fleet := newClampiFleet(p, core.Params{
				Mode: core.AlwaysCache, IndexSlots: iw, StorageBytes: storageBytes,
				Adaptive: adaptive, TuneInterval: 2048, Seed: 3,
			})
			if _, err := lccRun(g, p, maxVerts, fleet.factory, nil); err != nil {
				return rows, tbl, err
			}
			s := fleet.totals()
			name := "fixed"
			if adaptive {
				name = "adaptive"
			}
			row := Fig16Row{
				System:       name,
				IndexSlots:   iw,
				HitFrac:      s.HitRate(),
				DirectFrac:   s.Rate(core.AccessDirect),
				ConflictFrac: s.Rate(core.AccessConflicting),
				CapFailFrac:  s.Rate(core.AccessCapacity) + s.Rate(core.AccessFailing),
			}
			rows = append(rows, row)
			tbl.AddRow(name, iw,
				fmt.Sprintf("%.3f", row.HitFrac),
				fmt.Sprintf("%.3f", row.DirectFrac),
				fmt.Sprintf("%.3f", row.ConflictFrac),
				fmt.Sprintf("%.3f", row.CapFailFrac))
		}
	}
	return rows, tbl, nil
}

// Fig17Row is one (system, P) weak-scaling measurement; the stats fields
// feed Fig. 18.
type Fig17Row struct {
	System      string
	P           int
	Scale       int
	TimePerVert simtime.Duration
	Adjustments int64
	HitFrac     float64
	DirectFrac  float64
	CapFailFrac float64
}

// Fig17And18LCCWeak reproduces Figs. 17 and 18: the LCC weak-scaling
// experiment (vertex processing time per system as P grows, with the
// graph scale growing alongside) and its access-type statistics. Paper
// parameters: scales 19..22 with EF = 16 over P = 16..128,
// |I_w| = 128K, |S_w| = 128 MB.
func Fig17And18LCCWeak(baseScale, edgeFactor int, ps []int, maxVerts, indexSlots, storageBytes int) ([]Fig17Row, *lsb.Table, *lsb.Table, error) {
	var rows []Fig17Row
	t17 := lsb.NewTable("Fig 17: LCC weak scaling", "P", "scale", "system", "time/vertex", "adjustments")
	t18 := lsb.NewTable("Fig 18: LCC weak scaling stats", "P", "system", "hit", "direct", "capacity+failed")

	for pi, p := range ps {
		scale := baseScale + pi
		g := BuildLCCGraph(scale, edgeFactor, 555)
		for _, sys := range []string{"foMPI", "CLaMPI-fixed", "CLaMPI-adaptive"} {
			var fleet *clampiFleet
			mk := func(win rma.Window) (getter.Getter, error) { return getter.NewRaw(win), nil }
			if sys != "foMPI" {
				fleet = newClampiFleet(p, core.Params{
					Mode: core.AlwaysCache, IndexSlots: indexSlots, StorageBytes: storageBytes,
					Adaptive: sys == "CLaMPI-adaptive", TuneInterval: 2048, Seed: 3,
				})
				mk = fleet.factory
			}
			res, err := lccRun(g, p, maxVerts, mk, nil)
			if err != nil {
				return rows, t17, t18, err
			}
			row := Fig17Row{System: sys, P: p, Scale: scale, TimePerVert: res.TimePerVertex()}
			if fleet != nil {
				s := fleet.totals()
				row.Adjustments = s.Adjustments
				row.HitFrac = s.HitRate()
				row.DirectFrac = s.Rate(core.AccessDirect)
				row.CapFailFrac = s.Rate(core.AccessCapacity) + s.Rate(core.AccessFailing)
				t18.AddRow(p, sys,
					fmt.Sprintf("%.3f", row.HitFrac),
					fmt.Sprintf("%.3f", row.DirectFrac),
					fmt.Sprintf("%.3f", row.CapFailFrac))
			}
			rows = append(rows, row)
			t17.AddRow(p, scale, sys, row.TimePerVert, row.Adjustments)
		}
	}
	return rows, t17, t18, nil
}
