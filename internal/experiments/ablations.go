package experiments

// Ablations beyond the paper's figures, probing the design choices
// DESIGN.md calls out: the eviction sample size M, the best-fit storage
// allocator, and the Cuckoo insertion-walk bound.

import (
	"fmt"

	"clampi/internal/core"
	"clampi/internal/cuckoo"
	"clampi/internal/lsb"
	"clampi/internal/simtime"
	"clampi/internal/storage"
	"clampi/internal/workload"
)

// SampleSizeRow is one eviction-sample-size measurement.
type SampleSizeRow struct {
	M         int
	Time      simtime.Duration
	HitRate   float64
	Visited   float64 // average slots visited per eviction
	Occupancy float64
}

// AblationSampleSize sweeps the eviction sample size M (paper §III-D uses
// M = 16) on a capacity-bound micro workload: larger samples pick better
// victims but cost more per eviction.
func AblationSampleSize(ms []int, n, z int) ([]SampleSizeRow, *lsb.Table, error) {
	specs, seq, regionSize := workload.Micro(n, z, 31)
	var rows []SampleSizeRow
	tbl := lsb.NewTable("Ablation: eviction sample size M",
		"M", "time", "hit rate", "visited/evict", "occupancy")
	for _, m := range ms {
		p := alwaysCacheParams(n*2, 256<<10)
		p.SampleSize = m
		var row SampleSizeRow
		err := withMicro(regionSize, &p, func(env *microEnv) error {
			t, err := env.runSequence(specs, seq)
			if err != nil {
				return err
			}
			st := env.cache.Stats()
			row = SampleSizeRow{
				M:         m,
				Time:      t,
				HitRate:   st.HitRate(),
				Visited:   st.AvgVisitedPerEviction(),
				Occupancy: env.cache.Occupancy(),
			}
			return nil
		})
		if err != nil {
			return rows, tbl, err
		}
		rows = append(rows, row)
		tbl.AddRow(m, row.Time, fmt.Sprintf("%.3f", row.HitRate),
			fmt.Sprintf("%.1f", row.Visited), fmt.Sprintf("%.3f", row.Occupancy))
	}
	return rows, tbl, nil
}

// AllocPolicyRow compares allocation policies.
type AllocPolicyRow struct {
	Policy    string
	Time      simtime.Duration
	HitRate   float64
	FailRate  float64
	Occupancy float64
}

// AblationAllocPolicy compares the paper's best-fit allocator against a
// first-fit baseline on the same capacity-bound workload: best fit keeps
// holes small and targeted, first fit splinters large regions.
func AblationAllocPolicy(n, z int) ([]AllocPolicyRow, *lsb.Table, error) {
	specs, seq, regionSize := workload.Micro(n, z, 67)
	var rows []AllocPolicyRow
	tbl := lsb.NewTable("Ablation: storage allocation policy",
		"policy", "time", "hit rate", "failing rate", "occupancy")
	for _, pol := range []storage.Policy{storage.BestFit, storage.FirstFit} {
		p := alwaysCacheParams(n*2, 256<<10)
		p.AllocPolicy = pol
		var row AllocPolicyRow
		err := withMicro(regionSize, &p, func(env *microEnv) error {
			t, err := env.runSequence(specs, seq)
			if err != nil {
				return err
			}
			st := env.cache.Stats()
			row = AllocPolicyRow{
				Policy:    pol.String(),
				Time:      t,
				HitRate:   st.HitRate(),
				FailRate:  st.Rate(core.AccessFailing),
				Occupancy: env.cache.Occupancy(),
			}
			return nil
		})
		if err != nil {
			return rows, tbl, err
		}
		rows = append(rows, row)
		tbl.AddRow(row.Policy, row.Time, fmt.Sprintf("%.3f", row.HitRate),
			fmt.Sprintf("%.3f", row.FailRate), fmt.Sprintf("%.3f", row.Occupancy))
	}
	return rows, tbl, nil
}

// CuckooWalkRow records the utilization reached before the first
// insertion failure for one walk bound.
type CuckooWalkRow struct {
	MaxIter     int
	FirstFail   float64 // load factor at first insertion failure
	AvgPathLen  float64 // mean insertion-path length until then
	MaxPathSeen int
}

// AblationCuckooWalk sweeps the insertion-walk bound of the Cuckoo index
// (p = 4 hash functions): longer walks reach higher utilization before
// the first conflicting access, at the price of a longer worst-case
// insert. Fotakis et al. report ~97% achievable space utilization.
func AblationCuckooWalk(maxIters []int, slots int, seeds int) ([]CuckooWalkRow, *lsb.Table, error) {
	var rows []CuckooWalkRow
	tbl := lsb.NewTable("Ablation: Cuckoo insertion-walk bound (p=4)",
		"max iterations", "load at first failure", "avg path", "max path")
	for _, mi := range maxIters {
		var loadSum, pathSum float64
		var pathCount, maxPath int
		for seed := 0; seed < seeds; seed++ {
			t := cuckoo.New[int](slots, int64(seed)*7+1)
			t.SetMaxIterations(mi)
			for i := 0; ; i++ {
				res := t.Insert(cuckoo.Key{Target: i & 7, Disp: i * 64}, i)
				pathSum += float64(len(res.Path))
				pathCount++
				if len(res.Path) > maxPath {
					maxPath = len(res.Path)
				}
				if !res.Placed {
					loadSum += t.LoadFactor()
					break
				}
			}
		}
		row := CuckooWalkRow{
			MaxIter:     mi,
			FirstFail:   loadSum / float64(seeds),
			AvgPathLen:  pathSum / float64(pathCount),
			MaxPathSeen: maxPath,
		}
		rows = append(rows, row)
		tbl.AddRow(mi, fmt.Sprintf("%.3f", row.FirstFail),
			fmt.Sprintf("%.2f", row.AvgPathLen), row.MaxPathSeen)
	}
	return rows, tbl, nil
}
