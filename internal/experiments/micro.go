package experiments

import (
	"fmt"

	"clampi/internal/core"
	"clampi/internal/lsb"
	"clampi/internal/simtime"
	"clampi/internal/storage"
	"clampi/internal/workload"
)

// stride rounds a transfer size up to the cache-line allocation unit so
// distinct gets never overlap.
func stride(size int) int {
	return (size + storage.CacheLine - 1) / storage.CacheLine * storage.CacheLine
}

// Fig7Row is one (access type, size) cost characterization.
type Fig7Row struct {
	Type   string
	Size   int
	Median simtime.Duration
	Lookup simtime.Duration
	Evict  simtime.Duration
	Copy   simtime.Duration
	// VsFoMPI is median(foMPI)/median(this): >1 means faster than the
	// uncached get.
	VsFoMPI float64
}

// fig7Types lists the access classes characterized by Fig. 7.
var fig7Types = []string{"foMPI", "hitting", "direct", "conflicting", "capacity", "failing"}

// Fig7AccessCosts reproduces Fig. 7: the latency of a get per access type
// and data size, with the cost breakdown of the caching phases. Paper
// parameters: sizes up to 64 KB, Z = 20K.
func Fig7AccessCosts(sizes []int, reps int) ([]Fig7Row, *lsb.Table, error) {
	if reps <= 0 {
		reps = 50
	}
	var rows []Fig7Row
	tbl := lsb.NewTable("Fig 7: caching costs per access type and size",
		"size(B)", "type", "median", "lookup", "evict", "copy", "vs foMPI")
	for _, size := range sizes {
		base := simtime.Duration(0)
		for _, typ := range fig7Types {
			row, err := fig7One(typ, size, reps)
			if err != nil {
				return rows, tbl, fmt.Errorf("fig7 %s/%dB: %w", typ, size, err)
			}
			if typ == "foMPI" {
				base = row.Median
			}
			if row.Median > 0 {
				row.VsFoMPI = float64(base) / float64(row.Median)
			}
			rows = append(rows, row)
			tbl.AddRow(size, typ, row.Median, row.Lookup, row.Evict, row.Copy, row.VsFoMPI)
		}
	}
	return rows, tbl, nil
}

// fig7One measures one access class at one size.
func fig7One(typ string, size, reps int) (Fig7Row, error) {
	st := stride(size)
	row := Fig7Row{Type: typ, Size: size}
	// Region must hold enough distinct displacements for all samples
	// (the conflicting sampler burns up to 8 displacements per sample)
	// plus the prefill.
	distinct := 64 + 8*reps + 8
	region := distinct * st

	collect := func(params *core.Params, prefill int, sample func(env *microEnv, i int) (simtime.Duration, core.Access, error), want core.AccessType) error {
		var samples []simtime.Duration
		var acc core.Access
		err := withMicro(region, params, func(env *microEnv) error {
			buf := make([]byte, size)
			for i := 0; i < prefill; i++ {
				if _, err := env.get(buf, i*st); err != nil {
					return err
				}
			}
			for i := 0; i < reps; i++ {
				d, a, err := sample(env, i)
				if err != nil {
					return err
				}
				if env.cache != nil && a.Type != want {
					return fmt.Errorf("sample %d classified %v, want %v", i, a.Type, want)
				}
				samples = append(samples, d)
				acc = a
			}
			return nil
		})
		if err != nil {
			return err
		}
		res := lsb.Summarize(samples)
		row.Median = res.Median
		row.Lookup = acc.Lookup
		row.Evict = acc.Evict
		row.Copy = acc.Copy
		return nil
	}

	fresh := func(env *microEnv, i int) (simtime.Duration, core.Access, error) {
		buf := make([]byte, size)
		d, err := env.get(buf, (64+i)*st)
		var a core.Access
		if env.cache != nil {
			a = env.cache.LastAccess()
		}
		return d, a, err
	}

	switch typ {
	case "foMPI":
		return row, collect(nil, 0, fresh, 0)
	case "hitting":
		p := alwaysCacheParams(4096, region+1<<20)
		repeat := func(env *microEnv, i int) (simtime.Duration, core.Access, error) {
			buf := make([]byte, size)
			d, err := env.get(buf, 0)
			return d, env.cache.LastAccess(), err
		}
		return row, collect(&p, 1, repeat, core.AccessHit)
	case "direct":
		p := alwaysCacheParams(4096, region+1<<20)
		return row, collect(&p, 0, fresh, core.AccessDirect)
	case "conflicting":
		// Tiny index, ample storage: once the index saturates, every
		// new entry displaces one on its insertion path. The index is
		// prefilled well past its capacity so the random-walk inserts
		// of the measured gets fail deterministically.
		p := alwaysCacheParams(16, region+1<<20)
		p.SampleSize = 4
		conflict := func(env *microEnv, i int) (simtime.Duration, core.Access, error) {
			buf := make([]byte, size)
			for attempt := 0; ; attempt++ {
				d, err := env.get(buf, (64+i*8+attempt)*st)
				if err != nil {
					return 0, core.Access{}, err
				}
				a := env.cache.LastAccess()
				if a.Type == core.AccessConflicting {
					return d, a, nil
				}
				if attempt >= 7 {
					return d, a, nil // let collect report the class
				}
			}
		}
		return row, collect(&p, 64, conflict, core.AccessConflicting)
	case "capacity":
		// Storage of exactly 8 entries: every new distinct get needs
		// one eviction, which frees exactly one entry of equal size.
		// The index is sized to the working set so the eviction scan
		// stays short (v_i grows with index sparsity — Fig. 11).
		p := alwaysCacheParams(64, 8*st)
		return row, collect(&p, 8, fresh, core.AccessCapacity)
	case "failing":
		// Storage smaller than one entry: caching always fails, and
		// the (empty-index) eviction scan covers the whole table, so
		// the table is kept small.
		p := alwaysCacheParams(16, st/2)
		return row, collect(&p, 0, fresh, core.AccessFailing)
	}
	return row, fmt.Errorf("unknown access type %q", typ)
}

// Fig8Row is one (system, size) overlap measurement.
type Fig8Row struct {
	Type    string
	Size    int
	Overlap float64 // fraction of the get latency hideable behind compute
}

// Fig8Overlap reproduces Fig. 8: the portion of communication that can be
// overlapped with computation, per access type and size. Overlap is
// 1 − busy/total where busy is the CPU-occupied share of the operation
// (issue overhead + cache management + copies) and total its latency.
func Fig8Overlap(sizes []int) ([]Fig8Row, *lsb.Table, error) {
	var rows []Fig8Row
	tbl := lsb.NewTable("Fig 8: communication/computation overlap", "size(B)", "type", "overlap")
	for _, size := range sizes {
		for _, typ := range []string{"foMPI", "direct", "capacity", "failing"} {
			ov, err := fig8One(typ, size)
			if err != nil {
				return rows, tbl, fmt.Errorf("fig8 %s/%dB: %w", typ, size, err)
			}
			rows = append(rows, Fig8Row{Type: typ, Size: size, Overlap: ov})
			tbl.AddRow(size, typ, fmt.Sprintf("%.3f", ov))
		}
	}
	return rows, tbl, nil
}

func fig8One(typ string, size int) (float64, error) {
	st := stride(size)
	region := 64 * st
	measure := func(params *core.Params, prefill int, disp int) (float64, error) {
		var overlap float64
		err := withMicro(region, params, func(env *microEnv) error {
			buf := make([]byte, size)
			for i := 0; i < prefill; i++ {
				if _, err := env.get(buf, i*st); err != nil {
					return err
				}
			}
			t0, b0 := env.clock.Now(), env.clock.Measured()
			if _, err := env.get(buf, disp); err != nil {
				return err
			}
			total := env.clock.Now() - t0
			busy := env.clock.Measured() - b0
			if total > 0 {
				overlap = 1 - float64(busy)/float64(total)
			}
			return nil
		})
		return overlap, err
	}
	switch typ {
	case "foMPI":
		return measure(nil, 0, 0)
	case "direct":
		p := alwaysCacheParams(1<<12, region+1<<20)
		return measure(&p, 0, 32*st)
	case "capacity":
		p := alwaysCacheParams(64, 8*st)
		return measure(&p, 8, 32*st)
	case "failing":
		p := alwaysCacheParams(16, st/2)
		return measure(&p, 0, 32*st)
	}
	return 0, fmt.Errorf("unknown type %q", typ)
}

// Fig9Row is one (strategy, initial |I_w|) completion time.
type Fig9Row struct {
	Strategy    string
	IndexSlots  int
	Time        simtime.Duration
	Adjustments int64
}

// Fig9Adaptive reproduces Fig. 9: micro-benchmark completion time as a
// function of the (initial) hash table size, fixed vs adaptive. Paper
// parameters: N = 1K distinct gets, Z = 20K.
func Fig9Adaptive(indexSizes []int, n, z int) ([]Fig9Row, *lsb.Table, error) {
	specs, seq, regionSize := workload.Micro(n, z, 4242)
	storageBytes := regionSize + (1 << 20) // ample: isolate index effects
	var rows []Fig9Row
	tbl := lsb.NewTable("Fig 9: completion time vs hash table size",
		"|I_w|", "strategy", "time", "adjustments")
	for _, slots := range indexSizes {
		for _, adaptive := range []bool{false, true} {
			p := alwaysCacheParams(slots, storageBytes)
			p.Adaptive = adaptive
			p.TuneInterval = int64(n)
			var total simtime.Duration
			var adj int64
			err := withMicro(regionSize, &p, func(env *microEnv) error {
				t, err := env.runSequence(specs, seq)
				if err != nil {
					return err
				}
				total = t
				adj = env.cache.Stats().Adjustments
				return nil
			})
			if err != nil {
				return rows, tbl, err
			}
			name := "fixed"
			if adaptive {
				name = "adaptive"
			}
			rows = append(rows, Fig9Row{Strategy: name, IndexSlots: slots, Time: total, Adjustments: adj})
			tbl.AddRow(slots, name, total, adj)
		}
	}
	return rows, tbl, nil
}

// Fig10Point is one sampled buffer-occupancy measurement.
type Fig10Point struct {
	Scheme    string
	SeqID     int
	Occupancy float64
}

// Fig10Fragmentation reproduces Fig. 10: the fraction of occupied cache
// memory as the get sequence progresses, per victim-selection scheme.
// Sampling starts at the first capacity/failing access (buffer
// saturation), as in the paper. Paper parameters: Z = 100K, |I_w| = 1.5K.
func Fig10Fragmentation(n, z, indexSlots, storageBytes int, samples int) ([]Fig10Point, *lsb.Table, error) {
	specs, seq, regionSize := workload.Micro(n, z, 777)
	if samples <= 0 {
		samples = 25
	}
	var points []Fig10Point
	tbl := lsb.NewTable("Fig 10: buffer occupancy vs get sequence", "scheme", "seqID", "occupancy")
	for _, scheme := range []core.EvictionScheme{core.SchemeTemporal, core.SchemePositional, core.SchemeFull} {
		p := alwaysCacheParams(indexSlots, storageBytes)
		p.Scheme = scheme
		err := withMicro(regionSize, &p, func(env *microEnv) error {
			buf := make([]byte, 1<<workload.MaxSizeExp)
			saturatedAt := -1
			every := len(seq) / samples
			if every == 0 {
				every = 1
			}
			for i, gi := range seq {
				s := specs[gi]
				if _, err := env.get(buf[:s.Size], s.Disp); err != nil {
					return err
				}
				if saturatedAt < 0 {
					st := env.cache.Stats()
					if st.Capacity+st.Failing > 0 {
						saturatedAt = i
					}
					continue
				}
				if (i-saturatedAt)%every == 0 {
					points = append(points, Fig10Point{
						Scheme:    scheme.String(),
						SeqID:     i,
						Occupancy: env.cache.Occupancy(),
					})
				}
			}
			return nil
		})
		if err != nil {
			return points, tbl, err
		}
	}
	for _, pt := range points {
		tbl.AddRow(pt.Scheme, pt.SeqID, fmt.Sprintf("%.3f", pt.Occupancy))
	}
	return points, tbl, nil
}

// Fig11Row aggregates the three panels of Fig. 11 for one (scheme, |I_w|).
type Fig11Row struct {
	Scheme          string
	IndexSlots      int
	VisitedPerEvict float64
	HitRate         float64
	FreeSpace       float64
	NonEmptyVisited float64 // fraction of visited slots holding an entry
}

// Fig11VictimSelection reproduces Fig. 11: eviction-scan length, hit
// ratio, and free space as functions of the hash table size, per victim
// selection scheme. Paper parameters: Z = 100K, M = 16.
func Fig11VictimSelection(indexSizes []int, n, z, storageBytes int) ([]Fig11Row, *lsb.Table, error) {
	specs, seq, regionSize := workload.Micro(n, z, 999)
	var rows []Fig11Row
	tbl := lsb.NewTable("Fig 11: victim selection vs hash table size",
		"|I_w|", "scheme", "visited/evict", "hit rate", "free frac", "non-empty/visited")
	for _, slots := range indexSizes {
		for _, scheme := range []core.EvictionScheme{core.SchemeTemporal, core.SchemePositional, core.SchemeFull} {
			p := alwaysCacheParams(slots, storageBytes)
			p.Scheme = scheme
			var row Fig11Row
			err := withMicro(regionSize, &p, func(env *microEnv) error {
				if _, err := env.runSequence(specs, seq); err != nil {
					return err
				}
				st := env.cache.Stats()
				row = Fig11Row{
					Scheme:          scheme.String(),
					IndexSlots:      slots,
					VisitedPerEvict: st.AvgVisitedPerEviction(),
					HitRate:         st.HitRate(),
					FreeSpace:       1 - env.cache.Occupancy(),
					NonEmptyVisited: st.AvgNonEmptyVisited(),
				}
				return nil
			})
			if err != nil {
				return rows, tbl, err
			}
			rows = append(rows, row)
			tbl.AddRow(slots, row.Scheme,
				fmt.Sprintf("%.1f", row.VisitedPerEvict),
				fmt.Sprintf("%.3f", row.HitRate),
				fmt.Sprintf("%.3f", row.FreeSpace),
				fmt.Sprintf("%.3f", row.NonEmptyVisited))
		}
	}
	return rows, tbl, nil
}
