package experiments

import (
	"testing"

	"clampi/internal/fault"
	"clampi/internal/mpi"
)

// TestChaosBenchBothModes is the tentpole assertion of DESIGN.md §11:
// under every canned fault scenario, in both execution modes, the three
// applications produce results bit-identical to their fault-free runs,
// and a same-seed rerun injects the identical fault sequence.
func TestChaosBenchBothModes(t *testing.T) {
	prev := ExecMode()
	defer SetExecMode(prev)
	for _, mode := range []mpi.ExecMode{mpi.FidelityMeasured, mpi.Throughput} {
		SetExecMode(mode)
		rows, _, err := ChaosBench(4, 42, nil, nil)
		if err != nil {
			t.Fatalf("mode %v: ChaosBench: %v", mode, err)
		}
		if len(rows) != len(ChaosApps())*len(fault.Canned()) {
			t.Fatalf("mode %v: %d rows, want %d", mode, len(rows), len(ChaosApps())*len(fault.Canned()))
		}
		injected := false
		for _, row := range rows {
			if !row.Match {
				t.Errorf("mode %v: %s under %q diverged from the fault-free run (faults: %v)",
					mode, row.App, row.Scenario, row.Faults)
			}
			if !row.Replay {
				t.Errorf("mode %v: %s under %q: same-seed replay injected a different fault sequence",
					mode, row.App, row.Scenario)
			}
			if row.Faults.Total() > 0 {
				injected = true
			}
			if row.Faults.Ops > 0 && row.Stats.Gets == 0 {
				t.Errorf("mode %v: %s under %q saw injector ops but no cache gets", mode, row.App, row.Scenario)
			}
		}
		if !injected {
			t.Errorf("mode %v: no scenario injected any fault — chaos run vacuous", mode)
		}
	}
}

// TestChaosScenarioCoverage asserts each canned scenario exercises the
// resilience machinery it is named for (fidelity mode, LCC).
func TestChaosScenarioCoverage(t *testing.T) {
	prev := ExecMode()
	defer SetExecMode(prev)
	SetExecMode(mpi.FidelityMeasured)

	for _, tc := range []struct {
		scenario string
		check    func(ChaosRow) bool
		what     string
	}{
		{"drop", func(r ChaosRow) bool { return r.Faults.Drops > 0 && r.Stats.Retries > 0 }, "drops retried"},
		{"timeout", func(r ChaosRow) bool { return r.Faults.Timeouts > 0 && r.Stats.Timeouts > 0 }, "timeouts counted"},
		{"corrupt", func(r ChaosRow) bool { return r.Faults.Corrupts > 0 && r.Stats.CorruptFills > 0 }, "corruptions detected"},
		{"outage", func(r ChaosRow) bool { return r.Faults.Outages > 0 && r.Stats.BreakerOpens > 0 }, "outage opened breaker"},
	} {
		sc, ok := fault.ByName(tc.scenario)
		if !ok {
			t.Fatalf("canned scenario %q missing", tc.scenario)
		}
		rows, _, err := ChaosBench(4, 42, []string{"lcc"}, []fault.Scenario{sc})
		if err != nil {
			t.Fatalf("%s: %v", tc.scenario, err)
		}
		row := rows[0]
		if !row.OK() {
			t.Errorf("%s: match=%v replay=%v", tc.scenario, row.Match, row.Replay)
		}
		if !tc.check(row) {
			t.Errorf("%s: expected %s; faults=%v stats: retries=%d timeouts=%d corrupt=%d breaker=%d stale=%d",
				tc.scenario, tc.what, row.Faults,
				row.Stats.Retries, row.Stats.Timeouts, row.Stats.CorruptFills,
				row.Stats.BreakerOpens, row.Stats.StaleServes)
		}
	}
}
