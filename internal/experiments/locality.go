package experiments

// Locality-tier experiments (DESIGN.md §15): the per-distance-class
// micro breakdown behind cmd/clampi-micro's by_distance JSON object, and
// the skewed-placement LCC comparison of cost-aware vs locality-blind
// caching that backs the tentpole acceptance criterion — identical
// kernel results, less virtual network time.

import (
	"fmt"

	"clampi/internal/blockcache"
	"clampi/internal/core"
	"clampi/internal/getter"
	"clampi/internal/lsb"
	"clampi/internal/mpi"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// DistClassBench is one distance class's micro numbers: a fixed get
// workload replayed against a target of that class.
type DistClassBench struct {
	Gets           int64   `json:"gets"`
	Hits           int64   `json:"hits"`
	Misses         int64   `json:"misses"`
	VirtualNsPerOp float64 `json:"virtual_ns_per_op"`
}

// MicroDistance replays a fixed workload (distinct 256 B gets, then
// re-gets) against one target of every distance class — same process,
// same socket, same node, other node, other group — through one
// locality-aware cache, and returns the per-class breakdown keyed by
// class name. The near classes show the admission bypass (re-gets stay
// misses), the far ones the cached steady state.
func MicroDistance() (map[string]DistClassBench, error) {
	// A 12-rank world shaped 4 ranks/node, 2 nodes/group puts one target
	// in every class relative to rank 0: itself (same process), rank 1
	// (same socket), rank 2 (other socket), rank 4 (other node, same
	// group), rank 8 (other group).
	const (
		worldSize = 12
		opBytes   = 256
		distinct  = 32
	)
	targets := []int{0, 1, 2, 4, 8}
	cfg := mpi.Config{RanksPerNode: 4, NodesPerGroup: 2}
	p := alwaysCacheParams(4096, 256<<10)
	p.LocalityAware = true

	out := make(map[string]DistClassBench, len(targets))
	err := runWorldCfg(worldSize, cfg, func(r *mpi.Rank) error {
		region := make([]byte, distinct*opBytes)
		for i := range region {
			region[i] = byte(i * 31)
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		var fnErr error
		if r.ID() == 0 {
			fnErr = func() error {
				pp := p
				pp.Observer = newObserver()
				cache, err := core.New(win, pp)
				if err != nil {
					return err
				}
				if err := win.LockAll(); err != nil {
					return err
				}
				defer win.UnlockAll()
				dst := make([]byte, opBytes)
				clock := r.Clock()
				phase := make([]simtime.Duration, len(targets))
				for ti, target := range targets {
					t0 := clock.Now()
					for pass := 0; pass < 2; pass++ {
						for i := 0; i < distinct; i++ {
							if err := cache.Get(dst, byteType, opBytes, target, i*opBytes); err != nil {
								return err
							}
						}
						if err := win.FlushAll(); err != nil {
							return err
						}
					}
					phase[ti] = clock.Now() - t0
				}
				ds := cache.DistanceStats()
				for ti, target := range targets {
					class := win.DistanceClass(target)
					d := ds[class]
					out[rma.DistanceClassNames[class]] = DistClassBench{
						Gets:           d.Gets,
						Hits:           d.Hits,
						Misses:         d.Misses,
						VirtualNsPerOp: float64(phase[ti]) / float64(2*distinct),
					}
				}
				return nil
			}()
		}
		r.Barrier()
		return fnErr
	})
	return out, err
}

// LCCLocalityRow is one system's outcome of the skewed-placement LCC
// comparison.
type LCCLocalityRow struct {
	System          string  `json:"system"`
	SumLCC          float64 `json:"sum_lcc"`
	Wedges          int64   `json:"wedges"`
	TotalVirtualNs  int64   `json:"total_virtual_ns"`
	CommVirtualNs   int64   `json:"comm_virtual_ns"`
	RemoteBytes     int64   `json:"remote_bytes"`
	HitRate         float64 `json:"hit_rate"`
	L2Hits          int64   `json:"l2_hits"`
	L2Fills         int64   `json:"l2_fills"`
	SiblingForwards int64   `json:"sibling_forwards"`
	CheapSkips      int64   `json:"cheap_skips"`
}

// localityFleet builds per-rank caches that share one L2 per node: rank
// r on a machine with rpn ranks per node attaches to L2 instance r/rpn.
type localityFleet struct {
	params core.Params
	rpn    int
	l2s    []*blockcache.L2
	caches []*core.Cache
}

func newLocalityFleet(p, rpn int, params core.Params, l2Bytes, l2Block int) (*localityFleet, error) {
	nodes := (p + rpn - 1) / rpn
	f := &localityFleet{params: params, rpn: rpn, l2s: make([]*blockcache.L2, nodes), caches: make([]*core.Cache, p)}
	for i := range f.l2s {
		l2, err := blockcache.NewL2(l2Bytes, l2Block)
		if err != nil {
			return nil, err
		}
		f.l2s[i] = l2
	}
	return f, nil
}

func (f *localityFleet) factory(win rma.Window) (getter.Getter, error) {
	params := f.params
	params.L2 = f.l2s[win.Endpoint().ID()/f.rpn]
	if params.Observer == nil {
		params.Observer = newObserver()
	}
	c, err := core.New(win, params)
	if err != nil {
		return nil, err
	}
	f.caches[win.Endpoint().ID()] = c
	return getter.NewCached(c), nil
}

func (f *localityFleet) totals() core.Stats {
	var t core.Stats
	for _, c := range f.caches {
		if c != nil {
			t = t.Add(c.Stats())
		}
	}
	return t
}

// LCCLocalityCompare runs the same LCC instance twice over a skewed rank
// placement (rpn ranks per node, one node per group, so inter-node
// traffic pays the most expensive distance class): once locality-blind,
// once cost-aware with a node-shared L2 per node. The kernel results
// (SumLCC, Wedges) must be bit-identical — caching tiers change where
// bytes come from, never what they are — while the cost-aware run
// spends less virtual time communicating.
func LCCLocalityCompare(scale, edgeFactor, p, rpn, maxVerts, indexSlots, storageBytes int) (blind, aware LCCLocalityRow, tbl *lsb.Table, err error) {
	g := BuildLCCGraph(scale, edgeFactor, 777)
	cfg := mpi.Config{RanksPerNode: rpn, NodesPerGroup: 1}
	base := core.Params{Mode: core.AlwaysCache, IndexSlots: indexSlots, StorageBytes: storageBytes, Seed: 3}

	blindFleet := newClampiFleet(p, base)
	res, err := lccRunCfg(g, p, cfg, maxVerts, blindFleet.factory, nil)
	if err != nil {
		return blind, aware, nil, err
	}
	bs := blindFleet.totals()
	blind = LCCLocalityRow{
		System: "locality-blind", SumLCC: res.SumLCC, Wedges: res.Wedges,
		TotalVirtualNs: int64(res.Time), CommVirtualNs: int64(res.CommTime),
		RemoteBytes: res.RemoteBytes, HitRate: bs.HitRate(),
	}

	awareParams := base
	awareParams.LocalityAware = true
	// 256 B blocks bound the overfetch to the small-transfer regime of
	// LCC adjacency reads while still sharing across sibling ranks.
	fleet, err := newLocalityFleet(p, rpn, awareParams, 8<<20, 256)
	if err != nil {
		return blind, aware, nil, err
	}
	res, err = lccRunCfg(g, p, cfg, maxVerts, fleet.factory, nil)
	if err != nil {
		return blind, aware, nil, err
	}
	as := fleet.totals()
	aware = LCCLocalityRow{
		System: "cost-aware+L2", SumLCC: res.SumLCC, Wedges: res.Wedges,
		TotalVirtualNs: int64(res.Time), CommVirtualNs: int64(res.CommTime),
		RemoteBytes: res.RemoteBytes, HitRate: as.HitRate(),
		L2Hits: as.L2Hits, L2Fills: as.L2Fills,
		SiblingForwards: as.SiblingForwards, CheapSkips: as.CheapSkips,
	}

	tbl = lsb.NewTable(fmt.Sprintf("Locality tiers: LCC under skewed placement (scale=%d, P=%d, %d ranks/node)", scale, p, rpn),
		"system", "sum LCC", "wedges", "total vns", "comm vns", "remote bytes", "hit rate", "L2 hits", "forwards")
	for _, row := range []LCCLocalityRow{blind, aware} {
		tbl.AddRow(row.System, fmt.Sprintf("%.6f", row.SumLCC), row.Wedges,
			row.TotalVirtualNs, row.CommVirtualNs, row.RemoteBytes,
			fmt.Sprintf("%.3f", row.HitRate), row.L2Hits, row.SiblingForwards)
	}
	return blind, aware, tbl, nil
}
