package fault

import (
	"errors"
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/mpi"
	"clampi/internal/notify"
	"clampi/internal/rma"
)

// withNotifySubscriber runs a 2-rank world where rank 0 issues pushes
// PutNotifys one-byte writes into rank 1's region and rank 1's window —
// wrapped with (sc, seed) — polls them through the injector. fn runs on
// rank 1 between the fence that publishes the writes and the final one.
func withNotifySubscriber(t *testing.T, sc Scenario, seed int64, pushes int, fn func(w *Window) error) {
	t.Helper()
	err := mpi.Run(2, mpi.Config{}, func(r *mpi.Rank) error {
		win, _ := r.WinAllocate(256, mpi.Info{})
		defer win.Free()
		var w *Window
		if r.ID() == 1 {
			w = Wrap(win, sc, seed)
			if err := w.NotifyEnable(64); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if r.ID() == 0 {
			src := []byte{0xEE}
			for i := 0; i < pushes; i++ {
				if err := win.PutNotify(src, datatype.Byte, 1, 1, i, uint32(i)); err != nil {
					return err
				}
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		var fnErr error
		if r.ID() == 1 {
			fnErr = fn(w)
		}
		if err := win.Fence(); fnErr == nil {
			fnErr = err
		}
		return fnErr
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNotifyDropMakesSeqGaps(t *testing.T) {
	sc := Scenario{Name: "ndrop", NotifyDropRate: 1}
	withNotifySubscriber(t, sc, 7, 4, func(w *Window) error {
		buf := make([]notify.Notification, 8)
		n, ov := w.NotifyPoll(buf)
		if n != 0 || ov {
			t.Errorf("Poll = (%d, %v), want (0, false): every descriptor dropped", n, ov)
		}
		if c := w.Counts(); c.NotifyDrops != 4 || c.Digest == 0 {
			t.Errorf("counts = %v, want 4 notify drops with a digest", c)
		}
		return nil
	})
}

func TestNotifyDupDeliversTwice(t *testing.T) {
	sc := Scenario{Name: "ndup", NotifyDupRate: 1}
	withNotifySubscriber(t, sc, 7, 3, func(w *Window) error {
		buf := make([]notify.Notification, 8)
		n, ov := w.NotifyPoll(buf)
		if n != 6 || ov {
			t.Fatalf("Poll = (%d, %v), want (6, false)", n, ov)
		}
		for i := 0; i < 6; i += 2 {
			if buf[i].Seq != buf[i+1].Seq || buf[i].Seq != uint64(i/2+1) {
				t.Errorf("pair %d: seqs (%d, %d), want identical %d", i/2, buf[i].Seq, buf[i+1].Seq, i/2+1)
			}
		}
		if c := w.Counts(); c.NotifyDups != 3 {
			t.Errorf("NotifyDups = %d, want 3", c.NotifyDups)
		}
		return nil
	})
}

func TestNotifyReorderSwapsAdjacent(t *testing.T) {
	sc := Scenario{Name: "nreorder", NotifyReorderRate: 1}
	withNotifySubscriber(t, sc, 7, 3, func(w *Window) error {
		buf := make([]notify.Notification, 8)
		n, ov := w.NotifyPoll(buf)
		if n != 3 || ov {
			t.Fatalf("Poll = (%d, %v), want (3, false)", n, ov)
		}
		// Every descriptor swaps with its predecessor once present:
		// 1 | 2,1 | 2,3,1.
		want := []uint64{2, 3, 1}
		for i, s := range want {
			if buf[i].Seq != s {
				t.Errorf("slot %d Seq = %d, want %d", i, buf[i].Seq, s)
			}
		}
		if c := w.Counts(); c.NotifyReorders != 2 {
			t.Errorf("NotifyReorders = %d, want 2", c.NotifyReorders)
		}
		return nil
	})
}

// TestNotifyDupHoldoverSurvivesShortBuffer checks duplicates beyond the
// caller's buffer are held and delivered by the next poll, visible to
// NotifyDepth in between.
func TestNotifyDupHoldoverSurvivesShortBuffer(t *testing.T) {
	sc := Scenario{Name: "ndup", NotifyDupRate: 1}
	withNotifySubscriber(t, sc, 7, 3, func(w *Window) error {
		buf := make([]notify.Notification, 4)
		n, ov := w.NotifyPoll(buf)
		if n != 4 || ov {
			t.Fatalf("first Poll = (%d, %v), want (4, false)", n, ov)
		}
		if d := w.NotifyDepth(); d != 2 {
			t.Errorf("held-over depth = %d, want 2", d)
		}
		n, ov = w.NotifyPoll(buf)
		if n != 2 || ov {
			t.Fatalf("second Poll = (%d, %v), want (2, false)", n, ov)
		}
		if buf[0].Seq != 3 || buf[1].Seq != 3 {
			t.Errorf("held-over seqs (%d, %d), want (3, 3)", buf[0].Seq, buf[1].Seq)
		}
		return nil
	})
}

// TestNotifyFaultsDeterministic reruns the mixed scenario and asserts
// identical counts and digest for the same (scenario, seed).
func TestNotifyFaultsDeterministic(t *testing.T) {
	sc := Scenario{Name: "notify", NotifyDropRate: 0.3, NotifyDupRate: 0.3, NotifyReorderRate: 0.3}
	runOnce := func(seed int64) Counts {
		var c Counts
		withNotifySubscriber(t, sc, seed, 40, func(w *Window) error {
			buf := make([]notify.Notification, 128)
			w.NotifyPoll(buf)
			c = w.Counts()
			return nil
		})
		return c
	}
	first, second := runOnce(42), runOnce(42)
	if first.Total() == 0 {
		t.Fatal("scenario injected nothing")
	}
	if first != second {
		t.Errorf("same (scenario, seed) diverged:\n  run 1: %v\n  run 2: %v", first, second)
	}
	if other := runOnce(43); other == first {
		t.Errorf("different seeds injected the identical sequence: %v", other)
	}
}

// noNotifyWin hides the inner backend's notification extension.
type noNotifyWin struct{ rma.Window }

func TestNotifyWithoutInnerExtension(t *testing.T) {
	err := mpi.Run(1, mpi.Config{}, func(r *mpi.Rank) error {
		win, _ := r.WinAllocate(64, mpi.Info{})
		defer win.Free()
		w := Wrap(noNotifyWin{win}, Scenario{Name: "none"}, 1)
		if err := w.NotifyEnable(4); !errors.Is(err, errNoNotify) {
			t.Errorf("NotifyEnable = %v, want errNoNotify", err)
		}
		if err := w.PutNotify([]byte{1}, datatype.Byte, 1, 0, 0, 0); !errors.Is(err, errNoNotify) {
			t.Errorf("PutNotify = %v, want errNoNotify", err)
		}
		if err := w.NotifyWait(); !errors.Is(err, errNoNotify) {
			t.Errorf("NotifyWait = %v, want errNoNotify", err)
		}
		if d := w.NotifyDepth(); d != 0 {
			t.Errorf("NotifyDepth = %d, want 0", d)
		}
		if n, ov := w.NotifyPoll(make([]notify.Notification, 1)); n != 0 || ov {
			t.Errorf("NotifyPoll = (%d, %v), want (0, false)", n, ov)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
