package fault

import (
	"errors"

	"clampi/internal/datatype"
	"clampi/internal/notify"
	"clampi/internal/rma"
)

// errNoNotify reports a notification call on a wrapped window whose
// inner backend does not implement rma.NotifyWindow.
var errNoNotify = errors.New("fault: inner window does not deliver notifications")

// PutNotify delegates the write untouched (the injector never perturbs
// writes); the notification faults strike on the subscriber's poll side
// instead, where drops, duplicates and reorders are observable per
// descriptor (rma.NotifyWindow).
func (w *Window) PutNotify(src []byte, dtype datatype.Datatype, count int, target, disp int, tag uint32) error {
	if w.nw == nil {
		return errNoNotify
	}
	return w.nw.PutNotify(src, dtype, count, target, disp, tag)
}

// NotifyEnable implements rma.NotifyWindow by delegation.
func (w *Window) NotifyEnable(capacity int) error {
	if w.nw == nil {
		return errNoNotify
	}
	return w.nw.NotifyEnable(capacity)
}

// NotifyDepth implements rma.NotifyWindow. Duplicates held over from a
// previous poll count: they are deliveries the consumer has not seen.
func (w *Window) NotifyDepth() int {
	if w.nw == nil {
		return 0
	}
	return len(w.npending) + w.nw.NotifyDepth()
}

// NotifyWait implements rma.NotifyWindow by delegation; held-over
// duplicates already satisfy it without blocking.
func (w *Window) NotifyWait() error {
	if w.nw == nil {
		return errNoNotify
	}
	if len(w.npending) > 0 {
		return nil
	}
	return w.nw.NotifyWait()
}

// NotifyLastSeq implements rma.NotifyWindow by delegation to the inner
// window's register — truthfully: a descriptor this decorator drops has
// already consumed its inner sequence number, which is exactly how the
// consumer's post-drain reconciliation detects tail losses no in-queue
// gap can reveal.
func (w *Window) NotifyLastSeq() uint64 {
	if w.nw == nil {
		return 0
	}
	return w.nw.NotifyLastSeq()
}

// NotifyPoll drains the inner queue and injects the notification fault
// class per delivered descriptor (rma.NotifyWindow): a drop discards the
// descriptor — the consumer observes a sequence gap, exactly as if the
// transport lost the message — a dup delivers it twice, and a reorder
// swaps it with the descriptor delivered just before it. Each rate is an
// independent draw (scenario notify rates are not a cumulative split);
// a dropped descriptor draws nothing further. Duplicates that exceed buf
// are held and delivered first by the next poll, so no injected delivery
// is ever silently lost. The inner overflow flag passes through
// untouched — shedding stays the queue's business.
func (w *Window) NotifyPoll(buf []notify.Notification) (int, bool) {
	if w.nw == nil {
		return 0, false
	}
	out := w.npending
	w.npending = nil
	inner := make([]notify.Notification, len(buf))
	n, overflowed := w.nw.NotifyPoll(inner)
	faulting := w.sc.NotifyDropRate > 0 || w.sc.NotifyDupRate > 0 || w.sc.NotifyReorderRate > 0
	for _, nf := range inner[:n] {
		if !faulting || !w.targetSelected(nf.Origin) {
			out = append(out, nf)
			continue
		}
		if w.rng.Float64() < w.sc.NotifyDropRate {
			w.record(KindNotifyDrop, int64(nf.Seq), nf.Origin)
			continue
		}
		out = append(out, nf)
		if w.rng.Float64() < w.sc.NotifyDupRate {
			w.record(KindNotifyDup, int64(nf.Seq), nf.Origin)
			out = append(out, nf)
		}
		if w.rng.Float64() < w.sc.NotifyReorderRate && len(out) >= 2 {
			w.record(KindNotifyReorder, int64(nf.Seq), nf.Origin)
			out[len(out)-1], out[len(out)-2] = out[len(out)-2], out[len(out)-1]
		}
	}
	delivered := copy(buf, out)
	if delivered < len(out) {
		w.npending = append(w.npending, out[delivered:]...)
	}
	return delivered, overflowed
}

var _ rma.NotifyWindow = (*Window)(nil)
