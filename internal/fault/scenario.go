package fault

import (
	"encoding/json"
	"fmt"
	"os"

	"clampi/internal/simtime"
)

// Outage is one scripted per-target blackout: while active, every get
// towards Target fails transiently (as a drop), regardless of the
// probabilistic rates. Two trigger kinds compose; the outage is active
// when either window contains the op:
//
//   - op-count: injector ops [FromOp, ToOp) on this window handle, and
//   - virtual-time: origin clock in [From, To).
//
// A window with To <= From (or ToOp <= FromOp) is disabled. Virtual-time
// windows are the robust choice when the origin retries with a circuit
// breaker: fail-fast attempts consume no injector ops, but virtual time
// always advances past the outage.
type Outage struct {
	// Target is the rank whose gets fail; -1 means every target.
	Target int `json:"target"`
	// FromOp/ToOp delimit the op-count trigger window.
	FromOp int64 `json:"from_op,omitempty"`
	ToOp   int64 `json:"to_op,omitempty"`
	// From/To delimit the virtual-time trigger window (nanoseconds).
	From simtime.Duration `json:"from_ns,omitempty"`
	To   simtime.Duration `json:"to_ns,omitempty"`
}

// active reports whether the outage applies to an op towards target,
// numbered op on its window, issued at virtual time now.
func (o *Outage) active(target int, op int64, now simtime.Duration) bool {
	if o.Target >= 0 && o.Target != target {
		return false
	}
	if o.ToOp > o.FromOp && op >= o.FromOp && op < o.ToOp {
		return true
	}
	return o.To > o.From && now >= o.From && now < o.To
}

// Scenario scripts one reproducible chaos run: per-op fault rates,
// trigger conditions and scripted outages. A Scenario plus a seed fully
// determines the injected fault sequence — the RNG is seeded per wrapped
// window, every draw is tied to the (deterministic) op stream, and all
// delays are virtual time.
type Scenario struct {
	// Name labels the scenario in tables and trace output.
	Name string `json:"name"`

	// Per-op injection probabilities, evaluated cumulatively in the
	// order drop, timeout, corrupt, short-read, spike. Their sum must
	// not exceed 1.
	DropRate      float64 `json:"drop_rate,omitempty"`
	TimeoutRate   float64 `json:"timeout_rate,omitempty"`
	CorruptRate   float64 `json:"corrupt_rate,omitempty"`
	ShortReadRate float64 `json:"short_read_rate,omitempty"`
	SpikeRate     float64 `json:"spike_rate,omitempty"`

	// Notification-path probabilities, applied per delivered descriptor
	// at NotifyPoll (DESIGN.md §16): a drop discards the descriptor
	// (consumers observe a sequence gap), a dup delivers it twice, a
	// reorder swaps it with its successor. Each rate stands alone — they
	// gate independent draws, not a cumulative split — so each must be a
	// probability but their sum is unconstrained.
	NotifyDropRate    float64 `json:"notify_drop_rate,omitempty"`
	NotifyDupRate     float64 `json:"notify_dup_rate,omitempty"`
	NotifyReorderRate float64 `json:"notify_reorder_rate,omitempty"`

	// Timeout is the virtual time burned by an injected timeout before
	// it fails; zero selects DefaultTimeout.
	Timeout simtime.Duration `json:"timeout_ns,omitempty"`
	// SpikeLatency is the extra virtual latency of an injected spike;
	// zero selects DefaultSpikeLatency.
	SpikeLatency simtime.Duration `json:"spike_latency_ns,omitempty"`

	// Targets restricts injection to these ranks; empty means all.
	Targets []int `json:"targets,omitempty"`

	// AfterOps suppresses injection for the first AfterOps ops of each
	// wrapped window; AfterTime until the origin clock reaches it.
	AfterOps  int64            `json:"after_ops,omitempty"`
	AfterTime simtime.Duration `json:"after_time_ns,omitempty"`

	// Outages are the scripted per-target blackout windows.
	Outages []Outage `json:"outages,omitempty"`
}

// Defaults for Scenario fields left zero.
const (
	DefaultTimeout      = 10 * simtime.Microsecond
	DefaultSpikeLatency = 5 * simtime.Microsecond
)

// timeout returns the effective injected-timeout delay.
func (s *Scenario) timeout() simtime.Duration {
	if s.Timeout > 0 {
		return s.Timeout
	}
	return DefaultTimeout
}

// spike returns the effective latency-spike delay.
func (s *Scenario) spike() simtime.Duration {
	if s.SpikeLatency > 0 {
		return s.SpikeLatency
	}
	return DefaultSpikeLatency
}

// Validate checks the rates are probabilities summing to at most 1.
func (s *Scenario) Validate() error {
	sum := 0.0
	for _, r := range []float64{s.DropRate, s.TimeoutRate, s.CorruptRate, s.ShortReadRate, s.SpikeRate} {
		if r < 0 || r > 1 {
			return fmt.Errorf("fault: scenario %q: rate %v outside [0, 1]", s.Name, r)
		}
		sum += r
	}
	if sum > 1 {
		return fmt.Errorf("fault: scenario %q: rates sum to %v > 1", s.Name, sum)
	}
	for _, r := range []float64{s.NotifyDropRate, s.NotifyDupRate, s.NotifyReorderRate} {
		if r < 0 || r > 1 {
			return fmt.Errorf("fault: scenario %q: notify rate %v outside [0, 1]", s.Name, r)
		}
	}
	return nil
}

// LoadScenario reads a scenario from a JSON file (the format Scenario
// marshals to).
func LoadScenario(path string) (Scenario, error) {
	var s Scenario
	buf, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(buf, &s); err != nil {
		return s, fmt.Errorf("fault: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// Canned returns the scenario suite the chaos driver and CI smoke runs
// use: one scenario per fault class, rates high enough to exercise every
// resilience path at small scale.
func Canned() []Scenario {
	return []Scenario{
		{Name: "drop", DropRate: 0.10},
		{Name: "timeout", TimeoutRate: 0.08, Timeout: 20 * simtime.Microsecond},
		{Name: "corrupt", CorruptRate: 0.08, ShortReadRate: 0.04},
		{Name: "outage", DropRate: 0.02, Outages: []Outage{
			{Target: 0, From: 50 * simtime.Microsecond, To: 250 * simtime.Microsecond},
			{Target: 1, From: 400 * simtime.Microsecond, To: 600 * simtime.Microsecond},
		}},
		{Name: "notify", NotifyDropRate: 0.15, NotifyDupRate: 0.10, NotifyReorderRate: 0.10},
	}
}

// ByName returns the canned scenario with the given name.
func ByName(name string) (Scenario, bool) {
	for _, s := range Canned() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
