package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/mpi"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

func pattern(off int) byte { return byte((off*7 + 13) ^ (off >> 3)) }

// withInjector runs a world of the given size; rank 0's window (every
// other rank's region holds pattern bytes) is wrapped with sc and seed,
// a lock-all epoch is opened, and fn runs on rank 0.
func withInjector(t *testing.T, size int, sc Scenario, seed int64, fn func(w *Window, r *mpi.Rank) error) {
	t.Helper()
	err := mpi.Run(size, mpi.Config{}, func(r *mpi.Rank) error {
		region := make([]byte, 4096)
		if r.ID() != 0 {
			for i := range region {
				region[i] = pattern(i)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		var fnErr error
		if r.ID() == 0 {
			w := Wrap(win, sc, seed)
			fnErr = w.LockAll()
			if fnErr == nil {
				fnErr = fn(w, r)
				if err := w.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		t.Fatal(err)
	}
}

// mixedGets issues n gets across every remote target and returns the
// injector's counts.
func mixedGets(w *Window, worldSize, n int) Counts {
	dst := make([]byte, 64)
	for i := 0; i < n; i++ {
		target := 1 + i%(worldSize-1)
		w.Get(dst, datatype.Byte, len(dst), target, (i*64)%2048)
	}
	return w.Counts()
}

func TestSameSeedInjectsIdenticalSequence(t *testing.T) {
	sc := Scenario{Name: "mix", DropRate: 0.2, TimeoutRate: 0.1, CorruptRate: 0.1, ShortReadRate: 0.1, SpikeRate: 0.1}
	var first Counts
	withInjector(t, 3, sc, 42, func(w *Window, r *mpi.Rank) error {
		first = mixedGets(w, 3, 200)
		return nil
	})
	if first.Total() == 0 {
		t.Fatal("scenario injected nothing")
	}
	var second Counts
	withInjector(t, 3, sc, 42, func(w *Window, r *mpi.Rank) error {
		second = mixedGets(w, 3, 200)
		return nil
	})
	if first != second {
		t.Errorf("same (scenario, seed) diverged:\n  run 1: %v digest=%#x\n  run 2: %v digest=%#x",
			first, first.Digest, second, second.Digest)
	}
	var other Counts
	withInjector(t, 3, sc, 43, func(w *Window, r *mpi.Rank) error {
		other = mixedGets(w, 3, 200)
		return nil
	})
	if other.Digest == first.Digest {
		t.Error("different seeds produced the same fault digest")
	}
}

func TestDropFailsWithoutIssuing(t *testing.T) {
	withInjector(t, 2, Scenario{DropRate: 1}, 1, func(w *Window, r *mpi.Rank) error {
		dst := []byte{0xEE, 0xEE, 0xEE, 0xEE}
		err := w.Get(dst, datatype.Byte, len(dst), 1, 0)
		if !errors.Is(err, rma.ErrTransient) {
			t.Errorf("dropped get = %v, want ErrTransient", err)
		}
		for _, b := range dst {
			if b != 0xEE {
				t.Fatal("dropped get wrote into the destination buffer")
			}
		}
		if c := w.Counts(); c.Drops != 1 || c.Ops != 1 {
			t.Errorf("counts = %v, want 1 drop in 1 op", c)
		}
		return nil
	})
}

func TestTimeoutBurnsVirtualTime(t *testing.T) {
	sc := Scenario{TimeoutRate: 1, Timeout: 7 * simtime.Microsecond}
	withInjector(t, 2, sc, 1, func(w *Window, r *mpi.Rank) error {
		dst := make([]byte, 64)
		t0 := r.Clock().Now()
		err := w.Get(dst, datatype.Byte, len(dst), 1, 0)
		if !errors.Is(err, rma.ErrTimeout) || !errors.Is(err, rma.ErrTransient) {
			t.Errorf("timed-out get = %v, want ErrTimeout (transient)", err)
		}
		if spent := r.Clock().Now() - t0; spent < sc.Timeout {
			t.Errorf("timeout burned %v of virtual time, want >= %v", spent, sc.Timeout)
		}
		return nil
	})
}

func TestSpikeDeliversAfterExtraLatency(t *testing.T) {
	sc := Scenario{SpikeRate: 1, SpikeLatency: 9 * simtime.Microsecond}
	withInjector(t, 2, sc, 1, func(w *Window, r *mpi.Rank) error {
		dst := make([]byte, 64)
		t0 := r.Clock().Now()
		if err := w.Get(dst, datatype.Byte, len(dst), 1, 128); err != nil {
			return err
		}
		if spent := r.Clock().Now() - t0; spent < sc.SpikeLatency {
			t.Errorf("spiked get took %v, want >= the %v spike", spent, sc.SpikeLatency)
		}
		for i, b := range dst {
			if b != pattern(128+i) {
				t.Fatalf("spiked get byte %d = %#x, want clean payload", i, b)
			}
		}
		return nil
	})
}

func TestCorruptIsSilentAndAttestable(t *testing.T) {
	withInjector(t, 2, Scenario{CorruptRate: 1}, 1, func(w *Window, r *mpi.Rank) error {
		dst := make([]byte, 64)
		if err := w.Get(dst, datatype.Byte, len(dst), 1, 256); err != nil {
			t.Fatalf("corrupted get = %v, want nil (silent corruption)", err)
		}
		damaged := 0
		for i, b := range dst {
			if b != pattern(256+i) {
				damaged++
			}
		}
		if damaged == 0 || damaged > 3 {
			t.Errorf("corruption flipped %d bytes, want 1..3", damaged)
		}
		// The attestation channel stays clean, so verification catches it.
		want, err := w.Checksum(1, 256, len(dst))
		if err != nil {
			return err
		}
		if rma.ChecksumBytes(dst) == want {
			t.Error("corrupted payload still matches the target attestation")
		}
		return nil
	})
}

func TestShortReadGarblesTail(t *testing.T) {
	withInjector(t, 2, Scenario{ShortReadRate: 1}, 1, func(w *Window, r *mpi.Rank) error {
		dst := make([]byte, 64)
		err := w.Get(dst, datatype.Byte, len(dst), 1, 512)
		if !errors.Is(err, ErrShortRead) || !errors.Is(err, rma.ErrTransient) {
			t.Errorf("short read = %v, want ErrShortRead (transient)", err)
		}
		for i := 0; i < len(dst)/2; i++ {
			if dst[i] != pattern(512+i) {
				t.Fatalf("short read damaged delivered prefix byte %d", i)
			}
		}
		for i := len(dst) / 2; i < len(dst); i++ {
			if dst[i] == pattern(512+i) {
				t.Fatalf("short read left tail byte %d intact", i)
			}
		}
		return nil
	})
}

func TestOutageByOpCount(t *testing.T) {
	sc := Scenario{Outages: []Outage{{Target: -1, FromOp: 1, ToOp: 3}}}
	withInjector(t, 2, sc, 1, func(w *Window, r *mpi.Rank) error {
		dst := make([]byte, 64)
		for op := 1; op <= 3; op++ {
			err := w.Get(dst, datatype.Byte, len(dst), 1, 0)
			if op < 3 && !errors.Is(err, rma.ErrTransient) {
				t.Errorf("op %d during outage = %v, want transient", op, err)
			}
			if op == 3 && err != nil {
				t.Errorf("op %d after outage = %v, want nil", op, err)
			}
		}
		if c := w.Counts(); c.Outages != 2 {
			t.Errorf("Outages = %d, want 2", c.Outages)
		}
		return nil
	})
}

func TestOutageByVirtualTime(t *testing.T) {
	// World setup burns some virtual time on collectives, so the window
	// sits far past it.
	sc := Scenario{Outages: []Outage{{Target: 1, From: simtime.Millisecond, To: 2 * simtime.Millisecond}}}
	withInjector(t, 3, sc, 1, func(w *Window, r *mpi.Rank) error {
		dst := make([]byte, 64)
		if now := r.Clock().Now(); now >= simtime.Millisecond {
			t.Fatalf("setup already consumed %v, outage window unusable", now)
		}
		if err := w.Get(dst, datatype.Byte, len(dst), 1, 0); err != nil {
			t.Errorf("get before the outage window = %v", err)
		}
		r.Clock().AdvanceTo(1500 * simtime.Microsecond)
		if err := w.Get(dst, datatype.Byte, len(dst), 1, 0); !errors.Is(err, rma.ErrTransient) {
			t.Errorf("get inside the outage window = %v, want transient", err)
		}
		// Only the scripted target is down.
		if err := w.Get(dst, datatype.Byte, len(dst), 2, 0); err != nil {
			t.Errorf("get towards a healthy target = %v", err)
		}
		r.Clock().AdvanceTo(2500 * simtime.Microsecond)
		if err := w.Get(dst, datatype.Byte, len(dst), 1, 0); err != nil {
			t.Errorf("get after the outage window = %v", err)
		}
		return nil
	})
}

func TestTriggersSuppressEarlyInjection(t *testing.T) {
	sc := Scenario{DropRate: 1, AfterOps: 2}
	withInjector(t, 2, sc, 1, func(w *Window, r *mpi.Rank) error {
		dst := make([]byte, 64)
		for op := 1; op <= 2; op++ {
			if err := w.Get(dst, datatype.Byte, len(dst), 1, 0); err != nil {
				t.Errorf("op %d within AfterOps grace = %v", op, err)
			}
		}
		if err := w.Get(dst, datatype.Byte, len(dst), 1, 0); !errors.Is(err, rma.ErrTransient) {
			t.Errorf("op 3 past AfterOps = %v, want transient", err)
		}
		return nil
	})
}

func TestTargetFilterRestrictsInjection(t *testing.T) {
	sc := Scenario{DropRate: 1, Targets: []int{2}}
	withInjector(t, 3, sc, 1, func(w *Window, r *mpi.Rank) error {
		dst := make([]byte, 64)
		if err := w.Get(dst, datatype.Byte, len(dst), 1, 0); err != nil {
			t.Errorf("get towards unselected target = %v", err)
		}
		if err := w.Get(dst, datatype.Byte, len(dst), 2, 0); !errors.Is(err, rma.ErrTransient) {
			t.Errorf("get towards selected target = %v, want transient", err)
		}
		return nil
	})
}

func TestZeroSizeBypassesInjection(t *testing.T) {
	withInjector(t, 2, Scenario{DropRate: 1}, 1, func(w *Window, r *mpi.Rank) error {
		if err := w.Get(nil, datatype.Byte, 0, 1, 0); err != nil {
			t.Errorf("zero-size get = %v", err)
		}
		if c := w.Counts(); c.Ops != 0 {
			t.Errorf("zero-size get consumed an injection decision (ops=%d)", c.Ops)
		}
		return nil
	})
}

func TestGetBatchReportsFailingOp(t *testing.T) {
	// Ops are numbered from 1; op 3 (batch index 2) hits the outage.
	sc := Scenario{Outages: []Outage{{Target: -1, FromOp: 3, ToOp: 4}}}
	withInjector(t, 2, sc, 1, func(w *Window, r *mpi.Rank) error {
		bufs := make([][]byte, 5)
		ops := make([]rma.GetOp, 5)
		for i := range ops {
			bufs[i] = make([]byte, 32)
			ops[i] = rma.GetOp{Dst: bufs[i], Target: 1, Disp: i * 32}
		}
		err := w.GetBatch(ops)
		var be *rma.BatchError
		if !errors.As(err, &be) || be.Op != 2 {
			t.Fatalf("GetBatch = %v, want *rma.BatchError at op 2", err)
		}
		if !errors.Is(err, rma.ErrTransient) {
			t.Error("batch failure does not match ErrTransient through the wrap")
		}
		for i := 0; i < 2; i++ {
			for j, b := range bufs[i] {
				if b != pattern(i*32+j) {
					t.Fatalf("delivered prefix op %d byte %d damaged", i, j)
				}
			}
		}
		for i := 3; i < 5; i++ {
			for _, b := range bufs[i] {
				if b != 0 {
					t.Fatalf("op %d after the failure was issued", i)
				}
			}
		}
		return nil
	})
}

func TestRgetFailureSurfacesAtWait(t *testing.T) {
	withInjector(t, 2, Scenario{DropRate: 1}, 1, func(w *Window, r *mpi.Rank) error {
		dst := make([]byte, 64)
		req, err := w.Rget(dst, datatype.Byte, len(dst), 1, 0)
		if err != nil {
			t.Fatalf("injected Rget failed at issue: %v (want failure at Wait)", err)
		}
		if !req.Test() {
			t.Error("failed request not complete")
		}
		if err := req.Wait(); !errors.Is(err, rma.ErrTransient) {
			t.Errorf("Wait = %v, want transient", err)
		}
		if err := req.Wait(); !errors.Is(err, rma.ErrDoneRequest) {
			t.Errorf("second Wait = %v, want ErrDoneRequest", err)
		}
		return nil
	})
}

func TestRgetTimeoutBurnsAtWait(t *testing.T) {
	sc := Scenario{TimeoutRate: 1, Timeout: 6 * simtime.Microsecond}
	withInjector(t, 2, sc, 1, func(w *Window, r *mpi.Rank) error {
		dst := make([]byte, 64)
		req, err := w.Rget(dst, datatype.Byte, len(dst), 1, 0)
		if err != nil {
			return err
		}
		t0 := r.Clock().Now()
		if err := req.Wait(); !errors.Is(err, rma.ErrTimeout) {
			t.Errorf("Wait = %v, want ErrTimeout", err)
		}
		if spent := r.Clock().Now() - t0; spent < sc.Timeout {
			t.Errorf("Wait burned %v, want >= %v", spent, sc.Timeout)
		}
		return nil
	})
}

func TestScenarioValidate(t *testing.T) {
	bad := Scenario{DropRate: 0.6, TimeoutRate: 0.6}
	if err := bad.Validate(); err == nil {
		t.Error("rates summing past 1 passed Validate")
	}
	neg := Scenario{CorruptRate: -0.1}
	if err := neg.Validate(); err == nil {
		t.Error("negative rate passed Validate")
	}
	for _, sc := range Canned() {
		if err := sc.Validate(); err != nil {
			t.Errorf("canned scenario %q invalid: %v", sc.Name, err)
		}
		if got, ok := ByName(sc.Name); !ok || got.Name != sc.Name {
			t.Errorf("ByName(%q) lookup failed", sc.Name)
		}
	}
	if _, ok := ByName("no-such-scenario"); ok {
		t.Error("ByName invented a scenario")
	}
}

func TestLoadScenarioRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	payload := `{
		"name": "custom",
		"drop_rate": 0.25,
		"timeout_ns": 15000,
		"outages": [{"target": 1, "from_ns": 1000, "to_ns": 2000}]
	}`
	if err := os.WriteFile(path, []byte(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "custom" || sc.DropRate != 0.25 || sc.Timeout != 15*simtime.Microsecond {
		t.Errorf("loaded scenario = %+v", sc)
	}
	if len(sc.Outages) != 1 || sc.Outages[0].To != 2*simtime.Microsecond {
		t.Errorf("loaded outages = %+v", sc.Outages)
	}
	if _, err := LoadScenario(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"drop_rate": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScenario(bad); err == nil {
		t.Error("invalid rates loaded")
	}
}
