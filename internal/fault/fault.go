// Package fault is a deterministic, seed-driven fault injector for RMA
// transports, implemented as an rma.Window middleware (DESIGN.md §11).
//
// Wrap decorates any backend window; get-path operations (Get, GetBatch,
// Rget) pass through an injection decision that can drop the operation,
// time it out, corrupt or truncate its payload, add a latency spike, or
// honour a scripted per-target outage window. Everything else — puts,
// synchronization, epochs, window management — delegates untouched, so
// the decorated window composes with the caching layer, both execution
// modes, and any layer that only speaks the rma interfaces.
//
// Determinism is the design center: the injector draws from its own RNG
// (seeded at Wrap, one injector per window handle, i.e. per rank),
// decisions are keyed to the rank's deterministic op stream, and every
// injected delay is virtual time. A (Scenario, seed) pair therefore
// reproduces the exact fault sequence on every run and in both execution
// modes; Counts.Digest folds the sequence into one value so reruns can
// assert it.
package fault

import (
	"errors"
	"fmt"

	"math/rand"

	"clampi/internal/datatype"
	"clampi/internal/notify"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// ErrShortRead reports an injected truncated delivery: a suffix of the
// destination buffer holds garbage. Matches rma.ErrTransient.
var ErrShortRead = fmt.Errorf("%w: short read", rma.ErrTransient)

// errNoAttestation reports a Checksum call on a wrapped window whose
// inner backend does not implement rma.IntegrityWindow.
var errNoAttestation = errors.New("fault: inner window does not attest checksums")

// Kind classifies one injected fault.
type Kind int

const (
	// KindNone means the op passed through clean.
	KindNone Kind = iota
	// KindDrop fails the op without issuing it.
	KindDrop
	// KindTimeout burns the scenario's timeout in virtual time, then
	// fails the op without issuing it.
	KindTimeout
	// KindCorrupt issues the op, then silently damages the delivered
	// payload (detected only by integrity verification).
	KindCorrupt
	// KindShortRead issues the op, garbles a suffix of the payload and
	// reports the truncation.
	KindShortRead
	// KindSpike issues the op after an injected extra latency.
	KindSpike
	// KindOutage fails the op because a scripted outage window covers
	// its target.
	KindOutage
	// KindNotifyDrop discards one delivered notification descriptor
	// (consumers observe a sequence gap).
	KindNotifyDrop
	// KindNotifyDup delivers one notification descriptor twice.
	KindNotifyDup
	// KindNotifyReorder swaps one notification with its successor.
	KindNotifyReorder
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindDrop:
		return "drop"
	case KindTimeout:
		return "timeout"
	case KindCorrupt:
		return "corrupt"
	case KindShortRead:
		return "short-read"
	case KindSpike:
		return "spike"
	case KindOutage:
		return "outage"
	case KindNotifyDrop:
		return "notify-drop"
	case KindNotifyDup:
		return "notify-dup"
	case KindNotifyReorder:
		return "notify-reorder"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Counts tallies the faults one injector delivered. Digest folds the
// ordered fault sequence — (op number, kind, target) per injected fault
// — into one FNV-1a value: two runs injected the identical sequence iff
// their digests (and Ops) match.
type Counts struct {
	Ops            int64 // get-path ops that passed the injection decision
	Drops          int64
	Timeouts       int64
	Corrupts       int64
	ShortReads     int64
	Spikes         int64
	Outages        int64
	NotifyDrops    int64
	NotifyDups     int64
	NotifyReorders int64
	Digest         uint64
}

// Total returns the number of injected faults of any kind.
func (c Counts) Total() int64 {
	return c.Drops + c.Timeouts + c.Corrupts + c.ShortReads + c.Spikes + c.Outages +
		c.NotifyDrops + c.NotifyDups + c.NotifyReorders
}

// Add returns c + o field by field, keeping XOR of the digests (order
// across injectors is not defined; XOR keeps the aggregate seed- and
// schedule-independent).
func (c Counts) Add(o Counts) Counts {
	return Counts{
		Ops:            c.Ops + o.Ops,
		Drops:          c.Drops + o.Drops,
		Timeouts:       c.Timeouts + o.Timeouts,
		Corrupts:       c.Corrupts + o.Corrupts,
		ShortReads:     c.ShortReads + o.ShortReads,
		Spikes:         c.Spikes + o.Spikes,
		Outages:        c.Outages + o.Outages,
		NotifyDrops:    c.NotifyDrops + o.NotifyDrops,
		NotifyDups:     c.NotifyDups + o.NotifyDups,
		NotifyReorders: c.NotifyReorders + o.NotifyReorders,
		Digest:         c.Digest ^ o.Digest,
	}
}

func (c Counts) String() string {
	return fmt.Sprintf("ops=%d drops=%d timeouts=%d corrupts=%d short=%d spikes=%d outages=%d ndrops=%d ndups=%d nreorders=%d",
		c.Ops, c.Drops, c.Timeouts, c.Corrupts, c.ShortReads, c.Spikes, c.Outages,
		c.NotifyDrops, c.NotifyDups, c.NotifyReorders)
}

// Window is the fault-injecting decorator. It implements rma.Window,
// rma.BatchWindow and rma.IntegrityWindow; batch and integrity calls
// degrade gracefully when the inner backend lacks the extension
// (per-op issue, attestation error). All methods must be called from the
// owning rank's goroutine, exactly as with the inner window.
type Window struct {
	inner rma.Window
	bw    rma.BatchWindow     // inner batch extension, nil if absent
	iw    rma.IntegrityWindow // inner integrity extension, nil if absent
	nw    rma.NotifyWindow    // inner notification extension, nil if absent
	clock *simtime.Clock
	sc    Scenario
	rng   *rand.Rand

	// cumulative decision thresholds (precomputed from the rates)
	thDrop, thTimeout, thCorrupt, thShort, thSpike float64

	ops    int64
	counts Counts

	// npending holds faulted notifications (duplicates) that did not fit
	// the caller's poll buffer; delivered first by the next poll.
	npending []notify.Notification
}

// Wrap decorates win with the scenario's fault injection, drawing all
// randomness from a RNG seeded with seed. Wrap each rank's window with a
// distinct seed (e.g. base+rankID) so ranks fail independently while the
// whole fleet stays reproducible.
func Wrap(win rma.Window, sc Scenario, seed int64) *Window {
	w := &Window{
		inner: win,
		clock: win.Endpoint().Clock(),
		sc:    sc,
		rng:   rand.New(rand.NewSource(seed)),
	}
	w.bw, _ = win.(rma.BatchWindow)
	w.iw, _ = win.(rma.IntegrityWindow)
	w.nw, _ = win.(rma.NotifyWindow)
	w.thDrop = sc.DropRate
	w.thTimeout = w.thDrop + sc.TimeoutRate
	w.thCorrupt = w.thTimeout + sc.CorruptRate
	w.thShort = w.thCorrupt + sc.ShortReadRate
	w.thSpike = w.thShort + sc.SpikeRate
	return w
}

// Inner returns the decorated window.
func (w *Window) Inner() rma.Window { return w.inner }

// Counts returns the faults injected so far.
func (w *Window) Counts() Counts { return w.counts }

// Scenario returns the scenario in effect.
func (w *Window) Scenario() Scenario { return w.sc }

// targetSelected reports whether the scenario injects towards target.
func (w *Window) targetSelected(target int) bool {
	if len(w.sc.Targets) == 0 {
		return true
	}
	for _, t := range w.sc.Targets {
		if t == target {
			return true
		}
	}
	return false
}

// decide runs the injection decision for one get-path op towards target
// and returns the fault to apply. Zero-size transfers never reach it
// (nothing to damage, nothing worth dropping deterministically).
func (w *Window) decide(target int) Kind {
	w.ops++
	w.counts.Ops++
	op := w.ops
	if !w.targetSelected(target) {
		return KindNone
	}
	now := w.clock.Now()
	if op <= w.sc.AfterOps || now < w.sc.AfterTime {
		return KindNone
	}
	for i := range w.sc.Outages {
		if w.sc.Outages[i].active(target, op, now) {
			return w.record(KindOutage, op, target)
		}
	}
	if w.thSpike <= 0 {
		return KindNone
	}
	r := w.rng.Float64()
	switch {
	case r < w.thDrop:
		return w.record(KindDrop, op, target)
	case r < w.thTimeout:
		return w.record(KindTimeout, op, target)
	case r < w.thCorrupt:
		return w.record(KindCorrupt, op, target)
	case r < w.thShort:
		return w.record(KindShortRead, op, target)
	case r < w.thSpike:
		return w.record(KindSpike, op, target)
	}
	return KindNone
}

// record tallies one injected fault and folds it into the digest.
func (w *Window) record(k Kind, op int64, target int) Kind {
	switch k {
	case KindDrop:
		w.counts.Drops++
	case KindTimeout:
		w.counts.Timeouts++
	case KindCorrupt:
		w.counts.Corrupts++
	case KindShortRead:
		w.counts.ShortReads++
	case KindSpike:
		w.counts.Spikes++
	case KindOutage:
		w.counts.Outages++
	case KindNotifyDrop:
		w.counts.NotifyDrops++
	case KindNotifyDup:
		w.counts.NotifyDups++
	case KindNotifyReorder:
		w.counts.NotifyReorders++
	}
	const prime64 = 1099511628211
	h := w.counts.Digest
	if h == 0 {
		h = 14695981039346656037
	}
	for _, v := range [3]uint64{uint64(op), uint64(k), uint64(target)} {
		h ^= v
		h *= prime64
	}
	w.counts.Digest = h
	return k
}

// corrupt deterministically flips 1–3 payload bytes.
func (w *Window) corrupt(buf []byte) {
	n := 1 + w.rng.Intn(3)
	for i := 0; i < n; i++ {
		buf[w.rng.Intn(len(buf))] ^= 0xA5
	}
}

// garbleTail damages the second half of a short read's payload.
func garbleTail(buf []byte) {
	for i := len(buf) / 2; i < len(buf); i++ {
		buf[i] ^= 0xFF
	}
}

// Get injects into the contiguous read path (rma.Window).
func (w *Window) Get(dst []byte, dtype datatype.Datatype, count int, target, disp int) error {
	size := datatype.TransferSize(dtype, count)
	if size == 0 {
		return w.inner.Get(dst, dtype, count, target, disp)
	}
	switch w.decide(target) {
	case KindDrop, KindOutage:
		return rma.ErrTransient
	case KindTimeout:
		w.clock.Advance(w.sc.timeout())
		return rma.ErrTimeout
	case KindSpike:
		w.clock.Advance(w.sc.spike())
		return w.inner.Get(dst, dtype, count, target, disp)
	case KindCorrupt:
		if err := w.inner.Get(dst, dtype, count, target, disp); err != nil {
			return err
		}
		w.corrupt(dst[:size]) //clampi:epoch injector damages the payload the simulated transport materialized at issue time
		return nil            // silent: only integrity verification catches it
	case KindShortRead:
		if err := w.inner.Get(dst, dtype, count, target, disp); err != nil {
			return err
		}
		garbleTail(dst[:size]) //clampi:epoch injector damages the payload the simulated transport materialized at issue time
		return ErrShortRead
	}
	return w.inner.Get(dst, dtype, count, target, disp)
}

// GetBatch issues each op through the injected Get path, wrapping the
// first failure in a *rma.BatchError so callers can resume after the
// delivered prefix (rma.BatchWindow). The injector always issues per-op
// — each op is one coalesced network message for the layers above, and
// per-op issue is what gives every op its own injection decision.
func (w *Window) GetBatch(ops []rma.GetOp) error {
	for i := range ops {
		op := &ops[i]
		if err := w.Get(op.Dst, datatype.Byte, len(op.Dst), op.Target, op.Disp); err != nil {
			return &rma.BatchError{Op: i, Err: err}
		}
	}
	return nil
}

// failedRequest is the request handle of an injected Rget failure: the
// error surfaces at Wait (completion time), as it would on a real
// network. An injected timeout additionally burns the scenario's timeout
// at the Wait.
type failedRequest struct {
	clock *simtime.Clock
	delay simtime.Duration
	err   error
	done  bool
}

// Wait implements rma.Request.
func (r *failedRequest) Wait() error {
	if r.done {
		return rma.ErrDoneRequest
	}
	r.done = true
	if r.delay > 0 {
		r.clock.Advance(r.delay)
	}
	return r.err
}

// Test implements rma.Request: a failed op is complete by definition.
func (r *failedRequest) Test() bool { return true }

// Rget injects into the request-based read path. Drop, outage and
// short-read faults return a request whose Wait reports the failure;
// timeout faults additionally burn the timeout at the Wait. Corruption
// and spikes behave as in Get.
func (w *Window) Rget(dst []byte, dtype datatype.Datatype, count int, target, disp int) (rma.Request, error) {
	size := datatype.TransferSize(dtype, count)
	if size == 0 {
		return w.inner.Rget(dst, dtype, count, target, disp)
	}
	switch w.decide(target) {
	case KindDrop, KindOutage, KindShortRead:
		return &failedRequest{clock: w.clock, err: rma.ErrTransient}, nil
	case KindTimeout:
		return &failedRequest{clock: w.clock, delay: w.sc.timeout(), err: rma.ErrTimeout}, nil
	case KindSpike:
		w.clock.Advance(w.sc.spike())
		return w.inner.Rget(dst, dtype, count, target, disp)
	case KindCorrupt:
		req, err := w.inner.Rget(dst, dtype, count, target, disp)
		if err == nil {
			w.corrupt(dst[:size]) //clampi:epoch injector damages the payload the simulated transport materialized at issue time
		}
		return req, err
	}
	return w.inner.Rget(dst, dtype, count, target, disp)
}

// Checksum passes the attestation through un-faulted (rma.IntegrityWindow):
// the integrity channel is the reliable control plane corruption
// detection depends on.
func (w *Window) Checksum(target, disp, size int) (uint64, error) {
	if w.iw == nil {
		return 0, errNoAttestation
	}
	return w.iw.Checksum(target, disp, size)
}

// --- pure delegation below: the injector never perturbs writes,
// synchronization, or window management. ---

// Endpoint implements rma.Window.
func (w *Window) Endpoint() rma.Endpoint { return w.inner.Endpoint() }

// Info implements rma.Window.
func (w *Window) Info() rma.Info { return w.inner.Info() }

// Local implements rma.Window.
func (w *Window) Local() []byte { return w.inner.Local() }

// RegionSize implements rma.Window.
func (w *Window) RegionSize(target int) (int, error) { return w.inner.RegionSize(target) }

// Epoch implements rma.Window.
func (w *Window) Epoch() int64 { return w.inner.Epoch() }

// AddEpochListener implements rma.Window.
func (w *Window) AddEpochListener(f rma.EpochListener) { w.inner.AddEpochListener(f) }

// Put implements rma.Window.
func (w *Window) Put(src []byte, dtype datatype.Datatype, count int, target, disp int) error {
	return w.inner.Put(src, dtype, count, target, disp)
}

// Rput implements rma.Window.
func (w *Window) Rput(src []byte, dtype datatype.Datatype, count int, target, disp int) (rma.Request, error) {
	return w.inner.Rput(src, dtype, count, target, disp)
}

// Accumulate implements rma.Window.
func (w *Window) Accumulate(src []byte, dtype datatype.Datatype, count int, target, disp int, op rma.Op) error {
	return w.inner.Accumulate(src, dtype, count, target, disp, op)
}

// Lock implements rma.Window.
func (w *Window) Lock(target int) error { return w.inner.Lock(target) }

// LockWithType implements rma.Window.
func (w *Window) LockWithType(typ rma.LockType, target int) error {
	return w.inner.LockWithType(typ, target)
}

// LockAll implements rma.Window.
func (w *Window) LockAll() error { return w.inner.LockAll() }

// Unlock implements rma.Window.
func (w *Window) Unlock(target int) error { return w.inner.Unlock(target) }

// UnlockAll implements rma.Window.
func (w *Window) UnlockAll() error { return w.inner.UnlockAll() }

// Flush implements rma.Window.
func (w *Window) Flush(target int) error { return w.inner.Flush(target) }

// FlushAll implements rma.Window.
func (w *Window) FlushAll() error { return w.inner.FlushAll() }

// Fence implements rma.Window.
func (w *Window) Fence() error { return w.inner.Fence() }

// Post implements rma.Window.
func (w *Window) Post(origins []int) error { return w.inner.Post(origins) }

// Start implements rma.Window.
func (w *Window) Start(targets []int) error { return w.inner.Start(targets) }

// Complete implements rma.Window.
func (w *Window) Complete() error { return w.inner.Complete() }

// Wait implements rma.Window.
func (w *Window) Wait() error { return w.inner.Wait() }

// Free implements rma.Window.
func (w *Window) Free() error { return w.inner.Free() }

// Compile-time checks: the decorator speaks the full transport contract.
var (
	_ rma.Window          = (*Window)(nil)
	_ rma.BatchWindow     = (*Window)(nil)
	_ rma.IntegrityWindow = (*Window)(nil)
	_ rma.Request         = (*failedRequest)(nil)
)
