package obsv

import (
	"math/bits"
	"sync/atomic"

	"clampi/internal/simtime"
)

// NumHistBuckets is the number of log2 histogram buckets: bucket 0 holds
// observations of 0–1 virtual ns, bucket i holds [2^(i-1), 2^i) ns, and
// the last bucket absorbs everything ≥ 2^62 ns (never reached by real
// virtual timelines; it keeps indexing branch-free).
const NumHistBuckets = 64

// Histogram is a log2-bucketed distribution of virtual durations. All
// operations are atomic: many ranks may observe into one histogram
// concurrently (Throughput mode).
type Histogram struct {
	count   atomic.Int64                 // clampi:atomic
	sum     atomic.Int64                 // clampi:atomic
	buckets [NumHistBuckets]atomic.Int64 // clampi:atomic
}

// bucketOf maps a duration to its bucket index: 0 for d ≤ 1ns, else
// ceil(log2(d)) clamped to the last bucket.
func bucketOf(d simtime.Duration) int {
	if d <= 1 {
		return 0
	}
	// bits.Len64(x-1) is ceil(log2(x)) for x ≥ 2.
	b := bits.Len64(uint64(d) - 1)
	if b >= NumHistBuckets {
		b = NumHistBuckets - 1
	}
	return b
}

// BucketUpperBound returns the inclusive upper bound of bucket i in
// virtual nanoseconds (2^i; the last bucket is unbounded and reports its
// nominal 2^63-1 bound).
func BucketUpperBound(i int) simtime.Duration {
	if i >= 63 {
		return simtime.Duration(1<<63 - 1)
	}
	return simtime.Duration(1) << i
}

// Observe records one duration. Negative durations are clamped to zero.
func (h *Histogram) Observe(d simtime.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.buckets[bucketOf(d)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed durations.
func (h *Histogram) Sum() simtime.Duration { return simtime.Duration(h.sum.Load()) }

// Mean returns the mean observed duration (0 when empty).
func (h *Histogram) Mean() simtime.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / simtime.Duration(n)
}

// Buckets returns a snapshot of the per-bucket counts.
func (h *Histogram) Buckets() [NumHistBuckets]int64 {
	var out [NumHistBuckets]int64
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) of the
// observed distribution: the upper bound of the bucket containing the
// q·count-th observation. Empty histograms return 0; q ≤ 0 returns the
// first non-empty bucket's bound, q ≥ 1 the last non-empty bucket's.
func (h *Histogram) Quantile(q float64) simtime.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based; q=0 selects the first.
	rank := int64(q*float64(n-1)) + 1
	var seen int64
	last := 0
	for i := 0; i < NumHistBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		last = i
		seen += c
		if seen >= rank {
			return BucketUpperBound(i)
		}
	}
	return BucketUpperBound(last)
}

// merge adds o's observations into h.
func (h *Histogram) merge(o *Histogram) {
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	for i := range h.buckets {
		if c := o.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
}
