package obsv

import (
	"sync"
	"sync/atomic"

	"clampi/internal/core"
	"clampi/internal/simtime"
)

// EventKind discriminates the trace-event union.
type EventKind uint8

const (
	// EventAccess is one classified get_c.
	EventAccess EventKind = iota
	// EventEviction is one evicted entry.
	EventEviction
	// EventAdjustment is one adaptive parameter change.
	EventAdjustment
	// EventEpoch is one epoch closure.
	EventEpoch
)

// String names the kind for exporters and diagnostics.
func (k EventKind) String() string {
	switch k {
	case EventAccess:
		return "access"
	case EventEviction:
		return "eviction"
	case EventAdjustment:
		return "adjustment"
	case EventEpoch:
		return "epoch"
	default:
		return "event(?)"
	}
}

// Event is one traced cache event: the flattened union of the core
// observer payloads, tagged by Kind. Seq is a global append sequence
// number so overwritten (dropped) spans are detectable.
type Event struct {
	Seq   uint64           `json:"seq"`
	Kind  string           `json:"kind"`
	Rank  int              `json:"rank"`
	Epoch int64            `json:"epoch"`
	Time  simtime.Duration `json:"vtime_ns"`

	// EventAccess fields.
	Access  string           `json:"access,omitempty"` // access-type name
	Partial bool             `json:"partial,omitempty"`
	Issued  bool             `json:"issued,omitempty"`
	Target  int              `json:"target,omitempty"`
	Disp    int              `json:"disp,omitempty"`
	Size    int              `json:"size,omitempty"`
	Lookup  simtime.Duration `json:"lookup_ns,omitempty"`
	Evict   simtime.Duration `json:"evict_ns,omitempty"`
	Copy    simtime.Duration `json:"copy_ns,omitempty"`
	Mgmt    simtime.Duration `json:"mgmt_ns,omitempty"`

	// EventEviction fields (Target/Disp shared with access).
	Bytes    int  `json:"bytes,omitempty"`
	Conflict bool `json:"conflict,omitempty"`

	// EventAdjustment fields.
	PrevIndexSlots   int `json:"prev_index_slots,omitempty"`
	IndexSlots       int `json:"index_slots,omitempty"`
	PrevStorageBytes int `json:"prev_storage_bytes,omitempty"`
	StorageBytes     int `json:"storage_bytes,omitempty"`

	// EventEpoch fields.
	Completed   int  `json:"completed,omitempty"`
	CopiedBytes int  `json:"copied_bytes,omitempty"`
	Invalidated bool `json:"invalidated,omitempty"`
}

// DefaultRingCapacity bounds a tracer created with capacity ≤ 0.
const DefaultRingCapacity = 4096

// Ring is a bounded ring buffer of trace events: appends are O(1), the
// newest capacity events are retained and older ones are overwritten.
// It is safe for concurrent use.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next atomic.Uint64 // clampi:atomic — total events ever appended; Total reads it lock-free
}

// NewRing returns a tracer retaining the newest capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Append records one event, stamping its sequence number.
func (t *Ring) Append(e Event) {
	t.mu.Lock()
	e.Seq = t.next.Add(1) - 1
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[int(e.Seq)%cap(t.buf)] = e
	}
	t.mu.Unlock()
}

// Len returns the number of retained events.
func (t *Ring) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Total returns the number of events ever appended (retained + dropped).
// It is lock-free: the sequence counter is atomic.
func (t *Ring) Total() uint64 {
	return t.next.Load()
}

// Snapshot returns the retained events oldest-first.
func (t *Ring) Snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		out = append(out, t.buf...)
		return out
	}
	// Full ring: the oldest retained event sits at next % cap.
	start := int(t.next.Load()) % cap(t.buf)
	out = append(out, t.buf[start:]...)
	out = append(out, t.buf[:start]...)
	return out
}

// accessEvent flattens a core.AccessEvent.
func accessEvent(e core.AccessEvent) Event {
	return Event{
		Kind: EventAccess.String(), Rank: e.Rank, Epoch: e.Epoch, Time: e.Time,
		Access: e.Type.String(), Partial: e.Partial, Issued: e.Issued,
		Target: e.Target, Disp: e.Disp, Size: e.Size,
		Lookup: e.Lookup, Evict: e.Evict, Copy: e.Copy, Mgmt: e.Mgmt,
	}
}

// evictionEvent flattens a core.EvictionEvent.
func evictionEvent(e core.EvictionEvent) Event {
	return Event{
		Kind: EventEviction.String(), Rank: e.Rank, Epoch: e.Epoch, Time: e.Time,
		Target: e.Target, Disp: e.Disp, Bytes: e.Bytes, Conflict: e.Conflict,
	}
}

// adjustmentEvent flattens a core.AdjustmentEvent.
func adjustmentEvent(e core.AdjustmentEvent) Event {
	return Event{
		Kind: EventAdjustment.String(), Rank: e.Rank, Epoch: e.Epoch, Time: e.Time,
		PrevIndexSlots: e.PrevIndexSlots, IndexSlots: e.IndexSlots,
		PrevStorageBytes: e.PrevStorageBytes, StorageBytes: e.StorageBytes,
	}
}

// epochEvent flattens a core.EpochEvent.
func epochEvent(e core.EpochEvent) Event {
	return Event{
		Kind: EventEpoch.String(), Rank: e.Rank, Epoch: e.Epoch, Time: e.Time,
		Completed: e.Completed, CopiedBytes: e.CopiedBytes, Invalidated: e.Invalidated,
	}
}
