package obsv

import (
	"strconv"
	"sync"
	"testing"

	"clampi/internal/blockcache"
	"clampi/internal/core"
	"clampi/internal/simtime"
)

func TestCounterGaugeRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gets_total", L("type", "hit"))
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels resolves to the same instance, independent of
	// label order.
	c2 := r.Counter("gets_total", L("type", "hit"))
	if c2 != c {
		t.Error("re-lookup returned a different counter")
	}
	multi := r.Counter("x", L("b", "2"), L("a", "1"))
	multi2 := r.Counter("x", L("a", "1"), L("b", "2"))
	if multi != multi2 {
		t.Error("label order changed identity")
	}
	// Different labels are a different series.
	if r.Counter("gets_total", L("type", "miss")) == c {
		t.Error("different labels returned the same counter")
	}
	g := r.Gauge("slots")
	g.Set(42)
	g.Set(17)
	if g.Value() != 17 {
		t.Errorf("gauge = %d, want 17", g.Value())
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("conflicting kind did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m")
	r.Gauge("m")
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Error("empty histogram not zero-valued")
	}

	h.Observe(100) // bucket of le=128
	if h.Count() != 1 || h.Sum() != 100 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
	// Single sample: every quantile reports its bucket bound.
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 128 {
			t.Errorf("Quantile(%v) = %v, want 128", q, got)
		}
	}

	h.Observe(1000)    // le=1024
	h.Observe(1000000) // le=2^20
	if got := h.Quantile(0); got != 128 {
		t.Errorf("p0 = %v, want 128", got)
	}
	if got := h.Quantile(1); got != 1<<20 {
		t.Errorf("p100 = %v, want 2^20", got)
	}
	if got := h.Quantile(0.5); got != 1024 {
		t.Errorf("p50 = %v, want 1024", got)
	}
	if h.Mean() != simtime.Duration((100+1000+1000000)/3) {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		d    simtime.Duration
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestRingWrapsAndOrders(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Append(Event{Rank: i})
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 6 {
		t.Errorf("Total = %d, want 6", r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	for i, e := range snap {
		if e.Rank != i+2 || e.Seq != uint64(i+2) {
			t.Errorf("snap[%d] = rank %d seq %d, want oldest-first 2..5", i, e.Rank, e.Seq)
		}
	}
}

func TestCollectorTranslatesEvents(t *testing.T) {
	reg := NewRegistry()
	ring := NewRing(16)
	col := NewCollector(reg, ring)

	col.OnAccess(core.AccessEvent{
		Rank: 0, Type: core.AccessHit, Size: 512, Lookup: 80, Copy: 200,
	})
	col.OnAccess(core.AccessEvent{
		Rank: 0, Type: core.AccessDirect, Issued: true, Size: 1024, Lookup: 80, Mgmt: 350,
	})
	col.OnEviction(core.EvictionEvent{Rank: 0, Bytes: 256, Conflict: true})
	col.OnEviction(core.EvictionEvent{Rank: 0, Bytes: 64})
	col.OnAdjustment(core.AdjustmentEvent{Rank: 0, PrevIndexSlots: 64, IndexSlots: 128, PrevStorageBytes: 1024, StorageBytes: 1024})
	col.OnEpochClose(core.EpochEvent{Rank: 0, Epoch: 3, Completed: 1, CopiedBytes: 1024, Invalidated: true})

	check := func(name string, want int64, labels ...Label) {
		t.Helper()
		if got := reg.Counter(name, labels...).Value(); got != want {
			t.Errorf("%s%v = %d, want %d", name, labels, got, want)
		}
	}
	check(MetricAccesses, 1, L("type", "hitting"))
	check(MetricAccesses, 1, L("type", "direct"))
	check(MetricAccesses, 0, L("type", "failing"))
	check(MetricGetBytes, 512+1024)
	check(MetricRemoteGets, 1)
	check(MetricEvictions, 1, L("kind", "conflict"))
	check(MetricEvictions, 1, L("kind", "capacity"))
	check(MetricEvictedBytes, 256+64)
	check(MetricAdjustments, 1)
	check(MetricEpochs, 1)
	check(MetricInvalidation, 1)
	check(MetricCopiedBytes, 1024)

	if g := reg.Gauge(MetricIndexSlots, L("rank", "0")).Value(); g != 128 {
		t.Errorf("index-slots gauge = %d, want 128", g)
	}
	h := reg.Histogram(MetricAccessVtime, L("type", "hitting"), L("phase", "total"))
	if h.Count() != 1 || h.Sum() != 280 {
		t.Errorf("hit total hist count=%d sum=%d, want 1/280", h.Count(), h.Sum())
	}
	// Zero-cost phases are skipped: the hit never evicted.
	if ev := reg.Histogram(MetricAccessVtime, L("type", "hitting"), L("phase", "evict")); ev.Count() != 0 {
		t.Errorf("evict phase observed %d times for an eviction-free hit", ev.Count())
	}
	if ring.Total() != 6 {
		t.Errorf("ring total = %d, want 6 events", ring.Total())
	}
	kinds := map[string]int{}
	for _, e := range ring.Snapshot() {
		kinds[e.Kind]++
	}
	if kinds["access"] != 2 || kinds["eviction"] != 2 || kinds["adjustment"] != 1 || kinds["epoch"] != 1 {
		t.Errorf("ring kinds = %v", kinds)
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("c", L("r", "0")).Add(3)
	b.Counter("c", L("r", "0")).Add(4)
	b.Counter("c", L("r", "1")).Add(5)
	a.Histogram("h").Observe(100)
	b.Histogram("h").Observe(1000)
	b.Gauge("g").Set(7)

	a.Merge(b)
	if got := a.Counter("c", L("r", "0")).Value(); got != 7 {
		t.Errorf("merged shared counter = %d, want 7", got)
	}
	if got := a.Counter("c", L("r", "1")).Value(); got != 5 {
		t.Errorf("merged new counter = %d, want 5", got)
	}
	if h := a.Histogram("h"); h.Count() != 2 || h.Sum() != 1100 {
		t.Errorf("merged histogram count=%d sum=%d", h.Count(), h.Sum())
	}
	if got := a.Gauge("g").Value(); got != 7 {
		t.Errorf("merged gauge = %d, want 7", got)
	}
}

// TestConcurrentCollector exercises the collector from many goroutines;
// meaningful under -race.
func TestConcurrentCollector(t *testing.T) {
	reg := NewRegistry()
	col := NewCollector(reg, NewRing(64))
	var wg sync.WaitGroup
	const workers, perWorker = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				col.OnAccess(core.AccessEvent{Rank: rank, Type: core.AccessHit, Size: 64, Lookup: 80})
				if i%10 == 0 {
					col.OnEviction(core.EvictionEvent{Rank: rank, Bytes: 64})
					col.OnEpochClose(core.EpochEvent{Rank: rank})
				}
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter(MetricAccesses, L("type", "hitting")).Value(); got != workers*perWorker {
		t.Errorf("accesses = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Counter(MetricEpochs).Value(); got != workers*perWorker/10 {
		t.Errorf("epochs = %d, want %d", got, workers*perWorker/10)
	}
}

// TestPublishSharedStats proves the per-shard bridge: after driving a
// concurrent cache, the published gauges sum to the cache's own totals
// and carry the caller's labels plus a shard label.
func TestPublishSharedStats(t *testing.T) {
	c, err := core.NewShared(func(target, disp int, dst []byte) error {
		for i := range dst {
			dst[i] = byte(target + disp + i)
		}
		return nil
	}, core.SharedParams{Shards: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := c.NewContext(0)
	dst := make([]byte, 256)
	const fills = 32
	for i := 0; i < fills; i++ {
		if err := x.Get(dst, 1, i*256); err != nil {
			t.Fatal(err)
		}
	}

	r := NewRegistry()
	PublishSharedStats(r, c, L("mode", "throughput"))

	var entries, fillSum, used int64
	for si := 0; si < c.NumShards(); si++ {
		l := []Label{L("mode", "throughput"), L("shard", strconv.Itoa(si))}
		entries += r.Gauge(MetricShardEntries, l...).Value()
		fillSum += r.Gauge(MetricShardFills, l...).Value()
		used += r.Gauge(MetricShardUsedBytes, l...).Value()
		if cap := r.Gauge(MetricShardCapBytes, l...).Value(); cap <= 0 {
			t.Fatalf("shard %d capacity gauge = %d", si, cap)
		}
		if occ := r.Gauge(MetricShardOccupancy, l...).Value(); occ < 0 || occ > 1000 {
			t.Fatalf("shard %d occupancy = %d permille", si, occ)
		}
	}
	if entries != int64(c.Len()) {
		t.Fatalf("entry gauges sum to %d, cache holds %d", entries, c.Len())
	}
	if fillSum != fills {
		t.Fatalf("fill gauges sum to %d, want %d", fillSum, fills)
	}
	if used < fills*256 {
		t.Fatalf("used gauges sum to %d, want >= %d", used, fills*256)
	}
}

// TestPublishLocalityStats proves the locality bridges: the four new
// Stats gauges, the per-distance-class breakdown and the L2 tier gauges
// all land in the registry with the expected labels and values.
func TestPublishLocalityStats(t *testing.T) {
	r := NewRegistry()
	PublishStats(r, core.Stats{L2Hits: 7, L2Fills: 3, SiblingForwards: 2, CheapSkips: 5})
	for name, want := range map[string]int64{
		"clampi_stats_l2_hits":          7,
		"clampi_stats_l2_fills":         3,
		"clampi_stats_sibling_forwards": 2,
		"clampi_stats_cheap_skips":      5,
	} {
		if got := r.Gauge(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	ds := make([]core.DistanceStats, 5)
	ds[2] = core.DistanceStats{Gets: 10, Hits: 6, Misses: 4, BytesFromNetwork: 4096, FillTime: 1000}
	ds[4] = core.DistanceStats{Gets: 3, Misses: 3, BytesFromNetwork: 768, FillTime: 9000}
	PublishDistanceStats(r, ds, L("rank", "0"))
	node := []Label{L("rank", "0"), L("class", "same_node")}
	if got := r.Gauge("clampi_dist_gets", node...).Value(); got != 10 {
		t.Errorf("same_node gets gauge = %d, want 10", got)
	}
	if got := r.Gauge("clampi_dist_hits", node...).Value(); got != 6 {
		t.Errorf("same_node hits gauge = %d, want 6", got)
	}
	far := []Label{L("rank", "0"), L("class", "other_group")}
	if got := r.Gauge("clampi_dist_fill_vtime_ns", far...).Value(); got != 9000 {
		t.Errorf("other_group fill time gauge = %d, want 9000", got)
	}
	if got := r.Gauge("clampi_dist_bytes_from_network", far...).Value(); got != 768 {
		t.Errorf("other_group network bytes gauge = %d, want 768", got)
	}

	l2, err := blockcache.NewL2(8<<10, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, blockcache.DefaultBlockSize)
	l2.Publish(1, 2, 0, src)
	dst := make([]byte, 128)
	if hit, fwd := l2.Lookup(0, 2, 64, dst); !hit || !fwd {
		t.Fatalf("lookup = hit %v fwd %v, want hit+forward", hit, fwd)
	}
	PublishL2Stats(r, l2.Stats(), L("node", "0"))
	n0 := L("node", "0")
	for name, want := range map[string]int64{
		"clampi_l2_lookups":  1,
		"clampi_l2_hits":     1,
		"clampi_l2_fills":    1,
		"clampi_l2_forwards": 1,
		"clampi_l2_misses":   0,
	} {
		if got := r.Gauge(name, n0).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
