package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Exporters. Output is deterministic: families sorted by name, series
// sorted by their canonical label string, so exports diff cleanly across
// runs and the unit tests can assert exact output.

// snapshotFamily is the export view of one metric family.
type snapshotFamily struct {
	name   string
	kind   metricKind
	series []snapshotSeries
}

type snapshotSeries struct {
	labels string // canonical k="v",... form ("" for none)
	metric any
}

// snapshot captures the registry under its lock.
func (r *Registry) snapshot() []snapshotFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]snapshotFamily, 0, len(r.families))
	for name, f := range r.families {
		sf := snapshotFamily{name: name, kind: f.kind}
		for key, m := range f.series {
			sf.series = append(sf.series, snapshotSeries{labels: key, metric: m})
		}
		sort.Slice(sf.series, func(i, j int) bool { return sf.series[i].labels < sf.series[j].labels })
		out = append(out, sf)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Histogram buckets are cumulative with le bounds
// of 2^i virtual nanoseconds; empty trailing buckets are elided.
func WritePrometheus(w io.Writer, r *Registry) error {
	for _, f := range r.snapshot() {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				if err := writeSample(w, f.name, s.labels, "", s.metric.(*Counter).Value()); err != nil {
					return err
				}
			case kindGauge:
				if err := writeSample(w, f.name, s.labels, "", s.metric.(*Gauge).Value()); err != nil {
					return err
				}
			case kindHistogram:
				if err := writeHistogram(w, f.name, s.labels, s.metric.(*Histogram)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// writeSample emits one `name{labels} value` line; extra is appended to
// the label set (used for histogram le bounds).
func writeSample(w io.Writer, name, labels, extra string, value int64) error {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all != "" {
		all = "{" + all + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, all, value)
	return err
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	buckets := h.Buckets()
	first, last := len(buckets), -1
	for i, c := range buckets {
		if c > 0 {
			if i < first {
				first = i
			}
			last = i
		}
	}
	var cum int64
	for i := first; i <= last; i++ {
		cum += buckets[i]
		le := fmt.Sprintf(`le="%d"`, BucketUpperBound(i))
		if err := writeSample(w, name+"_bucket", labels, le, cum); err != nil {
			return err
		}
	}
	if err := writeSample(w, name+"_bucket", labels, `le="+Inf"`, h.Count()); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", labels, "", int64(h.Sum())); err != nil {
		return err
	}
	return writeSample(w, name+"_count", labels, "", h.Count())
}

// JSON export schema.
type jsonMetric struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value,omitempty"`
	// Histogram-only fields.
	Count   int64        `json:"count,omitempty"`
	Sum     int64        `json:"sum,omitempty"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

type jsonBucket struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"` // non-cumulative per-bucket count
}

type jsonExport struct {
	Counters   []jsonMetric `json:"counters"`
	Gauges     []jsonMetric `json:"gauges"`
	Histograms []jsonMetric `json:"histograms"`
}

func labelMap(key string) map[string]string {
	ls := parseLabelKey(key)
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return m
}

// WriteJSON renders the registry as one stable JSON document.
func WriteJSON(w io.Writer, r *Registry) error {
	out := jsonExport{
		Counters:   []jsonMetric{},
		Gauges:     []jsonMetric{},
		Histograms: []jsonMetric{},
	}
	for _, f := range r.snapshot() {
		for _, s := range f.series {
			m := jsonMetric{Name: f.name, Labels: labelMap(s.labels)}
			switch f.kind {
			case kindCounter:
				m.Value = s.metric.(*Counter).Value()
				out.Counters = append(out.Counters, m)
			case kindGauge:
				m.Value = s.metric.(*Gauge).Value()
				out.Gauges = append(out.Gauges, m)
			case kindHistogram:
				h := s.metric.(*Histogram)
				m.Count = h.Count()
				m.Sum = int64(h.Sum())
				for i, c := range h.Buckets() {
					if c > 0 {
						m.Buckets = append(m.Buckets, jsonBucket{LE: int64(BucketUpperBound(i)), Count: c})
					}
				}
				out.Histograms = append(out.Histograms, m)
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteTrace renders the ring's retained events oldest-first as JSON
// lines (one event object per line).
func WriteTrace(w io.Writer, t *Ring) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Snapshot() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// WriteMetricsFile writes the registry to path: JSON when the path ends
// in .json, Prometheus text format otherwise.
func WriteMetricsFile(path string, r *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = WriteJSON(f, r)
	} else {
		err = WritePrometheus(f, r)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteTraceFile writes the ring's retained events to path as JSON lines.
func WriteTraceFile(path string, t *Ring) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = WriteTrace(f, t)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
