package obsv

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func exportFixture() *Registry {
	r := NewRegistry()
	r.Counter("clampi_accesses_total", L("type", "hitting")).Add(3)
	r.Counter("clampi_accesses_total", L("type", "direct")).Add(1)
	r.Gauge("clampi_index_slots", L("rank", "0")).Set(128)
	h := r.Histogram("clampi_access_vtime_ns", L("phase", "total"), L("type", "hitting"))
	h.Observe(100)  // le=128
	h.Observe(100)  // le=128
	h.Observe(1000) // le=1024
	return r
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, exportFixture()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE clampi_access_vtime_ns histogram
clampi_access_vtime_ns_bucket{phase="total",type="hitting",le="128"} 2
clampi_access_vtime_ns_bucket{phase="total",type="hitting",le="256"} 2
clampi_access_vtime_ns_bucket{phase="total",type="hitting",le="512"} 2
clampi_access_vtime_ns_bucket{phase="total",type="hitting",le="1024"} 3
clampi_access_vtime_ns_bucket{phase="total",type="hitting",le="+Inf"} 3
clampi_access_vtime_ns_sum{phase="total",type="hitting"} 1200
clampi_access_vtime_ns_count{phase="total",type="hitting"} 3
# TYPE clampi_accesses_total counter
clampi_accesses_total{type="direct"} 1
clampi_accesses_total{type="hitting"} 3
# TYPE clampi_index_slots gauge
clampi_index_slots{rank="0"} 128
`
	if got := b.String(); got != want {
		t.Errorf("prometheus output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	var a, b strings.Builder
	r := exportFixture()
	if err := WritePrometheus(&a, r); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two exports of the same registry differ")
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, exportFixture()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Counters []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels"`
			Value  int64             `json:"value"`
		} `json:"counters"`
		Gauges []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"gauges"`
		Histograms []struct {
			Name    string `json:"name"`
			Count   int64  `json:"count"`
			Sum     int64  `json:"sum"`
			Buckets []struct {
				LE    int64 `json:"le"`
				Count int64 `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(out.Counters) != 2 || len(out.Gauges) != 1 || len(out.Histograms) != 1 {
		t.Fatalf("series counts = %d/%d/%d, want 2/1/1",
			len(out.Counters), len(out.Gauges), len(out.Histograms))
	}
	// Sorted by label string: direct < hitting.
	if out.Counters[0].Labels["type"] != "direct" || out.Counters[0].Value != 1 {
		t.Errorf("counters[0] = %+v", out.Counters[0])
	}
	if out.Counters[1].Labels["type"] != "hitting" || out.Counters[1].Value != 3 {
		t.Errorf("counters[1] = %+v", out.Counters[1])
	}
	if out.Gauges[0].Value != 128 {
		t.Errorf("gauge value = %d", out.Gauges[0].Value)
	}
	h := out.Histograms[0]
	if h.Count != 3 || h.Sum != 1200 || len(h.Buckets) != 2 {
		t.Fatalf("histogram = %+v", h)
	}
	// JSON buckets are non-cumulative.
	if h.Buckets[0].LE != 128 || h.Buckets[0].Count != 2 || h.Buckets[1].LE != 1024 || h.Buckets[1].Count != 1 {
		t.Errorf("histogram buckets = %+v", h.Buckets)
	}
}

func TestWriteTrace(t *testing.T) {
	ring := NewRing(8)
	ring.Append(Event{Kind: "access", Rank: 1, Size: 64})
	ring.Append(Event{Kind: "epoch", Rank: 1, Completed: 2})
	var b strings.Builder
	if err := WriteTrace(&b, ring); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace lines = %d, want 2", len(lines))
	}
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d invalid JSON: %v", i, err)
		}
		if e.Seq != uint64(i) {
			t.Errorf("line %d seq = %d", i, e.Seq)
		}
	}
}

func TestWriteMetricsFile(t *testing.T) {
	dir := t.TempDir()
	r := exportFixture()

	jsonPath := filepath.Join(dir, "metrics.json")
	if err := WriteMetricsFile(jsonPath, r); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Error(".json file is not JSON")
	}

	promPath := filepath.Join(dir, "metrics.prom")
	if err := WriteMetricsFile(promPath, r); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# TYPE ") {
		t.Error(".prom file is not Prometheus text format")
	}
}
