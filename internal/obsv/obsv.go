// Package obsv is the observability layer of the CLaMPI reproduction
// (DESIGN.md §8): a metrics registry of atomic counters and gauges keyed
// by name+labels, log2-bucketed virtual-time latency histograms, a
// bounded ring-buffer tracer of structured cache events, and exporters
// (Prometheus text format and JSON).
//
// The package connects to the caching layer through core.Observer: a
// Collector translates the structured events emitted by internal/core
// into registry updates and ring appends. Every primitive is safe for
// concurrent use, so one Collector can be shared by all ranks of a
// Throughput-mode world; in per-rank deployments each rank owns a
// Registry and the results are combined with Registry.Merge.
//
// Invariant (enforced by internal/analysis/atomicfield): every field
// annotated // clampi:atomic — the counter, gauge and histogram cells
// and the trace-ring sequence — is accessed exclusively through
// sync/atomic operations, keeping the hot path lock-free.
package obsv

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a metric.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// labelKey canonicalizes a label set: sorted by key, joined as
// k="v" pairs. It doubles as the exporter's rendering.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	return b.String()
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64 // clampi:atomic
}

// Add increments the counter by d (negative deltas are ignored so a
// counter can never go backwards).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64 // clampi:atomic
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind tags a registry family for the exporters.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// family groups all metrics sharing one name (differing only in labels).
type family struct {
	name string
	kind metricKind
	// series maps the canonical label string to the metric instance
	// (*Counter, *Gauge or *Histogram depending on kind).
	series map[string]any
	labels map[string]string // canonical label string → rendered form (same value; kept for ordering)
}

// Registry holds named metrics. Lookup (Counter/Gauge/Histogram) takes a
// mutex; the returned instances update lock-free, so hot paths resolve
// their metrics once and then only touch atomics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the metric instance for (name, labels), creating family
// and series as needed. A name registered with a different kind panics:
// that is a programming error, not an operational condition.
func (r *Registry) lookup(name string, kind metricKind, mk func() any, labels []Label) any {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, series: make(map[string]any), labels: make(map[string]string)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic("obsv: metric " + name + " registered with conflicting kinds")
	}
	m, ok := f.series[key]
	if !ok {
		m = mk()
		f.series[key] = m
		f.labels[key] = key
	}
	return m
}

// Counter returns the counter registered under name+labels, creating it
// at zero on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, kindCounter, func() any { return &Counter{} }, labels).(*Counter)
}

// Gauge returns the gauge registered under name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, kindGauge, func() any { return &Gauge{} }, labels).(*Gauge)
}

// Histogram returns the histogram registered under name+labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.lookup(name, kindHistogram, func() any { return &Histogram{} }, labels).(*Histogram)
}

// Merge folds every metric of o into r: counters and histogram buckets
// add, gauges take o's value (last writer wins, matching the
// per-rank-then-aggregate flow where each gauge exists in one rank's
// registry only).
func (r *Registry) Merge(o *Registry) {
	o.mu.Lock()
	// Snapshot o's structure so we never hold both mutexes at once.
	type item struct {
		name   string
		kind   metricKind
		labels string
		metric any
	}
	var items []item
	for name, f := range o.families {
		for key, m := range f.series {
			items = append(items, item{name: name, kind: f.kind, labels: key, metric: m})
		}
	}
	o.mu.Unlock()

	for _, it := range items {
		labels := parseLabelKey(it.labels)
		switch it.kind {
		case kindCounter:
			r.Counter(it.name, labels...).Add(it.metric.(*Counter).Value())
		case kindGauge:
			r.Gauge(it.name, labels...).Set(it.metric.(*Gauge).Value())
		case kindHistogram:
			r.Histogram(it.name, labels...).merge(it.metric.(*Histogram))
		}
	}
}

// parseLabelKey inverts labelKey (k="v",k2="v2" → []Label).
func parseLabelKey(s string) []Label {
	if s == "" {
		return nil
	}
	var out []Label
	for _, part := range strings.Split(s, `",`) {
		kv := strings.SplitN(part, `="`, 2)
		if len(kv) != 2 {
			continue
		}
		out = append(out, Label{Key: kv[0], Value: strings.TrimSuffix(kv[1], `"`)})
	}
	return out
}
