package obsv

import (
	"strconv"

	"clampi/internal/blockcache"
	"clampi/internal/core"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// Metric names emitted by the Collector. Virtual-time histograms carry
// the _vtime_ns suffix to make the unit (virtual nanoseconds, not wall
// time) explicit in dashboards.
const (
	MetricAccesses     = "clampi_accesses_total"      // counter{type}
	MetricPartialHits  = "clampi_partial_hits_total"  // counter
	MetricRemoteGets   = "clampi_remote_gets_total"   // counter (accesses that issued a network get)
	MetricGetBytes     = "clampi_get_bytes_total"     // counter (payload requested by gets)
	MetricEvictions    = "clampi_evictions_total"     // counter{kind=capacity|conflict}
	MetricEvictedBytes = "clampi_evicted_bytes_total" // counter
	MetricAdjustments  = "clampi_adjustments_total"   // counter
	MetricEpochs       = "clampi_epochs_total"        // counter
	MetricInvalidation = "clampi_invalidations_total" // counter (epoch-closure invalidations)
	MetricCopiedBytes  = "clampi_copied_bytes_total"  // counter (user→cache at epoch closure)
	MetricAccessVtime  = "clampi_access_vtime_ns"     // histogram{type,phase}
	MetricIndexSlots   = "clampi_index_slots"         // gauge{rank}
	MetricStorageBytes = "clampi_storage_bytes"       // gauge{rank}

	// MetricNotifyDepth is the notification queue-depth gauge
	// (DESIGN.md §16): the number of delivered but not yet drained
	// descriptors, sampled by the workload (see PublishNotifyDepth).
	MetricNotifyDepth = "clampi_notify_queue_depth" // gauge{rank}

	// Per-shard gauges of the concurrent cache (core.Shared), published
	// by PublishSharedStats. Occupancy is exported in permille so the
	// integer gauge keeps three digits of resolution.
	MetricShardEntries   = "clampi_shard_entries"            // gauge{shard}
	MetricShardUsedBytes = "clampi_shard_used_bytes"         // gauge{shard}
	MetricShardCapBytes  = "clampi_shard_capacity_bytes"     // gauge{shard}
	MetricShardOccupancy = "clampi_shard_occupancy_permille" // gauge{shard}
	MetricShardRetries   = "clampi_shard_seqlock_retries"    // gauge{shard}
	MetricShardFills     = "clampi_shard_fills"              // gauge{shard}
	MetricShardEvictions = "clampi_shard_evictions"          // gauge{shard}
)

// Access phases of the latency histograms. "total" is the summed
// cache-management cost of the access.
var phases = [...]string{"lookup", "evict", "copy", "mgmt", "total"}

const (
	phaseLookup = iota
	phaseEvict
	phaseCopy
	phaseMgmt
	phaseTotal
	numPhases
)

// numAccessTypes covers core's AccessHit..AccessFailing.
const numAccessTypes = int(core.AccessFailing) + 1

// Collector implements core.Observer: it translates the caching layer's
// structured events into registry counters/histograms and, when a Ring
// is attached, trace events. All hot-path metric handles are resolved at
// construction, so per-event work is a handful of atomic adds. A single
// Collector may be shared by every rank of a world (events carry the
// rank id) or created per rank for per-rank registries.
type Collector struct {
	reg  *Registry
	ring *Ring // nil disables tracing

	accesses    [numAccessTypes]*Counter
	phaseHist   [numAccessTypes][numPhases]*Histogram
	partialHits *Counter
	remoteGets  *Counter
	getBytes    *Counter
	evCapacity  *Counter
	evConflict  *Counter
	evBytes     *Counter
	adjustments *Counter
	epochs      *Counter
	invalidates *Counter
	copiedBytes *Counter
}

var _ core.Observer = (*Collector)(nil)

// NewCollector wires a registry (required) and a trace ring (optional,
// nil disables tracing) into an observer installable via
// core.Params.Observer / clampi.WithObserver.
func NewCollector(reg *Registry, ring *Ring) *Collector {
	c := &Collector{
		reg:         reg,
		ring:        ring,
		partialHits: reg.Counter(MetricPartialHits),
		remoteGets:  reg.Counter(MetricRemoteGets),
		getBytes:    reg.Counter(MetricGetBytes),
		evCapacity:  reg.Counter(MetricEvictions, L("kind", "capacity")),
		evConflict:  reg.Counter(MetricEvictions, L("kind", "conflict")),
		evBytes:     reg.Counter(MetricEvictedBytes),
		adjustments: reg.Counter(MetricAdjustments),
		epochs:      reg.Counter(MetricEpochs),
		invalidates: reg.Counter(MetricInvalidation),
		copiedBytes: reg.Counter(MetricCopiedBytes),
	}
	for t := 0; t < numAccessTypes; t++ {
		typ := core.AccessType(t).String()
		c.accesses[t] = reg.Counter(MetricAccesses, L("type", typ))
		for p, phase := range phases {
			c.phaseHist[t][p] = reg.Histogram(MetricAccessVtime, L("type", typ), L("phase", phase))
		}
	}
	return c
}

// Registry returns the collector's registry.
func (c *Collector) Registry() *Registry { return c.reg }

// Ring returns the collector's trace ring (nil when tracing is off).
func (c *Collector) Ring() *Ring { return c.ring }

// OnAccess implements core.Observer.
func (c *Collector) OnAccess(e core.AccessEvent) {
	t := int(e.Type)
	if t < 0 || t >= numAccessTypes {
		t = 0
	}
	c.accesses[t].Inc()
	c.getBytes.Add(int64(e.Size))
	if e.Partial {
		c.partialHits.Inc()
	}
	if e.Issued {
		c.remoteGets.Inc()
	}
	// Phase histograms skip phases the access never entered (zero
	// cost), so bucket 0 counts genuinely-instant work, not absences;
	// the total is always observed.
	c.observePhase(t, phaseLookup, e.Lookup)
	c.observePhase(t, phaseEvict, e.Evict)
	c.observePhase(t, phaseCopy, e.Copy)
	c.observePhase(t, phaseMgmt, e.Mgmt)
	c.phaseHist[t][phaseTotal].Observe(e.Total())
	if c.ring != nil {
		c.ring.Append(accessEvent(e))
	}
}

func (c *Collector) observePhase(t, p int, d simtime.Duration) {
	if d > 0 {
		c.phaseHist[t][p].Observe(d)
	}
}

// OnEviction implements core.Observer.
func (c *Collector) OnEviction(e core.EvictionEvent) {
	if e.Conflict {
		c.evConflict.Inc()
	} else {
		c.evCapacity.Inc()
	}
	c.evBytes.Add(int64(e.Bytes))
	if c.ring != nil {
		c.ring.Append(evictionEvent(e))
	}
}

// OnAdjustment implements core.Observer.
func (c *Collector) OnAdjustment(e core.AdjustmentEvent) {
	c.adjustments.Inc()
	rank := L("rank", strconv.Itoa(e.Rank))
	c.reg.Gauge(MetricIndexSlots, rank).Set(int64(e.IndexSlots))
	c.reg.Gauge(MetricStorageBytes, rank).Set(int64(e.StorageBytes))
	if c.ring != nil {
		c.ring.Append(adjustmentEvent(e))
	}
}

// OnEpochClose implements core.Observer.
func (c *Collector) OnEpochClose(e core.EpochEvent) {
	c.epochs.Inc()
	c.copiedBytes.Add(int64(e.CopiedBytes))
	if e.Invalidated {
		c.invalidates.Inc()
	}
	if c.ring != nil {
		c.ring.Append(epochEvent(e))
	}
}

// PublishStats exports a core.Stats snapshot into the registry as gauges
// under the given label set — the bridge for final per-run totals that
// flow through Stats aggregation rather than through live events.
func PublishStats(reg *Registry, s core.Stats, labels ...Label) {
	set := func(name string, v int64) {
		reg.Gauge(name, labels...).Set(v)
	}
	set("clampi_stats_gets", s.Gets)
	set("clampi_stats_hits", s.Hits)
	set("clampi_stats_full_hits", s.FullHits)
	set("clampi_stats_partial_hits", s.PartialHits)
	set("clampi_stats_pending_hits", s.PendingHits)
	set("clampi_stats_direct", s.Direct)
	set("clampi_stats_conflicting", s.Conflicting)
	set("clampi_stats_capacity", s.Capacity)
	set("clampi_stats_failing", s.Failing)
	set("clampi_stats_prefetches", s.Prefetches)
	set("clampi_stats_evictions", s.Evictions)
	set("clampi_stats_invalidations", s.Invalidations)
	set("clampi_stats_adjustments", s.Adjustments)
	set("clampi_stats_bytes_from_cache", s.BytesFromCache)
	set("clampi_stats_bytes_from_network", s.BytesFromNetwork)
	set("clampi_stats_retries", s.Retries)
	set("clampi_stats_timeouts", s.Timeouts)
	set("clampi_stats_stale_serves", s.StaleServes)
	set("clampi_stats_breaker_opens", s.BreakerOpens)
	set("clampi_stats_corrupt_fills", s.CorruptFills)
	set("clampi_stats_notifications", s.Notifications)
	set("clampi_stats_notify_invalidations", s.NotifyInvalidations)
	set("clampi_stats_notify_patches", s.NotifyPatches)
	set("clampi_stats_write_hits", s.WriteHits)
	set("clampi_stats_write_backs", s.WriteBacks)
	set("clampi_stats_dirty_flushes", s.DirtyFlushes)
	set("clampi_stats_l2_hits", s.L2Hits)
	set("clampi_stats_l2_fills", s.L2Fills)
	set("clampi_stats_sibling_forwards", s.SiblingForwards)
	set("clampi_stats_cheap_skips", s.CheapSkips)
	set("clampi_stats_lookup_vtime_ns", int64(s.LookupTime))
	set("clampi_stats_evict_vtime_ns", int64(s.EvictTime))
	set("clampi_stats_copy_vtime_ns", int64(s.CopyTime))
	set("clampi_stats_mgmt_vtime_ns", int64(s.MgmtTime))
}

// PublishNotifyDepth exports the notification queue-depth gauge: depth
// delivered-but-undrained descriptors at sampling time (feed it
// core.Cache.NotifyQueueDepth, or a workload's observed maximum for
// final per-run totals).
func PublishNotifyDepth(reg *Registry, depth int, labels ...Label) {
	reg.Gauge(MetricNotifyDepth, labels...).Set(int64(depth))
}

// PublishDistanceStats exports a locality-aware cache's per-distance-
// class breakdown under a "class" label — empty input (locality-blind
// backend) publishes nothing.
func PublishDistanceStats(reg *Registry, ds []core.DistanceStats, labels ...Label) {
	for i, d := range ds {
		name := strconv.Itoa(i)
		if i < len(rma.DistanceClassNames) {
			name = rma.DistanceClassNames[i]
		}
		l := make([]Label, 0, len(labels)+1)
		l = append(append(l, labels...), L("class", name))
		set := func(metric string, v int64) {
			reg.Gauge(metric, l...).Set(v)
		}
		set("clampi_dist_gets", d.Gets)
		set("clampi_dist_hits", d.Hits)
		set("clampi_dist_misses", d.Misses)
		set("clampi_dist_bytes_from_network", d.BytesFromNetwork)
		set("clampi_dist_fill_vtime_ns", int64(d.FillTime))
	}
}

// PublishL2Stats exports one node-shared L2 tier's counters. The tier is
// shared by sibling ranks, so publish it once per node (not per rank),
// with a label identifying the node.
func PublishL2Stats(reg *Registry, s blockcache.L2Stats, labels ...Label) {
	set := func(name string, v int64) {
		reg.Gauge(name, labels...).Set(v)
	}
	set("clampi_l2_lookups", s.Lookups)
	set("clampi_l2_hits", s.Hits)
	set("clampi_l2_misses", s.Misses)
	set("clampi_l2_fills", s.Fills)
	set("clampi_l2_forwards", s.Forwards)
	set("clampi_l2_overwrites", s.Overwrites)
	set("clampi_l2_seqlock_retries", s.Retries)
}

// PublishSharedStats exports a concurrent cache's per-shard gauges —
// entries, occupancy, seqlock retries, fills, evictions — under a
// "shard" label, alongside any labels the caller supplies. It is the
// PublishStats-style bridge for core.Shared: the snapshot is lock-free
// on the cache side, so publishing mid-run never perturbs readers, and
// the result makes index and storage contention visible in -metrics
// output (which shard is hot, which is churning, who is retrying).
func PublishSharedStats(reg *Registry, c *core.Shared, labels ...Label) {
	for si := 0; si < c.NumShards(); si++ {
		s := c.ShardStats(si)
		l := make([]Label, 0, len(labels)+1)
		l = append(append(l, labels...), L("shard", strconv.Itoa(si)))
		set := func(name string, v int64) {
			reg.Gauge(name, l...).Set(v)
		}
		set(MetricShardEntries, int64(s.Entries))
		set(MetricShardUsedBytes, s.UsedBytes)
		set(MetricShardCapBytes, int64(s.CapacityBytes))
		set(MetricShardOccupancy, int64(s.Occupancy()*1000))
		set(MetricShardRetries, int64(s.SeqlockRetries))
		set(MetricShardFills, s.Fills)
		set(MetricShardEvictions, s.Evictions)
	}
}
