package core

import (
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/mpi"
)

func TestPrefetchWarmsCache(t *testing.T) {
	withCache(t, 4096, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		if err := c.Prefetch(1, 512, 256); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		if c.CachedEntries() != 1 {
			t.Errorf("CachedEntries = %d", c.CachedEntries())
		}
		// The first application Get is already a pure hit.
		dst := make([]byte, 256)
		if err := c.Get(dst, datatype.Byte, 256, 1, 512); err != nil {
			return err
		}
		if a := c.LastAccess(); a.Type != AccessHit || a.Issued {
			t.Errorf("post-prefetch get = %+v, want pure hit", a)
		}
		checkData(t, dst, 512)
		s := c.Stats()
		if s.Prefetches != 1 || s.Gets != 2 {
			t.Errorf("stats = %s", s.String())
		}
		return c.CheckIntegrity()
	})
}

func TestPrefetchOfCachedDataIsHit(t *testing.T) {
	withCache(t, 4096, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 128)
		if err := c.Get(dst, datatype.Byte, 128, 1, 0); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		if err := c.Prefetch(1, 0, 128); err != nil {
			return err
		}
		if a := c.LastAccess(); a.Type != AccessHit {
			t.Errorf("prefetch of cached data = %v", a.Type)
		}
		if err := c.Prefetch(1, 0, 0); err != nil { // no-op
			return err
		}
		s := c.Stats()
		if s.Prefetches != 1 || s.Gets != 2 {
			t.Errorf("stats = %s", s.String())
		}
		return win.FlushAll()
	})
}
