package core

import (
	"slices"

	"math"

	"clampi/internal/cuckoo"
	"clampi/internal/simtime"
)

// temporalScore is R_T(x) = x.last / i: the older the last matching get,
// the lower the score (§III-D1).
func (c *Cache) temporalScore(e *entry) float64 {
	if c.getSeq == 0 {
		return 0
	}
	return float64(e.last) / float64(c.getSeq)
}

// positionalScore is R_P(c) = min(|ags − d_c| / ags, 1): entries whose
// adjacent free space is close to the average get size score low — i.e.
// evicting them likely frees a hole of a usable size (§III-C2).
func (c *Cache) positionalScore(e *entry) float64 {
	ags := c.avgGetSize()
	if ags <= 0 {
		return 1
	}
	d := float64(c.store.AdjacentFree(e.region))
	s := math.Abs(ags-d) / ags
	if s > 1 {
		return 1
	}
	return s
}

// score combines the two factors per the configured scheme: R = R_P × R_T
// for the Full scheme; the ablation schemes use one factor only
// (Figs. 10–11). In cost-aware mode (DESIGN.md §15) the score is
// additionally weighted by the entry's refill cost, so at equal recency
// a cheap-to-refill (near-target) entry scores lower and loses the
// victim comparison to an expensive (far-target) one. The weight is a
// constant factor per (target, size), so the ablation orderings within
// one distance class are unchanged.
func (c *Cache) score(e *entry) float64 {
	var s float64
	switch c.params.Scheme {
	case SchemeTemporal:
		s = c.temporalScore(e)
	case SchemePositional:
		s = c.positionalScore(e)
	default:
		s = c.positionalScore(e) * c.temporalScore(e)
	}
	if c.costAware() {
		s *= c.evictWeight(e)
	}
	return s
}

// selectCapacityVictim implements the sampling procedure of §III-D: visit
// M consecutive index slots from a random start (wrapping at most once),
// extending the scan until at least one evictable entry has been seen —
// v_i = max(M, k_i) — and return the lowest-scoring CACHED entry among
// the visited ones. PENDING entries are not evictable: their payload is
// still in flight and same-epoch waiters may reference them. Returns nil
// if the index holds no evictable entry.
func (c *Cache) selectCapacityVictim() (*entry, simtime.Duration) {
	var (
		victim   *entry
		visited  int
		nonEmpty int
	)
	d := c.chargeFn(func() {
		best := math.Inf(1)
		start := c.idx.RandomSlot()
		c.idx.Scan(start, func(_ int, _ cuckoo.Key, e *entry, used bool) bool {
			visited++
			if used && e.state == stateCached {
				nonEmpty++
				if s := c.score(e); s < best {
					best = s
					victim = e
				}
			}
			// Stop once the sample size is reached AND at least
			// one candidate was seen; otherwise keep scanning
			// (the paper's v_i = max(M, k_i)).
			return visited < c.params.SampleSize || nonEmpty == 0
		})
	}, func() simtime.Duration {
		return simtime.Duration(visited)*CostPerScanSlot + simtime.Duration(nonEmpty)*CostPerScoredEntry
	})
	c.stats.EvictionScans++
	c.stats.VisitedSlots += int64(visited)
	c.stats.NonEmptyVisited += int64(nonEmpty)
	c.stats.EvictTime += d
	return victim, d
}

// scoredVictim is one capacity-eviction candidate of a batch's victim
// reservoir, carrying the score it had when the reservoir was filled.
type scoredVictim struct {
	e *entry
	s float64
}

// fillVictimPool runs ONE sampling scan sized for a whole batch: visit
// at least M consecutive slots from a random start, extending the scan
// until `want` evictable entries have been seen (or the table wraps),
// and keep every CACHED occupant sorted by descending score — so
// nextBatchVictim pops the lowest-scoring candidates first. The scan is
// charged once, amortizing the per-eviction sampling of §III-D across
// the batch's capacity evictions.
func (c *Cache) fillVictimPool(want int) {
	c.bvict = c.bvict[:0]
	if want <= 0 {
		return
	}
	var visited, nonEmpty int
	d := c.chargeFn(func() {
		start := c.idx.RandomSlot()
		c.idx.Scan(start, func(_ int, _ cuckoo.Key, e *entry, used bool) bool {
			visited++
			if used && e.state == stateCached {
				nonEmpty++
				c.bvict = append(c.bvict, scoredVictim{e: e, s: c.score(e)})
			}
			return visited < c.params.SampleSize || nonEmpty < want
		})
		slices.SortFunc(c.bvict, func(a, b scoredVictim) int {
			switch {
			case a.s > b.s:
				return -1
			case a.s < b.s:
				return 1
			default:
				return 0
			}
		})
	}, func() simtime.Duration {
		return simtime.Duration(visited)*CostPerScanSlot + simtime.Duration(nonEmpty)*CostPerScoredEntry
	})
	c.stats.EvictionScans++
	c.stats.VisitedSlots += int64(visited)
	c.stats.NonEmptyVisited += int64(nonEmpty)
	c.stats.EvictTime += d
}

// nextBatchVictim pops the lowest-scoring candidate that is still
// evictable off the reservoir; nil once it is drained (the caller then
// falls back to a fresh per-miss scan).
func (c *Cache) nextBatchVictim() *entry {
	for n := len(c.bvict); n > 0; n = len(c.bvict) {
		v := c.bvict[n-1].e
		c.bvict[n-1].e = nil
		c.bvict = c.bvict[:n-1]
		if v.state == stateCached {
			return v
		}
	}
	return nil
}

// dropVictimPool clears the reservoir at the end of a batch, dropping
// its entry references while keeping capacity.
func (c *Cache) dropVictimPool() {
	for i := range c.bvict {
		c.bvict[i].e = nil
	}
	c.bvict = c.bvict[:0]
}

// selectConflictVictim picks the victim of a conflicting access among the
// homeless element's candidate slots (the tail of the Cuckoo insertion
// path, §III-C1): the lowest-scoring CACHED occupant. Returns -1 if none
// of the candidates is evictable (all PENDING).
func (c *Cache) selectConflictVictim(candidates [cuckoo.NumHashes]int) (int, simtime.Duration) {
	victimSlot := -1
	d := c.charge(cuckoo.NumHashes*CostPerScoredEntry, func() {
		best := math.Inf(1)
		for _, s := range candidates {
			_, e, used := c.idx.At(s)
			if !used || e.state != stateCached {
				continue
			}
			if sc := c.score(e); sc < best {
				best = sc
				victimSlot = s
			}
		}
	})
	c.stats.EvictTime += d
	return victimSlot, d
}
