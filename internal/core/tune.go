package core

// Adaptive parameter selection (paper §III-E1).
//
// The tuner runs at epoch closures, once at least TuneInterval gets have
// been observed since the previous evaluation. It inspects the counters
// accumulated over that window and applies at most one adjustment:
//
//   - conflicting/gets > ConflictThreshold        → grow |I_w|
//   - eviction-scan density q < SparsityThreshold → shrink |I_w|
//   - (capacity+failing)/gets > CapacityThreshold → grow |S_w|
//   - hits/gets > StableThreshold and free space
//     above FreeSpaceThreshold                    → shrink |S_w|
//
// Changing either parameter requires invalidating the cache, so every
// adjustment is counted (the paper annotates figures with the number of
// invalidations/adjustments performed).

// minIndexSlots bounds adaptive shrinking so the table stays usable.
const minIndexSlots = 64

// minStorageBytes bounds adaptive shrinking of S_w.
const minStorageBytes = 4096

// tune evaluates the adaptive policy over the stats window since the last
// evaluation. It must only run at an epoch boundary (no in-flight
// PENDING entries rely on the index/storage being stable).
func (c *Cache) tune() {
	// The observation window is the delta of the running totals since the
	// last evaluation — a snapshot subtraction instead of a second
	// counter increment at every access site.
	win := c.stats.Sub(c.tuneSnap)
	s := &win
	gets := float64(s.Gets)
	if gets == 0 {
		return
	}
	conflictRate := float64(s.Conflicting) / gets
	capFailRate := float64(s.Capacity+s.Failing) / gets
	hitRate := float64(s.Hits) / gets
	freeFrac := float64(c.store.FreeBytes()) / float64(c.store.Capacity())
	q := 1.0
	if s.VisitedSlots > 0 {
		q = float64(s.NonEmptyVisited) / float64(s.VisitedSlots)
	}

	// Growth conditions are evaluated before shrink conditions:
	// conflicting and capacity/failing accesses mean requests are not
	// being cached at all, which dominates any memory-footprint
	// concern. Shrinks only apply to a cache that is otherwise healthy.
	prevIdx, prevMem := c.idx.Cap(), c.store.Capacity()
	adjusted := false
	switch {
	case conflictRate > c.params.ConflictThreshold:
		adjusted = c.resizeIndex(c.params.IndexGrowFactor)
	case capFailRate > c.params.CapacityThreshold:
		adjusted = c.resizeStorage(c.params.MemGrowFactor)
	case s.EvictionScans > 0 && q < c.params.SparsityThreshold:
		adjusted = c.resizeIndex(c.params.IndexShrinkFactor)
	case hitRate > c.params.StableThreshold && freeFrac > c.params.FreeSpaceThreshold:
		adjusted = c.resizeStorage(c.params.MemShrinkFactor)
	}
	if adjusted {
		c.stats.Adjustments++
		c.invalidate()
		if c.obs != nil {
			c.obs.OnAdjustment(AdjustmentEvent{
				Rank:             c.rank,
				Epoch:            c.win.Epoch(),
				Time:             c.clock.Now(),
				PrevIndexSlots:   prevIdx,
				IndexSlots:       c.idx.Cap(),
				PrevStorageBytes: prevMem,
				StorageBytes:     c.store.Capacity(),
			})
		}
	}
	// Start a fresh observation window either way.
	c.tuneSnap = c.stats
}

// resizeIndex applies factor to |I_w|, clamped to
// [minIndexSlots, MaxIndexSlots]. Returns false if clamping nullified the
// change. The new table is created empty: a parameter change implies
// invalidation anyway (§III-E).
func (c *Cache) resizeIndex(factor float64) bool {
	cur := c.idx.Cap()
	next := int(float64(cur) * factor)
	if next < minIndexSlots {
		next = minIndexSlots
	}
	if next > c.params.MaxIndexSlots {
		next = c.params.MaxIndexSlots
	}
	if next == cur {
		return false
	}
	c.charge(CostInvalidateBase, func() {
		c.idx = newIndex(next, c.params.Seed)
	})
	return true
}

// resizeStorage applies factor to |S_w|, clamped to
// [minStorageBytes, MaxStorageBytes].
func (c *Cache) resizeStorage(factor float64) bool {
	cur := c.store.Capacity()
	next := int(float64(cur) * factor)
	if next < minStorageBytes {
		next = minStorageBytes
	}
	if next > c.params.MaxStorageBytes {
		next = c.params.MaxStorageBytes
	}
	if next == cur {
		return false
	}
	c.charge(CostInvalidateBase, func() {
		c.store.Resize(next)
	})
	return true
}
