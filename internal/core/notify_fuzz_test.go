package core

// FuzzNotifyCoherence drives a random script of notified writes, cached
// reads and epoch fences through a 2-rank world and checks every read
// against a model region maintained in plain Go: a read must return
// exactly the bytes the model holds at read time — the fully old or
// fully new value of every written span, never a torn mix and never a
// stale span whose notification was already drained. The tiny
// notification queue makes overflow (and its conservative
// full-invalidation fallback) a routinely fuzzed path rather than a
// corner case.

import (
	"bytes"
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/mpi"
)

const (
	fuzzSlots    = 8
	fuzzSlotSize = 32
	fuzzRegion   = fuzzSlots * fuzzSlotSize
	fuzzMaxOps   = 64
)

// fuzzOp is one decoded script step.
type fuzzOp struct {
	kind int // 0 full-slot write, 1 read, 2 fence, 3 sub-span write
	slot int
	val  byte
	off  int // sub-span writes: offset within the slot
	n    int // sub-span writes: span length
}

// decodeFuzzScript turns raw fuzz input into a bounded op script, one op
// per input byte pair. Both ranks decode the same input, so their
// collective schedules agree by construction.
func decodeFuzzScript(data []byte) []fuzzOp {
	var ops []fuzzOp
	for i := 0; i+1 < len(data) && len(ops) < fuzzMaxOps; i += 2 {
		cmd, arg := data[i], data[i+1]
		op := fuzzOp{
			kind: int(cmd) % 4,
			slot: int(arg) % fuzzSlots,
			val:  byte(1 + (len(ops)*37)%250),
		}
		if op.kind == 3 {
			op.off = (int(arg) * 7) % (fuzzSlotSize - 8)
			op.n = 8
		}
		ops = append(ops, op)
	}
	return ops
}

func FuzzNotifyCoherence(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0})                         // write slot 0, read slot 0
	f.Add([]byte{0, 1, 2, 0, 1, 1})                   // write, fence, read
	f.Add([]byte{0, 2, 0, 2, 0, 2, 1, 2})             // repeated same-slot writes
	f.Add([]byte{3, 4, 1, 4, 2, 0, 3, 4, 1, 4})       // sub-span writes
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5}) // queue pressure
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeFuzzScript(data)
		if len(ops) == 0 {
			return
		}
		err := mpi.Run(2, mpi.Config{}, func(r *mpi.Rank) error {
			region := make([]byte, fuzzRegion)
			if r.ID() == 1 {
				for i := range region {
					region[i] = pattern(i)
				}
			}
			win := r.WinCreate(region, nil)
			defer win.Free()
			var c *Cache
			var fnErr error
			if r.ID() == 0 {
				// A deliberately tiny queue: long write bursts overflow it
				// and must fall back to full invalidation.
				c, fnErr = New(win, Params{NotifyTargeted: true, NotifyQueueCap: 8})
				if fnErr != nil {
					return fnErr
				}
			}
			if fnErr = win.LockAll(); fnErr != nil {
				return fnErr
			}
			// model mirrors what rank 1's region holds after each round's
			// writes; reads are checked against it on rank 0.
			model := make([]byte, fuzzRegion)
			for i := range model {
				model[i] = pattern(i)
			}
			type readCheck struct {
				slot int
				got  []byte
				want []byte
			}
			var checks []readCheck
			// Rounds are fence-delimited. Within a round every write
			// happens-before every read (barrier between), so at read time
			// the model is exact: notifications for all of the round's
			// writes are already queued at the reader.
			next := 0
			for next < len(ops) {
				end := next
				for end < len(ops) && ops[end].kind != 2 {
					end++
				}
				round := ops[next:end]
				if end < len(ops) {
					end++ // consume the fence op
				}
				for _, op := range round { // writes: rank 1; model: both
					switch op.kind {
					case 0:
						lo := op.slot * fuzzSlotSize
						for i := 0; i < fuzzSlotSize; i++ {
							model[lo+i] = op.val
						}
						if r.ID() == 1 && fnErr == nil {
							fnErr = win.PutNotify(model[lo:lo+fuzzSlotSize], datatype.Byte,
								fuzzSlotSize, 1, lo, uint32(op.slot))
						}
					case 3:
						lo := op.slot*fuzzSlotSize + op.off
						for i := 0; i < op.n; i++ {
							model[lo+i] = op.val
						}
						if r.ID() == 1 && fnErr == nil {
							fnErr = win.PutNotify(model[lo:lo+op.n], datatype.Byte,
								op.n, 1, lo, uint32(op.slot))
						}
					}
				}
				r.Barrier() // writes (and their notifications) delivered
				if r.ID() == 0 && fnErr == nil {
					for _, op := range round {
						if op.kind != 1 {
							continue
						}
						lo := op.slot * fuzzSlotSize
						got := make([]byte, fuzzSlotSize)
						if fnErr = c.Get(got, datatype.Byte, fuzzSlotSize, 1, lo); fnErr != nil {
							break
						}
						checks = append(checks, readCheck{
							slot: op.slot,
							got:  got,
							want: append([]byte(nil), model[lo:lo+fuzzSlotSize]...),
						})
					}
				}
				r.Barrier() // reads issued
				if fnErr == nil {
					// Epoch closure: pending waiter copies land, buffers
					// become contractually valid.
					fnErr = win.FlushAll()
				}
				if r.ID() == 0 && fnErr == nil {
					for _, ck := range checks {
						if !bytes.Equal(ck.got, ck.want) {
							t.Errorf("slot %d: read %v..., model %v... (torn or stale serve)",
								ck.slot, ck.got[:4], ck.want[:4])
						}
					}
					checks = checks[:0]
				}
				next = end
			}
			if err := win.UnlockAll(); fnErr == nil {
				fnErr = err
			}
			r.Barrier()
			return fnErr
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}
