package core

import (
	"fmt"
	"math/rand"
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/mpi"
)

// TestIntegrityUnderRandomWorkload hammers the cache with random get
// sequences, epoch closures and invalidations under several parameter
// regimes, validating the full cross-structure invariants at every epoch
// boundary and the delivered data at every flush.
func TestIntegrityUnderRandomWorkload(t *testing.T) {
	regimes := []Params{
		{Mode: AlwaysCache, IndexSlots: 4096, StorageBytes: 1 << 20, Seed: 1}, // ample
		{Mode: AlwaysCache, IndexSlots: 32, StorageBytes: 1 << 20, Seed: 2},   // index-bound
		{Mode: AlwaysCache, IndexSlots: 4096, StorageBytes: 8 << 10, Seed: 3}, // capacity-bound
		{Mode: AlwaysCache, IndexSlots: 16, StorageBytes: 4 << 10, Seed: 4},   // both bound
		{Mode: Transparent, IndexSlots: 256, StorageBytes: 64 << 10, Seed: 5}, // transparent
		{Mode: AlwaysCache, IndexSlots: 128, StorageBytes: 32 << 10, Seed: 6, // adaptive
			Adaptive: true, TuneInterval: 64},
		{Mode: AlwaysCache, IndexSlots: 128, StorageBytes: 32 << 10, Seed: 7,
			Scheme: SchemeTemporal},
		{Mode: AlwaysCache, IndexSlots: 128, StorageBytes: 32 << 10, Seed: 8,
			Scheme: SchemePositional},
		{Mode: AlwaysCache, IndexSlots: 256, StorageBytes: 64 << 10, Seed: 9,
			CostMeasured: true}, // measured accounting path
	}
	for ri, params := range regimes {
		params := params
		withCache(t, 1<<15, params, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
			rng := rand.New(rand.NewSource(int64(ri) * 131))
			type inflight struct {
				dst  []byte
				disp int
			}
			var open []inflight
			for i := 0; i < 500; i++ {
				switch rng.Intn(10) {
				case 0: // invalidate mid-stream
					c.Invalidate()
				case 1, 2: // close the epoch and verify all data
					if err := win.FlushAll(); err != nil {
						return err
					}
					for _, g := range open {
						checkData(t, g.dst, g.disp)
					}
					open = open[:0]
					if err := c.CheckIntegrity(); err != nil {
						return fmt.Errorf("regime %d after flush %d: %w", ri, i, err)
					}
				default: // issue a get
					size := 1 << (rng.Intn(10) + 1)
					disp := rng.Intn(1<<15-size) / 16 * 16
					dst := make([]byte, size)
					if err := c.Get(dst, datatype.Byte, size, 1, disp); err != nil {
						return err
					}
					open = append(open, inflight{dst, disp})
				}
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
			for _, g := range open {
				checkData(t, g.dst, g.disp)
			}
			if err := c.CheckIntegrity(); err != nil {
				return fmt.Errorf("regime %d final: %w", ri, err)
			}
			// Sanity: the classification identity holds in every regime.
			s := c.Stats()
			if s.Hits+s.Direct+s.Conflicting+s.Capacity+s.Failing != s.Gets {
				return fmt.Errorf("regime %d: classification identity broken: %+v", ri, s)
			}
			return nil
		})
	}
}

// TestIntegrityAfterEviction checks invariants right after forced
// capacity and conflict evictions (not just at epoch boundaries).
func TestIntegrityAfterEviction(t *testing.T) {
	p := alwaysParams()
	p.IndexSlots = 16
	p.StorageBytes = 2 << 10
	withCache(t, 1<<16, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 512)
		for i := 0; i < 64; i++ {
			if err := c.Get(dst, datatype.Byte, 512, 1, i*512); err != nil {
				return err
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
			if err := c.CheckIntegrity(); err != nil {
				return fmt.Errorf("after get %d: %w", i, err)
			}
		}
		s := c.Stats()
		if s.Evictions == 0 {
			return fmt.Errorf("no evictions triggered: %+v", s)
		}
		return nil
	})
}
