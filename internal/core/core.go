// Package core implements CLaMPI, the caching layer for MPI-3 RMA get
// operations (paper §III).
//
// A Cache attaches to one rma.Window and intercepts get operations
// issued through it; any transport implementing the rma interfaces
// (internal/mpi is the first) can sit underneath. Each get_c is looked up in a Cuckoo hash index I_w keyed by
// (target, displacement); hits are served from a contiguous storage buffer
// S_w with a local memory copy, misses fall through to the underlying
// MPI_Get and are opportunistically inserted into the cache. Inserts may
// fail ("weak caching"): at most one eviction is performed per miss, so
// the overhead added to an uncached get is strictly bounded.
//
// Consistency follows the MPI-3 epoch model: data requested in epoch i is
// only complete at the closure of epoch i, so a missed get's payload is
// copied into the cache at the epoch-closure event (Flush/Unlock), when
// the entry transitions PENDING→CACHED. In Transparent mode the entire
// cache is additionally invalidated at every epoch closure; AlwaysCache
// keeps entries across epochs (read-only windows); user code may call
// Invalidate explicitly (the paper's user-defined mode).
package core

import (
	"errors"
	"fmt"
	"math/rand"

	"clampi/internal/blockcache"
	"clampi/internal/cuckoo"
	"clampi/internal/datatype"
	"clampi/internal/notify"
	"clampi/internal/rma"
	"clampi/internal/simtime"
	"clampi/internal/storage"
)

// Mode is the operational mode of a caching-enabled window (§III-A).
type Mode int

const (
	// Transparent requires no application knowledge: the cache is
	// invalidated at every epoch closure.
	Transparent Mode = iota
	// AlwaysCache never invalidates automatically: for windows whose
	// memory is read-only over their whole lifespan. The user-defined
	// mode of the paper is AlwaysCache plus explicit Invalidate calls.
	AlwaysCache
)

func (m Mode) String() string {
	switch m {
	case Transparent:
		return "transparent"
	case AlwaysCache:
		return "always-cache"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// InfoKey is the MPI_Info key CLaMPI reads at window creation to select
// the operational mode ("transparent" or "always-cache").
const InfoKey = "clampi_mode"

// EvictionScheme selects the victim-scoring function (§III-D1, Fig. 10).
type EvictionScheme int

const (
	// SchemeFull scores victims by R_P × R_T (the paper's proposal).
	SchemeFull EvictionScheme = iota
	// SchemeTemporal uses only R_T (LRU-like).
	SchemeTemporal
	// SchemePositional uses only R_P (fragmentation-only).
	SchemePositional
)

func (s EvictionScheme) String() string {
	switch s {
	case SchemeFull:
		return "full"
	case SchemeTemporal:
		return "temporal"
	case SchemePositional:
		return "positional"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Params configures a Cache. Zero values select the defaults below.
type Params struct {
	// IndexSlots is the initial |I_w| (number of hash-table slots).
	IndexSlots int
	// StorageBytes is the initial |S_w| (cache buffer size).
	StorageBytes int
	// SampleSize is M, the number of index slots sampled per capacity
	// eviction (§III-D).
	SampleSize int
	// Scheme selects the victim-scoring function.
	Scheme EvictionScheme
	// Mode is the operational mode.
	Mode Mode
	// Adaptive enables runtime parameter tuning (§III-E1).
	Adaptive bool
	// Seed makes hash functions and sampling deterministic.
	Seed int64

	// Adaptive-tuning thresholds and factors (§III-E1). Zero selects
	// the defaults.
	ConflictThreshold  float64 // conflicting/gets above this grows |I_w|
	CapacityThreshold  float64 // (capacity+failed)/gets above this grows |S_w|
	StableThreshold    float64 // hits/gets above this allows shrinking |S_w|
	SparsityThreshold  float64 // eviction-scan density below this shrinks |I_w|
	FreeSpaceThreshold float64 // free/capacity above this allows shrinking |S_w|
	IndexGrowFactor    float64
	IndexShrinkFactor  float64
	MemGrowFactor      float64
	MemShrinkFactor    float64
	// TuneInterval is the number of gets between adaptive checks
	// (evaluated at epoch closures).
	TuneInterval int64
	// MaxIndexSlots / MaxStorageBytes bound adaptive growth.
	MaxIndexSlots   int
	MaxStorageBytes int
	// CostMeasured switches cache-management cost accounting from the
	// calibrated analytic model (default, deterministic) to real wall
	// time measured around each operation (see costs.go).
	CostMeasured bool
	// DisableCoalesce makes GetBatch process its ops as plain sequential
	// gets, skipping miss coalescing (ablation / equivalence baseline).
	DisableCoalesce bool
	// AllocPolicy selects the storage allocation strategy; the default
	// is the paper's best-fit (storage.BestFit). FirstFit exists as an
	// ablation baseline.
	AllocPolicy storage.Policy
	// Observer receives structured access/eviction/adjustment/epoch
	// events (see observe.go). nil disables emission; the disabled
	// cost on the get path is a single branch.
	Observer Observer

	// Retry, when non-nil, retries remote gets that fail with
	// rma.ErrTransient under the given policy (resilience.go); nil
	// disables retrying (transient failures surface to the caller).
	Retry *rma.RetryPolicy
	// Breaker, when non-nil, adds a per-target circuit breaker in front
	// of remote gets (breaker.go). Implies retrying: when Retry is nil,
	// rma.DefaultRetryPolicy applies.
	Breaker *BreakerPolicy
	// VerifyFills checks every dense fill payload against the backend's
	// integrity attestation (rma.IntegrityWindow) and stamps cached
	// entries with their payload checksum; corrupted fills are refetched
	// instead of served or cached. Ignored (with verification skipped)
	// when the backend cannot attest. Implies retrying, as Breaker.
	VerifyFills bool
	// ServeStale keeps the cache across transparent-mode epoch closures
	// while any target's breaker is open or half-open, serving possibly
	// stale hits instead of guaranteed breaker failures — graceful
	// degradation that is legal under the §II weak-consistency contract
	// (DESIGN.md §11). The deferred invalidation runs at the first
	// closure after all breakers close. Requires Breaker.
	ServeStale bool

	// LocalityAware makes the cache cost-aware (DESIGN.md §15): cheap
	// same-socket fills bypass admission, eviction victim scores are
	// weighted by per-target refill cost, and retry backoff / breaker
	// cooldowns scale with distance. Requires the window to implement
	// rma.LocalityWindow; silently inert otherwise.
	LocalityAware bool
	// CheapFillThreshold is the fill-cost ceiling under which a
	// same-process/same-socket miss is served direct without admission
	// (counted in Stats.CheapSkips). Zero selects
	// DefaultCheapFillThreshold; meaningful only with LocalityAware.
	CheapFillThreshold simtime.Duration
	// L2, when non-nil, attaches the node-shared second-level block
	// cache: L1 misses on far targets probe it before crossing the
	// network, and their fills are published back at epoch closure so
	// sibling ranks are served from node memory (DESIGN.md §15). L2 is
	// consulted only in AlwaysCache mode (read-only windows): the
	// transparent mode's per-epoch freshness guarantee cannot be kept by
	// a tier shared across ranks whose epochs differ.
	L2 *blockcache.L2
	// L2MinClass is the nearest distance class whose misses go through
	// L2 (rma.Distance* scale); closer targets use the exact-range
	// path — block overfetch only pays off when the trip is expensive.
	// Zero selects DefaultL2MinClass (other-node).
	L2MinClass int

	// NotifyTargeted subscribes the cache to the window's write
	// notifications (rma.NotifyWindow) and replaces the transparent
	// mode's blanket epoch invalidation with targeted span coherence
	// (DESIGN.md §16): drained notifications invalidate — or patch in
	// place, when they carry the written bytes — exactly the cached
	// spans a remote PutNotify touched. Sound under the UNR contract
	// that remote writers notify their writes; a shed or lost
	// notification degrades to a full invalidation, never to silent
	// staleness. Silently inert when the backend lacks the extension.
	NotifyTargeted bool
	// NotifyQueueCap bounds the local notification queue
	// (notify.DefaultCapacity when zero); overflow costs a conservative
	// full invalidation at the next drain.
	NotifyQueueCap int
	// WriteBack buffers dense Put/PutNotify spans locally and flushes
	// coalesced runs at epoch closure (or under buffer pressure)
	// instead of writing through per call. Legal under the §II epoch
	// contract: remote visibility of a put is only promised at the next
	// closure. Strided writes always write through.
	WriteBack bool
	// WriteBackMaxSpans caps the dirty-span buffer; staging past it (or
	// a write overlapping an already-staged span) forces an early
	// flush. Zero selects DefaultWriteBackMaxSpans.
	WriteBackMaxSpans int
}

// Defaults for Params fields left zero.
const (
	DefaultIndexSlots   = 4096
	DefaultStorageBytes = 4 << 20
	DefaultSampleSize   = 16
	DefaultTuneInterval = 1024
	// DefaultWriteBackMaxSpans bounds the write-back buffer: enough to
	// coalesce a halo exchange's worth of edge writes, small enough that
	// a forced flush stays cheap.
	DefaultWriteBackMaxSpans = 64
	defaultConflictThresh    = 0.10
	defaultCapacityThresh    = 0.10
	defaultStableThresh      = 0.80
	defaultSparsityThresh    = 0.20
	// Shrinking |S_w| only with >75% free keeps the tuner from
	// oscillating between a shrink (stable, half-empty) and the
	// capacity-driven grow it immediately causes.
	defaultFreeThresh   = 0.75
	defaultGrowFactor   = 2.0
	defaultShrinkFactor = 0.5
)

func (p *Params) setDefaults() {
	if p.IndexSlots <= 0 {
		p.IndexSlots = DefaultIndexSlots
	}
	if p.StorageBytes <= 0 {
		p.StorageBytes = DefaultStorageBytes
	}
	if p.SampleSize <= 0 {
		p.SampleSize = DefaultSampleSize
	}
	if p.ConflictThreshold <= 0 {
		p.ConflictThreshold = defaultConflictThresh
	}
	if p.CapacityThreshold <= 0 {
		p.CapacityThreshold = defaultCapacityThresh
	}
	if p.StableThreshold <= 0 {
		p.StableThreshold = defaultStableThresh
	}
	if p.SparsityThreshold <= 0 {
		p.SparsityThreshold = defaultSparsityThresh
	}
	if p.FreeSpaceThreshold <= 0 {
		p.FreeSpaceThreshold = defaultFreeThresh
	}
	if p.IndexGrowFactor <= 1 {
		p.IndexGrowFactor = defaultGrowFactor
	}
	if p.IndexShrinkFactor <= 0 || p.IndexShrinkFactor >= 1 {
		p.IndexShrinkFactor = defaultShrinkFactor
	}
	if p.MemGrowFactor <= 1 {
		p.MemGrowFactor = defaultGrowFactor
	}
	if p.MemShrinkFactor <= 0 || p.MemShrinkFactor >= 1 {
		p.MemShrinkFactor = defaultShrinkFactor
	}
	if p.TuneInterval <= 0 {
		p.TuneInterval = DefaultTuneInterval
	}
	if p.MaxIndexSlots <= 0 {
		p.MaxIndexSlots = 1 << 24
	}
	if p.MaxStorageBytes <= 0 {
		p.MaxStorageBytes = 1 << 32
	}
	if p.WriteBackMaxSpans <= 0 {
		p.WriteBackMaxSpans = DefaultWriteBackMaxSpans
	}
}

// entryState is the per-entry state machine of Fig. 5. MISSING is
// represented by absence from the index; evicted entries that still have
// in-flight bookkeeping are marked stateEvicted so deferred work skips
// them.
type entryState int

const (
	statePending entryState = iota
	stateCached
	stateEvicted
)

// entry is the cache-entry record stored in the index (the paper's
// i = (trg, dsp, dtype, count, ptr) tuple; dtype/count are folded into the
// stored payload size).
type entry struct {
	key     cuckoo.Key
	region  *storage.Region
	payload int // valid bytes cached (size(i))
	state   entryState
	last    int64  // index in C_w.G of the last matching get_c
	sum     uint64 // payload checksum (0 unless Params.VerifyFills)

	// PENDING bookkeeping: src is the user destination buffer of the
	// get that missed; its bytes are copied into region at epoch
	// closure. waiters are same-epoch hits on this PENDING entry.
	src     []byte
	waiters []waiter
	// pendingExt records an in-flight partial-hit extension: bytes
	// [extFrom:extTo) of the entry will be valid at epoch closure.
	extSrc  []byte
	extFrom int
	extTo   int
}

type waiter struct {
	dst  []byte
	size int
}

// Cache is the caching layer C_w attached to one window.
type Cache struct {
	win    rma.Window
	clock  *simtime.Clock
	params Params
	mode   Mode
	rank   int      // owning rank id, stamped into emitted events
	obs    Observer // nil when observability is disabled

	idx   *cuckoo.Table[*entry]
	store *storage.Manager
	rng   *rand.Rand

	getSeq      int64 // index in C_w.G
	sumGetSizes int64 // for the average get size (ags)

	pending []*entry // entries awaiting epoch-closure copy-in

	// Entry-record pool (allocation-free steady state): evicted records
	// first land on dead — they may still be referenced from pending
	// until the epoch closes — and move to free once the pending queue
	// has drained, where newEntry picks them up again.
	free []*entry
	dead []*entry

	stats    Stats // running totals since creation
	tuneSnap Stats // snapshot of stats at the last adaptive evaluation

	last Access // last processed get_c

	// arena is epoch-lifetime staging storage for batched miss payloads
	// and prefetches; see stageBuf. Reset (capacity kept) when the
	// pending queue drains.
	arena []byte

	// GetBatch working state (see batch.go), reused across calls.
	bwin    rma.BatchWindow // non-nil when the transport batches natively
	bops    []rma.GetOp     // merged-range issue buffer
	bmisses []batchMiss     // coalescible-miss workspace
	bruns   []batchRun      // merged-range workspace
	bvict   []scoredVictim  // batch capacity-eviction reservoir
	inBatch bool            // insertPending draws victims from bvict

	// Resilience state (resilience.go, breaker.go); zero when no
	// resilience option is configured.
	resilient   bool                // any of Retry/Breaker/VerifyFills set
	retry       rma.RetryPolicy     // effective retry policy
	retryRng    *rand.Rand          // deterministic backoff jitter (Seed+2)
	retryBudget int64               // retries spent against retry.Budget
	brk         *breaker            // per-target circuit breakers, nil if disabled
	verify      bool                // fill verification enabled
	iw          rma.IntegrityWindow // backend attestation, nil if unsupported
	dw          rma.DeadlineWindow  // per-op deadline propagation, nil if unsupported
	staleDefer  bool                // transparent invalidation deferred (stale serving)

	// Locality state (locality.go); lw is nil unless Params.LocalityAware
	// or Params.L2 is set and the backend implements rma.LocalityWindow.
	lw        rma.LocalityWindow // locality oracle, nil when disabled
	cheap     simtime.Duration   // admission-bypass fill-cost ceiling
	distStats []DistanceStats    // per-class activity, indexed by class
	l2        *blockcache.L2     // node-shared second level, nil when detached
	l2min     int                // nearest class routed through L2
	l2pend    []l2Fill           // staged fills published to L2 at epoch closure

	// Notifiable-RMA state (notify.go); nw is non-nil whenever the
	// backend implements the extension, nsub only when NotifyTargeted
	// subscribed this cache to its window's queue.
	nw      rma.NotifyWindow
	nsub    bool
	nbuf    []notify.Notification // drain scratch, notifyDrainBatch long
	nextSeq uint64                // next expected notification sequence

	// Write-back state (notify.go); all empty unless Params.WriteBack.
	dirty   []dirtySpan
	wbArena []byte // staged dirty bytes; lives until the buffer flushes
	wbMerge []byte // coalesced-run assembly scratch
	wbErr   error  // deferred error from an epoch-closure flush
}

// Errors.
var (
	ErrNilWindow = errors.New("core: nil window")
)

// New attaches a caching layer to win. If params.Mode is not set
// explicitly, the window's InfoKey entry is consulted ("always-cache"
// selects AlwaysCache; anything else is Transparent).
func New(win rma.Window, params Params) (*Cache, error) {
	if win == nil {
		return nil, ErrNilWindow
	}
	params.setDefaults()
	mode := params.Mode
	if info := win.Info(); info != nil {
		if v, ok := info[InfoKey]; ok {
			if v == "always-cache" {
				mode = AlwaysCache
			} else {
				mode = Transparent
			}
		}
	}
	c := &Cache{
		win:    win,
		clock:  win.Endpoint().Clock(),
		params: params,
		mode:   mode,
		rank:   win.Endpoint().ID(),
		obs:    params.Observer,
		idx:    cuckoo.New[*entry](params.IndexSlots, params.Seed),
		store:  storage.NewWithPolicy(params.StorageBytes, params.AllocPolicy),
		rng:    rand.New(rand.NewSource(params.Seed + 1)),
	}
	c.bwin, _ = win.(rma.BatchWindow)
	if params.Retry != nil || params.Breaker != nil || params.VerifyFills {
		c.resilient = true
		if params.Retry != nil {
			c.retry = *params.Retry
		} else {
			c.retry = rma.DefaultRetryPolicy()
		}
		// Seed+2: distinct stream from the eviction-sampling RNG (Seed+1)
		// so enabling resilience never perturbs victim selection.
		c.retryRng = rand.New(rand.NewSource(params.Seed + 2))
		if params.Breaker != nil {
			c.brk = newBreaker(*params.Breaker, win.Endpoint().Size())
		}
		if params.VerifyFills {
			c.verify = true
			c.iw, _ = win.(rma.IntegrityWindow)
		}
		if c.retry.Deadline > 0 {
			// Transports whose ops occupy real wall time (sockets) accept
			// the per-attempt deadline directly, so a hung read fails with
			// ErrTimeout instead of outliving the virtual-time budget.
			c.dw, _ = win.(rma.DeadlineWindow)
		}
	}
	c.initLocality()
	c.nw, _ = win.(rma.NotifyWindow)
	if params.NotifyTargeted && c.nw != nil {
		if err := c.nw.NotifyEnable(params.NotifyQueueCap); err != nil {
			return nil, err
		}
		c.nsub = true
		c.nbuf = make([]notify.Notification, notifyDrainBatch)
		c.nextSeq = 1
	}
	win.AddEpochListener(c.onEpochClose)
	return c, nil
}

// Mode returns the operational mode.
func (c *Cache) Mode() Mode { return c.mode }

// Stats returns a snapshot of the running counters.
func (c *Cache) Stats() Stats { return c.stats }

// LastAccess returns the classification and cost breakdown of the most
// recent get_c.
func (c *Cache) LastAccess() Access { return c.last }

// IndexSlots returns the current |I_w|.
func (c *Cache) IndexSlots() int { return c.idx.Cap() }

// StorageBytes returns the current |S_w|.
func (c *Cache) StorageBytes() int { return c.store.Capacity() }

// Occupancy returns the fraction of S_w holding entries (Fig. 10).
func (c *Cache) Occupancy() float64 { return c.store.Occupancy() }

// CachedEntries returns the number of entries currently indexed.
func (c *Cache) CachedEntries() int { return c.idx.Len() }

// Win returns the underlying window.
func (c *Cache) Win() rma.Window { return c.win }

// avgGetSize returns C_w.ags: the mean payload of all processed gets.
func (c *Cache) avgGetSize() float64 {
	if c.getSeq == 0 {
		return 0
	}
	return float64(c.sumGetSizes) / float64(c.getSeq)
}

// Get processes a get_c (§III-B): it serves the request from the cache
// when possible and falls through to the window's MPI_Get otherwise,
// opportunistically caching the result. dst receives the packed payload,
// valid — exactly as with a plain MPI_Get — after the next epoch-closure
// call (Flush/Unlock) on the window.
func (c *Cache) Get(dst []byte, dtype datatype.Datatype, count int, target, disp int) error {
	size := datatype.TransferSize(dtype, count)
	if len(dst) < size {
		return rma.ErrShortBuf
	}
	if len(c.dirty) > 0 {
		// Read-your-writes: a read overlapping a staged dirty span must
		// observe the buffered write, so the buffer flushes first.
		if err := c.flushOverlap(target, disp, datatype.Span(dtype, count)); err != nil {
			return err
		}
	}
	c.beginGet(size)

	key := cuckoo.Key{Target: target, Disp: disp}
	e, found, lookupT := c.lookup(key)
	c.last.Lookup = lookupT
	c.stats.LookupTime += lookupT

	var err error
	if found && e.state != stateEvicted {
		err = c.serveHit(e, dst, dtype, count, target, disp, size)
	} else {
		err = c.serveMiss(key, dst, dtype, count, target, disp, size)
	}
	c.emitAccess(target, disp, size, err)
	return err
}

// beginGet records the arrival of one get_c of the given size. It also
// drains pending write notifications first (access-time coherence,
// DESIGN.md §16): the stale spans must leave the cache before the lookup
// below can hit them. The empty-queue probe is one nil check and one
// atomic load — nothing is charged and nothing allocates, so the
// steady-state hit path is unchanged.
func (c *Cache) beginGet(size int) {
	if c.nsub && c.nw.NotifyDepth() > 0 {
		c.drainNotifications()
	}
	c.getSeq++
	c.sumGetSizes += int64(size)
	c.stats.Gets++
	c.last = Access{}
}

// lookup probes the index under cost accounting. On the modeled-cost
// path (the default) it runs without constructing a closure, keeping the
// steady-state hit path free of heap allocation.
func (c *Cache) lookup(key cuckoo.Key) (e *entry, found bool, d simtime.Duration) {
	if !c.params.CostMeasured {
		e, _, found = c.idx.Lookup(key)
		c.clock.Busy(CostLookup)
		return e, found, CostLookup
	}
	d = c.clock.Charge(func() { e, _, found = c.idx.Lookup(key) })
	return e, found, d
}

// copyOut copies a served payload cache→user under cost accounting,
// closure-free on the modeled-cost path.
func (c *Cache) copyOut(dst, src []byte) simtime.Duration {
	if !c.params.CostMeasured {
		copy(dst, src)
		est := copyCost(len(dst))
		c.clock.Busy(est)
		return est
	}
	return c.clock.Charge(func() { copy(dst, src) })
}

// emitAccess reports the classified access recorded in c.last.
func (c *Cache) emitAccess(target, disp, size int, err error) {
	if c.obs == nil || err != nil {
		return
	}
	c.obs.OnAccess(AccessEvent{
		Rank:    c.rank,
		Epoch:   c.win.Epoch(),
		Time:    c.clock.Now(),
		Type:    c.last.Type,
		Partial: c.last.Partial,
		Issued:  c.last.Issued,
		Target:  target,
		Disp:    disp,
		Size:    size,
		Lookup:  c.last.Lookup,
		Evict:   c.last.Evict,
		Copy:    c.last.Copy,
		Mgmt:    c.last.Mgmt,
	})
}

// serveHit handles CACHED and PENDING lookups (§III-B1).
func (c *Cache) serveHit(e *entry, dst []byte, dtype datatype.Datatype, count, target, disp, size int) error {
	e.last = c.getSeq
	c.stats.Hits++
	c.last.Type = AccessHit

	full := size <= e.payload
	if full {
		c.stats.FullHits++
		c.noteDistHit(target)
	} else {
		c.stats.PartialHits++
		c.last.Partial = true
	}

	// The suffix optimization below addresses the target region as a
	// contiguous byte range; for strided datatypes the whole transfer
	// is refetched instead (the cached prefix of a differently-shaped
	// layout could not be trusted anyway).
	contig := full || datatype.Contig(dtype, count)

	switch e.state {
	case stateCached:
		if c.staleDefer {
			// The entry survived a deferred transparent invalidation:
			// this hit is served stale (DESIGN.md §11).
			c.stats.StaleServes++
		}
		served := min(size, e.payload)
		copyT := c.copyOut(dst[:served], c.store.Bytes(e.region, served))
		c.last.Copy = copyT
		c.stats.CopyTime += copyT
		c.stats.BytesFromCache += int64(served)
		if full {
			return nil
		}
		// Partial hit: fetch the missing part remotely and try to
		// extend the entry (§III-B1).
		from := served
		if contig {
			if err := c.remoteGetRange(dst[served:size], target, disp+served, size-served); err != nil {
				return err
			}
		} else {
			if err := c.remoteGet(dst, dtype, count, target, disp); err != nil {
				return err
			}
			from = 0
		}
		c.last.Issued = true
		c.stats.BytesFromNetwork += int64(size - from)
		var grown bool
		mgmtT := c.charge(CostAlloc, func() {
			grown = c.store.Grow(e.region, size-e.region.Size())
		})
		c.last.Mgmt = mgmtT
		c.stats.MgmtTime += mgmtT
		if grown {
			e.extSrc = dst[from:size]
			e.extFrom = from
			e.extTo = size
			c.pending = append(c.pending, e)
		}
		return nil

	case statePending:
		// Same-epoch repeat: the data is already on the wire; defer
		// the copy to epoch closure (§III-B1).
		c.stats.PendingHits++
		served := min(size, e.payload)
		if full || contig {
			e.waiters = append(e.waiters, waiter{dst: dst[:served], size: served})
			c.stats.BytesFromCache += int64(served)
			if full {
				return nil
			}
			if err := c.remoteGetRange(dst[served:size], target, disp+served, size-served); err != nil {
				return err
			}
			c.last.Issued = true
			c.stats.BytesFromNetwork += int64(size - served)
			return nil
		}
		// Strided partial pending hit: refetch everything.
		if err := c.remoteGet(dst, dtype, count, target, disp); err != nil {
			return err
		}
		c.last.Issued = true
		c.stats.BytesFromNetwork += int64(size)
		return nil
	}
	return nil
}

// remoteGetRange issues a plain byte-range MPI_Get through the
// resilience layer (netGet, a direct Window.Get when disabled).
func (c *Cache) remoteGetRange(dst []byte, target, disp, n int) error {
	return c.netGet(dst, datatype.Byte, n, target, disp)
}

// remoteGet issues the full (possibly strided) MPI_Get for a miss,
// through the resilience layer.
func (c *Cache) remoteGet(dst []byte, dtype datatype.Datatype, count, target, disp int) error {
	return c.netGet(dst, dtype, count, target, disp)
}

// serveMiss handles MISSING lookups: issue the remote get and try to
// cache the incoming data (§III-B2). The remote get is issued first so
// its network time overlaps the cache-management work.
func (c *Cache) serveMiss(key cuckoo.Key, dst []byte, dtype datatype.Datatype, count, target, disp, size int) error {
	if c.l2Routed(dtype, size, target) {
		return c.serveMissL2(key, dst, target, disp, size)
	}
	if err := c.remoteGet(dst, dtype, count, target, disp); err != nil {
		return err
	}
	c.last.Issued = true
	c.stats.BytesFromNetwork += int64(size)
	c.finish(c.insertPending(key, dst[:size], size))
	return nil
}

// insertPending tries to admit one missed range into the cache as a
// PENDING entry whose payload is copied in from src at epoch closure
// (§III-B2), and returns the access classification. Weak caching: at
// most one eviction (capacity or conflict) is performed; if storage
// still cannot be allocated the access fails and nothing is cached.
// src must stay intact until the epoch closes.
func (c *Cache) insertPending(key cuckoo.Key, src []byte, size int) AccessType {
	if c.cheapSkip(key.Target, size) {
		// Cost-aware admission bypass (DESIGN.md §15): the target is a
		// memcpy away, so caching would spend storage and eviction
		// pressure to save less than the management cost. Delivered
		// without storing; classified direct (no eviction happened) and
		// tallied separately.
		c.stats.CheapSkips++
		return AccessDirect
	}
	if c.brk != nil && !c.brk.closed(key.Target) {
		// Degraded target: the fill itself succeeded (possibly via a
		// half-open probe), but the target is not yet re-certified
		// healthy. Fail over to direct gets — deliver without admitting,
		// so the cache never fills with payloads from a flapping peer
		// that the next probe may disown (DESIGN.md §11).
		return AccessFailing
	}
	// --- Storage allocation (may require one capacity eviction). ---
	var region *storage.Region
	mgmtT := c.charge(CostAlloc, func() {
		region = c.store.Alloc(size)
	})
	accessType := AccessDirect
	if region == nil {
		// Inside a batch the victim comes from the reservoir filled by
		// one amortized scan (its cost was charged at fill time); a
		// drained reservoir falls back to a fresh per-miss scan.
		var victim *entry
		if c.inBatch {
			victim = c.nextBatchVictim()
		}
		if victim == nil {
			var evictT simtime.Duration
			victim, evictT = c.selectCapacityVictim()
			c.last.Evict += evictT
		}
		if victim != nil {
			c.evictEntry(victim)
			accessType = AccessCapacity
		}
		mgmtT += c.charge(CostAlloc, func() {
			region = c.store.Alloc(size)
		})
		if region == nil {
			// Weak caching: give up after a single eviction.
			c.recordMgmt(mgmtT)
			return AccessFailing
		}
	}

	// --- Index insertion (may require one conflict eviction). ---
	e := c.newEntry(key, region, size, src)
	if c.verify {
		// Stamp the entry with its payload checksum (the fill was already
		// verified against the target attestation in netGet); cached-side
		// integrity checks revalidate against it.
		mgmtT += c.charge(checksumCost(size), func() { e.sum = rma.ChecksumBytes(src[:size]) })
	}
	var res cuckoo.InsertResult[*entry]
	mgmtT += c.charge(CostInsert, func() {
		res = c.idx.Insert(key, e)
	})
	if !res.Placed {
		victimSlot, evictT := c.selectConflictVictim(res.CandidateSlots)
		c.last.Evict += evictT
		if victimSlot < 0 {
			// All candidate slots hold PENDING entries: cannot
			// evict any; drop the homeless element. If the
			// homeless element is not the new entry, the new
			// entry was stored during the walk and stays PENDING.
			c.dropHomeless(res.HomelessVal)
			c.recordMgmt(mgmtT)
			if res.HomelessKey == key {
				return AccessFailing
			}
			c.pending = append(c.pending, e)
			return AccessConflicting
		}
		mgmtT += c.charge(CostInsert+CostFree, func() {
			evictedKey, evicted := c.idx.ReplaceAt(victimSlot, res.HomelessKey, res.HomelessVal)
			if evicted != nil {
				c.freeEvicted(evictedKey, evicted)
			}
		})
		accessType = AccessConflicting
	}
	c.pending = append(c.pending, e)
	c.recordMgmt(mgmtT)
	return accessType
}

// newEntry takes a record off the free list (or allocates one) and
// initializes it PENDING for key.
func (c *Cache) newEntry(key cuckoo.Key, region *storage.Region, size int, src []byte) *entry {
	var e *entry
	if n := len(c.free); n > 0 {
		e = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
	} else {
		e = &entry{}
	}
	e.key = key
	e.region = region
	e.payload = size
	e.state = statePending
	e.last = c.getSeq
	e.src = src
	return e
}

// retire parks an evicted entry on the graveyard. Records are recycled
// onto the free list only once the pending queue drains (epoch closure
// or invalidation), because a stateEvicted record may still sit in
// c.pending until then. PENDING entries are never retired directly:
// callers transition them to stateEvicted first, and the record keeps
// carrying its waiters until recycling.
func (c *Cache) retire(e *entry) {
	c.dead = append(c.dead, e)
}

// recycleDead moves the graveyard onto the free list, dropping every
// buffer reference while keeping waiter-slice capacity. Must only run
// right after the pending queue was drained — no stateEvicted record
// can then still be referenced from c.pending.
func (c *Cache) recycleDead() {
	for i, e := range c.dead {
		e.region = nil
		e.src = nil
		e.sum = 0
		e.extSrc = nil
		e.extFrom, e.extTo = 0, 0
		clearWaiters(e)
		c.free = append(c.free, e)
		c.dead[i] = nil
	}
	c.dead = c.dead[:0]
}

// clearWaiters empties the waiter queue, dropping user-buffer references
// but keeping the slice capacity for reuse in later epochs.
func clearWaiters(e *entry) {
	clear(e.waiters)
	e.waiters = e.waiters[:0]
}

// dropHomeless releases the storage of a homeless element that could not
// be indexed. If the homeless element is the brand-new entry, its region
// is freed; otherwise the homeless element is an older entry whose index
// slot was taken over during the walk — its storage is freed too, since
// it is no longer reachable through the index.
func (c *Cache) dropHomeless(homeless *entry) {
	if homeless == nil {
		return
	}
	homeless.state = stateEvicted
	c.store.FreeRegion(homeless.region)
	c.retire(homeless)
}

// freeEvicted releases an entry displaced by a conflict eviction. key is
// the index key the entry was displaced under (as returned by
// cuckoo.Table.ReplaceAt), reported to OnEviction observers so they see
// exactly which entry the conflict pushed out.
func (c *Cache) freeEvicted(key cuckoo.Key, e *entry) {
	e.state = stateEvicted
	c.store.FreeRegion(e.region)
	c.retire(e)
	c.stats.Evictions++
	c.emitEviction(key, e.payload, true)
}

// evictEntry removes a capacity-eviction victim from index and storage.
func (c *Cache) evictEntry(e *entry) {
	c.charge(CostLookup+CostFree, func() {
		c.idx.Delete(e.key)
		e.state = stateEvicted
		c.store.FreeRegion(e.region)
	})
	c.retire(e)
	c.stats.Evictions++
	c.emitEviction(e.key, e.payload, false)
}

// emitEviction reports one evicted entry to the observer.
func (c *Cache) emitEviction(key cuckoo.Key, payload int, conflict bool) {
	if c.obs == nil {
		return
	}
	c.obs.OnEviction(EvictionEvent{
		Rank:     c.rank,
		Epoch:    c.win.Epoch(),
		Time:     c.clock.Now(),
		Target:   key.Target,
		Disp:     key.Disp,
		Bytes:    payload,
		Conflict: conflict,
	})
}

func (c *Cache) recordMgmt(d simtime.Duration) {
	c.last.Mgmt += d
	c.stats.MgmtTime += d
}

// finish classifies the completed miss.
func (c *Cache) finish(t AccessType) {
	c.last.Type = t
	switch t {
	case AccessDirect:
		c.stats.Direct++
	case AccessConflicting:
		c.stats.Conflicting++
	case AccessCapacity:
		c.stats.Capacity++
	case AccessFailing:
		c.stats.Failing++
	}
}

// onEpochClose is the window epoch listener: it flushes buffered writes,
// completes PENDING entries (the deferred user→cache copies, §II), then
// applies transparent-mode invalidation — or, when subscribed to write
// notifications, targeted coherence — and adaptive tuning. Epoch
// listeners run before the transport's synchronization rendezvous
// (mpi.Fence barriers and wire OpBarrier both close the epoch first), so
// dirty spans flushed here are delivered before any peer passes its own
// fence.
func (c *Cache) onEpochClose(epoch int64) {
	if len(c.dirty) > 0 {
		if err := c.flushDirty(); err != nil && c.wbErr == nil {
			// The listener cannot fail; surface at the next write call.
			c.wbErr = err
		}
	}
	copiedBytes := 0
	completed := 0
	copyT := c.chargeFn(func() {
		for _, e := range c.pending {
			if e.state == stateEvicted {
				continue
			}
			if e.state == statePending {
				copy(c.store.Bytes(e.region, e.payload), e.src)
				copiedBytes += e.payload
				completed++
				e.state = stateCached
				e.src = nil
				for _, w := range e.waiters {
					copy(w.dst, c.store.Bytes(e.region, w.size))
					copiedBytes += w.size
				}
				clearWaiters(e)
			}
			if e.extTo > e.extFrom {
				// Partial-hit extension: append the suffix.
				buf := c.store.Bytes(e.region, e.extTo)
				copy(buf[e.extFrom:e.extTo], e.extSrc)
				copiedBytes += e.extTo - e.extFrom
				if e.extTo > e.payload {
					e.payload = e.extTo
				}
				if c.verify {
					// The payload changed shape: restamp its checksum.
					e.sum = rma.ChecksumBytes(c.store.Bytes(e.region, e.payload))
				}
				e.extSrc = nil
				e.extFrom, e.extTo = 0, 0
			}
		}
	}, func() simtime.Duration {
		if copiedBytes == 0 {
			return 0
		}
		return copyCost(copiedBytes)
	})
	c.last.Copy += copyT
	c.stats.CopyTime += copyT
	if c.l2 != nil {
		// Staged block fills just became valid with the rest of the
		// epoch's data; publish before the arena holding them is reset.
		c.publishL2()
	}
	c.pending = c.pending[:0]
	c.recycleDead()
	c.arena = c.arena[:0]

	invalidated := false
	if c.nsub {
		// Targeted coherence (DESIGN.md §16): spans written during the
		// epoch leave (or are patched in) the cache individually, so the
		// transparent blanket invalidation below is skipped and entries
		// survive across closures — which also makes adaptive tuning
		// meaningful in transparent mode (epochs no longer start cold).
		c.drainNotifications()
	}
	if c.mode == Transparent && !c.nsub {
		if c.params.ServeStale && c.brk != nil && c.brk.anyOpen() {
			// Graceful degradation: a target's breaker is open, so the
			// next epoch would alternate between guaranteed breaker
			// failures and cold misses. Keep the cache across this
			// closure and serve stale hits instead — legal under the
			// §II weak-consistency contract, which lets get_c return
			// any value the target range held since the last epoch the
			// origin synchronized with it (DESIGN.md §11). The deferred
			// invalidation runs at the first closure with all breakers
			// closed (the else branch below).
			c.staleDefer = true
		} else {
			// Tuning is pointless when every epoch starts cold.
			c.staleDefer = false
			c.invalidate()
			invalidated = true
		}
	} else if c.params.Adaptive && c.stats.Gets-c.tuneSnap.Gets >= c.params.TuneInterval {
		c.tune()
	}
	if c.obs != nil {
		c.obs.OnEpochClose(EpochEvent{
			Rank:        c.rank,
			Epoch:       epoch,
			Time:        c.clock.Now(),
			Completed:   completed,
			CopiedBytes: copiedBytes,
			Invalidated: invalidated,
		})
	}
}

// Invalidate drops every cache entry (the CLAMPI_Invalidate call of the
// user-defined mode). In-flight PENDING copies of the current epoch are
// cancelled. An explicit invalidation always runs — it also clears any
// stale-serving deferral left by an open breaker (Params.ServeStale).
func (c *Cache) Invalidate() {
	c.staleDefer = false
	c.invalidate()
}

func (c *Cache) invalidate() {
	// A mid-epoch invalidation must not lose same-epoch PENDING hits:
	// their destination buffers are normally filled at the epoch
	// closure from the cached copy, which is about to disappear. The
	// payload is already complete in the missing get's own destination
	// buffer (and may not be consumed before the flush anyway), so the
	// waiters are satisfied from there before the entry is dropped.
	for _, e := range c.pending {
		if e.state != statePending {
			continue
		}
		c.charge(copyCost(waiterBytes(e)), func() {
			for _, w := range e.waiters {
				copy(w.dst, e.src[:w.size])
			}
		})
		clearWaiters(e)
		e.state = stateEvicted
		c.retire(e)
	}
	// Remaining indexed entries (all CACHED now) are dropped wholesale by
	// Clear/Reset below; retire their records for reuse. Their regions
	// are reclaimed by Reset, so no per-entry FreeRegion.
	c.idx.Walk(func(_ cuckoo.Key, e *entry) bool {
		if e.state == stateCached {
			e.state = stateEvicted
			c.retire(e)
		}
		return true
	})
	est := CostInvalidateBase + simtime.Duration(c.idx.Cap())*CostInvalidatePerSlot
	c.charge(est, func() {
		c.idx.Clear()
		c.store.Reset()
	})
	c.dropL2Pending()
	c.pending = c.pending[:0]
	c.recycleDead()
	c.arena = c.arena[:0]
	c.stats.Invalidations++
}

// waiterBytes sums the bytes owed to an entry's same-epoch waiters.
func waiterBytes(e *entry) int {
	n := 0
	for _, w := range e.waiters {
		n += w.size
	}
	return n
}

// newIndex builds a Cuckoo index of the given size; split out so tuning
// and construction share it.
func newIndex(slots int, seed int64) *cuckoo.Table[*entry] {
	return cuckoo.New[*entry](slots, seed)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
