package core

import (
	"strings"
	"testing"

	"clampi/internal/cuckoo"
	"clampi/internal/datatype"
	"clampi/internal/mpi"
)

// TestCheckIntegrityDetectsCorruption deliberately corrupts internal
// structures and verifies the checker reports each corruption class.
func TestCheckIntegrityDetectsCorruption(t *testing.T) {
	withCache(t, 4096, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 64)
		for i := 0; i < 3; i++ {
			if err := c.Get(dst, datatype.Byte, 64, 1, i*64); err != nil {
				return err
			}
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		if err := c.CheckIntegrity(); err != nil {
			t.Fatalf("clean cache flagged: %v", err)
		}

		// 1. Evicted-but-indexed entry.
		var victim *entry
		c.idx.Walk(func(_ cuckoo.Key, e *entry) bool { victim = e; return false })
		old := victim.state
		victim.state = stateEvicted
		if err := c.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "evicted") {
			t.Errorf("evicted corruption not detected: %v", err)
		}
		victim.state = old

		// 2. Payload exceeding the region.
		oldPayload := victim.payload
		victim.payload = victim.region.Size() + 1
		if err := c.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "exceeds region") {
			t.Errorf("payload corruption not detected: %v", err)
		}
		victim.payload = oldPayload

		// 3. CACHED entry with waiters.
		victim.waiters = append(victim.waiters, waiter{dst: dst, size: 8})
		if err := c.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "waiters") {
			t.Errorf("waiter corruption not detected: %v", err)
		}
		victim.waiters = nil

		// 4. Key mismatch between slot and entry.
		oldKey := victim.key
		victim.key.Disp += 8
		if err := c.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "indexed under") {
			t.Errorf("key corruption not detected: %v", err)
		}
		victim.key = oldKey

		// 5. Storage/index accounting mismatch: allocate a region no
		// entry references.
		extra := c.store.Alloc(64)
		if err := c.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "regions") {
			t.Errorf("orphan region not detected: %v", err)
		}
		c.store.FreeRegion(extra)

		if err := c.CheckIntegrity(); err != nil {
			t.Fatalf("cache did not recover after corruption repair: %v", err)
		}
		return nil
	})
}

// TestAdaptiveShrinksOversizedStorage exercises the |S_w| shrink path:
// a stable, hit-dominated workload in a mostly-empty buffer.
func TestAdaptiveShrinksOversizedStorage(t *testing.T) {
	p := alwaysParams()
	p.StorageBytes = 8 << 20 // vastly oversized for a 16-entry working set
	p.Adaptive = true
	p.TuneInterval = 64
	withCache(t, 1<<14, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 128)
		for i := 0; i < 600; i++ {
			if err := c.Get(dst, datatype.Byte, 128, 1, (i%16)*128); err != nil {
				return err
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
		}
		if c.StorageBytes() >= 8<<20 {
			t.Errorf("oversized storage never shrank: %d", c.StorageBytes())
		}
		if s := c.Stats(); s.Adjustments == 0 {
			t.Errorf("no adjustments: %s", s.String())
		}
		return nil
	})
}

// TestTuneShrinksSparseIndex exercises the |I_w| shrink branch directly:
// a stats window showing capacity evictions with very sparse scans (low
// q) and no pressure must shrink the index. The branch is hard to pin
// down through a workload because capacity pressure (which grows |S_w|)
// takes priority — see tune()'s ordering.
func TestTuneShrinksSparseIndex(t *testing.T) {
	p := alwaysParams()
	p.IndexSlots = 1 << 14
	p.Adaptive = true
	withCache(t, 1<<14, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		c.stats = c.stats.Add(Stats{
			Gets:            1000,
			Hits:            400, // below StableThreshold: no |S_w| shrink
			Capacity:        20,  // 2%: below CapacityThreshold
			EvictionScans:   20,
			VisitedSlots:    2000,
			NonEmptyVisited: 40, // q = 0.02 << SparsityThreshold
		})
		c.tune()
		if c.IndexSlots() >= 1<<14 {
			t.Errorf("sparse index did not shrink: %d", c.IndexSlots())
		}
		if c.stats.Adjustments != 1 {
			t.Errorf("Adjustments = %d", c.stats.Adjustments)
		}
		// The shrink is clamped at minIndexSlots.
		for i := 0; i < 20; i++ {
			c.stats = c.stats.Add(Stats{Gets: 1000, EvictionScans: 20, VisitedSlots: 2000, NonEmptyVisited: 1})
			c.tune()
		}
		if c.IndexSlots() < minIndexSlots {
			t.Errorf("index shrank below the floor: %d", c.IndexSlots())
		}
		return nil
	})
}

// TestTuneShrinkStorageClamp drives the |S_w| shrink branch to its floor.
func TestTuneShrinkStorageClamp(t *testing.T) {
	p := alwaysParams()
	p.StorageBytes = 64 << 10
	p.Adaptive = true
	withCache(t, 1<<14, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		for i := 0; i < 20; i++ {
			c.stats = c.stats.Add(Stats{Gets: 1000, Hits: 950}) // stable, empty buffer
			c.tune()
		}
		if c.StorageBytes() < minStorageBytes {
			t.Errorf("storage shrank below the floor: %d", c.StorageBytes())
		}
		if c.StorageBytes() >= 64<<10 {
			t.Errorf("stable empty storage never shrank: %d", c.StorageBytes())
		}
		return nil
	})
}

// TestAdaptiveGrowthClamps verifies MaxIndexSlots/MaxStorageBytes bound
// adaptive growth (clamped adjustments do not count or invalidate).
func TestAdaptiveGrowthClamps(t *testing.T) {
	p := alwaysParams()
	p.IndexSlots = 64
	p.MaxIndexSlots = 64 // growth impossible
	p.StorageBytes = 1 << 20
	p.Adaptive = true
	p.TuneInterval = 64
	withCache(t, 1<<16, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 64)
		for i := 0; i < 400; i++ {
			if err := c.Get(dst, datatype.Byte, 64, 1, (i%256)*64); err != nil {
				return err
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
		}
		if c.IndexSlots() != 64 {
			t.Errorf("clamped index changed: %d", c.IndexSlots())
		}
		return nil
	})
}
