package core

import (
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/mpi"
)

// FuzzRangeInvalidation drives Put through the cache against a model of
// the target region: whatever the overlap between previously cached
// spans and the written range, a later Get must never observe stale
// cached bytes. This fuzzes the overlap predicate and waiter handling
// of InvalidateRange (range.go) end to end.
func FuzzRangeInvalidation(f *testing.F) {
	f.Add(uint16(128), uint8(200), uint16(300), uint8(8), uint16(180), uint8(120))
	f.Add(uint16(0), uint8(1), uint16(4095), uint8(1), uint16(0), uint8(255))
	f.Add(uint16(500), uint8(64), uint16(500), uint8(64), uint16(500), uint8(64))
	f.Add(uint16(4000), uint8(255), uint16(100), uint8(0), uint16(4090), uint8(64))

	f.Fuzz(func(t *testing.T, d1 uint16, s1 uint8, d2 uint16, s2 uint8, pd uint16, ps uint8) {
		const regionSize = 4096
		clampSpan := func(d uint16, s uint8) (disp, size int) {
			disp = int(d) % regionSize
			size = int(s) + 1
			if disp+size > regionSize {
				size = regionSize - disp
			}
			return disp, size
		}
		gd1, gs1 := clampSpan(d1, s1)
		gd2, gs2 := clampSpan(d2, s2)
		pdisp, psize := clampSpan(pd, ps)

		withCache(t, regionSize, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
			// model mirrors what the target region must contain.
			model := make([]byte, regionSize)
			for i := range model {
				model[i] = pattern(i)
			}

			// Cache two spans so the put below may overlap CACHED
			// entries fully, partially, or not at all.
			for _, span := range [][2]int{{gd1, gs1}, {gd2, gs2}} {
				buf := make([]byte, span[1])
				if err := c.Get(buf, datatype.Byte, span[1], 1, span[0]); err != nil {
					return err
				}
				if err := win.Flush(1); err != nil {
					return err
				}
			}

			// Write through the cache; overlapping entries must drop.
			src := make([]byte, psize)
			for i := range src {
				src[i] = ^pattern(pdisp + i)
			}
			if err := c.Put(src, datatype.Byte, psize, 1, pdisp); err != nil {
				return err
			}
			if err := win.Flush(1); err != nil {
				return err
			}
			copy(model[pdisp:pdisp+psize], src)

			// Every span re-read through the cache must match the
			// model — a stale byte means the invalidation missed an
			// overlap.
			for _, span := range [][2]int{{gd1, gs1}, {gd2, gs2}, {pdisp, psize}} {
				buf := make([]byte, span[1])
				if err := c.Get(buf, datatype.Byte, span[1], 1, span[0]); err != nil {
					return err
				}
				if err := win.Flush(1); err != nil {
					return err
				}
				for i, b := range buf {
					if b != model[span[0]+i] {
						t.Errorf("stale byte at disp %d+%d: got %#x want %#x (put [%d,%d))",
							span[0], i, b, model[span[0]+i], pdisp, pdisp+psize)
						return nil
					}
				}
			}
			return nil
		})
	})
}
