package core

import (
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/mpi"
)

// TestCacheOverPSCWEpochs demonstrates the paper's claim that CLaMPI
// depends only on the epoch-closure event, not on the synchronization
// mode: over generalized active-target (post-start-complete-wait)
// epochs, Complete plays the role Flush plays in passive mode — PENDING
// entries become CACHED there, and repeats in later epochs hit.
func TestCacheOverPSCWEpochs(t *testing.T) {
	err := mpi.Run(2, mpi.Config{}, func(r *mpi.Rank) error {
		region := make([]byte, 1024)
		if r.ID() == 1 {
			for i := range region {
				region[i] = pattern(i)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()

		var fnErr error
		if r.ID() == 0 {
			var c *Cache
			c, fnErr = New(win, alwaysParams())
			if fnErr == nil {
				fnErr = func() error {
					dst := make([]byte, 128)
					for round := 0; round < 3; round++ {
						if err := win.Start([]int{1}); err != nil {
							return err
						}
						if err := c.Get(dst, datatype.Byte, 128, 1, 64); err != nil {
							return err
						}
						if err := win.Complete(); err != nil {
							return err
						}
						checkData(t, dst, 64)
						want := AccessDirect
						if round > 0 {
							want = AccessHit
						}
						if a := c.LastAccess(); a.Type != want {
							t.Errorf("round %d: access %v, want %v", round, a.Type, want)
						}
					}
					if s := c.Stats(); s.Hits != 2 || s.Direct != 1 {
						t.Errorf("stats = %s", s.String())
					}
					return c.CheckIntegrity()
				}()
			}
		} else {
			for round := 0; round < 3; round++ {
				if err := win.Post([]int{0}); err != nil {
					return err
				}
				if err := win.Wait(); err != nil {
					return err
				}
			}
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		t.Fatal(err)
	}
}
