package core

// Locality awareness and the node-shared L2 tier (DESIGN.md §15).
//
// When Params.LocalityAware is set and the backend implements
// rma.LocalityWindow, the cache stops treating every remote byte as
// equally expensive:
//
//   - Admission: a miss on a same-process/same-socket target whose fill
//     cost is below Params.CheapFillThreshold is served direct without
//     being cached (Stats.CheapSkips) — caching it would spend storage
//     and eviction pressure to save less than the management cost.
//   - Eviction: the §III-D victim score is multiplied by the entry's
//     refill cost, so at equal recency a cheap-to-refill entry loses to
//     an expensive one.
//   - Resilience: retry backoff and breaker cooldowns scale with the
//     target's distance — a flapping far target is probed on its own
//     RTT scale, not a same-socket one.
//
// Params.L2 additionally attaches a node-shared second-level block
// cache: far-target misses probe it before crossing the network, and
// their (block-aligned, overfetched) fills are published back at epoch
// closure so sibling ranks on the node are served from local memory.
// Everything here lives on the miss/evict/retry paths only — the L1
// full-hit path stays lock-free, allocation-free and at its 108 vns/op
// budget.

import (
	"clampi/internal/cuckoo"
	"clampi/internal/datatype"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// Defaults for the locality Params left zero.
const (
	// DefaultCheapFillThreshold keeps small same-socket fills
	// (DefaultModel: ~130 ns same-process, ~420 ns same-socket at
	// 256 B) out of the cache while still admitting large ones, whose
	// transfer term dominates.
	DefaultCheapFillThreshold = 600 * simtime.Nanosecond
	// DefaultL2MinClass routes other-node and farther misses through
	// L2: block overfetch only pays off when re-crossing the network
	// is expensive.
	DefaultL2MinClass = rma.DistanceOtherNode

	// distScaleRefNs is the same-socket reference fill cost (ns) the
	// backoff/cooldown scale is measured against (DefaultModel, 256 B).
	distScaleRefNs = 424.0
	// distScaleMax caps the backoff/cooldown stretch for very far (or
	// wire-measured, ~100 µs RTT) targets.
	distScaleMax = 8.0
)

// DistanceStats aggregates per-distance-class cache activity. Tracked
// only when the backend reports locality (otherwise all zero).
type DistanceStats struct {
	Gets             int64            // gets towards targets of this class
	Hits             int64            // served locally (L1 or L2)
	Misses           int64            // paid a network trip
	BytesFromNetwork int64            // bytes fetched from this class
	FillTime         simtime.Duration // modeled/measured cost of those fetches
}

// l2Fill is one staged block span awaiting publication into the
// node-shared tier at epoch closure (when its bytes become valid).
type l2Fill struct {
	target int
	lo     int // block-aligned start displacement
	data   []byte
}

// initLocality probes the window for rma.LocalityWindow and arms the
// cost-aware machinery. Called once from New, after c.mode is resolved.
func (c *Cache) initLocality() {
	if !c.params.LocalityAware && c.params.L2 == nil {
		return
	}
	lw, ok := c.win.(rma.LocalityWindow)
	if !ok {
		// Backend cannot tell targets apart: every locality feature is
		// inert, matching the documented Params contract.
		return
	}
	c.lw = lw
	c.distStats = make([]DistanceStats, rma.NumDistanceClasses)
	if c.params.LocalityAware {
		c.cheap = c.params.CheapFillThreshold
		if c.cheap <= 0 {
			c.cheap = DefaultCheapFillThreshold
		}
	}
	if c.params.L2 != nil && c.mode == AlwaysCache {
		// Transparent mode invalidates per rank-epoch; a tier shared
		// across ranks whose epochs differ cannot honour that freshness
		// guarantee, so L2 serves read-only (AlwaysCache) windows only.
		c.l2 = c.params.L2
		c.l2min = c.params.L2MinClass
		if c.l2min <= 0 {
			c.l2min = DefaultL2MinClass
		}
	}
}

// costAware reports whether cost-aware admission/eviction/resilience is
// armed. A single branch on non-locality runs.
func (c *Cache) costAware() bool { return c.lw != nil && c.params.LocalityAware }

// classOf returns target's distance class, clamped to the rma scale.
func (c *Cache) classOf(target int) int {
	d := c.lw.DistanceClass(target)
	if d < 0 {
		d = 0
	}
	if d >= rma.NumDistanceClasses {
		d = rma.NumDistanceClasses - 1
	}
	return d
}

// cheapSkip reports whether a miss towards target should bypass
// admission: near target, fill cheaper than the threshold.
func (c *Cache) cheapSkip(target, size int) bool {
	if !c.costAware() {
		return false
	}
	return c.classOf(target) <= rma.DistanceSameSocket &&
		c.lw.FillCost(target, size) < c.cheap
}

// evictWeight is the refill-cost factor of the victim score: the
// modeled/measured cost of re-fetching e's payload from its target.
// Multiplying the (dimensionless, [0,1]) base score by it preserves
// ordering within a class and makes cheap-to-refill entries lose to
// expensive ones at equal recency (DESIGN.md §15).
func (c *Cache) evictWeight(e *entry) float64 {
	return float64(c.lw.FillCost(e.key.Target, e.payload))
}

// distScale returns the backoff/cooldown multiplier for target: its
// fill cost relative to a same-socket reference, clamped to
// [1, distScaleMax]. Deterministic, so retry schedules stay replayable.
func (c *Cache) distScale(target int) float64 {
	f := float64(c.lw.FillCost(target, 256)) / distScaleRefNs
	if f < 1 {
		return 1
	}
	if f > distScaleMax {
		return distScaleMax
	}
	return f
}

// scaledBackoff stretches one retry backoff by the target's distance.
func (c *Cache) scaledBackoff(d simtime.Duration, target int) simtime.Duration {
	if !c.costAware() {
		return d
	}
	return simtime.Duration(float64(d) * c.distScale(target))
}

// breakerCooldown is the distance-scaled fail-fast window for target.
func (c *Cache) breakerCooldown(target int) simtime.Duration {
	d := c.brk.pol.Cooldown
	if !c.costAware() {
		return d
	}
	return simtime.Duration(float64(d) * c.distScale(target))
}

// noteDistHit attributes one locally served get to target's class.
func (c *Cache) noteDistHit(target int) {
	if c.distStats == nil {
		return
	}
	d := &c.distStats[c.classOf(target)]
	d.Gets++
	d.Hits++
}

// noteDistMiss attributes one network fetch of n bytes to target's class.
func (c *Cache) noteDistMiss(target, n int) {
	if c.distStats == nil {
		return
	}
	d := &c.distStats[c.classOf(target)]
	d.Gets++
	d.Misses++
	d.BytesFromNetwork += int64(n)
	d.FillTime += c.lw.FillCost(target, n)
}

// DistanceStats returns a copy of the per-distance-class counters
// (empty when the backend reports no locality).
func (c *Cache) DistanceStats() []DistanceStats {
	out := make([]DistanceStats, len(c.distStats))
	copy(out, c.distStats)
	return out
}

// l2Routed reports whether this miss goes through the node-shared tier:
// dense payload, far enough target.
func (c *Cache) l2Routed(dtype datatype.Datatype, size, target int) bool {
	return c.l2 != nil && size > 0 && dtype.Size() == dtype.Extent() &&
		c.l2RangeRouted(target)
}

// l2RangeRouted is the target-only half of l2Routed, for the batch path
// whose coalesced ranges are dense by construction.
func (c *Cache) l2RangeRouted(target int) bool {
	return c.l2 != nil && c.classOf(target) >= c.l2min
}

// l2Probe probes the node-shared tier for [disp, disp+len(dst)) of
// target. On a hit it delivers into dst and applies the full hit
// accounting (a hit of the stack, L2 flavour); a miss charges the probe
// as management time. The bytes are NOT re-admitted into L1 (exclusive
// tiers): the node already holds them one memcpy away — duplicating
// them per rank would spend L1 capacity and eviction pressure on data
// that is effectively local already.
func (c *Cache) l2Probe(target, disp int, dst []byte) bool {
	var hit, fwd bool
	probeT := c.charge(CostL2Lookup+copyCost(len(dst)), func() {
		hit, fwd = c.l2.Lookup(c.rank, target, disp, dst)
	})
	if !hit {
		c.recordMgmt(probeT)
		return false
	}
	c.last.Copy += probeT
	c.stats.CopyTime += probeT
	c.stats.Hits++
	c.stats.FullHits++
	c.stats.L2Hits++
	if fwd {
		c.stats.SiblingForwards++
	}
	c.stats.BytesFromCache += int64(len(dst))
	c.last.Type = AccessHit
	c.noteDistHit(target)
	return true
}

// expandRunL2 widens a coalesced batch range to block alignment (clamped
// to the target's region) so the fetched span can be published into the
// node-shared tier at epoch closure. Returns lo/hi unchanged when the
// run is not L2-routed or the region end cannot be honoured.
func (c *Cache) expandRunL2(target, lo, hi int) (int, int) {
	if !c.l2RangeRouted(target) {
		return lo, hi
	}
	rs, err := c.win.RegionSize(target)
	if err != nil {
		return lo, hi
	}
	bs := c.l2.BlockSize()
	elo := lo - lo%bs
	ehi := ((hi + bs - 1) / bs) * bs
	if ehi > rs {
		ehi = rs
	}
	if elo < 0 || ehi < hi {
		return lo, hi
	}
	return elo, ehi
}

// serveMissL2 is serveMiss for L2-routed misses: probe the node-shared
// tier; on a hit deliver from node memory, on a miss fetch whole
// covering blocks (clamped to the region end), deliver the requested
// range, admit it into L1 and stage the blocks for publication at epoch
// closure.
func (c *Cache) serveMissL2(key cuckoo.Key, dst []byte, target, disp, size int) error {
	if c.l2Probe(target, disp, dst[:size]) {
		return nil
	}
	regionSize, err := c.win.RegionSize(target)
	if err != nil {
		return err
	}
	if disp < 0 || disp+size > regionSize {
		return rma.ErrBounds
	}
	// Block-aligned overfetch, clamped to the region end.
	bs := c.l2.BlockSize()
	lo := disp - disp%bs
	hi := lo + ((disp+size-lo+bs-1)/bs)*bs
	if hi > regionSize {
		hi = regionSize
	}
	span := hi - lo
	stage := c.stageBuf(span)
	if err := c.netGet(stage, datatype.Byte, span, target, lo); err != nil {
		return err
	}
	c.last.Issued = true
	c.stats.BytesFromNetwork += int64(span)
	// Deliver the requested range now. The simulated transport fills
	// stage at issue time (physically), and the §II contract makes both
	// stage and dst valid at the same completion call — exactly as if
	// dst had been the MPI_Get destination itself.
	off := disp - lo
	copyT := c.copyOut(dst[:size], stage[off:off+size])
	c.last.Copy += copyT
	c.stats.CopyTime += copyT
	// Stage the block span for L2 publication when it becomes valid.
	c.l2pend = append(c.l2pend, l2Fill{target: target, lo: lo, data: stage})
	// Admit the exact requested range into L1; stage lives in the arena
	// until the pending queue drains, satisfying insertPending's src
	// contract.
	c.finish(c.insertPending(key, stage[off:off+size], size))
	return nil
}

// publishL2 pushes the epoch's staged fills into the node-shared tier.
// Runs inside onEpochClose, after the pending copy-ins and before the
// arena is reset (the staged slices live there). Each Publish takes one
// fill-ranked stripe at a time with a memcpy-only critical section, so
// the §12 hierarchy is respected with no lock held around it here.
func (c *Cache) publishL2() {
	if len(c.l2pend) == 0 {
		return
	}
	blocks, bytes := 0, 0
	d := c.chargeFn(func() {
		for i := range c.l2pend {
			f := &c.l2pend[i]
			blocks += c.l2.Publish(c.rank, f.target, f.lo, f.data)
			bytes += len(f.data)
			f.data = nil
		}
	}, func() simtime.Duration {
		return simtime.Duration(blocks)*CostL2PublishPerBlock + copyCost(bytes)
	})
	c.stats.MgmtTime += d
	c.stats.L2Fills += int64(blocks)
	c.l2pend = c.l2pend[:0]
}

// dropL2Pending discards staged fills without publishing (invalidation:
// the epoch's data is no longer trusted, and the arena backing the
// slices is about to be reset).
func (c *Cache) dropL2Pending() {
	for i := range c.l2pend {
		c.l2pend[i].data = nil
	}
	c.l2pend = c.l2pend[:0]
}
