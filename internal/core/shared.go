package core

// Shared is the scale-out variant of Cache: one cache instance serving
// many concurrent rank contexts (DESIGN.md §12).
//
// The per-rank Cache is deliberately single-owner — each simulated rank
// drives its own instance, and FidelityMeasured mode serializes ranks
// anyway. Shared exists for the opposite regime: thousands of
// lightweight contexts (threads of one caching agent, or co-located
// ranks sharing a node-level cache) hammering one index over a
// read-only window. Its concurrency model:
//
//   - The index is a cuckoo.Sharded: lookups are lock-free (seqlock
//     validated), mutations take the cuckoo shard's writer lock.
//   - Storage is sharded 1:1 with the index: shard i of the index is
//     backed by its own storage.Manager (with a private AVL arena, see
//     avl.Arena), so concurrent fills on different shards never contend
//     — not on the fill lock, not on allocation metadata, not on the
//     allocator's tree nodes.
//   - The hit path takes no lock at all: it registers in the shard's
//     reader count, probes the index, copies the payload out, and
//     leaves. Payload safety is by construction — the bytes of a
//     reachable entry are immutable, and evicted entries' storage is
//     only recycled after the shard's readers have quiesced (the
//     grace-period analog of the per-rank cache's epoch-deferred entry
//     recycling: dead entries park on a shard graveyard and are freed
//     when the reader count has been observed at zero).
//   - Fills, evictions and invalidation serialize per shard on the
//     shard's fill mutex (lock order: fill mutex first, then the cuckoo
//     writer lock — never the reverse).
//
// Semantic deviations from Cache, both legal under the paper's §II
// weak-consistency contract: fills are synchronous (the payload is
// copied into the cache at admission, not at epoch closure — Shared
// serves read-only windows, so there is no epoch to defer to), and a
// reader may serve a hit from an entry that a concurrent eviction has
// just unpublished (the bytes are still the target's bytes).
//
// A Shared performs no virtual-clock charging of its own: each Context
// accumulates the modeled cost of the work it drove (identical cost
// constants to Cache), so per-context virtual time is meaningful even
// though wall-clock execution is concurrent.

import (
	"errors"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"clampi/internal/cuckoo"
	"clampi/internal/simtime"
	"clampi/internal/storage"
)

// FetchFunc is the backend of a Shared cache: fetch the window bytes
// [disp, disp+len(dst)) of target into dst. It is called outside all
// cache locks, possibly from many contexts at once, and must be safe
// for concurrent use (mpi Throughput-mode windows are: the data path
// takes per-(target, stripe) read locks).
type FetchFunc func(target, disp int, dst []byte) error

// SharedParams configures a Shared cache. Zero values select defaults.
type SharedParams struct {
	// Shards is the number of index/storage segments (rounded up to a
	// power of two).
	Shards int
	// SlotsPerShard is the cuckoo slot count of each index segment.
	SlotsPerShard int
	// BytesPerShard is each shard's storage capacity.
	BytesPerShard int
	// SampleSize is M, the slots sampled per capacity eviction (§III-D).
	SampleSize int
	// Scheme selects the victim-scoring function.
	Scheme EvictionScheme
	// Seed makes hashing, walk randomness and sampling deterministic.
	Seed int64
}

// Defaults for SharedParams fields left zero.
const (
	DefaultShards        = 16
	DefaultSlotsPerShard = 512
	DefaultBytesPerShard = 256 << 10
)

func (p *SharedParams) setDefaults() {
	if p.Shards <= 0 {
		p.Shards = DefaultShards
	}
	if p.Shards&(p.Shards-1) != 0 {
		p.Shards = 1 << bits.Len(uint(p.Shards))
	}
	if p.SlotsPerShard <= 0 {
		p.SlotsPerShard = DefaultSlotsPerShard
	}
	if p.BytesPerShard <= 0 {
		p.BytesPerShard = DefaultBytesPerShard
	}
	if p.SampleSize <= 0 {
		p.SampleSize = DefaultSampleSize
	}
}

// sentry is the entry record of a Shared cache. Reachable records are
// immutable except for the recency stamp, which lock-free readers
// update atomically; all other fields are written under the owning
// shard's fill mutex before the record is published through the index.
type sentry struct {
	key     cuckoo.Key
	region  *storage.Region
	payload int          // valid bytes cached
	last    atomic.Int64 // clampi:atomic — global get sequence of the last hit
}

// sshard is the mutable per-shard state of a Shared cache.
type sshard struct {
	// mu is the fill lock: fills, evictions and invalidation of this
	// shard serialize on it. Lock order: mu before the cuckoo shard's
	// writer lock, never the reverse.
	mu sync.Mutex // clampi:lockrank fill

	// readers counts lock-free readers currently inside this shard's
	// hit path. Storage of dead entries is recycled only when it has
	// been observed at zero (grace-period reclamation).
	readers atomic.Int64 // clampi:atomic

	store *storage.Manager
	rng   *rand.Rand // eviction sampling, guarded by mu

	dead []*sentry // evicted records awaiting quiescent reclamation (mu)
	free []*sentry // recycled records (mu)

	// Gauges, exported lock-free through ShardStats.
	used      atomic.Int64 // clampi:atomic — bytes held by live entries
	fills     atomic.Int64 // clampi:atomic — admissions into this shard
	evictions atomic.Int64 // clampi:atomic — capacity + conflict evictions

	_ [64]byte // pad shards apart
}

// Shared is the concurrent cache. Create contexts with NewContext; all
// methods on Shared itself are safe for concurrent use.
type Shared struct {
	idx    *cuckoo.Sharded[*sentry]
	shards []sshard
	fetch  FetchFunc
	params SharedParams

	gets     atomic.Int64 // clampi:atomic — global get sequence (recency domain)
	sumSizes atomic.Int64 // clampi:atomic — for the average get size (ags)
}

// ErrNilFetch reports a Shared cache constructed without a backend.
var ErrNilFetch = errors.New("core: nil fetch backend")

// NewShared creates a concurrent cache over the given backend.
func NewShared(fetch FetchFunc, params SharedParams) (*Shared, error) {
	if fetch == nil {
		return nil, ErrNilFetch
	}
	params.setDefaults()
	c := &Shared{
		idx:    cuckoo.NewSharded[*sentry](params.Shards, params.SlotsPerShard, params.Seed),
		fetch:  fetch,
		params: params,
	}
	c.shards = make([]sshard, c.idx.ShardCount())
	for i := range c.shards {
		sh := &c.shards[i]
		sh.store = storage.NewWithPolicy(params.BytesPerShard, storage.BestFit)
		// Seed+1 stream per shard, matching Cache's sampling stream
		// discipline (hash families already consumed Seed+shard).
		sh.rng = rand.New(rand.NewSource(params.Seed + 1 + int64(i)))
	}
	return c, nil
}

// NumShards returns the shard count (power of two).
func (c *Shared) NumShards() int { return c.idx.ShardCount() }

// Len returns the number of cached entries across all shards.
func (c *Shared) Len() int { return c.idx.Len() }

// SeqlockRetries returns the total torn-read retries taken by lookups.
func (c *Shared) SeqlockRetries() uint64 { return c.idx.Retries() }

// avgGetSize returns the mean payload of all gets processed so far.
func (c *Shared) avgGetSize() float64 {
	n := c.gets.Load()
	if n == 0 {
		return 0
	}
	return float64(c.sumSizes.Load()) / float64(n)
}

// Context is one lightweight client of a Shared cache — cheap enough to
// create thousands (a few hundred bytes each, no goroutine, no lock).
// A Context is single-owner: one goroutine drives it. Different
// contexts may run concurrently against the same Shared.
type Context struct {
	c     *Shared
	id    int
	stats Stats
	vtime simtime.Duration
}

// NewContext creates a client context. id is caller-defined (a rank or
// thread id), used only for labeling.
func (c *Shared) NewContext(id int) *Context {
	return &Context{c: c, id: id}
}

// ID returns the caller-assigned context id.
func (x *Context) ID() int { return x.id }

// Stats returns the context's counters (work this context drove).
func (x *Context) Stats() Stats { return x.stats }

// VirtualTime returns the modeled cost of all cache work this context
// drove, using the same calibrated constants as the per-rank Cache.
func (x *Context) VirtualTime() simtime.Duration { return x.vtime }

// Get serves a byte-range get_c through the shared cache: lock-free hit
// path, synchronous miss fill. dst's length is the request size; on
// return dst holds the target bytes [disp, disp+len(dst)).
func (x *Context) Get(dst []byte, target, disp int) error {
	size := len(dst)
	c := x.c
	x.stats.Gets++
	seq := c.gets.Add(1)
	c.sumSizes.Add(int64(size))

	key := cuckoo.Key{Target: target, Disp: disp}
	si := c.idx.ShardOf(key)
	sh := &c.shards[si]

	// --- Hit path: no locks. The reader count is the only shared write
	// besides the recency stamp; both are single atomic ops.
	sh.readers.Add(1)
	e, ok := c.idx.Lookup(key)
	if ok {
		e.last.Store(seq)
		served := size
		if e.payload < served {
			served = e.payload
		}
		copy(dst[:served], sh.store.Bytes(e.region, served))
		sh.readers.Add(-1)
		x.stats.Hits++
		x.stats.BytesFromCache += int64(served)
		lookT, copyT := simtime.Duration(CostLookup), copyCost(served)
		x.stats.LookupTime += lookT
		x.stats.CopyTime += copyT
		x.vtime += lookT + copyT
		if served == size {
			x.stats.FullHits++
			return nil
		}
		// Partial hit: serve the cached prefix, fetch the suffix
		// remotely. Shared does not extend entries in place (a
		// reachable entry's bytes are immutable by contract).
		x.stats.PartialHits++
		if err := c.fetch(target, disp+served, dst[served:]); err != nil {
			return err
		}
		x.stats.BytesFromNetwork += int64(size - served)
		return nil
	}
	sh.readers.Add(-1)
	x.stats.LookupTime += CostLookup
	x.vtime += CostLookup

	// --- Miss: fetch outside all locks, then try to admit.
	if err := c.fetch(target, disp, dst); err != nil {
		return err
	}
	x.stats.BytesFromNetwork += int64(size)
	t := c.admit(x, key, si, dst)
	switch t {
	case AccessDirect:
		x.stats.Direct++
	case AccessConflicting:
		x.stats.Conflicting++
	case AccessCapacity:
		x.stats.Capacity++
	case AccessFailing:
		x.stats.Failing++
	}
	return nil
}

// admit tries to cache one fetched payload, mirroring the per-rank
// cache's weak-caching discipline: at most one capacity eviction, give
// up (AccessFailing) if storage still cannot be allocated. Runs under
// the shard fill lock.
func (c *Shared) admit(x *Context, key cuckoo.Key, si int, payload []byte) AccessType {
	size := len(payload)
	sh := &c.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()

	if _, ok := c.idx.Lookup(key); ok {
		// Another context admitted this key while our fetch was in
		// flight; the data was delivered from the network, nothing to
		// cache.
		return AccessDirect
	}
	// Opportunistic reclamation: recycle the graveyard if the shard's
	// readers happen to be quiescent right now.
	c.reclaim(sh, false)

	mgmt := simtime.Duration(CostAlloc)
	region := sh.store.Alloc(size)
	accessType := AccessDirect
	if region == nil {
		victim := c.selectShardVictim(x, sh, si)
		if victim != nil {
			c.evictShardEntry(x, sh, victim)
			accessType = AccessCapacity
			// The victim's storage is only usable after its readers
			// are gone: wait for quiescence, then free the graveyard.
			c.reclaim(sh, true)
			region = sh.store.Alloc(size)
			mgmt += CostAlloc
		}
		if region == nil {
			// Weak caching: a single eviction did not make room.
			x.recordMgmt(mgmt)
			return AccessFailing
		}
	}

	copy(sh.store.Bytes(region, size), payload)
	copyT := copyCost(size)
	x.stats.CopyTime += copyT
	x.vtime += copyT

	e := sh.newEntry(key, region, size)
	e.last.Store(c.gets.Load())
	out := c.idx.Insert(key, e)
	mgmt += CostInsert
	if !out.Placed {
		// Conflict: every candidate slot of the homeless element is
		// occupied (Shared has no PENDING entries, so all occupants
		// are evictable). Displace the lowest-scoring one.
		slot := c.selectShardConflictVictim(x, sh, si, out.CandidateSlots)
		evictedKey, evicted, had := c.idx.ReplaceAt(si, slot, out.HomelessKey, out.HomelessVal)
		mgmt += CostInsert + CostFree
		if had {
			_ = evictedKey
			c.buryEntry(x, sh, evicted)
		}
		accessType = AccessConflicting
	}
	sh.used.Add(int64(region.Size()))
	sh.fills.Add(1)
	x.recordMgmt(mgmt)
	return accessType
}

// recordMgmt attributes management cost to the context.
func (x *Context) recordMgmt(d simtime.Duration) {
	x.stats.MgmtTime += d
	x.vtime += d
}

// newEntry takes a record off the shard's free list (or allocates one).
// Caller holds sh.mu.
func (sh *sshard) newEntry(key cuckoo.Key, region *storage.Region, size int) *sentry {
	var e *sentry
	if n := len(sh.free); n > 0 {
		e = sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
	} else {
		e = &sentry{}
	}
	e.key = key
	e.region = region
	e.payload = size
	return e
}

// selectShardVictim runs the §III-D sampling procedure over one shard:
// visit M slots from a random start (extending until a candidate is
// seen), return the lowest-scoring entry. Caller holds sh.mu, so the
// snapshot cannot race another evictor of this shard.
func (c *Shared) selectShardVictim(x *Context, sh *sshard, si int) *sentry {
	var (
		victim   *sentry
		visited  int
		nonEmpty int
	)
	best := math.Inf(1)
	start := sh.rng.Intn(c.idx.SlotsPerShard())
	c.idx.ScanShard(si, start, func(_ int, _ cuckoo.Key, e *sentry, used bool) bool {
		visited++
		if used {
			nonEmpty++
			if s := c.shardScore(sh, e); s < best {
				best = s
				victim = e
			}
		}
		return visited < c.params.SampleSize || nonEmpty == 0
	})
	d := simtime.Duration(visited)*CostPerScanSlot + simtime.Duration(nonEmpty)*CostPerScoredEntry
	x.stats.EvictionScans++
	x.stats.VisitedSlots += int64(visited)
	x.stats.NonEmptyVisited += int64(nonEmpty)
	x.stats.EvictTime += d
	x.vtime += d
	return victim
}

// selectShardConflictVictim picks the lowest-scoring occupant among the
// homeless element's candidate slots. Caller holds sh.mu.
func (c *Shared) selectShardConflictVictim(x *Context, sh *sshard, si int, candidates [cuckoo.NumHashes]int) int {
	victimSlot := candidates[0]
	best := math.Inf(1)
	for _, s := range candidates {
		_, e, used := c.idx.At(si, s)
		if !used {
			// An empty candidate cannot happen after a failed walk,
			// but if it did, displacing nothing is the best outcome.
			return s
		}
		if sc := c.shardScore(sh, e); sc < best {
			best = sc
			victimSlot = s
		}
	}
	d := simtime.Duration(cuckoo.NumHashes) * CostPerScoredEntry
	x.stats.EvictTime += d
	x.vtime += d
	return victimSlot
}

// shardScore is Cache.score over a shard-local entry: R_P × R_T for the
// full scheme, single factors for the ablation schemes.
func (c *Shared) shardScore(sh *sshard, e *sentry) float64 {
	temporal := func() float64 {
		n := c.gets.Load()
		if n == 0 {
			return 0
		}
		return float64(e.last.Load()) / float64(n)
	}
	positional := func() float64 {
		ags := c.avgGetSize()
		if ags <= 0 {
			return 1
		}
		s := math.Abs(ags-float64(sh.store.AdjacentFree(e.region))) / ags
		if s > 1 {
			return 1
		}
		return s
	}
	switch c.params.Scheme {
	case SchemeTemporal:
		return temporal()
	case SchemePositional:
		return positional()
	default:
		return positional() * temporal()
	}
}

// evictShardEntry unpublishes a capacity victim and parks it on the
// graveyard. Caller holds sh.mu.
func (c *Shared) evictShardEntry(x *Context, sh *sshard, e *sentry) {
	c.idx.Delete(e.key)
	d := simtime.Duration(CostLookup + CostFree)
	x.stats.EvictTime += d
	x.vtime += d
	c.buryEntry(x, sh, e)
}

// buryEntry moves an unpublished entry to the graveyard: its storage is
// freed only after the shard's readers quiesce (reclaim). Caller holds
// sh.mu; the entry must already be out of the index.
func (c *Shared) buryEntry(x *Context, sh *sshard, e *sentry) {
	sh.used.Add(-int64(e.region.Size()))
	sh.evictions.Add(1)
	sh.dead = append(sh.dead, e)
	x.stats.Evictions++
}

// reclaim frees the graveyard's storage and recycles its records. A
// dead entry is unreachable through the index, but a reader that looked
// it up before the eviction may still be copying from its region — so
// storage is freed only once the reader count has been observed at
// zero. With force, reclaim waits for quiescence (the eviction path
// needs the space now); otherwise it returns if readers are present.
// Caller holds sh.mu. The wait cannot deadlock: readers never take mu,
// and no cuckoo write section is open here, so in-flight readers drain
// in bounded time.
func (c *Shared) reclaim(sh *sshard, force bool) {
	if len(sh.dead) == 0 {
		return
	}
	if force {
		for sh.readers.Load() != 0 {
			runtime.Gosched()
		}
	} else if sh.readers.Load() != 0 {
		return
	}
	for i, e := range sh.dead {
		sh.store.FreeRegion(e.region)
		e.region = nil
		e.payload = 0
		sh.free = append(sh.free, e)
		sh.dead[i] = nil
	}
	sh.dead = sh.dead[:0]
}

// Invalidate drops every cached entry, shard by shard. Concurrent gets
// remain safe: in-flight readers finish against the pre-invalidation
// storage (freed only after they quiesce), later gets miss and refill.
func (c *Shared) Invalidate() {
	for i := range c.shards {
		c.InvalidateShard(i)
	}
}

// InvalidateShard drops one shard's entries.
func (c *Shared) InvalidateShard(si int) {
	sh := &c.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c.idx.ClearShard(si, func(_ cuckoo.Key, e *sentry) {
		sh.dead = append(sh.dead, e)
	})
	// Wait out in-flight readers, then drop all storage wholesale: the
	// graveyard's regions are reclaimed by the Reset, so records are
	// recycled directly.
	for sh.readers.Load() != 0 {
		runtime.Gosched()
	}
	for i, e := range sh.dead {
		e.region = nil
		e.payload = 0
		sh.free = append(sh.free, e)
		sh.dead[i] = nil
	}
	sh.dead = sh.dead[:0]
	sh.store.Reset()
	sh.used.Store(0)
}

// ShardStats is a lock-free snapshot of one shard's gauges, exported to
// the observability bridge (obsv.PublishSharedStats).
type ShardStats struct {
	Entries        int    // live entries in the shard's index segment
	UsedBytes      int64  // storage held by live entries
	CapacityBytes  int    // the shard's storage capacity
	SeqlockRetries uint64 // torn-read retries taken by lookups
	Fills          int64  // admissions
	Evictions      int64  // capacity + conflict evictions
}

// Occupancy returns UsedBytes/CapacityBytes.
func (s ShardStats) Occupancy() float64 {
	if s.CapacityBytes == 0 {
		return 0
	}
	return float64(s.UsedBytes) / float64(s.CapacityBytes)
}

// ShardStats snapshots one shard's gauges without taking its fill lock
// (every field is either atomic or immutable after construction).
func (c *Shared) ShardStats(si int) ShardStats {
	sh := &c.shards[si]
	return ShardStats{
		Entries:        c.idx.LenShard(si),
		UsedBytes:      sh.used.Load(),
		CapacityBytes:  sh.store.Capacity(),
		SeqlockRetries: c.idx.RetriesShard(si),
		Fills:          sh.fills.Load(),
		Evictions:      sh.evictions.Load(),
	}
}
