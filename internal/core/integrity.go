package core

import (
	"fmt"

	"clampi/internal/cuckoo"
	"clampi/internal/rma"
	"clampi/internal/storage"
)

// CheckIntegrity validates the cross-structure invariants between the
// index and the storage manager. It is O(|I_w| + entries) and intended
// for tests and debugging assertions:
//
//   - every indexed entry is CACHED or PENDING (never evicted),
//   - entry payloads fit their storage regions, and regions are
//     allocated (not free),
//   - no two entries share a region,
//   - every PENDING entry is queued for epoch-closure processing,
//   - the storage manager's own invariants hold.
func (c *Cache) CheckIntegrity() error {
	if err := c.store.CheckInvariants(); err != nil {
		return err
	}
	pendingSet := make(map[*entry]bool, len(c.pending))
	for _, e := range c.pending {
		pendingSet[e] = true
	}
	regions := make(map[*storage.Region]cuckoo.Key)
	indexed := 0
	var err error
	c.idx.Walk(func(k cuckoo.Key, e *entry) bool {
		indexed++
		if e == nil {
			err = fmt.Errorf("core: nil entry indexed at %v", k)
			return false
		}
		if e.key != k {
			err = fmt.Errorf("core: entry key %v indexed under %v", e.key, k)
			return false
		}
		switch e.state {
		case stateEvicted:
			err = fmt.Errorf("core: evicted entry %v still indexed", k)
			return false
		case statePending:
			if !pendingSet[e] {
				err = fmt.Errorf("core: PENDING entry %v not queued for epoch closure", k)
				return false
			}
			if e.src == nil {
				err = fmt.Errorf("core: PENDING entry %v has no source buffer", k)
				return false
			}
		case stateCached:
			if len(e.waiters) != 0 {
				err = fmt.Errorf("core: CACHED entry %v has %d waiters", k, len(e.waiters))
				return false
			}
			if c.verify && e.sum != 0 && rma.ChecksumBytes(c.store.Bytes(e.region, e.payload)) != e.sum {
				err = fmt.Errorf("core: CACHED entry %v fails its payload checksum", k)
				return false
			}
		}
		if e.region == nil || e.region.Free() {
			err = fmt.Errorf("core: entry %v has free/nil region", k)
			return false
		}
		if e.payload > e.region.Size() {
			err = fmt.Errorf("core: entry %v payload %d exceeds region %v", k, e.payload, e.region)
			return false
		}
		if prev, dup := regions[e.region]; dup {
			err = fmt.Errorf("core: entries %v and %v share region %v", prev, k, e.region)
			return false
		}
		regions[e.region] = k
		return true
	})
	if err != nil {
		return err
	}
	if indexed != c.idx.Len() {
		return fmt.Errorf("core: walked %d entries, index reports %d", indexed, c.idx.Len())
	}
	// Entries not reachable through the index must not hold storage:
	// every allocated region belongs to an indexed entry, except the
	// regions of PENDING entries that lost their index slot — which we
	// forbid (dropHomeless frees them), so counts must match exactly.
	if c.store.Entries() != len(regions) {
		return fmt.Errorf("core: storage holds %d regions, index references %d", c.store.Entries(), len(regions))
	}
	return nil
}
