package core

// Shared-cache micro benchmarks, part of the BenchmarkOp* perfgate set.
// BenchmarkOpSharedHitFull gates 0 allocs/op on the concurrent cache's
// lock-free hit path; BenchmarkOpSharedHitParallel is the multicore
// contention benchmark — with GOMAXPROCS>1 it demonstrates reader
// scaling (hit path takes no locks), and on a single-core host it still
// gates the contended hot path's host time. The structural lock-freedom
// proof that backs the scaling claim on any core count is
// TestSharedStructuralNonBlockingReads.

import (
	"sync/atomic"
	"testing"
)

// benchShared builds a prefilled shared cache over a pattern backend.
func benchShared(b *testing.B, params SharedParams, prefill int) *Shared {
	b.Helper()
	c, err := NewShared(func(target, disp int, dst []byte) error {
		for i := range dst {
			dst[i] = sharedPattern(target, disp+i)
		}
		return nil
	}, params)
	if err != nil {
		b.Fatal(err)
	}
	x := c.NewContext(-1)
	dst := make([]byte, 256)
	for i := 0; i < prefill; i++ {
		if err := x.Get(dst, 1, i*256); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkOpSharedHitFull measures the shared cache's steady-state
// full-hit path from one context: lock-free lookup plus copy-out, gated
// at 0 allocs/op with the same 108 vns/op as the per-rank full hit.
func BenchmarkOpSharedHitFull(b *testing.B) {
	c := benchShared(b, SharedParams{Shards: 16, Seed: 42}, 64)
	x := c.NewContext(0)
	dst := make([]byte, 256)
	if err := x.Get(dst, 1, 128*256); err != nil { // one warm miss
		b.Fatal(err)
	}
	if err := x.Get(dst, 1, 128*256); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	v0 := x.VirtualTime()
	for i := 0; i < b.N; i++ {
		if err := x.Get(dst, 1, 128*256); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(x.VirtualTime()-v0)/float64(b.N), "vns/op")
}

// BenchmarkOpSharedHitParallel is the contention benchmark: GOMAXPROCS
// goroutines, each with its own context, hammer cached entries spread
// across all shards. The hit path takes no mutex, so with multiple
// cores host ns/op should stay near the single-context figure (reader
// scaling); with GOMAXPROCS=1 it degenerates to a throughput check.
func BenchmarkOpSharedHitParallel(b *testing.B) {
	const keys = 64
	c := benchShared(b, SharedParams{Shards: 16, Seed: 42}, keys)
	var ids atomic.Int64
	var vtotal, ops atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		x := c.NewContext(int(ids.Add(1)))
		dst := make([]byte, 256)
		i := x.ID()
		n := int64(0)
		for pb.Next() {
			i++
			if err := x.Get(dst, 1, (i%keys)*256); err != nil {
				b.Error(err)
				return
			}
			n++
		}
		vtotal.Add(int64(x.VirtualTime()))
		ops.Add(n)
	})
	b.StopTimer()
	if n := ops.Load(); n > 0 {
		b.ReportMetric(float64(vtotal.Load())/float64(n), "vns/op")
	}
}
