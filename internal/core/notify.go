package core

// Notification-driven coherence and write caching (DESIGN.md §16).
//
// The paper's transparent mode keeps a window coherent by invalidating
// the whole cache at every epoch closure — correct, but every epoch
// starts cold even when nothing was written. When the backend implements
// rma.NotifyWindow (the UNR notifiable-RMA extension), Params.
// NotifyTargeted subscribes the cache to its window's write
// notifications instead: each remote PutNotify names the exact byte span
// it wrote, and draining the queue invalidates (or, when the descriptor
// carries the written bytes, patches in place) only the cached entries
// that span touches. Coherence becomes bounded-staleness: a cached span
// may be served at most as stale as the undrained queue, and the queue
// is drained at every access and every epoch boundary.
//
// The model is only sound when every delivery anomaly degrades towards
// *more* invalidation, never less:
//
//   - queue overflow (the transport shed descriptors) → full invalidation;
//   - a sequence gap (a descriptor was lost in transit) → full invalidation;
//   - a duplicate or reordered redelivery → the span is invalidated but
//     never patched (its carried bytes may predate a newer write).
//
// Write caching rides the same machinery in the opposite direction: Put
// and PutNotify patch exactly-covering cached entries in place (a write
// hit — the origin's own reads keep hitting), and Params.WriteBack
// stages dense spans in a dirty buffer that flushes as coalesced runs at
// epoch closure or under pressure, cutting per-call network trips the
// way GetBatch coalesces misses.

import (
	"errors"
	"slices"

	"clampi/internal/cuckoo"
	"clampi/internal/datatype"
	"clampi/internal/notify"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// ErrNoNotify reports PutNotify on a cache whose window does not
// implement rma.NotifyWindow.
var ErrNoNotify = errors.New("core: window does not support notifications")

// notifyDrainBatch is the drain scratch size: one NotifyPoll's worth of
// descriptors processed per loop iteration.
const notifyDrainBatch = 64

// dirtySpan is one write-back-staged write: data (carved off wbArena)
// destined for [disp, disp+len(data)) of target's region. notified spans
// flush through PutNotify with the recorded tag, plain ones through Put.
type dirtySpan struct {
	target int
	disp   int
	data   []byte
	tag    uint32
	notify bool
}

// PutNotify is Put with a write notification: the write is delivered to
// the target and a descriptor naming (origin, target, disp, span, tag)
// is pushed to every subscribed rank (rma.NotifyWindow). The local cache
// is kept coherent exactly as in Put. ErrNoNotify when the backend lacks
// the extension.
func (c *Cache) PutNotify(src []byte, dtype datatype.Datatype, count, target, disp int, tag uint32) error {
	if c.nw == nil {
		return ErrNoNotify
	}
	return c.write(src, dtype, count, target, disp, tag, true)
}

// NotifyQueueDepth returns the number of undrained notification
// descriptors (0 when the cache is not subscribed) — the observability
// gauge feed.
func (c *Cache) NotifyQueueDepth() int {
	if !c.nsub {
		return 0
	}
	return c.nw.NotifyDepth()
}

// write is the shared Put/PutNotify implementation: local coherence
// (patch or invalidate), then write-through or write-back staging.
func (c *Cache) write(src []byte, dtype datatype.Datatype, count, target, disp int, tag uint32, notified bool) error {
	if c.wbErr != nil {
		err := c.wbErr
		c.wbErr = nil
		return err
	}
	if c.nsub && c.nw.NotifyDepth() > 0 {
		// Writes participate in access-time coherence like reads do: a
		// queued remote write to the same span must not be patched over
		// after our own (later) write lands.
		c.drainNotifications()
	}
	size := datatype.TransferSize(dtype, count)
	if len(src) < size {
		return rma.ErrShortBuf
	}
	if contig := size > 0 && datatype.Contig(dtype, count); contig {
		if c.writePatch(target, disp, src[:size]) {
			c.stats.WriteHits++
		} else {
			c.InvalidateRange(target, disp, size)
		}
		if c.params.WriteBack {
			return c.stageDirty(target, disp, src[:size], tag, notified)
		}
	} else {
		// Invalidate the full extent touched by the (possibly strided)
		// write: the span is conservative for sparse datatypes. Strided
		// writes never stage — flattening them buys nothing.
		c.InvalidateRange(target, disp, datatype.Span(dtype, count))
	}
	if notified {
		return c.nw.PutNotify(src, dtype, count, target, disp, tag)
	}
	return c.win.Put(src, dtype, count, target, disp)
}

// writePatch updates an exactly-covering CACHED entry in place with the
// written bytes and reports whether it did. Anything less than an exact
// cover (absent, PENDING, evicted, or a different payload size) is left
// for the caller to invalidate: patching a partial overlap would need
// sub-entry dirty tracking for no measured benefit.
func (c *Cache) writePatch(target, disp int, src []byte) bool {
	e, found, lookT := c.lookup(cuckoo.Key{Target: target, Disp: disp})
	c.stats.LookupTime += lookT
	if !found || e.state != stateCached || e.payload != len(src) {
		return false
	}
	copyT := c.charge(copyCost(len(src)), func() {
		copy(c.store.Bytes(e.region, e.payload), src)
	})
	c.stats.CopyTime += copyT
	if c.verify {
		c.charge(checksumCost(e.payload), func() {
			e.sum = rma.ChecksumBytes(c.store.Bytes(e.region, e.payload))
		})
	}
	e.last = c.getSeq
	if c.l2 != nil {
		// The shared tier has no in-place patch (blocks are immutable);
		// drop any blocks our write made stale.
		c.l2.InvalidateRange(target, disp, len(src))
	}
	return true
}

// drainNotifications empties the window's notification queue, applying
// each descriptor to the cache. Called whenever NotifyDepth reports
// pending descriptors: at access time (beginGet, write) and at epoch
// closure.
func (c *Cache) drainNotifications() {
	fellBack := false
	for {
		n, overflowed := c.nw.NotifyPoll(c.nbuf)
		if overflowed && !fellBack {
			// The queue shed descriptors: unknown spans changed, so
			// coherence is restored conservatively. Once per drain — the
			// cache is already empty afterwards.
			fellBack = true
			c.invalidate()
		}
		for i := range c.nbuf[:n] {
			c.applyNotification(&c.nbuf[i], &fellBack)
			c.nbuf[i] = notify.Notification{} // drop the Data reference
		}
		if n < len(c.nbuf) {
			break
		}
	}
	// Tail-loss reconciliation: a lost delivery with no later arrival
	// leaves no in-queue gap to observe, but it did consume a sequence
	// number at the transport. The queue is empty here, so trailing the
	// delivered-count register proves deliveries were missed.
	if last := c.nw.NotifyLastSeq(); last >= c.nextSeq {
		if !fellBack {
			c.invalidate()
		}
		c.nextSeq = last + 1
	}
}

// applyNotification applies one drained descriptor: in-sequence
// descriptors patch or invalidate their span, a sequence gap falls back
// to a full invalidation (a descriptor was lost in transit — fault
// injection and real UNR hardware both drop), and a stale sequence
// (duplicate or reordered redelivery) invalidates without ever patching.
func (c *Cache) applyNotification(nf *notify.Notification, fellBack *bool) {
	c.stats.Notifications++
	if !c.params.CostMeasured {
		c.clock.Busy(CostNotifyApply)
	}
	if nf.Seq > c.nextSeq {
		if !*fellBack {
			*fellBack = true
			c.invalidate()
		}
		c.nextSeq = nf.Seq + 1
		return
	}
	stale := nf.Seq < c.nextSeq
	if !stale {
		c.nextSeq++
	}
	if c.l2 != nil {
		c.l2.InvalidateRange(nf.Target, nf.Disp, nf.Len)
	}
	if !stale && c.patchNotification(nf) {
		c.stats.NotifyPatches++
		return
	}
	c.stats.NotifyInvalidations++
	c.InvalidateRange(nf.Target, nf.Disp, nf.Len)
}

// patchNotification applies a descriptor's carried bytes to an
// exactly-covering CACHED entry and reports whether it did — the
// in-place update that keeps a hot span hitting across remote writes.
func (c *Cache) patchNotification(nf *notify.Notification) bool {
	if len(nf.Data) != nf.Len {
		return false
	}
	e, found, lookT := c.lookup(cuckoo.Key{Target: nf.Target, Disp: nf.Disp})
	c.stats.LookupTime += lookT
	if !found || e.state != stateCached || e.payload != nf.Len {
		return false
	}
	copyT := c.charge(copyCost(nf.Len), func() {
		copy(c.store.Bytes(e.region, e.payload), nf.Data)
	})
	c.stats.CopyTime += copyT
	if c.verify {
		c.charge(checksumCost(e.payload), func() {
			e.sum = rma.ChecksumBytes(c.store.Bytes(e.region, e.payload))
		})
	}
	return true
}

// stageDirty admits one dense write into the write-back buffer. A write
// overlapping an already-staged span forces a flush first: the
// sort-and-merge flush below would otherwise reorder same-span writes.
func (c *Cache) stageDirty(target, disp int, src []byte, tag uint32, notified bool) error {
	for i := range c.dirty {
		d := &c.dirty[i]
		if d.target == target && d.disp < disp+len(src) && disp < d.disp+len(d.data) {
			if err := c.flushDirty(); err != nil {
				return err
			}
			break
		}
	}
	if !c.params.CostMeasured {
		c.clock.Busy(CostWriteStage)
	}
	buf := c.wbStage(len(src))
	copyT := c.charge(copyCost(len(src)), func() { copy(buf, src) })
	c.stats.CopyTime += copyT
	c.dirty = append(c.dirty, dirtySpan{target: target, disp: disp, data: buf, tag: tag, notify: notified})
	c.stats.WriteBacks++
	if len(c.dirty) >= c.params.WriteBackMaxSpans {
		return c.flushDirty()
	}
	return nil
}

// wbStage carves n bytes off the write-back arena — stageBuf's dual,
// except this arena lives until its spans flush, not until the epoch
// closes (a pressure flush can run mid-epoch). As with stageBuf, a
// replaced backing array stays alive through the span slices cut from
// it, so growth never invalidates staged spans.
func (c *Cache) wbStage(n int) []byte {
	if len(c.wbArena)+n > cap(c.wbArena) {
		c.wbArena = make([]byte, 0, max(n, 64<<10))
	}
	s := c.wbArena[len(c.wbArena) : len(c.wbArena)+n : len(c.wbArena)+n]
	c.wbArena = c.wbArena[:len(c.wbArena)+n]
	return s
}

// flushOverlap force-flushes the write-back buffer when a read overlaps
// a staged dirty span (read-your-writes); disjoint reads leave the
// buffer staged.
func (c *Cache) flushOverlap(target, disp, size int) error {
	for i := range c.dirty {
		d := &c.dirty[i]
		if d.target == target && d.disp < disp+size && disp < d.disp+len(d.data) {
			return c.flushDirty()
		}
	}
	return nil
}

// flushDirty issues every staged span, coalescing exactly-adjacent
// same-target runs (same notification kind and tag) into one message
// each — the GetBatch sort-and-merge idiom applied to writes, except
// only true adjacency merges: bridging a gap would write bytes the
// application never put. Spans are disjoint by construction (stageDirty
// pre-flushes overlaps), so the sorted order is the issue order. On a
// transport error the remaining runs still flush; the first error is
// returned.
func (c *Cache) flushDirty() error {
	if len(c.dirty) == 0 {
		return nil
	}
	if !c.params.CostMeasured {
		c.clock.Busy(simtime.Duration(len(c.dirty)) * CostBatchPlanPerMiss)
	}
	slices.SortFunc(c.dirty, func(a, b dirtySpan) int {
		if a.target != b.target {
			return a.target - b.target
		}
		return a.disp - b.disp
	})
	var firstErr error
	for i := 0; i < len(c.dirty); {
		d0 := &c.dirty[i]
		end := d0.disp + len(d0.data)
		j := i + 1
		for ; j < len(c.dirty); j++ {
			n := &c.dirty[j]
			if n.target != d0.target || n.notify != d0.notify || n.tag != d0.tag || n.disp != end {
				break
			}
			end += len(n.data)
		}
		payload := d0.data
		if j > i+1 {
			need := end - d0.disp
			if cap(c.wbMerge) < need {
				c.wbMerge = make([]byte, 0, need)
			}
			m := c.wbMerge[:0]
			copyT := c.charge(copyCost(need), func() {
				for k := i; k < j; k++ {
					m = append(m, c.dirty[k].data...)
				}
			})
			c.stats.CopyTime += copyT
			payload = m
		}
		var err error
		if d0.notify {
			err = c.nw.PutNotify(payload, datatype.Byte, len(payload), d0.target, d0.disp, d0.tag)
		} else {
			err = c.win.Put(payload, datatype.Byte, len(payload), d0.target, d0.disp)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		c.stats.DirtyFlushes++
		i = j
	}
	clear(c.dirty)
	c.dirty = c.dirty[:0]
	c.wbArena = c.wbArena[:0]
	return firstErr
}
