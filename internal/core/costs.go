package core

// Cost accounting for cache-management work.
//
// Every piece of CPU work the caching layer performs (lookup, allocation,
// index insertion, eviction scanning, memory copies) advances the owning
// rank's virtual clock. Two policies are available:
//
//   - Modeled (default): the clock advances by analytic per-operation
//     costs calibrated to the paper's hardware (2.6 GHz Xeon E5-2670).
//     Deterministic and immune to the noise of the simulation host
//     (goroutine preemption, GC, race-detector instrumentation), so the
//     figures regenerate reproducibly.
//   - Measured: the clock advances by the real wall time of each
//     operation as executed by this Go implementation. Honest about the
//     implementation's constants, but only meaningful on a quiet host
//     and never under `-race`.
//
// Both policies run the same code and move the same bytes; only the
// accounting differs.

import (
	"clampi/internal/netsim"
	"clampi/internal/simtime"
)

// Modeled per-operation costs (calibrated to a 2.6 GHz Xeon: a handful of
// dependent cache-resident loads each).
const (
	// CostLookup covers the p=4 Cuckoo probes and key compares.
	CostLookup = 80 * simtime.Nanosecond
	// CostInsert covers an average random-walk Cuckoo insertion.
	CostInsert = 200 * simtime.Nanosecond
	// CostAlloc covers the AVL best-fit search plus descriptor updates.
	CostAlloc = 150 * simtime.Nanosecond
	// CostFree covers descriptor unlink, coalescing and AVL updates.
	CostFree = 120 * simtime.Nanosecond
	// CostPerScanSlot is charged per index slot visited by the
	// eviction sampling procedure.
	CostPerScanSlot = 25 * simtime.Nanosecond
	// CostPerScoredEntry is charged per candidate whose score is
	// computed during victim selection.
	CostPerScoredEntry = 40 * simtime.Nanosecond
	// CostInvalidateBase is the fixed part of a cache invalidation;
	// clearing the index adds CostInvalidatePerSlot per slot.
	CostInvalidateBase = 500 * simtime.Nanosecond
	// CostInvalidatePerSlot models the index memset.
	CostInvalidatePerSlot = simtime.Nanosecond / 1 // 1ns per slot
	// CostBatchPlanPerMiss is charged per coalescible miss for the
	// sort-and-merge planning of a batched get (batch.go).
	CostBatchPlanPerMiss = 30 * simtime.Nanosecond
	// CostL2Lookup is the fixed cost of probing the node-shared L2 tier
	// (slot hash, seqlock bracket, tag compare); the payload copy out of
	// a hit is charged separately via copyCost. Crossing to another
	// core's cache lines makes it pricier than the L1 tag check.
	CostL2Lookup = 120 * simtime.Nanosecond
	// CostL2PublishPerBlock is the fixed per-block cost of publishing a
	// fill into L2 (stripe lock, box allocation bookkeeping); the block
	// copy itself is charged via copyCost.
	CostL2PublishPerBlock = 90 * simtime.Nanosecond
	// CostNotifyApply is the fixed per-descriptor cost of applying one
	// drained notification (sequence check, lookup decision); the span
	// scan or patch copy is charged separately. The empty-queue probe on
	// the hit path is one atomic load and charges nothing.
	CostNotifyApply = 60 * simtime.Nanosecond
	// CostWriteStage is the fixed per-span cost of staging one
	// write-back span (overlap check, dirty-list bookkeeping); the byte
	// copy is charged via copyCost.
	CostWriteStage = 70 * simtime.Nanosecond
)

// copyCost models a size-byte cache<->user copy.
func copyCost(size int) simtime.Duration { return netsim.MemcpyCost(size) }

// checksumCost models a size-byte FNV-1a integrity hash (resilience.go):
// byte-at-a-time multiply-xor, ~2.5 GB/s on the calibration Xeon, plus a
// small fixed cost.
func checksumCost(size int) simtime.Duration {
	const bytesPerSecond = 2.5e9
	const fixed = 25 * simtime.Nanosecond
	if size < 0 {
		size = 0
	}
	return fixed + simtime.Duration(float64(size)*1e9/bytesPerSecond)
}

// charge runs f and advances the clock according to the policy: by est
// when modelling, by the measured duration otherwise. It returns the
// amount charged.
func (c *Cache) charge(est simtime.Duration, f func()) simtime.Duration {
	if !c.params.CostMeasured {
		f()
		c.clock.Busy(est)
		return est
	}
	return c.clock.Charge(f)
}

// chargeFn is charge for operations whose modeled cost is only known
// after running (e.g. eviction scans): est is evaluated after f.
func (c *Cache) chargeFn(f func(), est func() simtime.Duration) simtime.Duration {
	if !c.params.CostMeasured {
		f()
		d := est()
		c.clock.Busy(d)
		return d
	}
	return c.clock.Charge(f)
}
