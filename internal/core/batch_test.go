package core

import (
	"bytes"
	"fmt"
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/mpi"
)

// withCacheMode is withCache with an explicit execution mode.
func withCacheMode(t *testing.T, mode mpi.ExecMode, regionSize int, params Params, fn func(c *Cache, win *mpi.Win, r *mpi.Rank) error) {
	t.Helper()
	err := mpi.Run(2, mpi.Config{Mode: mode}, func(r *mpi.Rank) error {
		region := make([]byte, regionSize)
		if r.ID() == 1 {
			for i := range region {
				region[i] = pattern(i)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		var fnErr error
		if r.ID() == 0 {
			var c *Cache
			c, fnErr = New(win, params)
			if fnErr == nil {
				fnErr = win.LockAll()
			}
			if fnErr == nil {
				fnErr = fn(c, win, r)
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		t.Fatal(err)
	}
}

// batchOpsMix is a workload exercising every batch classification: cold
// misses, adjacent runs, overlapping ranges, duplicate keys, a gap, and
// (on the second round) hits.
func batchOpsMix(dst []byte) []GetOp {
	cut := func(lo, n int) []byte { return dst[lo : lo+n : lo+n] }
	return []GetOp{
		{Dst: cut(0, 64), Target: 1, Disp: 64},     // run A head
		{Dst: cut(64, 64), Target: 1, Disp: 128},   // adjacent: extends A
		{Dst: cut(128, 32), Target: 1, Disp: 160},  // overlaps A's tail
		{Dst: cut(160, 64), Target: 1, Disp: 512},  // gap: run B
		{Dst: cut(224, 64), Target: 1, Disp: 512},  // duplicate key of B
		{Dst: cut(288, 16), Target: 1, Disp: 1024}, // run C
	}
}

// TestGetBatchEquivalence checks that a batch with coalescing disabled
// is observationally identical to the same ops issued as sequential
// Gets — byte-identical destinations and identical statistics — and that
// enabling coalescing still delivers byte-identical destinations.
func TestGetBatchEquivalence(t *testing.T) {
	const regionSize = 4096
	run := func(disableCoalesce, batch bool) (out []byte, st Stats) {
		p := alwaysParams()
		p.DisableCoalesce = disableCoalesce
		withCache(t, regionSize, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
			dst := make([]byte, 512)
			for round := 0; round < 2; round++ { // round 2 hits
				ops := batchOpsMix(dst)
				if batch {
					if err := c.GetBatch(ops); err != nil {
						return err
					}
				} else {
					for i := range ops {
						op := &ops[i]
						if err := c.Get(op.Dst, datatype.Byte, len(op.Dst), op.Target, op.Disp); err != nil {
							return err
						}
					}
				}
				if err := win.FlushAll(); err != nil {
					return err
				}
				if round == 0 {
					out = append([]byte(nil), dst...)
				} else if !bytes.Equal(out, dst) {
					t.Errorf("round 2 bytes differ from round 1")
				}
			}
			st = c.Stats()
			return nil
		})
		return out, st
	}

	seqBytes, seqStats := run(false, false)
	uncoBytes, uncoStats := run(true, true)
	coalBytes, coalStats := run(false, true)

	if !bytes.Equal(seqBytes, uncoBytes) {
		t.Errorf("uncoalesced batch bytes differ from sequential gets")
	}
	// BatchOps is the only counter allowed to differ without coalescing.
	uncoStats.BatchOps = seqStats.BatchOps
	if uncoStats != seqStats {
		t.Errorf("uncoalesced batch stats differ from sequential:\nbatch: %+v\nseq:   %+v", uncoStats, seqStats)
	}

	if !bytes.Equal(seqBytes, coalBytes) {
		t.Errorf("coalesced batch bytes differ from sequential gets")
	}
	if coalStats.BatchMessages >= coalStats.BatchMisses {
		t.Errorf("coalescing issued %d messages for %d misses", coalStats.BatchMessages, coalStats.BatchMisses)
	}
	// Verify the delivered payloads against the target's pattern.
	for _, ref := range []struct{ lo, n, disp int }{
		{0, 64, 64}, {64, 64, 128}, {128, 32, 160}, {160, 64, 512}, {224, 64, 512}, {288, 16, 1024},
	} {
		checkData(t, seqBytes[ref.lo:ref.lo+ref.n], ref.disp)
	}
}

// TestGetBatchCoalescingOracle pins the merge rule: the number of remote
// messages equals the number of maximal adjacent-or-overlapping runs per
// target, and the bytes fetched equal the merged extents.
func TestGetBatchCoalescingOracle(t *testing.T) {
	withCache(t, 4096, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 512)
		ops := batchOpsMix(dst)
		if err := c.GetBatch(ops); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		st := c.Stats()
		// Runs: [64,192) ∪ overlap, [512,576) with one duplicate, [1024,1040).
		if st.BatchMessages != 3 {
			t.Errorf("BatchMessages = %d, want 3", st.BatchMessages)
		}
		if st.BatchMisses != 6 {
			t.Errorf("BatchMisses = %d, want 6", st.BatchMisses)
		}
		if want := int64(128 + 64 + 16); st.BytesFromNetwork != want {
			t.Errorf("BytesFromNetwork = %d, want %d", st.BytesFromNetwork, want)
		}
		if st.PendingHits != 1 {
			t.Errorf("PendingHits = %d, want 1 (duplicate key)", st.PendingHits)
		}
		if got, want := st.BatchCoalesceRatio(), 2.0; got != want {
			t.Errorf("BatchCoalesceRatio = %v, want %v", got, want)
		}
		// A second identical batch is all full hits: no new messages.
		before := st.BatchMessages
		if err := c.GetBatch(batchOpsMix(dst)); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		st = c.Stats()
		if st.BatchMessages != before {
			t.Errorf("hit-round issued %d new messages", st.BatchMessages-before)
		}
		if st.FullHits < 6 {
			t.Errorf("FullHits = %d after hit round, want >= 6", st.FullHits)
		}
		return nil
	})
}

// TestGetBatchMultiTarget checks per-target coalescing: interleaved ops
// against two targets merge within each target only.
func TestGetBatchMultiTarget(t *testing.T) {
	err := mpi.Run(3, mpi.Config{}, func(r *mpi.Rank) error {
		region := make([]byte, 1024)
		if r.ID() != 0 {
			for i := range region {
				region[i] = pattern(i + r.ID())
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		var fnErr error
		if r.ID() == 0 {
			fnErr = func() error {
				c, err := New(win, alwaysParams())
				if err != nil {
					return err
				}
				if err := win.LockAll(); err != nil {
					return err
				}
				dst := make([]byte, 256)
				cut := func(lo, n int) []byte { return dst[lo : lo+n : lo+n] }
				ops := []GetOp{
					{Dst: cut(0, 64), Target: 2, Disp: 64},
					{Dst: cut(64, 64), Target: 1, Disp: 0},
					{Dst: cut(128, 64), Target: 1, Disp: 64},
					{Dst: cut(192, 64), Target: 2, Disp: 128},
				}
				if err := c.GetBatch(ops); err != nil {
					return err
				}
				if err := win.FlushAll(); err != nil {
					return err
				}
				st := c.Stats()
				// One run per target: [0,128) on 1, [64,192) on 2.
				if st.BatchMessages != 2 {
					t.Errorf("BatchMessages = %d, want 2", st.BatchMessages)
				}
				for i, op := range ops {
					for j, b := range op.Dst {
						if want := pattern(op.Disp + j + op.Target); b != want {
							t.Errorf("op %d byte %d: got %d want %d", i, j, b, want)
							break
						}
					}
				}
				return win.UnlockAll()
			}()
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestHotPathAllocs asserts the allocation discipline of the tentpole:
// steady-state full hits allocate nothing; steady-state misses (with
// their eviction, insertion and pending bookkeeping) stay at or under 2
// allocations per operation — in both execution modes.
func TestHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	for _, mode := range []mpi.ExecMode{mpi.FidelityMeasured, mpi.Throughput} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			t.Run("FullHit", func(t *testing.T) {
				withCacheMode(t, mode, 4096, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
					dst := make([]byte, 256)
					if err := c.Get(dst, datatype.Byte, 256, 1, 128); err != nil {
						return err
					}
					if err := win.FlushAll(); err != nil {
						return err
					}
					allocs := testing.AllocsPerRun(100, func() {
						if err := c.Get(dst, datatype.Byte, 256, 1, 128); err != nil {
							t.Error(err)
						}
					})
					if allocs != 0 {
						t.Errorf("full hit allocates %.1f times per op, want 0", allocs)
					}
					return nil
				})
			})
			t.Run("Miss", func(t *testing.T) {
				p := alwaysParams()
				p.StorageBytes = 8 << 10 // 128 64-byte entries: every round evicts
				withCacheMode(t, mode, 64<<10, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
					const perEpoch = 64
					dst := make([]byte, 64)
					round := 0
					epoch := func() {
						// 4 rotating key sets: every get misses, every
						// miss evicts an entry two rounds old.
						base := (round % 4) * perEpoch * 64
						round++
						for j := 0; j < perEpoch; j++ {
							if err := c.Get(dst, datatype.Byte, 64, 1, base+j*64); err != nil {
								t.Error(err)
								return
							}
						}
						if err := win.FlushAll(); err != nil {
							t.Error(err)
						}
					}
					for i := 0; i < 8; i++ { // warm pools to steady state
						epoch()
					}
					allocs := testing.AllocsPerRun(8, epoch)
					if perOp := allocs / perEpoch; perOp > 2 {
						t.Errorf("miss path allocates %.2f times per op, want <= 2", perOp)
					}
					return nil
				})
			})
		})
	}
}

// TestGetBatchAllocs pins the batch path's steady-state allocation rate:
// a warm, all-hit batch allocates nothing.
func TestGetBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	withCache(t, 4096, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 512)
		ops := batchOpsMix(dst)
		if err := c.GetBatch(ops); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		allocs := testing.AllocsPerRun(50, func() {
			if err := c.GetBatch(ops); err != nil {
				t.Error(err)
			}
		})
		if allocs != 0 {
			t.Errorf("all-hit batch allocates %.1f times per call, want 0", allocs)
		}
		return nil
	})
}
