package core

// Op-level micro benchmarks of the caching hot paths, measuring host
// time (ns/op with -benchmem for allocs/op) alongside the modeled
// virtual time reported as the custom vns/op metric. cmd/clampi-perfgate
// runs the BenchmarkOp* set and fails CI when the full-hit path
// allocates or host time regresses past the committed baseline.

import (
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/mpi"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// benchCache runs fn on rank 0 of a 2-rank world with a cache over a
// 1 MiB target region.
func benchCache(b *testing.B, params Params, fn func(c *Cache, win *mpi.Win, clock *simtime.Clock)) {
	b.Helper()
	err := mpi.Run(2, mpi.Config{}, func(r *mpi.Rank) error {
		region := make([]byte, 1<<20)
		if r.ID() == 1 {
			for i := range region {
				region[i] = pattern(i)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		var fnErr error
		if r.ID() == 0 {
			var c *Cache
			c, fnErr = New(win, params)
			if fnErr == nil {
				fnErr = win.LockAll()
			}
			if fnErr == nil {
				fn(c, win, r.Clock())
				fnErr = win.UnlockAll()
			}
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkOpHitFull measures the steady-state full-hit path: the
// tentpole target is 0 allocs/op.
func BenchmarkOpHitFull(b *testing.B) {
	benchCache(b, alwaysParams(), func(c *Cache, win *mpi.Win, clock *simtime.Clock) {
		dst := make([]byte, 256)
		if err := c.Get(dst, datatype.Byte, 256, 1, 128); err != nil {
			b.Error(err)
			return
		}
		if err := win.FlushAll(); err != nil {
			b.Error(err)
			return
		}
		b.ReportAllocs()
		b.ResetTimer()
		v0 := clock.Now()
		for i := 0; i < b.N; i++ {
			if err := c.Get(dst, datatype.Byte, 256, 1, 128); err != nil {
				b.Error(err)
				return
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(clock.Now()-v0)/float64(b.N), "vns/op")
	})
}

// BenchmarkOpHitFullResilient is BenchmarkOpHitFull with the full
// resilience layer compiled in and armed (retry policy, circuit breaker,
// fill verification) but zero faults injected: the fault-free hit path
// must stay 0 allocs/op — resilience is free until something fails.
func BenchmarkOpHitFullResilient(b *testing.B) {
	params := alwaysParams()
	retry := rma.DefaultRetryPolicy()
	brk := DefaultBreakerPolicy()
	params.Retry = &retry
	params.Breaker = &brk
	params.VerifyFills = true
	benchCache(b, params, func(c *Cache, win *mpi.Win, clock *simtime.Clock) {
		dst := make([]byte, 256)
		if err := c.Get(dst, datatype.Byte, 256, 1, 128); err != nil {
			b.Error(err)
			return
		}
		if err := win.FlushAll(); err != nil {
			b.Error(err)
			return
		}
		b.ReportAllocs()
		b.ResetTimer()
		v0 := clock.Now()
		for i := 0; i < b.N; i++ {
			if err := c.Get(dst, datatype.Byte, 256, 1, 128); err != nil {
				b.Error(err)
				return
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(clock.Now()-v0)/float64(b.N), "vns/op")
	})
}

// BenchmarkOpNotifyDrain measures the full-hit path with an active
// notification subscription and an empty queue: the per-access depth
// probe (one nil check plus one atomic load, see beginGet) must keep the
// path at 0 allocs/op and must not move the L1 full-hit vns/op —
// targeted coherence is free until a notification actually arrives.
func BenchmarkOpNotifyDrain(b *testing.B) {
	p := alwaysParams()
	p.NotifyTargeted = true
	benchCache(b, p, func(c *Cache, win *mpi.Win, clock *simtime.Clock) {
		dst := make([]byte, 256)
		if err := c.Get(dst, datatype.Byte, 256, 1, 128); err != nil {
			b.Error(err)
			return
		}
		if err := win.FlushAll(); err != nil {
			b.Error(err)
			return
		}
		if !c.nsub {
			b.Error("subscription inactive: the probe is not on the path")
			return
		}
		b.ReportAllocs()
		b.ResetTimer()
		v0 := clock.Now()
		for i := 0; i < b.N; i++ {
			if err := c.Get(dst, datatype.Byte, 256, 1, 128); err != nil {
				b.Error(err)
				return
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(clock.Now()-v0)/float64(b.N), "vns/op")
	})
}

// BenchmarkOpMissEvict measures the steady-state miss path under
// capacity pressure: every get misses, evicts one entry and inserts a
// pending one (pools keep it at <= 2 allocs/op).
func BenchmarkOpMissEvict(b *testing.B) {
	p := alwaysParams()
	p.StorageBytes = 8 << 10
	benchCache(b, p, func(c *Cache, win *mpi.Win, clock *simtime.Clock) {
		const perEpoch = 64
		dst := make([]byte, 64)
		round := 0
		epoch := func() bool {
			base := (round % 4) * perEpoch * 64
			round++
			for j := 0; j < perEpoch; j++ {
				if err := c.Get(dst, datatype.Byte, 64, 1, base+j*64); err != nil {
					b.Error(err)
					return false
				}
			}
			if err := win.FlushAll(); err != nil {
				b.Error(err)
				return false
			}
			return true
		}
		for i := 0; i < 8; i++ {
			if !epoch() {
				return
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		v0 := clock.Now()
		for i := 0; i < b.N; i += perEpoch {
			if !epoch() {
				return
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(clock.Now()-v0)/float64(b.N), "vns/op")
	})
}

// BenchmarkOpBatch16Miss measures a 16-op adjacent-range miss batch per
// iteration (one merged message); BenchmarkOpSeq16Miss is the same
// workload issued as sequential gets. The vns/op ratio between the two
// is the coalescing win asserted by TestBatchMicroBenchSpeedup.
func BenchmarkOpBatch16Miss(b *testing.B) {
	p := alwaysParams()
	p.StorageBytes = 64 << 10
	benchCache(b, p, func(c *Cache, win *mpi.Win, clock *simtime.Clock) {
		const width, opBytes = 16, 64
		dst := make([]byte, width*opBytes)
		ops := make([]GetOp, width)
		round := 0
		b.ReportAllocs()
		b.ResetTimer()
		v0 := clock.Now()
		for i := 0; i < b.N; i++ {
			base := (round * width * opBytes) % (1 << 20)
			round++
			for j := 0; j < width; j++ {
				lo := j * opBytes
				ops[j] = GetOp{Dst: dst[lo : lo+opBytes], Target: 1, Disp: base + lo}
			}
			if err := c.GetBatch(ops); err != nil {
				b.Error(err)
				return
			}
			if err := win.FlushAll(); err != nil {
				b.Error(err)
				return
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(clock.Now()-v0)/float64(b.N*width), "vns/op")
	})
}

func BenchmarkOpSeq16Miss(b *testing.B) {
	p := alwaysParams()
	p.StorageBytes = 64 << 10
	benchCache(b, p, func(c *Cache, win *mpi.Win, clock *simtime.Clock) {
		const width, opBytes = 16, 64
		dst := make([]byte, width*opBytes)
		round := 0
		b.ReportAllocs()
		b.ResetTimer()
		v0 := clock.Now()
		for i := 0; i < b.N; i++ {
			base := (round * width * opBytes) % (1 << 20)
			round++
			for j := 0; j < width; j++ {
				lo := j * opBytes
				if err := c.Get(dst[lo:lo+opBytes], datatype.Byte, opBytes, 1, base+lo); err != nil {
					b.Error(err)
					return
				}
			}
			if err := win.FlushAll(); err != nil {
				b.Error(err)
				return
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(clock.Now()-v0)/float64(b.N*width), "vns/op")
	})
}
