package core

// Benchmarks of the node-shared L2 tier (DESIGN.md §15), in the
// BenchmarkOp* set so cmd/clampi-perfgate gates them. The acceptance bar
// is that an L2 hit costs < 50% of the other-group miss it replaces
// (TestL2HitBeatsMiss asserts it in virtual time).

import (
	"testing"

	"clampi/internal/blockcache"
	"clampi/internal/datatype"
	"clampi/internal/mpi"
	"clampi/internal/simtime"
)

// l2BenchConfig puts ranks 0,1 on node 0 and the target rank 2 on node 1
// in its own group, so misses towards it are other-group — far enough
// for L2 routing.
func l2BenchConfig() mpi.Config {
	return mpi.Config{RanksPerNode: 2, NodesPerGroup: 1}
}

func l2BenchParams(tb testing.TB) Params {
	tb.Helper()
	l2, err := blockcache.NewL2(1<<20, 0)
	if err != nil {
		tb.Fatal(err)
	}
	p := alwaysParams()
	p.LocalityAware = true
	p.L2 = l2
	return p
}

// BenchmarkOpL2Hit measures the steady-state L2-hit path: the key's
// block is resident in the node-shared tier (published by this rank's
// own earlier overfetch) but the exact range is not in L1, so every get
// is an L1 miss served from node memory without touching the network.
func BenchmarkOpL2Hit(b *testing.B) {
	params := l2BenchParams(b)
	err := mpi.Run(4, l2BenchConfig(), func(r *mpi.Rank) error {
		region := make([]byte, 1<<20)
		if r.ID() == 2 {
			for i := range region {
				region[i] = pattern(i)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		var fnErr error
		if r.ID() == 0 {
			fnErr = func() error {
				c, err := New(win, params)
				if err != nil {
					return err
				}
				if err := win.LockAll(); err != nil {
					return err
				}
				defer win.UnlockAll()
				dst := make([]byte, 256)
				// Warm: miss overfetches block [0,1024) and the flush
				// publishes it into L2. The bench key [512,768) is in that
				// block but never enters L1 (exclusive tiers), so it stays
				// an L2 hit at steady state.
				if err := c.Get(dst, datatype.Byte, 256, 2, 0); err != nil {
					return err
				}
				if err := win.FlushAll(); err != nil {
					return err
				}
				b.ReportAllocs()
				b.ResetTimer()
				v0 := r.Clock().Now()
				for i := 0; i < b.N; i++ {
					if err := c.Get(dst, datatype.Byte, 256, 2, 512); err != nil {
						return err
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(r.Clock().Now()-v0)/float64(b.N), "vns/op")
				if s := c.Stats(); s.L2Hits != int64(b.N) {
					b.Errorf("L2Hits = %d, want %d", s.L2Hits, b.N)
				}
				return nil
			}()
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkOpL2SiblingForward is BenchmarkOpL2Hit with the block filled
// by the SIBLING rank: rank 1 pays the other-group miss once, rank 0 is
// then served forwarded fills from node memory for the whole run.
func BenchmarkOpL2SiblingForward(b *testing.B) {
	params := l2BenchParams(b)
	err := mpi.Run(4, l2BenchConfig(), func(r *mpi.Rank) error {
		region := make([]byte, 1<<20)
		if r.ID() == 2 {
			for i := range region {
				region[i] = pattern(i)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		var fnErr error
		if r.ID() == 1 {
			fnErr = func() error {
				c, err := New(win, params)
				if err != nil {
					return err
				}
				if err := win.LockAll(); err != nil {
					return err
				}
				defer win.UnlockAll()
				dst := make([]byte, 256)
				if err := c.Get(dst, datatype.Byte, 256, 2, 0); err != nil {
					return err
				}
				return win.FlushAll() // publish block [0,1024) into L2
			}()
		}
		r.Barrier() // sibling fill visible before rank 0 starts
		if r.ID() == 0 && fnErr == nil {
			fnErr = func() error {
				c, err := New(win, params)
				if err != nil {
					return err
				}
				if err := win.LockAll(); err != nil {
					return err
				}
				defer win.UnlockAll()
				dst := make([]byte, 256)
				b.ReportAllocs()
				b.ResetTimer()
				v0 := r.Clock().Now()
				for i := 0; i < b.N; i++ {
					if err := c.Get(dst, datatype.Byte, 256, 2, 512); err != nil {
						return err
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(r.Clock().Now()-v0)/float64(b.N), "vns/op")
				if s := c.Stats(); s.SiblingForwards != int64(b.N) {
					b.Errorf("SiblingForwards = %d, want %d", s.SiblingForwards, b.N)
				}
				return nil
			}()
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		b.Fatal(err)
	}
}

// TestL2HitBeatsMiss pins the acceptance criterion in virtual time: one
// steady-state L2 hit costs less than half of the other-group miss it
// replaces.
func TestL2HitBeatsMiss(t *testing.T) {
	params := l2BenchParams(t)
	err := mpi.Run(4, l2BenchConfig(), func(r *mpi.Rank) error {
		region := make([]byte, 1<<20)
		if r.ID() == 2 {
			for i := range region {
				region[i] = pattern(i)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		var fnErr error
		if r.ID() == 0 {
			fnErr = func() error {
				c, err := New(win, params)
				if err != nil {
					return err
				}
				if err := win.LockAll(); err != nil {
					return err
				}
				defer win.UnlockAll()
				dst := make([]byte, 256)
				missV0 := r.Clock().Now()
				if err := c.Get(dst, datatype.Byte, 256, 2, 0); err != nil {
					return err
				}
				missCost := r.Clock().Now() - missV0
				if err := win.FlushAll(); err != nil {
					return err
				}
				var hitCost simtime.Duration
				const rounds = 8
				hitV0 := r.Clock().Now()
				for i := 0; i < rounds; i++ {
					if err := c.Get(dst, datatype.Byte, 256, 2, 512); err != nil {
						return err
					}
				}
				hitCost = (r.Clock().Now() - hitV0) / rounds
				if s := c.Stats(); s.L2Hits != rounds {
					t.Errorf("L2Hits = %d, want %d", s.L2Hits, rounds)
				}
				if hitCost*2 >= missCost {
					t.Errorf("L2 hit %v vns not < 50%% of other-group miss %v vns", hitCost, missCost)
				}
				return nil
			}()
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		t.Fatal(err)
	}
}
