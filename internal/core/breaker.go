package core

// Per-target circuit breaker (DESIGN.md §11). The retry loop in
// resilience.go handles individual transient failures; the breaker
// handles a *failing target*: once consecutive transient failures towards
// one rank cross a threshold, further attempts fail fast for a virtual-
// time cooldown instead of hammering a peer that is down. After the
// cooldown the breaker goes half-open and lets probe attempts through;
// enough successful probes close it again, one failed probe reopens it.
//
// All state is per (origin, target) — it lives inside the origin's Cache
// and follows the same single-goroutine discipline as the rest of the
// origin-side state. All timing is virtual.

import "clampi/internal/simtime"

// BreakerPolicy configures the per-target circuit breaker. Zero values
// select the defaults below.
type BreakerPolicy struct {
	// FailureThreshold is the number of consecutive transient failures
	// towards one target that opens its breaker.
	FailureThreshold int
	// Cooldown is the virtual time an open breaker fails fast before
	// allowing half-open probes.
	Cooldown simtime.Duration
	// HalfOpenProbes is the number of consecutive successes required to
	// close a half-open breaker.
	HalfOpenProbes int
}

// Defaults for BreakerPolicy fields left zero.
const (
	DefaultFailureThreshold = 5
	DefaultBreakerCooldown  = 20 * simtime.Microsecond
	DefaultHalfOpenProbes   = 1
)

// DefaultBreakerPolicy returns the policy the drivers use.
func DefaultBreakerPolicy() BreakerPolicy {
	return BreakerPolicy{
		FailureThreshold: DefaultFailureThreshold,
		Cooldown:         DefaultBreakerCooldown,
		HalfOpenProbes:   DefaultHalfOpenProbes,
	}
}

func (p *BreakerPolicy) setDefaults() {
	if p.FailureThreshold <= 0 {
		p.FailureThreshold = DefaultFailureThreshold
	}
	if p.Cooldown <= 0 {
		p.Cooldown = DefaultBreakerCooldown
	}
	if p.HalfOpenProbes <= 0 {
		p.HalfOpenProbes = DefaultHalfOpenProbes
	}
}

// breakerState is one target's position in the closed→open→half-open
// state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// targetBreaker is the breaker state towards one target rank.
type targetBreaker struct {
	state     breakerState
	fails     int              // consecutive transient failures (closed)
	successes int              // consecutive probe successes (half-open)
	openUntil simtime.Duration // end of the fail-fast cooldown (open)
}

// breaker tracks one origin's breakers towards every target.
type breaker struct {
	pol     BreakerPolicy
	targets []targetBreaker
	open    int // targets currently not closed (open or half-open)
}

func newBreaker(pol BreakerPolicy, worldSize int) *breaker {
	pol.setDefaults()
	return &breaker{pol: pol, targets: make([]targetBreaker, worldSize)}
}

// allow reports whether an attempt towards target may be issued now. An
// open breaker whose cooldown has elapsed transitions to half-open and
// admits the attempt as a probe.
func (b *breaker) allow(target int, now simtime.Duration) bool {
	t := &b.targets[target]
	switch t.state {
	case breakerOpen:
		if now < t.openUntil {
			return false
		}
		t.state = breakerHalfOpen
		t.successes = 0
		return true
	default: // closed, or half-open probing
		return true
	}
}

// onSuccess records a successful attempt towards target.
func (b *breaker) onSuccess(target int) {
	t := &b.targets[target]
	switch t.state {
	case breakerClosed:
		t.fails = 0
	case breakerHalfOpen:
		t.successes++
		if t.successes >= b.pol.HalfOpenProbes {
			t.state = breakerClosed
			t.fails = 0
			b.open--
		}
	}
}

// onFailure records a transient failure towards target and returns true
// when it transitions the breaker to open (including a failed half-open
// probe reopening it). cooldown is the fail-fast window to apply — the
// policy's Cooldown, distance-scaled by the caller in cost-aware mode
// (Cache.breakerCooldown).
func (b *breaker) onFailure(target int, now, cooldown simtime.Duration) bool {
	t := &b.targets[target]
	switch t.state {
	case breakerClosed:
		t.fails++
		if t.fails < b.pol.FailureThreshold {
			return false
		}
		t.state = breakerOpen
		t.openUntil = now + cooldown
		b.open++
		return true
	case breakerHalfOpen:
		t.state = breakerOpen
		t.openUntil = now + cooldown
		return true
	}
	return false
}

// closed reports whether target's breaker is fully closed (healthy).
func (b *breaker) closed(target int) bool {
	return b.targets[target].state == breakerClosed
}

// anyOpen reports whether any target's breaker is open or half-open.
func (b *breaker) anyOpen() bool { return b.open > 0 }
