package core

// Tests of the resilience layer (DESIGN.md §11): retry, circuit breaker,
// stale serving, fill verification, and the batched partial-delivery
// path, all driven by the deterministic injector in internal/fault.

import (
	"errors"
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/fault"
	"clampi/internal/mpi"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// resilientParams is alwaysParams plus the full resilience layer.
func resilientParams(retry rma.RetryPolicy, brk *BreakerPolicy) Params {
	p := alwaysParams()
	p.Retry = &retry
	p.Breaker = brk
	p.VerifyFills = true
	return p
}

// withFaultyCache runs a size-rank world; rank 0 gets a Cache over a
// fault-wrapped window (every non-zero region byte follows pattern) and
// runs fn. The injector is seeded with seed.
func withFaultyCache(t *testing.T, size, regionSize int, params Params, sc fault.Scenario, seed int64, fn func(c *Cache, fw *fault.Window, r *mpi.Rank) error) {
	t.Helper()
	err := mpi.Run(size, mpi.Config{}, func(r *mpi.Rank) error {
		region := make([]byte, regionSize)
		if r.ID() != 0 {
			for i := range region {
				region[i] = pattern(i)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		var fnErr error
		if r.ID() == 0 {
			fw := fault.Wrap(win, sc, seed)
			var c *Cache
			c, fnErr = New(fw, params)
			if fnErr == nil {
				fnErr = win.LockAll()
			}
			if fnErr == nil {
				fnErr = fn(c, fw, r)
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRetryRecoversDroppedGets(t *testing.T) {
	retry := rma.DefaultRetryPolicy()
	retry.MaxAttempts = 0 // unlimited
	sc := fault.Scenario{Name: "drop", DropRate: 0.5}
	withFaultyCache(t, 2, 4096, resilientParams(retry, nil), sc, 7, func(c *Cache, fw *fault.Window, r *mpi.Rank) error {
		// Fresh buffer per get (PENDING admissions keep the destination
		// as their copy-in source until epoch closure); buffers checked
		// only after closure, per the epoch contract — the repeat visits
		// are PENDING hits whose payload arrives at the flush.
		const n = 32
		bufs := make([][]byte, n)
		for i := 0; i < n; i++ {
			bufs[i] = make([]byte, 128)
			disp := (i * 128) % 2048
			if err := c.Get(bufs[i], datatype.Byte, 128, 1, disp); err != nil {
				return err
			}
		}
		if err := c.Win().FlushAll(); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			checkData(t, bufs[i], (i*128)%2048)
		}
		s := c.Stats()
		if fw.Counts().Drops == 0 {
			t.Error("scenario injected no drops")
		}
		if s.Retries == 0 {
			t.Error("no retries recorded despite injected drops")
		}
		return nil
	})
}

func TestRetryExhaustionSurfacesTransient(t *testing.T) {
	retry := rma.RetryPolicy{MaxAttempts: 3}
	sc := fault.Scenario{Name: "allfail", DropRate: 1}
	withFaultyCache(t, 2, 4096, resilientParams(retry, nil), sc, 7, func(c *Cache, fw *fault.Window, r *mpi.Rank) error {
		dst := make([]byte, 64)
		err := c.Get(dst, datatype.Byte, len(dst), 1, 0)
		if !errors.Is(err, rma.ErrTransient) {
			t.Errorf("Get under total loss = %v, want ErrTransient", err)
		}
		if got := c.Stats().Retries; got != 2 {
			t.Errorf("Retries = %d, want 2 (3 attempts)", got)
		}
		return nil
	})
}

func TestRetryBudgetStopsRetrying(t *testing.T) {
	retry := rma.RetryPolicy{MaxAttempts: 0, Budget: 4}
	sc := fault.Scenario{Name: "allfail", DropRate: 1}
	withFaultyCache(t, 2, 4096, resilientParams(retry, nil), sc, 7, func(c *Cache, fw *fault.Window, r *mpi.Rank) error {
		dst := make([]byte, 64)
		for i := 0; i < 3; i++ {
			if err := c.Get(dst, datatype.Byte, len(dst), 1, 0); !errors.Is(err, rma.ErrTransient) {
				return err
			}
		}
		if got := c.Stats().Retries; got != 4 {
			t.Errorf("Retries = %d, want exactly the budget of 4", got)
		}
		return nil
	})
}

func TestRetryDeadlineBoundsOneOp(t *testing.T) {
	retry := rma.RetryPolicy{
		MaxAttempts: 0,
		BaseBackoff: 10 * simtime.Microsecond,
		MaxBackoff:  10 * simtime.Microsecond,
		Deadline:    35 * simtime.Microsecond,
	}
	sc := fault.Scenario{Name: "allfail", DropRate: 1}
	withFaultyCache(t, 2, 4096, resilientParams(retry, nil), sc, 7, func(c *Cache, fw *fault.Window, r *mpi.Rank) error {
		dst := make([]byte, 64)
		t0 := r.Clock().Now()
		if err := c.Get(dst, datatype.Byte, len(dst), 1, 0); !errors.Is(err, rma.ErrTransient) {
			return err
		}
		if spent := r.Clock().Now() - t0; spent > retry.Deadline {
			t.Errorf("op spent %v, deadline %v", spent, retry.Deadline)
		}
		return nil
	})
}

func TestTimeoutsCountedAndRecovered(t *testing.T) {
	retry := rma.DefaultRetryPolicy()
	retry.MaxAttempts = 0
	sc := fault.Scenario{Name: "timeout", TimeoutRate: 0.5, Timeout: 5 * simtime.Microsecond}
	withFaultyCache(t, 2, 4096, resilientParams(retry, nil), sc, 7, func(c *Cache, fw *fault.Window, r *mpi.Rank) error {
		for i := 0; i < 16; i++ {
			dst := make([]byte, 128)
			disp := i * 128
			if err := c.Get(dst, datatype.Byte, len(dst), 1, disp); err != nil {
				return err
			}
			checkData(t, dst, disp)
		}
		if c.Stats().Timeouts == 0 {
			t.Error("no timeouts counted")
		}
		if c.Stats().Timeouts != fw.Counts().Timeouts {
			t.Errorf("cache counted %d timeouts, injector delivered %d", c.Stats().Timeouts, fw.Counts().Timeouts)
		}
		return nil
	})
}

func TestBreakerOpensFailsFastAndRecovers(t *testing.T) {
	retry := rma.RetryPolicy{MaxAttempts: 2}
	brk := BreakerPolicy{FailureThreshold: 2, Cooldown: 10 * simtime.Microsecond, HalfOpenProbes: 2}
	// Outage towards rank 1 for the first 200 µs of virtual time.
	sc := fault.Scenario{Name: "outage", Outages: []fault.Outage{{Target: 1, From: 0, To: 200 * simtime.Microsecond}}}
	withFaultyCache(t, 2, 4096, resilientParams(retry, &brk), sc, 7, func(c *Cache, fw *fault.Window, r *mpi.Rank) error {
		dst := make([]byte, 64)
		// Trip the breaker: two gets, two failed attempts each.
		for i := 0; i < 2; i++ {
			if err := c.Get(dst, datatype.Byte, len(dst), 1, 0); !errors.Is(err, rma.ErrTransient) {
				t.Errorf("get during outage = %v, want transient", err)
			}
		}
		if c.Stats().BreakerOpens == 0 {
			t.Fatal("breaker never opened")
		}
		opsBefore := fw.Counts().Ops
		// Fail-fast: with the breaker open and no cooldown elapsed, the
		// next attempt must not reach the injector.
		if err := c.Get(dst, datatype.Byte, len(dst), 1, 0); !errors.Is(err, ErrBreakerOpen) {
			t.Errorf("get with open breaker = %v, want ErrBreakerOpen", err)
		}
		if fw.Counts().Ops != opsBefore {
			t.Error("open breaker still let the attempt reach the network")
		}
		// Ride out the outage in virtual time; half-open probes must
		// re-close the breaker and serve clean data again.
		r.Clock().AdvanceTo(250 * simtime.Microsecond)
		if err := c.Get(dst, datatype.Byte, len(dst), 1, 0); err != nil {
			return err
		}
		checkData(t, dst, 0)
		// Healthy again: admissions resume (the first post-recovery get
		// was degraded to a direct get; this one must hit or admit).
		if err := c.Get(dst, datatype.Byte, len(dst), 1, 0); err != nil {
			return err
		}
		s := c.Stats()
		if s.Failing == 0 {
			t.Error("no failing (direct, unadmitted) access recorded during degradation")
		}
		return nil
	})
}

func TestVerifyFillsDetectsCorruption(t *testing.T) {
	retry := rma.DefaultRetryPolicy()
	retry.MaxAttempts = 0
	sc := fault.Scenario{Name: "corrupt", CorruptRate: 0.5}
	withFaultyCache(t, 2, 4096, resilientParams(retry, nil), sc, 7, func(c *Cache, fw *fault.Window, r *mpi.Rank) error {
		for i := 0; i < 16; i++ {
			dst := make([]byte, 128)
			disp := i * 128
			if err := c.Get(dst, datatype.Byte, len(dst), 1, disp); err != nil {
				return err
			}
			// Every delivered payload must be clean: corrupted fills
			// are detected and refetched, never served.
			checkData(t, dst, disp)
		}
		if fw.Counts().Corrupts == 0 {
			t.Fatal("scenario injected no corruption")
		}
		if c.Stats().CorruptFills == 0 {
			t.Error("injected corruption was never detected")
		}
		if err := c.Win().FlushAll(); err != nil {
			return err
		}
		// Cached payloads must pass the per-entry checksum audit.
		if err := c.CheckIntegrity(); err != nil {
			t.Errorf("CheckIntegrity after corrupt fills: %v", err)
		}
		return nil
	})
}

func TestShortReadsRefetched(t *testing.T) {
	retry := rma.DefaultRetryPolicy()
	retry.MaxAttempts = 0
	sc := fault.Scenario{Name: "short", ShortReadRate: 0.5}
	withFaultyCache(t, 2, 4096, resilientParams(retry, nil), sc, 7, func(c *Cache, fw *fault.Window, r *mpi.Rank) error {
		for i := 0; i < 16; i++ {
			dst := make([]byte, 128)
			disp := i * 128
			if err := c.Get(dst, datatype.Byte, len(dst), 1, disp); err != nil {
				return err
			}
			checkData(t, dst, disp)
		}
		if fw.Counts().ShortReads == 0 {
			t.Fatal("scenario injected no short reads")
		}
		if c.Stats().Retries == 0 {
			t.Error("short reads were never retried")
		}
		return nil
	})
}

func TestServeStaleAcrossEpochClosure(t *testing.T) {
	retry := rma.RetryPolicy{MaxAttempts: 1}
	brk := BreakerPolicy{FailureThreshold: 1, Cooldown: simtime.Second, HalfOpenProbes: 1}
	// Rank 2 is permanently down; rank 1 is healthy.
	sc := fault.Scenario{Name: "down2", Outages: []fault.Outage{{Target: 2, From: 0, To: 3600 * simtime.Second}}}
	params := resilientParams(retry, &brk)
	params.Mode = Transparent
	params.ServeStale = true
	withFaultyCache(t, 3, 4096, params, sc, 7, func(c *Cache, fw *fault.Window, r *mpi.Rank) error {
		dst := make([]byte, 128)
		// Fill from the healthy target and complete the epoch normally.
		if err := c.Get(dst, datatype.Byte, len(dst), 1, 0); err != nil {
			return err
		}
		if err := c.Win().FlushAll(); err != nil {
			return err
		}
		// All breakers closed at that closure: transparent invalidation ran.
		if got := c.Stats().Invalidations; got != 1 {
			t.Fatalf("Invalidations = %d, want 1", got)
		}
		// Refill, then open rank 2's breaker and close the epoch again:
		// the invalidation must be deferred this time.
		if err := c.Get(dst, datatype.Byte, len(dst), 1, 0); err != nil {
			return err
		}
		if err := c.Get(dst, datatype.Byte, len(dst), 2, 0); !errors.Is(err, rma.ErrTransient) {
			t.Errorf("get from dead rank = %v, want transient", err)
		}
		if c.Stats().BreakerOpens == 0 {
			t.Fatal("breaker never opened")
		}
		if err := c.Win().FlushAll(); err != nil {
			return err
		}
		if got := c.Stats().Invalidations; got != 1 {
			t.Fatalf("Invalidations after deferred closure = %d, want still 1", got)
		}
		// The retained entry serves stale hits with correct (read-only
		// region) data.
		if err := c.Get(dst, datatype.Byte, len(dst), 1, 0); err != nil {
			return err
		}
		checkData(t, dst, 0)
		if c.Stats().StaleServes == 0 {
			t.Error("no stale serve counted for the retained entry")
		}
		// An explicit Invalidate overrides the deferral.
		c.Invalidate()
		if got := c.Stats().Invalidations; got != 2 {
			t.Errorf("Invalidations after explicit call = %d, want 2", got)
		}
		return nil
	})
}

func TestBatchPartialDeliveryUnderFaults(t *testing.T) {
	retry := rma.DefaultRetryPolicy()
	retry.MaxAttempts = 0
	sc := fault.Scenario{Name: "mix", DropRate: 0.3, ShortReadRate: 0.2}
	withFaultyCache(t, 3, 8192, resilientParams(retry, nil), sc, 7, func(c *Cache, fw *fault.Window, r *mpi.Rank) error {
		const n = 24
		bufs := make([][]byte, n)
		ops := make([]GetOp, n)
		for i := range ops {
			bufs[i] = make([]byte, 64)
			ops[i] = GetOp{Dst: bufs[i], Target: 1 + i%2, Disp: (i / 2) * 96}
		}
		if err := c.GetBatch(ops); err != nil {
			return err
		}
		for i := range ops {
			checkData(t, bufs[i], ops[i].Disp)
		}
		s := c.Stats()
		if fw.Counts().Total() == 0 {
			t.Fatal("no faults injected into the batch")
		}
		if s.Retries == 0 {
			t.Error("batch faults never retried")
		}
		if s.BatchOps != n {
			t.Errorf("BatchOps = %d, want %d", s.BatchOps, n)
		}
		if s.Gets != n {
			t.Errorf("Gets = %d, want %d", s.Gets, n)
		}
		if got := s.Hits + s.Direct + s.Conflicting + s.Capacity + s.Failing; got != n {
			t.Errorf("classified accesses = %d, want %d (stats must stay consistent under batch retries)", got, n)
		}
		if err := c.Win().FlushAll(); err != nil {
			return err
		}
		return c.CheckIntegrity()
	})
}

func TestBatchErrorSurfacesWhenExhausted(t *testing.T) {
	retry := rma.RetryPolicy{MaxAttempts: 2}
	sc := fault.Scenario{Name: "allfail", DropRate: 1}
	withFaultyCache(t, 2, 4096, resilientParams(retry, nil), sc, 7, func(c *Cache, fw *fault.Window, r *mpi.Rank) error {
		ops := make([]GetOp, 4)
		for i := range ops {
			ops[i] = GetOp{Dst: make([]byte, 64), Target: 1, Disp: i * 64}
		}
		if err := c.GetBatch(ops); !errors.Is(err, rma.ErrTransient) {
			t.Errorf("GetBatch under total loss = %v, want ErrTransient", err)
		}
		return nil
	})
}

// TestResilientHotPathAllocFree asserts the tentpole perf invariant at
// unit-test level (the perfgate enforces it on the committed baseline):
// with retry, breaker and verification all armed but no faults injected,
// the steady-state full-hit path performs zero heap allocations.
func TestResilientHotPathAllocFree(t *testing.T) {
	retry := rma.DefaultRetryPolicy()
	brk := DefaultBreakerPolicy()
	withFaultyCache(t, 2, 4096, resilientParams(retry, &brk), fault.Scenario{Name: "clean"}, 7, func(c *Cache, fw *fault.Window, r *mpi.Rank) error {
		dst := make([]byte, 256)
		if err := c.Get(dst, datatype.Byte, len(dst), 1, 128); err != nil {
			return err
		}
		if err := c.Win().FlushAll(); err != nil {
			return err
		}
		allocs := testing.AllocsPerRun(200, func() {
			if err := c.Get(dst, datatype.Byte, len(dst), 1, 128); err != nil {
				t.Error(err)
			}
		})
		if allocs != 0 {
			t.Errorf("resilient full-hit path: %.1f allocs/op, want 0", allocs)
		}
		return nil
	})
}
