package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"clampi/internal/cuckoo"
)

// sharedPattern is the deterministic ground truth the shared-cache tests
// fetch from: byte i of target t's region is a function of (t, i) only.
func sharedPattern(target, off int) byte {
	return byte(target*131 + off*31 + (off >> 8))
}

// patternFetch is a FetchFunc serving sharedPattern, counting calls.
func patternFetch(calls *atomic.Int64) FetchFunc {
	return func(target, disp int, dst []byte) error {
		if calls != nil {
			calls.Add(1)
		}
		for i := range dst {
			dst[i] = sharedPattern(target, disp+i)
		}
		return nil
	}
}

// checkPattern fails the test if dst does not hold the ground truth.
func checkPattern(t *testing.T, dst []byte, target, disp int) {
	t.Helper()
	for i, b := range dst {
		if b != sharedPattern(target, disp+i) {
			t.Fatalf("byte %d of (target %d, disp %d) = %#x, want %#x",
				i, target, disp, b, sharedPattern(target, disp+i))
		}
	}
}

// TestSharedBasic covers fill, full hit, partial hit and invalidation on
// a single context.
func TestSharedBasic(t *testing.T) {
	var calls atomic.Int64
	c, err := NewShared(patternFetch(&calls), SharedParams{Shards: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := c.NewContext(0)

	dst := make([]byte, 256)
	if err := x.Get(dst, 3, 1024); err != nil {
		t.Fatal(err)
	}
	checkPattern(t, dst, 3, 1024)
	if s := x.Stats(); s.Gets != 1 || s.Hits != 0 || s.Direct != 1 {
		t.Fatalf("after miss: %+v", s)
	}
	fetches := calls.Load()

	// Full hit: no fetch, bytes from cache.
	if err := x.Get(dst, 3, 1024); err != nil {
		t.Fatal(err)
	}
	checkPattern(t, dst, 3, 1024)
	if calls.Load() != fetches {
		t.Fatal("full hit issued a fetch")
	}
	if s := x.Stats(); s.FullHits != 1 {
		t.Fatalf("after hit: %+v", s)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}

	// Partial hit: cached 256, ask 512 — prefix from cache, suffix fetched.
	big := make([]byte, 512)
	if err := x.Get(big, 3, 1024); err != nil {
		t.Fatal(err)
	}
	checkPattern(t, big, 3, 1024)
	if s := x.Stats(); s.PartialHits != 1 {
		t.Fatalf("after partial: %+v", s)
	}
	if calls.Load() != fetches+1 {
		t.Fatal("partial hit did not fetch exactly the suffix message")
	}

	// Invalidate: next get misses and refetches.
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatalf("Len after Invalidate = %d", c.Len())
	}
	fetches = calls.Load()
	if err := x.Get(dst, 3, 1024); err != nil {
		t.Fatal(err)
	}
	checkPattern(t, dst, 3, 1024)
	if calls.Load() != fetches+1 {
		t.Fatal("post-invalidation get did not refetch")
	}
}

// TestSharedVirtualCost pins the modeled full-hit cost of the shared
// cache to the per-rank cache's: CostLookup + copyCost(256) — the same
// 108 vns the perfgate baseline asserts for BenchmarkOpHitFull.
func TestSharedVirtualCost(t *testing.T) {
	c, err := NewShared(patternFetch(nil), SharedParams{Shards: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	x := c.NewContext(0)
	dst := make([]byte, 256)
	if err := x.Get(dst, 1, 128); err != nil {
		t.Fatal(err)
	}
	v0 := x.VirtualTime()
	if err := x.Get(dst, 1, 128); err != nil {
		t.Fatal(err)
	}
	if got, want := x.VirtualTime()-v0, CostLookup+copyCost(256); got != want {
		t.Fatalf("full-hit virtual cost = %v, want %v", got, want)
	}
}

// TestSharedHitPathAllocs asserts the steady-state full-hit path of a
// shared-cache context performs zero heap allocations.
func TestSharedHitPathAllocs(t *testing.T) {
	c, err := NewShared(patternFetch(nil), SharedParams{Shards: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := c.NewContext(0)
	dst := make([]byte, 256)
	if err := x.Get(dst, 1, 512); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := x.Get(dst, 1, 512); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("full hit allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestSharedCapacityEviction forces the weak-caching discipline through
// tiny shard storage: every access stays correct, evictions happen, and
// no access evicts more than once (Capacity+Failing accounts for all
// non-direct, non-conflict misses).
func TestSharedCapacityEviction(t *testing.T) {
	c, err := NewShared(patternFetch(nil), SharedParams{
		Shards:        2,
		BytesPerShard: 4 << 10,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := c.NewContext(0)
	dst := make([]byte, 512)
	for round := 0; round < 4; round++ {
		for i := 0; i < 64; i++ {
			disp := i * 512
			if err := x.Get(dst, 1, disp); err != nil {
				t.Fatal(err)
			}
			checkPattern(t, dst, 1, disp)
		}
	}
	s := x.Stats()
	if s.Evictions == 0 {
		t.Fatalf("no evictions under 16x capacity pressure: %+v", s)
	}
	if s.Gets != 4*64 {
		t.Fatalf("Gets = %d", s.Gets)
	}
	total := s.Hits + s.Direct + s.Conflicting + s.Capacity + s.Failing
	if total != s.Gets {
		t.Fatalf("classification leak: %d classified of %d gets", total, s.Gets)
	}
	// Gauge consistency after churn.
	for i := 0; i < c.NumShards(); i++ {
		ss := c.ShardStats(i)
		if ss.UsedBytes < 0 || ss.UsedBytes > int64(ss.CapacityBytes) {
			t.Fatalf("shard %d gauge out of range: %+v", i, ss)
		}
		if ss.Occupancy() < 0 || ss.Occupancy() > 1 {
			t.Fatalf("shard %d occupancy %v", i, ss.Occupancy())
		}
	}
}

// TestSharedTornReadOracle deterministically forces the shared-cache hit
// path through a seqlock retry and asserts no stale or torn bytes are
// served: a writer holds the cuckoo shard's write section open while a
// context looks up a cached key in that shard — the get must not return
// until the section closes, and must return the ground-truth bytes.
func TestSharedTornReadOracle(t *testing.T) {
	c, err := NewShared(patternFetch(nil), SharedParams{Shards: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	x := c.NewContext(0)
	dst := make([]byte, 128)
	const target, disp = 2, 4096
	if err := x.Get(dst, target, disp); err != nil {
		t.Fatal(err)
	}
	si := c.idx.ShardOf(cuckoo.Key{Target: target, Disp: disp})
	before := c.idx.RetriesShard(si)

	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		c.idx.HoldWriteSection(si, func() {
			close(entered)
			<-release
		})
	}()
	<-entered

	reader := c.NewContext(1)
	got := make([]byte, 128)
	go func() {
		done <- reader.Get(got, target, disp)
	}()
	for c.idx.RetriesShard(si) == before {
		runtime.Gosched()
	}
	select {
	case <-done:
		t.Fatal("Get returned while the write section was open")
	default:
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	checkPattern(t, got, target, disp)
	if c.SeqlockRetries() == 0 {
		t.Fatal("retry counter did not advance")
	}
}

// TestSharedStructuralNonBlockingReads is the single-core substitute for
// a parallel-speedup measurement: with every index shard's writer mutex
// AND every core shard's fill mutex held, cached gets still complete.
// Any mutex acquisition on the hit path would deadlock here.
func TestSharedStructuralNonBlockingReads(t *testing.T) {
	c, err := NewShared(patternFetch(nil), SharedParams{Shards: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	x := c.NewContext(0)
	dst := make([]byte, 64)
	const keys = 32
	for i := 0; i < keys; i++ {
		if err := x.Get(dst, 1, i*64); err != nil {
			t.Fatal(err)
		}
	}
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
	c.idx.WithWritersLocked(func() {
		var wg sync.WaitGroup
		var completed atomic.Int64
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ctx := c.NewContext(100 + g)
				buf := make([]byte, 64)
				for i := 0; i < keys; i++ {
					if err := ctx.Get(buf, 1, i*64); err != nil {
						return
					}
					completed.Add(1)
				}
			}(g)
		}
		wg.Wait()
		if completed.Load() != 4*keys {
			t.Errorf("completed %d gets under all locks, want %d", completed.Load(), 4*keys)
		}
	})
	for i := range c.shards {
		c.shards[i].mu.Unlock()
	}
}

// TestSharedStress1000Contexts hammers one Shared with 1024 rank
// contexts — hits, misses, partial hits, capacity evictions and
// concurrent shard invalidations — while every get's payload is checked
// against the ground truth. The backend is read-only, so any stale,
// torn or cross-wired byte is an immediate failure. Run with -race.
func TestSharedStress1000Contexts(t *testing.T) {
	const (
		contexts   = 1024
		goroutines = 8
		getsPerCtx = 60
		targets    = 16
		span       = 1 << 16
	)
	c, err := NewShared(patternFetch(nil), SharedParams{
		Shards:        8,
		BytesPerShard: 64 << 10, // small: forces eviction churn
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines+1)
	stop := make(chan struct{})

	// One invalidator cycles shard invalidations under the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.InvalidateShard(i % c.NumShards())
			runtime.Gosched()
		}
	}()

	perG := contexts / goroutines
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine owns a block of contexts and round-robins
			// them (contexts are single-owner; ownership moves with the
			// goroutine, not the iteration).
			ctxs := make([]*Context, perG)
			for i := range ctxs {
				ctxs[i] = c.NewContext(g*perG + i)
			}
			buf := make([]byte, 512)
			for n := 0; n < perG*getsPerCtx; n++ {
				x := ctxs[n%perG]
				// Overlapping displacements and varying sizes produce
				// full hits, partial hits and misses; the key space is
				// shared across all goroutines for maximal contention.
				target := (x.id + n) % targets
				disp := ((x.id*37 + n*64) % span) &^ 63
				size := 64 << (n % 4) // 64..512
				if disp+size > span {
					disp = span - size
				}
				dst := buf[:size]
				if err := x.Get(dst, target, disp); err != nil {
					errs <- fmt.Errorf("ctx %d: %w", x.id, err)
					return
				}
				for i, b := range dst {
					if b != sharedPattern(target, disp+i) {
						errs <- fmt.Errorf("ctx %d: stale byte %d of (t%d,d%d)", x.id, i, target, disp)
						return
					}
				}
			}
			// Aggregate sanity for the block.
			var total Stats
			for _, x := range ctxs {
				total = total.Add(x.Stats())
			}
			if total.Gets != int64(perG*getsPerCtx) {
				errs <- fmt.Errorf("goroutine %d: %d gets accounted, want %d", g, total.Gets, perG*getsPerCtx)
				return
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// The cache must end internally consistent.
	live := 0
	for i := 0; i < c.NumShards(); i++ {
		ss := c.ShardStats(i)
		live += ss.Entries
		if ss.UsedBytes < 0 {
			t.Fatalf("shard %d negative used bytes: %+v", i, ss)
		}
	}
	if live != c.Len() {
		t.Fatalf("shard entry gauges sum to %d, Len() = %d", live, c.Len())
	}
}

// TestSharedSerialConcurrentAgreement proves result bit-identity: the
// same access sequence driven serially through one context and
// concurrently through many contexts must deliver identical bytes for
// every get (the backend is read-only; caching can never change what a
// get returns, only where it is served from).
func TestSharedSerialConcurrentAgreement(t *testing.T) {
	const n = 4096
	type req struct{ target, disp, size int }
	reqs := make([]req, n)
	for i := range reqs {
		reqs[i] = req{
			target: i % 7,
			disp:   ((i * 192) % (1 << 14)) &^ 63,
			size:   64 + (i%4)*64,
		}
	}
	sum := func(drive func(c *Shared) [8]uint64) [8]uint64 {
		c, err := NewShared(patternFetch(nil), SharedParams{Shards: 4, BytesPerShard: 32 << 10, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		return drive(c)
	}
	serial := sum(func(c *Shared) [8]uint64 {
		var out [8]uint64
		x := c.NewContext(0)
		buf := make([]byte, 512)
		for i, r := range reqs {
			dst := buf[:r.size]
			if err := x.Get(dst, r.target, r.disp); err != nil {
				t.Fatal(err)
			}
			for _, b := range dst {
				out[i%8] += uint64(b)
			}
		}
		return out
	})
	concurrent := sum(func(c *Shared) [8]uint64 {
		var out [8]uint64
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				x := c.NewContext(g)
				buf := make([]byte, 512)
				var acc uint64
				for i := g; i < n; i += 8 {
					r := reqs[i]
					dst := buf[:r.size]
					if err := x.Get(dst, r.target, r.disp); err != nil {
						t.Error(err)
						return
					}
					for _, b := range dst {
						acc += uint64(b)
					}
				}
				out[g] = acc
			}(g)
		}
		wg.Wait()
		return out
	})
	// Lane g of the concurrent run handled exactly the requests i≡g
	// (mod 8), which is lane i%8 of the serial accumulation.
	if serial != concurrent {
		t.Fatalf("serial %v != concurrent %v", serial, concurrent)
	}
}
