package core

// Observability hooks (DESIGN.md §8).
//
// The caching layer emits structured events at the four places the
// paper's evaluation instruments: every classified access (Figs. 7, 13,
// 16, 18), every eviction (Fig. 11), every adaptive adjustment (Fig. 9)
// and every epoch closure. An Observer installed through Params.Observer
// receives them inline on the owning rank's goroutine; with no observer
// installed the cost on the get path is a single nil check.
//
// Observers must be cheap and must not call back into the Cache: they
// run inside Get and inside the epoch-closure listener, where the cache's
// invariants are mid-update. In Throughput execution mode several ranks
// may share one Observer, so implementations must be safe for concurrent
// use (internal/obsv.Collector is).
//
// Invariant (enforced by internal/analysis/observerlock): Observer
// methods are never invoked while a shard or window mutex is held —
// observers run arbitrary user code synchronously, and notifying under
// a lock would turn every metric update into a critical-section
// extension (latency hazard) or a re-entrancy deadlock. The unobserved
// hot path stays a single nil check.

import "clampi/internal/simtime"

// Observer receives the caching layer's structured events. All methods
// are called synchronously on the rank's goroutine that triggered the
// event.
type Observer interface {
	// OnAccess fires after each get_c has been classified, with the
	// access's full cost breakdown.
	OnAccess(AccessEvent)
	// OnEviction fires for every entry removed to make room (capacity
	// or conflict evictions; invalidations are reported per epoch).
	OnEviction(EvictionEvent)
	// OnAdjustment fires when the adaptive tuner changes |I_w| or
	// |S_w| (§III-E1).
	OnAdjustment(AdjustmentEvent)
	// OnEpochClose fires at every epoch closure on the window, after
	// PENDING entries have been completed and transparent-mode
	// invalidation applied.
	OnEpochClose(EpochEvent)
}

// AccessEvent describes one classified get_c.
type AccessEvent struct {
	Rank  int              // origin rank id
	Epoch int64            // epoch the get was issued in
	Time  simtime.Duration // origin's virtual time after classification

	Type    AccessType
	Partial bool // partial hit (payload shorter than the request)
	Issued  bool // a remote get was issued
	Target  int  // target rank
	Disp    int  // byte displacement in the target region
	Size    int  // transfer size in bytes

	// Phase cost breakdown (virtual time), as in Access.
	Lookup simtime.Duration
	Evict  simtime.Duration
	Copy   simtime.Duration
	Mgmt   simtime.Duration
}

// Total returns the summed cache-management cost of the access.
func (e AccessEvent) Total() simtime.Duration {
	return e.Lookup + e.Evict + e.Copy + e.Mgmt
}

// EvictionEvent describes one evicted entry.
type EvictionEvent struct {
	Rank  int
	Epoch int64
	Time  simtime.Duration

	Target   int  // key of the evicted entry
	Disp     int  //
	Bytes    int  // payload size released
	Conflict bool // true for conflict (index) evictions, false for capacity
}

// AdjustmentEvent describes one adaptive parameter change. Either the
// index size or the storage size differs from its Prev value, never both
// (the tuner applies at most one adjustment per evaluation).
type AdjustmentEvent struct {
	Rank  int
	Epoch int64
	Time  simtime.Duration

	PrevIndexSlots   int
	IndexSlots       int
	PrevStorageBytes int
	StorageBytes     int
}

// EpochEvent describes one epoch closure seen by the cache.
type EpochEvent struct {
	Rank  int
	Epoch int64 // the epoch that closed
	Time  simtime.Duration

	Completed   int  // PENDING entries that became CACHED
	CopiedBytes int  // user→cache bytes copied at this closure
	Invalidated bool // the closure invalidated the cache (Transparent mode)
}
