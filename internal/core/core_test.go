package core

import (
	"errors"
	"math/rand"
	"testing"

	"clampi/internal/datatype"
	"clampi/internal/mpi"
)

// pattern is the deterministic content of the target's window region.
func pattern(off int) byte { return byte((off*7 + 13) ^ (off >> 3)) }

// withCache runs a 2-rank world; rank 0 gets a Cache over a window whose
// rank-1 region holds regionSize bytes of pattern data, and runs fn.
func withCache(t *testing.T, regionSize int, params Params, fn func(c *Cache, win *mpi.Win, r *mpi.Rank) error) {
	t.Helper()
	err := mpi.Run(2, mpi.Config{}, func(r *mpi.Rank) error {
		region := make([]byte, regionSize)
		if r.ID() == 1 {
			for i := range region {
				region[i] = pattern(i)
			}
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		// Collect rank 0's error without returning early: skipping the
		// trailing collectives would deadlock rank 1.
		var fnErr error
		if r.ID() == 0 {
			var c *Cache
			c, fnErr = New(win, params)
			if fnErr == nil {
				fnErr = win.LockAll()
			}
			if fnErr == nil {
				fnErr = fn(c, win, r)
				if err := win.UnlockAll(); fnErr == nil {
					fnErr = err
				}
			}
		}
		r.Barrier()
		return fnErr
	})
	if err != nil {
		t.Fatal(err)
	}
}

// checkData verifies dst against the target's pattern. It reports via
// Errorf (not Fatalf): it runs on rank goroutines, where Goexit would
// desynchronize the world's collectives and deadlock the other rank.
func checkData(t *testing.T, dst []byte, disp int) {
	t.Helper()
	for i, b := range dst {
		if b != pattern(disp+i) {
			t.Errorf("byte %d (disp %d): got %d want %d", i, disp, b, pattern(disp+i))
			return
		}
	}
}

func alwaysParams() Params {
	return Params{Mode: AlwaysCache, IndexSlots: 1024, StorageBytes: 1 << 20, Seed: 7}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Params{}); !errors.Is(err, ErrNilWindow) {
		t.Fatalf("New(nil) = %v", err)
	}
}

func TestMissThenFullHit(t *testing.T) {
	withCache(t, 4096, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 256)
		if err := c.Get(dst, datatype.Byte, 256, 1, 128); err != nil {
			return err
		}
		if got := c.LastAccess(); got.Type != AccessDirect || !got.Issued {
			t.Errorf("first access = %+v, want direct+issued", got)
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		checkData(t, dst, 128)

		// Second epoch: must be a full hit with no network issue and
		// a much lower virtual-time cost.
		dst2 := make([]byte, 256)
		before := r.Clock().Now()
		if err := c.Get(dst2, datatype.Byte, 256, 1, 128); err != nil {
			return err
		}
		hitCost := r.Clock().Now() - before
		if got := c.LastAccess(); got.Type != AccessHit || got.Issued || got.Partial {
			t.Errorf("second access = %+v, want full hit", got)
		}
		checkData(t, dst2, 128)
		remote := r.Model().GetLatency(256, r.Distance(1))
		if hitCost >= remote {
			t.Errorf("hit cost %v not below remote latency %v", hitCost, remote)
		}
		s := c.Stats()
		if s.Gets != 2 || s.Hits != 1 || s.FullHits != 1 || s.Direct != 1 {
			t.Errorf("stats = %+v", s)
		}
		return win.FlushAll()
	})
}

func TestTransparentInvalidatesEachEpoch(t *testing.T) {
	p := alwaysParams()
	p.Mode = Transparent
	withCache(t, 4096, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 64)
		for epoch := 0; epoch < 3; epoch++ {
			if err := c.Get(dst, datatype.Byte, 64, 1, 0); err != nil {
				return err
			}
			if got := c.LastAccess().Type; got != AccessDirect {
				t.Errorf("epoch %d: access = %v, want direct (cache cold)", epoch, got)
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
			checkData(t, dst, 0)
		}
		if s := c.Stats(); s.Hits != 0 || s.Invalidations != 3 {
			t.Errorf("stats = %+v, want 0 hits / 3 invalidations", s)
		}
		return nil
	})
}

func TestInfoKeySelectsMode(t *testing.T) {
	err := mpi.Run(2, mpi.Config{}, func(r *mpi.Rank) error {
		win, _ := r.WinAllocate(64, mpi.Info{InfoKey: "always-cache"})
		defer win.Free()
		c, err := New(win, Params{})
		if err != nil {
			return err
		}
		if c.Mode() != AlwaysCache {
			t.Errorf("mode = %v, want always-cache", c.Mode())
		}
		win2, _ := r.WinAllocate(64, mpi.Info{InfoKey: "bogus"})
		defer win2.Free()
		c2, err := New(win2, Params{Mode: AlwaysCache})
		if err != nil {
			return err
		}
		if c2.Mode() != Transparent {
			t.Errorf("mode = %v, want transparent (info overrides)", c2.Mode())
		}
		win3, _ := r.WinAllocate(64, nil)
		defer win3.Free()
		c3, err := New(win3, Params{Mode: AlwaysCache})
		if err != nil {
			return err
		}
		if c3.Mode() != AlwaysCache {
			t.Errorf("mode = %v, want always-cache (params)", c3.Mode())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPendingHitSameEpoch(t *testing.T) {
	withCache(t, 4096, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst1 := make([]byte, 128)
		dst2 := make([]byte, 128)
		dst3 := make([]byte, 64) // smaller repeat
		if err := c.Get(dst1, datatype.Byte, 128, 1, 256); err != nil {
			return err
		}
		if err := c.Get(dst2, datatype.Byte, 128, 1, 256); err != nil {
			return err
		}
		if a := c.LastAccess(); a.Type != AccessHit || a.Issued {
			t.Errorf("pending hit = %+v", a)
		}
		if err := c.Get(dst3, datatype.Byte, 64, 1, 256); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		checkData(t, dst1, 256)
		checkData(t, dst2, 256)
		checkData(t, dst3, 256)
		s := c.Stats()
		if s.PendingHits != 2 || s.Hits != 2 || s.Direct != 1 {
			t.Errorf("stats = %+v", s)
		}
		// After the epoch the entry is CACHED: next get is a plain hit.
		dst4 := make([]byte, 128)
		if err := c.Get(dst4, datatype.Byte, 128, 1, 256); err != nil {
			return err
		}
		checkData(t, dst4, 256)
		if a := c.LastAccess(); a.Type != AccessHit || a.Issued {
			t.Errorf("post-epoch hit = %+v", a)
		}
		return win.FlushAll()
	})
}

func TestPartialHitExtendsEntry(t *testing.T) {
	withCache(t, 8192, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		small := make([]byte, 64)
		if err := c.Get(small, datatype.Byte, 64, 1, 512); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		// Larger request at the same displacement: partial hit.
		big := make([]byte, 256)
		if err := c.Get(big, datatype.Byte, 256, 1, 512); err != nil {
			return err
		}
		if a := c.LastAccess(); a.Type != AccessHit || !a.Partial || !a.Issued {
			t.Errorf("partial hit = %+v", a)
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		checkData(t, big, 512)
		// The entry was extended: the same big request is now a full
		// hit with no network.
		big2 := make([]byte, 256)
		if err := c.Get(big2, datatype.Byte, 256, 1, 512); err != nil {
			return err
		}
		if a := c.LastAccess(); a.Type != AccessHit || a.Partial || a.Issued {
			t.Errorf("post-extension access = %+v, want full hit", a)
		}
		checkData(t, big2, 512)
		s := c.Stats()
		if s.PartialHits != 1 || s.FullHits != 1 {
			t.Errorf("stats = %+v", s)
		}
		return win.FlushAll()
	})
}

func TestCapacityEviction(t *testing.T) {
	p := alwaysParams()
	p.StorageBytes = 4 * 256 // room for 4 entries of 256B
	withCache(t, 1<<16, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 256)
		for i := 0; i < 4; i++ {
			if err := c.Get(dst, datatype.Byte, 256, 1, i*256); err != nil {
				return err
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
			checkData(t, dst, i*256)
		}
		if c.CachedEntries() != 4 {
			t.Errorf("CachedEntries = %d, want 4", c.CachedEntries())
		}
		// Fifth distinct get: storage is full, one eviction makes room.
		if err := c.Get(dst, datatype.Byte, 256, 1, 4*256); err != nil {
			return err
		}
		if a := c.LastAccess(); a.Type != AccessCapacity {
			t.Errorf("access = %v, want capacity", a.Type)
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		checkData(t, dst, 4*256)
		if c.CachedEntries() != 4 {
			t.Errorf("CachedEntries after eviction = %d, want 4", c.CachedEntries())
		}
		s := c.Stats()
		if s.Capacity != 1 || s.Evictions != 1 || s.EvictionScans != 1 {
			t.Errorf("stats = %+v", s)
		}
		if s.VisitedSlots < int64(p.SampleSize) && s.VisitedSlots != 0 {
			// v_i = max(M, k_i) >= M whenever a scan ran
			t.Errorf("visited %d slots, want >= M", s.VisitedSlots)
		}
		return nil
	})
}

func TestFailingAccess(t *testing.T) {
	p := alwaysParams()
	p.StorageBytes = 512
	withCache(t, 1<<16, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		// Larger than the whole buffer: never cacheable, but data
		// must still arrive (weak caching never breaks the get).
		dst := make([]byte, 4096)
		if err := c.Get(dst, datatype.Byte, 4096, 1, 0); err != nil {
			return err
		}
		if a := c.LastAccess(); a.Type != AccessFailing {
			t.Errorf("access = %v, want failing", a.Type)
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		checkData(t, dst, 0)
		if c.CachedEntries() != 0 {
			t.Errorf("CachedEntries = %d", c.CachedEntries())
		}
		// A failing access repeated still works.
		if err := c.Get(dst, datatype.Byte, 4096, 1, 0); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		checkData(t, dst, 0)
		if s := c.Stats(); s.Failing != 2 {
			t.Errorf("Failing = %d, want 2", s.Failing)
		}
		return nil
	})
}

func TestConflictingAccess(t *testing.T) {
	p := alwaysParams()
	p.IndexSlots = 8 // tiny index, huge storage: conflicts guaranteed
	p.StorageBytes = 1 << 20
	withCache(t, 1<<16, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 64)
		for i := 0; i < 64; i++ {
			if err := c.Get(dst, datatype.Byte, 64, 1, i*64); err != nil {
				return err
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
			checkData(t, dst, i*64)
		}
		s := c.Stats()
		if s.Conflicting == 0 {
			t.Errorf("no conflicting accesses on an 8-slot index after 64 distinct gets: %+v", s)
		}
		if c.CachedEntries() > 8 {
			t.Errorf("CachedEntries = %d > index capacity", c.CachedEntries())
		}
		// A re-get immediately after a (possibly conflicting) insert
		// must hit the just-cached entry and serve correct data.
		hits := 0
		for i := 0; i < 16; i++ {
			if err := c.Get(dst, datatype.Byte, 64, 1, i*64); err != nil {
				return err
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
			first := c.LastAccess().Type
			if err := c.Get(dst, datatype.Byte, 64, 1, i*64); err != nil {
				return err
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
			checkData(t, dst, i*64)
			if first != AccessFailing && c.LastAccess().Type == AccessHit {
				hits++
			}
		}
		if hits == 0 {
			t.Errorf("no hits on immediate re-gets with an 8-slot index")
		}
		return nil
	})
}

func TestExplicitInvalidate(t *testing.T) {
	withCache(t, 4096, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 64)
		if err := c.Get(dst, datatype.Byte, 64, 1, 0); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		c.Invalidate()
		if c.CachedEntries() != 0 {
			t.Errorf("CachedEntries after Invalidate = %d", c.CachedEntries())
		}
		if err := c.Get(dst, datatype.Byte, 64, 1, 0); err != nil {
			return err
		}
		if a := c.LastAccess(); a.Type != AccessDirect {
			t.Errorf("access after invalidate = %v", a.Type)
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		checkData(t, dst, 0)
		if s := c.Stats(); s.Invalidations != 1 {
			t.Errorf("Invalidations = %d", s.Invalidations)
		}
		return nil
	})
}

func TestInvalidateCancelsPending(t *testing.T) {
	// Invalidate mid-epoch: PENDING copies must be cancelled without
	// corrupting the destination buffers.
	withCache(t, 4096, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 64)
		if err := c.Get(dst, datatype.Byte, 64, 1, 0); err != nil {
			return err
		}
		c.Invalidate()
		if err := win.FlushAll(); err != nil {
			return err
		}
		checkData(t, dst, 0)
		if c.CachedEntries() != 0 {
			t.Errorf("CachedEntries = %d", c.CachedEntries())
		}
		return nil
	})
}

func TestShortBuffer(t *testing.T) {
	withCache(t, 4096, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 8)
		if err := c.Get(dst, datatype.Byte, 64, 1, 0); !errors.Is(err, mpi.ErrShortBuf) {
			t.Errorf("short buffer err = %v", err)
		}
		return nil
	})
}

func TestStridedDatatypeRoundTrip(t *testing.T) {
	withCache(t, 4096, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		vt := datatype.Vector(4, 8, 16, datatype.Byte) // 32 payload bytes
		dst := make([]byte, vt.Size())
		if err := c.Get(dst, vt, 1, 1, 64); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		// Packed payload: blocks at 64+0, 64+16, 64+32, 64+48.
		k := 0
		for b := 0; b < 4; b++ {
			for i := 0; i < 8; i++ {
				if want := pattern(64 + b*16 + i); dst[k] != want {
					t.Fatalf("packed byte %d: got %d want %d", k, dst[k], want)
				}
				k++
			}
		}
		// Cached: repeat is a hit with identical payload.
		dst2 := make([]byte, vt.Size())
		if err := c.Get(dst2, vt, 1, 1, 64); err != nil {
			return err
		}
		if a := c.LastAccess(); a.Type != AccessHit || a.Issued {
			t.Errorf("strided repeat = %+v", a)
		}
		for i := range dst {
			if dst2[i] != dst[i] {
				t.Fatalf("cached strided payload differs at %d", i)
			}
		}
		return win.FlushAll()
	})
}

func TestAdaptiveGrowsIndexUnderConflicts(t *testing.T) {
	p := alwaysParams()
	p.IndexSlots = 64
	p.StorageBytes = 1 << 22
	p.Adaptive = true
	p.TuneInterval = 128
	withCache(t, 1<<20, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 64)
		// 1000 distinct gets against a 64-slot index: conflict storm.
		for i := 0; i < 1000; i++ {
			if err := c.Get(dst, datatype.Byte, 64, 1, (i%1000)*64); err != nil {
				return err
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
		}
		if c.IndexSlots() <= 64 {
			t.Errorf("adaptive index did not grow: %d slots", c.IndexSlots())
		}
		if s := c.Stats(); s.Adjustments == 0 {
			t.Errorf("no adjustments recorded")
		}
		return nil
	})
}

func TestAdaptiveGrowsStorageUnderCapacityPressure(t *testing.T) {
	p := alwaysParams()
	p.IndexSlots = 4096
	p.StorageBytes = 8 << 10 // 8 KB: far too small for the working set
	p.Adaptive = true
	p.TuneInterval = 128
	withCache(t, 1<<20, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 1024)
		for round := 0; round < 10; round++ {
			for i := 0; i < 64; i++ {
				if err := c.Get(dst, datatype.Byte, 1024, 1, i*1024); err != nil {
					return err
				}
				if err := win.FlushAll(); err != nil {
					return err
				}
			}
		}
		if c.StorageBytes() <= 8<<10 {
			t.Errorf("adaptive storage did not grow: %d bytes", c.StorageBytes())
		}
		return nil
	})
}

func TestAdaptiveDisabledKeepsParameters(t *testing.T) {
	p := alwaysParams()
	p.IndexSlots = 64
	p.Adaptive = false
	withCache(t, 1<<20, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 64)
		for i := 0; i < 500; i++ {
			if err := c.Get(dst, datatype.Byte, 64, 1, i*64); err != nil {
				return err
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
		}
		if c.IndexSlots() != 64 {
			t.Errorf("fixed index changed size: %d", c.IndexSlots())
		}
		if s := c.Stats(); s.Adjustments != 0 {
			t.Errorf("Adjustments = %d", s.Adjustments)
		}
		return nil
	})
}

func TestStatsAccountingIdentity(t *testing.T) {
	// Every get is classified exactly once:
	// Gets == Hits + Direct + Conflicting + Capacity + Failing.
	for _, scheme := range []EvictionScheme{SchemeFull, SchemeTemporal, SchemePositional} {
		p := alwaysParams()
		p.Scheme = scheme
		p.IndexSlots = 32
		p.StorageBytes = 8 << 10
		withCache(t, 1<<16, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
			rng := rand.New(rand.NewSource(3))
			dst := make([]byte, 2048)
			for i := 0; i < 600; i++ {
				size := 1 << (rng.Intn(11) + 1) // 2..2048
				disp := rng.Intn(1<<16 - size)
				disp = disp / 64 * 64
				if err := c.Get(dst[:size], datatype.Byte, size, 1, disp); err != nil {
					return err
				}
				if rng.Intn(4) == 0 {
					if err := win.FlushAll(); err != nil {
						return err
					}
				}
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
			s := c.Stats()
			total := s.Hits + s.Direct + s.Conflicting + s.Capacity + s.Failing
			if total != s.Gets {
				t.Errorf("scheme %v: classified %d of %d gets: %+v", scheme, total, s.Gets, s)
			}
			if s.FullHits+s.PartialHits != s.Hits {
				t.Errorf("scheme %v: hit split %d+%d != %d", scheme, s.FullHits, s.PartialHits, s.Hits)
			}
			return nil
		})
	}
}

func TestRandomizedDataCorrectness(t *testing.T) {
	// The acid test: under heavy eviction pressure, every completed get
	// must deliver exactly the target's bytes, regardless of which
	// accesses hit, missed, or failed. Gets are verified at each epoch
	// closure (MPI semantics: buffers are defined only then).
	for _, scheme := range []EvictionScheme{SchemeFull, SchemeTemporal, SchemePositional} {
		p := alwaysParams()
		p.Scheme = scheme
		p.IndexSlots = 64
		p.StorageBytes = 16 << 10
		p.Seed = int64(scheme) + 11
		withCache(t, 1<<15, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
			rng := rand.New(rand.NewSource(99))
			type issued struct {
				dst  []byte
				disp int
			}
			var open []issued
			for i := 0; i < 800; i++ {
				size := 1 << (rng.Intn(10) + 1)
				disp := rng.Intn(1<<15-size) / 16 * 16
				dst := make([]byte, size)
				if err := c.Get(dst, datatype.Byte, size, 1, disp); err != nil {
					return err
				}
				open = append(open, issued{dst, disp})
				if rng.Intn(3) == 0 {
					if err := win.FlushAll(); err != nil {
						return err
					}
					for _, g := range open {
						checkData(t, g.dst, g.disp)
					}
					open = open[:0]
				}
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
			for _, g := range open {
				checkData(t, g.dst, g.disp)
			}
			return nil
		})
	}
}

func TestAccessTypeStrings(t *testing.T) {
	want := map[AccessType]string{
		AccessHit:         "hitting",
		AccessDirect:      "direct",
		AccessConflicting: "conflicting",
		AccessCapacity:    "capacity",
		AccessFailing:     "failing",
		AccessType(99):    "access(99)",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
	if SchemeFull.String() != "full" || SchemeTemporal.String() != "temporal" ||
		SchemePositional.String() != "positional" || EvictionScheme(9).String() != "scheme(9)" {
		t.Errorf("scheme strings wrong")
	}
	if Transparent.String() != "transparent" || AlwaysCache.String() != "always-cache" || Mode(9).String() != "mode(9)" {
		t.Errorf("mode strings wrong")
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Gets: 10, Hits: 6, Direct: 2, Conflicting: 1, Capacity: 1,
		EvictionScans: 2, VisitedSlots: 40, NonEmptyVisited: 10}
	if s.HitRate() != 0.6 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
	if s.Rate(AccessHit) != 0.6 || s.Rate(AccessDirect) != 0.2 ||
		s.Rate(AccessConflicting) != 0.1 || s.Rate(AccessCapacity) != 0.1 || s.Rate(AccessFailing) != 0 {
		t.Errorf("Rate wrong: %+v", s)
	}
	if s.AvgVisitedPerEviction() != 20 {
		t.Errorf("AvgVisitedPerEviction = %v", s.AvgVisitedPerEviction())
	}
	if s.AvgNonEmptyVisited() != 0.25 {
		t.Errorf("AvgNonEmptyVisited = %v", s.AvgNonEmptyVisited())
	}
	var zero Stats
	if zero.HitRate() != 0 || zero.Rate(AccessHit) != 0 || zero.AvgVisitedPerEviction() != 0 || zero.AvgNonEmptyVisited() != 0 {
		t.Errorf("zero stats helpers nonzero")
	}
	var sum Stats
	sum.add(&s)
	sum.add(&s)
	if sum.Gets != 20 || sum.Hits != 12 {
		t.Errorf("add: %+v", sum)
	}
}

func TestBytesServedAccounting(t *testing.T) {
	withCache(t, 4096, alwaysParams(), func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 512)
		if err := c.Get(dst, datatype.Byte, 512, 1, 0); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		if err := c.Get(dst, datatype.Byte, 512, 1, 0); err != nil {
			return err
		}
		s := c.Stats()
		if s.BytesFromNetwork != 512 || s.BytesFromCache != 512 {
			t.Errorf("bytes: net=%d cache=%d", s.BytesFromNetwork, s.BytesFromCache)
		}
		return win.FlushAll()
	})
}

func TestTemporalEvictionPrefersCold(t *testing.T) {
	// With SchemeTemporal and a storage of 4 entries, repeatedly
	// touching entries A,B,C keeps them warm; inserting D then E should
	// evict the cold one (A..C stay, since they were re-touched).
	p := alwaysParams()
	p.Scheme = SchemeTemporal
	p.StorageBytes = 4 * 256
	p.IndexSlots = 64
	p.SampleSize = 64 // sample covers the whole index: deterministic victim
	withCache(t, 1<<14, p, func(c *Cache, win *mpi.Win, r *mpi.Rank) error {
		dst := make([]byte, 256)
		get := func(disp int) error {
			if err := c.Get(dst, datatype.Byte, 256, 1, disp); err != nil {
				return err
			}
			return win.FlushAll()
		}
		for _, d := range []int{0, 256, 512, 768} { // fill: A B C D
			if err := get(d); err != nil {
				return err
			}
		}
		for _, d := range []int{0, 256, 512} { // touch A B C
			if err := get(d); err != nil {
				return err
			}
		}
		if err := get(1024); err != nil { // E evicts D (coldest)
			return err
		}
		if a := c.LastAccess(); a.Type != AccessCapacity {
			t.Fatalf("expected capacity access, got %v", a.Type)
		}
		// A, B, C must still be hits.
		for _, d := range []int{0, 256, 512} {
			if err := get(d); err != nil {
				return err
			}
			if a := c.LastAccess(); a.Type != AccessHit {
				t.Errorf("disp %d: %v, want hit (D should have been evicted)", d, a.Type)
			}
		}
		return nil
	})
}
