package core

// Tests of the locality-aware machinery (DESIGN.md §15): cost-aware
// admission bypass, refill-cost-weighted eviction, distance-scaled
// resilience, the node-shared L2 tier and the per-distance/L2 counters.

import (
	"testing"

	"clampi/internal/blockcache"
	"clampi/internal/datatype"
	"clampi/internal/mpi"
	"clampi/internal/rma"
	"clampi/internal/simtime"
)

// withWorld runs fn on every rank of a size-rank world under cfg; every
// rank's region holds regionSize bytes of pattern data. fn must report
// failures via t.Errorf (Fatalf would desynchronize the collectives).
func withWorld(t *testing.T, size int, cfg mpi.Config, regionSize int, fn func(r *mpi.Rank, win *mpi.Win) error) {
	t.Helper()
	err := mpi.Run(size, cfg, func(r *mpi.Rank) error {
		region := make([]byte, regionSize)
		for i := range region {
			region[i] = pattern(i)
		}
		win := r.WinCreate(region, nil)
		defer win.Free()
		fnErr := fn(r, win)
		r.Barrier()
		return fnErr
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCheapSkipAdmission: with locality awareness on, small same-socket
// fills are served direct and never admitted, while larger same-socket
// fills and same-node fills cache normally — and the per-distance-class
// counters attribute every get to the right class.
func TestCheapSkipAdmission(t *testing.T) {
	// One 4-rank node: rank 1 shares rank 0's socket, rank 2 is on the
	// other socket (mpi half-split mapping).
	cfg := mpi.Config{RanksPerNode: 4}
	params := alwaysParams()
	params.LocalityAware = true
	withWorld(t, 4, cfg, 16<<10, func(r *mpi.Rank, win *mpi.Win) error {
		if r.ID() != 0 {
			return nil
		}
		c, err := New(win, params)
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		defer win.UnlockAll()

		if got := win.DistanceClass(1); got != rma.DistanceSameSocket {
			t.Errorf("DistanceClass(1) = %d, want SameSocket", got)
		}
		if got := win.DistanceClass(2); got != rma.DistanceSameNode {
			t.Errorf("DistanceClass(2) = %d, want SameNode", got)
		}

		dst := make([]byte, 256)
		// Small same-socket get: bypassed twice — never cached.
		for i := 0; i < 2; i++ {
			if err := c.Get(dst, datatype.Byte, 256, 1, 0); err != nil {
				return err
			}
			if got := c.LastAccess(); got.Type != AccessDirect || !got.Issued {
				t.Errorf("cheap get %d = %+v, want direct+issued", i, got)
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
			checkData(t, dst, 0)
		}
		// Large same-socket get: fill cost above the threshold — admitted.
		big := make([]byte, 4096)
		if err := c.Get(big, datatype.Byte, 4096, 1, 1024); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		checkData(t, big, 1024)
		if err := c.Get(big, datatype.Byte, 4096, 1, 1024); err != nil {
			return err
		}
		if got := c.LastAccess(); got.Type != AccessHit {
			t.Errorf("large same-socket re-get = %+v, want hit", got)
		}
		// Small same-node get: other socket, admitted regardless of size.
		if err := c.Get(dst, datatype.Byte, 256, 2, 0); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		if err := c.Get(dst, datatype.Byte, 256, 2, 0); err != nil {
			return err
		}
		if got := c.LastAccess(); got.Type != AccessHit {
			t.Errorf("same-node re-get = %+v, want hit", got)
		}
		checkData(t, dst, 0)

		s := c.Stats()
		if s.CheapSkips != 2 {
			t.Errorf("CheapSkips = %d, want 2", s.CheapSkips)
		}
		ds := c.DistanceStats()
		if len(ds) != rma.NumDistanceClasses {
			t.Fatalf("DistanceStats len = %d, want %d", len(ds), rma.NumDistanceClasses)
		}
		sock := ds[rma.DistanceSameSocket]
		if sock.Gets != 4 || sock.Misses != 3 || sock.Hits != 1 {
			t.Errorf("same-socket stats = %+v, want 4 gets / 3 misses / 1 hit", sock)
		}
		if want := int64(256 + 256 + 4096); sock.BytesFromNetwork != want {
			t.Errorf("same-socket BytesFromNetwork = %d, want %d", sock.BytesFromNetwork, want)
		}
		node := ds[rma.DistanceSameNode]
		if node.Gets != 2 || node.Misses != 1 || node.Hits != 1 || node.BytesFromNetwork != 256 {
			t.Errorf("same-node stats = %+v, want 2 gets / 1 miss / 1 hit / 256 B", node)
		}
		if sock.FillTime <= 0 || node.FillTime <= sock.FillTime/4 {
			t.Errorf("fill times sock=%v node=%v look wrong", sock.FillTime, node.FillTime)
		}
		return nil
	})
}

// TestCostAwareEviction: at a capacity eviction with older-far vs
// newer-near entries, the locality-blind temporal score evicts the far
// (older) entry, while the cost-weighted score sacrifices the near one.
func TestCostAwareEviction(t *testing.T) {
	// Ranks 0,1 share a node (different sockets); rank 4 is other-group.
	cfg := mpi.Config{RanksPerNode: 2, NodesPerGroup: 1}
	for _, aware := range []bool{false, true} {
		params := alwaysParams()
		params.Scheme = SchemeTemporal
		params.StorageBytes = 10 << 10 // two 4 KiB payloads fit, not three
		params.SampleSize = 4096       // >= IndexSlots: scan sees every candidate
		params.LocalityAware = aware
		withWorld(t, 6, cfg, 16<<10, func(r *mpi.Rank, win *mpi.Win) error {
			if r.ID() != 0 {
				return nil
			}
			c, err := New(win, params)
			if err != nil {
				return err
			}
			if err := win.LockAll(); err != nil {
				return err
			}
			defer win.UnlockAll()

			buf := make([]byte, 4096)
			get := func(target, disp int) error {
				if err := c.Get(buf, datatype.Byte, 4096, target, disp); err != nil {
					return err
				}
				return win.FlushAll()
			}
			// Older far entry, then newer near entry, then a third fill
			// that forces one capacity eviction.
			if err := get(4, 0); err != nil { // far, oldest
				return err
			}
			if err := get(1, 0); err != nil { // near, newer
				return err
			}
			if err := get(4, 8192); err != nil { // forces the eviction
				return err
			}
			if got := c.LastAccess(); got.Type != AccessCapacity {
				t.Errorf("aware=%v: third fill = %+v, want capacity eviction", aware, got)
			}
			if s := c.Stats(); s.Capacity != 1 {
				t.Errorf("aware=%v: Capacity = %d, want exactly 1 eviction", aware, s.Capacity)
			}
			// Exactly one of {far, near} was evicted; probing far tells us
			// which (probing both would trigger fresh evictions).
			if err := c.Get(buf, datatype.Byte, 4096, 4, 0); err != nil {
				return err
			}
			farHit := c.LastAccess().Type == AccessHit
			if err := win.FlushAll(); err != nil {
				return err
			}
			if aware && !farHit {
				t.Errorf("cost-aware: far entry was evicted, want cheap near entry sacrificed")
			}
			if !aware && farHit {
				t.Errorf("locality-blind: far entry survived, want oldest (far) evicted")
			}
			return nil
		})
	}
}

// TestL2SharedTier: sibling ranks on one node share an L2; the filler's
// block-aligned overfetch serves later misses of BOTH siblings from node
// memory, with forwards counted only across ranks, and the Stats/L2Stats
// accounting matching exactly.
func TestL2SharedTier(t *testing.T) {
	cfg := mpi.Config{RanksPerNode: 2, NodesPerGroup: 1}
	l2, err := blockcache.NewL2(1<<20, 0) // default 1 KiB blocks
	if err != nil {
		t.Fatal(err)
	}
	params := alwaysParams()
	params.LocalityAware = true
	params.L2 = l2
	var rank0Stats, rank1Stats Stats
	var rank0Dist []DistanceStats
	withWorld(t, 4, cfg, 16<<10, func(r *mpi.Rank, win *mpi.Win) error {
		// Target rank 2 lives on the other node → other group (npg=1).
		switch r.ID() {
		case 1:
			c, err := New(win, params)
			if err != nil {
				return err
			}
			if err := win.LockAll(); err != nil {
				return err
			}
			dst := make([]byte, 256)
			// Miss: overfetches block [0,1024) and stages it for L2.
			if err := c.Get(dst, datatype.Byte, 256, 2, 128); err != nil {
				return err
			}
			if err := win.FlushAll(); err != nil { // publishes into L2
				return err
			}
			checkData(t, dst, 128)
			// Same key again: L1 hit, L2 not consulted.
			if err := c.Get(dst, datatype.Byte, 256, 2, 128); err != nil {
				return err
			}
			if got := c.LastAccess(); got.Type != AccessHit {
				t.Errorf("rank1 L1 re-get = %+v, want hit", got)
			}
			// Different range of the same block: L1 miss, served from the
			// rank's own L2 fill (no sibling forward).
			if err := c.Get(dst, datatype.Byte, 256, 2, 512); err != nil {
				return err
			}
			if got := c.LastAccess(); got.Type != AccessHit || got.Issued {
				t.Errorf("rank1 L2 get = %+v, want unissued hit", got)
			}
			checkData(t, dst, 512)
			rank1Stats = c.Stats()
			if err := win.UnlockAll(); err != nil {
				return err
			}
			r.Barrier() // L2 fill published and verified; release rank 0
		case 0:
			r.Barrier() // wait for rank 1's fill
			c, err := New(win, params)
			if err != nil {
				return err
			}
			if err := win.LockAll(); err != nil {
				return err
			}
			dst := make([]byte, 128)
			// First touch of the block on this rank: sibling forward.
			if err := c.Get(dst, datatype.Byte, 128, 2, 640); err != nil {
				return err
			}
			if got := c.LastAccess(); got.Type != AccessHit || got.Issued {
				t.Errorf("rank0 L2 get = %+v, want unissued hit", got)
			}
			checkData(t, dst, 640)
			rank0Stats = c.Stats()
			rank0Dist = c.DistanceStats()
			if err := win.UnlockAll(); err != nil {
				return err
			}
		default:
			r.Barrier()
		}
		return nil
	})

	if rank1Stats.L2Hits != 1 || rank1Stats.SiblingForwards != 0 || rank1Stats.L2Fills != 1 {
		t.Errorf("rank1 stats = L2Hits %d / SiblingForwards %d / L2Fills %d, want 1/0/1",
			rank1Stats.L2Hits, rank1Stats.SiblingForwards, rank1Stats.L2Fills)
	}
	if rank1Stats.Hits != 2 || rank1Stats.FullHits != 2 {
		t.Errorf("rank1 Hits/FullHits = %d/%d, want 2/2", rank1Stats.Hits, rank1Stats.FullHits)
	}
	if rank1Stats.BytesFromNetwork != 1024 { // one whole block, not 256
		t.Errorf("rank1 BytesFromNetwork = %d, want 1024", rank1Stats.BytesFromNetwork)
	}
	if rank0Stats.L2Hits != 1 || rank0Stats.SiblingForwards != 1 || rank0Stats.L2Fills != 0 {
		t.Errorf("rank0 stats = L2Hits %d / SiblingForwards %d / L2Fills %d, want 1/1/0",
			rank0Stats.L2Hits, rank0Stats.SiblingForwards, rank0Stats.L2Fills)
	}
	if rank0Stats.BytesFromNetwork != 0 || rank0Stats.BytesFromCache != 128 {
		t.Errorf("rank0 bytes net/cache = %d/%d, want 0/128",
			rank0Stats.BytesFromNetwork, rank0Stats.BytesFromCache)
	}
	og := rank0Dist[rma.DistanceOtherGroup]
	if og.Gets != 1 || og.Hits != 1 || og.Misses != 0 {
		t.Errorf("rank0 other-group dist stats = %+v, want 1 get / 1 hit", og)
	}
	ls := l2.Stats()
	if ls.Hits != 2 || ls.Fills != 1 || ls.Forwards != 1 || ls.Lookups != 3 {
		t.Errorf("L2 tier stats = %+v, want 2 hits / 1 fill / 1 forward / 3 lookups", ls)
	}
}

// TestL2RequiresAlwaysCache: in transparent mode the shared tier must
// stay detached — per-rank epoch invalidation cannot be honoured by a
// tier shared across ranks.
func TestL2RequiresAlwaysCache(t *testing.T) {
	cfg := mpi.Config{RanksPerNode: 2, NodesPerGroup: 1}
	params := alwaysParams()
	params.Mode = Transparent
	l2, err := blockcache.NewL2(64<<10, 0)
	if err != nil {
		t.Fatal(err)
	}
	params.L2 = l2
	withWorld(t, 4, cfg, 4096, func(r *mpi.Rank, win *mpi.Win) error {
		if r.ID() != 0 {
			return nil
		}
		c, err := New(win, params)
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		defer win.UnlockAll()
		dst := make([]byte, 256)
		if err := c.Get(dst, datatype.Byte, 256, 2, 0); err != nil {
			return err
		}
		if err := win.FlushAll(); err != nil {
			return err
		}
		if s := c.Stats(); s.L2Fills != 0 || s.L2Hits != 0 {
			t.Errorf("transparent-mode L2 stats = fills %d hits %d, want 0/0", s.L2Fills, s.L2Hits)
		}
		return nil
	})
	if s := params.L2.Stats(); s.Lookups != 0 || s.Fills != 0 {
		t.Errorf("transparent-mode tier saw traffic: %+v", s)
	}
}

// TestDistanceScaledResilience: backoff and breaker cooldowns stretch
// with the target's distance class, deterministically, and only in
// cost-aware mode.
func TestDistanceScaledResilience(t *testing.T) {
	cfg := mpi.Config{RanksPerNode: 2, NodesPerGroup: 1}
	for _, aware := range []bool{false, true} {
		params := alwaysParams()
		params.LocalityAware = aware
		retry := rma.DefaultRetryPolicy()
		brk := DefaultBreakerPolicy()
		params.Retry = &retry
		params.Breaker = &brk
		withWorld(t, 6, cfg, 4096, func(r *mpi.Rank, win *mpi.Win) error {
			if r.ID() != 0 {
				return nil
			}
			c, err := New(win, params)
			if err != nil {
				return err
			}
			const base = 1000 * simtime.Nanosecond
			near := c.scaledBackoff(base, 1) // same node
			far := c.scaledBackoff(base, 4)  // other group
			nearCD := c.breakerCooldown(1)
			farCD := c.breakerCooldown(4)
			if !aware {
				if near != base || far != base {
					t.Errorf("blind backoffs = %v/%v, want %v unchanged", near, far, base)
				}
				if nearCD != brk.Cooldown || farCD != brk.Cooldown {
					t.Errorf("blind cooldowns = %v/%v, want %v", nearCD, farCD, brk.Cooldown)
				}
				return nil
			}
			if near < base || far <= near {
				t.Errorf("aware backoffs near=%v far=%v, want base <= near < far", near, far)
			}
			if far > simtime.Duration(distScaleMax*float64(base)) {
				t.Errorf("far backoff %v exceeds the %vx cap", far, distScaleMax)
			}
			if farCD <= nearCD {
				t.Errorf("aware cooldowns near=%v far=%v, want near < far", nearCD, farCD)
			}
			if again := c.scaledBackoff(base, 4); again != far {
				t.Errorf("backoff not deterministic: %v then %v", far, again)
			}
			return nil
		})
	}
}

// TestL2BatchPath: the vectorized path participates in the shared tier —
// a sibling's coalesced (and block-widened) batch fill serves the other
// rank's whole batch from node memory, with no merged message issued.
func TestL2BatchPath(t *testing.T) {
	cfg := mpi.Config{RanksPerNode: 2, NodesPerGroup: 1}
	l2, err := blockcache.NewL2(1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	params := alwaysParams()
	params.LocalityAware = true
	params.L2 = l2
	var s0, s1 Stats
	withWorld(t, 4, cfg, 16<<10, func(r *mpi.Rank, win *mpi.Win) error {
		const width, opBytes = 4, 256
		mkOps := func(dst []byte, base int) []GetOp {
			ops := make([]GetOp, width)
			for i := range ops {
				lo := i * opBytes
				ops[i] = GetOp{Dst: dst[lo : lo+opBytes], Target: 2, Disp: base + lo}
			}
			return ops
		}
		switch r.ID() {
		case 1:
			c, err := New(win, params)
			if err != nil {
				return err
			}
			if err := win.LockAll(); err != nil {
				return err
			}
			dst := make([]byte, width*opBytes)
			// Misses start at 128: the merged run [128,1152) widens to
			// the aligned span [0,2048) before issue and publication.
			if err := c.GetBatch(mkOps(dst, 128)); err != nil {
				return err
			}
			if err := win.FlushAll(); err != nil {
				return err
			}
			checkData(t, dst, 128)
			s1 = c.Stats()
			if err := win.UnlockAll(); err != nil {
				return err
			}
			r.Barrier()
		case 0:
			r.Barrier() // wait for the sibling's published fill
			c, err := New(win, params)
			if err != nil {
				return err
			}
			if err := win.LockAll(); err != nil {
				return err
			}
			dst := make([]byte, width*opBytes)
			// Different offsets inside the same published span.
			if err := c.GetBatch(mkOps(dst, 1024)); err != nil {
				return err
			}
			checkData(t, dst, 1024)
			s0 = c.Stats()
			if err := win.UnlockAll(); err != nil {
				return err
			}
		default:
			r.Barrier()
		}
		return nil
	})
	if s1.BatchMessages != 1 || s1.BytesFromNetwork != 2048 {
		t.Errorf("rank1 messages/netbytes = %d/%d, want 1 widened message of 2048",
			s1.BatchMessages, s1.BytesFromNetwork)
	}
	if s1.L2Fills != 2 {
		t.Errorf("rank1 L2Fills = %d, want 2 blocks", s1.L2Fills)
	}
	if s0.L2Hits != 4 || s0.SiblingForwards != 4 {
		t.Errorf("rank0 L2Hits/SiblingForwards = %d/%d, want 4/4", s0.L2Hits, s0.SiblingForwards)
	}
	if s0.BytesFromNetwork != 0 || s0.BatchMessages != 0 {
		t.Errorf("rank0 issued network traffic: %d bytes, %d messages",
			s0.BytesFromNetwork, s0.BatchMessages)
	}
}
